// Benchmark harness: one benchmark per figure and quoted statistic of the
// paper, plus ablations of the design choices called out in DESIGN.md.
//
// Statistic-bearing benchmarks attach their measured values as custom
// metrics (b.ReportMetric), so `go test -bench=. -benchmem` regenerates the
// paper's numbers alongside the timing data. EXPERIMENTS.md records a full
// run.
package repro

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/flow"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

// --- Figures ---

// BenchmarkFig1MissingNodes reproduces Section 2.1's missing-node analysis:
// classic probing through a random two-way balancer with three probes per
// hop. Metrics: p_miss_hop7 (paper: 0.25) and p_ambiguous (paper: 0.9375).
func BenchmarkFig1MissingNodes(b *testing.B) {
	fig := topo.BuildFigure1(99, netsim.PerPacket)
	tp := netsim.NewTransport(fig.Net)
	missed, ambiguous := 0, 0
	for i := 0; i < b.N; i++ {
		tr := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 12, ProbesPerHop: 3})
		rt, err := tr.Trace(fig.Dest.Addr)
		if err != nil {
			b.Fatal(err)
		}
		h7, h8 := distinct(rt.All[6]), distinct(rt.All[7])
		if h7 == 1 {
			missed++
		}
		if h7 == 2 || h8 == 2 {
			ambiguous++
		}
	}
	b.ReportMetric(float64(missed)/float64(b.N), "p_miss_hop7")
	b.ReportMetric(float64(ambiguous)/float64(b.N), "p_ambiguous")
}

// BenchmarkFig2HeaderRoles regenerates the header-field role table for all
// six probing disciplines from their emitted probe bytes.
func BenchmarkFig2HeaderRoles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := tracer.WriteHeaderRolesTable(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3LoopLB measures how often classic traceroute sees the Fig. 3
// loop versus Paris. Metrics: classic_loop_rate (expected ~0.25 for the
// two-way unequal diamond) and paris_loop_rate (expected 0).
func BenchmarkFig3LoopLB(b *testing.B) {
	fig := topo.BuildFigure3(1)
	tp := netsim.NewTransport(fig.Net)
	classicLoops, parisLoops := 0, 0
	for i := 0; i < b.N; i++ {
		crt, err := tracer.NewClassicUDP(tp, tracer.Options{
			SrcPort: uint16(32768 + i%30000), MaxTTL: 15,
		}).Trace(fig.Dest.Addr)
		if err != nil {
			b.Fatal(err)
		}
		if len(anomaly.FindLoops(crt)) > 0 {
			classicLoops++
		}
		prt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
		if err != nil {
			b.Fatal(err)
		}
		if len(anomaly.FindLoops(prt)) > 0 {
			parisLoops++
		}
	}
	b.ReportMetric(float64(classicLoops)/float64(b.N), "classic_loop_rate")
	b.ReportMetric(float64(parisLoops)/float64(b.N), "paris_loop_rate")
}

// BenchmarkFig4ZeroTTL traces through the zero-TTL-forwarding topology and
// verifies the diagnostic loop every time. Metric: zero_ttl_loop_rate
// (expected 1.0 — the misbehaviour is deterministic).
func BenchmarkFig4ZeroTTL(b *testing.B) {
	fig := topo.BuildFigure4(1)
	tp := netsim.NewTransport(fig.Net)
	hits := 0
	for i := 0; i < b.N; i++ {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range anomaly.FindLoops(rt) {
			if anomaly.ClassifyLoop(l, rt, nil) == anomaly.CauseZeroTTL {
				hits++
			}
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "zero_ttl_loop_rate")
}

// BenchmarkFig5NAT traces into the NAT stub and verifies the address-
// rewriting classification. Metric: rewriting_loop_rate (expected 1.0).
func BenchmarkFig5NAT(b *testing.B) {
	fig := topo.BuildFigure5(1)
	tp := netsim.NewTransport(fig.Net)
	hits := 0
	for i := 0; i < b.N; i++ {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range anomaly.FindLoops(rt) {
			if anomaly.ClassifyLoop(l, rt, nil) == anomaly.CauseAddressRewriting {
				hits++
			}
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "rewriting_loop_rate")
}

// BenchmarkFig6Diamonds builds per-destination graphs from repeated traces
// through the three-way balancer. Metrics: classic_diamonds and
// paris_diamonds per 32-round graph (paper: diamonds appear in classic
// graphs and vanish from Paris ones).
func BenchmarkFig6Diamonds(b *testing.B) {
	fig := topo.BuildFigure6(1, netsim.PerFlow)
	tp := netsim.NewTransport(fig.Net)
	var classicD, parisD int
	for i := 0; i < b.N; i++ {
		cg := anomaly.NewGraph(fig.Dest.Addr)
		pg := anomaly.NewGraph(fig.Dest.Addr)
		for r := 0; r < 32; r++ {
			crt, err := tracer.NewClassicUDP(tp, tracer.Options{
				SrcPort: uint16(32768 + (i*32+r)%30000), MaxTTL: 15,
			}).Trace(fig.Dest.Addr)
			if err != nil {
				b.Fatal(err)
			}
			cg.Add(crt)
			prt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
			if err != nil {
				b.Fatal(err)
			}
			pg.Add(prt)
		}
		classicD += len(cg.Diamonds())
		parisD += len(pg.Diamonds())
	}
	b.ReportMetric(float64(classicD)/float64(b.N), "classic_diamonds")
	b.ReportMetric(float64(parisD)/float64(b.N), "paris_diamonds")
}

// --- Campaign statistics (Sections 3, 4.1.2, 4.2.2, 4.3.2) ---

// campaignStats runs a calibrated mid-scale campaign once and caches it;
// the statistics benchmarks report their slices of it.
var campaignCache *measure.Stats

func campaignStats(b *testing.B) *measure.Stats {
	b.Helper()
	if campaignCache != nil {
		return campaignCache
	}
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = 1000
	sc := topo.Generate(cfg)
	camp, err := measure.NewCampaign(netsim.NewTransport(sc.Net), measure.Config{
		Dests:      sc.Dests,
		Rounds:     20,
		Workers:    32,
		RoundStart: sc.RoundStart,
		PortSeed:   cfg.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		b.Fatal(err)
	}
	campaignCache = measure.Analyze(res)
	return campaignCache
}

// BenchmarkCampaignRound times one full measurement round (paired classic
// and Paris traces to every destination with 32 workers), the unit the
// paper repeats 556 times, in the as-shipped configuration: batched TTL
// ladders (Batch on, the cmd binaries' default). The campaign object is
// constructed once and one warm-up round runs before the timer, so the
// measurement reflects the steady state a 556-round study spends its time
// in — per-destination path hints warmed, per-worker scratch buffers grown.
func BenchmarkCampaignRound(b *testing.B) {
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = 500
	sc := topo.Generate(cfg)
	tp := netsim.NewTransport(sc.Net)
	camp, err := measure.NewCampaign(tp, measure.Config{
		Dests: sc.Dests, Rounds: 1, Workers: 32,
		RoundStart: sc.RoundStart, PortSeed: cfg.Seed,
		Batch: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := camp.Run(); err != nil { // warm hints and scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := camp.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignRoundBatched is the batching A/B: the same steady-state
// round with the batched ladder off (the PR 2 sequential path) and on,
// across shard counts. BENCH_3.json records a full run; the off rows are
// the apples-to-apples baseline for the on rows.
func BenchmarkCampaignRoundBatched(b *testing.B) {
	for _, batch := range []bool{false, true} {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("batch=%v/shards=%d", batch, shards), func(b *testing.B) {
				cfg := topo.DefaultGenConfig()
				cfg.Destinations = 500
				cfg.Shards = shards
				sc := topo.Generate(cfg)
				camp, err := measure.NewCampaign(sc.Transport(), measure.Config{
					Dests: sc.Dests, Rounds: 1, Workers: 32,
					RoundStart: sc.RoundStart, PortSeed: cfg.Seed,
					ShardOf: sc.ShardOf, Batch: batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := camp.Run(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := camp.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCampaignRoundDynamics is the virtual-clock A/B: the same
// steady-state batched round with netsim's dynamics layer off and fully
// armed (per-link delay, background load, scheduled churn). The delta is
// the whole cost of simulating network dynamics — the event loop, the
// per-link delay draws, and the schedule checks run per traversal, yet no
// wall-clock time passes: a 30-virtual-second round still completes in
// simulator time.
func BenchmarkCampaignRoundDynamics(b *testing.B) {
	for _, dyn := range []bool{false, true} {
		b.Run(fmt.Sprintf("dynamics=%v", dyn), func(b *testing.B) {
			cfg := topo.DefaultGenConfig()
			cfg.Destinations = 500
			if dyn {
				cfg.Delay, cfg.Load, cfg.Churn = 1, 0.3, 0.5
			}
			sc := topo.Generate(cfg)
			camp, err := measure.NewCampaign(sc.Transport(), measure.Config{
				Dests: sc.Dests, Rounds: 1, Workers: 32,
				RoundStart: sc.RoundStart, PortSeed: cfg.Seed,
				Batch: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := camp.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := camp.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignStudyStream is the streaming A/B on the multi-round
// study the engine actually ships: Config.Stream folding pairs into
// per-worker accumulators as they complete, versus materializing every pair
// and running Analyze at the end. One op is a full 500-destination ×
// 16-round batched study (rounds amortize the accumulator's first-sight
// interning the way the paper's 556 rounds do), so the custom ns/round and
// allocs/round metrics compare directly with BenchmarkCampaignRound and the
// BENCH_*.json trajectory, while allocated bytes expose the memory wall the
// streaming engine removes.
func BenchmarkCampaignStudyStream(b *testing.B) {
	const rounds = 16
	for _, stream := range []bool{false, true} {
		b.Run(fmt.Sprintf("stream=%v", stream), func(b *testing.B) {
			cfg := topo.DefaultGenConfig()
			cfg.Destinations = 500
			sc := topo.Generate(cfg)
			camp, err := measure.NewCampaign(netsim.NewTransport(sc.Net), measure.Config{
				Dests: sc.Dests, Rounds: rounds, Workers: 32,
				RoundStart: sc.RoundStart, PortSeed: cfg.Seed,
				Batch: true, Stream: stream,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := camp.Run(); err != nil { // warm hints and scratch
				b.Fatal(err)
			}
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := camp.Run()
				if err != nil {
					b.Fatal(err)
				}
				s := res.Stats
				if s == nil {
					s = measure.Analyze(res)
				}
				if s.Routes != rounds*len(sc.Dests) {
					b.Fatalf("stats cover %d routes, want %d", s.Routes, rounds*len(sc.Dests))
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N*rounds), "allocs/round")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
		})
	}
}

// BenchmarkCampaignRoundSharded sweeps one measurement round over a
// (shards × workers) grid: the same 500-destination topology partitioned
// across S independent networks, probed by shard-affine workers. At equal
// worker count the sharded engine must be no slower than the single
// network (shards=1 is the baseline row); with enough cores each extra
// shard removes one more source of read-lock and cache-line sharing.
// BENCH_2.json records a full sweep.
func BenchmarkCampaignRoundSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				cfg := topo.DefaultGenConfig()
				cfg.Destinations = 500
				cfg.Shards = shards
				sc := topo.Generate(cfg)
				tp := sc.Transport()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					camp, err := measure.NewCampaign(tp, measure.Config{
						Dests: sc.Dests, Rounds: 1, Workers: workers,
						RoundStart: sc.RoundStart, PortSeed: cfg.Seed,
						ShardOf: sc.ShardOf,
					})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := camp.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLoopStatistics reports the Section 4.1.2 table. Paper values:
// routes 5.3%, per-flow 87%, zero-TTL 6.9%, unreachability 1.2%,
// rewriting 2.8%, residual 2.5%.
func BenchmarkLoopStatistics(b *testing.B) {
	s := campaignStats(b)
	for i := 0; i < b.N; i++ {
		_ = measure.Rows(s)
	}
	b.ReportMetric(pct(s.Loops.RoutesWithLoop, s.Routes), "loop_routes_pct")
	b.ReportMetric(measure.CausePct(s.Loops.ByCause, anomaly.CausePerFlowLB), "perflow_pct")
	b.ReportMetric(measure.CausePct(s.Loops.ByCause, anomaly.CauseZeroTTL), "zerottl_pct")
	b.ReportMetric(measure.CausePct(s.Loops.ByCause, anomaly.CauseUnreachability), "unreach_pct")
	b.ReportMetric(measure.CausePct(s.Loops.ByCause, anomaly.CauseAddressRewriting), "rewrite_pct")
	b.ReportMetric(measure.CausePct(s.Loops.ByCause, anomaly.CausePerPacketLB), "residual_pct")
}

// BenchmarkCycleStatistics reports the Section 4.2.2 table. Paper values:
// routes 0.84%, per-flow 78%, forwarding loops 20%, unreachability 1.2%.
func BenchmarkCycleStatistics(b *testing.B) {
	s := campaignStats(b)
	for i := 0; i < b.N; i++ {
		_ = measure.Rows(s)
	}
	b.ReportMetric(pct(s.Cycles.RoutesWithCycle, s.Routes), "cycle_routes_pct")
	b.ReportMetric(measure.CausePct(s.Cycles.ByCause, anomaly.CausePerFlowLB), "perflow_pct")
	b.ReportMetric(measure.CausePct(s.Cycles.ByCause, anomaly.CauseForwardingLoop), "fwdloop_pct")
	b.ReportMetric(measure.CausePct(s.Cycles.ByCause, anomaly.CauseUnreachability), "unreach_pct")
}

// BenchmarkDiamondStatistics reports the Section 4.3.2 table. Paper values:
// destinations 79%, per-flow share 64%.
func BenchmarkDiamondStatistics(b *testing.B) {
	s := campaignStats(b)
	for i := 0; i < b.N; i++ {
		_ = measure.Rows(s)
	}
	b.ReportMetric(pct(s.Diamonds.DestsWithDiamond, s.Dests), "diamond_dests_pct")
	b.ReportMetric(pct(s.Diamonds.PerFlow, s.Diamonds.Total), "perflow_pct")
	b.ReportMetric(float64(s.Diamonds.Total), "diamonds_total")
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationFlowKey contrasts the paper's observed router behaviour
// (hash the first four transport octets) with the textbook five-tuple:
// classic UDP anomalies are identical, but ICMP behaves differently because
// the five-tuple has no ports to hash. Metrics: loop rates under each key.
func BenchmarkAblationFlowKey(b *testing.B) {
	run := func(kind flow.KeyKind) float64 {
		fig := topo.BuildFigure3(1)
		// Re-balance L's routes with the ablated key kind.
		if r, ok := fig.Net.RouterAt(fig.L); ok {
			rts := r.Routes()
			for i := range rts {
				if len(rts[i].Hops) > 1 {
					rts[i].FlowOpts = flow.Options{Kind: kind}
				}
			}
			r.SetRoutes(rts)
		}
		tp := netsim.NewTransport(fig.Net)
		loops := 0
		for i := 0; i < b.N; i++ {
			rt, err := tracer.NewClassicICMP(tp, tracer.Options{
				ICMPID: uint16(1 + i%30000), MaxTTL: 15,
			}).Trace(fig.Dest.Addr)
			if err != nil {
				b.Fatal(err)
			}
			if len(anomaly.FindLoops(rt)) > 0 {
				loops++
			}
		}
		return float64(loops) / float64(b.N)
	}
	b.ReportMetric(run(flow.KeyFirstFourOctets), "icmp_loop_rate_first4")
	b.ReportMetric(run(flow.KeyFiveTuple), "icmp_loop_rate_5tuple")
}

// BenchmarkAblationParisVsClassic measures the headline effect on one
// unequal diamond: loop rate with checksum-varying probes (Paris) versus
// port-varying probes (classic).
func BenchmarkAblationParisVsClassic(b *testing.B) {
	fig := topo.BuildFigure3(1)
	tp := netsim.NewTransport(fig.Net)
	classic, paris := 0, 0
	for i := 0; i < b.N; i++ {
		crt, err := tracer.NewClassicUDP(tp, tracer.Options{
			SrcPort: uint16(32768 + i%30000), MaxTTL: 15,
		}).Trace(fig.Dest.Addr)
		if err != nil {
			b.Fatal(err)
		}
		if len(anomaly.FindLoops(crt)) > 0 {
			classic++
		}
		prt, err := tracer.NewParisUDP(tp, tracer.Options{
			SrcPort: uint16(10000 + i%30000), MaxTTL: 15,
		}).Trace(fig.Dest.Addr)
		if err != nil {
			b.Fatal(err)
		}
		if len(anomaly.FindLoops(prt)) > 0 {
			paris++
		}
	}
	b.ReportMetric(float64(classic)/float64(b.N), "classic_loop_rate")
	b.ReportMetric(float64(paris)/float64(b.N), "paris_loop_rate")
}

// BenchmarkAblationProbesPerHop contrasts one and three probes per hop on
// diamond formation through the Fig. 6 balancer (Section 4.3: diamonds
// "can only arise if probing involves multiple probes per hop" — or
// repeated measurements).
func BenchmarkAblationProbesPerHop(b *testing.B) {
	fig := topo.BuildFigure6(1, netsim.PerFlow)
	tp := netsim.NewTransport(fig.Net)
	run := func(probes int) float64 {
		diamonds := 0
		for i := 0; i < b.N; i++ {
			g := anomaly.NewGraph(fig.Dest.Addr)
			rt, err := tracer.NewClassicUDP(tp, tracer.Options{
				SrcPort: uint16(32768 + i%30000), MaxTTL: 15, ProbesPerHop: probes,
			}).Trace(fig.Dest.Addr)
			if err != nil {
				b.Fatal(err)
			}
			if probes == 1 {
				g.Add(rt)
			} else {
				// With multiple probes per hop, every attempt
				// contributes a measured route.
				for a := 0; a < probes; a++ {
					sub := &tracer.Route{Dest: rt.Dest}
					for _, attempts := range rt.All {
						if a < len(attempts) {
							sub.Hops = append(sub.Hops, attempts[a])
						}
					}
					g.Add(sub)
				}
			}
			diamonds += len(g.Diamonds())
		}
		return float64(diamonds) / float64(b.N)
	}
	b.ReportMetric(run(1), "diamonds_1probe")
	b.ReportMetric(run(3), "diamonds_3probes")
}

// BenchmarkAblationPerPacket contrasts per-flow and per-packet balancers
// under Paris probing: per-flow anomalies vanish, per-packet residue stays.
func BenchmarkAblationPerPacket(b *testing.B) {
	run := func(policy netsim.Policy) float64 {
		fig := buildFig3Policy(policy)
		tp := netsim.NewTransport(fig.Net)
		loops := 0
		for i := 0; i < b.N; i++ {
			rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
			if err != nil {
				b.Fatal(err)
			}
			if len(anomaly.FindLoops(rt)) > 0 {
				loops++
			}
		}
		return float64(loops) / float64(b.N)
	}
	b.ReportMetric(run(netsim.PerFlow), "paris_loops_perflow_lb")
	b.ReportMetric(run(netsim.PerPacket), "paris_loops_perpacket_lb")
}

func buildFig3Policy(policy netsim.Policy) *topo.Figure3 {
	if policy == netsim.PerPacket {
		return topo.BuildFigure3PerPacket(1)
	}
	return topo.BuildFigure3(1)
}

// --- Microbenchmarks of the hot paths ---

// BenchmarkSingleTrace times one Paris traceroute through a generated
// topology end to end (probe building, simulated forwarding, response
// parsing, matching).
func BenchmarkSingleTrace(b *testing.B) {
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = 100
	sc := topo.Generate(cfg)
	tp := netsim.NewTransport(sc.Net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tracer.NewParisUDP(tp, tracer.Options{MinTTL: 2, MaxTTL: 39})
		if _, err := tr.Trace(sc.Dests[i%len(sc.Dests)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnomalyDetection times loop+cycle detection over a route.
func BenchmarkAnomalyDetection(b *testing.B) {
	fig := topo.BuildFigure3(1)
	tp := netsim.NewTransport(fig.Net)
	rt, err := tracer.NewClassicUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		anomaly.FindLoops(rt)
		anomaly.FindCycles(rt)
	}
}
