// Command anomaly-study reproduces the paper's Section 4 measurement
// campaign on a generated Internet-like topology: paired classic and Paris
// traceroutes from one source toward every destination, over repeated
// rounds, followed by the loop/cycle/diamond statistics with paper-vs-
// measured comparison.
//
// Usage:
//
//	anomaly-study [-dests N] [-rounds N] [-workers N] [-shards N] [-batch] [-stream] [-seed N] [-paper]
//	anomaly-study -live -live-dests A.B.C.D[,...] [-rounds N] [-batch] [-stream]
//
// -live swaps the simulator for the raw-socket transport
// (internal/tracer/live) and runs the identical paired-trace campaign
// against the real destinations in -live-dests; raw sockets need root or
// CAP_NET_RAW, and the tool exits with an explanation when they are
// unavailable.
//
// -paper selects the paper's full-scale study — 5,000 destinations and,
// unless -rounds is given explicitly, the complete 556 rounds. -shards
// partitions the topology across N independent simulated networks probed
// by shard-affine workers. -batch (default on) submits each trace's TTL
// ladder through the batched exchange path, amortizing per-probe overhead;
// -batch=false selects the sequential per-probe loop. -stream (default on)
// folds the statistics into per-worker accumulators as pairs complete, so
// memory stays O(destinations + unique routes) no matter how many rounds
// run; -stream=false retains every pair and analyzes at the end (the
// paper-scale study then holds ~5.6M routes in memory). Each destination's
// anomaly behaviour is determined by its own pod's gadgets, so neither the
// shard count, batching, nor streaming changes the Section 4 statistics
// (bit-identical on schedule-free topologies, equal in distribution
// otherwise) — only the scaling behaviour.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"repro/internal/measure"
	"repro/internal/topo"
	"repro/internal/tracer/live"
)

func main() {
	dests := flag.Int("dests", 500, "number of destinations")
	rounds := flag.Int("rounds", 25, "number of measurement rounds")
	workers := flag.Int("workers", 32, "parallel probing workers")
	shards := flag.Int("shards", 1, "independent network shards the topology is partitioned across")
	batch := flag.Bool("batch", true, "submit each trace's TTL ladder as batched exchanges")
	stream := flag.Bool("stream", true, "fold statistics during the campaign (constant memory); false retains every pair")
	foldEvery := flag.Int("fold-every", 0, "streaming fold-batch size per worker (0: default; statistics identical for every K)")
	seed := flag.Int64("seed", 42, "topology and dynamics seed")
	paper := flag.Bool("paper", false, "use the paper-scale configuration (5,000 destinations x 556 rounds)")
	truth := flag.Bool("truth", false, "print generator ground truth")
	liveMode := flag.Bool("live", false, "probe the real network over raw sockets instead of the simulator")
	liveDests := flag.String("live-dests", "", "comma-separated IPv4 destinations for -live")
	timeout := flag.Duration("timeout", 2*time.Second, "per-probe timeout for live probing")
	retries := flag.Int("retries", 1, "re-sends per unanswered live probe")
	flag.Parse()

	if *liveMode {
		if err := runLive(*liveDests, *rounds, *workers, *batch, *stream, *foldEvery, *seed, *timeout, *retries); err != nil {
			fmt.Fprintln(os.Stderr, "anomaly-study:", err)
			os.Exit(2)
		}
		return
	}

	roundsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rounds" {
			roundsSet = true
		}
	})

	cfg := topo.DefaultGenConfig()
	if *paper {
		cfg = topo.PaperScaleConfig()
		if !roundsSet {
			*rounds = 556
		}
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	if !*paper {
		cfg.Destinations = *dests
	}

	sc := topo.Generate(cfg)
	if *truth {
		fmt.Printf("ground truth: %+v\n\n", sc.Truth)
	}

	camp, err := measure.NewCampaign(sc.Transport(), measure.Config{
		Dests:      sc.Dests,
		Rounds:     *rounds,
		Workers:    *workers,
		RoundStart: sc.RoundStart,
		PortSeed:   *seed,
		ShardOf:    sc.ShardOf,
		Batch:      *batch,
		Stream:     *stream,
		FoldEvery:  *foldEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "anomaly-study:", err)
		os.Exit(1)
	}
	res, err := camp.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "anomaly-study:", err)
		os.Exit(1)
	}
	stats := res.Stats
	if stats == nil {
		stats = measure.Analyze(res)
	}
	measure.WriteReport(os.Stdout, stats, sc.AS)
}

// runLive runs the same paired-trace campaign against the real network over
// the raw-socket transport. It fails with a clear explanation when raw
// sockets are unavailable (root or CAP_NET_RAW required) so the study never
// half-runs without privileges.
func runLive(destList string, rounds, workers int, batch, stream bool, foldEvery int, seed int64, timeout time.Duration, retries int) error {
	if destList == "" {
		return fmt.Errorf("-live requires -live-dests A.B.C.D[,A.B.C.D...]")
	}
	var dsts []netip.Addr
	for _, s := range strings.Split(destList, ",") {
		d, err := netip.ParseAddr(strings.TrimSpace(s))
		if err != nil || !d.Is4() {
			return fmt.Errorf("-live-dests entry %q is not an IPv4 address", s)
		}
		dsts = append(dsts, d)
	}
	src, err := live.LocalIPv4()
	if err != nil {
		return fmt.Errorf("cannot determine local IPv4 source: %w", err)
	}
	tp, err := live.New(live.Config{Source: src, Timeout: timeout, Retries: retries})
	if err != nil {
		return fmt.Errorf("live probing unavailable: %w", err)
	}
	defer tp.Close()

	camp, err := measure.NewCampaign(tp, measure.Config{
		Dests:     dsts,
		Rounds:    rounds,
		Workers:   workers,
		MinTTL:    1,
		PortSeed:  seed,
		Batch:     batch,
		Stream:    stream,
		FoldEvery: foldEvery,
	})
	if err != nil {
		return err
	}
	res, err := camp.Run()
	if err != nil {
		return err
	}
	stats := res.Stats
	if stats == nil {
		stats = measure.Analyze(res)
	}
	measure.WriteReport(os.Stdout, stats, nil)
	return nil
}
