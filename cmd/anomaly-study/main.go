// Command anomaly-study reproduces the paper's Section 4 measurement
// campaign on a generated Internet-like topology: paired classic and Paris
// traceroutes from one source toward every destination, over repeated
// rounds, followed by the loop/cycle/diamond statistics with paper-vs-
// measured comparison.
//
// Usage:
//
//	anomaly-study [-dests N] [-rounds N] [-workers N] [-shards N] [-batch] [-stream]
//	              [-fold-every K] [-seed N] [-paper] [-truth] [-flips]
//	              [-delay S] [-load L] [-churn C] [-dynamics-seed N]
//	anomaly-study -checkpoint ck.json [-checkpoint-every N] [-resume] [-halt-after N]
//	              [-fail-fast] [-stats-json out.json]
//	anomaly-study -live {-live-dests A.B.C.D[,...] | -live-dests-file FILE}
//	              [-rounds N] [-workers N] [-batch] [-stream]
//	              [-timeout D] [-timeout-floor D] [-retries N]
//	anomaly-study -live ... -capture run.pcap
//	anomaly-study -replay run.pcap [-rounds N] [-workers N] [-seed N] [-retries N]
//	              [-live-dests ... | -live-dests-file FILE] [-stats-json out.json]
//
// -live swaps the simulator for the raw-socket layer (internal/tracer/
// live) and runs the identical paired-trace campaign against the real
// destinations in -live-dests or -live-dests-file (one destination per
// line, '#' comments and blank lines skipped, duplicates rejected); raw
// sockets need root or CAP_NET_RAW, and the tool exits with an explanation
// when they are unavailable. All workers share one mux — a single raw
// socket pair demultiplexes every worker's probes by quoted flow
// identifier — and per-destination RFC 6298 RTT estimators adapt each
// probe's deadline between -timeout-floor and -timeout. -retries is the
// re-send budget per unanswered probe; re-sends are spaced by the
// destination's adaptive, exponentially backed-off RTO (the historical
// -retry-backoff flag is accepted but ignored). The report's robustness
// section carries the mux health counters (reopens, kernel drops,
// degradation level, RTO spread).
//
// -capture records every live probe and response — pre-deduplication, before
// retransmit folding — to a classic pcap file, installed atomically when the
// campaign ends (even when interrupted). -replay re-runs a captured campaign
// offline through the same flow-key attribution as the live demultiplexer
// and recomputes the statistics; the campaign flags must match the captured
// run, and divergence fails loudly. See docs/replay.md.
//
// -delay, -load, and -churn switch on the simulator's virtual-clock
// dynamics (netsim.Dynamics): seeded per-link propagation/bandwidth/
// queueing delays, background cross-traffic inflating queues, and
// scheduled route flaps, balancer weight churn, and link brownouts —
// all replayed deterministically from -dynamics-seed, with hop RTTs
// measured on the virtual clock (the report grows a "hop RTTs" line).
// Statistics stay byte-identical across -workers/-shards/-batch settings
// for a fixed seed, dynamics on or off.
//
// The campaign is fault tolerant and resumable. SIGINT/SIGTERM stop it at
// the next destination boundary, print the partial statistics, and — with
// -checkpoint set — leave a checkpoint a later -resume run continues from
// (a second SIGINT/SIGTERM during the drain forces an immediate exit 130),
// re-running only the rounds after the last checkpointed one. A simulator
// campaign resumed with the same flags reproduces the uninterrupted run's
// statistics exactly when run with -workers 1 -flips=false (the
// schedule-free configuration; see internal/measure's package doc).
// -halt-after N stops the campaign after N completed rounds — the
// deterministic stand-in for a mid-study kill that the CI resume check
// uses. -fail-fast restores the historical abort-on-first-error policy;
// the default policy retries transient trace failures with exponential
// backoff and quarantines destinations that keep failing (the report then
// carries a fault-tolerance line). -stats-json writes the final statistics
// as canonical JSON for byte-level comparison across runs.
//
// -paper selects the paper's full-scale study — 5,000 destinations and,
// unless -rounds is given explicitly, the complete 556 rounds. -shards
// partitions the topology across N independent simulated networks probed
// by shard-affine workers. -batch (default on) submits each trace's TTL
// ladder through the batched exchange path, amortizing per-probe overhead;
// -batch=false selects the sequential per-probe loop. -stream (default on)
// folds the statistics into per-worker accumulators as pairs complete, so
// memory stays O(destinations + unique routes) no matter how many rounds
// run; -stream=false retains every pair and analyzes at the end (the
// paper-scale study then holds ~5.6M routes in memory). Each destination's
// anomaly behaviour is determined by its own pod's gadgets, so neither the
// shard count, batching, nor streaming changes the Section 4 statistics
// (bit-identical on schedule-free topologies, equal in distribution
// otherwise) — only the scaling behaviour.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pcap"
	"repro/internal/topo"
	"repro/internal/tracer"
	"repro/internal/tracer/live"
	"repro/internal/tracer/replay"
)

func main() {
	dests := flag.Int("dests", 500, "number of destinations")
	rounds := flag.Int("rounds", 25, "number of measurement rounds")
	workers := flag.Int("workers", 32, "parallel probing workers")
	shards := flag.Int("shards", 1, "independent network shards the topology is partitioned across")
	batch := flag.Bool("batch", true, "submit each trace's TTL ladder as batched exchanges")
	stream := flag.Bool("stream", true, "fold statistics during the campaign (constant memory); false retains every pair")
	foldEvery := flag.Int("fold-every", 0, "streaming fold-batch size per worker (0: default; statistics identical for every K)")
	seed := flag.Int64("seed", 42, "topology and dynamics seed")
	paper := flag.Bool("paper", false, "use the paper-scale configuration (5,000 destinations x 556 rounds)")
	truth := flag.Bool("truth", false, "print generator ground truth")
	liveMode := flag.Bool("live", false, "probe the real network over raw sockets instead of the simulator")
	liveDests := flag.String("live-dests", "", "comma-separated IPv4 destinations for -live")
	liveDestsFile := flag.String("live-dests-file", "", "file of IPv4 destinations for -live, one per line ('#' comments)")
	timeout := flag.Duration("timeout", 2*time.Second, "adaptive live-probe timeout cap (and the timeout before a destination has RTT samples)")
	timeoutFloor := flag.Duration("timeout-floor", 100*time.Millisecond, "adaptive live-probe timeout floor")
	retries := flag.Int("retries", 1, "re-sends per unanswered live probe")
	_ = flag.Duration("retry-backoff", 0, "ignored: live re-sends are spaced by the per-destination adaptive RTO")
	capturePath := flag.String("capture", "", "record every live probe and response to this pcap file (requires -live)")
	replayPath := flag.String("replay", "", "re-run a captured campaign offline from this pcap file (excludes -live and -capture)")
	failFast := flag.Bool("fail-fast", false, "abort the campaign on the first trace error instead of retrying and quarantining")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for resumable campaigns (requires -stream)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "write the checkpoint every N completed rounds")
	resume := flag.Bool("resume", false, "resume the campaign from -checkpoint instead of starting over")
	statsJSON := flag.String("stats-json", "", "write the final statistics as canonical JSON to this file")
	haltAfter := flag.Int("halt-after", 0, "stop after N completed rounds (testing aid for checkpoint/resume)")
	flips := flag.Bool("flips", true, "enable mid-trace path flips (disable for byte-reproducible resume)")
	delay := flag.Float64("delay", 0, "virtual-clock per-link delay scale (1 = calibrated; 0 disables)")
	load := flag.Float64("load", 0, "virtual-clock background cross-traffic intensity in [0, 0.95]")
	churn := flag.Float64("churn", 0, "virtual-clock scheduled-dynamics rate (flaps/weight churn/brownouts) in [0, 1]")
	dynamicsSeed := flag.Int64("dynamics-seed", 0, "seed for the virtual-clock dynamics draws (0: derived from -seed)")
	flag.Parse()

	if *checkpoint != "" && !*stream {
		fmt.Fprintln(os.Stderr, "anomaly-study: -checkpoint requires -stream")
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "anomaly-study: -resume requires -checkpoint")
		os.Exit(2)
	}
	if *capturePath != "" && !*liveMode {
		fmt.Fprintln(os.Stderr, "anomaly-study: -capture requires -live (the simulator is already replayable from its seed)")
		os.Exit(2)
	}
	if *replayPath != "" && (*liveMode || *capturePath != "") {
		fmt.Fprintln(os.Stderr, "anomaly-study: -replay is an offline mode and excludes -live and -capture")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A second signal during the graceful drain forces an immediate exit:
	// signal.Notify fans each signal out to every registered channel, so
	// this channel sees the same deliveries NotifyContext consumes.
	forceC := make(chan os.Signal, 2)
	signal.Notify(forceC, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-forceC
		<-forceC
		fmt.Fprintln(os.Stderr, "anomaly-study: second signal: forced immediate exit")
		os.Exit(130)
	}()
	haltRequested := false
	haltCancel := context.CancelFunc(func() {})
	if *haltAfter > 0 {
		ctx, haltCancel = context.WithCancel(ctx)
		defer haltCancel()
	}

	if *replayPath != "" {
		if err := runReplay(*replayPath, *liveDests, *liveDestsFile, *rounds, *workers, *batch, *stream, *foldEvery, *seed,
			*timeout, *retries, *statsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "anomaly-study:", err)
			os.Exit(2)
		}
		return
	}

	if *liveMode {
		if err := runLive(ctx, *liveDests, *liveDestsFile, *rounds, *workers, *batch, *stream, *foldEvery, *seed,
			*timeout, *timeoutFloor, *retries, *failFast, *checkpoint, *checkpointEvery, *capturePath); err != nil {
			fmt.Fprintln(os.Stderr, "anomaly-study:", err)
			os.Exit(2)
		}
		return
	}

	roundsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rounds" {
			roundsSet = true
		}
	})

	cfg := topo.DefaultGenConfig()
	if *paper {
		cfg = topo.PaperScaleConfig()
		if !roundsSet {
			*rounds = 556
		}
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	if !*paper {
		cfg.Destinations = *dests
	}
	if !*flips {
		// Mid-trace flips draw from an unreplayable per-probe stream; a
		// flip-free topology is what makes a resumed run byte-reproducible.
		cfg.FlipPerProbe = 0
	}
	cfg.Delay = *delay
	cfg.Load = *load
	cfg.Churn = *churn
	cfg.DynamicsSeed = *dynamicsSeed

	sc := topo.Generate(cfg)
	if *truth {
		fmt.Printf("ground truth: %+v\n\n", sc.Truth)
	}

	roundStart := sc.RoundStart
	if *haltAfter > 0 {
		inner, halt := roundStart, *haltAfter
		roundStart = func(r int) {
			if r >= halt {
				haltRequested = true
				haltCancel()
			}
			inner(r)
		}
	}

	camp, err := measure.NewCampaign(sc.Transport(), measure.Config{
		Dests:           sc.Dests,
		Rounds:          *rounds,
		Workers:         *workers,
		RoundStart:      roundStart,
		PortSeed:        *seed,
		ShardOf:         sc.ShardOf,
		Batch:           *batch,
		Stream:          *stream,
		FoldEvery:       *foldEvery,
		FailFast:        *failFast,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *checkpointEvery,
		TransportState:  probeCounters(sc.Nets),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "anomaly-study:", err)
		os.Exit(1)
	}
	if *resume {
		ck, err := measure.LoadCheckpoint(*checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anomaly-study:", err)
			os.Exit(1)
		}
		if err := restoreProbeCounters(sc.Nets, ck.Transport); err != nil {
			fmt.Fprintln(os.Stderr, "anomaly-study:", err)
			os.Exit(1)
		}
		if err := camp.Resume(ck); err != nil {
			fmt.Fprintln(os.Stderr, "anomaly-study:", err)
			os.Exit(1)
		}
	}

	res, err := camp.RunContext(ctx)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) && res != nil:
		// Interrupted (signal or -halt-after): the partial statistics below
		// are advisory; the checkpoint, when enabled, holds the resumable
		// truth.
		fmt.Fprintln(os.Stderr, "anomaly-study: interrupted:", err)
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "anomaly-study: rerun with -resume to continue from %s\n", *checkpoint)
		}
	default:
		fmt.Fprintln(os.Stderr, "anomaly-study:", err)
		os.Exit(1)
	}
	stats := res.Stats
	if stats == nil {
		stats = measure.Analyze(res)
	}
	measure.WriteReport(os.Stdout, stats, sc.AS)
	if err == nil && *statsJSON != "" {
		if werr := writeStatsJSON(*statsJSON, stats); werr != nil {
			fmt.Fprintln(os.Stderr, "anomaly-study:", werr)
			os.Exit(1)
		}
	}
	if err != nil && !haltRequested {
		os.Exit(130) // interrupted by a signal
	}
}

// probeCounters serializes each shard network's probe counter — the only
// transport cursor a resumed simulator campaign needs to replay per-packet
// schedules exactly.
func probeCounters(nets []*netsim.Network) func() json.RawMessage {
	return func() json.RawMessage {
		counts := make([]int, len(nets))
		for i, n := range nets {
			counts[i] = n.ProbeCount()
		}
		b, err := json.Marshal(struct{ ProbeCounts []int }{counts})
		if err != nil {
			return nil
		}
		return b
	}
}

// restoreProbeCounters rewinds each shard network to the checkpointed probe
// counter before the resumed campaign starts probing.
func restoreProbeCounters(nets []*netsim.Network, raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	var st struct{ ProbeCounts []int }
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("checkpoint transport state: %w", err)
	}
	if len(st.ProbeCounts) != len(nets) {
		return fmt.Errorf("checkpoint transport state covers %d shards, campaign has %d", len(st.ProbeCounts), len(nets))
	}
	for i, n := range nets {
		n.SetProbeCount(st.ProbeCounts[i])
	}
	return nil
}

// writeStatsJSON writes the statistics as canonical JSON (sorted keys,
// stable indentation): two equal Stats values serialize to identical bytes,
// which is what the resume acceptance check compares.
func writeStatsJSON(path string, stats *measure.Stats) error {
	b, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runLive runs the same paired-trace campaign against the real network over
// one shared raw-socket mux: every worker holds its own Transport handle
// onto a single ICMP+TCP receive pair, and responses are attributed across
// workers by quoted flow identifier. It fails with a clear explanation when
// raw sockets are unavailable (root or CAP_NET_RAW required) so the study
// never half-runs without privileges. The context cancels both the campaign
// loop and the mux's in-flight deadline wheel, so an interrupt drains
// within one probe timeout; with -checkpoint set an interrupted live study
// resumes its round cursor and quarantine state (live responses themselves
// are not replayable, so resumed statistics are not byte-stable).
func runLive(ctx context.Context, destList, destsFile string, rounds, workers int, batch, stream bool, foldEvery int, seed int64, timeout, timeoutFloor time.Duration, retries int, failFast bool, checkpoint string, checkpointEvery int, capturePath string) (err error) {
	dsts, err := liveDestinations(destList, destsFile)
	if err != nil {
		return err
	}
	src, err := live.LocalIPv4()
	if err != nil {
		return fmt.Errorf("cannot determine local IPv4 source: %w", err)
	}
	mc := live.MuxConfig{
		Source: src, Timeout: timeout, TimeoutFloor: timeoutFloor,
		Retries: retries, Context: ctx,
		OnPressure: func(h tracer.MuxHealth) {
			fmt.Fprintf(os.Stderr, "anomaly-study: receive pressure: degrade=%d kernel-drops=%d events=%d\n",
				h.DegradeShift, h.KernelDrops, h.PressureEvents)
		},
	}
	var capSink *pcap.Capture
	if capturePath != "" {
		if capSink, err = pcap.CreateCapture(capturePath); err != nil {
			return err
		}
		mc.Capture = capSink
		// Registered before the mux's Close below, so it flushes after the
		// mux stops feeding the sink — an interrupted campaign still
		// installs a complete, readable capture.
		defer func() {
			if cerr := capSink.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("finalizing capture: %w", cerr)
				return
			}
			fmt.Fprintf(os.Stderr, "anomaly-study: capture: %d record(s) written to %s\n", capSink.Count(), capSink.Path())
		}()
	}
	m, err := live.NewMux(mc)
	if err != nil {
		return fmt.Errorf("live probing unavailable: %w", err)
	}
	defer m.Close()

	camp, err := measure.NewCampaign(nil, measure.Config{
		Dests:           dsts,
		Rounds:          rounds,
		Workers:         workers,
		MinTTL:          1,
		PortSeed:        seed,
		Batch:           batch,
		Stream:          stream,
		FoldEvery:       foldEvery,
		FailFast:        failFast,
		CheckpointPath:  checkpoint,
		CheckpointEvery: checkpointEvery,
		// One Transport handle per worker, all onto the shared mux: the
		// whole campaign runs over a single raw socket pair.
		TransportFor: func(int) tracer.Transport { return m.Transport() },
	})
	if err != nil {
		return err
	}
	res, err := camp.RunContext(ctx)
	if err != nil && !(errors.Is(err, context.Canceled) && res != nil) {
		return err
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "anomaly-study: interrupted:", err)
	}
	stats := res.Stats
	if stats == nil {
		stats = measure.Analyze(res)
	}
	h := m.Health()
	stats.Robust.Mux = &h
	measure.WriteReport(os.Stdout, stats, nil)
	return nil
}

// runReplay re-runs a captured live campaign offline: the pcap's probes and
// responses stand in for the network (no sockets, no privileges), attributed
// by the same flow-key logic as the live demultiplexer, and the statistics
// are recomputed from the replayed routes. The campaign shape — rounds,
// workers, -seed (the port seed), -retries, and the destination order —
// must match the captured run; pass -live-dests/-live-dests-file to pin the
// destination order explicitly (defaults to the capture's first-seen order,
// which matches only single-worker campaigns). Divergence fails loudly.
func runReplay(path, destList, destsFile string, rounds, workers int, batch, stream bool, foldEvery int, seed int64, timeout time.Duration, retries int, statsJSON string) error {
	rt, err := replay.Open(path, replay.Config{Retries: retries, Timeout: timeout})
	if err != nil {
		return err
	}
	dsts := rt.Destinations()
	if destList != "" || destsFile != "" {
		if dsts, err = liveDestinations(destList, destsFile); err != nil {
			return err
		}
	}
	camp, err := measure.NewCampaign(nil, measure.Config{
		Dests:     dsts,
		Rounds:    rounds,
		Workers:   workers,
		MinTTL:    1,
		PortSeed:  seed,
		Batch:     batch,
		Stream:    stream,
		FoldEvery: foldEvery,
		// Replay errors are deterministic — a probe the capture does not
		// hold will be missing on every retry — so the fault-tolerant
		// retry/quarantine policy would only bury the divergence.
		FailFast:     true,
		TransportFor: func(int) tracer.Transport { return rt },
	})
	if err != nil {
		return err
	}
	res, err := camp.Run()
	if err != nil {
		return fmt.Errorf("replaying %s: %w", path, err)
	}
	stats := res.Stats
	if stats == nil {
		stats = measure.Analyze(res)
	}
	measure.WriteReport(os.Stdout, stats, nil)
	if l, j := rt.Leftover(), rt.Junk(); l != 0 || j != 0 {
		fmt.Fprintf(os.Stderr, "anomaly-study: replay: %d captured exchange(s) never served, %d junk record(s) — the replayed campaign diverges from the captured one\n", l, j)
	}
	if statsJSON != "" {
		if werr := writeStatsJSON(statsJSON, stats); werr != nil {
			return werr
		}
	}
	return nil
}

// liveDestinations resolves the live destination list from whichever flag
// was given: the inline comma-separated list or the one-per-line file
// (live.ReadDestsFile's format: '#' comments, blank lines skipped,
// duplicates rejected). Exactly one source must be set.
func liveDestinations(destList, destsFile string) ([]netip.Addr, error) {
	switch {
	case destsFile != "" && destList != "":
		return nil, fmt.Errorf("-live-dests and -live-dests-file are mutually exclusive")
	case destsFile != "":
		return live.ReadDestsFile(destsFile)
	case destList == "":
		return nil, fmt.Errorf("-live requires -live-dests A.B.C.D[,...] or -live-dests-file FILE")
	}
	var dsts []netip.Addr
	seen := make(map[netip.Addr]bool)
	for _, s := range strings.Split(destList, ",") {
		d, err := netip.ParseAddr(strings.TrimSpace(s))
		if err != nil || !d.Is4() {
			return nil, fmt.Errorf("-live-dests entry %q is not an IPv4 address", s)
		}
		if seen[d] {
			return nil, fmt.Errorf("-live-dests lists %v twice", d)
		}
		seen[d] = true
		dsts = append(dsts, d)
	}
	return dsts, nil
}
