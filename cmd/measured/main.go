// Command measured is the always-on measurement service: the paper's paired
// classic/Paris probing run as a long-lived daemon (internal/daemon) instead
// of a one-shot campaign. It owns per-destination probing cadence (periodic
// re-probe, immediate re-exploration when a route's fingerprint changes),
// survives worker panics and wedged transports, sheds load explicitly when
// the due queue exceeds capacity, serves health/stats/events over HTTP, and
// checkpoints continuously so a kill -9 resumes where it left off.
//
// Usage:
//
//	measured [-dests N] [-seed N] [-listen ADDR] [-period N] [-interval D]
//	         [-workers N] [-queue-cap N] [-rate P] [-burst N]
//	         [-stall-timeout D] [-max-restarts N]
//	         [-checkpoint ck.json] [-checkpoint-every N] [-fresh]
//	         [-max-rounds N] [-delay S] [-load L] [-churn C]
//	         [-dynamics-seed N] [-flips] [-batch]
//	         [-fault-seed N] [-fault-transient-every K] [-fault-drop-every K]
//	         [-fault-panic-every K]
//	measured -live {-live-dests A.B.C.D[,...] | -live-dests-file FILE}
//	         [-timeout D] [-timeout-floor D] [-retries N] [-capture run.pcap]
//
// The default transport is the deterministic simulator over a generated
// topology; -live swaps in the shared raw-socket mux (root or CAP_NET_RAW):
// one ICMP+TCP receive pair serves every daemon worker, per-destination
// RFC 6298 RTT estimators adapt probe deadlines between -timeout-floor and
// -timeout, and the mux health counters (reopens, kernel drops, degradation
// level, RTO spread) are served in /stats under Robust.Mux.
// -capture records every live probe and response (pre-deduplication) to a
// classic pcap file, installed atomically on shutdown — including the
// signalled drain — for offline replay with anomaly-study -replay or
// paris-traceroute -replay (see docs/replay.md).
// -rate installs a token-bucket pacer over whichever transport is selected,
// capping the process's aggregate probe rate; under live receive pressure
// the mux halves that rate per degradation level and restores it as the
// pressure clears. The -fault-* flags afflict
// the simulator with seeded transient-error, response-drop, and injected-
// panic schedules — the hermetic soak configuration CI exercises the
// supervision machinery with.
//
// Signals: the first SIGINT/SIGTERM starts a graceful drain (finish the
// round, write the final checkpoint, exit 130); a second signal forces an
// immediate exit 130 without draining.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/asmap"
	"repro/internal/daemon"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pcap"
	"repro/internal/topo"
	"repro/internal/tracer"
	"repro/internal/tracer/live"
)

func main() {
	dests := flag.Int("dests", 200, "number of simulated destinations")
	seed := flag.Int64("seed", 42, "topology, port, and dynamics seed")
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address for /healthz /readyz /stats /events (empty: no HTTP)")
	period := flag.Int("period", 5, "re-probe cadence in scheduler rounds")
	interval := flag.Duration("interval", time.Second, "wall-clock pause between scheduler rounds")
	workers := flag.Int("workers", 4, "supervised probing workers")
	queueCap := flag.Int("queue-cap", 0, "per-round job admission bound; overflow is shed oldest-first (0: 8*workers)")
	rate := flag.Float64("rate", 0, "aggregate probe rate cap in probes/second (0: unpaced)")
	burst := flag.Int("burst", 64, "probe pacer burst capacity")
	stallTimeout := flag.Duration("stall-timeout", 30*time.Second, "watchdog deadline per trace; stalled traces are abandoned")
	maxRestarts := flag.Int("max-restarts", 8, "panic restarts per worker slot before it stays dead")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for continuous checkpointing and startup auto-recovery")
	checkpointEvery := flag.Int("checkpoint-every", 1, "write the checkpoint every N completed rounds")
	fresh := flag.Bool("fresh", false, "ignore an existing checkpoint instead of recovering from it")
	maxRounds := flag.Int("max-rounds", 0, "stop after N completed rounds (0: run until signalled)")
	batch := flag.Bool("batch", true, "submit each trace's TTL ladder as batched exchanges")
	flips := flag.Bool("flips", true, "enable mid-trace path flips (disable for reproducible soaks)")
	delay := flag.Float64("delay", 0, "virtual-clock per-link delay scale (1 = calibrated; 0 disables)")
	load := flag.Float64("load", 0, "virtual-clock background cross-traffic intensity in [0, 0.95]")
	churn := flag.Float64("churn", 0, "virtual-clock scheduled-dynamics rate in [0, 1]")
	dynamicsSeed := flag.Int64("dynamics-seed", 0, "seed for the virtual-clock dynamics draws (0: derived from -seed)")
	faultSeed := flag.Int64("fault-seed", 0, "fault-injection seed (with any -fault-*-every flag)")
	faultTransient := flag.Int("fault-transient-every", 0, "afflict ~every k-th destination with a transient-error window")
	faultDrop := flag.Int("fault-drop-every", 0, "afflict ~every k-th destination with a response-drop burst")
	faultPanic := flag.Int("fault-panic-every", 0, "afflict ~every k-th destination with an injected-panic window")
	liveMode := flag.Bool("live", false, "probe the real network over raw sockets instead of the simulator")
	liveDests := flag.String("live-dests", "", "comma-separated IPv4 destinations for -live")
	liveDestsFile := flag.String("live-dests-file", "", "file of IPv4 destinations for -live, one per line ('#' comments)")
	timeout := flag.Duration("timeout", 2*time.Second, "adaptive live-probe timeout cap (and the timeout before a destination has RTT samples)")
	timeoutFloor := flag.Duration("timeout-floor", 100*time.Millisecond, "adaptive live-probe timeout floor")
	retries := flag.Int("retries", 1, "re-sends per unanswered live probe")
	capturePath := flag.String("capture", "", "record every live probe and response to this pcap file (requires -live)")
	flag.Parse()

	if *capturePath != "" && !*liveMode {
		fmt.Fprintln(os.Stderr, "measured: -capture requires -live (the simulator is already replayable from its seed)")
		os.Exit(2)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigC := make(chan os.Signal, 2)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigC
		fmt.Fprintln(os.Stderr, "measured: signal received; draining (second signal forces exit)")
		cancel()
		<-sigC
		fmt.Fprintln(os.Stderr, "measured: second signal: forced immediate exit")
		os.Exit(130)
	}()

	cfg := daemon.Config{
		Period:            *period,
		Interval:          *interval,
		Workers:           *workers,
		QueueCap:          *queueCap,
		MaxWorkerRestarts: *maxRestarts,
		StallTimeout:      *stallTimeout,
		CheckpointPath:    *checkpoint,
		CheckpointEvery:   *checkpointEvery,
		FreshStart:        *fresh,
		Probe:             measure.ProbeConfig{PortSeed: *seed, Batch: *batch},
	}

	var pacer *tracer.Pacer
	if *rate > 0 {
		pacer = tracer.NewPacer(*rate, float64(*burst), nil, nil)
	}

	var asNames *asmap.Table
	var capSink *pcap.Capture
	var liveM *live.Mux
	if *liveMode {
		if *capturePath != "" {
			var err error
			if capSink, err = pcap.CreateCapture(*capturePath); err != nil {
				fmt.Fprintln(os.Stderr, "measured:", err)
				os.Exit(1)
			}
		}
		ds, m, err := liveMux(ctx, *liveDests, *liveDestsFile, *timeout, *timeoutFloor, *retries, pacer, *rate, capSink)
		if err != nil {
			fmt.Fprintln(os.Stderr, "measured:", err)
			os.Exit(2)
		}
		defer m.Close()
		liveM = m
		cfg.Dests = ds
		cfg.Transport = m.Transport()
		cfg.Probe.MinTTL = 1
		cfg.MuxHealth = m.Health
	} else {
		gc := topo.DefaultGenConfig()
		gc.Seed = *seed
		gc.Destinations = *dests
		if !*flips {
			gc.FlipPerProbe = 0
		}
		gc.Delay = *delay
		gc.Load = *load
		gc.Churn = *churn
		gc.DynamicsSeed = *dynamicsSeed
		sc := topo.Generate(gc)
		asNames = sc.AS
		cfg.Dests = sc.Dests
		cfg.RoundStart = sc.RoundStart
		var tp tracer.Transport = sc.Transport()
		if *faultTransient > 0 || *faultDrop > 0 || *faultPanic > 0 {
			tp = netsim.WrapFaults(tp, netsim.FaultPlan{
				Seed:           *faultSeed,
				TransientEvery: *faultTransient, TransientStart: 1, TransientLen: 40,
				DropEvery: *faultDrop, DropStart: 2, DropLen: 30,
				PanicEvery: *faultPanic, PanicStart: 3, PanicLen: 2,
			})
		}
		cfg.Transport = tp
		cfg.TransportState = probeCounters(sc.Nets)
		cfg.RestoreTransport = restoreProbeCounters(sc.Nets)
	}
	if pacer != nil {
		cfg.Transport = tracer.NewPacedTransport(cfg.Transport, pacer)
	}

	d, err := daemon.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measured:", err)
		os.Exit(1)
	}
	if ok, at := d.Recovered(); ok {
		fmt.Fprintf(os.Stderr, "measured: recovered from %s at round %d\n", *checkpoint, at)
	}

	var srv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "measured:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "measured: listening on %v\n", ln.Addr())
		srv = &http.Server{Handler: d.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "measured: http:", err)
			}
		}()
	}

	runErr := run(ctx, d, *maxRounds, *interval)
	if srv != nil {
		// Close, not Shutdown: /events streams hold connections open
		// indefinitely and would stall a graceful shutdown forever.
		_ = srv.Close()
	}
	if capSink != nil {
		// The daemon has stopped probing; close the mux (idempotent — the
		// deferred Close becomes a no-op) so every record reaches the sink,
		// then install the capture here rather than in a defer: the
		// signalled exit paths below leave through os.Exit.
		_ = liveM.Close()
		if cerr := capSink.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "measured: finalizing capture:", cerr)
		} else {
			fmt.Fprintf(os.Stderr, "measured: capture: %d record(s) written to %s\n", capSink.Count(), capSink.Path())
		}
	}
	measure.WriteReport(os.Stdout, d.Snapshot(), asNames)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "measured:", runErr)
		os.Exit(1)
	}
	if ctx.Err() != nil {
		os.Exit(130) // interrupted by a signal
	}
}

// run drives the daemon: forever on the production loop, or for a bounded
// number of rounds with -max-rounds (the deterministic soak configuration).
func run(ctx context.Context, d *daemon.Daemon, maxRounds int, interval time.Duration) error {
	if maxRounds <= 0 {
		return d.Run(ctx)
	}
	for d.Round() < int64(maxRounds) && ctx.Err() == nil {
		d.Tick()
		if d.Round() >= int64(maxRounds) {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(interval):
		}
	}
	return d.Stop()
}

// probeCounters serializes each shard network's probe counter — the opaque
// transport cursor the daemon persists so a restarted soak replays the same
// per-packet schedules.
func probeCounters(nets []*netsim.Network) func() json.RawMessage {
	return func() json.RawMessage {
		counts := make([]int, len(nets))
		for i, n := range nets {
			counts[i] = n.ProbeCount()
		}
		b, err := json.Marshal(struct{ ProbeCounts []int }{counts})
		if err != nil {
			return nil
		}
		return b
	}
}

// restoreProbeCounters rewinds each shard network to the checkpointed probe
// counter during daemon recovery.
func restoreProbeCounters(nets []*netsim.Network) func(json.RawMessage) error {
	return func(raw json.RawMessage) error {
		if len(raw) == 0 {
			return nil
		}
		var st struct{ ProbeCounts []int }
		if err := json.Unmarshal(raw, &st); err != nil {
			return fmt.Errorf("checkpoint transport state: %w", err)
		}
		if len(st.ProbeCounts) != len(nets) {
			return fmt.Errorf("checkpoint transport state covers %d shards, daemon has %d", len(st.ProbeCounts), len(nets))
		}
		for i, n := range nets {
			n.SetProbeCount(st.ProbeCounts[i])
		}
		return nil
	}
}

// liveMux parses the live destination flags and opens the shared raw-socket
// mux every daemon worker's probes are multiplexed over, failing with a
// clear explanation when raw sockets are unavailable. When a pacer is
// installed the mux's pressure callback halves the aggregate probe rate per
// degradation level and restores it as clean read turns accumulate.
func liveMux(ctx context.Context, destList, destsFile string, timeout, timeoutFloor time.Duration, retries int, pacer *tracer.Pacer, rate float64, capSink *pcap.Capture) ([]netip.Addr, *live.Mux, error) {
	ds, err := liveDestinations(destList, destsFile)
	if err != nil {
		return nil, nil, err
	}
	src, err := live.LocalIPv4()
	if err != nil {
		return nil, nil, fmt.Errorf("cannot determine local IPv4 source: %w", err)
	}
	mc := live.MuxConfig{
		Source: src, Timeout: timeout, TimeoutFloor: timeoutFloor,
		Retries: retries, Context: ctx,
		OnPressure: func(h tracer.MuxHealth) {
			if pacer != nil {
				pacer.SetRate(rate / float64(uint64(1)<<h.DegradeShift))
			}
			fmt.Fprintf(os.Stderr, "measured: receive pressure: degrade=%d kernel-drops=%d events=%d\n",
				h.DegradeShift, h.KernelDrops, h.PressureEvents)
		},
	}
	if capSink != nil {
		mc.Capture = capSink
	}
	m, err := live.NewMux(mc)
	if err != nil {
		return nil, nil, fmt.Errorf("live probing unavailable: %w", err)
	}
	return ds, m, nil
}

// liveDestinations resolves the live destination list from whichever flag
// was given: the inline comma-separated list or the one-per-line file
// (live.ReadDestsFile's format: '#' comments, blank lines skipped,
// duplicates rejected). Exactly one source must be set.
func liveDestinations(destList, destsFile string) ([]netip.Addr, error) {
	switch {
	case destsFile != "" && destList != "":
		return nil, fmt.Errorf("-live-dests and -live-dests-file are mutually exclusive")
	case destsFile != "":
		return live.ReadDestsFile(destsFile)
	case destList == "":
		return nil, fmt.Errorf("-live requires -live-dests A.B.C.D[,...] or -live-dests-file FILE")
	}
	var ds []netip.Addr
	seen := make(map[netip.Addr]bool)
	for _, s := range strings.Split(destList, ",") {
		d, err := netip.ParseAddr(strings.TrimSpace(s))
		if err != nil || !d.Is4() {
			return nil, fmt.Errorf("-live-dests entry %q is not an IPv4 address", s)
		}
		if seen[d] {
			return nil, fmt.Errorf("-live-dests lists %v twice", d)
		}
		seen[d] = true
		ds = append(ds, d)
	}
	return ds, nil
}
