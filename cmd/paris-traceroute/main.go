// Command paris-traceroute traces routes through a simulated scenario with
// any of the probing disciplines the paper discusses, printing classic
// traceroute-style output extended with the Paris observables (probe TTL,
// response TTL, IP ID).
//
// Usage:
//
//	paris-traceroute [-scenario fig3] [-method paris-udp] [-flows N] [-shards N] [-batch] [-seed N]
//	paris-traceroute -live -dest A.B.C.D [-method paris-udp] [-batch]
//	                 [-timeout 2s] [-retries 1] [-retry-backoff 0]
//	paris-traceroute -live -live-dests-file FILE [-method paris-udp] [-batch]
//	                 [-timeout 2s] [-timeout-floor 100ms] [-retries 1]
//	paris-traceroute -live ... -capture trace.pcap
//	paris-traceroute -replay trace.pcap [-dest A.B.C.D] [-method paris-udp] [-batch] [-retries 1]
//
// Scenarios: fig1, fig3, fig4, fig5, fig6, random. -seed seeds the random
// scenario's generator. With -shards N > 1 the random scenario is
// partitioned across N independent simulated networks and the trace runs
// through the sharded dispatch path. -batch submits the TTL ladder through
// the batched exchange path instead of one exchange per probe; the
// measured route is identical either way.
// Methods: paris-udp, paris-icmp, paris-tcp, classic-udp, classic-icmp,
// tcptraceroute.
//
// -live replaces the simulator with the raw-socket transport
// (internal/tracer/live): probes go on the wire verbatim and -dest names
// the real IPv4 destination. Raw sockets need root or CAP_NET_RAW; without
// them the tool explains and exits rather than probing anything. -timeout,
// -retries, and -retry-backoff apply only to live probing: an unanswered
// probe is re-sent up to -retries times, each re-send spaced by an
// exponentially growing, seeded-jitter backoff when -retry-backoff is
// nonzero (the same policy anomaly-study uses), and a probe that exhausts
// its attempts resolves as a star.
//
// -live-dests-file traces every destination listed in the file (one IPv4
// address per line, '#' comments and blank lines skipped, duplicates
// rejected) through one shared raw-socket mux: a single ICMP+TCP receive
// pair demultiplexes all the traces' responses by quoted flow identifier,
// and per-destination RFC 6298 RTT estimators adapt each probe's deadline
// between -timeout-floor and -timeout. A mux health summary line (reopens,
// kernel drops, pressure events) closes the output.
//
// With -flows N > 1, the tool runs the paper's future-work multipath
// enumeration: one Paris trace per flow, reporting every interface of each
// load balancer and every distinct path.
//
// -capture FILE records every live probe and response (pre-deduplication,
// before retransmit folding) to a classic pcap file as the trace runs; the
// file is installed atomically when the run finishes, so an interrupted run
// still leaves a complete, readable capture. -replay FILE is the offline
// counterpart: it re-serves a captured run through the same flow-key
// attribution as the live demultiplexer — no network, no privileges — and
// traces either -dest or, by default, every destination the capture probed.
// -retries and -timeout must match the captured run's settings; a probe the
// capture does not hold fails the replay loudly rather than guessing. See
// docs/replay.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pcap"
	"repro/internal/topo"
	"repro/internal/tracer"
	"repro/internal/tracer/live"
	"repro/internal/tracer/replay"
)

func main() {
	scenario := flag.String("scenario", "fig3", "topology: fig1, fig3, fig4, fig5, fig6, random")
	method := flag.String("method", "paris-udp", "probing method")
	flows := flag.Int("flows", 1, "number of flows (>1 enables multipath enumeration)")
	shards := flag.Int("shards", 1, "network shards for the random scenario")
	batch := flag.Bool("batch", false, "submit the TTL ladder as batched exchanges")
	seed := flag.Int64("seed", 1, "simulation seed")
	liveMode := flag.Bool("live", false, "probe the real network over raw sockets instead of the simulator")
	liveDest := flag.String("dest", "", "live destination IPv4 address (required with -live unless -live-dests-file)")
	liveDestsFile := flag.String("live-dests-file", "", "file of live IPv4 destinations, one per line ('#' comments); traces all through one shared mux")
	timeout := flag.Duration("timeout", 2*time.Second, "per-probe timeout for live probing (the adaptive cap with -live-dests-file)")
	timeoutFloor := flag.Duration("timeout-floor", 100*time.Millisecond, "adaptive timeout floor for -live-dests-file probing")
	retries := flag.Int("retries", 1, "re-sends per unanswered live probe")
	retryBackoff := flag.Duration("retry-backoff", 0, "jittered backoff between live probe re-sends (0: immediate; -live-dests-file paces by adaptive RTO instead)")
	capturePath := flag.String("capture", "", "record every live probe and response to this pcap file (requires -live)")
	replayPath := flag.String("replay", "", "replay a captured pcap offline instead of probing (excludes -live and -capture)")
	flag.Parse()

	if *replayPath != "" {
		switch {
		case *liveMode:
			fmt.Fprintln(os.Stderr, "paris-traceroute: -replay is an offline mode and excludes -live")
			os.Exit(2)
		case *capturePath != "":
			fmt.Fprintln(os.Stderr, "paris-traceroute: -capture and -replay are mutually exclusive")
			os.Exit(2)
		case *flows > 1:
			fmt.Fprintln(os.Stderr, "paris-traceroute: -flows > 1 is not supported with -replay")
			os.Exit(2)
		}
		if err := runReplay(*replayPath, *liveDest, *method, *batch, *retries, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "paris-traceroute:", err)
			os.Exit(1)
		}
		return
	}

	var capSink *pcap.Capture
	if *capturePath != "" {
		if !*liveMode {
			fmt.Fprintln(os.Stderr, "paris-traceroute: -capture requires -live (the simulator is already replayable from its seed)")
			os.Exit(2)
		}
		var err error
		if capSink, err = pcap.CreateCapture(*capturePath); err != nil {
			fmt.Fprintln(os.Stderr, "paris-traceroute:", err)
			os.Exit(1)
		}
	}

	if *liveMode && *liveDestsFile != "" {
		if *liveDest != "" {
			fmt.Fprintln(os.Stderr, "paris-traceroute: -dest and -live-dests-file are mutually exclusive")
			os.Exit(2)
		}
		if *flows > 1 {
			fmt.Fprintln(os.Stderr, "paris-traceroute: -flows > 1 is not supported with -live-dests-file")
			os.Exit(2)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runLiveMulti(ctx, *liveDestsFile, *method, *batch, *timeout, *timeoutFloor, *retries, capSink); err != nil {
			fmt.Fprintln(os.Stderr, "paris-traceroute:", err)
			os.Exit(1)
		}
		return
	}

	var (
		tp   tracer.Transport
		dest netip.Addr
		err  error
	)
	if *liveMode {
		// Ctrl-C mid-trace cancels the in-flight deadline wheel instead of
		// waiting out the remaining probe timeouts.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		tp, dest, err = buildLive(ctx, *liveDest, *timeout, *retries, *retryBackoff, capSink)
	} else {
		tp, dest, err = buildScenario(*scenario, *seed, *shards)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paris-traceroute:", err)
		os.Exit(2)
	}

	if *flows > 1 {
		enumerate(tp, dest, *flows)
		return
	}

	tr, err := buildTracer(*method, tp, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paris-traceroute:", err)
		os.Exit(2)
	}
	rt, err := tr.Trace(dest)
	// The capture flushes whatever was recorded before the failure too: a
	// partial run still installs a complete, readable pcap.
	if cerr := finishCapture(capSink); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paris-traceroute:", err)
		os.Exit(1)
	}
	printRoute(tr.Name(), dest, rt)
}

// finishCapture installs an armed capture sink and reports where it went.
func finishCapture(c *pcap.Capture) error {
	if c == nil {
		return nil
	}
	if err := c.Close(); err != nil {
		return fmt.Errorf("finalizing capture: %w", err)
	}
	fmt.Fprintf(os.Stderr, "capture: %d record(s) written to %s\n", c.Count(), c.Path())
	return nil
}

// runReplay re-serves a captured run offline: the pcap's probes and
// responses stand in for the network, attributed by the same flow-key logic
// the live demultiplexer uses. Divergence — a probe the capture never sent,
// mismatched retry settings — fails loudly rather than inventing traffic.
func runReplay(path, destStr, method string, batch bool, retries int, timeout time.Duration) error {
	rt, err := replay.Open(path, replay.Config{Retries: retries, Timeout: timeout})
	if err != nil {
		return err
	}
	tr, err := buildTracer(method, rt, batch)
	if err != nil {
		return err
	}
	dests := rt.Destinations()
	if destStr != "" {
		d, err := netip.ParseAddr(destStr)
		if err != nil || !d.Is4() {
			return fmt.Errorf("-dest %q is not an IPv4 address", destStr)
		}
		dests = []netip.Addr{d}
	}
	if len(dests) == 0 {
		return fmt.Errorf("capture %s holds no probed destinations", path)
	}
	for i, d := range dests {
		route, err := tr.Trace(d)
		if err != nil {
			return fmt.Errorf("replaying trace to %v: %w", d, err)
		}
		if i > 0 {
			fmt.Println()
		}
		printRoute(tr.Name(), d, route)
	}
	if l, j := rt.Leftover(), rt.Junk(); l != 0 || j != 0 {
		fmt.Fprintf(os.Stderr, "replay: %d captured exchange(s) never served, %d junk record(s) — the replayed run diverges from the captured one\n", l, j)
	}
	return nil
}

// printRoute renders one measured route in the classic traceroute style
// extended with the Paris observables.
func printRoute(name string, dest netip.Addr, rt *tracer.Route) {
	fmt.Printf("%s to %s, %d hops max\n", name, dest, 30)
	for _, h := range rt.Hops {
		if h.Star() {
			fmt.Printf("%2d  *\n", h.TTL)
			continue
		}
		extra := ""
		if h.ProbeTTL >= 0 && h.ProbeTTL != 1 {
			extra += fmt.Sprintf("  probe-ttl=%d!", h.ProbeTTL)
		}
		fmt.Printf("%2d  %-15s  %7.3f ms  resp-ttl=%-3d ipid=%-5d%s%s\n",
			h.TTL, h.Addr, float64(h.RTT.Microseconds())/1000, h.RespTTL, h.IPID,
			flagStr(h), extra)
	}
	fmt.Printf("halt: %v\n", rt.Halt)
}

// runLiveMulti traces every destination in the file through one shared
// raw-socket mux and closes with the mux health summary.
func runLiveMulti(ctx context.Context, path, method string, batch bool, timeout, timeoutFloor time.Duration, retries int, capSink *pcap.Capture) (err error) {
	dests, err := live.ReadDestsFile(path)
	if err != nil {
		return err
	}
	src, err := live.LocalIPv4()
	if err != nil {
		return fmt.Errorf("cannot determine local IPv4 source: %w", err)
	}
	// Flush the capture after the mux stops feeding it (deferred before the
	// mux's own Close so it runs after), even when a trace fails: an
	// interrupted run still installs a complete, readable capture.
	defer func() {
		if cerr := finishCapture(capSink); cerr != nil && err == nil {
			err = cerr
		}
	}()
	mc := live.MuxConfig{
		Source: src, Timeout: timeout, TimeoutFloor: timeoutFloor,
		Retries: retries, Context: ctx,
	}
	if capSink != nil {
		mc.Capture = capSink
	}
	m, err := live.NewMux(mc)
	if err != nil {
		return fmt.Errorf("live probing unavailable: %w", err)
	}
	defer m.Close()
	tr, err := buildTracer(method, m.Transport(), batch)
	if err != nil {
		return err
	}
	for i, d := range dests {
		var rt *tracer.Route
		rt, err = tr.Trace(d)
		if err != nil {
			return fmt.Errorf("trace %v: %w", d, err)
		}
		if i > 0 {
			fmt.Println()
		}
		printRoute(tr.Name(), d, rt)
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	h := m.Health()
	fmt.Printf("\nmux: in-flight peak %d, reopens %d, pressure events %d, kernel drops %d, %d RTT estimator(s)\n",
		h.InFlightPeak, h.Reopens, h.PressureEvents, h.KernelDrops, h.Destinations)
	return nil
}

func flagStr(h tracer.Hop) string {
	if f := h.Kind.Flag(); f != "" {
		return "  " + f
	}
	return ""
}

func enumerate(tp tracer.Transport, dest netip.Addr, flows int) {
	sess := core.NewSession(tp)
	ps, err := sess.EnumeratePaths(dest, flows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paris-traceroute:", err)
		os.Exit(1)
	}
	fmt.Printf("multipath enumeration to %s over %d flows: %d distinct path(s)\n",
		dest, flows, ps.Distinct())
	for i, addrs := range ps.InterfacesPerHop {
		if len(addrs) <= 1 {
			continue
		}
		fmt.Printf("hop %2d: %d interfaces:", i+1, len(addrs))
		for _, a := range addrs {
			fmt.Printf(" %s", a)
		}
		fmt.Println()
	}
	kind, err := sess.ClassifyBalancer(dest, flows, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paris-traceroute:", err)
		os.Exit(1)
	}
	fmt.Printf("balancer classification: %v\n", kind)
}

// buildLive opens the raw-socket transport, failing with a clear
// explanation when the capability is missing.
func buildLive(ctx context.Context, destStr string, timeout time.Duration, retries int, backoff time.Duration, capSink *pcap.Capture) (tracer.Transport, netip.Addr, error) {
	if destStr == "" {
		return nil, netip.Addr{}, fmt.Errorf("-live requires -dest A.B.C.D")
	}
	dest, err := netip.ParseAddr(destStr)
	if err != nil || !dest.Is4() {
		return nil, netip.Addr{}, fmt.Errorf("-dest %q is not an IPv4 address", destStr)
	}
	src, err := live.LocalIPv4()
	if err != nil {
		return nil, netip.Addr{}, fmt.Errorf("cannot determine local IPv4 source: %w", err)
	}
	lc := live.Config{Source: src, Timeout: timeout, Retries: retries, RetryBackoff: backoff, Context: ctx}
	if capSink != nil {
		lc.Capture = capSink
	}
	tp, err := live.New(lc)
	if err != nil {
		return nil, netip.Addr{}, fmt.Errorf("live probing unavailable: %w", err)
	}
	return tp, dest, nil
}

func buildScenario(name string, seed int64, shards int) (tracer.Transport, netip.Addr, error) {
	switch name {
	case "fig1":
		f := topo.BuildFigure1(seed, netsim.PerFlow)
		return netsim.NewTransport(f.Net), f.Dest.Addr, nil
	case "fig3":
		f := topo.BuildFigure3(seed)
		return netsim.NewTransport(f.Net), f.Dest.Addr, nil
	case "fig4":
		f := topo.BuildFigure4(seed)
		return netsim.NewTransport(f.Net), f.Dest.Addr, nil
	case "fig5":
		f := topo.BuildFigure5(seed)
		return netsim.NewTransport(f.Net), f.Dest.Addr, nil
	case "fig6":
		f := topo.BuildFigure6(seed, netsim.PerFlow)
		return netsim.NewTransport(f.Net), f.Dest.Addr, nil
	case "random":
		cfg := topo.DefaultGenConfig()
		cfg.Seed = seed
		cfg.Destinations = 50
		cfg.Shards = shards
		sc := topo.Generate(cfg)
		dest := sc.Dests[0]
		// Sharded runs trace a destination off a nonzero shard, so the
		// sharded dispatch path is actually exercised.
		for _, d := range sc.Dests {
			if sc.ShardOf[d] > 0 {
				dest = d
				break
			}
		}
		return sc.Transport(), dest, nil
	default:
		return nil, netip.Addr{}, fmt.Errorf("unknown scenario %q", name)
	}
}

func buildTracer(method string, tp tracer.Transport, batch bool) (tracer.Tracer, error) {
	opts := tracer.Options{Batch: batch}
	switch method {
	case "paris-udp":
		return tracer.NewParisUDP(tp, opts), nil
	case "paris-icmp":
		return tracer.NewParisICMP(tp, opts), nil
	case "paris-tcp":
		return tracer.NewParisTCP(tp, opts), nil
	case "classic-udp":
		return tracer.NewClassicUDP(tp, opts), nil
	case "classic-icmp":
		return tracer.NewClassicICMP(tp, opts), nil
	case "tcptraceroute":
		return tracer.NewTCPTraceroute(tp, opts), nil
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}
