// Command topogen generates a random campaign topology and describes it:
// gadget ground truth, router/interface counts, AS layout, and a sample of
// destination routes as measured by a single Paris trace each.
//
// Usage:
//
//	topogen [-dests N] [-seed N] [-sample N]
//	        [-delay S] [-load L] [-churn C] [-dynamics-seed N]
//
// -delay, -load, and -churn switch on netsim's virtual-clock dynamics
// (seeded per-link latency, background cross-traffic, and scheduled route
// flaps/weight churn/brownouts); the sampled routes then carry a virtual
// RTT per hop, printed in an extra column. -dynamics-seed fixes the
// dynamics draws independently of the topology seed (0 derives it from
// -seed).
package main

import (
	"flag"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func main() {
	dests := flag.Int("dests", 200, "number of destinations")
	seed := flag.Int64("seed", 42, "generator seed")
	sample := flag.Int("sample", 5, "number of destination routes to print")
	delay := flag.Float64("delay", 0, "virtual-clock per-link delay scale (1 = calibrated; 0 disables)")
	load := flag.Float64("load", 0, "virtual-clock background cross-traffic intensity in [0, 0.95]")
	churn := flag.Float64("churn", 0, "virtual-clock scheduled-dynamics rate in [0, 1]")
	dynamicsSeed := flag.Int64("dynamics-seed", 0, "seed for the virtual-clock dynamics draws (0: derived from -seed)")
	flag.Parse()

	cfg := topo.DefaultGenConfig()
	cfg.Seed = *seed
	cfg.Destinations = *dests
	cfg.Delay = *delay
	cfg.Load = *load
	cfg.Churn = *churn
	cfg.DynamicsSeed = *dynamicsSeed
	sc := topo.Generate(cfg)
	dynamics := sc.Net.DynamicsEnabled()

	fmt.Printf("topology seed=%d destinations=%d\n", *seed, len(sc.Dests))
	fmt.Printf("ground truth: %+v\n", sc.Truth)
	fmt.Printf("AS table: %d prefixes\n\n", sc.AS.Len())

	tp := netsim.NewTransport(sc.Net)
	n := *sample
	if n > len(sc.Dests) {
		n = len(sc.Dests)
	}
	for i := 0; i < n; i++ {
		d := sc.Dests[i]
		tr := tracer.NewParisUDP(tp, tracer.Options{})
		rt, err := tr.Trace(d)
		if err != nil {
			fmt.Printf("trace to %s: %v\n", d, err)
			continue
		}
		fmt.Printf("route to %s (%d hops, halt=%v):\n", d, len(rt.Hops), rt.Halt)
		for _, h := range rt.Hops {
			if h.Star() {
				fmt.Printf("  %2d  *\n", h.TTL)
				continue
			}
			asn, _ := sc.AS.Lookup(h.Addr)
			if dynamics {
				fmt.Printf("  %2d  %-15s  AS%-5d  %10s\n", h.TTL, h.Addr, asn, h.RTT)
			} else {
				fmt.Printf("  %2d  %-15s  AS%d\n", h.TTL, h.Addr, asn)
			}
		}
	}
}
