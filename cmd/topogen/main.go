// Command topogen generates a random campaign topology and describes it:
// gadget ground truth, router/interface counts, AS layout, and a sample of
// destination routes as measured by a single Paris trace each.
//
// Usage:
//
//	topogen [-dests N] [-seed N] [-sample N]
package main

import (
	"flag"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func main() {
	dests := flag.Int("dests", 200, "number of destinations")
	seed := flag.Int64("seed", 42, "generator seed")
	sample := flag.Int("sample", 5, "number of destination routes to print")
	flag.Parse()

	cfg := topo.DefaultGenConfig()
	cfg.Seed = *seed
	cfg.Destinations = *dests
	sc := topo.Generate(cfg)

	fmt.Printf("topology seed=%d destinations=%d\n", *seed, len(sc.Dests))
	fmt.Printf("ground truth: %+v\n", sc.Truth)
	fmt.Printf("AS table: %d prefixes\n\n", sc.AS.Len())

	tp := netsim.NewTransport(sc.Net)
	n := *sample
	if n > len(sc.Dests) {
		n = len(sc.Dests)
	}
	for i := 0; i < n; i++ {
		d := sc.Dests[i]
		tr := tracer.NewParisUDP(tp, tracer.Options{})
		rt, err := tr.Trace(d)
		if err != nil {
			fmt.Printf("trace to %s: %v\n", d, err)
			continue
		}
		fmt.Printf("route to %s (%d hops, halt=%v):\n", d, len(rt.Hops), rt.Halt)
		for _, h := range rt.Hops {
			asn := 0
			if !h.Star() {
				asn, _ = sc.AS.Lookup(h.Addr)
			}
			if h.Star() {
				fmt.Printf("  %2d  *\n", h.TTL)
			} else {
				fmt.Printf("  %2d  %-15s  AS%d\n", h.TTL, h.Addr, asn)
			}
		}
	}
}
