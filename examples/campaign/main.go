// Campaign runs a miniature version of the paper's month-long study —
// paired classic/Paris traceroutes toward a few hundred destinations over
// several rounds with routing dynamics — and prints the Section 4
// statistics next to the values the paper reports.
//
// The statistics are folded while the campaign probes (Config.Stream):
// memory stays proportional to the destinations and distinct routes, not
// the round count, which is how the full 5,000 × 556 study runs. The
// full-scale study is available via `go run ./cmd/anomaly-study -paper`.
//
// Run: go run ./examples/campaign
package main

import (
	"fmt"
	"os"

	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func main() {
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = 300
	sc := topo.Generate(cfg)
	fmt.Printf("generated scenario: %d destinations, %d routers, %d load-balanced diamonds\n\n",
		len(sc.Dests), sc.Truth.Routers, sc.Truth.Diamonds)

	camp, err := measure.NewCampaign(netsim.NewTransport(sc.Net), measure.Config{
		Dests:      sc.Dests,
		Rounds:     15,
		Workers:    32,
		RoundStart: sc.RoundStart,
		PortSeed:   cfg.Seed,
		Stream:     true,
	})
	if err != nil {
		panic(err)
	}
	res, err := camp.Run()
	if err != nil {
		panic(err)
	}
	measure.WriteReport(os.Stdout, res.Stats, sc.AS)
	fmt.Println("\n(at this miniature scale the rare causes appear in ones and twos;")
	fmt.Println(" run cmd/anomaly-study -paper for the calibrated full-scale study)")
}
