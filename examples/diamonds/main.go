// Diamonds reproduces the paper's Section 4.3 study on the Fig. 6 topology:
// repeated classic traceroutes toward one destination are merged into a
// per-destination graph, diamonds are enumerated, and the same is done with
// Paris traceroute to show the diamonds disappear when the flow identifier
// is held constant.
//
// It then runs the paper's future-work multipath enumeration: many Paris
// flows toward the same destination reveal every interface of the load
// balancer without any false links.
//
// Run: go run ./examples/diamonds
package main

import (
	"fmt"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func main() {
	fig := topo.BuildFigure6(3, netsim.PerFlow)
	tp := netsim.NewTransport(fig.Net)

	classic := anomaly.NewGraph(fig.Dest.Addr)
	paris := anomaly.NewGraph(fig.Dest.Addr)
	const rounds = 64
	for i := 0; i < rounds; i++ {
		crt, err := tracer.NewClassicUDP(tp, tracer.Options{
			SrcPort: uint16(32768 + i), MaxTTL: 15,
		}).Trace(fig.Dest.Addr)
		if err != nil {
			panic(err)
		}
		classic.Add(crt)
		prt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
		if err != nil {
			panic(err)
		}
		paris.Add(prt)
	}

	fmt.Printf("per-destination graphs from %d rounds toward %s\n\n", rounds, fig.Dest.Addr)
	cds := classic.Diamonds()
	sort.Slice(cds, func(i, j int) bool {
		return cds[i].Head.String()+cds[i].Tail.String() < cds[j].Head.String()+cds[j].Tail.String()
	})
	fmt.Printf("classic graph: %d diamonds\n", len(cds))
	for _, d := range cds {
		fmt.Printf("  (%s, %s) with %d middles -> %v\n",
			d.Head, d.Tail, len(d.Mids), anomaly.ClassifyDiamond(d, paris))
	}
	fmt.Printf("paris graph:   %d diamonds\n\n", len(paris.Diamonds()))

	// Future-work feature: enumerate the balancer's interfaces properly.
	sess := core.NewSession(tp)
	sess.Options.MaxTTL = 15
	ps, err := sess.EnumeratePaths(fig.Dest.Addr, 48)
	if err != nil {
		panic(err)
	}
	fmt.Printf("multipath enumeration over 48 flows: %d distinct paths\n", ps.Distinct())
	for i, addrs := range ps.InterfacesPerHop {
		if len(addrs) > 1 {
			fmt.Printf("  hop %2d has %d interfaces: %v\n", i+1, len(addrs), addrs)
		}
	}
	kind, err := sess.ClassifyBalancer(fig.Dest.Addr, 48, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("balancer classified as: %v\n", kind)
}
