// Loophunt reproduces and classifies every loop cause in the paper's
// Section 4.1 taxonomy, one figure at a time:
//
//   - Fig. 3: per-flow load balancing over unequal-length branches;
//   - Fig. 4: zero-TTL forwarding (quoted probe TTL 0, then 1);
//   - Fig. 5: NAT address rewriting (decreasing response TTL);
//   - unreachability (Time Exceeded then !H from the same router).
//
// For each scenario it prints the measured route, the loop found, and the
// cause the classifier attributes — using exactly the observables Paris
// traceroute adds (probe TTL, response TTL, IP ID).
//
// Run: go run ./examples/loophunt
package main

import (
	"fmt"
	"net/netip"

	"repro/internal/anomaly"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func main() {
	fig3()
	fig4()
	fig5()
	unreachable()
}

func show(name string, net *netsim.Network, dest netip.Addr, paris *tracer.Route, rt *tracer.Route) {
	fmt.Printf("== %s ==\n", name)
	for _, h := range rt.Hops {
		extra := ""
		if h.ProbeTTL == 0 {
			extra = "   <- quoted probe TTL 0"
		}
		fmt.Printf("  %s  resp-ttl=%d ipid=%d%s\n", h, h.RespTTL, h.IPID, extra)
	}
	for _, l := range anomaly.FindLoops(rt) {
		fmt.Printf("  loop on %s (len %d, at-end=%v) -> cause: %v\n",
			l.Addr, l.Len, l.AtEnd, anomaly.ClassifyLoop(l, rt, paris))
	}
	fmt.Println()
}

func fig3() {
	fig := topo.BuildFigure3(7)
	tp := netsim.NewTransport(fig.Net)
	paris, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
	if err != nil {
		panic(err)
	}
	// Find a classic flow that straddles the branches.
	for pid := uint16(0); pid < 128; pid++ {
		rt, err := tracer.NewClassicUDP(tp, tracer.Options{SrcPort: 32768 + pid, MaxTTL: 15}).Trace(fig.Dest.Addr)
		if err != nil {
			panic(err)
		}
		if len(anomaly.FindLoops(rt)) > 0 {
			show("Fig. 3: loop from per-flow load balancing", fig.Net, fig.Dest.Addr, paris, rt)
			return
		}
	}
	fmt.Println("Fig. 3: no straddling flow in 128 tries (rerun with another seed)")
}

func fig4() {
	fig := topo.BuildFigure4(7)
	tp := netsim.NewTransport(fig.Net)
	rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
	if err != nil {
		panic(err)
	}
	show("Fig. 4: loop from zero-TTL forwarding", fig.Net, fig.Dest.Addr, nil, rt)
}

func fig5() {
	fig := topo.BuildFigure5(7)
	tp := netsim.NewTransport(fig.Net)
	rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
	if err != nil {
		panic(err)
	}
	show("Fig. 5: loop from NAT address rewriting", fig.Net, fig.Dest.Addr, nil, rt)
}

func unreachable() {
	// A plain chain whose third router cannot forward: Time Exceeded for
	// the probe that expires there, Destination Unreachable (!H) for the
	// next — the same address twice, then the trace halts.
	b := topo.NewBuilder(7)
	chain := b.Chain(b.Gateway, 4)
	dest := b.AttachHost(chain[3], "dest", false)
	steps := []*netsim.Router{b.Gateway, chain[0], chain[1], chain[2]}
	next := []netip.Addr{chain[0].Iface(0), chain[1].Iface(0), chain[2].Iface(0), chain[3].Iface(0)}
	for i, r := range steps {
		r.AddRoute(netsim.Route{
			Prefix: netip.PrefixFrom(dest.Addr, 32),
			Hops:   []netsim.NextHop{{Via: next[i]}},
		})
	}
	chain[2].SetFaults(netsim.Faults{Unreachable: true})
	tp := netsim.NewTransport(b.Net)
	rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(dest.Addr)
	if err != nil {
		panic(err)
	}
	show("Unreachability: Time Exceeded then !H from one router", b.Net, dest.Addr, nil, rt)
}
