// Quickstart: trace through a load-balanced network with classic and Paris
// traceroute and watch the classic tool invent a loop that Paris avoids.
//
// This is the paper's Fig. 3 in miniature: a per-flow load balancer splits
// traffic over two branches of unequal length. Classic traceroute changes
// the flow identifier on every probe, so consecutive probes straddle the
// branches and the convergence router appears twice in a row; Paris holds
// the identifier constant and measures a clean path.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func main() {
	fig := topo.BuildFigure3(1)
	tp := netsim.NewTransport(fig.Net)

	fmt.Println("== classic traceroute (destination port varies per probe) ==")
	// Sweep a few src ports (fresh "process IDs") until the classic tool
	// shows its loop; most flows trip it quickly.
	var looped *tracer.Route
	for pid := uint16(0); pid < 64; pid++ {
		classic := tracer.NewClassicUDP(tp, tracer.Options{SrcPort: 32768 + pid, MaxTTL: 15})
		rt, err := classic.Trace(fig.Dest.Addr)
		if err != nil {
			panic(err)
		}
		if len(anomaly.FindLoops(rt)) > 0 {
			looped = rt
			break
		}
	}
	if looped == nil {
		fmt.Println("no loop observed (unusual seed); rerun")
		return
	}
	printRoute(looped)
	for _, l := range anomaly.FindLoops(looped) {
		fmt.Printf("  -> LOOP on %s (hops %d-%d): an artifact, not a real route\n",
			l.Addr, l.Start+1, l.Start+l.Len)
	}

	fmt.Println("\n== Paris traceroute (constant flow identifier) ==")
	paris := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15})
	rt, err := paris.Trace(fig.Dest.Addr)
	if err != nil {
		panic(err)
	}
	printRoute(rt)
	if len(anomaly.FindLoops(rt)) == 0 {
		fmt.Println("  -> no loop: all probes followed one flow through the balancer")
	}
}

func printRoute(rt *tracer.Route) {
	for _, h := range rt.Hops {
		fmt.Printf("  %s\n", h)
	}
	fmt.Printf("  halt: %v\n", rt.Halt)
}
