package repro

import (
	"math"
	"net/netip"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func prefix32(a netip.Addr) netip.Prefix { return netip.PrefixFrom(a, 32) }

// TestFigure1Probabilities checks Section 2.1's analysis: with three probes
// per hop through a random two-way load balancer,
//
//   - the probability that one of the two devices at hop 7 goes
//     undiscovered is 0.5^3 * 2 = 0.25, and
//   - the probability that two devices are discovered at hop 7 or hop 8 or
//     both — making links ambiguous — is 0.75 + 0.25*0.75 = 0.9375.
func TestFigure1Probabilities(t *testing.T) {
	fig := topo.BuildFigure1(99, netsim.PerPacket)
	tp := netsim.NewTransport(fig.Net)

	const trials = 3000
	missed7 := 0
	ambiguous := 0
	for i := 0; i < trials; i++ {
		tr := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 12, ProbesPerHop: 3})
		rt, err := tr.Trace(fig.Dest.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if len(rt.All) < 8 {
			t.Fatalf("route too short: %d hops", len(rt.All))
		}
		hop7 := distinct(rt.All[6])
		hop8 := distinct(rt.All[7])
		if hop7 == 1 {
			missed7++
		}
		if hop7 == 2 || hop8 == 2 {
			ambiguous++
		}
	}
	pMiss := float64(missed7) / trials
	pAmb := float64(ambiguous) / trials
	if math.Abs(pMiss-0.25) > 0.03 {
		t.Errorf("P(miss one device at hop 7) = %.3f, want 0.25 +/- 0.03", pMiss)
	}
	if math.Abs(pAmb-0.9375) > 0.02 {
		t.Errorf("P(ambiguous links) = %.3f, want 0.9375 +/- 0.02", pAmb)
	}
}

func distinct(attempts []tracer.Hop) int {
	seen := map[string]bool{}
	for _, h := range attempts {
		if !h.Star() {
			seen[h.Addr.String()] = true
		}
	}
	return len(seen)
}

// TestLoadBalancerWidth16 exercises the paper's remark that newer Juniper
// routers permit up to sixteen equal-cost paths: all sixteen interfaces
// must be discoverable by flow enumeration, and a single Paris flow must
// hold exactly one of them.
func TestLoadBalancerWidth16(t *testing.T) {
	b := topo.NewBuilder(5)
	chain := b.Chain(b.Gateway, 2)
	lb := b.NewRouter("lb")
	b.Link(chain[1], lb)
	exit := b.NewRouter("exit")
	var heads []*netsim.Router
	for i := 0; i < 16; i++ {
		r := b.NewRouter("")
		b.Link(lb, r)
		b.Link(r, exit)
		heads = append(heads, r)
	}
	dest := b.AttachHost(exit, "dest", false)

	routeAll := func(r *netsim.Router, via ...*netsim.Router) {
		hops := make([]netsim.NextHop, len(via))
		for i, v := range via {
			hops[i] = netsim.NextHop{Via: v.Iface(0)}
		}
		r.AddRoute(netsim.Route{
			Prefix:  prefix32(dest.Addr),
			Hops:    hops,
			Balance: netsim.PerFlow,
		})
	}
	routeAll(b.Gateway, chain[0])
	routeAll(chain[0], chain[1])
	routeAll(chain[1], lb)
	routeAll(lb, heads...)
	for _, h := range heads {
		routeAll(h, exit)
	}

	tp := netsim.NewTransport(b.Net)
	seen := map[string]bool{}
	for f := 0; f < 600; f++ {
		tr := tracer.NewParisUDP(tp, tracer.Options{
			SrcPort: uint16(10000 + f), DstPort: uint16(20000 + f*3), MaxTTL: 12,
		})
		rt, err := tr.Trace(dest.Addr)
		if err != nil {
			t.Fatal(err)
		}
		// Hop 5 is the branch row; a single flow sees exactly one head.
		h := rt.Hops[4]
		if h.Star() {
			t.Fatal("unexpected star at the branch row")
		}
		seen[h.Addr.String()] = true
		if loops := anomaly.FindLoops(rt); len(loops) != 0 {
			t.Fatalf("equal-length 16-way balancer produced loops: %v", loops)
		}
	}
	if len(seen) != 16 {
		t.Errorf("flows discovered %d of 16 interfaces", len(seen))
	}
}
