// Package alias implements the IP-ID-based techniques Section 2.2 of the
// paper borrows from prior work:
//
//   - Rocketfuel-style alias resolution: two addresses belong to the same
//     router when interleaved probes draw responses whose IP Identification
//     values come from one shared counter;
//   - Bellovin-style NAT counting: responses sharing one source address but
//     exhibiting several independent IP ID sequences reveal "different
//     routers and hosts hidden behind a firewall or a NAT box".
//
// Both consume the IP ID observable that Paris traceroute reports for every
// hop.
package alias

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/packet"
	"repro/internal/tracer"
)

// Prober issues a direct UDP probe to one address and reports the response
// IP ID. It is implemented over any tracer.Transport.
type Prober struct {
	tp  tracer.Transport
	seq uint16
}

// NewProber creates a prober over tp.
func NewProber(tp tracer.Transport) *Prober { return &Prober{tp: tp} }

// Probe sends one high-port UDP probe directly to addr (TTL high enough to
// reach it) and returns the IP ID of its Port Unreachable response.
func (p *Prober) Probe(addr netip.Addr) (uint16, error) {
	p.seq++
	src := p.tp.Source()
	dgram, err := packet.MarshalUDP(src, addr, &packet.UDP{
		SrcPort: 31000, DstPort: 40000 + p.seq,
	}, make([]byte, 4))
	if err != nil {
		return 0, fmt.Errorf("alias: %w", err)
	}
	probe, err := (&packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP, ID: p.seq, Src: src, Dst: addr,
	}).Marshal(dgram)
	if err != nil {
		return 0, fmt.Errorf("alias: %w", err)
	}
	resp, _, ok := p.tp.Exchange(probe)
	if !ok {
		return 0, fmt.Errorf("alias: no response from %v", addr)
	}
	h, _, err := packet.ParseIPv4(resp)
	if err != nil {
		return 0, fmt.Errorf("alias: bad response from %v: %w", addr, err)
	}
	if h.Src != addr {
		return 0, fmt.Errorf("alias: response from %v, probed %v", h.Src, addr)
	}
	return h.ID, nil
}

// SameRouter applies the Rocketfuel test to two addresses: probe them
// alternately (a, b, a, b, ...) and accept when the merged IP ID sequence
// is a single monotonically advancing counter with small gaps. rounds pairs
// of probes are sent.
func (p *Prober) SameRouter(a, b netip.Addr, rounds int) (bool, error) {
	if rounds <= 0 {
		rounds = 3
	}
	var ids []uint16
	for i := 0; i < rounds; i++ {
		ia, err := p.Probe(a)
		if err != nil {
			return false, err
		}
		ib, err := p.Probe(b)
		if err != nil {
			return false, err
		}
		ids = append(ids, ia, ib)
	}
	return counterCoherent(ids, 256), nil
}

// counterCoherent reports whether ids reads as one counter: strictly
// advancing (mod 2^16) with per-step gaps at most maxGap.
func counterCoherent(ids []uint16, maxGap uint16) bool {
	for i := 1; i < len(ids); i++ {
		delta := ids[i] - ids[i-1] // wraps mod 2^16
		if delta == 0 || delta > maxGap {
			return false
		}
	}
	return len(ids) >= 2
}

// Sequence is one observed IP ID stream attributed to a hidden host.
type Sequence struct {
	IDs []uint16
}

// CountHostsBehind applies Bellovin's technique to a series of IP ID
// samples that share one (rewritten) source address: it greedily partitions
// the samples into the minimum number of coherent counter sequences, each
// corresponding to one host behind the NAT.
//
// maxGap bounds the counter advance accepted between consecutive samples of
// one host.
func CountHostsBehind(ids []uint16, maxGap uint16) []Sequence {
	var seqs []Sequence
	for _, id := range ids {
		placed := false
		best := -1
		var bestDelta uint16 = 0xffff
		for i := range seqs {
			last := seqs[i].IDs[len(seqs[i].IDs)-1]
			delta := id - last
			if delta > 0 && delta <= maxGap && delta < bestDelta {
				best, bestDelta = i, delta
				placed = true
			}
		}
		if placed {
			seqs[best].IDs = append(seqs[best].IDs, id)
		} else {
			seqs = append(seqs, Sequence{IDs: []uint16{id}})
		}
	}
	return seqs
}

// HopSamples extracts, from a set of measured routes, the IP ID samples per
// responding address in observation order — the input CountHostsBehind
// needs when a NAT loop is suspected.
func HopSamples(routes []*tracer.Route) map[netip.Addr][]uint16 {
	out := make(map[netip.Addr][]uint16)
	for _, rt := range routes {
		for _, h := range rt.Hops {
			if h.Star() {
				continue
			}
			out[h.Addr] = append(out[h.Addr], h.IPID)
		}
	}
	return out
}

// SuspectNATs lists addresses whose samples partition into at least
// minHosts coherent sequences, sorted for determinism.
func SuspectNATs(samples map[netip.Addr][]uint16, maxGap uint16, minHosts int) []netip.Addr {
	var out []netip.Addr
	for addr, ids := range samples {
		if len(ids) < minHosts*2 {
			continue
		}
		if len(CountHostsBehind(ids, maxGap)) >= minHosts {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
