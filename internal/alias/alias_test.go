package alias

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func TestCounterCoherent(t *testing.T) {
	if !counterCoherent([]uint16{10, 12, 15, 20}, 256) {
		t.Error("coherent sequence rejected")
	}
	if counterCoherent([]uint16{10, 9}, 256) {
		t.Error("backwards step accepted")
	}
	if counterCoherent([]uint16{10, 10}, 256) {
		t.Error("stalled counter accepted")
	}
	if counterCoherent([]uint16{10, 5000}, 256) {
		t.Error("oversized gap accepted")
	}
	if !counterCoherent([]uint16{0xfff0, 0x0010}, 256) {
		t.Error("wraparound rejected")
	}
	if counterCoherent([]uint16{7}, 256) {
		t.Error("single sample accepted")
	}
}

func TestCountHostsBehind(t *testing.T) {
	// Two interleaved counters: 100,102,104 and 9000,9001,9002.
	ids := []uint16{100, 9000, 102, 9001, 104, 9002}
	seqs := CountHostsBehind(ids, 256)
	if len(seqs) != 2 {
		t.Fatalf("sequences = %d, want 2 (%+v)", len(seqs), seqs)
	}
	// One counter: one host.
	one := CountHostsBehind([]uint16{5, 6, 8, 9}, 256)
	if len(one) != 1 {
		t.Fatalf("sequences = %d, want 1", len(one))
	}
	// Three far-apart counters.
	three := CountHostsBehind([]uint16{1, 20000, 40000, 3, 20002, 40001}, 256)
	if len(three) != 3 {
		t.Fatalf("sequences = %d, want 3", len(three))
	}
}

// fixture: chain where two probeable targets are interfaces of one router
// (same IP ID counter) and a third belongs to another router.
func aliasNet(t *testing.T) (*netsim.Network, netip.Addr, netip.Addr, netip.Addr) {
	t.Helper()
	b := topo.NewBuilder(3)
	chain := b.Chain(b.Gateway, 2)
	r := chain[1]
	// Give r a second interface, routable via the chain.
	second := netip.AddrFrom4([4]byte{10, 7, 7, 7})
	b.Net.AddIface(r, second)
	for _, router := range []*netsim.Router{b.Gateway, chain[0]} {
		for _, dst := range []netip.Addr{chain[0].Iface(0), chain[1].Iface(0), second} {
			router.AddRoute(netsim.Route{
				Prefix: netip.PrefixFrom(dst, 32),
				Hops:   []netsim.NextHop{{Via: nextToward(router, chain, dst)}},
			})
		}
	}
	return b.Net, chain[1].Iface(0), second, chain[0].Iface(0)
}

func nextToward(r *netsim.Router, chain []*netsim.Router, dst netip.Addr) netip.Addr {
	if r.Name == "gw" {
		return chain[0].Iface(0)
	}
	if dst == chain[0].Iface(0) {
		return dst
	}
	return chain[1].Iface(0)
}

func TestSameRouterResolution(t *testing.T) {
	net, ifaceA, ifaceB, other := aliasNet(t)
	p := NewProber(netsim.NewTransport(net))

	same, err := p.SameRouter(ifaceA, ifaceB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("two interfaces of one router not resolved as aliases")
	}

	diff, err := p.SameRouter(ifaceA, other, 4)
	if err != nil {
		t.Fatal(err)
	}
	if diff {
		t.Error("interfaces of different routers resolved as aliases")
	}
}

func TestProbeErrors(t *testing.T) {
	net, _, _, _ := aliasNet(t)
	p := NewProber(netsim.NewTransport(net))
	// Unrouted address: no response.
	if _, err := p.Probe(netip.AddrFrom4([4]byte{203, 0, 113, 1})); err == nil {
		t.Error("probe to unrouted address succeeded")
	}
}

// TestNATDetectionEndToEnd drives the Fig. 5 topology: repeated Paris
// traces produce IP ID samples for the rewritten address N0 that partition
// into several counters — the routers and the destination hiding behind
// the NAT.
func TestNATDetectionEndToEnd(t *testing.T) {
	fig := topo.BuildFigure5(3)
	tp := netsim.NewTransport(fig.Net)
	var routes []*tracer.Route
	for i := 0; i < 12; i++ {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
		if err != nil {
			t.Fatal(err)
		}
		routes = append(routes, rt)
	}
	samples := HopSamples(routes)
	if len(samples[fig.N]) == 0 {
		t.Fatal("no samples for the NAT address")
	}
	suspects := SuspectNATs(samples, 256, 3)
	found := false
	for _, s := range suspects {
		if s == fig.N {
			found = true
		}
	}
	if !found {
		t.Errorf("NAT %v not suspected; suspects = %v, N samples = %v",
			fig.N, suspects, samples[fig.N])
	}
	// Ordinary single-router addresses must not be suspected.
	for _, s := range suspects {
		if s == fig.A {
			t.Errorf("plain router %v suspected as NAT", fig.A)
		}
	}
}
