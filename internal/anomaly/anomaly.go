package anomaly

import (
	"fmt"
	"net/netip"

	"repro/internal/tracer"
)

// Loop is an observed loop: the same address at two or more consecutive
// hops of one measured route (Section 4.1). Its signature is the pair
// (Addr, Dest).
type Loop struct {
	Addr netip.Addr
	Dest netip.Addr
	// Start is the index in Route.Hops of the first repeated hop.
	Start int
	// Len is the number of consecutive hops carrying Addr (>= 2).
	Len int
	// AtEnd reports whether the loop runs to the end of the measured
	// route (where unreachability and NAT loops live).
	AtEnd bool
}

// Signature returns the paper's loop signature (r, d).
func (l Loop) Signature() Signature { return Signature{Addr: l.Addr, Dest: l.Dest} }

// Cycle is an observed cycle: an address appearing at least twice in one
// measured route, separated by at least one distinct address (Section 4.2).
type Cycle struct {
	Addr netip.Addr
	Dest netip.Addr
	// First and Second are hop indices of two qualifying appearances.
	First, Second int
	// Period is the length of the repeating address sequence when the
	// route is periodic (a forwarding-loop telltale), else 0.
	Period int
}

// Signature returns the paper's cycle signature (r, d).
func (c Cycle) Signature() Signature { return Signature{Addr: c.Addr, Dest: c.Dest} }

// Signature identifies an anomaly instance class: the paper counts distinct
// (address, destination) pairs across measurement rounds.
type Signature struct {
	Addr netip.Addr
	Dest netip.Addr
}

// String implements fmt.Stringer.
func (s Signature) String() string { return fmt.Sprintf("(%s,%s)", s.Addr, s.Dest) }

// Diamond is a diamond signature in a per-destination graph: a pair (h, t)
// of addresses such that measured routes toward the destination contain
// ...h, r_i, t... for at least two distinct r_i (Section 4.3).
type Diamond struct {
	Head, Tail netip.Addr
	Dest       netip.Addr
	// Mids are the distinct intermediate addresses observed (k >= 2).
	Mids []netip.Addr
}

// Key identifies the diamond within its destination graph.
func (d Diamond) Key() DiamondKey { return DiamondKey{Head: d.Head, Tail: d.Tail, Dest: d.Dest} }

// DiamondKey is the comparable form of a diamond signature.
type DiamondKey struct {
	Head, Tail netip.Addr
	Dest       netip.Addr
}

// FindLoops scans a measured route for loops. Stars never participate: the
// paper's definition requires addresses. Runs of the same address are
// reported as a single loop.
func FindLoops(rt *tracer.Route) []Loop {
	var out []Loop
	hops := rt.Hops
	for i := 0; i < len(hops)-1; {
		if hops[i].Star() {
			i++
			continue
		}
		j := i
		for j+1 < len(hops) && !hops[j+1].Star() && hops[j+1].Addr == hops[i].Addr {
			j++
		}
		if j > i {
			out = append(out, Loop{
				Addr:  hops[i].Addr,
				Dest:  rt.Dest,
				Start: i,
				Len:   j - i + 1,
				AtEnd: j == len(hops)-1,
			})
		}
		i = j + 1
	}
	return out
}

// FindCycles scans a measured route for cycles: r ... r' ... r with r' ≠ r.
// Consecutive repeats (loops) do not qualify. One Cycle is reported per
// cycling address.
func FindCycles(rt *tracer.Route) []Cycle {
	hops := rt.Hops
	first := make(map[netip.Addr]int)
	reported := make(map[netip.Addr]bool)
	var out []Cycle
	for i, h := range hops {
		if h.Star() {
			continue
		}
		f, seen := first[h.Addr]
		if !seen {
			first[h.Addr] = i
			continue
		}
		if reported[h.Addr] {
			continue
		}
		// Require at least one distinct intervening address.
		distinct := false
		for k := f + 1; k < i; k++ {
			if !hops[k].Star() && hops[k].Addr != h.Addr {
				distinct = true
				break
			}
		}
		if !distinct {
			continue
		}
		out = append(out, Cycle{
			Addr:   h.Addr,
			Dest:   rt.Dest,
			First:  f,
			Second: i,
			Period: periodOf(hops, f, i),
		})
		reported[h.Addr] = true
	}
	return out
}

// periodOf checks whether the address sequence between two appearances of
// an address repeats with a fixed period — the forwarding-loop telltale
// the paper looks for ("we should repeatedly observe a fixed sequence of
// addresses"). Returns the period, or 0 if the route is not periodic there.
func periodOf(hops []tracer.Hop, first, second int) int {
	p := second - first
	if p <= 0 {
		return 0
	}
	// Verify at least one full extra period (or to end of route) matches.
	matched := 0
	for k := second; k < len(hops); k++ {
		a, b := hops[k], hops[k-p]
		if a.Star() || b.Star() || a.Addr != b.Addr {
			return 0
		}
		matched++
	}
	if matched == 0 {
		return 0
	}
	return p
}

// Graph is a per-destination directed multigraph assembled from many
// measured routes, as the paper builds for its diamond study: nodes are
// addresses, and an edge (a, b) exists when some route contains a at hop i
// and b at hop i+1.
type Graph struct {
	Dest netip.Addr
	// Succ maps each address to its successor set.
	Succ map[netip.Addr]map[netip.Addr]bool
	// Triples records (h, mid, t) adjacencies: for each (h, t) pair at
	// distance two in some route, the set of observed middles.
	Triples map[[2]netip.Addr]map[netip.Addr]bool
	// Routes is the number of measured routes merged in.
	Routes int
}

// NewGraph creates an empty per-destination graph.
func NewGraph(dest netip.Addr) *Graph {
	return &Graph{
		Dest:    dest,
		Succ:    make(map[netip.Addr]map[netip.Addr]bool),
		Triples: make(map[[2]netip.Addr]map[netip.Addr]bool),
	}
}

// Add merges one measured route into the graph in a single pass over its
// hops. Stars break adjacency.
//
// Add is idempotent below the Routes counter: Succ and Triples are sets, so
// merging a route whose edges are already present changes nothing. That is
// the incremental-dedup contract streaming accumulators build on — a graph
// grown one route per round holds exactly the edges of the distinct routes
// seen, and re-adding an interned (round-over-round stable) route may be
// skipped without moving a diamond statistic.
func (g *Graph) Add(rt *tracer.Route) {
	g.Routes++
	hops := rt.Hops
	for i := 0; i+1 < len(hops); i++ {
		a, b := hops[i], hops[i+1]
		if a.Star() || b.Star() {
			continue
		}
		s := g.Succ[a.Addr]
		if s == nil {
			s = make(map[netip.Addr]bool)
			g.Succ[a.Addr] = s
		}
		s[b.Addr] = true
		if i+2 >= len(hops) || hops[i+2].Star() {
			continue
		}
		key := [2]netip.Addr{a.Addr, hops[i+2].Addr}
		t := g.Triples[key]
		if t == nil {
			t = make(map[netip.Addr]bool)
			g.Triples[key] = t
		}
		t[b.Addr] = true
	}
}

// Diamonds enumerates the diamond signatures of the graph: (h, t) pairs
// whose observed middles number at least two.
func (g *Graph) Diamonds() []Diamond {
	var out []Diamond
	for key, mids := range g.Triples {
		if len(mids) < 2 {
			continue
		}
		d := Diamond{Head: key[0], Tail: key[1], Dest: g.Dest}
		for m := range mids {
			d.Mids = append(d.Mids, m)
		}
		out = append(out, d)
	}
	return out
}
