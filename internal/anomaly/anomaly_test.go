package anomaly

import (
	"net/netip"
	"testing"

	"repro/internal/tracer"
)

func addr(i int) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}) }

var dst = netip.AddrFrom4([4]byte{172, 16, 0, 9})

// mkRoute builds a route from a compact spec: indices are addresses
// (addr(i)); -1 is a star.
func mkRoute(spec ...int) *tracer.Route {
	rt := &tracer.Route{Dest: dst}
	for i, s := range spec {
		// The response TTL is a property of the responder (its initial
		// TTL minus its return-path length), so repeated appearances of
		// one address carry the same value — unlike a NAT hiding ever
		// more distant boxes.
		h := tracer.Hop{TTL: i + 1, ProbeTTL: 1, Kind: tracer.KindTimeExceeded, RespTTL: 250 - s}
		if s == -1 {
			h = tracer.Hop{TTL: i + 1, Kind: tracer.KindNone, ProbeTTL: -1}
		} else {
			h.Addr = addr(s)
			h.IPID = uint16(i + 1)
		}
		rt.Hops = append(rt.Hops, h)
	}
	return rt
}

func TestFindLoopsBasic(t *testing.T) {
	rt := mkRoute(1, 2, 3, 3, 4)
	loops := FindLoops(rt)
	if len(loops) != 1 {
		t.Fatalf("loops = %v", loops)
	}
	l := loops[0]
	if l.Addr != addr(3) || l.Start != 2 || l.Len != 2 || l.AtEnd {
		t.Errorf("loop = %+v", l)
	}
	if sig := l.Signature(); sig.Addr != addr(3) || sig.Dest != dst {
		t.Errorf("signature = %v", sig)
	}
}

func TestFindLoopsRunCollapses(t *testing.T) {
	rt := mkRoute(1, 2, 2, 2, 2)
	loops := FindLoops(rt)
	if len(loops) != 1 || loops[0].Len != 4 || !loops[0].AtEnd {
		t.Fatalf("loops = %+v", loops)
	}
}

func TestFindLoopsMultiple(t *testing.T) {
	rt := mkRoute(1, 1, 2, 3, 3)
	loops := FindLoops(rt)
	if len(loops) != 2 {
		t.Fatalf("loops = %v", loops)
	}
	if loops[0].Addr != addr(1) || loops[1].Addr != addr(3) {
		t.Errorf("loops = %+v", loops)
	}
}

func TestFindLoopsStarsDoNotLoop(t *testing.T) {
	if loops := FindLoops(mkRoute(1, -1, -1, 2)); len(loops) != 0 {
		t.Errorf("stars produced loops: %v", loops)
	}
	// A star between equal addresses breaks the run.
	if loops := FindLoops(mkRoute(1, 2, -1, 2)); len(loops) != 0 {
		t.Errorf("star-separated repeat detected as loop: %v", loops)
	}
}

func TestFindCyclesBasic(t *testing.T) {
	rt := mkRoute(1, 2, 3, 2, 5)
	cycles := FindCycles(rt)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v", cycles)
	}
	c := cycles[0]
	if c.Addr != addr(2) || c.First != 1 || c.Second != 3 {
		t.Errorf("cycle = %+v", c)
	}
}

func TestFindCyclesLoopIsNotCycle(t *testing.T) {
	// The paper's definition requires a distinct intervening address.
	if cycles := FindCycles(mkRoute(1, 2, 2, 3)); len(cycles) != 0 {
		t.Errorf("a loop was misdetected as a cycle: %v", cycles)
	}
	// Repeat separated only by stars does not qualify either.
	if cycles := FindCycles(mkRoute(1, 2, -1, 2)); len(cycles) != 0 {
		t.Errorf("star-separated repeat misdetected: %v", cycles)
	}
}

func TestFindCyclesPeriodicity(t *testing.T) {
	// Forwarding loop: X Y X Y X Y -> period 2 from the first repeat.
	rt := mkRoute(1, 2, 3, 2, 3, 2, 3)
	cycles := FindCycles(rt)
	if len(cycles) != 2 {
		t.Fatalf("cycles = %+v", cycles)
	}
	for _, c := range cycles {
		if c.Period != 2 {
			t.Errorf("cycle on %v: period %d, want 2", c.Addr, c.Period)
		}
	}
	// Non-periodic continuation: period must be 0.
	rt2 := mkRoute(1, 2, 3, 2, 5, 6)
	c2 := FindCycles(rt2)
	if len(c2) != 1 || c2[0].Period != 0 {
		t.Errorf("cycles = %+v, want one with period 0", c2)
	}
}

func TestGraphDiamonds(t *testing.T) {
	g := NewGraph(dst)
	// Two routes sharing head and tail with different middles.
	g.Add(mkRoute(1, 2, 4, 5))
	g.Add(mkRoute(1, 3, 4, 5))
	ds := g.Diamonds()
	if len(ds) != 1 {
		t.Fatalf("diamonds = %+v", ds)
	}
	d := ds[0]
	if d.Head != addr(1) || d.Tail != addr(4) || len(d.Mids) != 2 {
		t.Errorf("diamond = %+v", d)
	}
	// One middle only: not a diamond (the paper's (C0,G0) remark).
	g2 := NewGraph(dst)
	g2.Add(mkRoute(1, 2, 4))
	g2.Add(mkRoute(1, 2, 4))
	if ds := g2.Diamonds(); len(ds) != 0 {
		t.Errorf("single-middle pair detected as diamond: %+v", ds)
	}
}

func TestGraphStarsBreakTriples(t *testing.T) {
	g := NewGraph(dst)
	g.Add(mkRoute(1, -1, 4, 5))
	g.Add(mkRoute(1, 2, 4, 5))
	if ds := g.Diamonds(); len(ds) != 0 {
		t.Errorf("star counted as a diamond middle: %+v", ds)
	}
}

func TestGraphRouteCount(t *testing.T) {
	g := NewGraph(dst)
	for i := 0; i < 5; i++ {
		g.Add(mkRoute(1, 2, 3))
	}
	if g.Routes != 5 {
		t.Errorf("Routes = %d", g.Routes)
	}
}

// --- Classification ---

func TestClassifyLoopZeroTTL(t *testing.T) {
	rt := mkRoute(1, 2, 2, 3)
	rt.Hops[1].ProbeTTL = 0
	rt.Hops[2].ProbeTTL = 1
	rt.Hops[1].IPID = 100
	rt.Hops[2].IPID = 103
	l := FindLoops(rt)[0]
	if got := ClassifyLoop(l, rt, nil); got != CauseZeroTTL {
		t.Errorf("cause = %v, want zero-ttl", got)
	}
	// If the IP IDs come from clearly different boxes, the rule must not
	// fire.
	rt.Hops[2].IPID = 40000
	if got := ClassifyLoop(l, rt, nil); got == CauseZeroTTL {
		t.Error("zero-ttl fired despite incoherent IP IDs")
	}
}

func TestClassifyLoopUnreachability(t *testing.T) {
	rt := mkRoute(1, 2, 3, 3)
	rt.Hops[3].Kind = tracer.KindHostUnreachable
	l := FindLoops(rt)[0]
	if got := ClassifyLoop(l, rt, nil); got != CauseUnreachability {
		t.Errorf("cause = %v, want unreachability", got)
	}
}

func TestClassifyLoopAddressRewriting(t *testing.T) {
	rt := mkRoute(1, 2, 3, 3, 3)
	rt.Hops[2].RespTTL = 249
	rt.Hops[3].RespTTL = 248
	rt.Hops[4].RespTTL = 247
	l := FindLoops(rt)[0]
	if got := ClassifyLoop(l, rt, nil); got != CauseAddressRewriting {
		t.Errorf("cause = %v, want address-rewriting", got)
	}
	// Constant response TTL: a single router answering twice, not a NAT.
	rt.Hops[3].RespTTL = 249
	rt.Hops[4].RespTTL = 249
	rt.Hops[2].RespTTL = 249
	if got := ClassifyLoop(l, rt, nil); got == CauseAddressRewriting {
		t.Error("rewriting fired despite flat response TTLs")
	}
}

func TestClassifyLoopPerFlowViaDifferencing(t *testing.T) {
	classic := mkRoute(1, 2, 3, 3, 4)
	paris := mkRoute(1, 2, 3, 5, 4) // no loop
	l := FindLoops(classic)[0]
	if got := ClassifyLoop(l, classic, paris); got != CausePerFlowLB {
		t.Errorf("cause = %v, want per-flow-lb", got)
	}
	// Same loop present in the Paris trace: cannot be per-flow.
	paris2 := mkRoute(1, 2, 3, 3, 4)
	if got := ClassifyLoop(l, classic, paris2); got != CausePerPacketLB {
		t.Errorf("cause = %v, want per-packet residual", got)
	}
	// No paired trace at all: residual.
	if got := ClassifyLoop(l, classic, nil); got != CausePerPacketLB {
		t.Errorf("cause = %v, want per-packet residual", got)
	}
}

func TestClassifyLoopOrderingZeroTTLBeforeDifferencing(t *testing.T) {
	classic := mkRoute(1, 2, 2, 3)
	classic.Hops[1].ProbeTTL = 0
	classic.Hops[2].ProbeTTL = 1
	classic.Hops[1].IPID = 5
	classic.Hops[2].IPID = 6
	paris := mkRoute(1, 2, 3) // loop absent from paris too
	l := FindLoops(classic)[0]
	if got := ClassifyLoop(l, classic, paris); got != CauseZeroTTL {
		t.Errorf("cause = %v; the conclusive zero-TTL evidence must win", got)
	}
}

func TestClassifyCycleUnreachability(t *testing.T) {
	rt := mkRoute(1, 2, 3, 2)
	rt.Hops[3].Kind = tracer.KindNetUnreachable
	c := FindCycles(rt)[0]
	if got := ClassifyCycle(c, rt, nil); got != CauseUnreachability {
		t.Errorf("cause = %v, want unreachability", got)
	}
}

func TestClassifyCycleForwardingLoop(t *testing.T) {
	rt := mkRoute(1, 2, 3, 2, 3, 2)
	// Coherent IP IDs on the repeated address.
	for i, h := range rt.Hops {
		_ = h
		rt.Hops[i].IPID = uint16(10 + i)
	}
	c := FindCycles(rt)[0]
	if got := ClassifyCycle(c, rt, nil); got != CauseForwardingLoop {
		t.Errorf("cause = %v, want forwarding-loop", got)
	}
	// Wildly different IP IDs: periodicity alone is not enough.
	rt.Hops[3].IPID = 50000
	rt.Hops[5].IPID = 200
	if got := ClassifyCycle(c, rt, nil); got == CauseForwardingLoop {
		t.Error("forwarding-loop fired with incoherent IP IDs")
	}
}

func TestClassifyCyclePerFlow(t *testing.T) {
	classic := mkRoute(1, 2, 3, 2, 5)
	paris := mkRoute(1, 2, 3, 4, 5)
	c := FindCycles(classic)[0]
	if got := ClassifyCycle(c, classic, paris); got != CausePerFlowLB {
		t.Errorf("cause = %v, want per-flow-lb", got)
	}
}

func TestClassifyDiamond(t *testing.T) {
	g := NewGraph(dst)
	g.Add(mkRoute(1, 2, 4))
	g.Add(mkRoute(1, 3, 4))
	d := g.Diamonds()[0]

	parisClean := NewGraph(dst)
	parisClean.Add(mkRoute(1, 2, 4))
	if got := ClassifyDiamond(d, parisClean); got != CausePerFlowLB {
		t.Errorf("cause = %v, want per-flow-lb", got)
	}

	parisSame := NewGraph(dst)
	parisSame.Add(mkRoute(1, 2, 4))
	parisSame.Add(mkRoute(1, 3, 4))
	if got := ClassifyDiamond(d, parisSame); got != CausePerPacketLB {
		t.Errorf("cause = %v, want per-packet", got)
	}

	if got := ClassifyDiamond(d, nil); got != CausePerPacketLB {
		t.Errorf("nil paris graph: cause = %v, want per-packet", got)
	}
}

func TestIPIDCloseWraparound(t *testing.T) {
	if !ipidClose(0xfffe, 0x0005, maxIPIDGap) {
		t.Error("wraparound increment rejected")
	}
	if ipidClose(5, 5, maxIPIDGap) {
		t.Error("zero delta accepted (counters must advance)")
	}
	if ipidClose(1000, 900, maxIPIDGap) {
		t.Error("backwards delta accepted")
	}
	if ipidClose(0, 2000, maxIPIDGap) {
		t.Error("oversized gap accepted")
	}
}

func TestCauseStrings(t *testing.T) {
	for c := CauseUnknown; c <= CauseForwardingLoop; c++ {
		if c.String() == "" {
			t.Errorf("empty string for cause %d", int(c))
		}
	}
}

// pairClassReference recomputes a PairClass the pre-streaming way: one
// ClassifyLoop/ClassifyCycle call per instance and the nested Paris-only
// rescan. ClassifyPair must match it exactly.
func pairClassReference(classic, paris *tracer.Route) PairClass {
	pc := PairClass{Loops: FindLoops(classic), Cycles: FindCycles(classic)}
	if len(pc.Loops) > 0 {
		pc.LoopCauses = make([]Cause, len(pc.Loops))
		for i, l := range pc.Loops {
			pc.LoopCauses[i] = ClassifyLoop(l, classic, paris)
		}
	}
	if len(pc.Cycles) > 0 {
		pc.CycleCauses = make([]Cause, len(pc.Cycles))
		for i, c := range pc.Cycles {
			pc.CycleCauses[i] = ClassifyCycle(c, classic, paris)
		}
	}
	for _, l := range FindLoops(paris) {
		found := false
		for _, cl := range pc.Loops {
			if cl.Addr == l.Addr {
				found = true
				break
			}
		}
		if !found {
			pc.ParisOnly++
		}
	}
	return pc
}

func TestClassifyPairMatchesPerInstance(t *testing.T) {
	cases := []struct {
		name           string
		classic, paris *tracer.Route
	}{
		{"clean", mkRoute(1, 2, 3), mkRoute(1, 2, 3)},
		{"per-flow loop", mkRoute(1, 2, 2, 3), mkRoute(1, 2, 4, 3)},
		{"shared loop", mkRoute(1, 2, 2, 3), mkRoute(1, 2, 2, 3)},
		{"paris-only loop", mkRoute(1, 2, 3), mkRoute(1, 4, 4, 3)},
		{"both sides loop plus paris-only", mkRoute(1, 2, 2, 3), mkRoute(1, 2, 2, 5, 5)},
		{"cycle per-flow", mkRoute(1, 2, 3, 2, 4), mkRoute(1, 2, 3, 5, 4)},
		{"loop and cycle", mkRoute(1, 2, 2, 3, 2, 4), mkRoute(1, 6, 3, 5, 4)},
		{"stars", mkRoute(1, -1, 2, 2, -1, 3), mkRoute(1, -1, 2, 4, -1, 3)},
	}
	for _, tc := range cases {
		want := pairClassReference(tc.classic, tc.paris)
		got := ClassifyPair(tc.classic, tc.paris)
		if len(got.Loops) != len(want.Loops) || len(got.Cycles) != len(want.Cycles) ||
			got.ParisOnly != want.ParisOnly {
			t.Errorf("%s: ClassifyPair shape = %d loops/%d cycles/%d paris-only, want %d/%d/%d",
				tc.name, len(got.Loops), len(got.Cycles), got.ParisOnly,
				len(want.Loops), len(want.Cycles), want.ParisOnly)
			continue
		}
		for i := range want.LoopCauses {
			if got.LoopCauses[i] != want.LoopCauses[i] {
				t.Errorf("%s: loop %d cause = %v, want %v", tc.name, i, got.LoopCauses[i], want.LoopCauses[i])
			}
		}
		for i := range want.CycleCauses {
			if got.CycleCauses[i] != want.CycleCauses[i] {
				t.Errorf("%s: cycle %d cause = %v, want %v", tc.name, i, got.CycleCauses[i], want.CycleCauses[i])
			}
		}
	}
}

func TestClassifyPairNilParis(t *testing.T) {
	classic := mkRoute(1, 2, 2, 3)
	pc := ClassifyPair(classic, nil)
	if len(pc.Loops) != 1 || pc.LoopCauses[0] != CausePerPacketLB {
		t.Errorf("nil paris: %+v — differencing must not fire, residual per-packet", pc)
	}
	if pc.ParisOnly != 0 {
		t.Errorf("nil paris counted %d paris-only loops", pc.ParisOnly)
	}
}

// TestGraphAddIdempotent pins the incremental-dedup contract streaming
// accumulators rely on: re-adding a route whose edges are present must not
// change Succ, Triples, or the diamond set.
func TestGraphAddIdempotent(t *testing.T) {
	g := NewGraph(dst)
	g.Add(mkRoute(1, 2, 4))
	g.Add(mkRoute(1, 3, 4))
	succ, triples, diamonds := len(g.Succ), len(g.Triples), len(g.Diamonds())
	mids := len(g.Triples[[2]netip.Addr{addr(1), addr(4)}])
	g.Add(mkRoute(1, 2, 4))
	g.Add(mkRoute(1, 3, 4))
	if len(g.Succ) != succ || len(g.Triples) != triples || len(g.Diamonds()) != diamonds ||
		len(g.Triples[[2]netip.Addr{addr(1), addr(4)}]) != mids {
		t.Errorf("re-adding present routes changed the graph: succ %d->%d triples %d->%d diamonds %d->%d",
			succ, len(g.Succ), triples, len(g.Triples), diamonds, len(g.Diamonds()))
	}
	if g.Routes != 4 {
		t.Errorf("Routes = %d, want 4 (the counter still advances)", g.Routes)
	}
	if diamonds != 1 || mids != 2 {
		t.Fatalf("test shape degenerate: diamonds=%d mids=%d", diamonds, mids)
	}
}
