package anomaly

import (
	"fmt"
	"net/netip"

	"repro/internal/tracer"
)

// Cause is the attributed origin of an anomaly, following the taxonomy of
// Sections 4.1–4.3.
type Cause int

const (
	// CauseUnknown means no rule matched.
	CauseUnknown Cause = iota
	// CausePerFlowLB: the anomaly appears with classic traceroute's
	// varying flow identifier but not in the paired Paris measurement.
	CausePerFlowLB
	// CausePerPacketLB: the residual attributed to random per-packet
	// spreading (the paper supposes, but cannot verify, this cause).
	CausePerPacketLB
	// CauseZeroTTL: a misconfigured router forwarded a zero-TTL packet;
	// detected by a quoted probe TTL of 0 followed by 1 (Fig. 4).
	CauseZeroTTL
	// CauseUnreachability: a router answered one probe with Time
	// Exceeded and the next with Destination Unreachable (!H/!N).
	CauseUnreachability
	// CauseAddressRewriting: a NAT box or firewall rewrote the source of
	// ICMP from routers behind it; detected by a decreasing response TTL
	// across hops bearing one address (Fig. 5).
	CauseAddressRewriting
	// CauseForwardingLoop: packets truly cycled (routing convergence);
	// detected by periodicity of the measured route and coherently
	// incrementing IP IDs (Section 4.2.1).
	CauseForwardingLoop
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseUnknown:
		return "unknown"
	case CausePerFlowLB:
		return "per-flow-lb"
	case CausePerPacketLB:
		return "per-packet-lb"
	case CauseZeroTTL:
		return "zero-ttl-forwarding"
	case CauseUnreachability:
		return "unreachability"
	case CauseAddressRewriting:
		return "address-rewriting"
	case CauseForwardingLoop:
		return "forwarding-loop"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// ipidClose reports whether two IP ID samples are plausibly from the same
// router's counter: b follows a by a small forward increment (mod 2^16).
// Routers emit other traffic between our probes, so allow a generous gap.
func ipidClose(a, b uint16, maxGap uint16) bool {
	delta := b - a // wraps mod 2^16
	return delta > 0 && delta <= maxGap
}

// maxIPIDGap bounds the counter advance we accept between two responses
// attributed to one router.
const maxIPIDGap = 1024

// ClassifyLoop attributes a loop to a cause, applying the paper's checks in
// order of conclusiveness:
//
//  1. zero-TTL forwarding: quoted probe TTL 0 then 1, same IP ID source;
//  2. unreachability: the loop ends the route with an !H/!N response;
//  3. address rewriting: strictly decreasing response TTL across the loop;
//  4. per-flow load balancing: the signature is absent from the paired
//     Paris measurement;
//  5. residual: per-packet load balancing (unverifiable, as in the paper).
//
// paris may be nil when no paired trace exists; differencing then cannot
// fire and residual load-balancing loops classify as per-packet.
func ClassifyLoop(l Loop, route, paris *tracer.Route) Cause {
	hops := route.Hops
	first := hops[l.Start]
	second := hops[l.Start+1]

	// Zero-TTL forwarding (Fig. 4): first response quotes probe TTL 0,
	// the next quotes the normal 1, and both came from the same box.
	if first.ProbeTTL == 0 && second.ProbeTTL == 1 &&
		ipidClose(first.IPID, second.IPID, maxIPIDGap) {
		return CauseZeroTTL
	}

	// Unreachability message: Time Exceeded then Destination Unreachable
	// from the same address, flagged !H or !N, halting the trace.
	if l.AtEnd {
		last := hops[l.Start+l.Len-1]
		switch last.Kind {
		case tracer.KindHostUnreachable, tracer.KindNetUnreachable:
			return CauseUnreachability
		}
	}

	// Address rewriting (Fig. 5): every response in the loop bears the
	// same address but the response TTL falls at each hop — the boxes are
	// genuinely further and further away.
	if l.Len >= 2 && respTTLDecreasing(hops[l.Start:l.Start+l.Len]) {
		return CauseAddressRewriting
	}

	// Per-flow load balancing: gone when the flow identifier is held
	// constant.
	if paris != nil && !routeHasLoopOn(paris, l) {
		return CausePerFlowLB
	}
	return CausePerPacketLB
}

// respTTLDecreasing reports whether response TTLs strictly decrease across
// the hops (allowing single-step decrements only, the NAT gradient).
func respTTLDecreasing(hops []tracer.Hop) bool {
	for i := 1; i < len(hops); i++ {
		if hops[i].Star() || hops[i-1].Star() {
			return false
		}
		if hops[i].RespTTL >= hops[i-1].RespTTL {
			return false
		}
	}
	return true
}

// routeHasLoopOn reports whether rt contains a loop with the same signature
// (address and destination) as l.
func routeHasLoopOn(rt *tracer.Route, l Loop) bool {
	for _, x := range FindLoops(rt) {
		if x.Addr == l.Addr {
			return true
		}
	}
	return false
}

// ClassifyCycle attributes a cycle to a cause:
//
//  1. unreachability: the second appearance is an !H/!N response ending
//     the route;
//  2. forwarding loop: the measured route is periodic from the first
//     appearance on, and the IP IDs of the repeated address increment
//     coherently (one router visited again and again);
//  3. per-flow load balancing: the signature is absent from the paired
//     Paris measurement;
//  4. residual: per-packet load balancing or spoofed addresses.
func ClassifyCycle(c Cycle, route, paris *tracer.Route) Cause {
	hops := route.Hops

	// Unreachability: some appearance of the cycling address (typically
	// the last, which halts the trace) is an !H/!N response.
	for _, h := range hops {
		if h.Star() || h.Addr != c.Addr {
			continue
		}
		switch h.Kind {
		case tracer.KindHostUnreachable, tracer.KindNetUnreachable:
			return CauseUnreachability
		}
	}

	if c.Period > 0 && cycleIPIDsCoherent(hops, c) {
		return CauseForwardingLoop
	}

	if paris != nil && !routeHasCycleOn(paris, c) {
		return CausePerFlowLB
	}
	return CausePerPacketLB
}

// cycleIPIDsCoherent checks that successive appearances of the cycling
// address carry IP IDs that "increment, and by a relatively small amount,
// with each cycle" (Section 4.2.1).
func cycleIPIDsCoherent(hops []tracer.Hop, c Cycle) bool {
	var prev *tracer.Hop
	for i := c.First; i < len(hops); i++ {
		h := hops[i]
		if h.Star() || h.Addr != c.Addr {
			continue
		}
		if prev != nil && !ipidClose(prev.IPID, h.IPID, maxIPIDGap) {
			return false
		}
		hh := h
		prev = &hh
	}
	return prev != nil
}

// routeHasCycleOn reports whether rt contains a cycle on the same address.
func routeHasCycleOn(rt *tracer.Route, c Cycle) bool {
	for _, x := range FindCycles(rt) {
		if x.Addr == c.Addr {
			return true
		}
	}
	return false
}

// ClassifyDiamond attributes a diamond found in the classic per-destination
// graph: if the paired Paris graph (same destination, same rounds) lacks
// the signature, per-flow load balancing created it; otherwise it is the
// residual the paper attributes mostly to per-packet load balancing (or to
// true topology visible through it).
func ClassifyDiamond(d Diamond, parisGraph *Graph) Cause {
	if parisGraph == nil {
		return CausePerPacketLB
	}
	if mids, ok := parisGraph.Triples[[2]netip.Addr{d.Head, d.Tail}]; ok && len(mids) >= 2 {
		return CausePerPacketLB
	}
	return CausePerFlowLB
}
