package anomaly

import (
	"fmt"
	"net/netip"

	"repro/internal/tracer"
)

// Cause is the attributed origin of an anomaly, following the taxonomy of
// Sections 4.1–4.3.
type Cause int

const (
	// CauseUnknown means no rule matched.
	CauseUnknown Cause = iota
	// CausePerFlowLB: the anomaly appears with classic traceroute's
	// varying flow identifier but not in the paired Paris measurement.
	CausePerFlowLB
	// CausePerPacketLB: the residual attributed to random per-packet
	// spreading (the paper supposes, but cannot verify, this cause).
	CausePerPacketLB
	// CauseZeroTTL: a misconfigured router forwarded a zero-TTL packet;
	// detected by a quoted probe TTL of 0 followed by 1 (Fig. 4).
	CauseZeroTTL
	// CauseUnreachability: a router answered one probe with Time
	// Exceeded and the next with Destination Unreachable (!H/!N).
	CauseUnreachability
	// CauseAddressRewriting: a NAT box or firewall rewrote the source of
	// ICMP from routers behind it; detected by a decreasing response TTL
	// across hops bearing one address (Fig. 5).
	CauseAddressRewriting
	// CauseForwardingLoop: packets truly cycled (routing convergence);
	// detected by periodicity of the measured route and coherently
	// incrementing IP IDs (Section 4.2.1).
	CauseForwardingLoop
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseUnknown:
		return "unknown"
	case CausePerFlowLB:
		return "per-flow-lb"
	case CausePerPacketLB:
		return "per-packet-lb"
	case CauseZeroTTL:
		return "zero-ttl-forwarding"
	case CauseUnreachability:
		return "unreachability"
	case CauseAddressRewriting:
		return "address-rewriting"
	case CauseForwardingLoop:
		return "forwarding-loop"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// ipidClose reports whether two IP ID samples are plausibly from the same
// router's counter: b follows a by a small forward increment (mod 2^16).
// Routers emit other traffic between our probes, so allow a generous gap.
func ipidClose(a, b uint16, maxGap uint16) bool {
	delta := b - a // wraps mod 2^16
	return delta > 0 && delta <= maxGap
}

// maxIPIDGap bounds the counter advance we accept between two responses
// attributed to one router.
const maxIPIDGap = 1024

// ClassifyLoop attributes a loop to a cause, applying the paper's checks in
// order of conclusiveness:
//
//  1. zero-TTL forwarding: quoted probe TTL 0 then 1, same IP ID source;
//  2. unreachability: the loop ends the route with an !H/!N response;
//  3. address rewriting: strictly decreasing response TTL across the loop;
//  4. per-flow load balancing: the signature is absent from the paired
//     Paris measurement;
//  5. residual: per-packet load balancing (unverifiable, as in the paper).
//
// paris may be nil when no paired trace exists; differencing then cannot
// fire and residual load-balancing loops classify as per-packet.
func ClassifyLoop(l Loop, route, paris *tracer.Route) Cause {
	if paris == nil {
		return classifyLoop(l, route, nil, false)
	}
	return classifyLoop(l, route, FindLoops(paris), true)
}

// ClassifyLoopDetected is ClassifyLoop with the paired Paris detection
// already in hand: streaming accumulators memoize FindLoops per interned
// route and classify many instances against one detection pass. It is also
// how the accumulator re-evaluates a zero-TTL candidate against the
// current round's route: the rule's IP ID coherence check is the one loop
// observable that changes between exchanges of one path.
func ClassifyLoopDetected(l Loop, route *tracer.Route, parisLoops []Loop, hasParis bool) Cause {
	return classifyLoop(l, route, parisLoops, hasParis)
}

func classifyLoop(l Loop, route *tracer.Route, parisLoops []Loop, hasParis bool) Cause {
	hops := route.Hops
	first := hops[l.Start]
	second := hops[l.Start+1]

	// Zero-TTL forwarding (Fig. 4): first response quotes probe TTL 0,
	// the next quotes the normal 1, and both came from the same box.
	if first.ProbeTTL == 0 && second.ProbeTTL == 1 &&
		ipidClose(first.IPID, second.IPID, maxIPIDGap) {
		return CauseZeroTTL
	}

	// Unreachability message: Time Exceeded then Destination Unreachable
	// from the same address, flagged !H or !N, halting the trace.
	if l.AtEnd {
		last := hops[l.Start+l.Len-1]
		switch last.Kind {
		case tracer.KindHostUnreachable, tracer.KindNetUnreachable:
			return CauseUnreachability
		}
	}

	// Address rewriting (Fig. 5): every response in the loop bears the
	// same address but the response TTL falls at each hop — the boxes are
	// genuinely further and further away.
	if l.Len >= 2 && respTTLDecreasing(hops[l.Start:l.Start+l.Len]) {
		return CauseAddressRewriting
	}

	// Per-flow load balancing: gone when the flow identifier is held
	// constant.
	if hasParis && !loopsContain(parisLoops, l.Addr) {
		return CausePerFlowLB
	}
	return CausePerPacketLB
}

// loopsContain reports whether any detected loop runs on addr.
func loopsContain(loops []Loop, addr netip.Addr) bool {
	for _, x := range loops {
		if x.Addr == addr {
			return true
		}
	}
	return false
}

// respTTLDecreasing reports whether response TTLs strictly decrease across
// the hops (allowing single-step decrements only, the NAT gradient).
func respTTLDecreasing(hops []tracer.Hop) bool {
	for i := 1; i < len(hops); i++ {
		if hops[i].Star() || hops[i-1].Star() {
			return false
		}
		if hops[i].RespTTL >= hops[i-1].RespTTL {
			return false
		}
	}
	return true
}

// ClassifyCycle attributes a cycle to a cause:
//
//  1. unreachability: the second appearance is an !H/!N response ending
//     the route;
//  2. forwarding loop: the measured route is periodic from the first
//     appearance on, and the IP IDs of the repeated address increment
//     coherently (one router visited again and again);
//  3. per-flow load balancing: the signature is absent from the paired
//     Paris measurement;
//  4. residual: per-packet load balancing or spoofed addresses.
func ClassifyCycle(c Cycle, route, paris *tracer.Route) Cause {
	if paris == nil {
		return classifyCycle(c, route, nil, false)
	}
	return classifyCycle(c, route, FindCycles(paris), true)
}

// ClassifyCycleDetected is ClassifyCycle with the paired Paris detection
// already in hand (see ClassifyLoopDetected); periodic cycles re-evaluate
// their IP ID coherence against each round's route through it.
func ClassifyCycleDetected(c Cycle, route *tracer.Route, parisCycles []Cycle, hasParis bool) Cause {
	return classifyCycle(c, route, parisCycles, hasParis)
}

func classifyCycle(c Cycle, route *tracer.Route, parisCycles []Cycle, hasParis bool) Cause {
	hops := route.Hops

	// Unreachability: some appearance of the cycling address (typically
	// the last, which halts the trace) is an !H/!N response.
	for _, h := range hops {
		if h.Star() || h.Addr != c.Addr {
			continue
		}
		switch h.Kind {
		case tracer.KindHostUnreachable, tracer.KindNetUnreachable:
			return CauseUnreachability
		}
	}

	if c.Period > 0 && cycleIPIDsCoherent(hops, c) {
		return CauseForwardingLoop
	}

	if hasParis && !cyclesContain(parisCycles, c.Addr) {
		return CausePerFlowLB
	}
	return CausePerPacketLB
}

// cyclesContain reports whether any detected cycle runs on addr.
func cyclesContain(cycles []Cycle, addr netip.Addr) bool {
	for _, x := range cycles {
		if x.Addr == addr {
			return true
		}
	}
	return false
}

// cycleIPIDsCoherent checks that successive appearances of the cycling
// address carry IP IDs that "increment, and by a relatively small amount,
// with each cycle" (Section 4.2.1).
func cycleIPIDsCoherent(hops []tracer.Hop, c Cycle) bool {
	var prev *tracer.Hop
	for i := c.First; i < len(hops); i++ {
		h := hops[i]
		if h.Star() || h.Addr != c.Addr {
			continue
		}
		if prev != nil && !ipidClose(prev.IPID, h.IPID, maxIPIDGap) {
			return false
		}
		hh := h
		prev = &hh
	}
	return prev != nil
}

// LoopConsultsIPID reports whether classifying l on routes along this path
// reads the response IP IDs: only the zero-TTL rule does, and only when
// the loop opens with the quoted-TTL 0-then-1 pattern (Fig. 4). The
// pattern is a path property, so accumulators evaluate it once per
// interned route; loops without it classify identically whatever the IP
// IDs and their memoized cause is reusable, while loops with it re-run
// ClassifyLoopDetected against each round's route.
func LoopConsultsIPID(l Loop, route *tracer.Route) bool {
	hops := route.Hops
	return hops[l.Start].ProbeTTL == 0 && hops[l.Start+1].ProbeTTL == 1
}

// CycleConsultsIPID reports whether classifying c reads the response IP
// IDs: only periodic cycles check counter coherence (Section 4.2.1).
func CycleConsultsIPID(c Cycle) bool { return c.Period > 0 }

// PairClass is the full classification of one paired measurement: every
// classic loop and cycle instance with its attributed cause (indexes line up
// with Loops and Cycles), plus the count of Paris-only loops — loops the
// Paris trace saw on an address that loops nowhere in the paired classic
// route (Section 4.1.2's 0.25% residue).
type PairClass struct {
	Loops       []Loop
	LoopCauses  []Cause
	Cycles      []Cycle
	CycleCauses []Cause
	ParisOnly   int
}

// ClassifyPair detects and classifies every anomaly of a paired
// classic/Paris measurement in one call. paris may be nil (see
// ClassifyLoop).
func ClassifyPair(classic, paris *tracer.Route) PairClass {
	var parisLoops []Loop
	var parisCycles []Cycle
	if paris != nil {
		parisLoops = FindLoops(paris)
		parisCycles = FindCycles(paris)
	}
	return ClassifyPairDetected(FindLoops(classic), FindCycles(classic),
		parisLoops, parisCycles, classic, paris != nil)
}

// ClassifyPairDetected is ClassifyPair with all four detection passes
// already run — the streaming accumulator's entry point, which memoizes
// FindLoops/FindCycles per interned route and re-classifies only when one
// side of the pair actually changed. Each detection pass is consulted once:
// Paris-only matching builds the classic loop-address set a single time
// instead of rescanning the classic loops per Paris instance.
func ClassifyPairDetected(loops []Loop, cycles []Cycle, parisLoops []Loop, parisCycles []Cycle, classic *tracer.Route, hasParis bool) PairClass {
	pc := PairClass{Loops: loops, Cycles: cycles}
	if len(loops) > 0 {
		pc.LoopCauses = make([]Cause, len(loops))
		for i, l := range loops {
			pc.LoopCauses[i] = classifyLoop(l, classic, parisLoops, hasParis)
		}
	}
	if len(cycles) > 0 {
		pc.CycleCauses = make([]Cause, len(cycles))
		for i, c := range cycles {
			pc.CycleCauses[i] = classifyCycle(c, classic, parisCycles, hasParis)
		}
	}
	if len(parisLoops) > 0 {
		// Set-built-once Paris-only matching: O(classic + paris) instead
		// of the nested O(classic × paris) rescan.
		var inClassic map[netip.Addr]bool
		if len(loops) > 0 {
			inClassic = make(map[netip.Addr]bool, len(loops))
			for _, l := range loops {
				inClassic[l.Addr] = true
			}
		}
		for _, l := range parisLoops {
			if !inClassic[l.Addr] {
				pc.ParisOnly++
			}
		}
	}
	return pc
}

// ClassifyDiamond attributes a diamond found in the classic per-destination
// graph: if the paired Paris graph (same destination, same rounds) lacks
// the signature, per-flow load balancing created it; otherwise it is the
// residual the paper attributes mostly to per-packet load balancing (or to
// true topology visible through it).
func ClassifyDiamond(d Diamond, parisGraph *Graph) Cause {
	if parisGraph == nil {
		return CausePerPacketLB
	}
	if mids, ok := parisGraph.Triples[[2]netip.Addr{d.Head, d.Tail}]; ok && len(mids) >= 2 {
		return CausePerPacketLB
	}
	return CausePerFlowLB
}
