// Package anomaly implements the paper's three traceroute anomaly
// signatures — loops, cycles, and diamonds (Section 4) — and the cause
// classifier that attributes each instance using the observables Paris
// traceroute adds (probe TTL, response TTL, IP ID) plus classic-vs-Paris
// differencing.
//
// # Determinism and concurrency contract
//
// Every detector and the classifier are pure functions over the routes they
// are given: no package-level state, no randomness, no clock reads. The
// same routes always yield the same instances and the same causes, in the
// same order, which is what lets the measure package memoize per-route
// results on interned routes and still produce byte-identical statistics
// at any worker count.
//
// Two classifier rules consult response IP IDs (LoopConsultsIPID,
// CycleConsultsIPID), which differ on every exchange even along a stable
// path. Both rules are gated on path-stable patterns and are re-evaluated
// against each round's route rather than a memoized one, so IP-ID-driven
// verdicts stay per-round facts and never leak through interning. All
// values are read-only to this package; nothing here mutates a Route, so
// concurrent analysis of distinct routes needs no synchronization.
package anomaly
