// Package asmap provides longest-prefix-match IP→AS mapping.
//
// The paper maps the 90 million response source addresses to AS numbers
// with Mao et al.'s technique to report coverage (1,122 ASes, all nine
// tier-1 ISPs, 64 of the top regional ASes). Here the mapping table is
// populated by the topology generator, which assigns AS numbers to the
// prefixes it allocates; the campaign reports the same coverage statistics
// over it.
package asmap

import (
	"fmt"
	"net/netip"
	"sort"
)

// Tier classifies an AS for the coverage report.
type Tier int

const (
	// TierStub is an edge network.
	TierStub Tier = iota
	// TierRegional is a top regional ISP (the paper's APNIC top-20s).
	TierRegional
	// TierOne is a tier-1 ISP.
	TierOne
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierStub:
		return "stub"
	case TierRegional:
		return "regional"
	case TierOne:
		return "tier-1"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// AS describes one autonomous system.
type AS struct {
	Number int
	Name   string
	Tier   Tier
}

// Table maps prefixes to AS numbers with longest-prefix-match semantics.
// The zero value is empty and ready to use.
type Table struct {
	entries []entry
	ases    map[int]AS
	sorted  bool
}

type entry struct {
	prefix netip.Prefix
	asn    int
}

// RegisterAS records AS metadata (idempotent; later calls overwrite).
func (t *Table) RegisterAS(a AS) {
	if t.ases == nil {
		t.ases = make(map[int]AS)
	}
	t.ases[a.Number] = a
}

// AS returns the metadata for an AS number.
func (t *Table) AS(n int) (AS, bool) {
	a, ok := t.ases[n]
	return a, ok
}

// Add maps a prefix to an AS number.
func (t *Table) Add(p netip.Prefix, asn int) {
	t.entries = append(t.entries, entry{prefix: p.Masked(), asn: asn})
	t.sorted = false
}

// Lookup returns the AS number owning addr via longest-prefix match.
func (t *Table) Lookup(addr netip.Addr) (int, bool) {
	if !t.sorted {
		// Sort by descending prefix length so the first match wins.
		sort.SliceStable(t.entries, func(i, j int) bool {
			return t.entries[i].prefix.Bits() > t.entries[j].prefix.Bits()
		})
		t.sorted = true
	}
	for _, e := range t.entries {
		if e.prefix.Contains(addr) {
			return e.asn, true
		}
	}
	return 0, false
}

// Len returns the number of mapped prefixes.
func (t *Table) Len() int { return len(t.entries) }

// Coverage summarises which ASes a set of observed addresses touches,
// reproducing the Section 3 coverage report.
type Coverage struct {
	// ASes is the count of distinct ASes observed.
	ASes int
	// TierOne and Regional count distinct observed ASes of each tier.
	TierOne  int
	Regional int
	// Unmapped counts addresses with no matching prefix (the paper's
	// "invalid IP addresses").
	Unmapped int
}

// Cover computes coverage over the observed address set.
func (t *Table) Cover(addrs []netip.Addr) Coverage {
	seen := make(map[int]bool)
	var cov Coverage
	for _, a := range addrs {
		asn, ok := t.Lookup(a)
		if !ok {
			cov.Unmapped++
			continue
		}
		if seen[asn] {
			continue
		}
		seen[asn] = true
		cov.ASes++
		switch t.ases[asn].Tier {
		case TierOne:
			cov.TierOne++
		case TierRegional:
			cov.Regional++
		}
	}
	return cov
}
