package asmap

import (
	"net/netip"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

func TestLongestPrefixMatch(t *testing.T) {
	var tab Table
	tab.Add(pfx("10.0.0.0/8"), 1)
	tab.Add(pfx("10.1.0.0/16"), 2)
	tab.Add(pfx("10.1.2.0/24"), 3)

	for _, tc := range []struct {
		addr string
		want int
	}{
		{"10.9.9.9", 1},
		{"10.1.9.9", 2},
		{"10.1.2.9", 3},
	} {
		got, ok := tab.Lookup(ip(tc.addr))
		if !ok || got != tc.want {
			t.Errorf("Lookup(%s) = %d,%v want %d", tc.addr, got, ok, tc.want)
		}
	}
	if _, ok := tab.Lookup(ip("192.0.2.1")); ok {
		t.Error("unmapped address matched")
	}
}

func TestAddAfterLookupResorts(t *testing.T) {
	var tab Table
	tab.Add(pfx("10.0.0.0/8"), 1)
	if got, _ := tab.Lookup(ip("10.1.2.3")); got != 1 {
		t.Fatalf("got %d", got)
	}
	tab.Add(pfx("10.1.0.0/16"), 2) // added after a lookup: must re-sort
	if got, _ := tab.Lookup(ip("10.1.2.3")); got != 2 {
		t.Errorf("got %d, want 2 (longest prefix added late)", got)
	}
}

func TestMaskedPrefixes(t *testing.T) {
	var tab Table
	// Unmasked input (host bits set) must still match its whole prefix.
	tab.Add(netip.PrefixFrom(ip("10.1.2.3"), 16), 7)
	if got, ok := tab.Lookup(ip("10.1.200.200")); !ok || got != 7 {
		t.Errorf("Lookup = %d,%v want 7", got, ok)
	}
}

func TestCoverage(t *testing.T) {
	var tab Table
	tab.RegisterAS(AS{Number: 1, Name: "t1", Tier: TierOne})
	tab.RegisterAS(AS{Number: 2, Name: "reg", Tier: TierRegional})
	tab.RegisterAS(AS{Number: 3, Name: "stub", Tier: TierStub})
	tab.Add(pfx("10.0.0.0/8"), 1)
	tab.Add(pfx("172.16.0.0/16"), 2)
	tab.Add(pfx("192.168.0.0/24"), 3)

	cov := tab.Cover([]netip.Addr{
		ip("10.0.0.1"), ip("10.0.0.2"), // AS 1 twice: counted once
		ip("172.16.5.5"),   // AS 2
		ip("192.168.0.9"),  // AS 3
		ip("198.51.100.1"), // unmapped
	})
	if cov.ASes != 3 || cov.TierOne != 1 || cov.Regional != 1 || cov.Unmapped != 1 {
		t.Errorf("coverage = %+v", cov)
	}
}

func TestASMetadata(t *testing.T) {
	var tab Table
	tab.RegisterAS(AS{Number: 9, Name: "nine", Tier: TierRegional})
	a, ok := tab.AS(9)
	if !ok || a.Name != "nine" || a.Tier != TierRegional {
		t.Errorf("AS(9) = %+v, %v", a, ok)
	}
	if _, ok := tab.AS(10); ok {
		t.Error("unknown AS found")
	}
	if tab.Len() != 0 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestTierStrings(t *testing.T) {
	for _, tier := range []Tier{TierStub, TierRegional, TierOne} {
		if tier.String() == "" {
			t.Errorf("empty string for tier %d", int(tier))
		}
	}
}
