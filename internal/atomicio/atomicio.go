// Package atomicio provides crash-safe file installation: a file either
// appears complete or not at all, never torn. It is the write path under
// the campaign checkpoints (measure.AtomicWriteJSON) and the pcap capture
// sink, both of which promise that a kill at any instant leaves either the
// previous file or a fully-written successor on disk.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile writes data to path via a temp file in the same directory,
// fsynced and renamed into place, so a kill mid-write leaves the previous
// file intact. The temp file is removed on every error path, and a
// successful write sweeps stale "<base>.tmp*" siblings left behind by
// writers killed mid-write — the file's writer is assumed to be a single
// process, which is both the checkpoint and the capture contract.
func WriteFile(path string, data []byte) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: temp file for %s: %w", base, err)
	}
	tmpName := tmp.Name()
	installed := false
	defer func() {
		// One cleanup for every failure path: an error anywhere below
		// must never leave the .tmp file behind.
		if !installed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("atomicio: writing %s: %w", base, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: syncing %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: closing %s: %w", base, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		installed = true // already removed; skip the deferred double-remove
		return fmt.Errorf("atomicio: installing %s: %w", base, err)
	}
	installed = true
	// Writers killed between CreateTemp and Rename leak their randomized
	// temp name forever (no later write ever picks the same name). Sweep
	// them now that a complete file is installed.
	if stale, err := filepath.Glob(filepath.Join(dir, base+".tmp*")); err == nil {
		for _, s := range stale {
			os.Remove(s)
		}
	}
	return nil
}
