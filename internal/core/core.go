// Package core is the high-level Paris-traceroute API tying the probing
// engines, the anomaly detectors, and the cause classifier together.
//
// It implements the paper's primary contribution — measurement that holds
// the flow identifier constant — as a ready-to-use workflow:
//
//   - MeasurePair: the paper's side-by-side methodology (one Paris trace,
//     one classic trace, classified anomaly instances);
//   - EnumeratePaths: the "algorithms to automatically find all interfaces
//     of a given load balancer" the paper lists as future work, realised by
//     tracing many distinct flows;
//   - ClassifyBalancer: distinguishing per-flow from per-packet load
//     balancing, the paper's other future-work item, by repeating a single
//     flow and observing whether the path stays put.
package core

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/tracer"
)

// Session wraps a transport with the default options used by the paper's
// study (UDP probing, stop rules).
type Session struct {
	Transport tracer.Transport
	Options   tracer.Options
}

// NewSession creates a session over tp with the paper's defaults.
func NewSession(tp tracer.Transport) *Session {
	return &Session{Transport: tp, Options: tracer.Options{
		MaxTTL:              30,
		MaxConsecutiveStars: 8,
	}}
}

// ClassifiedLoop is a loop instance with its attributed cause.
type ClassifiedLoop struct {
	Loop  anomaly.Loop
	Cause anomaly.Cause
}

// ClassifiedCycle is a cycle instance with its attributed cause.
type ClassifiedCycle struct {
	Cycle anomaly.Cycle
	Cause anomaly.Cause
}

// PairResult is the outcome of one side-by-side measurement.
type PairResult struct {
	Paris   *tracer.Route
	Classic *tracer.Route
	// Loops and Cycles are the classic trace's anomalies, classified
	// against the Paris trace.
	Loops  []ClassifiedLoop
	Cycles []ClassifiedCycle
	// ParisLoops and ParisCycles are anomalies Paris itself still sees
	// (zero-TTL, NAT, unreachability, per-packet: the causes constant
	// flow identifiers cannot remove).
	ParisLoops  []anomaly.Loop
	ParisCycles []anomaly.Cycle
}

// MeasurePair runs the paper's two-step measurement toward dest: a Paris
// traceroute with an unchanging five-tuple, then a classic traceroute, with
// anomaly detection and cause classification applied.
func (s *Session) MeasurePair(dest netip.Addr) (*PairResult, error) {
	paris := tracer.NewParisUDP(s.Transport, s.Options)
	pr, err := paris.Trace(dest)
	if err != nil {
		return nil, fmt.Errorf("core: paris trace: %w", err)
	}
	classic := tracer.NewClassicUDP(s.Transport, s.Options)
	cr, err := classic.Trace(dest)
	if err != nil {
		return nil, fmt.Errorf("core: classic trace: %w", err)
	}
	res := &PairResult{
		Paris:       pr,
		Classic:     cr,
		ParisLoops:  anomaly.FindLoops(pr),
		ParisCycles: anomaly.FindCycles(pr),
	}
	for _, l := range anomaly.FindLoops(cr) {
		res.Loops = append(res.Loops, ClassifiedLoop{Loop: l, Cause: anomaly.ClassifyLoop(l, cr, pr)})
	}
	for _, c := range anomaly.FindCycles(cr) {
		res.Cycles = append(res.Cycles, ClassifiedCycle{Cycle: c, Cause: anomaly.ClassifyCycle(c, cr, pr)})
	}
	return res, nil
}

// PathSet is the result of multipath enumeration toward one destination.
type PathSet struct {
	Dest netip.Addr
	// Paths maps each distinct hop-address sequence (stringified) to the
	// flows (source ports) that took it.
	Paths map[string][]uint16
	// Routes holds one representative route per distinct path.
	Routes []*tracer.Route
	// InterfacesPerHop lists, for each TTL offset, the distinct
	// responding interfaces observed across flows — the "all interfaces
	// of a given load balancer" view.
	InterfacesPerHop [][]netip.Addr
}

// Distinct returns the number of distinct paths found.
func (ps *PathSet) Distinct() int { return len(ps.Paths) }

// EnumeratePaths traces toward dest once per flow, varying the Paris source
// port, and merges the results. With per-flow load balancing on the path,
// distinct flows reveal the distinct parallel paths; with classic routing
// only, exactly one path appears.
func (s *Session) EnumeratePaths(dest netip.Addr, flows int) (*PathSet, error) {
	if flows <= 0 {
		flows = 16
	}
	ps := &PathSet{Dest: dest, Paths: make(map[string][]uint16)}
	var maxLen int
	ifaceSets := []map[netip.Addr]bool{}
	for f := 0; f < flows; f++ {
		opts := s.Options
		opts.SrcPort = uint16(10000 + f*97)
		opts.DstPort = uint16(20000 + f*59)
		tr := tracer.NewParisUDP(s.Transport, opts)
		rt, err := tr.Trace(dest)
		if err != nil {
			return nil, fmt.Errorf("core: enumerating flow %d: %w", f, err)
		}
		key := pathKey(rt)
		if _, seen := ps.Paths[key]; !seen {
			ps.Routes = append(ps.Routes, rt)
		}
		ps.Paths[key] = append(ps.Paths[key], opts.SrcPort)
		if len(rt.Hops) > maxLen {
			maxLen = len(rt.Hops)
		}
		for i, h := range rt.Hops {
			for len(ifaceSets) <= i {
				ifaceSets = append(ifaceSets, make(map[netip.Addr]bool))
			}
			if !h.Star() {
				ifaceSets[i][h.Addr] = true
			}
		}
	}
	for _, set := range ifaceSets {
		var addrs []netip.Addr
		for a := range set {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		ps.InterfacesPerHop = append(ps.InterfacesPerHop, addrs)
	}
	return ps, nil
}

// pathKey canonicalizes a route's address sequence.
func pathKey(rt *tracer.Route) string {
	s := ""
	for _, h := range rt.Hops {
		if h.Star() {
			s += "*|"
		} else {
			s += h.Addr.String() + "|"
		}
	}
	return s
}

// BalancerKind is the verdict of ClassifyBalancer.
type BalancerKind int

const (
	// BalancerNone: one path for all flows and repetitions.
	BalancerNone BalancerKind = iota
	// BalancerPerFlow: different flows take different, stable paths.
	BalancerPerFlow
	// BalancerPerPacket: even a single repeated flow sees several paths.
	BalancerPerPacket
)

// String implements fmt.Stringer.
func (k BalancerKind) String() string {
	switch k {
	case BalancerNone:
		return "none"
	case BalancerPerFlow:
		return "per-flow"
	case BalancerPerPacket:
		return "per-packet"
	default:
		return fmt.Sprintf("BalancerKind(%d)", int(k))
	}
}

// ClassifyBalancer distinguishes per-flow from per-packet load balancing
// toward dest — the paper's second future-work item. It repeats one flow
// `repeats` times (same five-tuple: any path change must be per-packet),
// then samples `flows` distinct flows (path changes there with a stable
// single flow indicate per-flow balancing).
func (s *Session) ClassifyBalancer(dest netip.Addr, flows, repeats int) (BalancerKind, error) {
	if repeats <= 0 {
		repeats = 4
	}
	// Step 1: one flow, repeated.
	single := make(map[string]bool)
	for r := 0; r < repeats; r++ {
		opts := s.Options
		opts.SrcPort, opts.DstPort = 10007, 20011
		tr := tracer.NewParisUDP(s.Transport, opts)
		rt, err := tr.Trace(dest)
		if err != nil {
			return BalancerNone, fmt.Errorf("core: repeat %d: %w", r, err)
		}
		single[pathKey(rt)] = true
	}
	if len(single) > 1 {
		return BalancerPerPacket, nil
	}
	// Step 2: distinct flows.
	ps, err := s.EnumeratePaths(dest, flows)
	if err != nil {
		return BalancerNone, err
	}
	if ps.Distinct() > 1 {
		return BalancerPerFlow, nil
	}
	return BalancerNone, nil
}
