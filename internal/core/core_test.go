package core

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func TestMeasurePairClassifiesPerFlowLoop(t *testing.T) {
	fig := topo.BuildFigure3(1)
	sess := NewSession(netsim.NewTransport(fig.Net))
	sess.Options.MaxTTL = 15

	// The classic half straddles the unequal branches for some source
	// ports; sweep until the loop shows, then check the classification.
	found := false
	for pid := uint16(0); pid < 96 && !found; pid++ {
		sess.Options.SrcPort = 32768 + pid
		res, err := sess.MeasurePair(fig.Dest.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ParisLoops) != 0 {
			t.Fatalf("paris saw loops: %+v", res.ParisLoops)
		}
		for _, cl := range res.Loops {
			found = true
			if cl.Cause != anomaly.CausePerFlowLB {
				t.Errorf("loop cause = %v, want per-flow-lb", cl.Cause)
			}
			if cl.Loop.Addr != fig.E {
				t.Errorf("loop on %v, want E=%v", cl.Loop.Addr, fig.E)
			}
		}
	}
	if !found {
		t.Fatal("no classic loop over 96 flows")
	}
}

func TestMeasurePairZeroTTLSeenByBoth(t *testing.T) {
	fig := topo.BuildFigure4(1)
	sess := NewSession(netsim.NewTransport(fig.Net))
	sess.Options.MaxTTL = 15
	res, err := sess.MeasurePair(fig.Dest.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 1 || res.Loops[0].Cause != anomaly.CauseZeroTTL {
		t.Fatalf("classic loops = %+v", res.Loops)
	}
	// Zero-TTL loops are a router bug, not a flow artifact: Paris sees
	// them too.
	if len(res.ParisLoops) != 1 {
		t.Fatalf("paris loops = %+v", res.ParisLoops)
	}
}

func TestEnumeratePathsFindsAllBranches(t *testing.T) {
	fig := topo.BuildFigure6(1, netsim.PerFlow)
	sess := NewSession(netsim.NewTransport(fig.Net))
	sess.Options.MaxTTL = 15

	ps, err := sess.EnumeratePaths(fig.Dest.Addr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Distinct() != 3 {
		t.Errorf("distinct paths = %d, want 3", ps.Distinct())
	}
	// Hop 7 (branch heads) and hop 8 (mids) must expose all interfaces.
	heads := ps.InterfacesPerHop[6]
	mids := ps.InterfacesPerHop[7]
	if len(heads) != 3 || len(mids) != 3 {
		t.Errorf("hop7=%v hop8=%v, want 3 each", heads, mids)
	}
	for _, want := range fig.BranchHeads {
		found := false
		for _, got := range heads {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("branch head %v not enumerated (got %v)", want, heads)
		}
	}
	// The convergence point stays single.
	if g := ps.InterfacesPerHop[8]; len(g) != 1 || g[0] != fig.G {
		t.Errorf("hop9 = %v, want only G=%v", g, fig.G)
	}
}

func TestEnumeratePathsSinglePathNetwork(t *testing.T) {
	fig := topo.BuildFigure4(1) // plain chain (plus the zero-TTL quirk)
	sess := NewSession(netsim.NewTransport(fig.Net))
	sess.Options.MaxTTL = 15
	ps, err := sess.EnumeratePaths(fig.Dest.Addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Distinct() != 1 {
		t.Errorf("distinct paths = %d, want 1", ps.Distinct())
	}
}

func TestClassifyBalancerPerFlow(t *testing.T) {
	fig := topo.BuildFigure6(1, netsim.PerFlow)
	sess := NewSession(netsim.NewTransport(fig.Net))
	sess.Options.MaxTTL = 15
	kind, err := sess.ClassifyBalancer(fig.Dest.Addr, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if kind != BalancerPerFlow {
		t.Errorf("kind = %v, want per-flow", kind)
	}
}

func TestClassifyBalancerPerPacket(t *testing.T) {
	fig := topo.BuildFigure6(1, netsim.PerPacket)
	sess := NewSession(netsim.NewTransport(fig.Net))
	sess.Options.MaxTTL = 15
	kind, err := sess.ClassifyBalancer(fig.Dest.Addr, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	if kind != BalancerPerPacket {
		t.Errorf("kind = %v, want per-packet", kind)
	}
}

func TestClassifyBalancerNone(t *testing.T) {
	fig := topo.BuildFigure5(1) // chain + NAT, no balancer
	sess := NewSession(netsim.NewTransport(fig.Net))
	sess.Options.MaxTTL = 15
	kind, err := sess.ClassifyBalancer(fig.Dest.Addr, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if kind != BalancerNone {
		t.Errorf("kind = %v, want none", kind)
	}
}

func TestBalancerKindStrings(t *testing.T) {
	for _, k := range []BalancerKind{BalancerNone, BalancerPerFlow, BalancerPerPacket} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}
