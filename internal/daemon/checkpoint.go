package daemon

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"

	"repro/internal/measure"
)

// CheckpointVersion gates the daemon checkpoint schema.
const CheckpointVersion = 1

// Checkpoint is the daemon's serialized resumable state: the merged
// accumulator statistics (the measure checkpoint format, so the replay-based
// restore is shared with campaign resume), the per-destination cadence and
// quarantine table, the cumulative supervision counters, the event cursor,
// and the opaque transport cursor.
type Checkpoint struct {
	Version int
	// Digest fingerprints the destination list and probing shape the
	// checkpoint is valid for. Cadence knobs (Period, QueueCap, worker
	// count) are deliberately excluded: they are retunable across
	// restarts without invalidating the measured statistics.
	Digest uint64
	// Round is the next round the resumed daemon will run; rounds
	// [0, Round) are fully folded into Acc.
	Round int64
	// Cumulative supervision counters, restored so /stats survives a
	// restart without resetting the robustness history.
	Shed, Restarts, Stalls, Panics int64
	// EventSeq restores the /events cursor so post-restart events never
	// reuse sequence numbers a client has already consumed.
	EventSeq int64
	// Acc is the folded statistics, in the measure checkpoint format.
	Acc measure.AccState
	// Dests is the scheduler table, indexed like Config.Dests.
	Dests []DestState
	// Transport is the opaque payload of Config.TransportState.
	Transport json.RawMessage `json:",omitempty"`
}

// DestState is one destination's serialized scheduler state.
type DestState struct {
	NextDue            int64
	Seen               bool   `json:",omitempty"`
	ParisFP, ClassicFP uint64 `json:",omitempty"`
	ConsecFails        int    `json:",omitempty"`
	Quarantined        bool   `json:",omitempty"`
	HintParis          int    `json:",omitempty"`
	HintClassic        int    `json:",omitempty"`
	Pairs              int64  `json:",omitempty"`
	ShedStreak         int    `json:",omitempty"`
}

// configDigest hashes the daemon shape a checkpoint is only valid for: the
// destination list and the probing configuration that produced the folded
// statistics.
func configDigest(dests []netip.Addr, probe measure.ProbeConfig) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(x uint64) {
		h = (h ^ x) * prime
	}
	mix(uint64(len(dests)))
	for _, d := range dests {
		a := d.As4()
		mix(uint64(a[0])<<24 | uint64(a[1])<<16 | uint64(a[2])<<8 | uint64(a[3]))
	}
	mix(uint64(probe.MinTTL))
	mix(uint64(probe.MaxTTL))
	mix(uint64(probe.MaxConsecutiveStars))
	mix(uint64(probe.PortSeed))
	flags := uint64(0)
	if probe.Batch {
		flags |= 1
	}
	mix(flags)
	mix(uint64(probe.BatchWindow))
	return h
}

// checkpointLocked snapshots the daemon between rounds. Caller holds d.mu
// with no jobs in flight (Tick checkpoints after wg.Wait), so the
// accumulator and the scheduler table are quiescent.
func (d *Daemon) checkpointLocked() *Checkpoint {
	ck := &Checkpoint{
		Version:  CheckpointVersion,
		Digest:   configDigest(d.cfg.Dests, d.cfg.Probe),
		Round:    d.round,
		Shed:     d.shed,
		Restarts: d.restarts,
		Stalls:   d.stalls,
		Panics:   d.panics,
		EventSeq: d.events.seq(),
		Acc:      d.acc.State(),
		Dests:    make([]DestState, len(d.sched.dests)),
	}
	for i, ds := range d.sched.dests {
		ck.Dests[i] = DestState{
			NextDue:     ds.nextDue,
			Seen:        ds.seen,
			ParisFP:     ds.parisFP,
			ClassicFP:   ds.classicFP,
			ConsecFails: ds.consecFails,
			Quarantined: ds.quarantined,
			HintParis:   ds.hints.Paris,
			HintClassic: ds.hints.Classic,
			Pairs:       ds.pairs,
			ShedStreak:  ds.shedStreak,
		}
	}
	if d.cfg.TransportState != nil {
		ck.Transport = d.cfg.TransportState()
	}
	return ck
}

// Save writes the checkpoint atomically (temp file + rename on the shared
// measure.AtomicWriteJSON path), so a kill mid-write leaves the previous
// checkpoint intact.
func (ck *Checkpoint) Save(path string) error {
	return measure.AtomicWriteJSON(path, ck)
}

// LoadCheckpoint reads and decodes a daemon checkpoint. A missing file is
// (nil, nil): the caller starts fresh.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("daemon: read checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("daemon: decode checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("daemon: checkpoint %s has version %d, want %d", path, ck.Version, CheckpointVersion)
	}
	return &ck, nil
}

// recover restores the daemon from the checkpoint at path, if any. A
// checkpoint that fails to decode or restore is moved aside to path+
// ".corrupt" and the daemon starts fresh — an always-on service should come
// back measuring, not refuse to boot over a torn file the atomic writer
// already protects against. A checkpoint for a different destination list
// or probing shape is a hard error: silently discarding real prior
// statistics over a config edit is worse than making the operator pass
// -fresh.
func (d *Daemon) recover(path string) error {
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return d.quarantineCorrupt(path, err)
	}
	if ck == nil {
		return nil
	}
	if dg := configDigest(d.cfg.Dests, d.cfg.Probe); ck.Digest != dg {
		return fmt.Errorf("daemon: checkpoint digest %#x does not match configuration %#x (pass FreshStart to discard)", ck.Digest, dg)
	}
	if len(ck.Dests) != len(d.cfg.Dests) {
		return fmt.Errorf("daemon: checkpoint has %d destinations, configuration %d", len(ck.Dests), len(d.cfg.Dests))
	}
	acc, err := measure.RestoreAccumulator(ck.Acc)
	if err != nil {
		return d.quarantineCorrupt(path, err)
	}
	d.acc = acc
	d.round = ck.Round
	d.shed = ck.Shed
	d.restarts = ck.Restarts
	d.stalls = ck.Stalls
	d.panics = ck.Panics
	d.events.setSeq(ck.EventSeq)
	for i, st := range ck.Dests {
		ds := d.sched.dests[i]
		ds.nextDue = st.NextDue
		ds.seen = st.Seen
		ds.parisFP = st.ParisFP
		ds.classicFP = st.ClassicFP
		ds.consecFails = st.ConsecFails
		ds.quarantined = st.Quarantined
		ds.hints = measure.PathHints{Paris: st.HintParis, Classic: st.HintClassic}
		ds.pairs = st.Pairs
		ds.shedStreak = st.ShedStreak
	}
	if d.cfg.RestoreTransport != nil && len(ck.Transport) > 0 {
		if err := d.cfg.RestoreTransport(ck.Transport); err != nil {
			return fmt.Errorf("daemon: restore transport state: %w", err)
		}
	}
	d.recovered = true
	d.recoveredAt = ck.Round
	return nil
}

// quarantineCorrupt moves a bad checkpoint aside and reports a fresh start.
func (d *Daemon) quarantineCorrupt(path string, cause error) error {
	if err := os.Rename(path, path+".corrupt"); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("daemon: quarantine corrupt checkpoint (%v): %w", cause, err)
	}
	d.events.publish(Event{Type: EventRecovered,
		Detail: fmt.Sprintf("checkpoint unusable (%v); moved to %s.corrupt, starting fresh", cause, path)})
	return nil
}
