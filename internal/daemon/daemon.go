package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/measure"
	"repro/internal/tracer"
)

// Config shapes the daemon. Dests and Transport are required.
type Config struct {
	// Dests is the monitored destination list (duplicate-free).
	Dests []netip.Addr
	// Transport answers probes; it must be safe for concurrent use. Wrap
	// it in tracer.NewPacedTransport to cap the aggregate probe rate.
	Transport tracer.Transport
	// Probe is the probing shape every pair uses (measure.ProbeConfig
	// defaults apply).
	Probe measure.ProbeConfig

	// Period is the re-probe cadence in scheduler rounds; a destination
	// whose route changed is re-armed for the next round instead. Zero
	// selects 5.
	Period int
	// Interval is Run's wall-clock pause between rounds. Zero selects 1s.
	// Tests bypass it entirely by calling Tick directly.
	Interval time.Duration
	// Workers sizes the supervised pool. Zero selects 4.
	Workers int
	// QueueCap bounds the jobs admitted per round; due work beyond it is
	// shed by a seeded random-early lottery with aging (see shedScore) and
	// re-armed for the next round, so persistent overload rotates the
	// victims instead of starving a fixed set. Zero selects 8*Workers.
	QueueCap int
	// ShedSeed seeds the shedding lottery; rounds are deterministic per
	// (ShedSeed, round). Zero is a valid seed.
	ShedSeed int64

	// MaxWorkerRestarts caps how many times one worker slot is restarted
	// after panics; beyond it the slot stays dead. Zero selects 8.
	MaxWorkerRestarts int
	// RestartBackoff is the base delay before restarting a panicked
	// worker: restart k waits RestartBackoff << (k-1), capped by
	// RestartBackoffMax. Zero selects 100ms.
	RestartBackoff time.Duration
	// RestartBackoffMax caps the restart backoff. Zero selects 5s.
	RestartBackoffMax time.Duration
	// QuarantineAfter is the per-destination error budget (campaign
	// semantics). Zero selects 3.
	QuarantineAfter int
	// StallTimeout is the watchdog deadline per trace; a job that has
	// neither completed nor panicked by then is abandoned and its worker
	// replaced. Zero selects 30s; negative disables the watchdog.
	StallTimeout time.Duration
	// Watchdog overrides the stall deadline source: called once per
	// dispatched job, its channel firing declares the job stalled. Tests
	// inject deterministic watchdogs here (a nil channel never fires);
	// nil Watchdog uses a StallTimeout timer.
	Watchdog func(dest netip.Addr) <-chan time.Time

	// RoundStart, when set, runs at the top of every round with the round
	// number — the virtual-clock dynamics hook (topo.Scenario.RoundStart).
	// Recovery replays it for completed rounds, like campaign resume.
	RoundStart func(round int)

	// CheckpointPath enables continuous checkpointing and startup
	// auto-recovery. CheckpointEvery is the cadence in completed rounds
	// (zero selects 1).
	CheckpointPath  string
	CheckpointEvery int
	// TransportState and RestoreTransport persist and restore the opaque
	// transport cursor (e.g. netsim probe counters) across restarts.
	TransportState   func() json.RawMessage
	RestoreTransport func(json.RawMessage) error
	// FreshStart ignores an existing checkpoint instead of recovering.
	FreshStart bool

	// MuxHealth, when the transport probes through a shared live socket
	// mux, supplies its health snapshot; the daemon stamps it into every
	// served /stats (Stats.Robust.Mux). Nil leaves the field absent.
	MuxHealth func() tracer.MuxHealth

	// EventBuffer sizes the /events replay ring. Zero selects 256.
	EventBuffer int
	// Sleep replaces time.Sleep for restart backoff; tests inject a no-op.
	Sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = 5
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8 * c.Workers
	}
	if c.MaxWorkerRestarts <= 0 {
		c.MaxWorkerRestarts = 8
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 100 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 5 * time.Second
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	return c
}

// Daemon is the always-on measurement service. Create with New, drive with
// Run (production) or Tick (tests and embedders), end with Stop.
type Daemon struct {
	cfg Config
	tp  tracer.Transport

	// mu guards everything the scheduler, the fold path, and the HTTP
	// snapshot share: the accumulator, the cadence table, the supervision
	// counters, and the round cursor. /stats snapshots under it, so a
	// served Stats is always a fold boundary — never a torn read.
	mu           sync.Mutex
	acc          *measure.Accumulator
	sched        *scheduler
	round        int64
	shed         int64
	restarts     int64
	stalls       int64
	panics       int64
	deadWorkers  int
	workersAlive int
	poolDead     bool
	lastCkErr    error
	recovered    bool
	recoveredAt  int64

	events *eventHub
	jobs   chan *job

	ready    atomic.Bool
	stopped  atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
}

// New validates the configuration, auto-recovers from CheckpointPath when a
// checkpoint exists (unless FreshStart), and starts the worker pool.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Dests) == 0 {
		return nil, fmt.Errorf("daemon: empty destination list")
	}
	seen := make(map[netip.Addr]bool, len(cfg.Dests))
	for _, d := range cfg.Dests {
		if seen[d] {
			return nil, fmt.Errorf("daemon: duplicate destination %v", d)
		}
		seen[d] = true
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("daemon: nil transport")
	}
	d := &Daemon{
		cfg:    cfg,
		tp:     cfg.Transport,
		acc:    measure.NewAccumulator(),
		sched:  newScheduler(cfg.Dests, int64(cfg.Period)),
		events: newEventHub(cfg.EventBuffer),
		jobs:   make(chan *job, cfg.QueueCap),
		stop:   make(chan struct{}),
	}
	if cfg.CheckpointPath != "" && !cfg.FreshStart {
		if err := d.recover(cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	if d.cfg.RoundStart != nil {
		// Replay the completed rounds' dynamics draws so the resumed
		// rounds see the same topology evolution the uninterrupted run
		// would have — the same replay contract as campaign resume.
		for r := int64(0); r < d.round; r++ {
			d.cfg.RoundStart(int(r))
		}
	}
	d.workersAlive = cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		go d.worker(w, 0)
	}
	if d.recovered {
		d.events.publish(Event{Round: d.round, Type: EventRecovered,
			Detail: fmt.Sprintf("resumed at round %d", d.round)})
	}
	return d, nil
}

// Round returns the current scheduler round (completed rounds).
func (d *Daemon) Round() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.round
}

// Recovered reports whether startup resumed from a checkpoint, and from
// which round.
func (d *Daemon) Recovered() (bool, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovered, d.recoveredAt
}

// Tick runs exactly one scheduler round: due work is collected (oldest
// first), quarantined destinations fold as Skipped, overflow beyond
// QueueCap is shed, and the remainder is dispatched to the worker pool.
// Tick returns when every dispatched job has completed, panicked, or been
// stalled out by the watchdog, with the round's checkpoint (if due)
// written. Tick must not be called concurrently with itself or Stop — Run
// serializes it; tests call it from one goroutine.
func (d *Daemon) Tick() {
	d.mu.Lock()
	round := d.round
	d.mu.Unlock()
	if d.cfg.RoundStart != nil {
		d.cfg.RoundStart(int(round))
	}

	d.mu.Lock()
	due := d.sched.due(round)
	runnable := due[:0]
	var quarantined []*destSched
	for _, ds := range due {
		if ds.quarantined {
			quarantined = append(quarantined, ds)
			continue
		}
		runnable = append(runnable, ds)
	}
	for _, ds := range quarantined {
		// Quarantined destinations keep their cadence as Skipped folds —
		// the same accounting a campaign round produces — without
		// consuming queue capacity.
		p := measure.Pair{Dest: ds.dest, Round: int(round), Outcome: measure.OutcomeSkipped}
		d.acc.Fold(&p)
		ds.nextDue = round + d.sched.period
	}
	var shedList []*destSched
	if len(runnable) > d.cfg.QueueCap {
		n := len(runnable) - d.cfg.QueueCap
		shedList = shedVictims(runnable, n, d.cfg.ShedSeed, round)
		victim := make(map[*destSched]bool, n)
		for _, ds := range shedList {
			victim[ds] = true
			ds.shedStreak++
			ds.nextDue = round + 1
		}
		kept := runnable[:0]
		for _, ds := range runnable {
			if !victim[ds] {
				kept = append(kept, ds)
			}
		}
		runnable = kept
		d.shed += int64(n)
	}
	poolDead := d.poolDead
	jobs := make([]*job, 0, len(runnable))
	for _, ds := range runnable {
		if poolDead {
			// Degraded terminal state: no worker can run anything, so
			// the job fails immediately instead of hanging the round.
			d.failLocked(ds, round, "worker pool dead")
			continue
		}
		ds.inFlight = true
		ds.shedStreak = 0
		jobs = append(jobs, &job{ds: ds, dest: ds.dest, round: round, hints: ds.hints, done: make(chan struct{})})
	}
	d.mu.Unlock()

	for _, ds := range shedList {
		d.events.publish(Event{Round: round, Type: EventShed, Dest: ds.dest,
			Detail: "queue over capacity; re-armed for next round"})
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		d.enqueue(j)
		go d.supervise(j, &wg)
	}
	wg.Wait()

	d.mu.Lock()
	d.round = round + 1
	ckDue := d.cfg.CheckpointPath != "" && int(d.round)%d.cfg.CheckpointEvery == 0
	var ck *Checkpoint
	if ckDue {
		ck = d.checkpointLocked()
	}
	d.mu.Unlock()
	if ck != nil {
		err := ck.Save(d.cfg.CheckpointPath)
		d.mu.Lock()
		d.lastCkErr = err
		d.mu.Unlock()
		if err != nil {
			d.events.publish(Event{Round: round, Type: EventCheckpoint,
				Detail: fmt.Sprintf("write failed: %v", err)})
		}
	}
	d.ready.Store(true)
}

// enqueue hands a job to the pool. The queue has QueueCap capacity and
// admission already bounded this round's jobs, so the send never blocks;
// the check-and-send runs under mu so a pool dying concurrently can drain
// deterministically (its drain and this send serialize).
func (d *Daemon) enqueue(j *job) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.poolDead {
		d.resolveFailed(j, fmt.Errorf("daemon: worker pool dead"))
		return
	}
	select {
	case d.jobs <- j:
	default:
		// Unreachable by construction (admission <= QueueCap and the
		// queue drains every round); resolve rather than deadlock.
		d.resolveFailed(j, fmt.Errorf("daemon: job queue full"))
	}
}

// failLocked folds an immediate failure for a never-dispatched destination.
// Caller holds mu.
func (d *Daemon) failLocked(ds *destSched, round int64, why string) {
	p := measure.Pair{Dest: ds.dest, Round: int(round), Outcome: measure.OutcomeFailed}
	d.acc.Fold(&p)
	d.chargeLocked(ds, round)
	_ = why
}

// chargeLocked charges one failed pair to the destination's error budget
// and re-arms its cadence. Caller holds mu.
func (d *Daemon) chargeLocked(ds *destSched, round int64) {
	ds.consecFails++
	if !ds.quarantined && ds.consecFails >= d.cfg.QuarantineAfter {
		ds.quarantined = true
		// eventHub has its own mutex and never takes d.mu, so publishing
		// under d.mu is deadlock-free and keeps event order deterministic.
		d.events.publish(Event{Round: round, Type: EventQuarantine, Dest: ds.dest,
			Detail: fmt.Sprintf("%d consecutive failures", ds.consecFails)})
	}
	ds.nextDue = round + d.sched.period
}

// Run drives Tick on the configured wall-clock Interval until ctx is done,
// then stops the daemon (final checkpoint included).
func (d *Daemon) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return d.Stop()
		}
		d.Tick()
		select {
		case <-ctx.Done():
			return d.Stop()
		case <-time.After(d.cfg.Interval):
		}
	}
}

// Stop ends the daemon: workers drain at their next queue read, event
// subscribers are closed, and a final checkpoint is written when
// configured. Wedged (stalled) worker goroutines exit on their own when
// their transport unblocks. Safe to call more than once; must not race
// Tick (Run serializes them).
func (d *Daemon) Stop() error {
	var err error
	d.stopOnce.Do(func() {
		d.stopped.Store(true)
		d.ready.Store(false)
		close(d.stop)
		if d.cfg.CheckpointPath != "" {
			d.mu.Lock()
			ck := d.checkpointLocked()
			d.mu.Unlock()
			err = ck.Save(d.cfg.CheckpointPath)
		}
		d.events.closeAll()
	})
	return err
}

// Snapshot returns a consistent mid-flight statistics snapshot: the same
// measure.Stats a streaming campaign would produce over the pairs folded so
// far, with the daemon's supervision counters stamped into Stats.Robust.
// The merge runs under the daemon mutex, so the snapshot always lands on a
// fold boundary.
func (d *Daemon) Snapshot() *measure.Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

func (d *Daemon) snapshotLocked() *measure.Stats {
	s := measure.Merge(int(d.round), len(d.cfg.Dests), d.acc)
	s.Robust.Shed = int(d.shed)
	s.Robust.WorkerRestarts = int(d.restarts)
	s.Robust.WatchdogStalls = int(d.stalls)
	s.Robust.DeadWorkers = d.deadWorkers
	if d.cfg.MuxHealth != nil {
		h := d.cfg.MuxHealth()
		s.Robust.Mux = &h
	}
	return s
}

// Health summarizes liveness for /healthz.
type Health struct {
	// Status is "ok", "degraded" (dead worker slots or a failing
	// checkpoint path, but still measuring), or "down" (no alive workers
	// or stopped).
	Status string
	Round  int64
	// WorkersAlive and WorkersDead describe the supervised pool.
	WorkersAlive, WorkersDead int
	// CheckpointError carries the last checkpoint write failure, if any.
	CheckpointError string `json:",omitempty"`
}

// Health returns the current liveness summary.
func (d *Daemon) Health() Health {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := Health{Round: d.round, WorkersAlive: d.workersAlive, WorkersDead: d.deadWorkers}
	if d.lastCkErr != nil {
		h.CheckpointError = d.lastCkErr.Error()
	}
	switch {
	case d.stopped.Load() || d.poolDead || d.workersAlive == 0:
		h.Status = "down"
	case d.deadWorkers > 0 || d.lastCkErr != nil:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}

// Ready reports whether the daemon has completed at least one round and is
// not stopping — the /readyz condition.
func (d *Daemon) Ready() bool { return d.ready.Load() && !d.stopped.Load() }

// sleep waits through the configured seam (tests) or for real.
func (d *Daemon) sleep(t time.Duration) {
	if d.cfg.Sleep != nil {
		d.cfg.Sleep(t)
		return
	}
	time.Sleep(t)
}
