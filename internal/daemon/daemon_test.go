package daemon

import (
	"encoding/json"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// The daemon tests run entirely on Tick — no wall-clock ticker, no sleeps.
// Topologies are schedule-free (no mid-trace flips, no per-packet
// balancing), so pair results are a pure function of the round and the
// destination, and every counter asserted below is pinned exactly.

// neverStall is the test watchdog: a nil channel never fires.
func neverStall(netip.Addr) <-chan time.Time { return nil }

// noSleep makes restart backoff instantaneous.
func noSleep(time.Duration) {}

// freeTopo generates a schedule-free topology: statistics depend only on
// (seed, round, destination), never on worker interleaving.
func freeTopo(t *testing.T, dests int, seed int64, churn float64) *topo.Scenario {
	t.Helper()
	gc := topo.DefaultGenConfig()
	gc.Seed = seed
	gc.Destinations = dests
	gc.FlipPerProbe = 0
	gc.PPerPacket = 0
	gc.PPerPacketUnequal = 0
	if churn > 0 {
		gc.Delay = 1
		gc.Churn = churn
	}
	return topo.Generate(gc)
}

// testConfig is the baseline deterministic daemon configuration over sc.
func testConfig(sc *topo.Scenario) Config {
	return Config{
		Dests:      sc.Dests,
		Transport:  sc.Transport(),
		RoundStart: sc.RoundStart,
		Probe:      measure.ProbeConfig{PortSeed: 42, Batch: true},
		Period:     3,
		Workers:    3,
		Watchdog:   neverStall,
		Sleep:      noSleep,
	}
}

func mustNew(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func tick(d *Daemon, n int) {
	for i := 0; i < n; i++ {
		d.Tick()
	}
}

func TestDaemonCadence(t *testing.T) {
	sc := freeTopo(t, 12, 7, 0)
	d := mustNew(t, testConfig(sc))
	defer d.Stop()

	if d.Ready() {
		t.Fatal("ready before the first round")
	}
	tick(d, 7) // period 3: rounds 0, 3, 6 probe all 12 destinations
	if !d.Ready() {
		t.Fatal("not ready after 7 rounds")
	}
	s := d.Snapshot()
	if s.Robust.Probed != 36 || s.Routes != 36 {
		t.Fatalf("probed %d routes %d, want 36", s.Robust.Probed, s.Routes)
	}
	if s.Robust.Failed != 0 || s.Robust.Skipped != 0 || s.Robust.Shed != 0 {
		t.Fatalf("unexpected degraded counters: %+v", s.Robust)
	}
	if s.Rounds != 7 || s.Dests != 12 {
		t.Fatalf("rounds %d dests %d, want 7/12", s.Rounds, s.Dests)
	}
	if h := d.Health(); h.Status != "ok" || h.WorkersAlive != 3 {
		t.Fatalf("health %+v, want ok with 3 workers", h)
	}
}

func TestDaemonStatsMatchCampaign(t *testing.T) {
	// Period 1 makes the daemon probe every destination every round —
	// exactly a campaign. The folded statistics must agree with the
	// campaign over an identical fresh topology.
	const rounds = 5
	sc := freeTopo(t, 16, 11, 0)
	cfg := testConfig(sc)
	cfg.Period = 1
	d := mustNew(t, cfg)
	defer d.Stop()
	tick(d, rounds)
	got := d.Snapshot()

	sc2 := freeTopo(t, 16, 11, 0)
	camp, err := measure.NewCampaign(sc2.Transport(), measure.Config{
		Dests: sc2.Dests, Rounds: rounds, Workers: 3,
		RoundStart: sc2.RoundStart, PortSeed: 42, Batch: true, Stream: true,
	})
	if err != nil {
		t.Fatalf("NewCampaign: %v", err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	want := res.Stats

	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("daemon stats diverge from campaign:\ndaemon:   %s\ncampaign: %s", gj, wj)
	}
}

func TestDaemonShedRearm(t *testing.T) {
	sc := freeTopo(t, 10, 3, 0)
	cfg := testConfig(sc)
	cfg.QueueCap = 4
	d := mustNew(t, cfg)
	defer d.Stop()

	// Round 0: 10 due, 6 shed (lottery victims), 4 probed.
	// Round 1: the 6 re-armed are due, 2 shed, 4 probed.
	// Round 2: the 2 re-armed are due, probed. Steady state after.
	tick(d, 3)
	s := d.Snapshot()
	if s.Robust.Shed != 8 {
		t.Fatalf("shed %d after warm-up, want 8", s.Robust.Shed)
	}
	if s.Robust.Probed != 10 {
		t.Fatalf("probed %d after warm-up, want 10", s.Robust.Probed)
	}
	tick(d, 9)
	if s := d.Snapshot(); s.Robust.Shed != 8 {
		t.Fatalf("shed %d in steady state, want unchanged 8", s.Robust.Shed)
	}

	// Shed events were published, one per shed job.
	replay, _, cancel := d.events.subscribe(0)
	defer cancel()
	shedEvents := 0
	for _, e := range replay {
		if e.Type == EventShed {
			shedEvents++
		}
	}
	if shedEvents != 8 {
		t.Fatalf("%d shed events, want 8", shedEvents)
	}
}

// shedPairs runs one daemon under persistent overload and returns each
// destination's completed pair count.
func shedPairs(t *testing.T, seed int64, rounds int) []int64 {
	t.Helper()
	sc := freeTopo(t, 10, 3, 0)
	cfg := testConfig(sc)
	cfg.Period = 1 // all 10 due every round
	cfg.QueueCap = 2
	cfg.ShedSeed = seed
	d := mustNew(t, cfg)
	defer d.Stop()
	tick(d, rounds)
	pairs := make([]int64, len(sc.Dests))
	d.mu.Lock()
	for i, ds := range d.sched.dests {
		pairs[i] = ds.pairs
	}
	d.mu.Unlock()
	return pairs
}

// TestDaemonShedFairness holds the daemon under permanent overload —
// every destination due every round, a queue admitting a fifth of them —
// and requires the shedding lottery's aging to keep every destination
// measuring. The old shed-head policy starved whichever destinations
// sorted first, forever; with random-early shed plus aging no destination
// may go unmeasured, and the schedule is reproducible per seed.
func TestDaemonShedFairness(t *testing.T) {
	const rounds = 40
	pairs := shedPairs(t, 99, rounds)
	for i, p := range pairs {
		if p == 0 {
			t.Errorf("destination %d never measured a pair across %d overloaded rounds", i, rounds)
		}
	}
	// Deterministic per (ShedSeed, round): an identical daemon over an
	// identical topology repeats the exact dispatch schedule.
	again := shedPairs(t, 99, rounds)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatalf("destination %d: %d pairs vs %d on identical seed — lottery not deterministic",
				i, pairs[i], again[i])
		}
	}
}

func TestDaemonPanicSupervision(t *testing.T) {
	sc := freeTopo(t, 6, 5, 0)
	cfg := testConfig(sc)
	// Every destination's first exchange panics; retried rounds are clean.
	ft := netsim.WrapFaults(sc.Transport(), netsim.FaultPlan{
		Seed: 9, PanicEvery: 1, PanicStart: 0, PanicLen: 1,
	})
	cfg.Transport = ft
	cfg.Workers = 2
	cfg.MaxWorkerRestarts = 16
	d := mustNew(t, cfg)
	defer d.Stop()

	d.Tick()
	s := d.Snapshot()
	if s.Robust.Failed != 6 {
		t.Fatalf("failed %d in the panic round, want 6", s.Robust.Failed)
	}
	if s.Robust.WorkerRestarts != 6 {
		t.Fatalf("restarts %d, want 6 (one per injected panic)", s.Robust.WorkerRestarts)
	}
	if ft.InjectedPanics() != 6 {
		t.Fatalf("injected panics %d, want 6", ft.InjectedPanics())
	}
	if h := d.Health(); h.Status != "ok" || h.WorkersAlive != 2 || h.WorkersDead != 0 {
		t.Fatalf("health %+v, want ok with 2 alive", h)
	}

	// The failed destinations retry at their next due round with clean
	// ordinals and succeed.
	tick(d, 3)
	s = d.Snapshot()
	if s.Robust.Probed != 6 || s.Robust.Failed != 6 {
		t.Fatalf("probed %d failed %d after retry round, want 6/6", s.Robust.Probed, s.Robust.Failed)
	}
}

func TestDaemonPoolDeath(t *testing.T) {
	sc := freeTopo(t, 4, 13, 0)
	cfg := testConfig(sc)
	// Every exchange toward every destination panics, forever; one worker
	// slot with one restart. The slot dies on its second panic, the pool
	// is dead, and every subsequent round fails inline instead of hanging.
	cfg.Transport = netsim.WrapFaults(sc.Transport(), netsim.FaultPlan{
		Seed: 1, PanicEvery: 1, PanicStart: 0, PanicLen: 1 << 20,
	})
	cfg.Workers = 1
	cfg.MaxWorkerRestarts = 1
	d := mustNew(t, cfg)
	defer d.Stop()

	d.Tick() // must terminate: drained jobs fail, they do not hang
	s := d.Snapshot()
	if s.Robust.Failed != 4 {
		t.Fatalf("failed %d, want all 4", s.Robust.Failed)
	}
	if s.Robust.DeadWorkers != 1 || s.Robust.WorkerRestarts != 1 {
		t.Fatalf("dead %d restarts %d, want 1/1", s.Robust.DeadWorkers, s.Robust.WorkerRestarts)
	}
	if h := d.Health(); h.Status != "down" || h.WorkersAlive != 0 {
		t.Fatalf("health %+v, want down with 0 alive", h)
	}
	tick(d, 3) // inline failures keep the loop alive in degraded mode
	if s := d.Snapshot(); s.Robust.Failed != 8 {
		// Failed dests re-arm at round+period (3), so round 3 retries all 4.
		t.Fatalf("failed %d after degraded rounds, want 8", s.Robust.Failed)
	}
}

func TestDaemonQuarantine(t *testing.T) {
	sc := freeTopo(t, 8, 17, 0)
	cfg := testConfig(sc)
	// Roughly every 2nd destination is blackholed from its first exchange.
	plan := netsim.FaultPlan{Seed: 23, BlackholeEvery: 2, BlackholeStart: 0}
	cfg.Transport = netsim.WrapFaults(sc.Transport(), plan)
	cfg.Period = 1
	cfg.QuarantineAfter = 2
	d := mustNew(t, cfg)
	defer d.Stop()

	blackholed := 0
	for _, dst := range sc.Dests {
		if plan.ScheduleFor(dst).Blackhole {
			blackholed++
		}
	}
	if blackholed == 0 || blackholed == len(sc.Dests) {
		t.Fatalf("degenerate plan: %d/%d blackholed", blackholed, len(sc.Dests))
	}

	// Rounds 0 and 1 fail the blackholed dests (quarantined after the 2nd);
	// every round after folds them as Skipped.
	tick(d, 5)
	s := d.Snapshot()
	healthy := len(sc.Dests) - blackholed
	if s.Robust.Probed != 5*healthy {
		t.Fatalf("probed %d, want %d", s.Robust.Probed, 5*healthy)
	}
	if s.Robust.Failed != 2*blackholed {
		t.Fatalf("failed %d, want %d", s.Robust.Failed, 2*blackholed)
	}
	if s.Robust.Skipped != 3*blackholed {
		t.Fatalf("skipped %d, want %d", s.Robust.Skipped, 3*blackholed)
	}
	if s.Robust.QuarantinedDests != blackholed {
		t.Fatalf("quarantined dests %d, want %d", s.Robust.QuarantinedDests, blackholed)
	}

	replay, _, cancel := d.events.subscribe(0)
	defer cancel()
	quarEvents := 0
	for _, e := range replay {
		if e.Type == EventQuarantine {
			quarEvents++
		}
	}
	if quarEvents != blackholed {
		t.Fatalf("%d quarantine events, want %d", quarEvents, blackholed)
	}
}

func TestDaemonWatchdogStall(t *testing.T) {
	sc := freeTopo(t, 6, 19, 0)
	plan := netsim.FaultPlan{Seed: 31, StallEvery: 3, StallStart: 0, StallLen: 1}
	ft := netsim.WrapFaults(sc.Transport(), plan)

	stalled := map[netip.Addr]bool{}
	for _, dst := range sc.Dests {
		if plan.ScheduleFor(dst).Stall {
			stalled[dst] = true
		}
	}
	if len(stalled) == 0 {
		t.Fatal("degenerate plan: no stalled destinations")
	}

	// The watchdog seam: stalled destinations get a controllable channel,
	// everyone else never stalls out. The test fires the watchdog only
	// after the transport reports the worker parked, so the discard path
	// (not the before-claim path) is exercised deterministically.
	wd := make(chan time.Time)
	cfg := testConfig(sc)
	cfg.Transport = ft
	cfg.Workers = len(stalled) + 1 // wedged workers never block the rest
	cfg.Watchdog = func(dst netip.Addr) <-chan time.Time {
		if stalled[dst] {
			return wd
		}
		return nil
	}
	d := mustNew(t, cfg)
	defer d.Stop()

	tickDone := make(chan struct{})
	go func() {
		d.Tick()
		close(tickDone)
	}()
	// Wait (without sleeping) until every stalled destination's worker is
	// parked in the transport, then fire their watchdogs.
	for ft.InjectedStalls() < len(stalled) {
		runtime.Gosched()
	}
	for range stalled {
		wd <- time.Time{}
	}
	<-tickDone

	s := d.Snapshot()
	if s.Robust.WatchdogStalls != len(stalled) {
		t.Fatalf("stalls %d, want %d", s.Robust.WatchdogStalls, len(stalled))
	}
	if s.Robust.Failed != len(stalled) {
		t.Fatalf("failed %d, want %d", s.Robust.Failed, len(stalled))
	}
	if s.Robust.Probed != 6-len(stalled) {
		t.Fatalf("probed %d, want %d", s.Robust.Probed, 6-len(stalled))
	}
	if h := d.Health(); h.Status != "ok" {
		t.Fatalf("health %+v, want ok (replacements keep the pool whole)", h)
	}

	// Unwedge the parked goroutines; their late results are discarded and
	// the stalled destinations succeed on their retry round (their stall
	// window is a single exchange, already consumed by the wedged probe).
	ft.ReleaseStalls()
	tick(d, 3)
	if s := d.Snapshot(); s.Robust.Probed != 6+6-len(stalled) {
		// Round 3 re-probes everything: the healthy dests hit their
		// period, the stalled ones their failure re-arm.
		t.Fatalf("probed %d after release, want %d", s.Robust.Probed, 12-len(stalled))
	}
}

func TestDaemonCheckpointRecovery(t *testing.T) {
	const half = 4
	ckPath := filepath.Join(t.TempDir(), "daemon.ck.json")
	plan := netsim.FaultPlan{Seed: 23, BlackholeEvery: 3, BlackholeStart: 0}

	build := func(path string) (Config, *topo.Scenario) {
		sc := freeTopo(t, 10, 29, 0)
		cfg := testConfig(sc)
		cfg.Transport = netsim.WrapFaults(sc.Transport(), plan)
		cfg.Period = 1
		cfg.QuarantineAfter = 2
		cfg.CheckpointPath = path
		net := sc.Nets[0]
		cfg.TransportState = func() json.RawMessage {
			b, _ := json.Marshal(struct{ Count int }{net.ProbeCount()})
			return b
		}
		cfg.RestoreTransport = func(raw json.RawMessage) error {
			var st struct{ Count int }
			if err := json.Unmarshal(raw, &st); err != nil {
				return err
			}
			net.SetProbeCount(st.Count)
			return nil
		}
		return cfg, sc
	}

	// First life: run half the rounds, then vanish without Stop — the
	// per-round checkpoint is all the second life gets, like a kill -9.
	cfgA, _ := build(ckPath)
	a := mustNew(t, cfgA)
	tick(a, half)
	atKill, _ := json.Marshal(a.Snapshot())
	// No a.Stop(): a's workers park on its stop channel and are collected
	// when the test binary exits, exactly like a killed process's threads.

	// Second life: auto-recover and finish.
	cfgB, _ := build(ckPath)
	b := mustNew(t, cfgB)
	defer b.Stop()
	if ok, at := b.Recovered(); !ok || at != half {
		t.Fatalf("recovered=%v at=%d, want true at %d", ok, at, half)
	}
	if b.Round() != half {
		t.Fatalf("resumed round %d, want %d", b.Round(), half)
	}
	if restored, _ := json.Marshal(b.Snapshot()); string(restored) != string(atKill) {
		t.Fatalf("restored stats diverge from the checkpoint:\nkill:     %s\nrestored: %s", atKill, restored)
	}
	tick(b, half)
	resumed, _ := json.Marshal(b.Snapshot())

	// Reference: the same daemon uninterrupted.
	cfgC, _ := build(filepath.Join(t.TempDir(), "ref.ck.json"))
	c := mustNew(t, cfgC)
	defer c.Stop()
	tick(c, 2*half)
	want, _ := json.Marshal(c.Snapshot())

	if string(resumed) != string(want) {
		t.Fatalf("kill-and-restart diverges from the uninterrupted run:\nresumed: %s\nwant:    %s", resumed, want)
	}
}

func TestDaemonCorruptCheckpointStartsFresh(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "daemon.ck.json")
	if err := os.WriteFile(ckPath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := freeTopo(t, 4, 3, 0)
	cfg := testConfig(sc)
	cfg.CheckpointPath = ckPath
	d := mustNew(t, cfg)
	defer d.Stop()
	if ok, _ := d.Recovered(); ok {
		t.Fatal("recovered from a corrupt checkpoint")
	}
	if _, err := os.Stat(ckPath + ".corrupt"); err != nil {
		t.Fatalf("corrupt checkpoint not moved aside: %v", err)
	}
	d.Tick()
	if s := d.Snapshot(); s.Robust.Probed != 4 {
		t.Fatalf("fresh start probed %d, want 4", s.Robust.Probed)
	}
}

func TestDaemonCheckpointDigestMismatch(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "daemon.ck.json")
	sc := freeTopo(t, 4, 3, 0)
	cfg := testConfig(sc)
	cfg.CheckpointPath = ckPath
	d := mustNew(t, cfg)
	d.Tick()
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	// A different destination list must be refused, not silently merged.
	sc2 := freeTopo(t, 5, 3, 0)
	cfg2 := testConfig(sc2)
	cfg2.CheckpointPath = ckPath
	if _, err := New(cfg2); err == nil {
		t.Fatal("New accepted a checkpoint for a different destination list")
	}

	// FreshStart overrides the refusal.
	cfg2.FreshStart = true
	d2 := mustNew(t, cfg2)
	d2.Stop()
}

func TestDaemonStopWritesFinalCheckpoint(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "daemon.ck.json")
	sc := freeTopo(t, 4, 3, 0)
	cfg := testConfig(sc)
	cfg.CheckpointPath = ckPath
	cfg.CheckpointEvery = 1000 // per-round checkpoints never fire
	d := mustNew(t, cfg)
	tick(d, 2)
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint written before Stop despite CheckpointEvery: %v", err)
	}
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil || ck == nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if ck.Round != 2 {
		t.Fatalf("final checkpoint at round %d, want 2", ck.Round)
	}
}
