// Package daemon turns the one-shot measurement campaign into an always-on
// topology-monitoring service: a supervised scheduler that owns
// per-destination probing cadence, a worker pool that survives panics and
// wedged transports, overload shedding, an HTTP/JSON health/stats/event
// surface, and continuous checkpointing with automatic crash recovery.
//
// # Architecture
//
// The daemon advances in scheduler rounds. Tick runs exactly one round:
//
//	due        := every destination whose nextDue <= round (oldest first)
//	quarantine := folded as Skipped pairs, re-armed, never probed
//	shed       := if len(due) > QueueCap, the oldest-due overflow is shed
//	              (re-armed for the next round) — explicit shed-oldest
//	dispatch   := remaining jobs go to the worker pool; Tick waits until
//	              every job completes, sheds, or is stalled out
//
// Production drives Tick from a wall-clock ticker (Run); tests drive it
// directly, so the whole service — supervision, shedding, recovery — is
// exercised without a single sleep. Virtual-clock network dynamics
// (netsim.Dynamics) plug in through RoundStart exactly as in the campaign.
//
// # Cadence
//
// A destination is re-probed every Period rounds. When a completed pair's
// Paris route fingerprint differs from the previous one, the destination is
// re-armed for the next round instead (immediate re-exploration) and a
// route-change event is published; anomalies observed on the new route ride
// along in the event.
//
// # Supervision
//
// Workers are long-lived goroutines. A panic inside a trace is recovered at
// the worker boundary: the in-flight job resolves as a Failed pair
// (charging the destination's error budget), the worker goroutine dies, and
// the supervisor restarts the slot after an exponential backoff
// (RestartBackoff << restarts, capped). A slot that exhausts
// MaxWorkerRestarts stays dead; when every slot is dead the daemon degrades
// to failing jobs immediately and /healthz goes red. The watchdog bounds
// trace latency: a job that neither completes nor panics within
// StallTimeout is declared stalled, its (eventual) result is discarded, a
// replacement worker takes the wedged one's slot, and the wedged goroutine
// exits on its own when the transport finally unblocks.
//
// # Statistics
//
// Completed pairs fold into one streaming measure.Accumulator under the
// daemon mutex, so /stats serves a consistent mid-flight snapshot: a
// measure.Stats produced by the same Merge the campaign uses, with the
// supervision counters stamped into Stats.Robust (Shed, WorkerRestarts,
// WatchdogStalls, DeadWorkers).
//
// # Recovery
//
// With CheckpointPath set the daemon checkpoints every CheckpointEvery
// completed rounds on the atomic temp-file + rename path and auto-recovers
// on startup: accumulator statistics, per-destination cadence and
// quarantine state, cumulative supervision counters, and the opaque
// transport cursor all survive a kill -9. A corrupt checkpoint is moved
// aside (".corrupt") and the daemon starts fresh rather than refusing to
// boot; a checkpoint for a different destination list or probing shape is
// a hard error.
package daemon
