package daemon

import (
	"net/netip"
	"sync"
)

// EventType names a daemon event on the /events feed.
type EventType string

const (
	// EventRouteChange: a destination's Paris route fingerprint changed;
	// the destination was re-armed for immediate re-exploration.
	EventRouteChange EventType = "route-change"
	// EventAnomaly: the newly observed route carries loops or cycles.
	EventAnomaly EventType = "anomaly"
	// EventShed: the scheduler shed a due job under overload.
	EventShed EventType = "shed"
	// EventStall: the watchdog abandoned a stalled trace.
	EventStall EventType = "stall"
	// EventWorkerPanic: a worker goroutine died on a panic.
	EventWorkerPanic EventType = "worker-panic"
	// EventWorkerRestart: a panicked worker slot was restarted.
	EventWorkerRestart EventType = "worker-restart"
	// EventWorkerDead: a worker slot exhausted its restart budget.
	EventWorkerDead EventType = "worker-dead"
	// EventQuarantine: a destination exhausted its error budget.
	EventQuarantine EventType = "quarantine"
	// EventCheckpoint: a checkpoint was written (or failed to write).
	EventCheckpoint EventType = "checkpoint"
	// EventRecovered: startup resumed from a checkpoint.
	EventRecovered EventType = "recovered"
)

// Event is one entry of the streaming route-change/anomaly feed. Seq is a
// strictly increasing cursor: /events?since=N replays buffered events with
// Seq > N before streaming live ones.
type Event struct {
	Seq    int64
	Round  int64
	Type   EventType
	Dest   netip.Addr `json:",omitempty"`
	Detail string     `json:",omitempty"`
	// Loops and Cycles carry the anomaly counts on route-change and
	// anomaly events.
	Loops, Cycles int `json:",omitempty"`
}

// eventHub buffers the last ringCap events and fans live ones out to
// subscribers. Slow subscribers are never waited for: a full subscriber
// channel drops the event for that subscriber and counts it, so a wedged
// /events client cannot apply backpressure to the measurement loop.
type eventHub struct {
	mu      sync.Mutex
	ring    []Event // ring[i%cap], valid for seq in (nextSeq-len, nextSeq]
	nextSeq int64
	subs    map[int]chan Event
	nextSub int
	dropped int64
	closed  bool
}

func newEventHub(ringCap int) *eventHub {
	if ringCap < 1 {
		ringCap = 1
	}
	return &eventHub{ring: make([]Event, 0, ringCap), subs: make(map[int]chan Event)}
}

// publish assigns the next sequence number, buffers, and fans out.
func (h *eventHub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.nextSeq++
	e.Seq = h.nextSeq
	if len(h.ring) < cap(h.ring) {
		h.ring = append(h.ring, e)
	} else {
		h.ring[int((e.Seq-1)%int64(cap(h.ring)))] = e
	}
	for _, ch := range h.subs {
		select {
		case ch <- e:
		default:
			h.dropped++
		}
	}
}

// subscribe returns the buffered events with Seq > since (oldest first) and
// registers a live channel; the replay and the registration are atomic, so
// a subscriber sees every event exactly once. cancel unregisters.
func (h *eventHub) subscribe(since int64) (replay []Event, ch chan Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch = make(chan Event, 64)
	if h.closed {
		close(ch)
		return nil, ch, func() {}
	}
	for i := 0; i < len(h.ring); i++ {
		// Oldest buffered seq is nextSeq-len+1; walk in seq order.
		seq := h.nextSeq - int64(len(h.ring)) + 1 + int64(i)
		e := h.ring[int((seq-1)%int64(cap(h.ring)))]
		if e.Seq > since {
			replay = append(replay, e)
		}
	}
	id := h.nextSub
	h.nextSub++
	h.subs[id] = ch
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(ch)
		}
	}
}

// seq returns the last assigned sequence number.
func (h *eventHub) seq() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nextSeq
}

// droppedCount returns how many events were dropped on slow subscribers.
func (h *eventHub) droppedCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// setSeq restores the cursor after recovery so post-restart events never
// reuse sequence numbers a client has already seen.
func (h *eventHub) setSeq(seq int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if seq > h.nextSeq {
		h.nextSeq = seq
	}
}

// closeAll ends every subscription; further publishes are dropped.
func (h *eventHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}
