package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the daemon's HTTP/JSON surface:
//
//	GET /healthz        liveness: 200 "ok"/"degraded", 503 "down"
//	GET /readyz         readiness: 200 after the first completed round
//	GET /stats          consistent mid-flight measure.Stats snapshot
//	GET /events?since=N server-sent event stream; buffered events with
//	                    Seq > N replay first, then live events follow
//
// The handler is safe to serve while Tick runs: /stats snapshots under the
// daemon mutex (never a torn read), and a slow /events client drops events
// rather than backpressuring the measurement loop.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /stats", d.handleStats)
	mux.HandleFunc("GET /events", d.handleEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := d.Health()
	status := http.StatusOK
	if h.Status == "down" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if d.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"Status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"Status": "not ready"})
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Snapshot())
}

// handleEvents streams the event feed as server-sent events. ?since=N
// replays the buffered events with Seq > N before the live tail, so a
// reconnecting client resumes from its last seen cursor (bounded by the
// ring: events older than EventBuffer entries are gone).
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	var since int64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "bad since cursor", http.StatusBadRequest)
			return
		}
		since = v
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	replay, live, cancel := d.events.subscribe(since)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeEvent := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
		fl.Flush()
		return err == nil
	}
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-live:
			if !ok {
				return
			}
			if !writeEvent(e) {
				return
			}
		}
	}
}
