package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/measure"
)

func TestHTTPHealthAndReady(t *testing.T) {
	sc := freeTopo(t, 6, 3, 0)
	d := mustNew(t, testConfig(sc))
	defer d.Stop()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := bufio.NewReader(resp.Body).WriteTo(&buf); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, []byte(buf.String())
	}

	// Before the first round: alive but not ready.
	if code, body := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz %d: %s", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz %d before first round, want 503", code)
	}

	d.Tick()
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz %d after first round, want 200", code)
	}
	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz %d", code)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	if h.Status != "ok" || h.Round != 1 || h.WorkersAlive != 3 {
		t.Fatalf("/healthz %+v", h)
	}

	code, body = get("/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats %d", code)
	}
	var s measure.Stats
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if s.Robust.Probed != 6 || s.Rounds != 1 {
		t.Fatalf("/stats probed %d rounds %d, want 6/1", s.Robust.Probed, s.Rounds)
	}
}

func TestHTTPEventsSSE(t *testing.T) {
	sc := freeTopo(t, 10, 3, 0)
	cfg := testConfig(sc)
	cfg.QueueCap = 4 // round 0 sheds 6 → events to stream
	d := mustNew(t, cfg)
	defer d.Stop()
	d.Tick()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events?since=0", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The 6 shed events replay immediately; collect them and disconnect.
	scanner := bufio.NewScanner(resp.Body)
	var events []Event
	for scanner.Scan() && len(events) < 6 {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("decode event %q: %v", line, err)
		}
		events = append(events, e)
	}
	if len(events) != 6 {
		t.Fatalf("replayed %d events, want 6", len(events))
	}
	for i, e := range events {
		if e.Type != EventShed || e.Seq != int64(i+1) {
			t.Fatalf("event %d: %+v, want shed with seq %d", i, e, i+1)
		}
	}
	cancel()

	// Cursor resume: since=4 replays only the last two.
	replay, _, unsub := d.events.subscribe(4)
	unsub()
	if len(replay) != 2 || replay[0].Seq != 5 {
		t.Fatalf("since=4 replayed %+v, want seqs 5,6", replay)
	}

	if _, err := http.Get(srv.URL + "/events?since=bogus"); err != nil {
		t.Fatalf("GET bad cursor: %v", err)
	}
}

// TestStatsSnapshotsNotTorn hammers /stats (through the real handler) while
// the daemon ticks, asserting every served snapshot lands on a fold
// boundary: the internally consistent invariants below cannot hold on a
// torn read. Run under -race this also proves the accumulator is never read
// concurrently with a fold.
func TestStatsSnapshotsNotTorn(t *testing.T) {
	sc := freeTopo(t, 16, 9, 0)
	cfg := testConfig(sc)
	cfg.Period = 1 // fold work every round
	d := mustNew(t, cfg)
	defer d.Stop()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	const rounds = 25
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick(d, rounds)
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastProbed := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/stats")
				if err != nil {
					t.Errorf("GET /stats: %v", err)
					return
				}
				var s measure.Stats
				err = json.NewDecoder(resp.Body).Decode(&s)
				resp.Body.Close()
				if err != nil {
					t.Errorf("decode /stats: %v", err)
					return
				}
				// Fold-boundary invariants: the probed tally and the
				// route tally move together inside one fold, and totals
				// never run backwards between two sequential snapshots.
				if s.Robust.Probed != s.Routes {
					t.Errorf("torn snapshot: probed %d != routes %d", s.Robust.Probed, s.Routes)
					return
				}
				if s.Robust.Probed < lastProbed {
					t.Errorf("probed went backwards: %d -> %d", lastProbed, s.Robust.Probed)
					return
				}
				lastProbed = s.Robust.Probed
			}
		}()
	}
	<-done
	wg.Wait()
	if s := d.Snapshot(); s.Robust.Probed != 16*rounds {
		t.Fatalf("probed %d, want %d", s.Robust.Probed, 16*rounds)
	}
}

// TestDaemonNoGoroutineLeaks cycles the daemon through start/tick/stop and
// asserts the goroutine count returns to baseline — workers, supervisors,
// restart goroutines, and event subscribers all drain on Stop.
func TestDaemonNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for cycle := 0; cycle < 5; cycle++ {
		sc := freeTopo(t, 8, int64(cycle)+1, 0)
		cfg := testConfig(sc)
		d := mustNew(t, cfg)
		// Hold a live event subscription over the ticks; Stop must close it.
		_, ch, cancel := d.events.subscribe(0)
		tick(d, 3)
		if err := d.Stop(); err != nil {
			t.Fatalf("Stop: %v", err)
		}
		for range ch { // drains and ends when closeAll closed the channel
		}
		cancel()
	}
	// Workers park on a select; give the scheduler a bounded grace window
	// (no sleeps: just yields) to collect them.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", baseline,
				runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
	}
}
