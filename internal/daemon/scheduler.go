package daemon

import (
	"net/netip"
	"sort"

	"repro/internal/measure"
)

// destSched is one destination's scheduler state. Every field is guarded by
// the daemon mutex except hints, which only the single worker running the
// destination's in-flight job touches (a destination is never in flight
// twice — inFlight gates re-dispatch).
type destSched struct {
	dest netip.Addr
	idx  int
	// nextDue is the earliest round the destination may be probed in.
	nextDue int64
	// inFlight marks a dispatched, unresolved job.
	inFlight bool
	// seen is true once a pair completed; the first completion never
	// counts as a route change.
	seen bool
	// parisFP and classicFP are the last completed pair's route
	// fingerprints — the interned identity the re-exploration trigger
	// compares against.
	parisFP, classicFP uint64
	// consecFails and quarantined are the error budget, with campaign
	// semantics: QuarantineAfter consecutive failures quarantine the
	// destination; a success resets the count.
	consecFails int
	quarantined bool
	// hints carries the batched ladder lengths between the destination's
	// pairs.
	hints measure.PathHints
	// pairs counts completed (OK) pairs, for observability.
	pairs int64
}

// scheduler owns the per-destination cadence table.
type scheduler struct {
	dests  []*destSched
	period int64
}

func newScheduler(dests []netip.Addr, period int64) *scheduler {
	s := &scheduler{dests: make([]*destSched, len(dests)), period: period}
	for i, d := range dests {
		// Everything is due at round 0; admission shedding spreads the
		// initial herd when the queue bound is tighter than the list.
		s.dests[i] = &destSched{dest: d, idx: i}
	}
	return s
}

// due lists the destinations runnable in round, oldest due first (ties in
// list order), excluding in-flight ones. Caller holds the daemon mutex.
func (s *scheduler) due(round int64) []*destSched {
	var out []*destSched
	for _, ds := range s.dests {
		if !ds.inFlight && ds.nextDue <= round {
			out = append(out, ds)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].nextDue != out[j].nextDue {
			return out[i].nextDue < out[j].nextDue
		}
		return out[i].idx < out[j].idx
	})
	return out
}
