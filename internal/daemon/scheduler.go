package daemon

import (
	"net/netip"
	"sort"

	"repro/internal/measure"
)

// destSched is one destination's scheduler state. Every field is guarded by
// the daemon mutex except hints, which only the single worker running the
// destination's in-flight job touches (a destination is never in flight
// twice — inFlight gates re-dispatch).
type destSched struct {
	dest netip.Addr
	idx  int
	// nextDue is the earliest round the destination may be probed in.
	nextDue int64
	// inFlight marks a dispatched, unresolved job.
	inFlight bool
	// seen is true once a pair completed; the first completion never
	// counts as a route change.
	seen bool
	// parisFP and classicFP are the last completed pair's route
	// fingerprints — the interned identity the re-exploration trigger
	// compares against.
	parisFP, classicFP uint64
	// consecFails and quarantined are the error budget, with campaign
	// semantics: QuarantineAfter consecutive failures quarantine the
	// destination; a success resets the count.
	consecFails int
	quarantined bool
	// hints carries the batched ladder lengths between the destination's
	// pairs.
	hints measure.PathHints
	// pairs counts completed (OK) pairs, for observability.
	pairs int64
	// shedStreak counts consecutive rounds this destination was shed by
	// admission without being dispatched in between; the victim-selection
	// score decays exponentially in it, so a destination the lottery keeps
	// hitting becomes rapidly un-sheddable (aging — no starvation under
	// persistent overload). Dispatch resets it.
	shedStreak int
}

// scheduler owns the per-destination cadence table.
type scheduler struct {
	dests  []*destSched
	period int64
}

func newScheduler(dests []netip.Addr, period int64) *scheduler {
	s := &scheduler{dests: make([]*destSched, len(dests)), period: period}
	for i, d := range dests {
		// Everything is due at round 0; admission shedding spreads the
		// initial herd when the queue bound is tighter than the list.
		s.dests[i] = &destSched{dest: d, idx: i}
	}
	return s
}

// due lists the destinations runnable in round, oldest due first (ties in
// list order), excluding in-flight ones. Caller holds the daemon mutex.
func (s *scheduler) due(round int64) []*destSched {
	var out []*destSched
	for _, ds := range s.dests {
		if !ds.inFlight && ds.nextDue <= round {
			out = append(out, ds)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].nextDue != out[j].nextDue {
			return out[i].nextDue < out[j].nextDue
		}
		return out[i].idx < out[j].idx
	})
	return out
}

// shedScore ranks one runnable destination as a shedding victim this round:
// a deterministic per-(seed, round, idx) SplitMix64 draw — random-early
// shed, so under persistent overload the victims rotate instead of always
// being the head of the due ordering — downshifted 8 bits per round of
// shed streak, so a destination shed k rounds running wins the next
// lottery only against destinations 256^k times unluckier. Determinism per
// (seed, round) keeps rounds reproducible and checkpoints exact.
func shedScore(seed, round int64, ds *destSched) uint64 {
	x := uint64(seed) ^ uint64(round)*0x9e3779b97f4a7c15 ^ uint64(uint32(ds.idx))<<1
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	shift := ds.shedStreak * 8
	if shift > 56 {
		shift = 56
	}
	return x >> shift
}

// shedVictims picks the n destinations to shed from runnable: the n
// highest scores (ties broken by list index, for full determinism).
func shedVictims(runnable []*destSched, n int, seed, round int64) []*destSched {
	type cand struct {
		ds    *destSched
		score uint64
	}
	cands := make([]cand, len(runnable))
	for i, ds := range runnable {
		cands[i] = cand{ds, shedScore(seed, round, ds)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].ds.idx < cands[j].ds.idx
	})
	out := make([]*destSched, n)
	for i := range out {
		out[i] = cands[i].ds
	}
	return out
}
