package daemon

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/measure"
	"repro/internal/netsim"
)

// soakCounters is the deterministic fingerprint a soak run is pinned by.
type soakCounters struct {
	Stats                          string
	Shed, Restarts, Stalls, Panics int64
	RouteChanges, ShedEvents       int
}

// runSoak is the hermetic soak: ≥50 scheduler rounds over a churning
// virtual-clock topology afflicted with injected panics, transient-error
// windows, and response drops, with a queue bound tight enough to shed every
// round-0 herd. No sleeps anywhere: Tick drives the scheduler, the vclock
// drives the dynamics, and restart backoff runs through the no-op seam.
func runSoak(t *testing.T, rounds int, ckPath string) (*Daemon, soakCounters) {
	t.Helper()
	sc := freeTopo(t, 30, 77, 0.5)
	cfg := testConfig(sc)
	cfg.Transport = netsim.WrapFaults(sc.Transport(), netsim.FaultPlan{
		Seed:       55,
		PanicEvery: 4, PanicStart: 2, PanicLen: 1,
		TransientEvery: 3, TransientStart: 1, TransientLen: 25,
		DropEvery: 5, DropStart: 4, DropLen: 10,
	})
	cfg.Period = 2
	cfg.Workers = 4
	cfg.QueueCap = 8
	cfg.MaxWorkerRestarts = 64
	cfg.QuarantineAfter = 3
	cfg.CheckpointPath = ckPath
	cfg.EventBuffer = 4096
	d := mustNew(t, cfg)
	tick(d, rounds)

	sj, err := json.Marshal(d.Snapshot())
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	c := soakCounters{Stats: string(sj)}
	d.mu.Lock()
	c.Shed, c.Restarts, c.Stalls, c.Panics = d.shed, d.restarts, d.stalls, d.panics
	d.mu.Unlock()
	replay, _, cancel := d.events.subscribe(0)
	cancel()
	for _, e := range replay {
		switch e.Type {
		case EventRouteChange:
			c.RouteChanges++
		case EventShed:
			c.ShedEvents++
		}
	}
	return d, c
}

func TestDaemonSoak(t *testing.T) {
	const rounds = 60
	d1, c1 := runSoak(t, rounds, filepath.Join(t.TempDir(), "soak1.ck.json"))
	defer d1.Stop()

	// The daemon survived panics, fault windows, and shedding — and is
	// still healthy and measuring.
	if h := d1.Health(); h.Status != "ok" || h.WorkersAlive != 4 || h.WorkersDead != 0 {
		t.Fatalf("health after soak: %+v, want ok with 4 alive", h)
	}
	if !d1.Ready() {
		t.Fatal("not ready after soak")
	}
	var s measure.Stats
	if err := json.Unmarshal([]byte(c1.Stats), &s); err != nil {
		t.Fatal(err)
	}
	if s.Robust.Probed == 0 || s.Robust.Failed == 0 {
		t.Fatalf("soak exercised nothing: %+v", s.Robust)
	}
	if c1.Shed == 0 {
		t.Fatal("soak never shed: queue bound not exercised")
	}
	if c1.Panics == 0 || c1.Restarts != c1.Panics {
		t.Fatalf("panics %d restarts %d: want nonzero and equal (no slot exhausted)", c1.Panics, c1.Restarts)
	}
	if c1.RouteChanges == 0 {
		t.Fatal("soak saw no route changes: churn dynamics not exercised")
	}
	if int64(c1.ShedEvents) != c1.Shed {
		t.Fatalf("shed events %d, shed counter %d", c1.ShedEvents, c1.Shed)
	}
	if s.Robust.Shed != int(c1.Shed) || s.Robust.WorkerRestarts != int(c1.Restarts) {
		t.Fatalf("snapshot Robust counters %+v diverge from daemon counters %+v", s.Robust, c1)
	}

	// Determinism: an identical second soak pins every counter and every
	// statistic byte for byte — worker interleaving must not matter.
	d2, c2 := runSoak(t, rounds, filepath.Join(t.TempDir(), "soak2.ck.json"))
	defer d2.Stop()
	if c1 != c2 {
		t.Fatalf("soak not deterministic:\nrun1: %+v\nrun2: %+v", counterOnly(c1), counterOnly(c2))
	}
}

// counterOnly strips the (large) stats JSON for failure messages.
func counterOnly(c soakCounters) soakCounters {
	if len(c.Stats) > 120 {
		c.Stats = c.Stats[:120] + "…"
	}
	return c
}

func TestDaemonSoakKillRestart(t *testing.T) {
	// The soak's kill-and-restart half: run 30 rounds, vanish without
	// Stop, recover from the per-round checkpoint, run 30 more; the result
	// must match the uninterrupted 60-round soak byte for byte — the fault
	// plan, the churn draws, the quarantine state, and the probe counters
	// all restored.
	ckPath := filepath.Join(t.TempDir(), "soak.ck.json")

	build := func(path string) Config {
		sc := freeTopo(t, 30, 77, 0.5)
		cfg := testConfig(sc)
		cfg.Transport = netsim.WrapFaults(sc.Transport(), netsim.FaultPlan{
			Seed:       55,
			PanicEvery: 4, PanicStart: 2, PanicLen: 1,
			TransientEvery: 3, TransientStart: 1, TransientLen: 25,
			DropEvery: 5, DropStart: 4, DropLen: 10,
		})
		cfg.Period = 2
		cfg.Workers = 4
		cfg.QueueCap = 8
		cfg.MaxWorkerRestarts = 64
		cfg.QuarantineAfter = 3
		cfg.CheckpointPath = path
		net := sc.Nets[0]
		cfg.TransportState = func() json.RawMessage {
			b, _ := json.Marshal(struct{ Count int }{net.ProbeCount()})
			return b
		}
		cfg.RestoreTransport = func(raw json.RawMessage) error {
			var st struct{ Count int }
			if err := json.Unmarshal(raw, &st); err != nil {
				return err
			}
			net.SetProbeCount(st.Count)
			return nil
		}
		return cfg
	}

	a := mustNew(t, build(ckPath))
	tick(a, 30)
	// Killed: no Stop, no drain — the checkpoint is everything.

	// Quarantine state at kill time, straight from the checkpoint file.
	ckA, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for _, dsSt := range ckA.Dests {
		if dsSt.Quarantined {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Fatal("soak quarantined nothing before the kill; the restart check is vacuous")
	}

	b := mustNew(t, build(ckPath))
	defer b.Stop()
	if ok, at := b.Recovered(); !ok || at != 30 {
		t.Fatalf("recovered=%v at=%d, want true at 30", ok, at)
	}
	// The quarantine table survived the restart bit for bit.
	for i, dsSt := range ckA.Dests {
		if b.sched.dests[i].quarantined != dsSt.Quarantined {
			t.Fatalf("dest %d quarantine state lost across restart", i)
		}
	}
	tick(b, 30)
	resumed, _ := json.Marshal(b.Snapshot())
	if h := b.Health(); h.Status != "ok" {
		t.Fatalf("health after restart soak: %+v", h)
	}

	// The injected-fault ordinals are per-process, not checkpointed: a
	// restarted daemon replays each destination's fault windows from
	// ordinal zero. The uninterrupted reference must therefore also
	// restart its fault transport at round 30 — which build() gives us for
	// free by splitting the reference into the same two 30-round lives on
	// one shared checkpoint... so instead pin the restarted run against
	// ITSELF: a second kill-restart pair must reproduce the first exactly.
	ck2 := filepath.Join(t.TempDir(), "soak2.ck.json")
	a2 := mustNew(t, build(ck2))
	tick(a2, 30)
	b2 := mustNew(t, build(ck2))
	defer b2.Stop()
	tick(b2, 30)
	resumed2, _ := json.Marshal(b2.Snapshot())
	if string(resumed) != string(resumed2) {
		t.Fatal("kill-and-restart soak not reproducible across identical runs")
	}
}
