package daemon

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anomaly"
	"repro/internal/measure"
)

// Job lifecycle is a single atomic word so the watchdog-vs-worker race is
// decided by exactly one CAS:
//
//	pending ──claim──▶ running(wid,gen) ──CAS──▶ done       (worker: result, error, or panic)
//	   │                      │
//	   └──────────CAS──────────┴────────────────▶ discarded (watchdog)
//
// A worker whose resolution CAS fails knows the watchdog already discarded
// its job and handed the slot to a replacement — it exits without touching
// the supervision counters. A watchdog that discards a still-pending job
// knows no worker ever claimed it, so no replacement is spawned.
//
// Every supervision counter (panics, restarts, stalls, folds) is updated
// strictly before the job's done channel closes, and Tick only returns once
// every dispatched job's done closed — so the counters a test (or a
// checkpoint) reads at the Tick boundary are deterministic, not a race
// against supervision goroutines still settling.
const (
	jsPending   int64 = 0 // on the queue, unclaimed
	jsRunning   int64 = 1 // claimed; wid and gen are packed above the phase
	jsDone      int64 = 2 // resolved by a worker (result, error, or panic)
	jsDiscarded int64 = 3 // abandoned by the watchdog
)

// jsRun packs a worker's identity into its claim value.
func jsRun(wid, gen int) int64 { return jsRunning | int64(wid)<<8 | int64(gen)<<32 }

func jsPhase(v int64) int64 { return v & 0xff }
func jsWid(v int64) int     { return int((v >> 8) & 0xffffff) }
func jsGen(v int64) int     { return int(v >> 32) }

// job is one dispatched trace. done is closed exactly once, by whoever CASed
// the state to jsDone; every field below done is written before that close
// and read only after it.
type job struct {
	ds    *destSched
	dest  netip.Addr
	round int64
	hints measure.PathHints
	state atomic.Int64
	done  chan struct{}

	pair     measure.Pair
	err      error
	panicked bool
}

// worker is one supervised pool goroutine. id names the slot; gen counts the
// panic restarts the slot has consumed. The goroutine owns one Prober (the
// scratch buffers are not concurrency-safe) and exits on Stop, on being
// replaced after a stall, or — after a panic — into onWorkerPanic, which
// accounts for the death and restarts the slot.
func (d *Daemon) worker(id, gen int) {
	var cur *job
	var curRun int64
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if cur != nil && !cur.state.CompareAndSwap(curRun, jsDone) {
			// The watchdog discarded the job mid-run and a replacement
			// worker owns this slot; the panicked goroutine vanishes
			// without touching the supervision counters.
			return
		}
		d.onWorkerPanic(id, gen, r, cur)
	}()
	prober := measure.NewProber(d.tp, d.cfg.Probe)
	for {
		select {
		case <-d.stop:
			return
		case j := <-d.jobs:
			run := jsRun(id, gen)
			if !j.state.CompareAndSwap(jsPending, run) {
				// Discarded (or drained) while queued; nothing ran, the
				// slot stays healthy.
				continue
			}
			cur, curRun = j, run
			hints := j.hints
			pair, err := prober.MeasurePair(j.dest, int(j.round), &hints)
			if !j.state.CompareAndSwap(run, jsDone) {
				// Discarded mid-run: the slot belongs to a replacement
				// worker now, so this goroutine exits with its late
				// result dropped on the floor.
				return
			}
			j.pair, j.err, j.hints = pair, err, hints
			close(j.done)
			cur = nil
		}
	}
}

// supervise waits for one dispatched job to resolve or stall. The watchdog
// channel comes from the Watchdog seam when set (tests; a nil channel never
// fires), otherwise from a StallTimeout timer.
func (d *Daemon) supervise(j *job, wg *sync.WaitGroup) {
	defer wg.Done()
	var stallC <-chan time.Time
	if d.cfg.Watchdog != nil {
		stallC = d.cfg.Watchdog(j.dest)
	} else if d.cfg.StallTimeout > 0 {
		t := time.NewTimer(d.cfg.StallTimeout)
		defer t.Stop()
		stallC = t.C
	}
	select {
	case <-j.done:
		d.finish(j)
	case <-stallC:
		for {
			v := j.state.Load()
			if jsPhase(v) == jsDone {
				// The worker won the race; take the result.
				<-j.done
				d.finish(j)
				return
			}
			if j.state.CompareAndSwap(v, jsDiscarded) {
				d.onStall(j, v)
				return
			}
		}
	}
}

// finish folds a resolved job's outcome into the accumulator and re-arms the
// destination's cadence: success every Period rounds, a changed Paris route
// fingerprint next round (immediate re-exploration), failure per the error
// budget.
func (d *Daemon) finish(j *job) {
	d.mu.Lock()
	ds := j.ds
	ds.inFlight = false
	round := j.round
	if j.err != nil {
		p := measure.Pair{Dest: j.dest, Round: int(round), Outcome: measure.OutcomeFailed}
		d.acc.Fold(&p)
		d.chargeLocked(ds, round)
		d.mu.Unlock()
		return
	}
	pair := j.pair
	d.acc.Fold(&pair)
	ds.hints = j.hints
	ds.consecFails = 0
	ds.pairs++
	pfp := pair.Paris.Fingerprint()
	cfp := pair.Classic.Fingerprint()
	changed := ds.seen && pfp != ds.parisFP
	ds.parisFP, ds.classicFP = pfp, cfp
	ds.seen = true
	if changed {
		ds.nextDue = round + 1
	} else {
		ds.nextDue = round + d.sched.period
	}
	d.mu.Unlock()
	if changed {
		loops := len(anomaly.FindLoops(pair.Paris)) + len(anomaly.FindLoops(pair.Classic))
		cycles := len(anomaly.FindCycles(pair.Paris)) + len(anomaly.FindCycles(pair.Classic))
		d.events.publish(Event{Round: round, Type: EventRouteChange, Dest: j.dest,
			Detail: "paris route fingerprint changed; re-exploring next round",
			Loops:  loops, Cycles: cycles})
		if loops+cycles > 0 {
			d.events.publish(Event{Round: round, Type: EventAnomaly, Dest: j.dest,
				Detail: "anomalies on changed route", Loops: loops, Cycles: cycles})
		}
	}
}

// onStall records a watchdog-abandoned job: the pair fails, the destination
// is charged, and — when a worker was actually wedged on the trace — a
// replacement worker takes its slot immediately. The wedged goroutine exits
// on its own when its transport finally unblocks (its resolution CAS fails).
func (d *Daemon) onStall(j *job, prev int64) {
	d.mu.Lock()
	d.stalls++
	j.ds.inFlight = false
	p := measure.Pair{Dest: j.dest, Round: int(j.round), Outcome: measure.OutcomeFailed}
	d.acc.Fold(&p)
	d.chargeLocked(j.ds, j.round)
	d.mu.Unlock()
	d.events.publish(Event{Round: j.round, Type: EventStall, Dest: j.dest,
		Detail: "trace exceeded stall deadline; job abandoned"})
	if jsPhase(prev) == jsRunning && !d.stopped.Load() {
		go d.worker(jsWid(prev), jsGen(prev))
	}
}

// onWorkerPanic supervises a panicked worker slot. All accounting — the
// panic tally, the restart pre-credit or the dead-slot/pool-death
// transition — happens before the in-flight job (if any) resolves, so the
// Tick that observes the job's failure also observes the counters that
// explain it. The slot restarts after an exponential backoff
// (RestartBackoff << restarts, capped) until it exhausts MaxWorkerRestarts
// and stays dead; when the last slot dies, queued jobs drain as immediate
// failures and future dispatches fail inline, keeping Tick from hanging.
func (d *Daemon) onWorkerPanic(id, gen int, r any, j *job) {
	d.mu.Lock()
	d.panics++
	d.workersAlive--
	round := d.round
	dead := gen >= d.cfg.MaxWorkerRestarts
	if dead {
		d.deadWorkers++
		if d.workersAlive == 0 {
			d.poolDead = true
		}
	} else {
		// Pre-credit the restart: the replacement goroutine spawns after
		// the backoff, but the slot is committed to coming back now.
		d.restarts++
		d.workersAlive++
	}
	poolDead := d.poolDead
	d.mu.Unlock()
	d.events.publish(Event{Round: round, Type: EventWorkerPanic,
		Detail: fmt.Sprintf("worker %d (restart %d): %v", id, gen, r)})
	if dead {
		d.events.publish(Event{Round: round, Type: EventWorkerDead,
			Detail: fmt.Sprintf("worker %d dead after %d restarts", id, gen)})
	}
	if j != nil {
		j.err = fmt.Errorf("daemon: worker panic during trace to %v: %v", j.dest, r)
		j.panicked = true
		close(j.done)
	}
	if dead {
		if poolDead {
			d.drainJobs()
		}
		return
	}
	backoff := d.cfg.RestartBackoff << gen
	if backoff <= 0 || backoff > d.cfg.RestartBackoffMax {
		backoff = d.cfg.RestartBackoffMax
	}
	go func() {
		d.sleep(backoff)
		if d.stopped.Load() {
			return
		}
		d.events.publish(Event{Round: round, Type: EventWorkerRestart,
			Detail: fmt.Sprintf("worker %d restarted (restart %d)", id, gen+1)})
		d.worker(id, gen+1)
	}()
}

// drainJobs fails every queued job after the pool dies, so supervisors (and
// through them Tick) resolve instead of waiting forever.
func (d *Daemon) drainJobs() {
	for {
		select {
		case j := <-d.jobs:
			d.resolveFailed(j, fmt.Errorf("daemon: worker pool dead"))
		default:
			return
		}
	}
}

// resolveFailed resolves a never-run job as an error, unless a worker or
// the watchdog already owns it.
func (d *Daemon) resolveFailed(j *job, err error) {
	if j.state.CompareAndSwap(jsPending, jsDone) {
		j.err = err
		close(j.done)
	}
}
