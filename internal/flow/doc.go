// Package flow extracts and hashes flow identifiers from serialized IPv4
// packets, reproducing the per-flow load-balancing behaviour the paper
// observed in deployed routers.
//
// The paper's key empirical finding (Section 2.1) is that routers "blindly
// employ the first four octets in the transport-layer header" together with
// IP-level fields (addresses, protocol, and sometimes TOS) to assign packets
// to flows. KeyFirstFourOctets models that behaviour and is the default
// everywhere in this repository; KeyFiveTuple models the textbook five-tuple
// for comparison, and the ablation benchmarks contrast the two.
//
// # Determinism and concurrency contract
//
// Key extraction and bucket hashing are pure, stateless functions of the
// packet bytes: no package-level state, no randomness, no allocation on the
// hashing path. The same serialized probe always lands in the same bucket —
// the property Paris traceroute exploits to hold a flow constant while
// varying the TTL — and any number of goroutines may hash concurrently
// without synchronization. netsim's routers and the tracers both depend on
// this byte-for-byte agreement: a probe is load-balanced by exactly the
// octets the tracer crafted.
package flow
