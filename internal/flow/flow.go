package flow

import (
	"fmt"

	"repro/internal/packet"
)

// KeyKind selects which header fields form the flow identifier.
type KeyKind int

const (
	// KeyFirstFourOctets hashes Source Address, Destination Address,
	// Protocol, and the first four octets of the transport header —
	// whatever they are (UDP ports; ICMP type/code/checksum; TCP ports).
	// This is the router behaviour the paper reports.
	KeyFirstFourOctets KeyKind = iota
	// KeyFiveTuple hashes the classic five-tuple. For ICMP, which has no
	// ports, it degrades to addresses + protocol only.
	KeyFiveTuple
	// KeyDestination hashes the destination address only (per-destination
	// load balancing, equivalent to classic routing from the measurement
	// point of view).
	KeyDestination
)

// String implements fmt.Stringer for diagnostics.
func (k KeyKind) String() string {
	switch k {
	case KeyFirstFourOctets:
		return "first-four-octets"
	case KeyFiveTuple:
		return "five-tuple"
	case KeyDestination:
		return "destination"
	default:
		return fmt.Sprintf("KeyKind(%d)", int(k))
	}
}

// Options tunes flow-key extraction.
type Options struct {
	Kind KeyKind
	// IncludeTOS adds the IP Type of Service octet to the key. The paper
	// lists TOS among the fields some routers use.
	IncludeTOS bool
}

// Key is a flow identifier extracted from a packet. Two packets with equal
// Keys are guaranteed to take the same path through any per-flow balancer
// configured with the same Options.
type Key struct {
	raw [14]byte // src(4) dst(4) proto(1) tos(1) transport(4)
	n   int
}

// Extract computes the flow key of the serialized IPv4 packet pkt.
// Packets too short to carry four transport octets still yield a key (the
// missing octets are zero), mirroring real routers which hash whatever bytes
// sit at those offsets.
func Extract(pkt []byte, opts Options) (Key, error) {
	var h packet.IPv4
	payload, err := packet.ParseIPv4Into(pkt, &h)
	if err != nil {
		return Key{}, fmt.Errorf("flow: %w", err)
	}
	return FromParsed(&h, payload, opts)
}

// FromParsed computes the flow key from an already-parsed IPv4 header and
// its transport payload. Forwarding engines that parse each packet once
// (netsim's hot path) use this to skip Extract's re-parse.
func FromParsed(h *packet.IPv4, payload []byte, opts Options) (Key, error) {
	var k Key
	dst := h.Dst.As4()
	switch opts.Kind {
	case KeyDestination:
		copy(k.raw[:4], dst[:])
		k.n = 4
		return k, nil
	case KeyFirstFourOctets, KeyFiveTuple:
		src := h.Src.As4()
		copy(k.raw[0:4], src[:])
		copy(k.raw[4:8], dst[:])
		k.raw[8] = h.Protocol
		if opts.IncludeTOS {
			k.raw[9] = h.TOS
		}
		k.n = 10
		if opts.Kind == KeyFiveTuple && h.Protocol == packet.ProtoICMP {
			// No ports to add.
			return k, nil
		}
		n := 4
		if len(payload) < n {
			n = len(payload)
		}
		copy(k.raw[10:], payload[:n])
		k.n = 14
		return k, nil
	default:
		return Key{}, fmt.Errorf("flow: unknown key kind %v", opts.Kind)
	}
}

// Hash returns a stable 64-bit hash of the key (FNV-1a, computed inline so
// the per-forwarding-decision call allocates nothing; hash/fnv's New64a
// heap-allocates its state).
func (k Key) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range k.raw[:k.n] {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Bucket maps the key onto one of n equal-cost next hops.
func (k Key) Bucket(n int) int {
	if n <= 1 {
		return 0
	}
	return int(k.Hash() % uint64(n))
}

// Equal reports whether two keys are identical.
func (k Key) Equal(o Key) bool { return k == o }
