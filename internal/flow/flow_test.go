package flow

import (
	"net/netip"
	"testing"

	"repro/internal/packet"
)

var (
	src = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	dst = netip.AddrFrom4([4]byte{192, 0, 2, 9})
)

func udpPacket(t *testing.T, srcPort, dstPort uint16, tos uint8, payload []byte) []byte {
	t.Helper()
	dgram, err := packet.MarshalUDP(src, dst, &packet.UDP{SrcPort: srcPort, DstPort: dstPort}, payload)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := (&packet.IPv4{TOS: tos, TTL: 7, Protocol: packet.ProtoUDP, Src: src, Dst: dst}).Marshal(dgram)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func icmpPacket(t *testing.T, id, seq uint16) []byte {
	t.Helper()
	body, err := (&packet.ICMP{Type: packet.ICMPTypeEchoRequest, ID: id, Seq: seq}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := (&packet.IPv4{TTL: 7, Protocol: packet.ProtoICMP, Src: src, Dst: dst}).Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func extract(t *testing.T, pkt []byte, opts Options) Key {
	t.Helper()
	k, err := Extract(pkt, opts)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return k
}

func TestSamePortsSameKey(t *testing.T) {
	opts := Options{Kind: KeyFirstFourOctets}
	a := extract(t, udpPacket(t, 10007, 20011, 0, []byte{1, 2}), opts)
	b := extract(t, udpPacket(t, 10007, 20011, 0, []byte{9, 9, 9, 9}), opts)
	if !a.Equal(b) {
		t.Error("same five-tuple, different payloads: keys must match (Paris invariant)")
	}
}

func TestVaryingDstPortChangesKey(t *testing.T) {
	opts := Options{Kind: KeyFirstFourOctets}
	a := extract(t, udpPacket(t, 32768, 33435, 0, nil), opts)
	b := extract(t, udpPacket(t, 32768, 33436, 0, nil), opts)
	if a.Equal(b) {
		t.Error("classic traceroute's port increment must change the flow key")
	}
}

// TestUDPChecksumOutsideFirstFourOctets: the UDP checksum lives in octets
// 7-8 of the transport header, so a first-four-octets balancer must ignore
// it — the property that makes Paris UDP probing work.
func TestUDPChecksumOutsideFirstFourOctets(t *testing.T) {
	opts := Options{Kind: KeyFirstFourOctets}
	h := &packet.UDP{SrcPort: 10007, DstPort: 20011}
	mk := func(target uint16) []byte {
		payload, err := packet.CraftUDPPayload(src, dst, h, target, 12)
		if err != nil {
			t.Fatal(err)
		}
		return udpPacketWithPayload(t, h, payload)
	}
	a := extract(t, mk(0x1111), opts)
	b := extract(t, mk(0x2222), opts)
	if !a.Equal(b) {
		t.Error("different UDP checksums changed a first-four-octets flow key")
	}
}

func udpPacketWithPayload(t *testing.T, h *packet.UDP, payload []byte) []byte {
	t.Helper()
	dgram, err := packet.MarshalUDP(src, dst, h, payload)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := (&packet.IPv4{TTL: 7, Protocol: packet.ProtoUDP, Src: src, Dst: dst}).Marshal(dgram)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestICMPChecksumInsideFirstFourOctets: the ICMP checksum occupies octets
// 3-4, so varying the sequence number (which varies the checksum) changes
// the key — classic ICMP traceroute's flaw.
func TestICMPChecksumInsideFirstFourOctets(t *testing.T) {
	opts := Options{Kind: KeyFirstFourOctets}
	a := extract(t, icmpPacket(t, 4321, 1), opts)
	b := extract(t, icmpPacket(t, 4321, 2), opts)
	if a.Equal(b) {
		t.Error("varying Echo Seq must change the flow key (checksum moves)")
	}
	// Paris ICMP: compensate with the identifier; key must be restored.
	target := packet.EchoChecksum(packet.ICMPTypeEchoRequest, 0, 4321, 1, nil)
	id2, err := packet.CompensatingEchoID(2, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := extract(t, icmpPacket(t, id2, 2), opts)
	if !a.Equal(c) {
		t.Error("compensated Echo probe changed the flow key")
	}
}

func TestFiveTupleICMPHasNoPorts(t *testing.T) {
	opts := Options{Kind: KeyFiveTuple}
	a := extract(t, icmpPacket(t, 1, 1), opts)
	b := extract(t, icmpPacket(t, 2, 9), opts)
	if !a.Equal(b) {
		t.Error("five-tuple key for ICMP should ignore the ICMP header")
	}
}

func TestKeyDestinationIgnoresEverythingElse(t *testing.T) {
	opts := Options{Kind: KeyDestination}
	a := extract(t, udpPacket(t, 1, 2, 0, nil), opts)
	b := extract(t, udpPacket(t, 9, 8, 0x10, nil), opts)
	if !a.Equal(b) {
		t.Error("per-destination key must depend on the destination only")
	}
}

func TestTOSInclusion(t *testing.T) {
	with := Options{Kind: KeyFirstFourOctets, IncludeTOS: true}
	without := Options{Kind: KeyFirstFourOctets}
	a := extract(t, udpPacket(t, 1, 2, 0x00, nil), with)
	b := extract(t, udpPacket(t, 1, 2, 0x10, nil), with)
	if a.Equal(b) {
		t.Error("TOS-inclusive key ignored TOS")
	}
	c := extract(t, udpPacket(t, 1, 2, 0x00, nil), without)
	d := extract(t, udpPacket(t, 1, 2, 0x10, nil), without)
	if !c.Equal(d) {
		t.Error("TOS-exclusive key depended on TOS")
	}
}

func TestShortTransportStillKeyed(t *testing.T) {
	// A quoted or malformed packet with fewer than four transport octets
	// must still produce a key (real routers hash whatever is there).
	body := []byte{0x12, 0x34}
	pkt, err := (&packet.IPv4{TTL: 1, Protocol: packet.ProtoUDP, Src: src, Dst: dst}).Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(pkt, Options{Kind: KeyFirstFourOctets}); err != nil {
		t.Errorf("Extract on short transport: %v", err)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(nil, Options{}); err == nil {
		t.Error("nil packet accepted")
	}
	if _, err := Extract(udpPacket(t, 1, 2, 0, nil), Options{Kind: KeyKind(99)}); err == nil {
		t.Error("unknown key kind accepted")
	}
}

func TestBucketBounds(t *testing.T) {
	k := extract(t, udpPacket(t, 7, 8, 0, nil), Options{Kind: KeyFirstFourOctets})
	for n := 1; n <= 16; n++ {
		if b := k.Bucket(n); b < 0 || b >= n {
			t.Errorf("Bucket(%d) = %d out of range", n, b)
		}
	}
	if k.Bucket(0) != 0 || k.Bucket(1) != 0 {
		t.Error("degenerate bucket counts must map to 0")
	}
}

func TestBucketSpreads(t *testing.T) {
	// Over many flows, a 2-way bucket must use both outputs. This is the
	// statistical assumption behind every loop/diamond probability in
	// the paper (e.g. the 0.25 of Section 2.1).
	counts := [2]int{}
	for p := uint16(0); p < 512; p++ {
		k := extract(t, udpPacket(t, 32768, 33435+p, 0, nil), Options{Kind: KeyFirstFourOctets})
		counts[k.Bucket(2)]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("bucket never split: %v", counts)
	}
	ratio := float64(counts[0]) / 512
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("bucket split heavily skewed: %v", counts)
	}
}

func TestHashDeterminism(t *testing.T) {
	k1 := extract(t, udpPacket(t, 1000, 2000, 0, nil), Options{Kind: KeyFirstFourOctets})
	k2 := extract(t, udpPacket(t, 1000, 2000, 0, nil), Options{Kind: KeyFirstFourOctets})
	if k1.Hash() != k2.Hash() {
		t.Error("hash not deterministic")
	}
}
