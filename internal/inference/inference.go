// Package inference reconstructs router-level topologies from measured
// routes, the downstream task traceroute anomalies corrupt (Section 2.1).
//
// It implements the three link-inference policies the paper discusses:
//
//   - PolicyAllLinks: believe every consecutive address pair (what naive
//     map construction does, and what Fig. 1 shows inferring false links);
//   - PolicyFirstAddress (skitter/arts++): keep only the first address
//     obtained for each hop across measurements;
//   - PolicyConfidence (Rocketfuel): include all links but attribute a
//     lower confidence to links inferred from hops that respond with
//     multiple addresses.
//
// Comparing an inferred topology against the simulator's ground truth
// quantifies exactly the failures the paper describes: missing nodes,
// missing links, and false links — and shows Paris traceroute removing the
// per-flow share of them.
package inference

import (
	"net/netip"
	"sort"

	"repro/internal/tracer"
)

// Policy selects how measured routes become links.
type Policy int

const (
	// PolicyAllLinks believes every observed adjacency.
	PolicyAllLinks Policy = iota
	// PolicyFirstAddress keeps the first responding address per hop
	// position per destination (the arts++ reading of skitter data).
	PolicyFirstAddress
	// PolicyConfidence keeps all links with Rocketfuel-style confidence
	// weights: 1.0 for links whose endpoints were the only addresses at
	// their hops, lower otherwise.
	PolicyConfidence
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyAllLinks:
		return "all-links"
	case PolicyFirstAddress:
		return "first-address"
	case PolicyConfidence:
		return "confidence"
	default:
		return "unknown"
	}
}

// Link is a directed router-level adjacency.
type Link struct{ From, To netip.Addr }

// Topology is an inferred router-level map.
type Topology struct {
	Nodes map[netip.Addr]bool
	// Links maps each inferred link to its confidence in [0, 1].
	Links map[Link]float64
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		Nodes: make(map[netip.Addr]bool),
		Links: make(map[Link]float64),
	}
}

// Infer builds a topology from measured routes under the given policy.
func Infer(routes []*tracer.Route, policy Policy) *Topology {
	topo := NewTopology()
	switch policy {
	case PolicyFirstAddress:
		inferFirstAddress(routes, topo)
	case PolicyConfidence:
		inferConfidence(routes, topo)
	default:
		for _, rt := range routes {
			addLinks(rt.Hops, topo, 1.0)
		}
	}
	return topo
}

func addLinks(hops []tracer.Hop, topo *Topology, conf float64) {
	for _, h := range hops {
		if !h.Star() {
			topo.Nodes[h.Addr] = true
		}
	}
	for i := 0; i+1 < len(hops); i++ {
		a, b := hops[i], hops[i+1]
		if a.Star() || b.Star() || a.Addr == b.Addr {
			continue
		}
		l := Link{From: a.Addr, To: b.Addr}
		if conf > topo.Links[l] {
			topo.Links[l] = conf
		}
	}
}

// inferFirstAddress reduces each destination's measurements to one route:
// the first address seen at each hop position.
func inferFirstAddress(routes []*tracer.Route, topo *Topology) {
	type key struct {
		dest netip.Addr
		hop  int
	}
	first := make(map[key]netip.Addr)
	maxHop := make(map[netip.Addr]int)
	for _, rt := range routes {
		for i, h := range rt.Hops {
			if h.Star() {
				continue
			}
			k := key{rt.Dest, i}
			if _, ok := first[k]; !ok {
				first[k] = h.Addr
			}
			if i+1 > maxHop[rt.Dest] {
				maxHop[rt.Dest] = i + 1
			}
		}
	}
	for _, rt := range routes {
		reduced := make([]tracer.Hop, maxHop[rt.Dest])
		for i := range reduced {
			if a, ok := first[key{rt.Dest, i}]; ok {
				reduced[i] = tracer.Hop{TTL: i + 1, Addr: a, Kind: tracer.KindTimeExceeded}
			} else {
				reduced[i] = tracer.Hop{TTL: i + 1, Kind: tracer.KindNone}
			}
		}
		addLinks(reduced, topo, 1.0)
	}
}

// inferConfidence weights links by hop-address multiplicity: a link from a
// hop position that answered with k distinct addresses (across the
// measurements toward that destination) gets confidence 1/k.
func inferConfidence(routes []*tracer.Route, topo *Topology) {
	type key struct {
		dest netip.Addr
		hop  int
	}
	seen := make(map[key]map[netip.Addr]bool)
	for _, rt := range routes {
		for i, h := range rt.Hops {
			if h.Star() {
				continue
			}
			k := key{rt.Dest, i}
			if seen[k] == nil {
				seen[k] = make(map[netip.Addr]bool)
			}
			seen[k][h.Addr] = true
		}
	}
	for _, rt := range routes {
		for _, h := range rt.Hops {
			if !h.Star() {
				topo.Nodes[h.Addr] = true
			}
		}
		for i := 0; i+1 < len(rt.Hops); i++ {
			a, b := rt.Hops[i], rt.Hops[i+1]
			if a.Star() || b.Star() || a.Addr == b.Addr {
				continue
			}
			k1 := len(seen[key{rt.Dest, i}])
			k2 := len(seen[key{rt.Dest, i + 1}])
			conf := 1.0
			if k1 > 1 {
				conf /= float64(k1)
			}
			if k2 > 1 {
				conf /= float64(k2)
			}
			l := Link{From: a.Addr, To: b.Addr}
			if conf > topo.Links[l] {
				topo.Links[l] = conf
			}
		}
	}
}

// Truth is a ground-truth topology for comparison (the simulator's actual
// adjacencies restricted to the measured region).
type Truth struct {
	Nodes map[netip.Addr]bool
	Links map[Link]bool
}

// Compare scores an inferred topology against ground truth. Links below
// minConfidence are ignored (the Rocketfuel-style cut).
type Comparison struct {
	TrueNodes, FoundNodes, MissingNodes int
	TrueLinks, FoundLinks               int
	MissingLinks, FalseLinks            int
}

// Compare evaluates the inferred topology.
func Compare(inferred *Topology, truth *Truth, minConfidence float64) Comparison {
	var c Comparison
	c.TrueNodes = len(truth.Nodes)
	for n := range truth.Nodes {
		if inferred.Nodes[n] {
			c.FoundNodes++
		}
	}
	c.MissingNodes = c.TrueNodes - c.FoundNodes
	c.TrueLinks = len(truth.Links)
	covered := map[Link]bool{}
	for l, conf := range inferred.Links {
		if conf < minConfidence {
			continue
		}
		if truth.Links[l] {
			covered[l] = true
		} else {
			c.FalseLinks++
		}
	}
	c.FoundLinks = len(covered)
	c.MissingLinks = c.TrueLinks - c.FoundLinks
	return c
}

// SortedLinks returns the inferred links in deterministic order (for
// reports and tests).
func (t *Topology) SortedLinks() []Link {
	out := make([]Link, 0, len(t.Links))
	for l := range t.Links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From.Less(out[j].From)
		}
		return out[i].To.Less(out[j].To)
	})
	return out
}
