package inference

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func addr(i int) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}) }

var dst = netip.AddrFrom4([4]byte{172, 16, 0, 1})

func route(spec ...int) *tracer.Route {
	rt := &tracer.Route{Dest: dst}
	for i, s := range spec {
		h := tracer.Hop{TTL: i + 1, Kind: tracer.KindTimeExceeded}
		if s < 0 {
			h.Kind = tracer.KindNone
		} else {
			h.Addr = addr(s)
		}
		rt.Hops = append(rt.Hops, h)
	}
	return rt
}

func TestInferAllLinks(t *testing.T) {
	topo := Infer([]*tracer.Route{route(1, 2, 4), route(1, 3, 4)}, PolicyAllLinks)
	if len(topo.Nodes) != 4 {
		t.Errorf("nodes = %d, want 4", len(topo.Nodes))
	}
	for _, l := range []Link{
		{addr(1), addr(2)}, {addr(1), addr(3)}, {addr(2), addr(4)}, {addr(3), addr(4)},
	} {
		if topo.Links[l] != 1.0 {
			t.Errorf("link %v missing or unweighted", l)
		}
	}
}

func TestInferStarsBreakLinks(t *testing.T) {
	topo := Infer([]*tracer.Route{route(1, -1, 3)}, PolicyAllLinks)
	if len(topo.Links) != 0 {
		t.Errorf("links across a star: %v", topo.Links)
	}
	if len(topo.Nodes) != 2 {
		t.Errorf("nodes = %d", len(topo.Nodes))
	}
}

func TestInferFirstAddressCollapses(t *testing.T) {
	// skitter/arts++: the second measurement's divergent hop-2 address is
	// discarded; only the first route's addresses survive.
	topo := Infer([]*tracer.Route{route(1, 2, 4), route(1, 3, 4)}, PolicyFirstAddress)
	if topo.Nodes[addr(3)] {
		t.Error("first-address policy kept a later hop address")
	}
	if _, ok := topo.Links[Link{addr(1), addr(3)}]; ok {
		t.Error("first-address policy kept a later link")
	}
	if _, ok := topo.Links[Link{addr(1), addr(2)}]; !ok {
		t.Error("first-address policy lost the first link")
	}
}

func TestInferConfidenceWeights(t *testing.T) {
	topo := Infer([]*tracer.Route{route(1, 2, 4), route(1, 3, 4)}, PolicyConfidence)
	// Hop 2 answered with two addresses: links touching it are weighted
	// down by 1/2.
	if got := topo.Links[Link{addr(1), addr(2)}]; got != 0.5 {
		t.Errorf("confidence = %v, want 0.5", got)
	}
	// A link between unambiguous hops keeps confidence 1... here both
	// mid links involve the ambiguous hop, so check the cut behaviour.
	single := Infer([]*tracer.Route{route(1, 2, 4)}, PolicyConfidence)
	if got := single.Links[Link{addr(1), addr(2)}]; got != 1.0 {
		t.Errorf("unambiguous confidence = %v, want 1.0", got)
	}
}

func TestCompare(t *testing.T) {
	truth := &Truth{
		Nodes: map[netip.Addr]bool{addr(1): true, addr(2): true, addr(3): true, addr(4): true},
		Links: map[Link]bool{
			{addr(1), addr(2)}: true,
			{addr(1), addr(3)}: true,
			{addr(2), addr(4)}: true,
			{addr(3), addr(4)}: true,
		},
	}
	// A measurement that mixed branches: false links (2->3's position).
	inferred := Infer([]*tracer.Route{route(1, 2, 4), route(1, 3, 4), route(1, 2, 3)}, PolicyAllLinks)
	c := Compare(inferred, truth, 0)
	if c.FalseLinks != 1 { // (2,3) is not a true link
		t.Errorf("false links = %d, want 1", c.FalseLinks)
	}
	if c.FoundNodes != 4 || c.MissingNodes != 0 {
		t.Errorf("nodes: %+v", c)
	}
	if c.FoundLinks != 4 || c.MissingLinks != 0 {
		t.Errorf("links: %+v", c)
	}
}

// TestFig1FalseLinksQuantified reproduces Fig. 1's core claim end to end:
// classic traceroute through a per-flow load balancer infers false links
// and misses true ones, while Paris traceroute (flow enumeration) infers
// the exact ground truth.
func TestFig1FalseLinksQuantified(t *testing.T) {
	fig := topo.BuildFigure1(4, netsim.PerFlow)
	tp := netsim.NewTransport(fig.Net)

	truth := fig1Truth(fig)

	// Classic: one route per (fresh PID) invocation, 64 rounds.
	var classicRoutes []*tracer.Route
	for i := 0; i < 64; i++ {
		rt, err := tracer.NewClassicUDP(tp, tracer.Options{
			SrcPort: uint16(32768 + i), MaxTTL: 15,
		}).Trace(fig.Dest.Addr)
		if err != nil {
			t.Fatal(err)
		}
		classicRoutes = append(classicRoutes, rt)
	}
	classicCmp := Compare(Infer(classicRoutes, PolicyAllLinks), truth, 0)
	if classicCmp.FalseLinks == 0 {
		t.Error("classic traceroute inferred no false links through the balancer")
	}

	// Paris with flow enumeration: every link true, none missing.
	var parisRoutes []*tracer.Route
	for f := 0; f < 64; f++ {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{
			SrcPort: uint16(10000 + f*31), MaxTTL: 15,
		}).Trace(fig.Dest.Addr)
		if err != nil {
			t.Fatal(err)
		}
		parisRoutes = append(parisRoutes, rt)
	}
	parisCmp := Compare(Infer(parisRoutes, PolicyAllLinks), truth, 0)
	if parisCmp.FalseLinks != 0 {
		t.Errorf("paris inferred %d false links", parisCmp.FalseLinks)
	}
	if parisCmp.MissingLinks != 0 {
		t.Errorf("paris missed %d true links (flow enumeration should find all)", parisCmp.MissingLinks)
	}

	// The skitter-style reduction discards the second branch entirely:
	// nodes go missing instead of links going false.
	skitter := Compare(Infer(classicRoutes, PolicyFirstAddress), truth, 0)
	if skitter.FalseLinks >= classicCmp.FalseLinks && skitter.MissingNodes == 0 {
		t.Errorf("first-address policy should trade false links for missing nodes: %+v vs %+v",
			skitter, classicCmp)
	}

	// The Rocketfuel-style confidence cut at 1.0 keeps only unambiguous
	// links: fewer false links than believing everything.
	rocket := Compare(Infer(classicRoutes, PolicyConfidence), truth, 1.0)
	if rocket.FalseLinks > classicCmp.FalseLinks {
		t.Errorf("confidence cut increased false links: %+v", rocket)
	}
}

// fig1Truth enumerates the measured region of Fig. 1's ground truth:
// the chain to L, the two branches, convergence at E, and the destination.
func fig1Truth(fig *topo.Figure1) *Truth {
	truth := &Truth{Nodes: map[netip.Addr]bool{}, Links: map[Link]bool{}}
	// Discover the chain prefix with one Paris flow, then overlay the
	// known diamond.
	tp := netsim.NewTransport(fig.Net)
	rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15}).Trace(fig.Dest.Addr)
	if err != nil {
		panic(err)
	}
	addrs := rt.Addresses()
	// Chain up to and including L (hop 6 = index 5).
	for i := 0; i <= 5; i++ {
		truth.Nodes[addrs[i]] = true
		if i > 0 {
			truth.Links[Link{addrs[i-1], addrs[i]}] = true
		}
	}
	for _, n := range []netip.Addr{fig.A, fig.B, fig.C, fig.D, fig.E, fig.Dest.Addr} {
		truth.Nodes[n] = true
	}
	truth.Links[Link{fig.L, fig.A}] = true
	truth.Links[Link{fig.L, fig.B}] = true
	truth.Links[Link{fig.A, fig.C}] = true
	truth.Links[Link{fig.B, fig.D}] = true
	truth.Links[Link{fig.C, fig.E}] = true
	truth.Links[Link{fig.D, fig.E}] = true
	truth.Links[Link{fig.E, fig.Dest.Addr}] = true
	return truth
}

func TestSortedLinksDeterministic(t *testing.T) {
	topo := Infer([]*tracer.Route{route(1, 2, 4), route(1, 3, 4)}, PolicyAllLinks)
	a := topo.SortedLinks()
	b := topo.SortedLinks()
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order not deterministic")
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{PolicyAllLinks, PolicyFirstAddress, PolicyConfidence} {
		if p.String() == "" || p.String() == "unknown" {
			t.Errorf("bad string for policy %d", int(p))
		}
	}
}
