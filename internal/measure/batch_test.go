package measure

import (
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/topo"
	"repro/internal/tracer"
)

// runBatchStats executes one campaign over a fresh copy of the
// deterministic (schedule-independent) scenario, batched or not, across the
// given shard count, and returns its normalized statistics.
func runBatchStats(t *testing.T, batch bool, shards, workers, dests int) *Stats {
	t.Helper()
	cfg := invarianceConfig(dests)
	cfg.Shards = shards
	sc := topo.Generate(cfg)
	camp, err := NewCampaign(sc.Transport(), Config{
		Dests:      sc.Dests,
		Rounds:     5,
		Workers:    workers,
		RoundStart: sc.RoundStart,
		PortSeed:   42,
		ShardOf:    sc.ShardOf,
		Batch:      batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(res)
	sort.Slice(s.AllAddresses, func(i, j int) bool {
		return s.AllAddresses[i].Less(s.AllAddresses[j])
	})
	return s
}

// TestCampaignBatchInvariance is the batching analogue of the worker- and
// shard-invariance gates: on a topology whose forwarding is a pure function
// of the probe bytes, routing every trace through the batched TTL ladder
// must not move a single number in the Section 4 statistics — at one shard
// and at four.
func TestCampaignBatchInvariance(t *testing.T) {
	const dests = 160
	for _, shards := range []int{1, 4} {
		seq := runBatchStats(t, false, shards, 32, dests)
		bat := runBatchStats(t, true, shards, 32, dests)
		if seq.Loops.Instances == 0 || seq.Diamonds.Total == 0 {
			t.Fatalf("shards=%d: deterministic campaign saw no anomalies; invariance check degenerate", shards)
		}
		if !reflect.DeepEqual(seq, bat) {
			t.Errorf("shards=%d: campaign statistics differ between batch off and on:\noff: %+v\non:  %+v",
				shards, seq, bat)
		}
	}
}

// TestCampaignBatchRoutesIdentical drills below the aggregates: every
// destination's measured route must match hop for hop between the
// sequential and the batched engine, across shard counts.
func TestCampaignBatchRoutesIdentical(t *testing.T) {
	run := func(batch bool, shards int) *Results {
		cfg := invarianceConfig(80)
		cfg.Shards = shards
		sc := topo.Generate(cfg)
		camp, err := NewCampaign(sc.Transport(), Config{
			Dests:      sc.Dests,
			Rounds:     3, // >1, so the hint-fed steady-state windows are covered
			Workers:    8,
			RoundStart: sc.RoundStart,
			PortSeed:   7,
			ShardOf:    sc.ShardOf,
			Batch:      batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, shards := range []int{1, 4} {
		a := run(false, shards)
		b := run(true, shards)
		for r := range a.Rounds {
			for i := range a.Rounds[r] {
				pa, pb := a.Rounds[r][i], b.Rounds[r][i]
				if !sameAddrs(pa.Paris.Addresses(), pb.Paris.Addresses()) ||
					!sameAddrs(pa.Classic.Addresses(), pb.Classic.Addresses()) ||
					pa.Paris.Halt != pb.Paris.Halt || pa.Classic.Halt != pb.Classic.Halt {
					t.Fatalf("shards=%d round %d dest %v: routes differ between batch off and on",
						shards, r, pa.Dest)
				}
			}
		}
	}
}

// nonBatchTransport hides the transport's ExchangeBatch method, modelling a
// transport (e.g. a live-network one) that only offers single exchanges.
type nonBatchTransport struct {
	tp tracer.Transport
}

func (n nonBatchTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	return n.tp.Exchange(probe)
}

func (n nonBatchTransport) Source() netip.Addr { return n.tp.Source() }

// TestCampaignBatchFallback runs a Batch-configured campaign over a
// transport with no batching support: every trace must fall back to the
// sequential loop and produce the same statistics.
func TestCampaignBatchFallback(t *testing.T) {
	run := func(tp tracer.Transport, batch bool, sc *topo.Scenario) *Stats {
		camp, err := NewCampaign(tp, Config{
			Dests:      sc.Dests,
			Rounds:     2,
			Workers:    8,
			RoundStart: sc.RoundStart,
			PortSeed:   42,
			Batch:      batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		s := Analyze(res)
		sort.Slice(s.AllAddresses, func(i, j int) bool {
			return s.AllAddresses[i].Less(s.AllAddresses[j])
		})
		return s
	}
	scA := topo.Generate(invarianceConfig(60))
	want := run(scA.Transport(), false, scA)
	scB := topo.Generate(invarianceConfig(60))
	got := run(nonBatchTransport{scB.Transport()}, true, scB)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("batch-configured campaign over a non-batching transport differs from sequential:\nwant: %+v\ngot:  %+v", want, got)
	}
}
