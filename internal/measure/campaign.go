package measure

import (
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/tracer"
)

// Config mirrors the paper's measurement setup.
type Config struct {
	// Dests is the destination list (the paper: 5,000 pingable IPv4
	// addresses in random order).
	Dests []netip.Addr
	// Rounds is the number of consecutive measurement rounds (the paper
	// completed 556).
	Rounds int
	// Workers is the number of parallel probing processes (the paper
	// launches 32, each probing 1/32 of the list).
	Workers int
	// MinTTL skips the local network (the paper sets 2).
	MinTTL int
	// MaxTTL bounds traces (the paper: no trace extends beyond 39 hops).
	MaxTTL int
	// MaxConsecutiveStars halts a trace (the paper: 8).
	MaxConsecutiveStars int
	// RoundStart, if set, is invoked before each round with the round
	// number (routing dynamics injection).
	RoundStart func(round int)
	// PortSeed derives the per-destination Paris flow identifiers — the
	// paper picks source/destination ports at random in
	// [10000, 60000] per destination.
	PortSeed int64
	// ShardOf, when the transport is sharded (topo.GenConfig.Shards > 1),
	// maps each destination to its shard index. The campaign then assigns
	// workers shard-affine destination slices: as long as there are at
	// least as many workers as shards, no worker ever probes two shards,
	// so the per-shard networks (and the cache lines of their routers)
	// are never shared across a worker's round. Nil keeps the paper's
	// contiguous 1/Workers slicing.
	ShardOf map[netip.Addr]int
	// Batch routes every trace through the transport's batched TTL
	// ladder (tracer.BatchTransport) when it offers one; each worker
	// carries one reusable tracer.Scratch across all its destinations,
	// and each destination feeds its previous round's path length back
	// as the next round's window hint. Transports without batching fall
	// back to the sequential loop. Off by default.
	Batch bool
	// BatchWindow overrides the TTL-window per batch (0: tracer
	// default). Ignored unless Batch is set.
	BatchWindow int
	// Stream folds each completed pair into a per-worker Accumulator the
	// moment it is measured instead of retaining it; Run then merges the
	// workers' partials once at campaign end and returns them in
	// Results.Stats, leaving Results.Rounds nil. Campaign memory becomes
	// O(destinations + unique routes), independent of the round count,
	// with statistics byte-identical to Analyze over retained results
	// (see the package comment's streaming contract). Off by default.
	Stream bool
	// FoldEvery batches the streaming folds: each worker stages completed
	// pairs in a small ring and folds K at a time, amortizing the
	// accumulator's cold-map walks at small round counts. Zero selects
	// DefaultFoldEvery; 1 folds every pair the moment it completes.
	// Statistics are identical for every K — batching defers folds but
	// never reorders them. Ignored unless Stream is set.
	FoldEvery int

	// FailFast restores the historical abort semantics: the first trace
	// error any worker hits stops the round and fails the campaign. By
	// default (false) the campaign degrades instead — see the package
	// comment's error-policy contract.
	FailFast bool
	// MaxAttempts bounds the tries per pair per round (the first try
	// included) when a trace fails transiently; fatal errors are never
	// retried. Zero selects 3. Ignored with FailFast.
	MaxAttempts int
	// RetryBackoff is the base delay before a retry: attempt k waits
	// RetryBackoff << (k-1), capped by RetryBackoffMax and scaled by a
	// jitter factor in [0.5, 1.5) seeded from (PortSeed, destination,
	// round, attempt) — deterministic per campaign, decorrelated across
	// destinations. Zero selects 100ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff. Zero selects 2s.
	RetryBackoffMax time.Duration
	// QuarantineAfter is the per-destination error budget: after this many
	// consecutive failed rounds the destination is quarantined — recorded
	// as Skipped, never probed again this campaign. A successful pair
	// resets the count. Zero selects 3. Ignored with FailFast.
	QuarantineAfter int
	// Sleep replaces time.Sleep for retry backoff waits; tests inject a
	// recording no-op so retry schedules are asserted without real delays.
	// Nil sleeps for real.
	Sleep func(time.Duration)

	// CheckpointPath, when set on a streaming campaign, persists a
	// resumable checkpoint to this path after every CheckpointEvery
	// completed rounds (atomic temp-file + rename). See the package
	// comment's checkpointing contract and the Checkpoint type.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in completed rounds. Zero
	// selects 1 (every round) — with it, the checkpoint on disk at any
	// kill is exactly the last completed round boundary.
	CheckpointEvery int
	// TransportState, when set, is invoked at each checkpoint and its
	// payload stored verbatim in Checkpoint.Transport. The campaign never
	// interprets it: binaries use it to persist transport cursors (e.g.
	// netsim probe counters) and restore them before resuming.
	TransportState func() json.RawMessage

	// TransportFor, when set, supplies per-worker transports: worker w
	// probes every destination of its plan through TransportFor(w) instead
	// of the shared campaign transport (a nil return falls back to the
	// shared one). Live campaigns use it to give each worker its own
	// handle on the shared socket mux, mirroring the paper's N independent
	// probing processes over one receive path; each returned transport only
	// ever sees one worker, so it need not be safe for concurrent use
	// unless it is itself shared.
	TransportFor func(worker int) tracer.Transport
}

// Defaults fills unset fields with the paper's values.
func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.MinTTL <= 0 {
		c.MinTTL = 2
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 39
	}
	if c.MaxConsecutiveStars <= 0 {
		c.MaxConsecutiveStars = 8
	}
	if c.FoldEvery <= 0 {
		c.FoldEvery = DefaultFoldEvery
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 2 * time.Second
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	return c
}

// Outcome classifies what a campaign pair represents. The zero value is
// OutcomeOK, so hand-built pairs keep their historical meaning.
type Outcome int

const (
	// OutcomeOK is a successfully measured pair; both routes are present.
	OutcomeOK Outcome = iota
	// OutcomeFailed is a pair whose measurement failed after the retry
	// budget (or fatally); both routes are nil, nothing was measured.
	OutcomeFailed
	// OutcomeSkipped is a pair never attempted because its destination was
	// quarantined by the error budget; both routes are nil.
	OutcomeSkipped
)

// String renders the outcome for logs and reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeFailed:
		return "failed"
	case OutcomeSkipped:
		return "skipped"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Pair is one destination's paired measurement in one round: the Paris
// trace and the classic trace, taken close together in time to minimise
// routing-dynamics skew (Section 4.1.2). Under the default error policy a
// pair may instead record a failure or a quarantine skip — Outcome says
// which, and the routes are nil for anything but OutcomeOK.
type Pair struct {
	Dest    netip.Addr
	Round   int
	Paris   *tracer.Route
	Classic *tracer.Route
	Outcome Outcome
}

// Results collects a campaign's output. Without Config.Stream, Rounds
// holds every measured pair; with it, pairs are folded into per-worker
// accumulators as they complete and never retained, so Rounds stays nil
// and Stats carries the merged statistics.
type Results struct {
	Config Config
	// Rounds[r] lists the pairs measured in round r, one per
	// destination. Nil when the campaign streamed.
	Rounds [][]Pair
	// Stats is the streaming campaign's output: identical to Analyze
	// over the same pairs had they been retained. Nil when the campaign
	// materialized (run Analyze on Rounds instead).
	Stats *Stats
}

// Campaign runs the full study over the given transport. Its workers share
// the transport, which must therefore be safe for concurrent use —
// netsim.Transport forwards exchanges in parallel.
type Campaign struct {
	cfg Config
	tp  tracer.Transport
	// tps[w] is worker w's resolved transport: TransportFor(w) when the
	// seam is set and returns non-nil, the shared tp otherwise.
	tps  []tracer.Transport
	base tracer.Options // per-trace options before flow-identifier seeding
	// plan[w] lists the destination indices worker w probes each round;
	// computed once at construction (shard-affine when ShardOf is set).
	plan [][]int
	// scratch[w] is worker w's reusable batch buffer set: the plan is
	// fixed, so a destination index is only ever probed by one worker
	// and the scratch never crosses goroutines.
	scratch []*tracer.Scratch
	// parisHint and clasHint record each destination's previous ladder
	// length per discipline; the next round sizes its first batch window
	// from them, so a stable route is probed in exactly one batch with
	// no overshoot. Indexed by destination; each slot is owned by the
	// single worker whose plan covers it.
	parisHint, clasHint []int
	// parisSrc and parisDst are each destination's Paris flow ports,
	// derived once at construction time alongside the worker plan — they
	// are a pure function of (PortSeed, destination), so deriving them
	// per pair per round was wasted work. Only the classic tracer's
	// per-(round, destination) pseudo-PID source port stays per-round.
	parisSrc, parisDst []uint16
	// resume, when non-nil, is the state loaded by Resume; the next
	// RunContext consumes it and continues from its round cursor.
	resume *resumeState
}

// destHealth is one destination's error budget: how many consecutive rounds
// have failed, and whether the budget is exhausted. Each slot is owned by
// the single worker whose plan covers the destination, so no locking.
type destHealth struct {
	consecFails int
	quarantined bool
}

// resumeState carries a loaded checkpoint into the next RunContext call.
type resumeState struct {
	nextRound           int
	accs                []*Accumulator
	health              []destHealth
	parisHint, clasHint []int
}

// NewCampaign creates a campaign; cfg.Dests must be non-empty and free of
// duplicates (statistics are per destination — the accumulators and the
// worker plan both assume one owner per address).
func NewCampaign(tp tracer.Transport, cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Dests) == 0 {
		return nil, fmt.Errorf("measure: empty destination list")
	}
	seen := make(map[netip.Addr]bool, len(cfg.Dests))
	for _, d := range cfg.Dests {
		if seen[d] {
			return nil, fmt.Errorf("measure: duplicate destination %v", d)
		}
		seen[d] = true
	}
	c := &Campaign{cfg: cfg, tp: tp, base: tracer.Options{
		MinTTL:              cfg.MinTTL,
		MaxTTL:              cfg.MaxTTL,
		MaxConsecutiveStars: cfg.MaxConsecutiveStars,
	}, plan: workerPlan(cfg)}
	c.tps = make([]tracer.Transport, cfg.Workers)
	for w := range c.tps {
		c.tps[w] = tp
		if cfg.TransportFor != nil {
			if t := cfg.TransportFor(w); t != nil {
				c.tps[w] = t
			}
		}
		if c.tps[w] == nil {
			return nil, fmt.Errorf("measure: no transport for worker %d (nil shared transport and no TransportFor override)", w)
		}
	}
	c.parisSrc = make([]uint16, len(cfg.Dests))
	c.parisDst = make([]uint16, len(cfg.Dests))
	for i, d := range cfg.Dests {
		c.parisSrc[i] = portFor(cfg.PortSeed, d, 0x517e)
		c.parisDst[i] = portFor(cfg.PortSeed, d, 0xd057)
	}
	if cfg.Batch {
		c.base.Batch = true
		c.base.BatchWindow = cfg.BatchWindow
		c.scratch = make([]*tracer.Scratch, cfg.Workers)
		for w := range c.scratch {
			c.scratch[w] = tracer.NewScratch()
		}
		c.parisHint = make([]int, len(cfg.Dests))
		c.clasHint = make([]int, len(cfg.Dests))
	}
	return c, nil
}

// workerPlan partitions the destination indices among the workers. Without
// a shard map this is the paper's contiguous 1/Workers slicing. With one,
// indices are first grouped by shard (stable within a shard, preserving
// list order): when Workers >= shards each shard gets its own contiguous
// block of workers sized W/S (the first W mod S shards getting one extra),
// so no two shards ever share a worker; with fewer workers than shards,
// whole shards are dealt round-robin so each still belongs to one worker.
func workerPlan(cfg Config) [][]int {
	plan := make([][]int, cfg.Workers)
	if cfg.ShardOf == nil {
		all := make([]int, len(cfg.Dests))
		for i := range all {
			all[i] = i
		}
		for w, c := range chunk(all, cfg.Workers) {
			plan[w] = c
		}
		return plan
	}
	maxShard := 0
	for _, s := range cfg.ShardOf {
		if s > maxShard {
			maxShard = s
		}
	}
	byShard := make([][]int, maxShard+1)
	for i, d := range cfg.Dests {
		s := cfg.ShardOf[d] // absent destinations group into shard 0
		byShard[s] = append(byShard[s], i)
	}
	if cfg.Workers < len(byShard) {
		for s, idxs := range byShard {
			w := s % cfg.Workers
			plan[w] = append(plan[w], idxs...)
		}
		return plan
	}
	w := 0
	for s, idxs := range byShard {
		k := cfg.Workers / len(byShard)
		if s < cfg.Workers%len(byShard) {
			k++
		}
		for _, c := range chunk(idxs, k) {
			plan[w] = append(plan[w], c...)
			w++
		}
	}
	return plan
}

// chunk splits idxs into k contiguous, maximally even pieces (the paper's
// 1/Workers slicing); trailing pieces may be empty when k > len(idxs).
func chunk(idxs []int, k int) [][]int {
	out := make([][]int, k)
	for j := 0; j < k; j++ {
		lo := j * len(idxs) / k
		hi := (j + 1) * len(idxs) / k
		out[j] = idxs[lo:hi]
	}
	return out
}

// portFor derives the stable per-destination Paris flow ports in the
// paper's [10000, 60000] range.
func portFor(seed int64, dest netip.Addr, salt uint64) uint16 {
	a := dest.As4()
	x := uint64(seed) ^ salt
	for _, b := range a {
		x = x*1099511628211 + uint64(b) // FNV-style mix
	}
	return uint16(10000 + x%50000)
}

// Run executes every round and returns the collected results: the retained
// pairs, or, with Config.Stream, the merged statistics of per-worker
// accumulators that consumed each pair as it completed. Run may be called
// repeatedly; a streaming run starts from fresh accumulators each time
// (unless Resume loaded a checkpoint first). Run is RunContext with a
// background context.
func (c *Campaign) Run() (*Results, error) { return c.RunContext(context.Background()) }

// RunContext is Run with prompt cancellation: when ctx is canceled the
// workers stop at their next destination, the interrupted round is never
// checkpointed, and RunContext returns the context's error together with
// the partial results measured so far (a streaming campaign still merges
// its partials into advisory Stats — callers wanting only complete rounds
// should resume from the checkpoint instead).
func (c *Campaign) RunContext(ctx context.Context) (*Results, error) {
	res := &Results{Config: c.cfg}
	health := make([]destHealth, len(c.cfg.Dests))
	var accs []*Accumulator
	var rings []foldRing
	if c.cfg.Stream {
		accs = make([]*Accumulator, c.cfg.Workers)
		for w := range accs {
			accs[w] = NewAccumulator()
		}
		rings = make([]foldRing, c.cfg.Workers)
	}
	start := 0
	if rs := c.resume; rs != nil {
		c.resume = nil
		start = rs.nextRound
		copy(health, rs.health)
		if c.cfg.Stream {
			accs = rs.accs
		}
		if c.cfg.Batch {
			copy(c.parisHint, rs.parisHint)
			copy(c.clasHint, rs.clasHint)
		}
		// Replay the completed rounds' dynamics draws so the resumed
		// rounds see the same topology evolution the uninterrupted run
		// would have (topo.Generate's RoundStart draws sequentially from
		// one seeded stream).
		if c.cfg.RoundStart != nil {
			for r := 0; r < start; r++ {
				c.cfg.RoundStart(r)
			}
		}
	}
	canceled := false
	for r := start; r < c.cfg.Rounds; r++ {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		if c.cfg.RoundStart != nil {
			c.cfg.RoundStart(r)
		}
		pairs, err := c.runRound(ctx, r, accs, rings, health)
		if err != nil {
			return nil, err
		}
		if ctx.Err() != nil {
			// The round was interrupted partway: its partial folds stay
			// in the accumulators for the advisory partial Stats below,
			// but the checkpoint cursor never advances past a round that
			// did not complete.
			canceled = true
			break
		}
		if !c.cfg.Stream {
			res.Rounds = append(res.Rounds, pairs)
		}
		if c.cfg.Stream && c.cfg.CheckpointPath != "" &&
			((r+1)%c.cfg.CheckpointEvery == 0 || r == c.cfg.Rounds-1) {
			// Drain the fold rings first: between rounds the caller
			// goroutine holds the happens-before edge from wg.Wait, so
			// the flush is race-free and the accumulators hold exactly
			// the completed rounds.
			for w := range rings {
				rings[w].flush(accs[w])
			}
			ck := c.checkpoint(r+1, accs, health)
			if err := ck.Save(c.cfg.CheckpointPath); err != nil {
				return nil, fmt.Errorf("measure: checkpoint after round %d: %w", r, err)
			}
		}
	}
	if c.cfg.Stream {
		// Drain the per-worker fold rings before the partials meet: a ring
		// is only ever touched by its worker, and the final round's
		// wg.Wait makes these flushes race-free on the caller goroutine.
		for w := range rings {
			rings[w].flush(accs[w])
		}
		res.Stats = Merge(c.cfg.Rounds, len(c.cfg.Dests), accs...)
	}
	if canceled {
		return res, ctx.Err()
	}
	return res, nil
}

// runRound measures every destination once with Workers parallel workers,
// each holding its planned share of the list (the paper's 32 processes each
// probe 1/32 of the destinations; sharded campaigns use shard-affine
// shares). With accs non-nil (streaming), worker w folds each pair into
// accs[w] the moment it completes and nothing is retained; otherwise the
// pairs are collected into a slice. Under the default error policy
// measureDest absorbs failures into Failed/Skipped pairs and runRound never
// errors; with FailFast the first error any worker hits aborts the whole
// round — a stop channel closed under a sync.Once halts the remaining
// workers at their next destination instead of letting them probe out their
// slices silently. Context cancellation stops workers the same way in both
// modes, without an error of its own (the caller reads ctx.Err()).
func (c *Campaign) runRound(ctx context.Context, round int, accs []*Accumulator, rings []foldRing, health []destHealth) ([]Pair, error) {
	dests := c.cfg.Dests
	var out []Pair
	if accs == nil {
		out = make([]Pair, len(dests))
	}
	var (
		wg       sync.WaitGroup
		stopOnce sync.Once
		stop     = make(chan struct{})
		firstErr error
	)
	for w := 0; w < c.cfg.Workers; w++ {
		if len(c.plan[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				p, err := c.measureDest(ctx, w, round, i, dests[i], &health[i])
				if err != nil {
					stopOnce.Do(func() {
						firstErr = err
						close(stop)
					})
					return
				}
				if accs != nil {
					rings[w].push(accs[w], p, c.cfg.FoldEvery)
				} else {
					out[i] = p
				}
			}
		}(w, c.plan[w])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// measureDest applies the error policy around one destination's pair: skip
// when quarantined, retry transient failures with seeded-jitter backoff,
// charge the error budget on exhaustion. With FailFast it is measureOne
// plus nothing — errors propagate and abort the round.
func (c *Campaign) measureDest(ctx context.Context, w, round, idx int, d netip.Addr, h *destHealth) (Pair, error) {
	if !c.cfg.FailFast && h.quarantined {
		return Pair{Dest: d, Round: round, Outcome: OutcomeSkipped}, nil
	}
	p, err := c.measureOne(w, round, idx, d)
	if err == nil {
		h.consecFails = 0
		return p, nil
	}
	if c.cfg.FailFast {
		return Pair{}, err
	}
	for attempt := 1; attempt < c.cfg.MaxAttempts && tracer.IsTransient(err) && ctx.Err() == nil; attempt++ {
		c.sleep(c.backoff(d, round, attempt))
		if p, err = c.measureOne(w, round, idx, d); err == nil {
			h.consecFails = 0
			return p, nil
		}
	}
	h.consecFails++
	if h.consecFails >= c.cfg.QuarantineAfter {
		h.quarantined = true
	}
	return Pair{Dest: d, Round: round, Outcome: OutcomeFailed}, nil
}

// backoff is the delay before retry attempt k (1-based): exponential from
// RetryBackoff, capped at RetryBackoffMax, scaled by a jitter factor in
// [0.5, 1.5) drawn from a SplitMix64 hash of (PortSeed, destination, round,
// attempt) — deterministic for a campaign, decorrelated across destinations
// so synchronized failures do not retry in lockstep.
func (c *Campaign) backoff(d netip.Addr, round, attempt int) time.Duration {
	delay := c.cfg.RetryBackoff << (attempt - 1)
	if delay <= 0 || delay > c.cfg.RetryBackoffMax {
		delay = c.cfg.RetryBackoffMax
	}
	a := d.As4()
	x := uint64(c.cfg.PortSeed)
	x ^= uint64(a[0])<<24 | uint64(a[1])<<16 | uint64(a[2])<<8 | uint64(a[3])
	x ^= uint64(round)<<32 ^ uint64(attempt)<<56
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	jitter := 0.5 + float64(x>>11)/float64(1<<53)
	return time.Duration(float64(delay) * jitter)
}

// sleep waits through the configured seam (tests) or for real.
func (c *Campaign) sleep(d time.Duration) {
	if c.cfg.Sleep != nil {
		c.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// measureOne performs the paper's two steps for destination d (the idx-th
// entry of the list, probed by worker w) through the shared measurePair
// core (prober.go). In batch mode both traces reuse worker w's scratch
// buffers and seed their first window from the destination's previous
// ladder length.
func (c *Campaign) measureOne(w, round, idx int, d netip.Addr) (Pair, error) {
	var scratch *tracer.Scratch
	var hints PathHints
	if c.cfg.Batch {
		scratch = c.scratch[w]
		hints = PathHints{Paris: c.parisHint[idx], Classic: c.clasHint[idx]}
	}
	p, newHints, err := measurePair(c.tps[w], c.base, scratch, c.cfg.PortSeed,
		d, round, c.parisSrc[idx], c.parisDst[idx], hints)
	if err != nil {
		return Pair{}, err
	}
	if c.cfg.Batch {
		c.parisHint[idx] = newHints.Paris
		c.clasHint[idx] = newHints.Classic
	}
	return p, nil
}
