// Package measure implements the paper's measurement methodology
// (Section 3): paired classic/Paris traceroutes from one source toward a
// destination list, run by parallel workers over repeated rounds, followed
// by the anomaly statistics of Section 4.
//
// # Streaming contract
//
// With Config.Stream set, the campaign computes its statistics while it
// probes instead of materializing every Pair: each worker owns one
// Accumulator and folds every pair it measures as the pair completes —
// staged through a small per-worker ring that folds Config.FoldEvery pairs
// at a time (deferring folds for map locality, never reordering them).
// Ownership does the synchronization — the worker plan is fixed
// for the campaign's lifetime, so all of a destination's pairs flow
// through the one worker that owns the destination, in round order, and no
// accumulator (nor any per-destination state inside it) is ever touched by
// two goroutines. The partials meet exactly once, in Merge after the last
// round, on the caller's goroutine (the per-round WaitGroup provides the
// happens-before edge).
//
// Inside an accumulator, interning exploits round-over-round route
// stability: each destination's distinct routes are keyed by
// tracer.Route.Fingerprint and verified with Route.Equal against the
// canonical interned object, so a fingerprint collision can only cost
// speed, never correctness. Per-route work (loop/cycle detection, response
// tallies, diamond-graph contribution) is memoized on the interned route;
// classic-vs-Paris classification is memoized per fingerprint pair.
// Interning equality ignores per-exchange quantities (RTTs and response IP
// IDs, which differ every round even on a stable path); the two
// classification rules that consult IP IDs are gated on path-stable
// patterns and re-evaluated against each round's route, keeping the
// statistics byte-identical. A stable path therefore costs zero anomaly
// work per round, and campaign memory is O(destinations + unique routes)
// — independent of the round count — where materialized results grow
// O(destinations × rounds).
//
// Streaming and materialize-then-Analyze produce byte-identical Stats (one
// implementation, pinned by TestCampaignStreamInvariance).
package measure

import (
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/tracer"
)

// Config mirrors the paper's measurement setup.
type Config struct {
	// Dests is the destination list (the paper: 5,000 pingable IPv4
	// addresses in random order).
	Dests []netip.Addr
	// Rounds is the number of consecutive measurement rounds (the paper
	// completed 556).
	Rounds int
	// Workers is the number of parallel probing processes (the paper
	// launches 32, each probing 1/32 of the list).
	Workers int
	// MinTTL skips the local network (the paper sets 2).
	MinTTL int
	// MaxTTL bounds traces (the paper: no trace extends beyond 39 hops).
	MaxTTL int
	// MaxConsecutiveStars halts a trace (the paper: 8).
	MaxConsecutiveStars int
	// RoundStart, if set, is invoked before each round with the round
	// number (routing dynamics injection).
	RoundStart func(round int)
	// PortSeed derives the per-destination Paris flow identifiers — the
	// paper picks source/destination ports at random in
	// [10000, 60000] per destination.
	PortSeed int64
	// ShardOf, when the transport is sharded (topo.GenConfig.Shards > 1),
	// maps each destination to its shard index. The campaign then assigns
	// workers shard-affine destination slices: as long as there are at
	// least as many workers as shards, no worker ever probes two shards,
	// so the per-shard networks (and the cache lines of their routers)
	// are never shared across a worker's round. Nil keeps the paper's
	// contiguous 1/Workers slicing.
	ShardOf map[netip.Addr]int
	// Batch routes every trace through the transport's batched TTL
	// ladder (tracer.BatchTransport) when it offers one; each worker
	// carries one reusable tracer.Scratch across all its destinations,
	// and each destination feeds its previous round's path length back
	// as the next round's window hint. Transports without batching fall
	// back to the sequential loop. Off by default.
	Batch bool
	// BatchWindow overrides the TTL-window per batch (0: tracer
	// default). Ignored unless Batch is set.
	BatchWindow int
	// Stream folds each completed pair into a per-worker Accumulator the
	// moment it is measured instead of retaining it; Run then merges the
	// workers' partials once at campaign end and returns them in
	// Results.Stats, leaving Results.Rounds nil. Campaign memory becomes
	// O(destinations + unique routes), independent of the round count,
	// with statistics byte-identical to Analyze over retained results
	// (see the package comment's streaming contract). Off by default.
	Stream bool
	// FoldEvery batches the streaming folds: each worker stages completed
	// pairs in a small ring and folds K at a time, amortizing the
	// accumulator's cold-map walks at small round counts. Zero selects
	// DefaultFoldEvery; 1 folds every pair the moment it completes.
	// Statistics are identical for every K — batching defers folds but
	// never reorders them. Ignored unless Stream is set.
	FoldEvery int
}

// Defaults fills unset fields with the paper's values.
func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.MinTTL <= 0 {
		c.MinTTL = 2
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 39
	}
	if c.MaxConsecutiveStars <= 0 {
		c.MaxConsecutiveStars = 8
	}
	if c.FoldEvery <= 0 {
		c.FoldEvery = DefaultFoldEvery
	}
	return c
}

// Pair is one destination's paired measurement in one round: the Paris
// trace and the classic trace, taken close together in time to minimise
// routing-dynamics skew (Section 4.1.2).
type Pair struct {
	Dest    netip.Addr
	Round   int
	Paris   *tracer.Route
	Classic *tracer.Route
}

// Results collects a campaign's output. Without Config.Stream, Rounds
// holds every measured pair; with it, pairs are folded into per-worker
// accumulators as they complete and never retained, so Rounds stays nil
// and Stats carries the merged statistics.
type Results struct {
	Config Config
	// Rounds[r] lists the pairs measured in round r, one per
	// destination. Nil when the campaign streamed.
	Rounds [][]Pair
	// Stats is the streaming campaign's output: identical to Analyze
	// over the same pairs had they been retained. Nil when the campaign
	// materialized (run Analyze on Rounds instead).
	Stats *Stats
}

// Campaign runs the full study over the given transport. Its workers share
// the transport, which must therefore be safe for concurrent use —
// netsim.Transport forwards exchanges in parallel.
type Campaign struct {
	cfg  Config
	tp   tracer.Transport
	base tracer.Options // per-trace options before flow-identifier seeding
	// plan[w] lists the destination indices worker w probes each round;
	// computed once at construction (shard-affine when ShardOf is set).
	plan [][]int
	// scratch[w] is worker w's reusable batch buffer set: the plan is
	// fixed, so a destination index is only ever probed by one worker
	// and the scratch never crosses goroutines.
	scratch []*tracer.Scratch
	// parisHint and clasHint record each destination's previous ladder
	// length per discipline; the next round sizes its first batch window
	// from them, so a stable route is probed in exactly one batch with
	// no overshoot. Indexed by destination; each slot is owned by the
	// single worker whose plan covers it.
	parisHint, clasHint []int
	// parisSrc and parisDst are each destination's Paris flow ports,
	// derived once at construction time alongside the worker plan — they
	// are a pure function of (PortSeed, destination), so deriving them
	// per pair per round was wasted work. Only the classic tracer's
	// per-(round, destination) pseudo-PID source port stays per-round.
	parisSrc, parisDst []uint16
}

// NewCampaign creates a campaign; cfg.Dests must be non-empty and free of
// duplicates (statistics are per destination — the accumulators and the
// worker plan both assume one owner per address).
func NewCampaign(tp tracer.Transport, cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Dests) == 0 {
		return nil, fmt.Errorf("measure: empty destination list")
	}
	seen := make(map[netip.Addr]bool, len(cfg.Dests))
	for _, d := range cfg.Dests {
		if seen[d] {
			return nil, fmt.Errorf("measure: duplicate destination %v", d)
		}
		seen[d] = true
	}
	c := &Campaign{cfg: cfg, tp: tp, base: tracer.Options{
		MinTTL:              cfg.MinTTL,
		MaxTTL:              cfg.MaxTTL,
		MaxConsecutiveStars: cfg.MaxConsecutiveStars,
	}, plan: workerPlan(cfg)}
	c.parisSrc = make([]uint16, len(cfg.Dests))
	c.parisDst = make([]uint16, len(cfg.Dests))
	for i, d := range cfg.Dests {
		c.parisSrc[i] = portFor(cfg.PortSeed, d, 0x517e)
		c.parisDst[i] = portFor(cfg.PortSeed, d, 0xd057)
	}
	if cfg.Batch {
		c.base.Batch = true
		c.base.BatchWindow = cfg.BatchWindow
		c.scratch = make([]*tracer.Scratch, cfg.Workers)
		for w := range c.scratch {
			c.scratch[w] = tracer.NewScratch()
		}
		c.parisHint = make([]int, len(cfg.Dests))
		c.clasHint = make([]int, len(cfg.Dests))
	}
	return c, nil
}

// workerPlan partitions the destination indices among the workers. Without
// a shard map this is the paper's contiguous 1/Workers slicing. With one,
// indices are first grouped by shard (stable within a shard, preserving
// list order): when Workers >= shards each shard gets its own contiguous
// block of workers sized W/S (the first W mod S shards getting one extra),
// so no two shards ever share a worker; with fewer workers than shards,
// whole shards are dealt round-robin so each still belongs to one worker.
func workerPlan(cfg Config) [][]int {
	plan := make([][]int, cfg.Workers)
	if cfg.ShardOf == nil {
		all := make([]int, len(cfg.Dests))
		for i := range all {
			all[i] = i
		}
		for w, c := range chunk(all, cfg.Workers) {
			plan[w] = c
		}
		return plan
	}
	maxShard := 0
	for _, s := range cfg.ShardOf {
		if s > maxShard {
			maxShard = s
		}
	}
	byShard := make([][]int, maxShard+1)
	for i, d := range cfg.Dests {
		s := cfg.ShardOf[d] // absent destinations group into shard 0
		byShard[s] = append(byShard[s], i)
	}
	if cfg.Workers < len(byShard) {
		for s, idxs := range byShard {
			w := s % cfg.Workers
			plan[w] = append(plan[w], idxs...)
		}
		return plan
	}
	w := 0
	for s, idxs := range byShard {
		k := cfg.Workers / len(byShard)
		if s < cfg.Workers%len(byShard) {
			k++
		}
		for _, c := range chunk(idxs, k) {
			plan[w] = append(plan[w], c...)
			w++
		}
	}
	return plan
}

// chunk splits idxs into k contiguous, maximally even pieces (the paper's
// 1/Workers slicing); trailing pieces may be empty when k > len(idxs).
func chunk(idxs []int, k int) [][]int {
	out := make([][]int, k)
	for j := 0; j < k; j++ {
		lo := j * len(idxs) / k
		hi := (j + 1) * len(idxs) / k
		out[j] = idxs[lo:hi]
	}
	return out
}

// portFor derives the stable per-destination Paris flow ports in the
// paper's [10000, 60000] range.
func portFor(seed int64, dest netip.Addr, salt uint64) uint16 {
	a := dest.As4()
	x := uint64(seed) ^ salt
	for _, b := range a {
		x = x*1099511628211 + uint64(b) // FNV-style mix
	}
	return uint16(10000 + x%50000)
}

// Run executes every round and returns the collected results: the retained
// pairs, or, with Config.Stream, the merged statistics of per-worker
// accumulators that consumed each pair as it completed. Run may be called
// repeatedly; a streaming run starts from fresh accumulators each time.
func (c *Campaign) Run() (*Results, error) {
	res := &Results{Config: c.cfg}
	var accs []*Accumulator
	var rings []foldRing
	if c.cfg.Stream {
		accs = make([]*Accumulator, c.cfg.Workers)
		for w := range accs {
			accs[w] = NewAccumulator()
		}
		rings = make([]foldRing, c.cfg.Workers)
	}
	for r := 0; r < c.cfg.Rounds; r++ {
		if c.cfg.RoundStart != nil {
			c.cfg.RoundStart(r)
		}
		pairs, err := c.runRound(r, accs, rings)
		if err != nil {
			return nil, err
		}
		if !c.cfg.Stream {
			res.Rounds = append(res.Rounds, pairs)
		}
	}
	if c.cfg.Stream {
		// Drain the per-worker fold rings before the partials meet: a ring
		// is only ever touched by its worker, and the final round's
		// wg.Wait makes these flushes race-free on the caller goroutine.
		for w := range rings {
			rings[w].flush(accs[w])
		}
		res.Stats = Merge(c.cfg.Rounds, len(c.cfg.Dests), accs...)
	}
	return res, nil
}

// runRound measures every destination once with Workers parallel workers,
// each holding its planned share of the list (the paper's 32 processes each
// probe 1/32 of the destinations; sharded campaigns use shard-affine
// shares). With accs non-nil (streaming), worker w folds each pair into
// accs[w] the moment it completes and nothing is retained; otherwise the
// pairs are collected into a slice. The first error any worker hits aborts
// the whole round: a done channel closed under a sync.Once stops the
// remaining workers at their next destination instead of letting them probe
// out their slices silently.
func (c *Campaign) runRound(round int, accs []*Accumulator, rings []foldRing) ([]Pair, error) {
	dests := c.cfg.Dests
	var out []Pair
	if accs == nil {
		out = make([]Pair, len(dests))
	}
	var (
		wg       sync.WaitGroup
		stopOnce sync.Once
		stop     = make(chan struct{})
		firstErr error
	)
	for w := 0; w < c.cfg.Workers; w++ {
		if len(c.plan[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				select {
				case <-stop:
					return
				default:
				}
				p, err := c.measureOne(w, round, i, dests[i])
				if err != nil {
					stopOnce.Do(func() {
						firstErr = err
						close(stop)
					})
					return
				}
				if accs != nil {
					rings[w].push(accs[w], p, c.cfg.FoldEvery)
				} else {
					out[i] = p
				}
			}
		}(w, c.plan[w])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// measureOne performs the paper's two steps for destination d (the idx-th
// entry of the list, probed by worker w): a Paris traceroute with an
// unchanging five-tuple, then a classic traceroute with the same timing
// parameters. In batch mode both traces reuse worker w's scratch buffers
// and seed their first window from the destination's previous ladder
// length.
func (c *Campaign) measureOne(w, round, idx int, d netip.Addr) (Pair, error) {
	parisOpts := c.base
	parisOpts.SrcPort = c.parisSrc[idx]
	parisOpts.DstPort = c.parisDst[idx]
	if c.cfg.Batch {
		parisOpts.Scratch = c.scratch[w]
		parisOpts.PathHint = c.parisHint[idx]
	}
	paris := tracer.NewParisUDP(c.tp, parisOpts)
	pr, err := paris.Trace(d)
	if err != nil {
		return Pair{}, fmt.Errorf("measure: paris trace to %v: %w", d, err)
	}

	// Classic traceroute sets its Source Port to PID + 32768; every
	// invocation is a fresh process, so the port — part of the flow
	// identifier — changes per trace. Emulate with a per-(round, dest)
	// pseudo-PID.
	classicOpts := c.base
	classicOpts.SrcPort = 32768 + uint16(portFor(c.cfg.PortSeed, d, uint64(round)*0x9e37+0xc1a5)%30000)
	if c.cfg.Batch {
		classicOpts.Scratch = c.scratch[w]
		classicOpts.PathHint = c.clasHint[idx]
	}
	classic := tracer.NewClassicUDP(c.tp, classicOpts)
	cr, err := classic.Trace(d)
	if err != nil {
		return Pair{}, fmt.Errorf("measure: classic trace to %v: %w", d, err)
	}

	if c.cfg.Batch {
		c.parisHint[idx] = len(pr.Hops)
		c.clasHint[idx] = len(cr.Hops)
	}
	return Pair{Dest: d, Round: round, Paris: pr, Classic: cr}, nil
}
