package measure

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/atomicio"
	"repro/internal/tracer"
)

// This file is the campaign's checkpoint/restore layer. A checkpoint
// captures everything a streaming campaign needs to continue after a kill:
// the round cursor, the per-destination error budgets, the batching path
// hints, an opaque transport cursor, and each worker accumulator's partial
// statistics. The accumulator state splits into two kinds — the scalar
// tallies and address sets, which serialize verbatim, and the derived
// memo/graph layers, which are NOT serialized: restore replays each
// destination's interned routes (kept with full hop data, in first-seen
// order) through the same analyzeRoute/intern code that built them, so the
// memos, diamond graphs, and address bookkeeping are rebuilt bit-for-bit by
// construction instead of by a parallel serialization format that could
// drift. Pair-classification memos are dropped entirely and recomputed
// lazily — they are a pure function of the interned routes.
//
// Compatibility contract: Checkpoint.Version gates the schema, and Digest
// hashes the campaign shape (destination list, rounds, workers, TTL policy,
// port seed, batch/stream switches), so a checkpoint only ever resumes the
// exact campaign that wrote it. Files are written with an atomic temp-file
// + rename, so a kill during Save leaves the previous checkpoint intact.
//
// The one state this format cannot carry is a fingerprint-collided route
// (two unequal routes of one destination sharing a 64-bit FNV hash): only
// the canonical route of each fingerprint is retained. Such a route was
// never memoized in the first place — folds re-analyze it idempotently — so
// statistics stay correct; only its diamond-graph echo would be rebuilt one
// round late after a resume.

// CheckpointVersion is the schema version Save writes and Load accepts.
// Version 2 added the accumulator RTT tallies (AccState.RTTSamples and
// friends); version-1 files are refused rather than resumed with silently
// zeroed RTT statistics.
const CheckpointVersion = 2

// Checkpoint is a streaming campaign's serialized resumable state.
type Checkpoint struct {
	// Version gates the schema.
	Version int
	// Digest fingerprints the campaign configuration that wrote the
	// checkpoint; Resume refuses a mismatch.
	Digest uint64
	// NextRound is the first round the resumed campaign will run; rounds
	// [0, NextRound) are fully folded into Workers.
	NextRound int
	// Health is the per-destination error budget, indexed like
	// Config.Dests.
	Health []HealthState
	// ParisHint and ClasHint are the batching path-length hints, indexed
	// like Config.Dests; present only for batched campaigns.
	ParisHint []int `json:",omitempty"`
	ClasHint  []int `json:",omitempty"`
	// Transport is the opaque payload of Config.TransportState: transport
	// cursors the campaign persists but never interprets.
	Transport json.RawMessage `json:",omitempty"`
	// Workers holds one accumulator snapshot per campaign worker, in
	// worker order (the worker plan is a pure function of the config, so
	// snapshot w resumes as worker w's accumulator).
	Workers []AccState
}

// HealthState is one destination's serialized error budget.
type HealthState struct {
	ConsecFails int  `json:",omitempty"`
	Quarantined bool `json:",omitempty"`
}

// AccState is one worker accumulator's serialized partial statistics.
type AccState struct {
	Routes, Reached, Responses, MidStars     int
	RoutesWithLoop, LoopInstances, ParisOnly int
	RoutesWithCycle, CycleInstances          int
	Failed, Skipped                          int
	// Hop RTT tallies (integer nanoseconds; see Accumulator).
	RTTSamples                int   `json:",omitempty"`
	RTTSum                    int64 `json:",omitempty"`
	RTTMin, RTTMax            int64 `json:",omitempty"`
	LoopByCause, CycleByCause map[anomaly.Cause]int
	// Address sets, sorted ascending for deterministic files.
	Addrs, LoopAddrs, CycleAddrs []netip.Addr
	SkippedDests                 []netip.Addr `json:",omitempty"`
	// Dests holds the per-destination states, sorted by address.
	Dests []DestCheckpoint
}

// DestCheckpoint is one destination's serialized accumulator state.
type DestCheckpoint struct {
	Dest              netip.Addr
	SawLoop, SawCycle bool `json:",omitempty"`
	// Routes lists the destination's interned routes — classic and Paris
	// interleaved — in first-seen order, each with full hop data (RTTs
	// and IP IDs included: the memoized pair classification consults the
	// first-seen route's IP IDs, so the canonical object must survive the
	// round trip exactly).
	Routes []RouteCheckpoint
	// LoopSigs and CycleSigs are the signature spans, sorted by address.
	LoopSigs  []SigCheckpoint `json:",omitempty"`
	CycleSigs []SigCheckpoint `json:",omitempty"`
}

// RouteCheckpoint is one interned route with its discipline.
type RouteCheckpoint struct {
	Classic bool `json:",omitempty"`
	Route   *tracer.Route
}

// SigCheckpoint is one signature span.
type SigCheckpoint struct {
	Addr      netip.Addr
	LastRound int
	Rounds    int
}

// configDigest hashes the campaign shape a checkpoint is only valid for.
func (c *Campaign) configDigest() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(x uint64) {
		h = (h ^ x) * prime
	}
	mix(uint64(len(c.cfg.Dests)))
	for _, d := range c.cfg.Dests {
		a := d.As4()
		mix(uint64(a[0])<<24 | uint64(a[1])<<16 | uint64(a[2])<<8 | uint64(a[3]))
	}
	mix(uint64(c.cfg.Rounds))
	mix(uint64(c.cfg.Workers))
	mix(uint64(c.cfg.MinTTL))
	mix(uint64(c.cfg.MaxTTL))
	mix(uint64(c.cfg.MaxConsecutiveStars))
	mix(uint64(c.cfg.PortSeed))
	flags := uint64(0)
	if c.cfg.Batch {
		flags |= 1
	}
	if c.cfg.Stream {
		flags |= 2
	}
	mix(flags)
	return h
}

// checkpoint snapshots the campaign after nextRound-1 completed. Caller
// must have flushed the fold rings (RunContext checkpoints only between
// rounds, where the wg.Wait edge makes the accumulators quiescent).
func (c *Campaign) checkpoint(nextRound int, accs []*Accumulator, health []destHealth) *Checkpoint {
	ck := &Checkpoint{
		Version:   CheckpointVersion,
		Digest:    c.configDigest(),
		NextRound: nextRound,
		Health:    make([]HealthState, len(health)),
		Workers:   make([]AccState, len(accs)),
	}
	for i, h := range health {
		ck.Health[i] = HealthState{ConsecFails: h.consecFails, Quarantined: h.quarantined}
	}
	if c.cfg.Batch {
		ck.ParisHint = append([]int(nil), c.parisHint...)
		ck.ClasHint = append([]int(nil), c.clasHint...)
	}
	if c.cfg.TransportState != nil {
		ck.Transport = c.cfg.TransportState()
	}
	for w, a := range accs {
		ck.Workers[w] = snapshotAcc(a)
	}
	return ck
}

// sortedAddrs flattens an address set ascending.
func sortedAddrs(set map[netip.Addr]bool) []netip.Addr {
	if len(set) == 0 {
		return nil
	}
	out := make([]netip.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// sortedSigs flattens a signature-span map by ascending address.
func sortedSigs(sigs map[netip.Addr]*sigSpan) []SigCheckpoint {
	if len(sigs) == 0 {
		return nil
	}
	out := make([]SigCheckpoint, 0, len(sigs))
	for a, sp := range sigs {
		out = append(out, SigCheckpoint{Addr: a, LastRound: sp.lastRound, Rounds: sp.rounds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// snapshotAcc serializes one accumulator.
func snapshotAcc(a *Accumulator) AccState {
	st := AccState{
		Routes: a.routes, Reached: a.reached, Responses: a.responses, MidStars: a.midStars,
		RoutesWithLoop: a.routesWithLoop, LoopInstances: a.loopInstances, ParisOnly: a.parisOnly,
		RoutesWithCycle: a.routesWithCycle, CycleInstances: a.cycleInstances,
		Failed: a.failed, Skipped: a.skipped,
		RTTSamples: a.rttSamples, RTTSum: a.rttSum, RTTMin: a.rttMin, RTTMax: a.rttMax,
		LoopByCause:  make(map[anomaly.Cause]int, len(a.loopByCause)),
		CycleByCause: make(map[anomaly.Cause]int, len(a.cycleByCause)),
		Addrs:        sortedAddrs(a.addrs),
		LoopAddrs:    sortedAddrs(a.loopAddrs),
		CycleAddrs:   sortedAddrs(a.cycleAddrs),
		SkippedDests: sortedAddrs(a.skippedDests),
	}
	for c, n := range a.loopByCause {
		st.LoopByCause[c] = n
	}
	for c, n := range a.cycleByCause {
		st.CycleByCause[c] = n
	}
	if len(a.dests) > 0 {
		st.Dests = make([]DestCheckpoint, 0, len(a.dests))
		for dest, ds := range a.dests {
			dc := DestCheckpoint{
				Dest: dest, SawLoop: ds.sawLoop, SawCycle: ds.sawCycle,
				Routes:    make([]RouteCheckpoint, ds.nextSeq),
				LoopSigs:  sortedSigs(ds.loopSigs),
				CycleSigs: sortedSigs(ds.cycleSigs),
			}
			for _, mo := range ds.classic {
				dc.Routes[mo.seq] = RouteCheckpoint{Classic: true, Route: mo.rt}
			}
			for _, mo := range ds.paris {
				dc.Routes[mo.seq] = RouteCheckpoint{Route: mo.rt}
			}
			st.Dests = append(st.Dests, dc)
		}
		sort.Slice(st.Dests, func(i, j int) bool { return st.Dests[i].Dest.Less(st.Dests[j].Dest) })
	}
	return st
}

// restoreAcc rebuilds one accumulator from its snapshot: scalars and sets
// load directly; the memo and graph layers are rebuilt by replaying the
// interned routes, in first-seen order, through the same analysis code that
// built them originally.
func restoreAcc(st AccState) (*Accumulator, error) {
	a := NewAccumulator()
	a.routes, a.reached, a.responses, a.midStars = st.Routes, st.Reached, st.Responses, st.MidStars
	a.routesWithLoop, a.loopInstances, a.parisOnly = st.RoutesWithLoop, st.LoopInstances, st.ParisOnly
	a.routesWithCycle, a.cycleInstances = st.RoutesWithCycle, st.CycleInstances
	a.failed, a.skipped = st.Failed, st.Skipped
	a.rttSamples, a.rttSum, a.rttMin, a.rttMax = st.RTTSamples, st.RTTSum, st.RTTMin, st.RTTMax
	for c, n := range st.LoopByCause {
		a.loopByCause[c] = n
	}
	for c, n := range st.CycleByCause {
		a.cycleByCause[c] = n
	}
	for _, ad := range st.Addrs {
		a.addrs[ad] = true
	}
	for _, ad := range st.LoopAddrs {
		a.loopAddrs[ad] = true
	}
	for _, ad := range st.CycleAddrs {
		a.cycleAddrs[ad] = true
	}
	for _, ad := range st.SkippedDests {
		a.skippedDests[ad] = true
	}
	for _, dc := range st.Dests {
		ds := newDestState(dc.Dest)
		a.dests[dc.Dest] = ds
		ds.sawLoop, ds.sawCycle = dc.SawLoop, dc.SawCycle
		for i, rc := range dc.Routes {
			if rc.Route == nil {
				return nil, fmt.Errorf("measure: checkpoint dest %v: route %d missing", dc.Dest, i)
			}
			m := ds.paris
			if rc.Classic {
				m = ds.classic
			}
			if a.intern(m, rc.Route, rc.Route.Fingerprint(), rc.Classic, ds) == nil {
				return nil, fmt.Errorf("measure: checkpoint dest %v: route %d collides", dc.Dest, i)
			}
		}
		for _, sg := range dc.LoopSigs {
			ds.loopSigs[sg.Addr] = &sigSpan{lastRound: sg.LastRound, rounds: sg.Rounds}
		}
		for _, sg := range dc.CycleSigs {
			ds.cycleSigs[sg.Addr] = &sigSpan{lastRound: sg.LastRound, rounds: sg.Rounds}
		}
	}
	return a, nil
}

// State snapshots the accumulator's partial statistics for serialization.
// The accumulator must be quiescent (no concurrent Fold); the snapshot is
// deterministic — address sets and destinations sorted, routes in
// first-seen order — so two equal accumulators serialize to identical
// bytes. The always-on daemon checkpoints through this, the campaign
// through the Checkpoint wrapper below.
func (a *Accumulator) State() AccState { return snapshotAcc(a) }

// RestoreAccumulator rebuilds an accumulator from a State snapshot:
// scalars and sets load directly, and the derived memo/graph layers are
// rebuilt by replaying the interned routes through the original analysis
// code (the same path Campaign.Resume uses).
func RestoreAccumulator(st AccState) (*Accumulator, error) { return restoreAcc(st) }

// AtomicWriteJSON writes v as JSON to path via a temp file in the same
// directory, fsynced and renamed into place, so a kill mid-write leaves
// the previous file intact (the atomicio.WriteFile contract; the pcap
// capture sink flushes on the same path).
func AtomicWriteJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("measure: encoding %s: %w", filepath.Base(path), err)
	}
	if err := atomicio.WriteFile(path, data); err != nil {
		return fmt.Errorf("measure: %s: %w", filepath.Base(path), err)
	}
	return nil
}

// Save writes the checkpoint atomically on the shared AtomicWriteJSON
// path: temp file + fsync + rename, stale temp files swept, so a kill
// mid-write leaves the previous checkpoint intact and no .tmp debris
// accumulates.
func (ck *Checkpoint) Save(path string) error {
	return AtomicWriteJSON(path, ck)
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("measure: reading checkpoint: %w", err)
	}
	ck := new(Checkpoint)
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("measure: decoding checkpoint: %w", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("measure: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	return ck, nil
}

// Resume loads a checkpoint into the campaign: the next RunContext call
// continues from the checkpoint's round cursor with the restored
// accumulators, error budgets, and batching hints. Resume validates the
// config digest, so a checkpoint can only continue the campaign shape that
// wrote it. The caller is responsible for restoring Checkpoint.Transport
// into the transport before running.
func (c *Campaign) Resume(ck *Checkpoint) error {
	if !c.cfg.Stream {
		return fmt.Errorf("measure: resume requires a streaming campaign")
	}
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("measure: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	if d := c.configDigest(); ck.Digest != d {
		return fmt.Errorf("measure: checkpoint digest %#x does not match campaign %#x", ck.Digest, d)
	}
	if ck.NextRound < 0 || ck.NextRound > c.cfg.Rounds {
		return fmt.Errorf("measure: checkpoint round cursor %d outside campaign rounds %d", ck.NextRound, c.cfg.Rounds)
	}
	if len(ck.Health) != len(c.cfg.Dests) {
		return fmt.Errorf("measure: checkpoint health for %d destinations, campaign has %d", len(ck.Health), len(c.cfg.Dests))
	}
	if len(ck.Workers) != c.cfg.Workers {
		return fmt.Errorf("measure: checkpoint for %d workers, campaign has %d", len(ck.Workers), c.cfg.Workers)
	}
	if c.cfg.Batch && (len(ck.ParisHint) != len(c.cfg.Dests) || len(ck.ClasHint) != len(c.cfg.Dests)) {
		return fmt.Errorf("measure: checkpoint batching hints missing or missized")
	}
	rs := &resumeState{nextRound: ck.NextRound}
	rs.health = make([]destHealth, len(ck.Health))
	for i, h := range ck.Health {
		rs.health[i] = destHealth{consecFails: h.ConsecFails, quarantined: h.Quarantined}
	}
	rs.accs = make([]*Accumulator, len(ck.Workers))
	for w := range ck.Workers {
		a, err := restoreAcc(ck.Workers[w])
		if err != nil {
			return fmt.Errorf("measure: worker %d: %w", w, err)
		}
		rs.accs[w] = a
	}
	if c.cfg.Batch {
		rs.parisHint = append([]int(nil), ck.ParisHint...)
		rs.clasHint = append([]int(nil), ck.ClasHint...)
	}
	c.resume = rs
	return nil
}
