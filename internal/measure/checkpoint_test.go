package measure

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topo"
)

// checkpointConfig is the campaign shape the resume tests run: streaming
// and batched with one worker over a flip-free topology — the conditions
// under which two plain runs are byte-identical, so any divergence after a
// resume is the checkpoint layer's fault and nothing else's.
func checkpointConfig(sc *topo.Scenario, path string) Config {
	return Config{
		Dests:          sc.Dests,
		Rounds:         8,
		Workers:        1,
		RoundStart:     sc.RoundStart,
		PortSeed:       42,
		Batch:          true,
		Stream:         true,
		CheckpointPath: path,
	}
}

// transportState captures a network's probe counter as the opaque
// checkpoint payload, the way a binary would.
func transportState(net *netsim.Network) func() json.RawMessage {
	return func() json.RawMessage {
		b, _ := json.Marshal(struct{ ProbeCount int }{net.ProbeCount()})
		return b
	}
}

func restoreTransport(t *testing.T, net *netsim.Network, raw json.RawMessage) {
	t.Helper()
	var st struct{ ProbeCount int }
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding transport state: %v", err)
	}
	net.SetProbeCount(st.ProbeCount)
}

// TestCheckpointResumeByteIdentical is the acceptance gate: a campaign
// killed mid-study and resumed from its checkpoint — fresh process, fresh
// scenario, restored transport cursor — produces final statistics
// byte-identical to the uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	const dests, killAt = 60, 4
	dir := t.TempDir()

	// Uninterrupted reference run.
	scU := topo.Generate(invarianceConfig(dests))
	cfgU := checkpointConfig(scU, filepath.Join(dir, "uninterrupted.ck"))
	cfgU.TransportState = transportState(scU.Net)
	campU, err := NewCampaign(netsim.NewTransport(scU.Net), cfgU)
	if err != nil {
		t.Fatal(err)
	}
	resU, err := campU.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resU.Stats.Loops.Instances == 0 || resU.Stats.Diamonds.Total == 0 {
		t.Fatal("reference campaign degenerate")
	}

	// Interrupted run: the context is canceled as round killAt begins, so
	// the checkpoint on disk covers exactly rounds [0, killAt).
	ckPath := filepath.Join(dir, "interrupted.ck")
	scI := topo.Generate(invarianceConfig(dests))
	cfgI := checkpointConfig(scI, ckPath)
	cfgI.TransportState = transportState(scI.Net)
	ctx, cancel := context.WithCancel(context.Background())
	inner := cfgI.RoundStart
	cfgI.RoundStart = func(r int) {
		if r == killAt {
			cancel()
		}
		inner(r)
	}
	campI, err := NewCampaign(netsim.NewTransport(scI.Net), cfgI)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campI.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	// Resume in a "fresh process": new scenario, new campaign, transport
	// cursor restored from the checkpoint's opaque payload.
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NextRound != killAt {
		t.Fatalf("checkpoint resumes at round %d, want %d", ck.NextRound, killAt)
	}
	scR := topo.Generate(invarianceConfig(dests))
	cfgR := checkpointConfig(scR, filepath.Join(dir, "resumed.ck"))
	cfgR.TransportState = transportState(scR.Net)
	campR, err := NewCampaign(netsim.NewTransport(scR.Net), cfgR)
	if err != nil {
		t.Fatal(err)
	}
	restoreTransport(t, scR.Net, ck.Transport)
	if err := campR.Resume(ck); err != nil {
		t.Fatal(err)
	}
	resR, err := campR.Run()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(resU.Stats, resR.Stats) {
		t.Errorf("resumed stats differ from uninterrupted stats:\nuninterrupted: %+v\nresumed:       %+v", resU.Stats, resR.Stats)
	}
	ju, err := json.Marshal(resU.Stats)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := json.Marshal(resR.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if string(ju) != string(jr) {
		t.Error("resumed stats JSON not byte-identical to uninterrupted run")
	}
}

// TestCheckpointResumeFromFinal: the final checkpoint (NextRound == Rounds)
// resumes to a no-op run whose merged statistics still match.
func TestCheckpointResumeFromFinal(t *testing.T) {
	const dests = 40
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "final.ck")

	sc := topo.Generate(invarianceConfig(dests))
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), checkpointConfig(sc, ckPath))
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NextRound != 8 {
		t.Fatalf("final checkpoint cursor = %d, want 8", ck.NextRound)
	}
	sc2 := topo.Generate(invarianceConfig(dests))
	camp2, err := NewCampaign(netsim.NewTransport(sc2.Net), checkpointConfig(sc2, filepath.Join(dir, "re.ck")))
	if err != nil {
		t.Fatal(err)
	}
	if err := camp2.Resume(ck); err != nil {
		t.Fatal(err)
	}
	res2, err := camp2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Stats, res2.Stats) {
		t.Error("stats merged from a final checkpoint differ from the original run")
	}
}

// TestCheckpointCadence: CheckpointEvery > 1 writes only at its boundaries
// (plus the final round), so the cursor on disk is always a multiple of the
// cadence or the campaign end.
func TestCheckpointCadence(t *testing.T) {
	const dests = 20
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "cadence.ck")

	sc := topo.Generate(invarianceConfig(dests))
	cfg := checkpointConfig(sc, ckPath)
	cfg.CheckpointEvery = 3
	var cursors []int
	inner := cfg.RoundStart
	cfg.RoundStart = func(r int) {
		if ck, err := LoadCheckpoint(ckPath); err == nil {
			cursors = append(cursors, ck.NextRound)
		} else {
			cursors = append(cursors, -1)
		}
		inner(r)
	}
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	// Cursor seen at the start of each round r: no file until 3 rounds
	// (indices 0-2) completed, then 3 until 6 completed, then 6.
	want := []int{-1, -1, -1, 3, 3, 3, 6, 6}
	if !reflect.DeepEqual(cursors, want) {
		t.Fatalf("checkpoint cursors per round = %v, want %v", cursors, want)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NextRound != 8 {
		t.Fatalf("final cursor = %d, want 8", ck.NextRound)
	}
}

// TestCheckpointQuarantineSurvivesResume: the per-destination error budgets
// ride the checkpoint, so a quarantined destination stays quarantined after
// a resume and the accounting matches the uninterrupted faulty run.
func TestCheckpointQuarantineSurvivesResume(t *testing.T) {
	const (
		dests, rounds   = 40, 8
		killAt          = 4
		quarantineAfter = 2
	)
	plan := netsim.FaultPlan{Seed: 11, BlackholeEvery: 5}
	dir := t.TempDir()

	build := func(path string) (*Campaign, *topo.Scenario) {
		sc := topo.Generate(invarianceConfig(dests))
		cfg := checkpointConfig(sc, path)
		cfg.Rounds = rounds
		cfg.QuarantineAfter = quarantineAfter
		cfg.Sleep = func(time.Duration) {}
		cfg.TransportState = transportState(sc.Net)
		camp, err := NewCampaign(netsim.WrapFaults(netsim.NewTransport(sc.Net), plan), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return camp, sc
	}

	campU, _ := build(filepath.Join(dir, "u.ck"))
	resU, err := campU.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resU.Stats.Robust.QuarantinedDests == 0 {
		t.Fatal("degenerate: no quarantines in reference run")
	}

	ckPath := filepath.Join(dir, "i.ck")
	campI, scI := build(ckPath)
	ctx, cancel := context.WithCancel(context.Background())
	innerRS := scI.RoundStart
	campI.cfg.RoundStart = func(r int) {
		if r == killAt {
			cancel()
		}
		innerRS(r)
	}
	if _, err := campI.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v", err)
	}

	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	campR, scR := build(filepath.Join(dir, "r.ck"))
	restoreTransport(t, scR.Net, ck.Transport)
	// The faults wrapper's per-destination ordinals restart at zero in the
	// resumed process, but a blackhole's schedule is position-independent
	// from BlackholeStart 0, so the policy outcome is identical.
	if err := campR.Resume(ck); err != nil {
		t.Fatal(err)
	}
	resR, err := campR.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resU.Stats, resR.Stats) {
		t.Errorf("faulty resumed stats differ:\nuninterrupted: %+v\nresumed:       %+v", resU.Stats, resR.Stats)
	}
}

// TestResumeValidation: a checkpoint only resumes the campaign shape that
// wrote it.
func TestResumeValidation(t *testing.T) {
	const dests = 10
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "v.ck")

	sc := topo.Generate(invarianceConfig(dests))
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), checkpointConfig(sc, ckPath))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	// Different port seed → different digest → refused.
	sc2 := topo.Generate(invarianceConfig(dests))
	cfg2 := checkpointConfig(sc2, ckPath)
	cfg2.PortSeed = 43
	other, err := NewCampaign(netsim.NewTransport(sc2.Net), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Resume(ck); err == nil {
		t.Error("Resume accepted a checkpoint from a different campaign config")
	}

	// Non-streaming campaign → refused.
	cfg3 := checkpointConfig(sc2, ckPath)
	cfg3.Stream = false
	mat, err := NewCampaign(netsim.NewTransport(sc2.Net), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if err := mat.Resume(ck); err == nil {
		t.Error("Resume accepted a checkpoint on a non-streaming campaign")
	}

	// Unknown version → refused at load.
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc["Version"] = json.RawMessage("99")
	tampered, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "bad.ck")
	if err := os.WriteFile(badPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(badPath); err == nil {
		t.Error("LoadCheckpoint accepted an unknown version")
	}
}

// TestCheckpointFilesDeterministic: the same campaign prefix writes the
// same checkpoint bytes (sorted sets, seq-ordered routes), so checkpoint
// artifacts diff cleanly across runs.
func TestCheckpointFilesDeterministic(t *testing.T) {
	const dests = 30
	run := func(dir string) []byte {
		ckPath := filepath.Join(dir, "d.ck")
		sc := topo.Generate(invarianceConfig(dests))
		camp, err := NewCampaign(netsim.NewTransport(sc.Net), checkpointConfig(sc, ckPath))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := camp.Run(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(ckPath)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(t.TempDir()), run(t.TempDir())
	if string(a) != string(b) {
		t.Error("identical campaigns wrote different checkpoint bytes")
	}
}

// tmpDebris lists any "<base>.tmp*" siblings of path — the leak the atomic
// writer must never leave behind.
func tmpDebris(t *testing.T, path string) []string {
	t.Helper()
	stale, err := filepath.Glob(path + ".tmp*")
	if err != nil {
		t.Fatal(err)
	}
	return stale
}

// TestAtomicWriteCleansTempOnError is the regression test for the temp-file
// leak: every error path of AtomicWriteJSON must remove its temp file. The
// rename is forced to fail by making the target path a directory.
func TestAtomicWriteCleansTempOnError(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "ck.json")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteJSON(target, map[string]int{"round": 3}); err == nil {
		t.Fatal("rename onto a directory should fail")
	}
	if stale := tmpDebris(t, target); len(stale) != 0 {
		t.Fatalf("failed write leaked temp files: %v", stale)
	}
	// The unencodable-value path fails before a temp file even exists.
	target2 := filepath.Join(dir, "ck2.json")
	if err := AtomicWriteJSON(target2, func() {}); err == nil {
		t.Fatal("unencodable value should fail")
	}
	if stale := tmpDebris(t, target2); len(stale) != 0 {
		t.Fatalf("encode failure leaked temp files: %v", stale)
	}
}

// TestAtomicWriteSweepsStaleTemps: a writer killed between CreateTemp and
// Rename leaves a randomized temp name no later Save reuses; the next
// successful write must sweep it.
func TestAtomicWriteSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "ck.json")
	for _, stale := range []string{target + ".tmp1111", target + ".tmp2222"} {
		if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bystander := filepath.Join(dir, "other.json.tmp999")
	if err := os.WriteFile(bystander, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteJSON(target, map[string]int{"round": 7}); err != nil {
		t.Fatal(err)
	}
	if stale := tmpDebris(t, target); len(stale) != 0 {
		t.Fatalf("successful write left stale temps: %v", stale)
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Fatalf("sweep must only touch its own base's temps: %v", err)
	}
	var got map[string]int
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &got); err != nil || got["round"] != 7 {
		t.Fatalf("written content wrong: %v %v", got, err)
	}
}
