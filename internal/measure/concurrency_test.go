package measure

import (
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topo"
)

// invarianceConfig is a campaign topology whose statistics cannot depend on
// probe interleaving: per-flow balancing only (forwarding is a pure
// function of the probe bytes), and no gadget whose *classification*
// consults schedule-dependent observables (IP IDs). Zero-TTL loops,
// diff-2/looper cycles, and per-probe flips are excluded for that reason;
// NAT rewriting, unequal per-flow diamonds, and round-driven flaps stay in,
// so the campaign still produces loops, unreachability, and diamonds.
func invarianceConfig(dests int) topo.GenConfig {
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = dests
	cfg.PPerPacket = 0
	cfg.PPerPacketUnequal = 0
	cfg.PZeroTTLPod = 0
	cfg.PDiff2 = 0
	cfg.PLooperPod = 0
	cfg.PFlapDiamondPod = 0
	cfg.PFlipPod = 0
	cfg.FlipPerProbe = 0
	return cfg
}

// runStats executes one campaign with the given worker count over a fresh
// copy of the deterministic scenario and returns its normalized statistics.
func runStats(t *testing.T, workers, dests int) *Stats {
	t.Helper()
	// Fresh scenario per run: router/host IP ID counters and flap RNG
	// state are per-network, and the comparison needs both runs to start
	// from the same initial state.
	sc := topo.Generate(invarianceConfig(dests))
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), Config{
		Dests:      sc.Dests,
		Rounds:     5,
		Workers:    workers,
		RoundStart: sc.RoundStart,
		PortSeed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(res)
	// AllAddresses is collected from map iteration; order is not part of
	// the statistics.
	sort.Slice(s.AllAddresses, func(i, j int) bool {
		return s.AllAddresses[i].Less(s.AllAddresses[j])
	})
	return s
}

// TestCampaignWorkerInvariance is the determinism gate on the concurrent
// forwarding engine: over a deterministic topology, the full campaign
// statistics must be identical whether one worker probes every destination
// or 32 workers probe in parallel.
func TestCampaignWorkerInvariance(t *testing.T) {
	const dests = 160
	seq := runStats(t, 1, dests)
	par := runStats(t, 32, dests)

	if seq.Loops.Instances == 0 {
		t.Fatal("deterministic campaign saw no loops at all; invariance check degenerate")
	}
	if seq.Diamonds.Total == 0 {
		t.Fatal("deterministic campaign saw no diamonds; invariance check degenerate")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("campaign statistics differ between Workers=1 and Workers=32:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestCampaignRoutesIdenticalAcrossWorkers drills below the aggregates: the
// per-destination measured routes themselves must match hop for hop.
func TestCampaignRoutesIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) *Results {
		sc := topo.Generate(invarianceConfig(80))
		camp, err := NewCampaign(netsim.NewTransport(sc.Net), Config{
			Dests:      sc.Dests,
			Rounds:     2,
			Workers:    workers,
			RoundStart: sc.RoundStart,
			PortSeed:   7,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(32)
	for r := range a.Rounds {
		for i := range a.Rounds[r] {
			pa, pb := a.Rounds[r][i], b.Rounds[r][i]
			if !sameAddrs(pa.Paris.Addresses(), pb.Paris.Addresses()) ||
				!sameAddrs(pa.Classic.Addresses(), pb.Classic.Addresses()) {
				t.Fatalf("round %d dest %v: routes differ between worker counts", r, pa.Dest)
			}
		}
	}
}

func sameAddrs(a, b []netip.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
