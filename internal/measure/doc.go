// Package measure implements the paper's measurement methodology
// (Section 3): paired classic/Paris traceroutes from one source toward a
// destination list, run by parallel workers over repeated rounds, followed
// by the anomaly statistics of Section 4.
//
// # Concurrency model
//
// A campaign partitions its destination list across Config.Workers
// goroutines with a worker plan that is a pure function of the
// configuration: each destination belongs to exactly one worker (shard-
// affine when Config.ShardOf is set) for the whole campaign. Workers share
// the transport — which must be safe for concurrent use, as both netsim
// and the live transport are — and nothing else: scratch buffers, port
// choices, retry state, and (when streaming) the statistics accumulator
// are all per-worker or per-destination and owned by the one worker that
// probes them. Rounds are separated by a WaitGroup barrier; RoundStart
// hooks, checkpoints, and the final Merge all run on the campaign
// goroutine between rounds, where every accumulator is quiescent.
//
// # Determinism contract
//
// Campaign statistics are a deterministic function of (topology seed,
// campaign config) whenever the transport's per-probe behaviour is a pure
// function of the probe bytes — netsim's schedule-free regime (per-flow
// balancing, no per-probe hooks; with or without the virtual-clock
// dynamics layer, whose draws are keyed by probe bytes and virtual time,
// never by schedule). Under that regime the Stats — including the RTT
// aggregates, which fold as order-independent integer tallies — are
// byte-identical across every worker count, shard count, batch switch,
// and fold granularity (pinned by TestCampaignWorkerInvariance and
// TestCampaignDynamicsInvariance, under -race). Mid-trace flips
// (topo.GenConfig.FlipPerProbe) are the one sanctioned exception: they
// draw from a per-probe stream whose interleaving is schedule-dependent,
// so byte-reproducible runs disable them.
//
// # Streaming contract
//
// With Config.Stream set, the campaign computes its statistics while it
// probes instead of materializing every Pair: each worker owns one
// Accumulator and folds every pair it measures as the pair completes —
// staged through a small per-worker ring that folds Config.FoldEvery pairs
// at a time (deferring folds for map locality, never reordering them).
// Ownership does the synchronization — the worker plan is fixed
// for the campaign's lifetime, so all of a destination's pairs flow
// through the one worker that owns the destination, in round order, and no
// accumulator (nor any per-destination state inside it) is ever touched by
// two goroutines. The partials meet exactly once, in Merge after the last
// round, on the caller's goroutine (the per-round WaitGroup provides the
// happens-before edge).
//
// Inside an accumulator, interning exploits round-over-round route
// stability: each destination's distinct routes are keyed by
// tracer.Route.Fingerprint and verified with Route.Equal against the
// canonical interned object, so a fingerprint collision can only cost
// speed, never correctness. Per-route work (loop/cycle detection, response
// tallies, diamond-graph contribution) is memoized on the interned route;
// classic-vs-Paris classification is memoized per fingerprint pair.
// Interning equality ignores per-exchange quantities (RTTs and response IP
// IDs, which differ every round even on a stable path); RTT tallies fold
// per round from the current pair, and the two classification rules that
// consult IP IDs are gated on path-stable patterns and re-evaluated
// against each round's route, keeping the statistics byte-identical. A
// stable path therefore costs zero anomaly work per round, and campaign
// memory is O(destinations + unique routes) — independent of the round
// count — where materialized results grow O(destinations × rounds).
//
// Streaming and materialize-then-Analyze produce byte-identical Stats (one
// implementation, pinned by TestCampaignStreamInvariance).
//
// # Error policy
//
// A 556-round campaign on the real Internet meets failures a hermetic
// simulation never shows, so by default the campaign degrades instead of
// aborting. Transports classify their failures with the tracer taxonomy
// (tracer.IsTransient); a pair whose trace fails transiently is retried up
// to Config.MaxAttempts times with exponential, seeded-jitter backoff
// (Config.RetryBackoff/RetryBackoffMax, waits through Config.Sleep so tests
// inject a clock). A pair still failing — or failing fatally — is recorded
// as an explicit Outcome Failed pair (no routes) and charges the
// destination's error budget; after Config.QuarantineAfter consecutive
// failed rounds the destination is quarantined and its remaining rounds are
// recorded as Skipped pairs without probing. One successful pair resets the
// budget. Failed and Skipped pairs fold into Stats.Robust (probed/failed/
// skipped/quarantined accounting) and never touch the anomaly statistics.
// Config.FailFast restores the historical semantics: the first error aborts
// the round and fails the campaign. Cancellation of the RunContext context
// is always fatal-but-graceful: workers stop at the next destination, the
// partial round is never checkpointed, and Run returns the context's error
// alongside the partial statistics.
//
// # Checkpointing
//
// With Config.CheckpointPath set on a streaming campaign, the campaign
// serializes its resumable state every Config.CheckpointEvery completed
// rounds: the per-worker accumulator partials (interned routes with full
// hop data, scalar tallies, signature spans — the memo and graph layers are
// rebuilt on load by replaying the interned routes through the same
// analysis code), the per-destination error budgets, the batching path
// hints, an opaque Config.TransportState payload, and the next round to
// run. Files are written atomically (temp file + rename), so a kill leaves
// either the previous or the new checkpoint, never a torn one. See the
// Checkpoint type for the format and compatibility contract (documented in
// docs/checkpoint.md); Resume validates a config digest so a checkpoint can
// only continue the campaign shape that wrote it. A resumed streaming
// campaign replays RoundStart for the completed rounds and produces
// statistics byte-identical to the uninterrupted run whenever the
// transport's dynamics are themselves replayable (see topo.Generate:
// FlipPerProbe must be zero) and the campaign runs one worker per
// shard-free run or any worker count with schedule-free topologies (the
// same conditions under which two plain runs are byte-identical).
package measure
