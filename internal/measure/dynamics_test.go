package measure

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/topo"
)

// dynamicsConfig is the schedule-free invariance topology with the full
// virtual-clock dynamics layer armed: per-link delay, background load, and
// scheduled churn. Every dynamics draw is a pure function of (dynamics
// seed, link, virtual time) and probe start times hash the probe bytes, so
// statistics must stay byte-identical at any worker, shard, or batch
// setting — the same invariance bar the static topology meets.
func dynamicsConfig(dests, shards int) topo.GenConfig {
	cfg := invarianceConfig(dests)
	cfg.Shards = shards
	cfg.Delay = 1
	cfg.Load = 0.3
	cfg.Churn = 0.5
	return cfg
}

// runDynamicsStats executes one campaign over a fresh copy of the dynamics
// scenario and returns its normalized statistics.
func runDynamicsStats(t *testing.T, workers, dests, shards int, batch, stream bool) *Stats {
	t.Helper()
	sc := topo.Generate(dynamicsConfig(dests, shards))
	camp, err := NewCampaign(sc.Transport(), Config{
		Dests:      sc.Dests,
		Rounds:     5,
		Workers:    workers,
		RoundStart: sc.RoundStart,
		PortSeed:   42,
		ShardOf:    sc.ShardOf,
		Batch:      batch,
		Stream:     stream,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s == nil {
		s = Analyze(res)
	}
	sort.Slice(s.AllAddresses, func(i, j int) bool {
		return s.AllAddresses[i].Less(s.AllAddresses[j])
	})
	return s
}

// TestCampaignDynamicsInvariance is the tentpole's acceptance gate: with
// the virtual-clock dynamics fully armed (delay, load, churn), same-seed
// campaign statistics — including the new RTT aggregates — must be
// byte-identical across worker counts, shard counts, and the batch and
// stream switches.
func TestCampaignDynamicsInvariance(t *testing.T) {
	const dests = 120
	base := runDynamicsStats(t, 1, dests, 1, false, false)

	if base.RTT.Samples == 0 {
		t.Fatal("dynamics-on campaign collected no RTT samples; invariance check degenerate")
	}
	if base.RTT.MinNs <= 0 || base.RTT.MaxNs < base.RTT.MinNs {
		t.Fatalf("degenerate RTT bounds: min %d max %d", base.RTT.MinNs, base.RTT.MaxNs)
	}
	if base.Loops.Instances == 0 {
		t.Fatal("dynamics-on campaign saw no loops; invariance check degenerate")
	}

	cases := []struct {
		name          string
		workers       int
		shards        int
		batch, stream bool
	}{
		{"workers=8", 8, 1, false, false},
		{"batch", 1, 1, true, false},
		{"stream", 1, 1, false, true},
		{"shards=3", 8, 3, true, true},
		{"everything", 16, 2, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runDynamicsStats(t, tc.workers, dests, tc.shards, tc.batch, tc.stream)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("statistics diverged from the sequential baseline:\nbase: %+v\ngot:  %+v", base, got)
			}
		})
	}
}

// TestCampaignDynamicsOffNoRTT pins the other half of the house invariant:
// without dynamics (and with netsim's synthetic per-hop latency in place),
// the statistics carry RTT samples from the steps-derived synthetic clock,
// but a dynamics-off run is byte-identical to the pre-dynamics engine —
// asserted structurally here by checking the dynamics-off and dynamics-on
// campaigns differ only where the virtual clock is allowed to reach
// (RTTs, and churn-driven route effects), never in the campaign shape.
func TestCampaignDynamicsOffNoRTT(t *testing.T) {
	sc := topo.Generate(invarianceConfig(40))
	camp, err := NewCampaign(sc.Transport(), Config{
		Dests:      sc.Dests,
		Rounds:     2,
		Workers:    4,
		RoundStart: sc.RoundStart,
		PortSeed:   42,
		Stream:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	// The simulator transport synthesizes steps-derived RTTs even without
	// dynamics, so samples exist — but every one is a multiple of the
	// 500µs per-hop constant, which virtual-clock RTTs essentially never
	// are.
	if s.RTT.Samples == 0 {
		t.Fatal("no RTT samples from the synthetic per-hop clock")
	}
	const perHop = int64(500_000)
	if s.RTT.MinNs%perHop != 0 || s.RTT.MaxNs%perHop != 0 {
		t.Fatalf("dynamics-off RTTs not steps-derived: min %d max %d", s.RTT.MinNs, s.RTT.MaxNs)
	}
}
