package measure

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// TestHeadlineDirectionalClaims is the regression gate on the paper's
// central results: run a small calibrated campaign and assert the
// comparative findings (not the absolute values, which need scale):
//
//  1. classic traceroute sees loops on a few percent of routes; Paris sees
//     almost none of those (per-flow LB dominates the causes);
//  2. per-flow load balancing is the leading loop cause by a wide margin;
//  3. classic per-destination graphs contain diamonds toward most
//     destinations; the per-flow share vanishes from Paris graphs.
func TestHeadlineDirectionalClaims(t *testing.T) {
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = 400
	sc := topo.Generate(cfg)
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), Config{
		Dests:      sc.Dests,
		Rounds:     10,
		Workers:    16,
		RoundStart: sc.RoundStart,
		PortSeed:   cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(res)

	// (1) Loop prevalence in the paper's regime: a few percent of classic
	// routes, an order of magnitude fewer for Paris.
	loopPct := pct(s.Loops.RoutesWithLoop, s.Routes)
	if loopPct < 1 || loopPct > 15 {
		t.Errorf("classic loop route share %.2f%% outside the calibrated regime", loopPct)
	}
	parisLoops := 0
	classicLoops := s.Loops.Instances
	for _, pairs := range res.Rounds {
		for _, p := range pairs {
			parisLoops += len(anomaly.FindLoops(p.Paris))
		}
	}
	if classicLoops == 0 {
		t.Fatal("no classic loops at all; campaign degenerate")
	}
	if float64(parisLoops) > 0.35*float64(classicLoops) {
		t.Errorf("paris saw %d loops vs classic %d; constant flow identifiers must remove most",
			parisLoops, classicLoops)
	}

	// (2) Cause ordering: per-flow LB dominates.
	perFlow := s.Loops.ByCause[anomaly.CausePerFlowLB]
	for cause, n := range s.Loops.ByCause {
		if cause == anomaly.CausePerFlowLB {
			continue
		}
		if n >= perFlow {
			t.Errorf("cause %v (%d) rivals per-flow LB (%d)", cause, n, perFlow)
		}
	}
	if share := CausePct(s.Loops.ByCause, anomaly.CausePerFlowLB); share < 60 {
		t.Errorf("per-flow loop share %.1f%%, want the dominant (~87%%) cause", share)
	}

	// (3) Diamonds: most destinations affected; Paris graphs far cleaner.
	dPct := pct(s.Diamonds.DestsWithDiamond, s.Dests)
	if dPct < 50 {
		t.Errorf("diamond destination share %.1f%%, want the majority (paper: 79%%)", dPct)
	}
	if s.Diamonds.Total == 0 {
		t.Fatal("no diamonds at all")
	}
	if float64(s.Diamonds.ParisTotal) > 0.6*float64(s.Diamonds.Total) {
		t.Errorf("paris graphs kept %d of %d diamonds; per-flow share must vanish",
			s.Diamonds.ParisTotal, s.Diamonds.Total)
	}
}
