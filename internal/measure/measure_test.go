package measure

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

func smallScenario(t *testing.T, dests int) *topo.Scenario {
	t.Helper()
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = dests
	cfg.Seed = 7
	return topo.Generate(cfg)
}

func TestCampaignShape(t *testing.T) {
	sc := smallScenario(t, 40)
	rounds := 0
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), Config{
		Dests:   sc.Dests,
		Rounds:  3,
		Workers: 4,
		RoundStart: func(r int) {
			if r != rounds {
				t.Errorf("RoundStart(%d), want %d", r, rounds)
			}
			rounds++
			sc.RoundStart(r)
		},
		PortSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 || len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d / %d", rounds, len(res.Rounds))
	}
	for r, pairs := range res.Rounds {
		if len(pairs) != len(sc.Dests) {
			t.Fatalf("round %d: %d pairs, want %d", r, len(pairs), len(sc.Dests))
		}
		for i, p := range pairs {
			if p.Dest != sc.Dests[i] {
				t.Fatalf("round %d pair %d: dest %v, want %v", r, i, p.Dest, sc.Dests[i])
			}
			if p.Paris == nil || p.Classic == nil {
				t.Fatalf("round %d pair %d: missing trace", r, i)
			}
			if p.Round != r {
				t.Fatalf("pair round = %d, want %d", p.Round, r)
			}
		}
	}
}

func TestCampaignEmptyDestsRejected(t *testing.T) {
	sc := smallScenario(t, 10)
	if _, err := NewCampaign(netsim.NewTransport(sc.Net), Config{}); err == nil {
		t.Error("empty destination list accepted")
	}
}

func TestCampaignStopRules(t *testing.T) {
	sc := smallScenario(t, 20)
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), Config{
		Dests: sc.Dests, Rounds: 1, Workers: 2, PortSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Rounds[0] {
		// Paper rules: min TTL 2, max 39 hops.
		if len(p.Paris.Hops) > 0 && p.Paris.Hops[0].TTL != 2 {
			t.Errorf("paris first TTL = %d, want 2", p.Paris.Hops[0].TTL)
		}
		if len(p.Paris.Hops) > 38 {
			t.Errorf("trace extended past 39 hops: %d", len(p.Paris.Hops))
		}
	}
}

func TestPortForRange(t *testing.T) {
	for i := 0; i < 500; i++ {
		d := netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)})
		p := portFor(42, d, 0x517e)
		if p < 10000 || p >= 60000 {
			t.Fatalf("port %d outside the paper's [10000, 60000) range", p)
		}
	}
	// Stable per destination.
	d := netip.AddrFrom4([4]byte{172, 16, 0, 1})
	if portFor(42, d, 1) != portFor(42, d, 1) {
		t.Error("portFor not deterministic")
	}
	if portFor(42, d, 1) == portFor(43, d, 1) &&
		portFor(42, d, 2) == portFor(43, d, 2) {
		t.Error("portFor ignores the seed")
	}
}

// synthetic route helpers for Analyze tests
func aAddr(i int) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}) }

func synthRoute(dest netip.Addr, spec ...int) *tracer.Route {
	rt := &tracer.Route{Dest: dest}
	for i, s := range spec {
		h := tracer.Hop{TTL: i + 1, ProbeTTL: 1, Kind: tracer.KindTimeExceeded, RespTTL: 250 - s}
		if s < 0 {
			h = tracer.Hop{TTL: i + 1, Kind: tracer.KindNone, ProbeTTL: -1}
		} else {
			h.Addr = aAddr(s)
			h.IPID = uint16(i)
		}
		rt.Hops = append(rt.Hops, h)
	}
	return rt
}

func TestAnalyzeSyntheticCounts(t *testing.T) {
	d1 := netip.AddrFrom4([4]byte{172, 16, 0, 1})
	d2 := netip.AddrFrom4([4]byte{172, 16, 0, 2})
	cfg := Config{Dests: []netip.Addr{d1, d2}}.withDefaults()
	res := &Results{Config: cfg, Rounds: [][]Pair{
		{
			// d1: classic loop absent from paris -> per-flow.
			{Dest: d1, Round: 0, Classic: synthRoute(d1, 1, 2, 2, 3), Paris: synthRoute(d1, 1, 2, 4, 3)},
			// d2: clean.
			{Dest: d2, Round: 0, Classic: synthRoute(d2, 1, 5, 6), Paris: synthRoute(d2, 1, 5, 6)},
		},
		{
			// Round 1: d1 loops again (same signature); d2 has a cycle.
			{Dest: d1, Round: 1, Classic: synthRoute(d1, 1, 2, 2, 3), Paris: synthRoute(d1, 1, 2, 4, 3)},
			{Dest: d2, Round: 1, Classic: synthRoute(d2, 1, 5, 6, 5, 7), Paris: synthRoute(d2, 1, 5, 6, 8, 7)},
		},
	}}
	s := Analyze(res)
	if s.Routes != 4 || s.Rounds != 2 || s.Dests != 2 {
		t.Fatalf("bookkeeping: %+v", s)
	}
	if s.Loops.Instances != 2 || s.Loops.RoutesWithLoop != 2 {
		t.Errorf("loops: %+v", s.Loops)
	}
	if s.Loops.Signatures != 1 || s.Loops.OneRoundSignatures != 0 {
		t.Errorf("loop signatures: %+v", s.Loops)
	}
	if s.Loops.DestsWithLoop != 1 {
		t.Errorf("loop dests = %d", s.Loops.DestsWithLoop)
	}
	if got := s.Loops.ByCause[anomaly.CausePerFlowLB]; got != 2 {
		t.Errorf("per-flow loops = %d, want 2", got)
	}
	if s.Cycles.Instances != 1 || s.Cycles.Signatures != 1 || s.Cycles.OneRoundSignatures != 1 {
		t.Errorf("cycles: %+v", s.Cycles)
	}
	if s.Cycles.MeanRoundsPerSignature != 1 {
		t.Errorf("mean rounds per cycle signature = %v", s.Cycles.MeanRoundsPerSignature)
	}
}

func TestAnalyzeMidStars(t *testing.T) {
	d := netip.AddrFrom4([4]byte{172, 16, 0, 1})
	cfg := Config{Dests: []netip.Addr{d}}.withDefaults()
	res := &Results{Config: cfg, Rounds: [][]Pair{{
		{Dest: d, Round: 0,
			Classic: synthRoute(d, 1, -1, 3, -1, -1), // one mid star, two trailing
			Paris:   synthRoute(d, 1, 3)},
	}}}
	s := Analyze(res)
	if s.MidStars != 1 {
		t.Errorf("MidStars = %d, want 1 (trailing stars excluded)", s.MidStars)
	}
}

func TestAnalyzeDiamonds(t *testing.T) {
	d := netip.AddrFrom4([4]byte{172, 16, 0, 1})
	cfg := Config{Dests: []netip.Addr{d}}.withDefaults()
	res := &Results{Config: cfg, Rounds: [][]Pair{
		{{Dest: d, Round: 0, Classic: synthRoute(d, 1, 2, 4), Paris: synthRoute(d, 1, 2, 4)}},
		{{Dest: d, Round: 1, Classic: synthRoute(d, 1, 3, 4), Paris: synthRoute(d, 1, 2, 4)}},
	}}
	s := Analyze(res)
	if s.Diamonds.Total != 1 || s.Diamonds.DestsWithDiamond != 1 {
		t.Fatalf("diamonds: %+v", s.Diamonds)
	}
	if s.Diamonds.PerFlow != 1 {
		t.Errorf("per-flow diamonds = %d, want 1 (absent from paris graph)", s.Diamonds.PerFlow)
	}
	if s.Diamonds.ParisTotal != 0 {
		t.Errorf("paris diamonds = %d", s.Diamonds.ParisTotal)
	}
}

func TestReportRendering(t *testing.T) {
	sc := smallScenario(t, 30)
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), Config{
		Dests: sc.Dests, Rounds: 2, Workers: 4, RoundStart: sc.RoundStart, PortSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(res)
	var buf bytes.Buffer
	WriteReport(&buf, s, sc.AS)
	out := buf.String()
	for _, want := range []string{
		"loops: routes with >=1 loop",
		"cycles: caused by forwarding loops",
		"diamonds: destinations affected",
		"AS coverage",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	rows := Rows(s)
	if len(rows) != 21 {
		t.Errorf("Rows = %d entries, want 21 (every quoted statistic)", len(rows))
	}
	for _, r := range rows {
		if r.Paper == 0 {
			t.Errorf("row %q has no paper value", r.Name)
		}
	}
}

func TestCausePct(t *testing.T) {
	m := map[anomaly.Cause]int{anomaly.CausePerFlowLB: 3, anomaly.CauseZeroTTL: 1}
	if got := CausePct(m, anomaly.CausePerFlowLB); got != 75 {
		t.Errorf("CausePct = %v, want 75", got)
	}
	if got := CausePct(nil, anomaly.CauseZeroTTL); got != 0 {
		t.Errorf("empty map: %v", got)
	}
}

func TestCampaignDuplicateDestsRejected(t *testing.T) {
	sc := smallScenario(t, 10)
	dests := append(append([]netip.Addr{}, sc.Dests...), sc.Dests[0])
	if _, err := NewCampaign(netsim.NewTransport(sc.Net), Config{Dests: dests}); err == nil {
		t.Error("duplicate destination accepted: per-destination statistics assume one owner per address")
	}
}
