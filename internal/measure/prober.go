package measure

import (
	"fmt"
	"net/netip"

	"repro/internal/tracer"
)

// This file is the pair-measurement core shared by the batch campaign and
// the always-on daemon (internal/daemon): one paired classic+Paris trace
// toward one destination, with the paper's flow-identifier derivation and
// the batching path-length hints. Campaign.measureOne and Prober.MeasurePair
// are thin shells over measurePair, so the two runtimes cannot drift apart
// in probing methodology.

// PathHints carries a destination's previous ladder lengths between pairs:
// a batched trace sizes its first TTL window from the hint, so a stable
// route is probed in exactly one batch with no overshoot. The zero value
// means "no hint" (the tracer uses its default window).
type PathHints struct {
	Paris, Classic int
}

// ProbeConfig is the probing shape a Prober applies to every pair; the
// fields mirror the campaign Config's probing subset and share its
// defaults.
type ProbeConfig struct {
	// MinTTL skips the local network (the paper sets 2). Zero selects 2.
	MinTTL int
	// MaxTTL bounds traces (the paper: 39). Zero selects 39.
	MaxTTL int
	// MaxConsecutiveStars halts a trace (the paper: 8). Zero selects 8.
	MaxConsecutiveStars int
	// PortSeed derives the per-destination Paris flow identifiers and the
	// classic tracer's per-(round, destination) pseudo-PID source port.
	PortSeed int64
	// Batch routes traces through the transport's batched TTL ladder when
	// it offers one (tracer.BatchTransport); the Prober then owns one
	// reusable tracer.Scratch.
	Batch bool
	// BatchWindow overrides the TTL window per batch (0: tracer default).
	BatchWindow int
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.MinTTL <= 0 {
		c.MinTTL = 2
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 39
	}
	if c.MaxConsecutiveStars <= 0 {
		c.MaxConsecutiveStars = 8
	}
	return c
}

// Prober measures paired traces one destination at a time. It is not safe
// for concurrent use (the scratch buffers are reused across calls): give
// each worker goroutine its own Prober, exactly like the campaign gives
// each worker its own tracer.Scratch.
type Prober struct {
	tp      tracer.Transport
	base    tracer.Options
	seed    int64
	scratch *tracer.Scratch
}

// NewProber builds a Prober over tp with the given probing shape.
func NewProber(tp tracer.Transport, cfg ProbeConfig) *Prober {
	cfg = cfg.withDefaults()
	p := &Prober{tp: tp, seed: cfg.PortSeed, base: tracer.Options{
		MinTTL:              cfg.MinTTL,
		MaxTTL:              cfg.MaxTTL,
		MaxConsecutiveStars: cfg.MaxConsecutiveStars,
	}}
	if cfg.Batch {
		p.base.Batch = true
		p.base.BatchWindow = cfg.BatchWindow
		p.scratch = tracer.NewScratch()
	}
	return p
}

// MeasurePair performs the paper's two traces toward dest, attributed to
// the given round. h, when non-nil, supplies the destination's previous
// ladder lengths and receives the new ones; pass the same PathHints for
// the same destination across calls to keep the batched first window
// tight.
func (p *Prober) MeasurePair(dest netip.Addr, round int, h *PathHints) (Pair, error) {
	var hints PathHints
	if h != nil {
		hints = *h
	}
	pair, newHints, err := measurePair(p.tp, p.base, p.scratch, p.seed,
		dest, round,
		portFor(p.seed, dest, 0x517e), portFor(p.seed, dest, 0xd057),
		hints)
	if err != nil {
		return Pair{}, err
	}
	if h != nil {
		*h = newHints
	}
	return pair, nil
}

// measurePair is the shared core: a Paris traceroute with an unchanging
// five-tuple, then a classic traceroute with the same timing parameters,
// taken close together in time to minimise routing-dynamics skew
// (Section 4.1.2). Returned hints are the measured ladder lengths (valid
// only on success).
func measurePair(tp tracer.Transport, base tracer.Options, scratch *tracer.Scratch, seed int64, d netip.Addr, round int, parisSrc, parisDst uint16, hints PathHints) (Pair, PathHints, error) {
	parisOpts := base
	parisOpts.SrcPort = parisSrc
	parisOpts.DstPort = parisDst
	if base.Batch {
		parisOpts.Scratch = scratch
		parisOpts.PathHint = hints.Paris
	}
	paris := tracer.NewParisUDP(tp, parisOpts)
	pr, err := paris.Trace(d)
	if err != nil {
		return Pair{}, hints, fmt.Errorf("measure: paris trace to %v: %w", d, err)
	}

	// Classic traceroute sets its Source Port to PID + 32768; every
	// invocation is a fresh process, so the port — part of the flow
	// identifier — changes per trace. Emulate with a per-(round, dest)
	// pseudo-PID.
	classicOpts := base
	classicOpts.SrcPort = 32768 + uint16(portFor(seed, d, uint64(round)*0x9e37+0xc1a5)%30000)
	if base.Batch {
		classicOpts.Scratch = scratch
		classicOpts.PathHint = hints.Classic
	}
	classic := tracer.NewClassicUDP(tp, classicOpts)
	cr, err := classic.Trace(d)
	if err != nil {
		return Pair{}, hints, fmt.Errorf("measure: classic trace to %v: %w", d, err)
	}
	return Pair{Dest: d, Round: round, Paris: pr, Classic: cr},
		PathHints{Paris: len(pr.Hops), Classic: len(cr.Hops)}, nil
}
