package measure

import (
	"fmt"
	"io"
	"time"

	"repro/internal/anomaly"
	"repro/internal/asmap"
)

// PaperValues holds the statistics quoted in Section 4 of the paper, for
// side-by-side reporting.
type PaperValues struct {
	LoopRoutesPct       float64
	LoopDestsPct        float64
	LoopAddrsPct        float64
	LoopOneRoundSigPct  float64
	LoopPerFlowPct      float64
	LoopZeroTTLPct      float64
	LoopUnreachPct      float64
	LoopRewritePct      float64
	LoopPerPacketPct    float64
	LoopParisOnlyPct    float64
	CycleRoutesPct      float64
	CycleDestsPct       float64
	CycleAddrsPct       float64
	CycleOneRoundSigPct float64
	CycleMeanRounds     float64
	CyclePerFlowPct     float64
	CycleFwdLoopPct     float64
	CycleUnreachPct     float64
	DiamondDestsPct     float64
	DiamondTotal        int
	DiamondPerFlowPct   float64
}

// Paper returns the values quoted in the paper.
func Paper() PaperValues {
	return PaperValues{
		LoopRoutesPct:       5.3,
		LoopDestsPct:        18,
		LoopAddrsPct:        6.3,
		LoopOneRoundSigPct:  18,
		LoopPerFlowPct:      87,
		LoopZeroTTLPct:      6.9,
		LoopUnreachPct:      1.2,
		LoopRewritePct:      2.8,
		LoopPerPacketPct:    2.5,
		LoopParisOnlyPct:    0.25,
		CycleRoutesPct:      0.84,
		CycleDestsPct:       11,
		CycleAddrsPct:       3.6,
		CycleOneRoundSigPct: 30,
		CycleMeanRounds:     6.8,
		CyclePerFlowPct:     78,
		CycleFwdLoopPct:     20,
		CycleUnreachPct:     1.2,
		DiamondDestsPct:     79,
		DiamondTotal:        16385,
		DiamondPerFlowPct:   64,
	}
}

// Row is one paper-vs-measured comparison line.
type Row struct {
	Name     string
	Paper    float64
	Measured float64
	Unit     string
}

// Rows renders the full comparison table from measured stats.
func Rows(s *Stats) []Row {
	p := Paper()
	lp := func(c anomaly.Cause) float64 { return CausePct(s.Loops.ByCause, c) }
	cp := func(c anomaly.Cause) float64 { return CausePct(s.Cycles.ByCause, c) }
	parisOnlyPct := 0.0
	if s.Loops.Instances > 0 {
		parisOnlyPct = 100 * float64(s.Loops.ParisOnly) / float64(s.Loops.Instances)
	}
	return []Row{
		{"loops: routes with >=1 loop", p.LoopRoutesPct, pct(s.Loops.RoutesWithLoop, s.Routes), "%"},
		{"loops: destinations affected", p.LoopDestsPct, pct(s.Loops.DestsWithLoop, s.Dests), "%"},
		{"loops: addresses in a loop", p.LoopAddrsPct, pct(s.Loops.AddrsInLoop, s.AddrsSeen), "%"},
		{"loops: signatures seen in one round", p.LoopOneRoundSigPct, pct(s.Loops.OneRoundSignatures, s.Loops.Signatures), "%"},
		{"loops: caused by per-flow LB", p.LoopPerFlowPct, lp(anomaly.CausePerFlowLB), "%"},
		{"loops: caused by zero-TTL forwarding", p.LoopZeroTTLPct, lp(anomaly.CauseZeroTTL), "%"},
		{"loops: caused by unreachability", p.LoopUnreachPct, lp(anomaly.CauseUnreachability), "%"},
		{"loops: caused by address rewriting", p.LoopRewritePct, lp(anomaly.CauseAddressRewriting), "%"},
		{"loops: residual (per-packet LB)", p.LoopPerPacketPct, lp(anomaly.CausePerPacketLB), "%"},
		{"loops: seen only by Paris", p.LoopParisOnlyPct, parisOnlyPct, "%"},
		{"cycles: routes with >=1 cycle", p.CycleRoutesPct, pct(s.Cycles.RoutesWithCycle, s.Routes), "%"},
		{"cycles: destinations affected", p.CycleDestsPct, pct(s.Cycles.DestsWithCycle, s.Dests), "%"},
		{"cycles: addresses in a cycle", p.CycleAddrsPct, pct(s.Cycles.AddrsInCycle, s.AddrsSeen), "%"},
		{"cycles: signatures seen in one round", p.CycleOneRoundSigPct, pct(s.Cycles.OneRoundSignatures, s.Cycles.Signatures), "%"},
		{"cycles: mean rounds per signature", p.CycleMeanRounds, s.Cycles.MeanRoundsPerSignature, "rounds"},
		{"cycles: caused by per-flow LB", p.CyclePerFlowPct, cp(anomaly.CausePerFlowLB), "%"},
		{"cycles: caused by forwarding loops", p.CycleFwdLoopPct, cp(anomaly.CauseForwardingLoop), "%"},
		{"cycles: caused by unreachability", p.CycleUnreachPct, cp(anomaly.CauseUnreachability), "%"},
		{"diamonds: destinations affected", p.DiamondDestsPct, pct(s.Diamonds.DestsWithDiamond, s.Dests), "%"},
		{"diamonds: total count", float64(p.DiamondTotal), float64(s.Diamonds.Total), ""},
		{"diamonds: caused by per-flow LB", p.DiamondPerFlowPct, pct(s.Diamonds.PerFlow, s.Diamonds.Total), "%"},
	}
}

// WriteReport renders the comparison table plus campaign bookkeeping.
func WriteReport(w io.Writer, s *Stats, as *asmap.Table) {
	fmt.Fprintf(w, "campaign: %d destinations x %d rounds = %d classic routes\n",
		s.Dests, s.Rounds, s.Routes)
	fmt.Fprintf(w, "responses: %d   distinct addresses: %d   mid-route stars: %d   reached: %.1f%%\n",
		s.Responses, s.AddrsSeen, s.MidStars, s.ReachedPct)
	if s.RTT.Samples > 0 {
		fmt.Fprintf(w, "hop RTTs: %d samples   mean: %s   min: %s   max: %s\n",
			s.RTT.Samples, time.Duration(s.RTT.MeanNs()), time.Duration(s.RTT.MinNs), time.Duration(s.RTT.MaxNs))
	}
	if s.Robust.Failed > 0 || s.Robust.Skipped > 0 {
		fmt.Fprintf(w, "fault tolerance: %d pairs probed, %d failed, %d skipped, %d destinations quarantined\n",
			s.Robust.Probed, s.Robust.Failed, s.Robust.Skipped, s.Robust.QuarantinedDests)
	}
	if as != nil {
		cov := as.Cover(s.AllAddresses)
		fmt.Fprintf(w, "AS coverage: %d ASes (%d tier-1, %d regional), %d unmapped addresses\n",
			cov.ASes, cov.TierOne, cov.Regional, cov.Unmapped)
	}
	fmt.Fprintf(w, "\n%-42s %10s %10s\n", "statistic", "paper", "measured")
	for _, r := range Rows(s) {
		unit := r.Unit
		fmt.Fprintf(w, "%-42s %9.2f%-1s %9.2f%-1s\n", r.Name, r.Paper, unit, r.Measured, unit)
	}
}
