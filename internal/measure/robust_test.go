package measure

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topo"
)

// faultyCampaign builds a streaming campaign over a fresh deterministic
// scenario with the given fault plan afflicted on its transport. The
// returned sleeps slice records every backoff wait (no real sleeping).
func faultyCampaign(t *testing.T, dests, rounds int, plan netsim.FaultPlan, cfg Config) (*Campaign, *topo.Scenario, *netsim.FaultTransport, *[]time.Duration) {
	t.Helper()
	sc := topo.Generate(invarianceConfig(dests))
	ft := netsim.WrapFaults(netsim.NewTransport(sc.Net), plan)
	sleeps := new([]time.Duration)
	cfg.Dests = sc.Dests
	cfg.Rounds = rounds
	cfg.RoundStart = sc.RoundStart
	cfg.PortSeed = 42
	cfg.Sleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
	camp, err := NewCampaign(ft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return camp, sc, ft, sleeps
}

// TestCampaignQuarantinesBlackholedDests pins the default error policy's
// accounting exactly: a blackholed destination fails QuarantineAfter rounds
// (each after the full retry budget) and is then skipped for the rest of
// the campaign, while every healthy destination is measured in full.
func TestCampaignQuarantinesBlackholedDests(t *testing.T) {
	const (
		dests           = 60
		rounds          = 6
		quarantineAfter = 2
		maxAttempts     = 3
	)
	plan := netsim.FaultPlan{Seed: 11, BlackholeEvery: 5}
	camp, sc, ft, sleeps := faultyCampaign(t, dests, rounds, plan, Config{
		Workers:         4,
		Stream:          true,
		MaxAttempts:     maxAttempts,
		QuarantineAfter: quarantineAfter,
	})
	blackholed := 0
	for _, d := range sc.Dests {
		if plan.ScheduleFor(d).Blackhole {
			blackholed++
		}
	}
	if blackholed < 2 || blackholed == len(sc.Dests) {
		t.Fatalf("degenerate plan: %d of %d destinations blackholed", blackholed, len(sc.Dests))
	}

	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats

	wantFailed := blackholed * quarantineAfter
	wantSkipped := blackholed * (rounds - quarantineAfter)
	wantProbed := (len(sc.Dests) - blackholed) * rounds
	if s.Robust.Failed != wantFailed {
		t.Errorf("Failed = %d, want %d", s.Robust.Failed, wantFailed)
	}
	if s.Robust.Skipped != wantSkipped {
		t.Errorf("Skipped = %d, want %d", s.Robust.Skipped, wantSkipped)
	}
	if s.Robust.QuarantinedDests != blackholed {
		t.Errorf("QuarantinedDests = %d, want %d", s.Robust.QuarantinedDests, blackholed)
	}
	if s.Robust.Probed != wantProbed || s.Routes != wantProbed {
		t.Errorf("Probed = %d (Routes %d), want %d", s.Robust.Probed, s.Routes, wantProbed)
	}

	// Each failed pair burned the full retry budget: MaxAttempts tries on
	// the Paris trace, so MaxAttempts-1 backoff waits per failed pair and
	// one injected error per try.
	wantSleeps := wantFailed * (maxAttempts - 1)
	if len(*sleeps) != wantSleeps {
		t.Errorf("recorded %d backoff waits, want %d", len(*sleeps), wantSleeps)
	}
	if got := ft.InjectedErrors(); got != wantFailed*maxAttempts {
		t.Errorf("injected errors = %d, want %d", got, wantFailed*maxAttempts)
	}
	if s.Loops.Instances == 0 || s.Diamonds.Total == 0 {
		t.Error("faulty campaign produced degenerate anomaly statistics")
	}
}

// TestCampaignRetriesRideOutTransientWindow: a transient window shorter
// than the retry budget costs retries but loses nothing — every pair is
// eventually measured and the statistics are byte-identical to a fault-free
// campaign over the same scenario.
func TestCampaignRetriesRideOutTransientWindow(t *testing.T) {
	const (
		dests  = 48
		rounds = 3
	)
	// Every destination errors its first two exchanges; the third attempt
	// starts past the window and the whole trace runs clean.
	plan := netsim.FaultPlan{Seed: 5, TransientEvery: 1, TransientStart: 0, TransientLen: 2}
	camp, _, _, sleeps := faultyCampaign(t, dests, rounds, plan, Config{
		Workers: 4,
		Stream:  true,
	})
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Robust.Failed != 0 || s.Robust.Skipped != 0 || s.Robust.QuarantinedDests != 0 {
		t.Fatalf("retries did not ride out the window: %+v", s.Robust)
	}
	if s.Routes != dests*rounds {
		t.Fatalf("Routes = %d, want %d", s.Routes, dests*rounds)
	}
	// Two retries per destination, all in round 0's first trace.
	if want := dests * 2; len(*sleeps) != want {
		t.Fatalf("recorded %d backoff waits, want %d", len(*sleeps), want)
	}

	// The dropped-then-retried probes never reached the simulated network,
	// so the statistics must match a fault-free campaign exactly.
	clean := topo.Generate(invarianceConfig(dests))
	cc, err := NewCampaign(netsim.NewTransport(clean.Net), Config{
		Dests: clean.Dests, Rounds: rounds, Workers: 4,
		RoundStart: clean.RoundStart, PortSeed: 42, Stream: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, cres.Stats) {
		t.Errorf("faulted-but-retried stats differ from fault-free stats:\nfaulted: %+v\nclean:   %+v", s, cres.Stats)
	}
}

// TestCampaignStreamAnalyzeParityWithFaults pins that a degraded campaign's
// streaming statistics equal materialize-then-Analyze over the same faults:
// Failed/Skipped pairs flow through both paths identically.
func TestCampaignStreamAnalyzeParityWithFaults(t *testing.T) {
	const dests, rounds = 40, 5
	plan := netsim.FaultPlan{Seed: 11, BlackholeEvery: 5}
	run := func(stream bool) *Stats {
		camp, _, _, _ := faultyCampaign(t, dests, rounds, plan, Config{
			Workers: 3, Stream: stream, QuarantineAfter: 2,
		})
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stream {
			return res.Stats
		}
		return Analyze(res)
	}
	st, mat := run(true), run(false)
	if st.Robust.Failed == 0 {
		t.Fatal("degenerate: no failures injected")
	}
	if !reflect.DeepEqual(st, mat) {
		t.Errorf("streaming and Analyze disagree under faults:\nstream:  %+v\nanalyze: %+v", st, mat)
	}
}

// TestCampaignFailFastAborts preserves the historical semantics: with
// FailFast the first trace error fails the whole campaign and carries the
// transport taxonomy.
func TestCampaignFailFastAborts(t *testing.T) {
	camp, _, _, sleeps := faultyCampaign(t, 20, 3, netsim.FaultPlan{Seed: 1, BlackholeEvery: 1}, Config{
		Workers:  4,
		FailFast: true,
	})
	res, err := camp.Run()
	if err == nil {
		t.Fatal("FailFast campaign over a blackholed network returned no error")
	}
	if res != nil {
		t.Fatalf("failed campaign returned results: %+v", res)
	}
	if len(*sleeps) != 0 {
		t.Fatalf("FailFast retried (%d backoff waits)", len(*sleeps))
	}
}

// TestCampaignContextCancel: canceling the context stops the campaign at
// the interrupted round and surfaces ctx.Err alongside the partial results.
func TestCampaignContextCancel(t *testing.T) {
	const cancelAt = 2
	sc := topo.Generate(invarianceConfig(30))
	ctx, cancel := context.WithCancel(context.Background())
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), Config{
		Dests:   sc.Dests,
		Rounds:  6,
		Workers: 4,
		RoundStart: func(r int) {
			if r == cancelAt {
				cancel()
			}
			sc.RoundStart(r)
		},
		PortSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Rounds) != cancelAt {
		t.Fatalf("canceled campaign retained %d complete rounds, want %d", len(res.Rounds), cancelAt)
	}
}

// TestRunRoundLeaksNoGoroutines guards the worker-error paths in both
// policies: after a FailFast abort, a degraded completion, and a canceled
// run, every worker goroutine must have exited.
func TestRunRoundLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	plan := netsim.FaultPlan{Seed: 1, BlackholeEvery: 1}

	ff, _, _, _ := faultyCampaign(t, 20, 2, plan, Config{Workers: 8, FailFast: true})
	if _, err := ff.Run(); err == nil {
		t.Fatal("expected FailFast error")
	}

	deg, _, _, _ := faultyCampaign(t, 20, 2, plan, Config{Workers: 8, Stream: true, QuarantineAfter: 1})
	if _, err := deg.Run(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc, _, _, _ := faultyCampaign(t, 20, 2, plan, Config{Workers: 8, Stream: true})
	if _, err := cc.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v", err)
	}

	// Workers exit through wg.Wait before Run returns, so any residue is a
	// leak. The three runs above launched 24 workers; tolerate a couple of
	// unrelated runtime goroutines (finalizers, race-detector helpers)
	// while still catching any stuck worker, and allow scheduler lag
	// before declaring a leak.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= base+2 {
			break
		}
		if i >= 2000 {
			t.Fatalf("goroutines leaked: %d before, %d after", base, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackoffSchedule pins the retry delay computation: deterministic,
// exponential, jittered within [0.5, 1.5), capped.
func TestBackoffSchedule(t *testing.T) {
	sc := topo.Generate(invarianceConfig(4))
	camp, err := NewCampaign(netsim.NewTransport(sc.Net), Config{
		Dests:           sc.Dests,
		RetryBackoff:    100 * time.Millisecond,
		RetryBackoffMax: 400 * time.Millisecond,
		PortSeed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := sc.Dests[0]
	for attempt := 1; attempt <= 6; attempt++ {
		got := camp.backoff(d, 3, attempt)
		if again := camp.backoff(d, 3, attempt); again != got {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, got, again)
		}
		base := 100 * time.Millisecond << (attempt - 1)
		if base <= 0 || base > 400*time.Millisecond {
			base = 400 * time.Millisecond
		}
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if got < lo || got >= hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, got, lo, hi)
		}
	}
	if a, b := camp.backoff(sc.Dests[0], 0, 1), camp.backoff(sc.Dests[1], 0, 1); a == b {
		t.Error("jitter identical across destinations; retries would march in lockstep")
	}
}
