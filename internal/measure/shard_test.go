package measure

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/topo"
)

// runShardStats executes one campaign over a deterministic scenario
// partitioned across the given number of shards and returns its normalized
// statistics. The topology config is the same schedule-independent one the
// worker-invariance test uses, so any difference between shard counts is a
// sharding bug, not probe-interleaving noise.
func runShardStats(t *testing.T, shards, workers, dests int) *Stats {
	t.Helper()
	cfg := invarianceConfig(dests)
	cfg.Shards = shards
	sc := topo.Generate(cfg)
	if shards > 1 && len(sc.Nets) != shards {
		t.Fatalf("Generate built %d shard networks, want %d", len(sc.Nets), shards)
	}
	camp, err := NewCampaign(sc.Transport(), Config{
		Dests:      sc.Dests,
		Rounds:     5,
		Workers:    workers,
		RoundStart: sc.RoundStart,
		PortSeed:   42,
		ShardOf:    sc.ShardOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(res)
	sort.Slice(s.AllAddresses, func(i, j int) bool {
		return s.AllAddresses[i].Less(s.AllAddresses[j])
	})
	return s
}

// TestCampaignShardInvariance is the partitioning analogue of the worker-
// invariance gate: a deterministic topology measured as one network must
// yield byte-identical anomaly statistics when partitioned across four
// independent shards. Per the paper, each destination's anomaly behaviour
// is determined by its own pod's gadgets, so distributing pods across
// shards must not move a single number in the Section 4 tables.
func TestCampaignShardInvariance(t *testing.T) {
	const dests = 160
	one := runShardStats(t, 1, 32, dests)
	four := runShardStats(t, 4, 32, dests)

	if one.Loops.Instances == 0 {
		t.Fatal("deterministic campaign saw no loops at all; invariance check degenerate")
	}
	if one.Diamonds.Total == 0 {
		t.Fatal("deterministic campaign saw no diamonds; invariance check degenerate")
	}
	if !reflect.DeepEqual(one, four) {
		t.Errorf("campaign statistics differ between Shards=1 and Shards=4:\none:  %+v\nfour: %+v", one, four)
	}
}

// TestCampaignShardRoutesIdentical drills below the aggregates: the
// per-destination measured routes must match hop for hop between the
// single-network and the sharded engine, and also when the sharded engine
// runs with fewer workers than shards (whole-shard round-robin fallback).
func TestCampaignShardRoutesIdentical(t *testing.T) {
	run := func(shards, workers int) *Results {
		cfg := invarianceConfig(80)
		cfg.Shards = shards
		sc := topo.Generate(cfg)
		camp, err := NewCampaign(sc.Transport(), Config{
			Dests:      sc.Dests,
			Rounds:     2,
			Workers:    workers,
			RoundStart: sc.RoundStart,
			PortSeed:   7,
			ShardOf:    sc.ShardOf,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1, 8)
	for _, workers := range []int{8, 2} { // 2 < 4 shards: fallback path
		b := run(4, workers)
		for r := range a.Rounds {
			for i := range a.Rounds[r] {
				pa, pb := a.Rounds[r][i], b.Rounds[r][i]
				if !sameAddrs(pa.Paris.Addresses(), pb.Paris.Addresses()) ||
					!sameAddrs(pa.Classic.Addresses(), pb.Classic.Addresses()) {
					t.Fatalf("workers=%d round %d dest %v: routes differ between Shards=1 and Shards=4", workers, r, pa.Dest)
				}
			}
		}
	}
}

// TestWorkerPlanShardAffine checks the scheduling invariant directly: with
// at least as many workers as shards, no worker's slice ever spans two
// shards, every destination is planned exactly once, and empty workers are
// tolerated.
func TestWorkerPlanShardAffine(t *testing.T) {
	cfg := invarianceConfig(160)
	cfg.Shards = 4
	sc := topo.Generate(cfg)
	c, err := NewCampaign(sc.Transport(), Config{
		Dests: sc.Dests, Workers: 32, ShardOf: sc.ShardOf, PortSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for w, idxs := range c.plan {
		shard := -1
		for _, i := range idxs {
			if seen[i] {
				t.Fatalf("destination index %d planned twice", i)
			}
			seen[i] = true
			s := sc.ShardOf[sc.Dests[i]]
			if shard == -1 {
				shard = s
			} else if s != shard {
				t.Fatalf("worker %d spans shards %d and %d", w, shard, s)
			}
		}
	}
	if len(seen) != len(sc.Dests) {
		t.Fatalf("plan covers %d of %d destinations", len(seen), len(sc.Dests))
	}
}
