package measure

import (
	"net/netip"
	"runtime"
	"sync"

	"repro/internal/anomaly"
	"repro/internal/tracer"
)

// LoopStats aggregates Section 4.1.2.
type LoopStats struct {
	// Instances is the number of loops observed in classic routes.
	Instances int
	// RoutesWithLoop counts classic measured routes containing at least
	// one loop (the paper: 5.3% of routes).
	RoutesWithLoop int
	// DestsWithLoop counts destinations toward which a loop was ever
	// observed (the paper: 18%).
	DestsWithLoop int
	// AddrsInLoop counts discovered addresses involved in a loop at
	// least once (the paper: 6.3% of all addresses).
	AddrsInLoop int
	// Signatures counts distinct (addr, dest) loop signatures.
	Signatures int
	// OneRoundSignatures counts signatures observed in exactly one
	// round (the paper: 18% of signatures).
	OneRoundSignatures int
	// ParisOnly counts loop instances seen by Paris whose address loops
	// nowhere in the paired classic route (the paper: 0.25% of the
	// classic count).
	ParisOnly int
	// ByCause tallies classic loop instances per attributed cause
	// (the paper: 87% per-flow, 6.9% zero-TTL, 1.2% unreachability,
	// 2.8% rewriting, 2.5% per-packet).
	ByCause map[anomaly.Cause]int
}

// CycleStats aggregates Section 4.2.2.
type CycleStats struct {
	Instances          int
	RoutesWithCycle    int // paper: 0.84% of routes
	DestsWithCycle     int // paper: 11%
	AddrsInCycle       int // paper: 3.6%
	Signatures         int
	OneRoundSignatures int // paper: 30%
	// MeanRoundsPerSignature is the average number of rounds each cycle
	// signature was observed in (the paper: 6.8 rounds, or 1.2%).
	MeanRoundsPerSignature float64
	ByCause                map[anomaly.Cause]int
}

// DiamondStats aggregates Section 4.3.2.
type DiamondStats struct {
	// Total counts diamonds across all per-destination classic graphs
	// (the paper: 16,385).
	Total int
	// DestsWithDiamond counts destinations whose classic graph contains
	// at least one diamond (the paper: 79%).
	DestsWithDiamond int
	// PerFlow counts classic diamonds absent from the paired Paris graph
	// (the paper: 64%).
	PerFlow int
	// ParisTotal counts diamonds remaining in Paris graphs.
	ParisTotal int
}

// RobustStats accounts for the campaign's error policy: of the
// destination-rounds attempted, how many pairs were measured, how many
// failed after the retry budget, and how many were skipped because their
// destination had been quarantined. All zero on a fault-free campaign.
type RobustStats struct {
	// Probed counts successfully measured pairs (equals Stats.Routes).
	Probed int
	// Failed counts pairs whose measurement failed after retries.
	Failed int
	// Skipped counts pairs never attempted: their destination was
	// quarantined by the error budget when the round reached it.
	Skipped int
	// QuarantinedDests counts destinations with at least one Skipped
	// pair — derivable purely from the folded pairs, so streaming and
	// materialize-then-Analyze agree byte for byte.
	QuarantinedDests int

	// The remaining fields are the always-on daemon's degraded-mode
	// accounting (internal/daemon); they stay zero on batch campaigns.
	// Merge does not sum them — the daemon stamps them onto each served
	// snapshot from its own supervision counters, which live outside the
	// accumulators (a shed job was never measured, so there is no pair
	// to fold).

	// Shed counts jobs dropped at scheduler admission by the shed-oldest
	// overload policy (the destination is re-armed, never lost).
	Shed int `json:",omitempty"`
	// WorkerRestarts counts supervised worker replacements after a
	// panic (restart-with-backoff; see the daemon's state machine).
	WorkerRestarts int `json:",omitempty"`
	// WatchdogStalls counts traces the watchdog declared stalled and
	// abandoned (the wedged worker is replaced, its late result
	// discarded).
	WatchdogStalls int `json:",omitempty"`
	// DeadWorkers counts workers that exhausted their restart budget;
	// nonzero means the daemon is running degraded.
	DeadWorkers int `json:",omitempty"`

	// Mux, when the campaign probes through a shared live socket mux
	// (internal/tracer/live.Mux), is the mux's health snapshot — in-flight
	// probes, kernel drops, socket reopens, pressure events, adaptive-
	// timeout spread. Like the daemon fields it is stamped by the binary
	// that owns the mux, never merged: the counters live in the mux, not
	// in the folded pairs. Nil on simulated and per-worker-socket runs.
	Mux *tracer.MuxHealth `json:",omitempty"`
}

// RTTStats aggregates per-hop round-trip times across every measured
// route. All samples are virtual-clock times when the campaign runs
// against a netsim network with dynamics enabled (or steps-derived
// synthetic RTTs otherwise); hops with no RTT (stars, zero-RTT
// transports) contribute nothing, so Samples is 0 on a dynamics-off
// simulated campaign with the synthetic per-hop latency disabled.
// Tallies are integer nanoseconds folded in any order, so the aggregate
// is invariant to worker, shard, and batch scheduling like every other
// statistic.
type RTTStats struct {
	// Samples counts hop RTT observations across both tracers.
	Samples int
	// SumNs accumulates the observations in nanoseconds; the mean is
	// SumNs/Samples.
	SumNs int64
	// MinNs and MaxNs bound the observations (0 when Samples is 0).
	MinNs, MaxNs int64
}

// MeanNs returns the mean hop RTT in nanoseconds, 0 without samples.
func (r RTTStats) MeanNs() int64 {
	if r.Samples == 0 {
		return 0
	}
	return r.SumNs / int64(r.Samples)
}

// Stats bundles every Section 4 aggregate plus trace bookkeeping.
type Stats struct {
	Rounds     int
	Dests      int
	Routes     int // classic measured routes (Dests × Rounds when fault-free)
	Responses  int // responding probes across both tracers
	MidStars   int // stars amid responses (paper: 2.6 million)
	AddrsSeen  int // distinct addresses discovered
	ReachedPct float64
	RTT        RTTStats
	Robust     RobustStats
	Loops      LoopStats
	Cycles     CycleStats
	Diamonds   DiamondStats
	// AllAddresses lists the distinct responder addresses in ascending
	// order (Merge sorts them), so reports and AS-coverage output are
	// reproducible run to run.
	AllAddresses []netip.Addr
}

// Analyze computes the paper's statistics over retained campaign results.
// It feeds every pair through the same streaming Accumulator a Config.
// Stream campaign uses and merges the partials, so retained-results and
// streaming callers get identical Stats from one implementation
// (TestCampaignStreamInvariance pins this). Campaign-shaped results —
// every round listing the same destination in the same column, which is
// what Campaign.Run produces — are accumulated in parallel across
// destination chunks; Merge makes the outcome independent of the chunking.
func Analyze(res *Results) *Stats {
	rounds, dests := len(res.Rounds), len(res.Config.Dests)
	if n, shaped := campaignShaped(res); shaped {
		if p := analyzeParallelism(n); p > 1 {
			accs := make([]*Accumulator, p)
			var wg sync.WaitGroup
			for g := range accs {
				accs[g] = NewAccumulator()
				lo, hi := g*n/p, (g+1)*n/p
				wg.Add(1)
				go func(a *Accumulator, lo, hi int) {
					defer wg.Done()
					for r := range res.Rounds {
						pairs := res.Rounds[r]
						for i := lo; i < hi; i++ {
							a.foldAt(&pairs[i], r)
						}
					}
				}(accs[g], lo, hi)
			}
			wg.Wait()
			return Merge(rounds, dests, accs...)
		}
	}
	a := NewAccumulator()
	for r := range res.Rounds {
		for i := range res.Rounds[r] {
			a.foldAt(&res.Rounds[r][i], r)
		}
	}
	return Merge(rounds, dests, a)
}

// campaignShaped reports whether every round lists the same destination in
// the same column, with no destination in two columns. Only then may
// Analyze chunk columns across goroutines while keeping each destination's
// pairs in one accumulator in round order (the Fold contract); hand-built
// Results with other layouts — including duplicated destinations, which
// the address-keyed serial accumulator still merges correctly — take the
// serial path.
func campaignShaped(res *Results) (int, bool) {
	if len(res.Rounds) == 0 {
		return 0, false
	}
	first := res.Rounds[0]
	seen := make(map[netip.Addr]bool, len(first))
	for i := range first {
		if seen[first[i].Dest] {
			return 0, false
		}
		seen[first[i].Dest] = true
	}
	for _, pairs := range res.Rounds[1:] {
		if len(pairs) != len(first) {
			return 0, false
		}
		for i := range pairs {
			if pairs[i].Dest != first[i].Dest {
				return 0, false
			}
		}
	}
	return len(first), true
}

// analyzeParallelism sizes the accumulator fan-out: one chunk per core,
// but never chunks smaller than 64 destinations (goroutine and merge
// overhead would beat the win on small studies).
func analyzeParallelism(dests int) int {
	p := runtime.GOMAXPROCS(0)
	if chunks := (dests + 63) / 64; p > chunks {
		p = chunks
	}
	if p < 1 {
		p = 1
	}
	return p
}

// pct returns 100*a/b.
func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// CausePct returns the share of cause c among the tallied instances.
func CausePct(byCause map[anomaly.Cause]int, c anomaly.Cause) float64 {
	total := 0
	for _, n := range byCause {
		total += n
	}
	return pct(byCause[c], total)
}
