package measure

import (
	"net/netip"

	"repro/internal/anomaly"
)

// LoopStats aggregates Section 4.1.2.
type LoopStats struct {
	// Instances is the number of loops observed in classic routes.
	Instances int
	// RoutesWithLoop counts classic measured routes containing at least
	// one loop (the paper: 5.3% of routes).
	RoutesWithLoop int
	// DestsWithLoop counts destinations toward which a loop was ever
	// observed (the paper: 18%).
	DestsWithLoop int
	// AddrsInLoop counts discovered addresses involved in a loop at
	// least once (the paper: 6.3% of all addresses).
	AddrsInLoop int
	// Signatures counts distinct (addr, dest) loop signatures.
	Signatures int
	// OneRoundSignatures counts signatures observed in exactly one
	// round (the paper: 18% of signatures).
	OneRoundSignatures int
	// ParisOnly counts loop instances seen by Paris whose address loops
	// nowhere in the paired classic route (the paper: 0.25% of the
	// classic count).
	ParisOnly int
	// ByCause tallies classic loop instances per attributed cause
	// (the paper: 87% per-flow, 6.9% zero-TTL, 1.2% unreachability,
	// 2.8% rewriting, 2.5% per-packet).
	ByCause map[anomaly.Cause]int
}

// CycleStats aggregates Section 4.2.2.
type CycleStats struct {
	Instances          int
	RoutesWithCycle    int // paper: 0.84% of routes
	DestsWithCycle     int // paper: 11%
	AddrsInCycle       int // paper: 3.6%
	Signatures         int
	OneRoundSignatures int // paper: 30%
	// MeanRoundsPerSignature is the average number of rounds each cycle
	// signature was observed in (the paper: 6.8 rounds, or 1.2%).
	MeanRoundsPerSignature float64
	ByCause                map[anomaly.Cause]int
}

// DiamondStats aggregates Section 4.3.2.
type DiamondStats struct {
	// Total counts diamonds across all per-destination classic graphs
	// (the paper: 16,385).
	Total int
	// DestsWithDiamond counts destinations whose classic graph contains
	// at least one diamond (the paper: 79%).
	DestsWithDiamond int
	// PerFlow counts classic diamonds absent from the paired Paris graph
	// (the paper: 64%).
	PerFlow int
	// ParisTotal counts diamonds remaining in Paris graphs.
	ParisTotal int
}

// Stats bundles every Section 4 aggregate plus trace bookkeeping.
type Stats struct {
	Rounds       int
	Dests        int
	Routes       int // classic measured routes (Dests × Rounds)
	Responses    int // responding probes across both tracers
	MidStars     int // stars amid responses (paper: 2.6 million)
	AddrsSeen    int // distinct addresses discovered
	ReachedPct   float64
	Loops        LoopStats
	Cycles       CycleStats
	Diamonds     DiamondStats
	AllAddresses []netip.Addr // distinct responder addresses (for AS coverage)
}

// Analyze computes the paper's statistics over campaign results.
func Analyze(res *Results) *Stats {
	s := &Stats{
		Rounds: len(res.Rounds),
		Dests:  len(res.Config.Dests),
		Loops:  LoopStats{ByCause: make(map[anomaly.Cause]int)},
		Cycles: CycleStats{ByCause: make(map[anomaly.Cause]int)},
	}

	addrs := make(map[netip.Addr]bool)
	loopAddrs := make(map[netip.Addr]bool)
	cycleAddrs := make(map[netip.Addr]bool)
	loopDests := make(map[netip.Addr]bool)
	cycleDests := make(map[netip.Addr]bool)
	loopSigRounds := make(map[anomaly.Signature]map[int]bool)
	cycleSigRounds := make(map[anomaly.Signature]map[int]bool)
	classicGraphs := make(map[netip.Addr]*anomaly.Graph)
	parisGraphs := make(map[netip.Addr]*anomaly.Graph)
	reached := 0

	for round, pairs := range res.Rounds {
		for _, p := range pairs {
			s.Routes++
			if p.Classic.Reached() {
				reached++
			}
			// Bookkeeping over both traces. Stars count as "mid" only
			// when a response follows later in the route — trailing
			// stars are the normal end-of-trace pattern (Section 3).
			lastResp := -1
			for i, h := range p.Classic.Hops {
				if !h.Star() {
					lastResp = i
					s.Responses++
					addrs[h.Addr] = true
				}
			}
			for i, h := range p.Classic.Hops {
				if h.Star() && i < lastResp {
					s.MidStars++
				}
			}
			for _, h := range p.Paris.Hops {
				if !h.Star() {
					s.Responses++
					addrs[h.Addr] = true
				}
			}

			// Loops (classic, classified against the paired Paris).
			loops := anomaly.FindLoops(p.Classic)
			if len(loops) > 0 {
				s.Loops.RoutesWithLoop++
				loopDests[p.Dest] = true
			}
			for _, l := range loops {
				s.Loops.Instances++
				loopAddrs[l.Addr] = true
				cause := anomaly.ClassifyLoop(l, p.Classic, p.Paris)
				s.Loops.ByCause[cause]++
				sig := l.Signature()
				if loopSigRounds[sig] == nil {
					loopSigRounds[sig] = make(map[int]bool)
				}
				loopSigRounds[sig][round] = true
			}
			// Paris-only loops.
			for _, l := range anomaly.FindLoops(p.Paris) {
				found := false
				for _, cl := range loops {
					if cl.Addr == l.Addr {
						found = true
						break
					}
				}
				if !found {
					s.Loops.ParisOnly++
				}
			}

			// Cycles.
			cycles := anomaly.FindCycles(p.Classic)
			if len(cycles) > 0 {
				s.Cycles.RoutesWithCycle++
				cycleDests[p.Dest] = true
			}
			for _, c := range cycles {
				s.Cycles.Instances++
				cycleAddrs[c.Addr] = true
				cause := anomaly.ClassifyCycle(c, p.Classic, p.Paris)
				s.Cycles.ByCause[cause]++
				sig := c.Signature()
				if cycleSigRounds[sig] == nil {
					cycleSigRounds[sig] = make(map[int]bool)
				}
				cycleSigRounds[sig][round] = true
			}

			// Per-destination graphs for the diamond study.
			cg := classicGraphs[p.Dest]
			if cg == nil {
				cg = anomaly.NewGraph(p.Dest)
				classicGraphs[p.Dest] = cg
			}
			cg.Add(p.Classic)
			pg := parisGraphs[p.Dest]
			if pg == nil {
				pg = anomaly.NewGraph(p.Dest)
				parisGraphs[p.Dest] = pg
			}
			pg.Add(p.Paris)
		}
	}

	s.AddrsSeen = len(addrs)
	for a := range addrs {
		s.AllAddresses = append(s.AllAddresses, a)
	}
	if s.Routes > 0 {
		s.ReachedPct = pct(reached, s.Routes)
	}

	s.Loops.DestsWithLoop = len(loopDests)
	s.Loops.AddrsInLoop = len(loopAddrs)
	s.Loops.Signatures = len(loopSigRounds)
	for _, rounds := range loopSigRounds {
		if len(rounds) == 1 {
			s.Loops.OneRoundSignatures++
		}
	}

	s.Cycles.DestsWithCycle = len(cycleDests)
	s.Cycles.AddrsInCycle = len(cycleAddrs)
	s.Cycles.Signatures = len(cycleSigRounds)
	totalRounds := 0
	for _, rounds := range cycleSigRounds {
		if len(rounds) == 1 {
			s.Cycles.OneRoundSignatures++
		}
		totalRounds += len(rounds)
	}
	if len(cycleSigRounds) > 0 {
		s.Cycles.MeanRoundsPerSignature = float64(totalRounds) / float64(len(cycleSigRounds))
	}

	for dest, cg := range classicGraphs {
		ds := cg.Diamonds()
		if len(ds) > 0 {
			s.Diamonds.DestsWithDiamond++
		}
		s.Diamonds.Total += len(ds)
		pg := parisGraphs[dest]
		for _, d := range ds {
			if anomaly.ClassifyDiamond(d, pg) == anomaly.CausePerFlowLB {
				s.Diamonds.PerFlow++
			}
		}
		if pg != nil {
			s.Diamonds.ParisTotal += len(pg.Diamonds())
		}
	}

	return s
}

// pct returns 100*a/b.
func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// CausePct returns the share of cause c among the tallied instances.
func CausePct(byCause map[anomaly.Cause]int, c anomaly.Cause) float64 {
	total := 0
	for _, n := range byCause {
		total += n
	}
	return pct(byCause[c], total)
}
