package measure

import (
	"net/netip"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/tracer"
)

// This file is the streaming statistics engine: an Accumulator folds
// completed pairs into partial Section 4 statistics the moment they are
// measured, so a campaign never has to retain its routes. Memory is
// O(destinations + unique routes) — independent of the round count — where
// the old materialize-then-Analyze pipeline held every Pair of every round
// (O(destinations × rounds)).
//
// The accumulator exploits round-over-round route stability by interning:
// each destination keeps its distinct routes keyed by tracer.Route
// fingerprint (verified with Route.Equal against the canonical object, so a
// 64-bit collision can only cost speed, never correctness), and every
// interned route memoizes the work that depends on it alone — loop/cycle
// detection, response and mid-star tallies, reachability, its diamond-graph
// contribution. Classification, which differences the classic route against
// its paired Paris route, is memoized per (classic, paris) fingerprint
// combination. A stable path therefore costs two fingerprints, two equality
// checks and a handful of counter increments per round — zero anomaly work.
//
// Fingerprints and equality deliberately ignore RTTs and response IP IDs:
// both change on every exchange even when the path did not (each
// responder's IP ID counter advances per reply), and keying on them would
// make every round's route "unique", degrading memory right back to
// O(destinations × rounds). The only two classification rules that read IP
// IDs — the zero-TTL loop check and periodic-cycle counter coherence — are
// gated on path-stable patterns (quoted-TTL 0-then-1, periodicity), so
// Fold re-evaluates exactly those instances against the current round's
// route and reuses the memoized cause everywhere else.

// routeMemo is one interned measured route: the canonical *tracer.Route for
// its fingerprint plus everything the statistics need from that route
// alone, computed once when first seen. Reusing the memo also reuses the
// interned object — the new round's identical Route is dropped instead of
// retained.
type routeMemo struct {
	rt        *tracer.Route
	loops     []anomaly.Loop
	cycles    []anomaly.Cycle
	responses int
	midStars  int
	reached   bool
	// seq is the memo's intern order within its destination, so checkpoint
	// serialization can replay routes in first-seen order and produce
	// byte-identical files run over run.
	seq int
}

// pairKey identifies a (classic, paris) route combination by the two
// fingerprints. It is only consulted after both routes interned cleanly, so
// within one destination the fingerprints identify the routes uniquely.
type pairKey struct{ classic, paris uint64 }

// pairMemo is the memoized cross-route classification for one pairKey; the
// cause slices line up with the classic memo's loops and cycles.
type pairMemo struct {
	loopCauses  []anomaly.Cause
	cycleCauses []anomaly.Cause
	parisOnly   int
}

// sigSpan tracks one anomaly signature's observation rounds. Pairs for a
// destination arrive in nondecreasing round order (the accumulator
// contract), so counting distinct rounds needs only the last round seen.
type sigSpan struct {
	lastRound int
	rounds    int
}

// destState is everything the accumulator keeps per destination: the
// interned routes and pair classifications, the incrementally grown diamond
// graphs, and the signature spans. Signatures are (address, destination)
// pairs, so keying the span maps by address alone loses nothing.
type destState struct {
	classic, paris           map[uint64]*routeMemo
	pairs                    map[pairKey]*pairMemo
	classicGraph, parisGraph *anomaly.Graph
	loopSigs, cycleSigs      map[netip.Addr]*sigSpan
	sawLoop, sawCycle        bool
	// nextSeq numbers interned routes in first-seen order (classic and
	// paris share one counter), for deterministic checkpoint output.
	nextSeq int
}

func newDestState(dest netip.Addr) *destState {
	return &destState{
		classic:      make(map[uint64]*routeMemo),
		paris:        make(map[uint64]*routeMemo),
		pairs:        make(map[pairKey]*pairMemo),
		classicGraph: anomaly.NewGraph(dest),
		parisGraph:   anomaly.NewGraph(dest),
		loopSigs:     make(map[netip.Addr]*sigSpan),
		cycleSigs:    make(map[netip.Addr]*sigSpan),
	}
}

// note records one observation of a signature in a round; repeated
// instances in the same round collapse, matching the per-round signature
// sets Analyze historically kept.
func note(sigs map[netip.Addr]*sigSpan, addr netip.Addr, round int) {
	sp := sigs[addr]
	if sp == nil {
		sigs[addr] = &sigSpan{lastRound: round, rounds: 1}
		return
	}
	if sp.lastRound != round {
		sp.lastRound = round
		sp.rounds++
	}
}

// DefaultFoldEvery is the per-worker fold-batch size the streaming campaign
// uses when Config.FoldEvery is zero: completed pairs stage in a small ring
// and fold K at a time, so the accumulator's interning maps are walked in
// bursts while hot instead of once per trace while cold. This closes the
// small-study locality gap the ROADMAP tracked (fold-as-you-go cost ~13%
// extra wall at small round counts) without changing a single statistic:
// batching only defers folds, it never reorders them, so the per-
// destination nondecreasing-round contract — and with it byte-identical
// Stats — holds for every K (TestCampaignStreamInvariance pins K=1 vs 16).
const DefaultFoldEvery = 16

// foldRing is one worker's staging buffer: a fixed-capacity ring of
// completed pairs folded K at a time in completion order. A ring belongs to
// exactly one worker across all rounds (the same ownership rule as the
// accumulator it feeds) and must be flushed before Merge reads partials.
type foldRing struct {
	buf []Pair
}

// push stages one completed pair, folding the whole ring once k are
// waiting.
func (r *foldRing) push(a *Accumulator, p Pair, k int) {
	r.buf = append(r.buf, p)
	if len(r.buf) >= k {
		r.flush(a)
	}
}

// flush folds every staged pair, in order, and empties the ring (dropping
// the route pointers so interned duplicates stay collectable).
func (r *foldRing) flush(a *Accumulator) {
	for i := range r.buf {
		a.Fold(&r.buf[i])
		r.buf[i] = Pair{}
	}
	r.buf = r.buf[:0]
}

// Accumulator folds completed pairs into partial campaign statistics. It is
// not safe for concurrent use: a streaming campaign gives each worker its
// own Accumulator, every destination's pairs flow through the single worker
// that owns it (in round order), and the partials meet only in Merge after
// the last round. Analyze partitions retained results the same way.
type Accumulator struct {
	routes, reached, responses, midStars int

	// Hop RTT tallies. Folded per pair per round — never memoized with
	// the route, since RTTs vary round over round even on a stable path
	// (interning equality deliberately ignores them). Integer sums keep
	// the fold order-independent, so Merge stays schedule-invariant.
	rttSamples     int
	rttSum         int64
	rttMin, rttMax int64

	routesWithLoop, loopInstances, parisOnly int
	routesWithCycle, cycleInstances          int
	loopByCause, cycleByCause                map[anomaly.Cause]int

	addrs, loopAddrs, cycleAddrs map[netip.Addr]bool

	dests map[netip.Addr]*destState

	// failed and skipped tally the error policy's non-measured pairs;
	// skippedDests marks destinations with at least one Skipped pair
	// (the quarantined set, derivable purely from the folded pairs so
	// streaming and Analyze stay byte-identical).
	failed, skipped int
	skippedDests    map[netip.Addr]bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		loopByCause:  make(map[anomaly.Cause]int),
		cycleByCause: make(map[anomaly.Cause]int),
		addrs:        make(map[netip.Addr]bool),
		loopAddrs:    make(map[netip.Addr]bool),
		cycleAddrs:   make(map[netip.Addr]bool),
		dests:        make(map[netip.Addr]*destState),
		skippedDests: make(map[netip.Addr]bool),
	}
}

// analyzeRoute computes one route's memo from scratch: detection, response
// and mid-star tallies (mid-stars are a classic-route statistic), address
// bookkeeping, and the route's diamond-graph contribution.
func (a *Accumulator) analyzeRoute(rt *tracer.Route, classic bool, ds *destState) routeMemo {
	mo := routeMemo{
		rt:      rt,
		loops:   anomaly.FindLoops(rt),
		cycles:  anomaly.FindCycles(rt),
		reached: rt.Reached(),
	}
	lastResp := -1
	for i, h := range rt.Hops {
		if !h.Star() {
			lastResp = i
			mo.responses++
			a.addrs[h.Addr] = true
		}
	}
	if classic {
		// Stars count as "mid" only when a response follows later in the
		// route — trailing stars are the normal end-of-trace pattern
		// (Section 3).
		for i, h := range rt.Hops {
			if h.Star() && i < lastResp {
				mo.midStars++
			}
		}
		ds.classicGraph.Add(rt)
	} else {
		ds.parisGraph.Add(rt)
	}
	return mo
}

// intern returns the destination's memo for rt, creating it on first sight.
// It returns nil on a fingerprint collision (fingerprint present, contents
// unequal); the caller then computes the pair without memoization — every
// side effect of analyzeRoute is idempotent, so correctness is unaffected.
func (a *Accumulator) intern(m map[uint64]*routeMemo, rt *tracer.Route, fp uint64, classic bool, ds *destState) *routeMemo {
	if mo := m[fp]; mo != nil {
		if mo.rt.Equal(rt) {
			return mo
		}
		return nil
	}
	mo := new(routeMemo)
	*mo = a.analyzeRoute(rt, classic, ds)
	mo.seq = ds.nextSeq
	ds.nextSeq++
	m[fp] = mo
	return mo
}

// foldRTT tallies one route's hop round-trip times. Unlike the memoized
// per-route statistics this runs on every folded pair: RTTs change round
// over round even when the path is stable (the exact property interning
// equality ignores). Hops without an RTT — stars, or transports that
// report none — contribute nothing.
func (a *Accumulator) foldRTT(rt *tracer.Route) {
	for _, h := range rt.Hops {
		if h.Star() || h.RTT <= 0 {
			continue
		}
		ns := int64(h.RTT)
		a.rttSum += ns
		a.rttSamples++
		if a.rttMin == 0 || ns < a.rttMin {
			a.rttMin = ns
		}
		if ns > a.rttMax {
			a.rttMax = ns
		}
	}
}

// Fold merges one completed pair into the partial statistics, attributing
// it to round p.Round. Pairs for one destination must all be folded into
// the same Accumulator in nondecreasing round order; pairs for different
// destinations may interleave arbitrarily.
func (a *Accumulator) Fold(p *Pair) { a.foldAt(p, p.Round) }

// foldAt is Fold with the round attribution explicit: Analyze passes the
// round slice index, so hand-built Results are counted the way they always
// were even when the Pair.Round fields were never populated.
func (a *Accumulator) foldAt(p *Pair, round int) {
	switch p.Outcome {
	case OutcomeFailed:
		// Nothing was measured: the pair counts toward the robustness
		// accounting and nowhere else.
		a.failed++
		return
	case OutcomeSkipped:
		a.skipped++
		a.skippedDests[p.Dest] = true
		return
	}
	ds := a.dests[p.Dest]
	if ds == nil {
		ds = newDestState(p.Dest)
		a.dests[p.Dest] = ds
	}

	cfp := p.Classic.Fingerprint()
	pfp := p.Paris.Fingerprint()
	cm := a.intern(ds.classic, p.Classic, cfp, true, ds)
	pm := a.intern(ds.paris, p.Paris, pfp, false, ds)
	memoable := cm != nil && pm != nil
	var cs, ps routeMemo
	if cm == nil {
		cs = a.analyzeRoute(p.Classic, true, ds)
		cm = &cs
	}
	if pm == nil {
		ps = a.analyzeRoute(p.Paris, false, ds)
		pm = &ps
	}

	var causes *pairMemo
	if memoable {
		causes = ds.pairs[pairKey{classic: cfp, paris: pfp}]
	}
	if causes == nil {
		pc := anomaly.ClassifyPairDetected(cm.loops, cm.cycles, pm.loops, pm.cycles, cm.rt, true)
		causes = &pairMemo{loopCauses: pc.LoopCauses, cycleCauses: pc.CycleCauses, parisOnly: pc.ParisOnly}
		if memoable {
			ds.pairs[pairKey{classic: cfp, paris: pfp}] = causes
		}
	}

	a.routes++
	if cm.reached {
		a.reached++
	}
	a.responses += cm.responses + pm.responses
	a.midStars += cm.midStars
	a.foldRTT(p.Classic)
	a.foldRTT(p.Paris)

	if len(cm.loops) > 0 {
		a.routesWithLoop++
		ds.sawLoop = true
	}
	for i, l := range cm.loops {
		a.loopInstances++
		a.loopAddrs[l.Addr] = true
		cause := causes.loopCauses[i]
		if anomaly.LoopConsultsIPID(l, cm.rt) {
			// The zero-TTL rule reads IP IDs, the one loop observable
			// excluded from interning equality; re-evaluate against this
			// round's route. The quoted-TTL pattern gating this is rare,
			// so stable paths still skip all classification work.
			cause = anomaly.ClassifyLoopDetected(l, p.Classic, pm.loops, true)
		}
		a.loopByCause[cause]++
		note(ds.loopSigs, l.Addr, round)
	}
	a.parisOnly += causes.parisOnly

	if len(cm.cycles) > 0 {
		a.routesWithCycle++
		ds.sawCycle = true
	}
	for i, c := range cm.cycles {
		a.cycleInstances++
		a.cycleAddrs[c.Addr] = true
		cause := causes.cycleCauses[i]
		if anomaly.CycleConsultsIPID(c) {
			// Periodic cycles check IP ID coherence per round (Section
			// 4.2.1) — same reasoning as the loop override above.
			cause = anomaly.ClassifyCycleDetected(c, p.Classic, pm.cycles, true)
		}
		a.cycleByCause[cause]++
		note(ds.cycleSigs, c.Addr, round)
	}
}

// Merge combines per-worker accumulators into the campaign-wide Stats —
// the same struct Analyze produces over retained results (they share this
// code). rounds and dests are the campaign dimensions (per-accumulator
// counts cannot reconstruct them). Every merged quantity is a sum or a set
// union and each destination lives in exactly one accumulator, so the
// result is independent of both accumulator order and map iteration order;
// AllAddresses is sorted, making the whole Stats deterministic.
func Merge(rounds, dests int, accs ...*Accumulator) *Stats {
	s := &Stats{
		Rounds: rounds,
		Dests:  dests,
		Loops:  LoopStats{ByCause: make(map[anomaly.Cause]int)},
		Cycles: CycleStats{ByCause: make(map[anomaly.Cause]int)},
	}
	addrs := make(map[netip.Addr]bool)
	loopAddrs := make(map[netip.Addr]bool)
	cycleAddrs := make(map[netip.Addr]bool)
	reached := 0
	cycleRounds := 0
	for _, a := range accs {
		if a == nil {
			continue
		}
		s.Routes += a.routes
		reached += a.reached
		s.Responses += a.responses
		s.MidStars += a.midStars
		s.RTT.Samples += a.rttSamples
		s.RTT.SumNs += a.rttSum
		if a.rttSamples > 0 {
			if s.RTT.MinNs == 0 || a.rttMin < s.RTT.MinNs {
				s.RTT.MinNs = a.rttMin
			}
			if a.rttMax > s.RTT.MaxNs {
				s.RTT.MaxNs = a.rttMax
			}
		}
		s.Robust.Failed += a.failed
		s.Robust.Skipped += a.skipped
		s.Robust.QuarantinedDests += len(a.skippedDests)

		s.Loops.Instances += a.loopInstances
		s.Loops.RoutesWithLoop += a.routesWithLoop
		s.Loops.ParisOnly += a.parisOnly
		s.Cycles.Instances += a.cycleInstances
		s.Cycles.RoutesWithCycle += a.routesWithCycle
		for c, n := range a.loopByCause {
			s.Loops.ByCause[c] += n
		}
		for c, n := range a.cycleByCause {
			s.Cycles.ByCause[c] += n
		}
		for ad := range a.addrs {
			addrs[ad] = true
		}
		for ad := range a.loopAddrs {
			loopAddrs[ad] = true
		}
		for ad := range a.cycleAddrs {
			cycleAddrs[ad] = true
		}

		for _, ds := range a.dests {
			if ds.sawLoop {
				s.Loops.DestsWithLoop++
			}
			if ds.sawCycle {
				s.Cycles.DestsWithCycle++
			}
			s.Loops.Signatures += len(ds.loopSigs)
			for _, sp := range ds.loopSigs {
				if sp.rounds == 1 {
					s.Loops.OneRoundSignatures++
				}
			}
			s.Cycles.Signatures += len(ds.cycleSigs)
			for _, sp := range ds.cycleSigs {
				if sp.rounds == 1 {
					s.Cycles.OneRoundSignatures++
				}
				cycleRounds += sp.rounds
			}
			dd := ds.classicGraph.Diamonds()
			if len(dd) > 0 {
				s.Diamonds.DestsWithDiamond++
			}
			s.Diamonds.Total += len(dd)
			for _, d := range dd {
				if anomaly.ClassifyDiamond(d, ds.parisGraph) == anomaly.CausePerFlowLB {
					s.Diamonds.PerFlow++
				}
			}
			s.Diamonds.ParisTotal += len(ds.parisGraph.Diamonds())
		}
	}
	s.AddrsSeen = len(addrs)
	if len(addrs) > 0 {
		s.AllAddresses = make([]netip.Addr, 0, len(addrs))
		for ad := range addrs {
			s.AllAddresses = append(s.AllAddresses, ad)
		}
		sort.Slice(s.AllAddresses, func(i, j int) bool {
			return s.AllAddresses[i].Less(s.AllAddresses[j])
		})
	}
	s.Loops.AddrsInLoop = len(loopAddrs)
	s.Cycles.AddrsInCycle = len(cycleAddrs)
	s.Robust.Probed = s.Routes
	if s.Routes > 0 {
		s.ReachedPct = pct(reached, s.Routes)
	}
	if s.Cycles.Signatures > 0 {
		s.Cycles.MeanRoundsPerSignature = float64(cycleRounds) / float64(s.Cycles.Signatures)
	}
	return s
}
