package measure

import (
	"net/netip"
	"reflect"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/topo"
	"repro/internal/tracer"
)

// runStreamStats executes one campaign over a fresh copy of the
// deterministic scenario with the streaming accumulators on or off and
// returns the statistics either path yields.
func runStreamStats(t *testing.T, stream, batch bool, shards, workers, dests, rounds, foldEvery int) *Stats {
	t.Helper()
	cfg := invarianceConfig(dests)
	cfg.Shards = shards
	sc := topo.Generate(cfg)
	camp, err := NewCampaign(sc.Transport(), Config{
		Dests:      sc.Dests,
		Rounds:     rounds,
		Workers:    workers,
		RoundStart: sc.RoundStart,
		PortSeed:   42,
		ShardOf:    sc.ShardOf,
		Batch:      batch,
		Stream:     stream,
		FoldEvery:  foldEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stream {
		if res.Rounds != nil {
			t.Fatalf("streaming campaign retained %d rounds of pairs", len(res.Rounds))
		}
		if res.Stats == nil {
			t.Fatal("streaming campaign returned no Stats")
		}
		return res.Stats
	}
	if res.Stats != nil {
		t.Fatal("materializing campaign returned streamed Stats")
	}
	return Analyze(res)
}

// TestCampaignStreamInvariance is the streaming analogue of the worker-,
// shard- and batch-invariance gates: folding pairs into per-worker
// accumulators as they complete must produce byte-identical Stats —
// including AllAddresses order — to materializing every pair and running
// Analyze, at one shard and four, with the batched ladder off and on.
func TestCampaignStreamInvariance(t *testing.T) {
	const (
		dests  = 120
		rounds = 5
	)
	for _, shards := range []int{1, 4} {
		for _, batch := range []bool{false, true} {
			mat := runStreamStats(t, false, batch, shards, 32, dests, rounds, 0)
			str := runStreamStats(t, true, batch, shards, 32, dests, rounds, 0)
			if mat.Loops.Instances == 0 || mat.Diamonds.Total == 0 {
				t.Fatalf("shards=%d batch=%v: deterministic campaign saw no anomalies; invariance check degenerate", shards, batch)
			}
			if !reflect.DeepEqual(mat, str) {
				t.Errorf("shards=%d batch=%v: campaign statistics differ between materialized Analyze and streaming:\nanalyze: %+v\nstream:  %+v",
					shards, batch, mat, str)
			}
		}
	}
}

// TestCampaignStreamInvarianceFoldEvery pins the fold-batching contract:
// staging completed pairs in the per-worker ring and folding K at a time
// must be byte-identical to folding each pair immediately (K=1), for a K
// smaller than, equal to, and larger than a worker's per-round share — the
// larger-than case forcing folds to defer across round boundaries until
// the end-of-campaign flush.
func TestCampaignStreamInvarianceFoldEvery(t *testing.T) {
	const (
		dests  = 96
		rounds = 4
	)
	immediate := runStreamStats(t, true, true, 1, 32, dests, rounds, 1)
	if immediate.Loops.Instances == 0 {
		t.Fatal("deterministic campaign saw no anomalies; invariance check degenerate")
	}
	// A worker's per-round share is dests/32 = 3 pairs, so K=16 spans
	// rounds and K=1<<20 defers everything to the final flush.
	for _, k := range []int{2, 16, 1 << 20} {
		batched := runStreamStats(t, true, true, 1, 32, dests, rounds, k)
		if !reflect.DeepEqual(immediate, batched) {
			t.Errorf("FoldEvery=%d: campaign statistics differ from FoldEvery=1:\nK=1: %+v\nK=%d: %+v",
				k, immediate, k, batched)
		}
	}
}

// TestCampaignStreamInvarianceFullGadgets repeats the gate on the default
// topology — zero-TTL pods, loopers, per-packet flips and all — which is
// schedule-dependent, so one worker keeps the probe order (and with it
// every IP ID) reproducible. This is the end-to-end check that the
// accumulator's per-round re-evaluation of the IP-ID-consulting rules
// matches what Analyze computes over retained pairs.
func TestCampaignStreamInvarianceFullGadgets(t *testing.T) {
	run := func(stream bool) *Stats {
		cfg := topo.DefaultGenConfig()
		cfg.Destinations = 200
		// Boost the rare IP-ID-consulting gadgets (zero-TTL pods, loopers)
		// so this small draw actually contains the rules under test.
		cfg.PZeroTTLPod = 0.2
		cfg.PLooperPod = 0.2
		sc := topo.Generate(cfg)
		camp, err := NewCampaign(sc.Transport(), Config{
			Dests:      sc.Dests,
			Rounds:     6,
			Workers:    1,
			RoundStart: sc.RoundStart,
			PortSeed:   42,
			Batch:      true,
			Stream:     stream,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stream {
			return res.Stats
		}
		return Analyze(res)
	}
	mat := run(false)
	str := run(true)
	if mat.Loops.ByCause[anomaly.CauseZeroTTL] == 0 {
		t.Error("no zero-TTL loops in this draw; the IP ID re-evaluation path is not covered")
	}
	if !reflect.DeepEqual(mat, str) {
		t.Errorf("full-gadget campaign statistics differ between materialized Analyze and streaming:\nanalyze: %+v\nstream:  %+v", mat, str)
	}
}

// TestAnalyzeAllAddressesSorted pins the deterministic report order: both
// paths emit AllAddresses ascending without any caller-side sort.
func TestAnalyzeAllAddressesSorted(t *testing.T) {
	for _, stream := range []bool{false, true} {
		s := runStreamStats(t, stream, true, 1, 8, 60, 3, 0)
		if len(s.AllAddresses) == 0 {
			t.Fatal("campaign discovered no addresses")
		}
		if len(s.AllAddresses) != s.AddrsSeen {
			t.Fatalf("stream=%v: AllAddresses %d entries, AddrsSeen %d", stream, len(s.AllAddresses), s.AddrsSeen)
		}
		for i := 1; i < len(s.AllAddresses); i++ {
			if !s.AllAddresses[i-1].Less(s.AllAddresses[i]) {
				t.Fatalf("stream=%v: AllAddresses not in ascending order at %d: %v >= %v",
					stream, i, s.AllAddresses[i-1], s.AllAddresses[i])
			}
		}
	}
}

// TestAccumulatorInterning exercises the memoization directly: folding the
// same routes round after round must keep exactly one interned route and
// one pair classification per side while the per-round tallies keep
// counting.
func TestAccumulatorInterning(t *testing.T) {
	d := netip.AddrFrom4([4]byte{172, 16, 0, 1})
	a := NewAccumulator()
	for round := 0; round < 4; round++ {
		p := Pair{
			Dest:  d,
			Round: round,
			// Classic loops on 2; Paris does not (per-flow LB shape).
			Classic: synthRoute(d, 1, 2, 2, 3),
			Paris:   synthRoute(d, 1, 2, 4, 3),
		}
		a.Fold(&p)
	}
	ds := a.dests[d]
	if ds == nil {
		t.Fatal("no destination state")
	}
	if len(ds.classic) != 1 || len(ds.paris) != 1 {
		t.Errorf("interned %d classic and %d paris routes, want 1 and 1", len(ds.classic), len(ds.paris))
	}
	if len(ds.pairs) != 1 {
		t.Errorf("memoized %d pair classifications, want 1", len(ds.pairs))
	}
	if a.routes != 4 || a.loopInstances != 4 {
		t.Errorf("routes=%d loopInstances=%d, want 4 and 4 (tallies must keep counting per round)", a.routes, a.loopInstances)
	}
	if len(ds.loopSigs) != 1 {
		t.Fatalf("loop signatures = %d, want 1", len(ds.loopSigs))
	}
	for _, sp := range ds.loopSigs {
		if sp.rounds != 4 {
			t.Errorf("signature seen in %d rounds, want 4", sp.rounds)
		}
	}

	// A changed route interns a second object and re-classifies.
	p := Pair{Dest: d, Round: 4, Classic: synthRoute(d, 1, 5, 5, 3), Paris: synthRoute(d, 1, 2, 4, 3)}
	a.Fold(&p)
	if len(ds.classic) != 2 || len(ds.paris) != 1 || len(ds.pairs) != 2 {
		t.Errorf("after route change: classic=%d paris=%d pairs=%d, want 2, 1, 2",
			len(ds.classic), len(ds.paris), len(ds.pairs))
	}
}

// TestMergeSplitMatchesSingle feeds one synthetic result set through a
// single accumulator and through two accumulators split by destination;
// the merged statistics must be identical (the merge-associativity the
// per-worker partials rely on).
func TestMergeSplitMatchesSingle(t *testing.T) {
	d1 := netip.AddrFrom4([4]byte{172, 16, 0, 1})
	d2 := netip.AddrFrom4([4]byte{172, 16, 0, 2})
	pairs := []Pair{
		{Dest: d1, Round: 0, Classic: synthRoute(d1, 1, 2, 2, 3), Paris: synthRoute(d1, 1, 2, 4, 3)},
		{Dest: d2, Round: 0, Classic: synthRoute(d2, 1, 5, 6), Paris: synthRoute(d2, 1, 5, 6)},
		{Dest: d1, Round: 1, Classic: synthRoute(d1, 1, 2, 2, 3), Paris: synthRoute(d1, 1, 2, 4, 3)},
		{Dest: d2, Round: 1, Classic: synthRoute(d2, 1, 5, 6, 5, 7), Paris: synthRoute(d2, 1, 5, 6, 8, 7)},
	}

	single := NewAccumulator()
	for i := range pairs {
		single.Fold(&pairs[i])
	}
	a1, a2 := NewAccumulator(), NewAccumulator()
	for i := range pairs {
		if pairs[i].Dest == d1 {
			a1.Fold(&pairs[i])
		} else {
			a2.Fold(&pairs[i])
		}
	}

	one := Merge(2, 2, single)
	split := Merge(2, 2, a1, a2)
	if !reflect.DeepEqual(one, split) {
		t.Errorf("split accumulation differs from single:\none:   %+v\nsplit: %+v", one, split)
	}
	if one.Loops.Instances == 0 || one.Cycles.Instances == 0 {
		t.Fatal("synthetic pairs produced no anomalies; merge check degenerate")
	}
}

// TestCampaignParisPortPlan pins the construction-time port derivation: the
// hoisted per-destination Paris ports must be exactly what portFor derives,
// and in the paper's range.
func TestCampaignParisPortPlan(t *testing.T) {
	sc := smallScenario(t, 20)
	camp, err := NewCampaign(sc.Transport(), Config{Dests: sc.Dests, PortSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sc.Dests {
		if got, want := camp.parisSrc[i], portFor(99, d, 0x517e); got != want {
			t.Fatalf("parisSrc[%d] = %d, want %d", i, got, want)
		}
		if got, want := camp.parisDst[i], portFor(99, d, 0xd057); got != want {
			t.Fatalf("parisDst[%d] = %d, want %d", i, got, want)
		}
		if camp.parisSrc[i] < 10000 || camp.parisSrc[i] >= 60000 {
			t.Fatalf("parisSrc[%d] = %d outside the paper's range", i, camp.parisSrc[i])
		}
	}
}

// obsHop builds a responding hop with explicit observables.
func obsHop(ttl, a, probeTTL, respTTL int, ipid uint16) tracer.Hop {
	return tracer.Hop{
		TTL: ttl, Addr: aAddr(a), Kind: tracer.KindTimeExceeded,
		ProbeTTL: probeTTL, RespTTL: respTTL, IPID: ipid,
	}
}

// TestAccumulatorIPIDRulesPerRound pins the one place interning must NOT
// memoize: the two classification rules that read response IP IDs. The
// same path measured twice interns to one route, but round 0 carries
// coherent IP IDs (zero-TTL loop / forwarding-loop cycle) and round 1
// incoherent ones (falling through to per-flow differencing), and the
// ByCause tallies must reflect each round's own IP IDs — exactly what a
// materialized Analyze computes.
func TestAccumulatorIPIDRulesPerRound(t *testing.T) {
	d := netip.AddrFrom4([4]byte{172, 16, 0, 1})

	// Zero-TTL loop shape (Fig. 4): the loop's first hop quotes probe TTL
	// 0, the second the normal 1. Coherent IP IDs -> CauseZeroTTL;
	// incoherent -> the paired Paris lacks the loop -> CausePerFlowLB.
	classicZero := func(ipid0, ipid1 uint16) *tracer.Route {
		return &tracer.Route{Dest: d, Halt: tracer.HaltMaxTTL, Hops: []tracer.Hop{
			obsHop(1, 1, 1, 250, 9),
			obsHop(2, 2, 0, 249, ipid0),
			obsHop(3, 2, 1, 249, ipid1),
			obsHop(4, 3, 1, 248, 9),
		}}
	}
	paris := &tracer.Route{Dest: d, Halt: tracer.HaltMaxTTL, Hops: []tracer.Hop{
		obsHop(1, 1, 1, 250, 1),
		obsHop(2, 2, 1, 249, 2),
		obsHop(3, 4, 1, 249, 3),
		obsHop(4, 3, 1, 248, 4),
	}}

	a := NewAccumulator()
	// 3000 exceeds the classifier's IP ID coherence gap (1024).
	p0 := Pair{Dest: d, Round: 0, Classic: classicZero(7, 8), Paris: paris}
	p1 := Pair{Dest: d, Round: 1, Classic: classicZero(7, 8+3000), Paris: paris}
	a.Fold(&p0)
	a.Fold(&p1)
	if got := len(a.dests[d].classic); got != 1 {
		t.Fatalf("interned %d classic routes, want 1 (IP IDs must not split interning)", got)
	}
	s := Merge(2, 1, a)
	if s.Loops.ByCause[anomaly.CauseZeroTTL] != 1 || s.Loops.ByCause[anomaly.CausePerFlowLB] != 1 {
		t.Errorf("zero-TTL loop causes = %v, want one zero-ttl (round 0) and one per-flow (round 1)", s.Loops.ByCause)
	}

	// Periodic cycle (Section 4.2.1): coherent IP IDs on the repeated
	// address -> CauseForwardingLoop; incoherent -> CausePerFlowLB.
	classicCycle := func(ipids [3]uint16) *tracer.Route {
		return &tracer.Route{Dest: d, Halt: tracer.HaltMaxTTL, Hops: []tracer.Hop{
			obsHop(1, 5, 1, 250, ipids[0]),
			obsHop(2, 6, 1, 249, 50),
			obsHop(3, 5, 1, 250, ipids[1]),
			obsHop(4, 6, 1, 249, 51),
			obsHop(5, 5, 1, 250, ipids[2]),
		}}
	}
	parisClean := &tracer.Route{Dest: d, Halt: tracer.HaltMaxTTL, Hops: []tracer.Hop{
		obsHop(1, 5, 1, 250, 1),
		obsHop(2, 6, 1, 249, 2),
		obsHop(3, 7, 1, 250, 3),
	}}
	b := NewAccumulator()
	q0 := Pair{Dest: d, Round: 0, Classic: classicCycle([3]uint16{10, 12, 14}), Paris: parisClean}
	q1 := Pair{Dest: d, Round: 1, Classic: classicCycle([3]uint16{10, 12 + 3000, 14}), Paris: parisClean}
	b.Fold(&q0)
	b.Fold(&q1)
	if got := len(b.dests[d].classic); got != 1 {
		t.Fatalf("interned %d classic cycle routes, want 1", got)
	}
	// Round 0: both cycles (on 5 and on 6) have coherent IP IDs. Round 1:
	// the cycle on 5 goes incoherent (per-flow via differencing) while the
	// one on 6 stays coherent.
	sc := Merge(2, 1, b)
	if sc.Cycles.ByCause[anomaly.CauseForwardingLoop] != 3 || sc.Cycles.ByCause[anomaly.CausePerFlowLB] != 1 {
		t.Errorf("cycle causes = %v, want forwarding-loop x3 and per-flow x1", sc.Cycles.ByCause)
	}
}
