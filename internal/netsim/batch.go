package netsim

import (
	"net/netip"
	"sync"
	"time"
)

// ExchangeResult is the outcome of one probe/response exchange within an
// ExchangeBatch call. Resp is written with append-truncate into whatever
// storage the caller left in the field, so a caller that reuses one result
// slice across batches pays for each response buffer exactly once.
type ExchangeResult struct {
	// Resp is the serialized response packet (empty when OK is false).
	// The buffer is owned by the caller and recycled in place.
	Resp []byte
	// Steps is the number of node traversals, the latency proxy Exchange
	// reports.
	Steps int
	// RTT is the probe's virtual round-trip time when the network has a
	// dynamics layer installed (SetDynamics); zero otherwise, and zero
	// when OK is false.
	RTT time.Duration
	// OK is false when no response made it back to the source (a star).
	OK bool
}

// arena is the bump allocator serving one batch's transient packet buffers:
// the mutable probe copy and every ICMP error, echo reply, or TCP reset a
// router or host originates while that probe is in flight. take never moves
// previously returned buffers (overflow opens a fresh chunk, and the old one
// stays alive through the slices already handed out), so packets built early
// in an exchange stay valid while later ones are carved.
type arena struct {
	cur []byte
	off int
}

// arenaChunk comfortably holds every buffer one exchange needs (a probe copy
// plus a handful of ≤ ~60-byte response packets).
const arenaChunk = 4 << 10

func (a *arena) take(n int) []byte {
	if a.off+n > len(a.cur) {
		size := 2 * len(a.cur)
		if size < arenaChunk {
			size = arenaChunk
		}
		if size < n {
			size = n
		}
		a.cur = make([]byte, size)
		a.off = 0
	}
	b := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

func (a *arena) copyOf(p []byte) []byte {
	b := a.take(len(p))
	copy(b, p)
	return b
}

// rewind reclaims the current chunk. Only legal once nothing reachable
// aliases it — ExchangeBatch rewinds after copying each exchange's final
// response out into the caller's buffer.
func (a *arena) rewind() { a.off = 0 }

// exchCtx carries the per-exchange state the forwarding walk threads through
// its helpers: the probe's private RNG stream and, on the batch path, the
// arena and the per-batch memos. The zero value (heap-allocated responses,
// no memos) is the sequential Exchange configuration.
type exchCtx struct {
	rng prng
	// arena serves response marshal buffers; nil falls back to the heap.
	arena *arena
	// cfgs memoizes each router's behavioural snapshot for the duration
	// of one batch, so a TTL ladder revisiting the same routers loads each
	// config once instead of once per visit. nil loads per visit. Only
	// installed when the network has no OnSend hooks: hooks are the one
	// sanctioned way to mutate configuration mid-batch, and per-visit
	// loads are what keeps that byte-identical to sequential Exchanges.
	cfgs map[*Router]*routerConfig
	// routes memoizes forwarding-table lookups per (router, destination)
	// for the duration of one batch, under the same hook gating as cfgs.
	routes map[routeKey]routeEntry
	// dyn and clk are the virtual-clock layer for this exchange; both nil
	// when dynamics are disabled. The clock is reset per probe — each
	// exchange runs its own event loop (see vclock.go on why batches are
	// not interleaved by virtual time).
	dyn *dynamics
	clk *vclock
	// links memoizes the time-invariant per-link delay parameters for the
	// duration of one batch. Unlike cfgs/routes this memo is always exact
	// — the parameters are pure functions of (seed, link) — so it needs
	// no hook gating.
	links map[uint32]linkParams
}

type routeKey struct {
	r   *Router
	dst netip.Addr
}

type routeEntry struct {
	rt *Route
	ok bool
}

// respBuf returns an arena buffer for a response packet of the given size,
// or nil to let the packet marshaller allocate.
func (c *exchCtx) respBuf(n int) []byte {
	if c.arena == nil {
		return nil
	}
	return c.arena.take(n)
}

func (c *exchCtx) cfgOf(r *Router) *routerConfig {
	if c.cfgs == nil {
		return r.config.Load()
	}
	cfg, ok := c.cfgs[r]
	if !ok {
		cfg = r.config.Load()
		c.cfgs[r] = cfg
	}
	return cfg
}

func (c *exchCtx) lookup(r *Router, dst netip.Addr) (*Route, bool) {
	if c.routes == nil {
		return r.lookup(dst)
	}
	k := routeKey{r, dst}
	e, ok := c.routes[k]
	if !ok {
		e.rt, e.ok = r.lookup(dst)
		c.routes[k] = e
	}
	return e.rt, e.ok
}

// batchState is the pooled per-ExchangeBatch scratch: the arena and the memo
// maps, recycled across batches through Network.batchPool.
type batchState struct {
	arena  arena
	cfgs   map[*Router]*routerConfig
	routes map[routeKey]routeEntry
	clk    vclock
	links  map[uint32]linkParams
	ctx    exchCtx
}

var batchPool = sync.Pool{New: func() any { return new(batchState) }}

// ExchangeBatch performs len(probes) probe/response exchanges as one unit of
// work, writing the i-th outcome into out[i]; out must be at least as long
// as probes. It is the amortized equivalent of calling Exchange once per
// probe — and deterministically equal to it: the batch reserves one
// contiguous block of the network's probe counter, so probe i derives
// exactly the RNG stream (and OnSend hook count) it would have drawn as the
// corresponding sequential Exchange.
//
// The topology read lock is held across the whole batch, per-router config
// snapshots and forwarding-table lookups are memoized per batch (unless
// OnSend hooks are registered, which may mutate them mid-batch), and probe
// copies plus originated responses are carved from a pooled arena instead of
// the heap. See the package comment's batch contract for the full
// determinism and ownership rules.
//
// ExchangeBatch is safe for concurrent use alongside Exchange and other
// batches.
func (n *Network) ExchangeBatch(probes [][]byte, out []ExchangeResult) {
	if len(out) < len(probes) {
		panic("netsim: ExchangeBatch result slice shorter than probe slice")
	}
	if len(probes) == 0 {
		return
	}
	nn := int64(len(probes))
	base := n.probeCount.Add(nn) - nn

	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	if !n.haveEntry {
		panic("netsim: SetSource not called")
	}
	hooks := n.onSend

	st := batchPool.Get().(*batchState)
	defer batchPool.Put(st)
	st.arena.rewind()
	st.ctx = exchCtx{arena: &st.arena}
	dy := n.dyn.Load()
	var vround int64
	if dy != nil {
		vround = n.vround.Load()
		if st.links == nil {
			st.links = make(map[uint32]linkParams, 64)
		} else {
			clear(st.links)
		}
		st.ctx.dyn, st.ctx.clk, st.ctx.links = dy, &st.clk, st.links
	}
	if len(hooks) == 0 {
		if st.cfgs == nil {
			st.cfgs = make(map[*Router]*routerConfig, 32)
			st.routes = make(map[routeKey]routeEntry, 64)
		} else {
			clear(st.cfgs)
			clear(st.routes)
		}
		st.ctx.cfgs, st.ctx.routes = st.cfgs, st.routes
	}

	for i, probe := range probes {
		count := base + int64(i) + 1
		// Hooks run under the topology read lock here (sequential
		// Exchange releases it first): they may mutate router config
		// and forwarding tables, but must not register topology.
		for _, f := range hooks {
			f(int(count), probe)
		}
		st.ctx.rng = prng{state: splitmix64(n.seed ^ splitmix64(uint64(count)))}
		if dy != nil {
			st.clk.reset(dy.probeStart(vround, probe))
		}
		pkt := st.arena.copyOf(probe)
		resp, steps, ok := n.run(&st.ctx, pkt, n.sourceGW, false)
		out[i].Steps, out[i].OK = steps, ok
		out[i].RTT = 0
		if ok && dy != nil {
			out[i].RTT = st.clk.elapsed()
		}
		if ok {
			out[i].Resp = append(out[i].Resp[:0], resp...)
		} else if out[i].Resp != nil {
			out[i].Resp = out[i].Resp[:0]
		}
		// Everything this exchange carved from the arena is dead now
		// that the response is copied out; reuse the space.
		st.arena.rewind()
	}
}
