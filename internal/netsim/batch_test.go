package netsim

import (
	"bytes"
	"net/netip"
	"testing"
)

// batchTestNet is testNet plus randomized behaviour (a probabilistic drop
// fault on r2), so the equality tests below cover the per-probe RNG seeding:
// batch probe i must draw exactly the stream sequential Exchange i draws,
// which only holds if the contiguous counter-block reservation is correct.
func batchTestNet(t *testing.T) (*Network, []*Router, *Host) {
	n, rs, h := testNet(t)
	rs[2].SetFaults(Faults{DropProbability: 0.3})
	return n, rs, h
}

// ladderProbes builds a TTL ladder of UDP probes toward the host.
func ladderProbes(t *testing.T, n *Network, dst netip.Addr, maxTTL int) [][]byte {
	t.Helper()
	probes := make([][]byte, 0, maxTTL)
	for ttl := 1; ttl <= maxTTL; ttl++ {
		probes = append(probes, udpProbe(t, n, dst, uint8(ttl), 10007, 20011))
	}
	return probes
}

// TestExchangeBatchMatchesSequential drives two identical networks — one
// probe by probe through Exchange, the other through a single ExchangeBatch
// — and requires byte-identical responses, steps, and ok flags, including
// the RNG-driven drops.
func TestExchangeBatchMatchesSequential(t *testing.T) {
	seqNet, _, host := batchTestNet(t)
	batNet, _, _ := batchTestNet(t)
	probes := ladderProbes(t, seqNet, host.Addr, 8)

	out := make([]ExchangeResult, len(probes))
	batNet.ExchangeBatch(probes, out)

	sawDrop := false
	for i, p := range probes {
		resp, steps, ok := seqNet.Exchange(p)
		if ok != out[i].OK || steps != out[i].Steps {
			t.Errorf("probe %d: batch (ok=%v steps=%d) vs sequential (ok=%v steps=%d)",
				i, out[i].OK, out[i].Steps, ok, steps)
		}
		if ok && !bytes.Equal(resp, out[i].Resp) {
			t.Errorf("probe %d: batch response differs from sequential\nbatch: %x\nseq:   %x",
				i, out[i].Resp, resp)
		}
		if !ok {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Fatal("no probe was dropped; the RNG-equality check is degenerate")
	}
	if got, want := batNet.ProbeCount(), seqNet.ProbeCount(); got != want {
		t.Errorf("batch network counted %d probes, sequential %d", got, want)
	}
}

// TestExchangeBatchHookInterleaving registers an OnSend hook that flips a
// router's Silent fault at one specific probe count, and checks the batch
// applies it between probes exactly as the sequential path does (hook i runs
// before probe i forwards, and per-visit config loads see the flip).
func TestExchangeBatchHookInterleaving(t *testing.T) {
	const flipAt = 4
	arm := func(n *Network, rs []*Router) {
		n.OnSend(func(count int, probe []byte) {
			if count == flipAt {
				rs[1].SetFaults(Faults{Silent: true})
			}
		})
	}
	seqNet, seqRs, host := testNet(t)
	arm(seqNet, seqRs)
	batNet, batRs, _ := testNet(t)
	arm(batNet, batRs)

	// TTL 2 expires at r1 (rs[1]): probes from flipAt on get no answer.
	probes := make([][]byte, 8)
	for i := range probes {
		probes[i] = udpProbe(t, seqNet, host.Addr, 2, 10007, 20011)
	}
	out := make([]ExchangeResult, len(probes))
	batNet.ExchangeBatch(probes, out)
	for i, p := range probes {
		resp, steps, ok := seqNet.Exchange(p)
		if ok != out[i].OK || steps != out[i].Steps || !bytes.Equal(resp, out[i].Resp) {
			t.Errorf("probe %d: batch diverged from sequential across the hook flip (ok %v vs %v)",
				i, out[i].OK, ok)
		}
		if wantOK := i+1 < flipAt; ok != wantOK {
			t.Errorf("probe %d: ok=%v, want %v (flip at count %d)", i, ok, wantOK, flipAt)
		}
	}
}

// TestExchangeBatchReusesResultBuffers checks the ownership contract: a
// second batch through the same result slice refills the same backing
// arrays, and the results are again correct.
func TestExchangeBatchReusesResultBuffers(t *testing.T) {
	n, _, host := testNet(t)
	probes := ladderProbes(t, n, host.Addr, 5)
	out := make([]ExchangeResult, len(probes))
	n.ExchangeBatch(probes, out)

	first := make([][]byte, len(out))
	caps := make([]int, len(out))
	for i := range out {
		first[i] = append([]byte(nil), out[i].Resp...)
		caps[i] = cap(out[i].Resp)
	}
	n.ExchangeBatch(probes, out)
	for i := range out {
		if !out[i].OK {
			t.Fatalf("probe %d: second batch got no response", i)
		}
		// Deterministic topology, but the responding boxes advance their
		// IP ID counters between batches: everything but the IP ID and
		// its checksum must match, and the buffer must be recycled.
		if len(out[i].Resp) != len(first[i]) {
			t.Errorf("probe %d: second batch response length %d, first %d", i, len(out[i].Resp), len(first[i]))
		}
		if cap(out[i].Resp) != caps[i] {
			t.Errorf("probe %d: response buffer reallocated (cap %d -> %d)", i, caps[i], cap(out[i].Resp))
		}
	}
}
