package netsim_test

// Concurrency tests for the forwarding engine, exercised through the full
// tracer stack (external test package: topo imports netsim, so these live
// in netsim_test).

import (
	"net/netip"
	"sync"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

// deterministicConfig returns a campaign topology whose forwarding is a
// pure function of the probe bytes: per-flow balancing only, no random
// per-packet spreading, no drop faults, no per-probe routing flips. Traces
// through it must be bit-identical no matter how many run concurrently.
func deterministicConfig(dests int) topo.GenConfig {
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = dests
	cfg.PPerPacket = 0
	cfg.PPerPacketUnequal = 0
	cfg.PFlipPod = 0
	cfg.FlipPerProbe = 0
	return cfg
}

// traceSummary is the schedule-independent view of a route: everything a
// trace records except IP IDs and RTTs, which depend on the global arrival
// order at shared routers (as they do on real hardware).
type traceSummary struct {
	addrs    []netip.Addr
	kinds    []tracer.ReplyKind
	probeTTL []int
	respTTL  []int
	halt     tracer.HaltReason
}

func summarize(rt *tracer.Route) traceSummary {
	s := traceSummary{halt: rt.Halt}
	for _, h := range rt.Hops {
		s.addrs = append(s.addrs, h.Addr)
		s.kinds = append(s.kinds, h.Kind)
		s.probeTTL = append(s.probeTTL, h.ProbeTTL)
		s.respTTL = append(s.respTTL, h.RespTTL)
	}
	return s
}

func (a traceSummary) equal(b traceSummary) bool {
	if a.halt != b.halt || len(a.addrs) != len(b.addrs) {
		return false
	}
	for i := range a.addrs {
		if a.addrs[i] != b.addrs[i] || a.kinds[i] != b.kinds[i] ||
			a.probeTTL[i] != b.probeTTL[i] || a.respTTL[i] != b.respTTL[i] {
			return false
		}
	}
	return true
}

// TestConcurrentTracesMatchSequential traces every destination once
// sequentially, then again from N concurrent goroutines (distinct
// destinations each), and asserts the measured routes are identical. Run
// under -race this is also the engine's data-race gate.
func TestConcurrentTracesMatchSequential(t *testing.T) {
	sc := topo.Generate(deterministicConfig(96))
	tp := netsim.NewTransport(sc.Net)

	opts := tracer.Options{MinTTL: 2, MaxTTL: 39}
	want := make([]traceSummary, len(sc.Dests))
	for i, d := range sc.Dests {
		rt, err := tracer.NewParisUDP(tp, opts).Trace(d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = summarize(rt)
	}

	const workers = 16
	got := make([]traceSummary, len(sc.Dests))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sc.Dests); i += workers {
				rt, err := tracer.NewParisUDP(tp, opts).Trace(sc.Dests[i])
				if err != nil {
					errs[w] = err
					return
				}
				got[i] = summarize(rt)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		if !want[i].equal(got[i]) {
			t.Errorf("dest %v: concurrent trace diverged from sequential\nseq: %v\ncon: %v",
				sc.Dests[i], want[i].addrs, got[i].addrs)
		}
	}
}

// TestConcurrentExchangesWithRoutingDynamics hammers one network from many
// goroutines while routing changes (flips, flaps, transient loops) are
// injected, to give -race a mutation-heavy schedule. Results are not
// checked beyond liveness: every exchange must terminate.
func TestConcurrentExchangesWithRoutingDynamics(t *testing.T) {
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = 60
	cfg.PFlipPod = 0.5
	cfg.FlipPerProbe = 0.05 // flip aggressively mid-trace
	sc := topo.Generate(cfg)
	tp := netsim.NewTransport(sc.Net)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := w; i < len(sc.Dests); i += 8 {
					if _, err := tracer.NewClassicUDP(tp, tracer.Options{
						SrcPort: uint16(32768 + w*100 + i), MaxTTL: 39,
					}).Trace(sc.Dests[i]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
