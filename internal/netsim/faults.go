package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/tracer"
)

// This file is the deterministic fault-injection layer the robustness
// machinery is tested against: a transport wrapper that afflicts seeded
// per-destination schedules of transient errors, blackholes, and response
// drops onto any underlying transport. Every schedule is a pure function of
// (plan seed, destination address, per-destination exchange ordinal), so a
// campaign over a faulty network is exactly reproducible — retry, backoff,
// quarantine, and resume logic can be exercised hermetically, with failure
// counts pinned to the exchange, under -race and without a single sleep.

// FaultPlan selects which destinations misbehave and how. Destinations are
// picked by a seeded hash ("every k-th destination"), and each affliction is
// windowed in per-destination exchange ordinals — the running count of
// probes sent toward that destination, retries included — so a fault's
// timing is independent of worker interleaving and batching.
type FaultPlan struct {
	// Seed fixes destination selection. The same seed always afflicts the
	// same destinations with the same schedules.
	Seed int64

	// TransientEvery, when > 0, gives roughly every k-th destination a
	// transient-error window: exchanges whose per-destination ordinal
	// falls in [TransientStart, TransientStart+TransientLen) fail with a
	// transient error (the probe never reaches the network); exchanges
	// outside the window succeed normally. A window shorter than the
	// retry budget models an outage retries ride out.
	TransientEvery int
	TransientStart int
	TransientLen   int

	// BlackholeEvery, when > 0, gives roughly every k-th destination a
	// permanent failure: every exchange from per-destination ordinal
	// BlackholeStart onward fails with a transient error, forever. These
	// destinations exhaust any retry budget and are what the campaign's
	// quarantine policy exists for.
	BlackholeEvery int
	BlackholeStart int

	// DropEvery, when > 0, gives roughly every k-th destination a
	// response-drop burst: exchanges in [DropStart, DropStart+DropLen)
	// complete without error but return no response (stars) — loss, not
	// failure, so the measurement records it rather than retrying.
	DropEvery int
	DropStart int
	DropLen   int

	// PanicEvery, when > 0, gives roughly every k-th destination a panic
	// window: exchanges whose per-destination ordinal falls in
	// [PanicStart, PanicStart+PanicLen) panic instead of forwarding —
	// the hermetic stand-in for a probing bug taking a whole worker
	// goroutine down, which is what the daemon's supervised restart
	// machinery exists for.
	PanicEvery int
	PanicStart int
	PanicLen   int

	// StallEvery, when > 0, gives roughly every k-th destination a stall
	// window: exchanges whose per-destination ordinal falls in
	// [StallStart, StallStart+StallLen) block until ReleaseStalls is
	// called, then resolve as silent drops (stars). This models a wedged
	// transport — the failure the daemon's watchdog detects and abandons
	// — without a single sleep: the blocked goroutine parks on a channel
	// the test closes when it wants the wedge to clear.
	StallEvery int
	StallStart int
	StallLen   int
}

// DestSchedule is one destination's resolved fault schedule.
type DestSchedule struct {
	Transient                    bool
	TransientStart, TransientLen int
	Blackhole                    bool
	BlackholeStart               int
	Drop                         bool
	DropStart, DropLen           int
	Panic                        bool
	PanicStart, PanicLen         int
	Stall                        bool
	StallStart, StallLen         int
}

// Faulty reports whether the schedule afflicts the destination at all.
func (s DestSchedule) Faulty() bool {
	return s.Transient || s.Blackhole || s.Drop || s.Panic || s.Stall
}

// ScheduleFor resolves the plan for one destination. It is a pure function
// of (Seed, dst), so tests derive expected failure counts from the same
// schedules the transport enforces.
func (p FaultPlan) ScheduleFor(dst netip.Addr) DestSchedule {
	var s DestSchedule
	k, ok := a4(dst)
	if !ok {
		return s
	}
	h := splitmix64(uint64(p.Seed) ^ uint64(k))
	if p.TransientEvery > 0 && h%uint64(p.TransientEvery) == 0 {
		s.Transient = true
		s.TransientStart, s.TransientLen = p.TransientStart, p.TransientLen
	}
	h = splitmix64(h)
	if p.BlackholeEvery > 0 && h%uint64(p.BlackholeEvery) == 0 {
		s.Blackhole = true
		s.BlackholeStart = p.BlackholeStart
	}
	h = splitmix64(h)
	if p.DropEvery > 0 && h%uint64(p.DropEvery) == 0 {
		s.Drop = true
		s.DropStart, s.DropLen = p.DropStart, p.DropLen
	}
	h = splitmix64(h)
	if p.PanicEvery > 0 && h%uint64(p.PanicEvery) == 0 {
		s.Panic = true
		s.PanicStart, s.PanicLen = p.PanicStart, p.PanicLen
	}
	h = splitmix64(h)
	if p.StallEvery > 0 && h%uint64(p.StallEvery) == 0 {
		s.Stall = true
		s.StallStart, s.StallLen = p.StallStart, p.StallLen
	}
	return s
}

// faultKind is the per-exchange decision.
type faultKind int

const (
	faultNone  faultKind = iota
	faultErr             // transient error: the exchange did not happen
	faultStar            // silent drop: the exchange happened, no response
	faultPanic           // injected panic: takes the probing goroutine down
	faultStall           // wedge: block until ReleaseStalls, then a star
)

// destFaults is the per-destination runtime state: the resolved schedule and
// the exchange ordinal counter it is indexed by.
type destFaults struct {
	sched   DestSchedule
	ordinal int
}

// FaultTransport wraps any tracer transport with a FaultPlan. It implements
// tracer.Transport, tracer.BatchTransport (batched exchanges pass the
// unafflicted probes through the inner transport's batch path in order), and
// tracer.FallibleTransport (injected transient errors surface through
// ExchangeErr and ProbeResult.Err with the tracer taxonomy).
//
// FaultTransport is safe for concurrent use; the per-destination ordinal
// counters are guarded by one mutex, which is off the forwarding hot path
// (one map access per probe).
type FaultTransport struct {
	inner tracer.Transport
	plan  FaultPlan

	mu    sync.Mutex
	dests map[uint32]*destFaults
	// errs, drops, panics, and stalls tally the injected faults, for
	// test assertions.
	errs, drops, panics, stalls int
	// stallC parks stalled exchanges; ReleaseStalls closes it (once).
	stallC    chan struct{}
	stallOnce sync.Once
}

// WrapFaults afflicts tp with the plan's fault schedules.
func WrapFaults(tp tracer.Transport, plan FaultPlan) *FaultTransport {
	return &FaultTransport{
		inner: tp, plan: plan,
		dests:  make(map[uint32]*destFaults),
		stallC: make(chan struct{}),
	}
}

// InjectedErrors returns how many exchanges failed with an injected
// transient error so far.
func (t *FaultTransport) InjectedErrors() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errs
}

// InjectedDrops returns how many responses were silently dropped so far.
func (t *FaultTransport) InjectedDrops() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// InjectedPanics returns how many exchanges panicked so far.
func (t *FaultTransport) InjectedPanics() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.panics
}

// InjectedStalls returns how many exchanges were wedged so far (released
// or still parked).
func (t *FaultTransport) InjectedStalls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stalls
}

// ReleaseStalls unwedges every parked exchange, now and forever: stalled
// exchanges resolve as silent drops (stars), and future stall-window hits
// fall straight through as drops. Safe to call more than once.
func (t *FaultTransport) ReleaseStalls() {
	t.stallOnce.Do(func() { close(t.stallC) })
}

// stall parks the calling goroutine until ReleaseStalls. It is called
// outside t.mu — a wedged exchange must never wedge the ordinal counters.
func (t *FaultTransport) stall() {
	<-t.stallC
}

// decide consumes one exchange ordinal for the probe's destination and
// returns the fault applied to it.
func (t *FaultTransport) decide(probe []byte) faultKind {
	if len(probe) < 20 {
		return faultNone
	}
	dst := netip.AddrFrom4([4]byte(probe[16:20]))
	k, ok := a4(dst)
	if !ok {
		return faultNone
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	df := t.dests[k]
	if df == nil {
		df = &destFaults{sched: t.plan.ScheduleFor(dst)}
		t.dests[k] = df
	}
	ord := df.ordinal
	df.ordinal++
	s := df.sched
	switch {
	case s.Panic && ord >= s.PanicStart && ord < s.PanicStart+s.PanicLen:
		t.panics++
		return faultPanic
	case s.Stall && ord >= s.StallStart && ord < s.StallStart+s.StallLen:
		t.stalls++
		return faultStall
	case s.Blackhole && ord >= s.BlackholeStart:
		t.errs++
		return faultErr
	case s.Transient && ord >= s.TransientStart && ord < s.TransientStart+s.TransientLen:
		t.errs++
		return faultErr
	case s.Drop && ord >= s.DropStart && ord < s.DropStart+s.DropLen:
		t.drops++
		return faultStar
	}
	return faultNone
}

// panicFor raises the injected panic for a probe's destination.
func panicFor(probe []byte) {
	panic(fmt.Sprintf("netsim: injected panic toward %v", netip.AddrFrom4([4]byte(probe[16:20]))))
}

// errFor builds the injected error for a probe's destination.
func errFor(probe []byte) error {
	return tracer.Transient(fmt.Errorf("netsim: injected fault toward %v", netip.AddrFrom4([4]byte(probe[16:20]))))
}

// Exchange implements tracer.Transport: injected errors degrade to stars,
// matching the interface's no-error contract. Fault-aware callers use
// ExchangeErr or the batch path.
func (t *FaultTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	resp, rtt, ok, err := t.ExchangeErr(probe)
	if err != nil {
		return nil, 0, false
	}
	return resp, rtt, ok
}

// ExchangeErr implements tracer.FallibleTransport.
func (t *FaultTransport) ExchangeErr(probe []byte) ([]byte, time.Duration, bool, error) {
	switch t.decide(probe) {
	case faultErr:
		return nil, 0, false, errFor(probe)
	case faultStar:
		return nil, 0, false, nil
	case faultPanic:
		panicFor(probe)
	case faultStall:
		t.stall()
		return nil, 0, false, nil
	}
	resp, rtt, ok := t.inner.Exchange(probe)
	return resp, rtt, ok, nil
}

// ExchangeBatch implements tracer.BatchTransport: afflicted probes resolve
// in place (Err for injected errors, a star for drops) and the remainder
// passes through the inner transport's batch path in submission order. When
// the inner transport cannot batch, probes fall back to one Exchange each.
func (t *FaultTransport) ExchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	if len(out) < len(probes) {
		panic("netsim: ExchangeBatch result slice shorter than probe slice")
	}
	kinds := make([]faultKind, len(probes))
	pass := make([][]byte, 0, len(probes))
	idxs := make([]int, 0, len(probes))
	for i, p := range probes {
		kinds[i] = t.decide(p)
		switch kinds[i] {
		case faultPanic:
			// Panic at the probe's position, before later probes consume
			// ordinals — the same point the sequential path panics at.
			panicFor(p)
		case faultStall:
			// Wedge here, like the sequential path; once released the
			// probe resolves as a silent drop.
			t.stall()
			kinds[i] = faultStar
		case faultNone:
			pass = append(pass, p)
			idxs = append(idxs, i)
		}
	}
	for i := range probes {
		if kinds[i] == faultNone {
			continue
		}
		if out[i].Resp != nil {
			out[i].Resp = out[i].Resp[:0]
		}
		out[i].RTT = 0
		out[i].OK = false
		if kinds[i] == faultErr {
			out[i].Err = errFor(probes[i])
		} else {
			out[i].Err = nil
		}
	}
	if len(pass) == 0 {
		return
	}
	if bt, ok := t.inner.(tracer.BatchTransport); ok && len(pass) == len(probes) {
		bt.ExchangeBatch(probes, out)
		return
	}
	if bt, ok := t.inner.(tracer.BatchTransport); ok {
		sub := make([]tracer.ProbeResult, len(pass))
		for j, i := range idxs {
			sub[j] = tracer.ProbeResult{Resp: out[i].Resp[:0:cap(out[i].Resp)]}
		}
		bt.ExchangeBatch(pass, sub)
		for j, i := range idxs {
			out[i] = sub[j]
		}
		return
	}
	for j, i := range idxs {
		resp, rtt, ok := t.inner.Exchange(pass[j])
		out[i].OK = ok
		out[i].Err = nil
		out[i].RTT = rtt
		if ok {
			out[i].Resp = append(out[i].Resp[:0], resp...)
		} else if out[i].Resp != nil {
			out[i].Resp = out[i].Resp[:0]
		}
	}
}

// Source implements tracer.Transport.
func (t *FaultTransport) Source() netip.Addr { return t.inner.Source() }
