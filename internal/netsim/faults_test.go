package netsim

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/tracer"
)

var errStale = errors.New("stale error from a recycled slot")

// stubTransport answers every probe affirmatively and records what reached
// it, so tests can observe exactly which probes the fault layer forwarded.
type stubTransport struct {
	src  netip.Addr
	seen [][]byte
}

func (s *stubTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	cp := append([]byte(nil), probe...)
	s.seen = append(s.seen, cp)
	return []byte{0xAB}, time.Millisecond, true
}

func (s *stubTransport) Source() netip.Addr { return s.src }

// stubBatchTransport adds the batch path on top of stubTransport.
type stubBatchTransport struct {
	stubTransport
	batches int
}

func (s *stubBatchTransport) ExchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	s.batches++
	for i, p := range probes {
		resp, rtt, ok := s.Exchange(p)
		out[i].Resp = append(out[i].Resp[:0], resp...)
		out[i].RTT = rtt
		out[i].OK = ok
		out[i].Err = nil
	}
}

func probeFor(dst netip.Addr) []byte {
	p := make([]byte, 28)
	b := dst.As4()
	copy(p[16:20], b[:])
	return p
}

func TestScheduleForDeterministic(t *testing.T) {
	plan := FaultPlan{
		Seed:           7,
		TransientEvery: 3, TransientStart: 1, TransientLen: 2,
		BlackholeEvery: 5, BlackholeStart: 4,
		DropEvery: 2, DropStart: 0, DropLen: 3,
	}
	anyFaulty, anyClean := false, false
	for i := 0; i < 64; i++ {
		dst := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		a := plan.ScheduleFor(dst)
		b := plan.ScheduleFor(dst)
		if a != b {
			t.Fatalf("ScheduleFor(%v) not deterministic: %+v vs %+v", dst, a, b)
		}
		if a.Faulty() {
			anyFaulty = true
		} else {
			anyClean = true
		}
	}
	if !anyFaulty || !anyClean {
		t.Fatalf("expected a mix of faulty and clean destinations (faulty=%v clean=%v)", anyFaulty, anyClean)
	}
	// A different seed must produce a different affliction pattern.
	other := plan
	other.Seed = 8
	diff := false
	for i := 0; i < 64 && !diff; i++ {
		dst := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		diff = plan.ScheduleFor(dst) != other.ScheduleFor(dst)
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical schedules for 64 destinations")
	}
}

func TestFaultTransientWindow(t *testing.T) {
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	// Every=1 selects every destination, so the schedule is certain.
	ft := WrapFaults(&stubTransport{}, FaultPlan{Seed: 1, TransientEvery: 1, TransientStart: 1, TransientLen: 2})
	probe := probeFor(dst)
	wantErr := []bool{false, true, true, false, false}
	for ord, want := range wantErr {
		resp, _, ok, err := ft.ExchangeErr(probe)
		if (err != nil) != want {
			t.Fatalf("ordinal %d: err=%v, want error=%v", ord, err, want)
		}
		if err != nil {
			if !tracer.IsTransient(err) {
				t.Fatalf("ordinal %d: injected error not transient: %v", ord, err)
			}
			if ok || resp != nil {
				t.Fatalf("ordinal %d: errored exchange leaked ok=%v resp=%v", ord, ok, resp)
			}
		} else if !ok {
			t.Fatalf("ordinal %d: clean exchange did not succeed", ord)
		}
	}
	if got := ft.InjectedErrors(); got != 2 {
		t.Fatalf("InjectedErrors = %d, want 2", got)
	}
}

func TestFaultBlackholePersists(t *testing.T) {
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	ft := WrapFaults(&stubTransport{}, FaultPlan{Seed: 1, BlackholeEvery: 1, BlackholeStart: 2})
	probe := probeFor(dst)
	for ord := 0; ord < 10; ord++ {
		_, _, _, err := ft.ExchangeErr(probe)
		want := ord >= 2
		if (err != nil) != want {
			t.Fatalf("ordinal %d: err=%v, want error=%v", ord, err, want)
		}
		if err != nil && !tracer.IsTransient(err) {
			t.Fatalf("ordinal %d: blackhole error not transient: %v", ord, err)
		}
	}
}

func TestFaultDropBurstIsStarNotError(t *testing.T) {
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 3})
	inner := &stubTransport{}
	ft := WrapFaults(inner, FaultPlan{Seed: 1, DropEvery: 1, DropStart: 1, DropLen: 2})
	probe := probeFor(dst)
	wantStar := []bool{false, true, true, false}
	for ord, want := range wantStar {
		resp, _, ok, err := ft.ExchangeErr(probe)
		if err != nil {
			t.Fatalf("ordinal %d: drop produced an error: %v", ord, err)
		}
		if ok == want {
			t.Fatalf("ordinal %d: ok=%v, want star=%v", ord, ok, want)
		}
		if want && resp != nil {
			t.Fatalf("ordinal %d: star carried a response", ord)
		}
	}
	// Dropped probes must not have reached the inner transport.
	if len(inner.seen) != 2 {
		t.Fatalf("inner transport saw %d probes, want 2", len(inner.seen))
	}
	if got := ft.InjectedDrops(); got != 2 {
		t.Fatalf("InjectedDrops = %d, want 2", got)
	}
}

func TestFaultExchangeDegradesErrorToStar(t *testing.T) {
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 4})
	ft := WrapFaults(&stubTransport{}, FaultPlan{Seed: 1, BlackholeEvery: 1})
	resp, rtt, ok := ft.Exchange(probeFor(dst))
	if ok || resp != nil || rtt != 0 {
		t.Fatalf("Exchange over blackhole returned resp=%v rtt=%v ok=%v, want star", resp, rtt, ok)
	}
}

func TestFaultBatchSubsetPassthrough(t *testing.T) {
	// Pick destinations on both sides of the schedule hash so the batch
	// mixes clean and afflicted probes with certainty.
	plan := FaultPlan{Seed: 3, BlackholeEvery: 2}
	var faulted, clean []netip.Addr
	for i := 1; i < 64 && (len(faulted) < 2 || len(clean) < 2); i++ {
		dst := netip.AddrFrom4([4]byte{10, 0, 0, byte(i)})
		if plan.ScheduleFor(dst).Blackhole {
			faulted = append(faulted, dst)
		} else {
			clean = append(clean, dst)
		}
	}
	if len(faulted) < 2 || len(clean) < 2 {
		t.Fatalf("seed 3 did not split destinations (faulted=%d clean=%d)", len(faulted), len(clean))
	}
	inner := &stubBatchTransport{}
	ft := WrapFaults(inner, plan)
	order := []netip.Addr{clean[0], faulted[0], clean[1], faulted[1]}
	probes := make([][]byte, len(order))
	for i, d := range order {
		probes[i] = probeFor(d)
	}
	out := make([]tracer.ProbeResult, len(probes))
	ft.ExchangeBatch(probes, out)

	for i, d := range order {
		isFaulted := i == 1 || i == 3
		if isFaulted {
			if out[i].Err == nil || !tracer.IsTransient(out[i].Err) {
				t.Fatalf("slot %d (%v): Err = %v, want transient", i, d, out[i].Err)
			}
			if out[i].OK || len(out[i].Resp) != 0 {
				t.Fatalf("slot %d (%v): faulted slot carries a result", i, d)
			}
		} else {
			if out[i].Err != nil || !out[i].OK {
				t.Fatalf("slot %d (%v): err=%v ok=%v, want clean success", i, d, out[i].Err, out[i].OK)
			}
		}
	}
	if inner.batches != 1 {
		t.Fatalf("inner saw %d batches, want 1", inner.batches)
	}
	if len(inner.seen) != 2 {
		t.Fatalf("inner saw %d probes, want the 2 clean ones", len(inner.seen))
	}
	// Clean probes pass through in submission order.
	for j, d := range []netip.Addr{clean[0], clean[1]} {
		b := d.As4()
		if got := inner.seen[j][16:20]; string(got) != string(b[:]) {
			t.Fatalf("pass-through probe %d targets %v, want %v", j, got, d)
		}
	}
}

func TestFaultBatchAllFaultedSkipsInner(t *testing.T) {
	inner := &stubBatchTransport{}
	ft := WrapFaults(inner, FaultPlan{Seed: 1, BlackholeEvery: 1})
	probes := [][]byte{probeFor(netip.AddrFrom4([4]byte{10, 0, 0, 9}))}
	out := make([]tracer.ProbeResult, 1)
	ft.ExchangeBatch(probes, out)
	if inner.batches != 0 || len(inner.seen) != 0 {
		t.Fatalf("fully-faulted batch still reached inner transport")
	}
	if out[0].Err == nil {
		t.Fatal("faulted slot has nil Err")
	}
}

func TestFaultBatchStaleSlotReset(t *testing.T) {
	// A result slot recycled from a previous batch (Scratch) must not leak
	// its old Err/Resp/OK into a later drop or clean exchange.
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 5})
	inner := &stubBatchTransport{}
	ft := WrapFaults(inner, FaultPlan{Seed: 1, DropEvery: 1, DropStart: 0, DropLen: 1})
	probes := [][]byte{probeFor(dst)}
	out := []tracer.ProbeResult{{Resp: []byte{1, 2, 3}, OK: true, RTT: time.Second, Err: tracer.Transient(errStale)}}
	ft.ExchangeBatch(probes, out) // ordinal 0: drop
	if out[0].Err != nil || out[0].OK || len(out[0].Resp) != 0 || out[0].RTT != 0 {
		t.Fatalf("dropped slot not fully reset: %+v", out[0])
	}
	ft.ExchangeBatch(probes, out) // ordinal 1: clean
	if out[0].Err != nil || !out[0].OK {
		t.Fatalf("clean slot not reset after reuse: %+v", out[0])
	}
}

func TestFaultPanicWindow(t *testing.T) {
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 7})
	inner := &stubTransport{}
	ft := WrapFaults(inner, FaultPlan{Seed: 1, PanicEvery: 1, PanicStart: 1, PanicLen: 2})
	probe := probeFor(dst)

	// Ordinal 0: clean.
	if _, _, _, err := ft.ExchangeErr(probe); err != nil {
		t.Fatalf("ordinal 0: %v", err)
	}
	// Ordinals 1 and 2: the window panics, consuming the ordinal first.
	for ord := 1; ord <= 2; ord++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ordinal %d did not panic", ord)
				}
			}()
			ft.ExchangeErr(probe)
		}()
	}
	if ft.InjectedPanics() != 2 {
		t.Fatalf("injected panics %d, want 2", ft.InjectedPanics())
	}
	// Ordinal 3: past the window, clean again.
	if _, _, ok := ft.Exchange(probe); !ok {
		t.Fatal("ordinal 3 should pass through")
	}
	if len(inner.seen) != 2 {
		t.Fatalf("inner saw %d probes, want 2 (ordinals 0 and 3)", len(inner.seen))
	}
}

func TestFaultBatchPanicAtPosition(t *testing.T) {
	// A panic inside a batch must fire at the afflicted probe's position,
	// before later probes consume ordinals — identical to the sequential
	// path, so batch and per-probe campaigns agree on fault accounting.
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 7})
	inner := &stubBatchTransport{}
	ft := WrapFaults(inner, FaultPlan{Seed: 1, PanicEvery: 1, PanicStart: 1, PanicLen: 1})
	probes := [][]byte{probeFor(dst), probeFor(dst), probeFor(dst)}
	out := make([]tracer.ProbeResult, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("batch did not panic")
			}
		}()
		ft.ExchangeBatch(probes, out)
	}()
	// Ordinals consumed: 0 (clean) and 1 (panic); probe 3 never decided.
	if got := ft.InjectedPanics(); got != 1 {
		t.Fatalf("injected panics %d, want 1", got)
	}
	if _, _, _, err := ft.ExchangeErr(probeFor(dst)); err != nil {
		t.Fatalf("ordinal 2 after the window should be clean: %v", err)
	}
}

func TestFaultStallParksUntilRelease(t *testing.T) {
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 7})
	inner := &stubTransport{}
	ft := WrapFaults(inner, FaultPlan{Seed: 1, StallEvery: 1, StallStart: 0, StallLen: 1})
	probe := probeFor(dst)

	type result struct {
		ok  bool
		err error
	}
	got := make(chan result)
	go func() {
		_, _, ok, err := ft.ExchangeErr(probe)
		got <- result{ok, err}
	}()
	// The exchange is parked: the ordinal is consumed (the stall counter
	// ticks) but no result arrives until release.
	for ft.InjectedStalls() == 0 {
		// Busy-wait on the counter; the parked goroutine is off-mutex.
	}
	select {
	case r := <-got:
		t.Fatalf("stalled exchange returned early: %+v", r)
	default:
	}
	ft.ReleaseStalls()
	r := <-got
	if r.err != nil || r.ok {
		t.Fatalf("released stall should resolve as a star: %+v", r)
	}
	// After release, later stall-window hits fall straight through as
	// drops, and ReleaseStalls is idempotent.
	ft.ReleaseStalls()
	if _, _, ok, err := ft.ExchangeErr(probe); err != nil || !ok {
		t.Fatalf("ordinal 1 outside the window should pass: ok=%v err=%v", ok, err)
	}
	if len(inner.seen) != 1 {
		t.Fatalf("inner saw %d probes, want 1", len(inner.seen))
	}
}
