package netsim

import (
	"net/netip"
	"sync"

	"repro/internal/packet"
)

// Host is a simulated end host (a traceroute destination). Hosts answer
// probes the way the paper's "pingable" destinations do: UDP probes to
// unbound ports draw ICMP Port Unreachable, Echo Requests draw Echo Replies,
// and TCP SYNs draw RST (closed port) or SYN-ACK (listening port).
type Host struct {
	Name string
	Addr netip.Addr

	// OpenTCPPorts lists ports that answer SYN with SYN-ACK; all other
	// TCP ports answer with RST. tcptraceroute treats both as arrival.
	OpenTCPPorts map[uint16]bool

	// Silent suppresses all responses (an unpingable host; the paper
	// excludes these from its destination list, but the campaign engine
	// uses them to test stop conditions).
	Silent bool

	icmpTTL uint8
	ipID    uint16
	mu      sync.Mutex
}

// NewHost creates a host answering at addr.
func NewHost(name string, addr netip.Addr) *Host {
	return &Host{Name: name, Addr: addr, icmpTTL: 64}
}

// SetICMPTTL sets the initial TTL of packets the host originates. End hosts
// commonly use 64 where routers use 255.
func (h *Host) SetICMPTTL(ttl uint8) *Host {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.icmpTTL = ttl
	return h
}

func (h *Host) nextIPID() uint16 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ipID++
	return h.ipID
}

// respond builds the host's response to the delivered serialized packet, or
// returns nil if the host stays silent.
func (h *Host) respond(pkt []byte) []byte {
	if h.Silent {
		return nil
	}
	ih, payload, err := packet.ParseIPv4(pkt)
	if err != nil {
		return nil
	}
	switch ih.Protocol {
	case packet.ProtoUDP:
		m, err := packet.DestUnreachable(packet.CodePortUnreachable, pkt)
		if err != nil {
			return nil
		}
		return h.marshalICMP(m, ih.Src)
	case packet.ProtoICMP:
		m, err := packet.ParseICMP(payload)
		if err != nil || m.Type != packet.ICMPTypeEchoRequest {
			return nil
		}
		reply := &packet.ICMP{
			Type:    packet.ICMPTypeEchoReply,
			ID:      m.ID,
			Seq:     m.Seq,
			Payload: append([]byte(nil), m.Payload...),
		}
		return h.marshalICMP(reply, ih.Src)
	case packet.ProtoTCP:
		th, _, _, err := packet.ParseTCP(payload)
		if err != nil || th == nil {
			return nil
		}
		flags := uint8(packet.TCPRst | packet.TCPAck)
		if h.OpenTCPPorts[th.DstPort] {
			flags = packet.TCPSyn | packet.TCPAck
		}
		seg, err := packet.MarshalTCP(h.Addr, ih.Src, &packet.TCP{
			SrcPort: th.DstPort,
			DstPort: th.SrcPort,
			Ack:     th.Seq + 1,
			Flags:   flags,
			Window:  65535,
		}, nil)
		if err != nil {
			return nil
		}
		out, err := (&packet.IPv4{
			TTL:      h.ttl(),
			Protocol: packet.ProtoTCP,
			ID:       h.nextIPID(),
			Src:      h.Addr,
			Dst:      ih.Src,
		}).Marshal(seg)
		if err != nil {
			return nil
		}
		return out
	default:
		return nil
	}
}

func (h *Host) ttl() uint8 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.icmpTTL
}

func (h *Host) marshalICMP(m *packet.ICMP, dst netip.Addr) []byte {
	body, err := m.Marshal()
	if err != nil {
		return nil
	}
	out, err := (&packet.IPv4{
		TTL:      h.ttl(),
		Protocol: packet.ProtoICMP,
		ID:       h.nextIPID(),
		Src:      h.Addr,
		Dst:      dst,
	}).Marshal(body)
	if err != nil {
		return nil
	}
	return out
}
