package netsim

import (
	"net/netip"
	"sync/atomic"

	"repro/internal/packet"
)

// Host is a simulated end host (a traceroute destination). Hosts answer
// probes the way the paper's "pingable" destinations do: UDP probes to
// unbound ports draw ICMP Port Unreachable, Echo Requests draw Echo Replies,
// and TCP SYNs draw RST (closed port) or SYN-ACK (listening port).
//
// OpenTCPPorts and Silent are topology configuration: set them before the
// network starts exchanging probes.
type Host struct {
	Name string
	Addr netip.Addr

	// OpenTCPPorts lists ports that answer SYN with SYN-ACK; all other
	// TCP ports answer with RST. tcptraceroute treats both as arrival.
	OpenTCPPorts map[uint16]bool

	// Silent suppresses all responses (an unpingable host; the paper
	// excludes these from its destination list, but the campaign engine
	// uses them to test stop conditions).
	Silent bool

	// icmpTTL is the initial TTL of packets the host originates, stored
	// as an atomic so concurrent exchanges can read it locklessly.
	icmpTTL atomic.Uint32
	// ipID accumulates in 32 bits and is truncated to the 16-bit IP ID,
	// which equals 16-bit modular increment per originated packet.
	ipID atomic.Uint32
}

// NewHost creates a host answering at addr.
func NewHost(name string, addr netip.Addr) *Host {
	h := &Host{Name: name, Addr: addr}
	h.icmpTTL.Store(64)
	return h
}

// SetICMPTTL sets the initial TTL of packets the host originates. End hosts
// commonly use 64 where routers use 255.
func (h *Host) SetICMPTTL(ttl uint8) *Host {
	h.icmpTTL.Store(uint32(ttl))
	return h
}

func (h *Host) nextIPID() uint16 {
	return uint16(h.ipID.Add(1))
}

// respond builds the host's response to the delivered packet (already
// parsed into ih/payload by the forwarding engine), or returns nil if the
// host stays silent. Response buffers come from ctx's arena when one is
// installed (the batch path) and from the heap otherwise.
func (h *Host) respond(ctx *exchCtx, ih *packet.IPv4, payload, pkt []byte) []byte {
	if h.Silent {
		return nil
	}
	switch ih.Protocol {
	case packet.ProtoUDP:
		m := packet.ICMP{
			Type:    packet.ICMPTypeDestUnreachable,
			Code:    packet.CodePortUnreachable,
			Payload: quoteOf(pkt, ih, payload),
		}
		return h.marshalICMP(ctx, &m, ih.Src)
	case packet.ProtoICMP:
		var m packet.ICMP
		if err := packet.ParseICMPInto(payload, &m); err != nil || m.Type != packet.ICMPTypeEchoRequest {
			return nil
		}
		reply := packet.ICMP{
			Type:    packet.ICMPTypeEchoReply,
			ID:      m.ID,
			Seq:     m.Seq,
			Payload: m.Payload, // copied out by MarshalIPv4ICMPInto
		}
		return h.marshalICMP(ctx, &reply, ih.Src)
	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, err := packet.ParseTCPInto(payload, &th); err != nil {
			return nil
		}
		flags := uint8(packet.TCPRst | packet.TCPAck)
		if h.OpenTCPPorts[th.DstPort] {
			flags = packet.TCPSyn | packet.TCPAck
		}
		seg, err := packet.MarshalTCP(h.Addr, ih.Src, &packet.TCP{
			SrcPort: th.DstPort,
			DstPort: th.SrcPort,
			Ack:     th.Seq + 1,
			Flags:   flags,
			Window:  65535,
		}, nil)
		if err != nil {
			return nil
		}
		ip := packet.IPv4{
			TTL:      h.ttl(),
			Protocol: packet.ProtoTCP,
			ID:       h.nextIPID(),
			Src:      h.Addr,
			Dst:      ih.Src,
		}
		out, err := ip.MarshalInto(ctx.respBuf(ip.HeaderLen()+len(seg)), seg)
		if err != nil {
			return nil
		}
		return out
	default:
		return nil
	}
}

func (h *Host) ttl() uint8 {
	return uint8(h.icmpTTL.Load())
}

func (h *Host) marshalICMP(ctx *exchCtx, m *packet.ICMP, dst netip.Addr) []byte {
	ip := packet.IPv4{
		TTL:      h.ttl(),
		Protocol: packet.ProtoICMP,
		ID:       h.nextIPID(),
		Src:      h.Addr,
		Dst:      dst,
	}
	out, err := packet.MarshalIPv4ICMPInto(ctx.respBuf(packet.IPv4ICMPLen(&ip, m)), &ip, m)
	if err != nil {
		return nil
	}
	return out
}
