package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
)

// DefaultMaxSteps bounds the number of node traversals a single injected
// packet (and the response it triggers) may make. Packets caught in
// forwarding loops normally die by TTL expiry long before this guard.
const DefaultMaxSteps = 1024

// Network is a simulated IPv4 network: a set of routers and hosts joined by
// point-to-point adjacencies (NextHop.Via names the remote interface).
//
// Exchange is the tracer-facing entry point: it injects a serialized probe
// at the measurement source's gateway and returns whatever response packet
// makes it back to the source, simulating both the forward and the return
// path hop by hop.
//
// Exchange is safe for concurrent use and concurrent calls run in parallel:
// the topology registry below is read-mostly (registration takes the write
// lock, every exchange only a read lock), per-router configuration is an
// atomically-swapped snapshot, and all counters are atomics. See the
// package comment for the full concurrency model and determinism contract.
type Network struct {
	// topoMu guards the topology registry. Building (AddRouter, AddIface,
	// AttachHost, SetSource, OnSend) takes the write lock; Exchange holds
	// the read lock for the whole forwarding walk, so topology mutation
	// never races a packet in flight while exchanges proceed in parallel
	// with each other.
	topoMu sync.RWMutex

	// nodes is the unified topology registry, keyed by the 4-byte IPv4
	// address: the forwarding walk resolves "what sits at this interface"
	// with a single cheap-hash map access per step instead of separate
	// netip.Addr-keyed router and host lookups.
	nodes map[uint32]netNode

	source    netip.Addr // the measurement source address
	sourceGW  netip.Addr // interface the source's packets enter through
	haveEntry bool

	// seed fixes all randomized behaviour. Each Exchange derives its own
	// SplitMix64 stream from (seed, probe counter), so random draws never
	// contend on a shared generator.
	seed uint64
	// RandomPerPacket selects random spreading for PerPacket balancers;
	// when false, routers round-robin deterministically. Set it before
	// the first Exchange; it is read locklessly on the hot path.
	RandomPerPacket bool

	maxSteps int

	// dyn is the compiled virtual-clock dynamics layer (nil when
	// disabled), published atomically like a routerConfig snapshot so
	// SetDynamics never races an exchange. vround is the current virtual
	// round base; RoundStart hooks advance it between rounds. See
	// vclock.go for the model and its determinism contract.
	dyn    atomic.Pointer[dynamics]
	vround atomic.Int64

	probeCount atomic.Int64
	onSend     []func(count int, probe []byte)
}

// New creates an empty network. seed fixes all randomized behaviour
// (per-packet balancing, probabilistic drops), keeping runs reproducible.
func New(seed int64) *Network {
	return &Network{
		nodes:           make(map[uint32]netNode),
		seed:            uint64(seed),
		RandomPerPacket: true,
		maxSteps:        DefaultMaxSteps,
	}
}

// netNode is one registry entry: the router or host answering at an
// interface address (exactly one is non-nil), plus, for hosts, the gateway
// interface their responses enter the network through.
type netNode struct {
	router *Router
	host   *Host
	hostGW netip.Addr
}

// a4 maps an address to its registry key. ok is false for anything but a
// plain IPv4 address, which can never be registered.
func a4(a netip.Addr) (uint32, bool) {
	if !a.Is4() {
		return 0, false
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), true
}

// mustA4 is a4 for registration paths, where a non-IPv4 address is a
// topology bug.
func mustA4(a netip.Addr) uint32 {
	k, ok := a4(a)
	if !ok {
		panic(fmt.Sprintf("netsim: %v is not an IPv4 address", a))
	}
	return k
}

// AddRouter registers a router; each of its interface addresses becomes
// routable within the network.
func (n *Network) AddRouter(r *Router) *Router {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	for _, a := range r.ifaces {
		n.registerIfaceLocked(r, a)
	}
	return r
}

func (n *Network) registerIfaceLocked(r *Router, a netip.Addr) {
	k := mustA4(a)
	if nd, ok := n.nodes[k]; ok {
		if nd.host != nil {
			panic(fmt.Sprintf("netsim: interface %v already owned by a host", a))
		}
		if nd.router != r {
			panic(fmt.Sprintf("netsim: interface %v already owned by router %s", a, nd.router.Name))
		}
	}
	n.nodes[k] = netNode{router: r}
}

// AddIface allocates a new interface on r with address a, registering it in
// the network, and returns its interface index. Topology builders use this
// to grow routers one adjacency at a time.
func (n *Network) AddIface(r *Router, a netip.Addr) int {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.registerIfaceLocked(r, a)
	r.ifaces = append(r.ifaces, a)
	return len(r.ifaces) - 1
}

// AttachHost registers a host and the router interface it hangs off.
// Responses the host generates enter the network at gateway.
func (n *Network) AttachHost(h *Host, gateway netip.Addr) *Host {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	k := mustA4(h.Addr)
	if nd, ok := n.nodes[k]; ok && nd.router != nil {
		panic(fmt.Sprintf("netsim: host address %v already owned by a router", h.Addr))
	}
	n.nodes[k] = netNode{host: h, hostGW: gateway}
	return h
}

// SetSource declares the measurement source address and the interface its
// probes enter the network through (its first-hop gateway).
func (n *Network) SetSource(src, gateway netip.Addr) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.source = src
	n.sourceGW = gateway
	n.haveEntry = true
}

// Source returns the measurement source address.
func (n *Network) Source() netip.Addr {
	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	return n.source
}

// RouterAt returns the router owning the given interface address.
func (n *Network) RouterAt(a netip.Addr) (*Router, bool) {
	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	k, ok := a4(a)
	if !ok {
		return nil, false
	}
	nd, ok := n.nodes[k]
	return nd.router, ok && nd.router != nil
}

// HostAt returns the host owning the given address.
func (n *Network) HostAt(a netip.Addr) (*Host, bool) {
	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	k, ok := a4(a)
	if !ok {
		return nil, false
	}
	nd, ok := n.nodes[k]
	return nd.host, ok && nd.host != nil
}

// OnSend registers a hook invoked (outside any network lock) with the
// running probe count and the serialized probe before each Exchange; the
// hook must treat the probe as read-only and must itself be safe for
// concurrent invocation, since parallel exchanges call it in parallel.
// Routing-change and forwarding-loop injection hang off this hook.
func (n *Network) OnSend(f func(count int, probe []byte)) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.onSend = append(n.onSend, f)
}

// ProbeCount returns the number of probes injected so far.
func (n *Network) ProbeCount() int {
	return int(n.probeCount.Load())
}

// SetProbeCount restores the probe counter, e.g. when resuming a
// checkpointed campaign: per-exchange randomness is seeded by this counter,
// so restoring it replays the exact per-probe random stream the interrupted
// run would have drawn. Call it only while no exchanges are in flight.
func (n *Network) SetProbeCount(c int) {
	n.probeCount.Store(int64(c))
}

// splitmix64 advances and finalizes one step of the SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// prng is a tiny lock-free SplitMix64 stream private to one exchange. It
// replaces the shared *rand.Rand the old single-lock engine serialized on:
// each Exchange seeds its own stream from (network seed, probe counter), so
// random behaviour stays reproducible for a given probe order without any
// cross-exchange coordination.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	v := splitmix64(p.state)
	p.state += 0x9e3779b97f4a7c15
	return v
}

// Float64 returns a uniform sample in [0, 1).
func (p *prng) Float64() float64 { return float64(p.next()>>11) / (1 << 53) }

// Intn returns a uniform sample in [0, n). The modulo bias is below 2^-48
// for the branch widths (<= 16) routers balance across.
func (p *prng) Intn(n int) int { return int(p.next() % uint64(n)) }

// Exchange injects the serialized IPv4 probe at the source gateway and
// simulates forwarding until a response packet reaches the source, the
// probe is dropped, or the step guard trips. It returns the serialized
// response and the total number of node traversals (a latency proxy).
// ok is false when no response comes back (a star).
//
// Exchange is safe for concurrent use; concurrent calls forward in
// parallel under the topology read lock.
func (n *Network) Exchange(probe []byte) (resp []byte, steps int, ok bool) {
	resp, steps, _, ok = n.ExchangeV(probe)
	return resp, steps, ok
}

// ExchangeV is Exchange plus the probe's virtual round-trip time: the
// virtual-clock time elapsed between injection and the response reaching
// the source. rtt is zero when no dynamics layer is installed
// (SetDynamics) or when no response comes back.
func (n *Network) ExchangeV(probe []byte) (resp []byte, steps int, rtt time.Duration, ok bool) {
	count := n.probeCount.Add(1)
	n.topoMu.RLock()
	haveEntry := n.haveEntry
	hooks := n.onSend
	n.topoMu.RUnlock()
	if !haveEntry {
		panic("netsim: SetSource not called")
	}
	for _, f := range hooks {
		f(int(count), probe)
	}

	ctx := exchCtx{rng: prng{state: splitmix64(n.seed ^ splitmix64(uint64(count)))}}
	if dy := n.dyn.Load(); dy != nil {
		ctx.dyn = dy
		ctx.clk = &vclock{}
		ctx.clk.reset(dy.probeStart(n.vround.Load(), probe))
	}
	// Copy: forwarding mutates TTL/checksum/src in place.
	pkt := append([]byte(nil), probe...)
	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	resp, steps, ok = n.run(&ctx, pkt, n.sourceGW, false)
	if ok && ctx.clk != nil {
		rtt = ctx.clk.elapsed()
	}
	return resp, steps, rtt, ok
}

// run is the forwarding engine. pkt is located at interface `at`
// (or originates at the router owning `at` when originated is true).
// Must be called with n.topoMu read-held. The IPv4 header is parsed once
// per packet version (injection, host response, originated ICMP) and
// threaded through the walk instead of being re-parsed at every hop. ctx
// carries the probe's RNG stream and, on the batch path, the arena and the
// per-batch config/route memos.
func (n *Network) run(ctx *exchCtx, pkt []byte, at netip.Addr, originated bool) (resp []byte, steps int, ok bool) {
	var hdr packet.IPv4
	payload, err := packet.ParseIPv4Into(pkt, &hdr)
	if err != nil {
		return nil, 0, false
	}
	// Injection crosses the first link (source → gateway) on the virtual
	// clock; every further traversal is charged where the packet moves
	// (host handoff, loop bottom). Originated ICMP replies are built in
	// place and charge nothing until they move.
	if ctx.clk != nil && !n.advanceClock(ctx, at, len(pkt)) {
		return nil, 0, false
	}
	for ; steps < n.maxSteps; steps++ {
		// Final delivery to the measurement source.
		if at == n.source && hdr.Dst == n.source {
			return pkt, steps, true
		}

		k, v4 := a4(at)
		if !v4 {
			return nil, steps, false // non-IPv4 adjacency
		}
		nd := n.nodes[k]

		// Delivery to a host.
		if h := nd.host; h != nil {
			if hdr.Dst != h.Addr {
				return nil, steps, false // mis-delivered; drop
			}
			r := h.respond(ctx, &hdr, payload, pkt)
			if r == nil {
				return nil, steps, false
			}
			pkt, at, originated = r, nd.hostGW, false
			if payload, err = packet.ParseIPv4Into(pkt, &hdr); err != nil {
				return nil, steps, false
			}
			if ctx.clk != nil && !n.advanceClock(ctx, at, len(pkt)) {
				return nil, steps, false
			}
			continue
		}

		r := nd.router
		if r == nil {
			return nil, steps, false // dangling adjacency
		}
		cfg := ctx.cfgOf(r)

		// Packet addressed to one of the router's own interfaces: the
		// router behaves like a host (intermediate hops are pingable).
		if !originated && r.ownsAddr(hdr.Dst) {
			reply := routerRespondLocal(ctx, r, cfg, hdr.Dst, &hdr, payload, pkt)
			if reply == nil {
				return nil, steps, false
			}
			pkt, originated = reply, true
			if payload, err = packet.ParseIPv4Into(pkt, &hdr); err != nil {
				return nil, steps, false
			}
			continue
		}

		if !originated {
			done, reply := routerTTLCheck(ctx, r, cfg, at, pkt, &hdr, payload)
			if done {
				if reply == nil {
					return nil, steps, false
				}
				pkt, originated = reply, true
				if payload, err = packet.ParseIPv4Into(pkt, &hdr); err != nil {
					return nil, steps, false
				}
				continue
			}
		}

		// Forwarding decision.
		next, reply, dropped := n.routerForward(ctx, r, cfg, at, pkt, &hdr, payload, originated)
		if dropped {
			return nil, steps, false
		}
		if reply != nil {
			pkt, originated = reply, true
			if payload, err = packet.ParseIPv4Into(pkt, &hdr); err != nil {
				return nil, steps, false
			}
			continue
		}
		if ctx.clk != nil && !n.advanceClock(ctx, next, len(pkt)) {
			return nil, steps, false
		}
		at, originated = next, false
	}
	return nil, steps, false
}

// routerTTLCheck applies TTL processing for a transit packet arriving at
// router r. done=true means the packet will not be forwarded as-is: either
// reply is the ICMP error the router originates, or nil for a silent drop.
func routerTTLCheck(ctx *exchCtx, r *Router, cfg *routerConfig, at netip.Addr, pkt []byte, hdr *packet.IPv4, payload []byte) (done bool, reply []byte) {
	switch {
	case hdr.TTL == 0:
		// Arrived already dead (zero-TTL forwarded upstream): quote TTL 0.
		if cfg.faults.Silent {
			return true, nil
		}
		return true, originateTimeExceeded(ctx, r, cfg, at, pkt, hdr, payload)
	case hdr.TTL == 1:
		if cfg.faults.ZeroTTLForward {
			// The Fig. 4 misbehaviour: forward with TTL 0.
			if err := packet.PatchTTL(pkt, 0); err != nil {
				return true, nil
			}
			hdr.TTL = 0
			return false, nil
		}
		if cfg.faults.Silent {
			return true, nil
		}
		return true, originateTimeExceeded(ctx, r, cfg, at, pkt, hdr, payload)
	default:
		if err := packet.PatchTTL(pkt, hdr.TTL-1); err != nil {
			return true, nil
		}
		hdr.TTL--
		return false, nil
	}
}

// routerForward looks up and applies the forwarding decision for pkt at r.
// Exactly one of (next, reply, dropped) is meaningful: a valid next means
// the packet moves to that interface; reply is an originated ICMP error;
// dropped means silence.
func (n *Network) routerForward(ctx *exchCtx, r *Router, cfg *routerConfig, at netip.Addr, pkt []byte, hdr *packet.IPv4, payload []byte, originated bool) (next netip.Addr, reply []byte, dropped bool) {
	isTransitProbe := !originated
	if cfg.faults.Unreachable && isTransitProbe {
		return netip.Addr{}, originateUnreachable(ctx, r, cfg, at, pkt, hdr, payload), false
	}
	// Scheduled dynamics at this router, evaluated functionally from the
	// arrival interface and the virtual arrival time (never from router
	// state, which concurrent probes at different virtual times share).
	var rot int
	if ctx.dyn != nil {
		if k, ok := a4(at); ok {
			if isTransitProbe && ctx.dyn.flapActive(k, ctx.clk.now) {
				// Route flap: transit routes transiently withdrawn.
				return netip.Addr{}, originateUnreachable(ctx, r, cfg, at, pkt, hdr, payload), false
			}
			rot = ctx.dyn.weightRot(k, ctx.clk.now)
		}
	}
	if cfg.faults.ForwardOverride.IsValid() && !originated {
		return cfg.faults.ForwardOverride, nil, false
	}
	rt, found := ctx.lookup(r, hdr.Dst)
	if !found {
		if originated {
			return netip.Addr{}, nil, true // can't route our own ICMP; drop
		}
		return netip.Addr{}, originateUnreachable(ctx, r, cfg, at, pkt, hdr, payload), false
	}
	if cfg.faults.DropProbability > 0 && !originated && ctx.rng.Float64() < cfg.faults.DropProbability {
		return netip.Addr{}, nil, true
	}
	var hopRng *prng
	if n.RandomPerPacket {
		hopRng = &ctx.rng
	}
	hop, err := r.selectHop(rt, hdr, payload, hopRng, rot)
	if err != nil {
		return netip.Addr{}, nil, true
	}
	// NAT egress rewriting (Fig. 5): packets whose source lies inside the
	// NAT prefix leaving for an outside adjacency get the public address.
	nat := cfg.nat
	if nat.Enabled() && hdr.Src.Is4() && nat.Inside.Contains(hdr.Src) && !nat.Inside.Contains(hop.Via) {
		if err := packet.PatchSrc(pkt, nat.Public); err == nil {
			hdr.Src = nat.Public
		}
	}
	return hop.Via, nil, false
}

// quoteOf returns the RFC 792 quotation of the packet: its IP header plus
// the first eight payload octets. The returned slice aliases pkt; callers
// hand it to MarshalIPv4ICMP, which copies it out before returning.
func quoteOf(pkt []byte, hdr *packet.IPv4, payload []byte) []byte {
	qn := 8
	if len(payload) < qn {
		qn = len(payload)
	}
	return pkt[:hdr.HeaderLen()+qn]
}

// originateTimeExceeded builds the serialized ICMP Time Exceeded response
// for pkt arriving on interface `at` of router r (quoting pkt as received,
// per Section 2.2: normal behaviour quotes probe TTL 1).
func originateTimeExceeded(ctx *exchCtx, r *Router, cfg *routerConfig, at netip.Addr, pkt []byte, hdr *packet.IPv4, payload []byte) []byte {
	if isICMPError(hdr, payload) {
		return nil // never generate ICMP about ICMP errors (RFC 792)
	}
	m := packet.ICMP{
		Type:    packet.ICMPTypeTimeExceeded,
		Code:    packet.CodeTTLExceeded,
		Payload: quoteOf(pkt, hdr, payload),
	}
	return marshalFromRouter(ctx, r, cfg, at, hdr.Src, &m)
}

func originateUnreachable(ctx *exchCtx, r *Router, cfg *routerConfig, at netip.Addr, pkt []byte, hdr *packet.IPv4, payload []byte) []byte {
	faults := cfg.faults
	if faults.Silent || isICMPError(hdr, payload) {
		return nil
	}
	code := faults.UnreachableCode
	if !faults.Unreachable && code == 0 {
		code = packet.CodeNetUnreachable // no route: network unreachable
	} else if faults.Unreachable && faults.UnreachableCode == 0 {
		code = packet.CodeHostUnreachable
	}
	m := packet.ICMP{
		Type:    packet.ICMPTypeDestUnreachable,
		Code:    code,
		Payload: quoteOf(pkt, hdr, payload),
	}
	return marshalFromRouter(ctx, r, cfg, at, hdr.Src, &m)
}

func marshalFromRouter(ctx *exchCtx, r *Router, cfg *routerConfig, from, to netip.Addr, m *packet.ICMP) []byte {
	ip := packet.IPv4{
		TTL:      cfg.icmpTTL,
		Protocol: packet.ProtoICMP,
		ID:       r.nextIPID(cfg),
		Src:      from,
		Dst:      to,
	}
	out, err := packet.MarshalIPv4ICMPInto(ctx.respBuf(packet.IPv4ICMPLen(&ip, m)), &ip, m)
	if err != nil {
		return nil
	}
	return out
}

// routerRespondLocal answers a probe addressed to the router itself.
func routerRespondLocal(ctx *exchCtx, r *Router, cfg *routerConfig, local netip.Addr, hdr *packet.IPv4, payload, pkt []byte) []byte {
	if cfg.faults.Silent {
		return nil
	}
	switch hdr.Protocol {
	case packet.ProtoUDP:
		m := packet.ICMP{
			Type:    packet.ICMPTypeDestUnreachable,
			Code:    packet.CodePortUnreachable,
			Payload: quoteOf(pkt, hdr, payload),
		}
		return marshalFromRouter(ctx, r, cfg, local, hdr.Src, &m)
	case packet.ProtoICMP:
		var em packet.ICMP
		if err := packet.ParseICMPInto(payload, &em); err != nil || em.Type != packet.ICMPTypeEchoRequest {
			return nil
		}
		reply := packet.ICMP{
			Type:    packet.ICMPTypeEchoReply,
			ID:      em.ID,
			Seq:     em.Seq,
			Payload: em.Payload, // copied out by MarshalIPv4ICMPInto
		}
		return marshalFromRouter(ctx, r, cfg, local, hdr.Src, &reply)
	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, err := packet.ParseTCPInto(payload, &th); err != nil {
			return nil
		}
		seg, err := packet.MarshalTCP(local, hdr.Src, &packet.TCP{
			SrcPort: th.DstPort,
			DstPort: th.SrcPort,
			Ack:     th.Seq + 1,
			Flags:   packet.TCPRst | packet.TCPAck,
			Window:  65535,
		}, nil)
		if err != nil {
			return nil
		}
		ip := packet.IPv4{
			TTL:      cfg.icmpTTL,
			Protocol: packet.ProtoTCP,
			ID:       r.nextIPID(cfg),
			Src:      local,
			Dst:      hdr.Src,
		}
		out, err := ip.MarshalInto(ctx.respBuf(ip.HeaderLen()+len(seg)), seg)
		if err != nil {
			return nil
		}
		return out
	default:
		return nil
	}
}

// isICMPError reports whether the parsed packet is an ICMP error message
// (which must never trigger further ICMP errors).
func isICMPError(hdr *packet.IPv4, payload []byte) bool {
	if hdr.Protocol != packet.ProtoICMP || len(payload) < 1 {
		return false
	}
	t := payload[0]
	return t == packet.ICMPTypeTimeExceeded || t == packet.ICMPTypeDestUnreachable
}

func (r *Router) ownsAddr(a netip.Addr) bool {
	for _, x := range r.ifaces {
		if x == a {
			return true
		}
	}
	return false
}
