package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"

	"repro/internal/packet"
)

// DefaultMaxSteps bounds the number of node traversals a single injected
// packet (and the response it triggers) may make. Packets caught in
// forwarding loops normally die by TTL expiry long before this guard.
const DefaultMaxSteps = 1024

// Network is a simulated IPv4 network: a set of routers and hosts joined by
// point-to-point adjacencies (NextHop.Via names the remote interface).
//
// Exchange is the tracer-facing entry point: it injects a serialized probe
// at the measurement source's gateway and returns whatever response packet
// makes it back to the source, simulating both the forward and the return
// path hop by hop.
type Network struct {
	mu sync.Mutex

	routers     map[netip.Addr]*Router // every iface addr -> its router
	hosts       map[netip.Addr]*Host
	hostGateway map[netip.Addr]netip.Addr // host addr -> attachment iface

	source    netip.Addr // the measurement source address
	sourceGW  netip.Addr // interface the source's packets enter through
	haveEntry bool

	rng *rand.Rand
	// RandomPerPacket selects random spreading for PerPacket balancers;
	// when false, routers round-robin deterministically.
	RandomPerPacket bool

	maxSteps int

	probeCount int
	onSend     []func(count int, probe []byte)
}

// New creates an empty network. seed fixes all randomized behaviour
// (per-packet balancing, probabilistic drops), keeping runs reproducible.
func New(seed int64) *Network {
	return &Network{
		routers:         make(map[netip.Addr]*Router),
		hosts:           make(map[netip.Addr]*Host),
		hostGateway:     make(map[netip.Addr]netip.Addr),
		rng:             rand.New(rand.NewSource(seed)),
		RandomPerPacket: true,
		maxSteps:        DefaultMaxSteps,
	}
}

// AddRouter registers a router; each of its interface addresses becomes
// routable within the network.
func (n *Network) AddRouter(r *Router) *Router {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range r.ifaces {
		if prev, ok := n.routers[a]; ok && prev != r {
			panic(fmt.Sprintf("netsim: interface %v already owned by router %s", a, prev.Name))
		}
		if _, ok := n.hosts[a]; ok {
			panic(fmt.Sprintf("netsim: interface %v already owned by a host", a))
		}
		n.routers[a] = r
	}
	return r
}

// AddIface allocates a new interface on r with address a, registering it in
// the network, and returns its interface index. Topology builders use this
// to grow routers one adjacency at a time.
func (n *Network) AddIface(r *Router, a netip.Addr) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if prev, ok := n.routers[a]; ok && prev != r {
		panic(fmt.Sprintf("netsim: interface %v already owned by router %s", a, prev.Name))
	}
	if _, ok := n.hosts[a]; ok {
		panic(fmt.Sprintf("netsim: interface %v already owned by a host", a))
	}
	n.routers[a] = r
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ifaces = append(r.ifaces, a)
	return len(r.ifaces) - 1
}

// AttachHost registers a host and the router interface it hangs off.
// Responses the host generates enter the network at gateway.
func (n *Network) AttachHost(h *Host, gateway netip.Addr) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.routers[h.Addr]; ok {
		panic(fmt.Sprintf("netsim: host address %v already owned by a router", h.Addr))
	}
	n.hosts[h.Addr] = h
	n.hostGateway[h.Addr] = gateway
	return h
}

// SetSource declares the measurement source address and the interface its
// probes enter the network through (its first-hop gateway).
func (n *Network) SetSource(src, gateway netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.source = src
	n.sourceGW = gateway
	n.haveEntry = true
}

// Source returns the measurement source address.
func (n *Network) Source() netip.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.source
}

// RouterAt returns the router owning the given interface address.
func (n *Network) RouterAt(a netip.Addr) (*Router, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.routers[a]
	return r, ok
}

// HostAt returns the host owning the given address.
func (n *Network) HostAt(a netip.Addr) (*Host, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[a]
	return h, ok
}

// OnSend registers a hook invoked (outside the network lock) with the
// running probe count and the serialized probe before each Exchange; the
// hook must treat the probe as read-only. Routing-change and
// forwarding-loop injection hang off this hook.
func (n *Network) OnSend(f func(count int, probe []byte)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onSend = append(n.onSend, f)
}

// ProbeCount returns the number of probes injected so far.
func (n *Network) ProbeCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.probeCount
}

// Exchange injects the serialized IPv4 probe at the source gateway and
// simulates forwarding until a response packet reaches the source, the
// probe is dropped, or the step guard trips. It returns the serialized
// response and the total number of node traversals (a latency proxy).
// ok is false when no response comes back (a star).
func (n *Network) Exchange(probe []byte) (resp []byte, steps int, ok bool) {
	n.mu.Lock()
	if !n.haveEntry {
		n.mu.Unlock()
		panic("netsim: SetSource not called")
	}
	n.probeCount++
	count := n.probeCount
	hooks := make([]func(int, []byte), len(n.onSend))
	copy(hooks, n.onSend)
	n.mu.Unlock()
	for _, f := range hooks {
		f(count, probe)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	// Copy: forwarding mutates TTL/checksum/src in place.
	pkt := append([]byte(nil), probe...)
	return n.run(pkt, n.sourceGW, false)
}

// run is the forwarding engine. pkt is located at interface `at`
// (or originates at the router owning `at` when originated is true).
// Must be called with n.mu held.
func (n *Network) run(pkt []byte, at netip.Addr, originated bool) (resp []byte, steps int, ok bool) {
	for ; steps < n.maxSteps; steps++ {
		hdr, _, err := packet.ParseIPv4(pkt)
		if err != nil {
			return nil, steps, false
		}

		// Final delivery to the measurement source.
		if at == n.source && hdr.Dst == n.source {
			return pkt, steps, true
		}

		// Delivery to a host.
		if h, isHost := n.hosts[at]; isHost {
			if hdr.Dst != h.Addr {
				return nil, steps, false // mis-delivered; drop
			}
			r := h.respond(pkt)
			if r == nil {
				return nil, steps, false
			}
			pkt, at, originated = r, n.hostGateway[h.Addr], false
			continue
		}

		r, isRouter := n.routers[at]
		if !isRouter {
			return nil, steps, false // dangling adjacency
		}

		// Packet addressed to one of the router's own interfaces: the
		// router behaves like a host (intermediate hops are pingable).
		if !originated && r.ownsAddr(hdr.Dst) {
			reply := n.routerRespondLocal(r, hdr.Dst, pkt)
			if reply == nil {
				return nil, steps, false
			}
			pkt, originated = reply, true
			continue
		}

		if !originated {
			done, reply := n.routerTTLCheck(r, at, pkt, hdr)
			if done {
				if reply == nil {
					return nil, steps, false
				}
				pkt, originated = reply, true
				continue
			}
		}

		// Forwarding decision.
		next, reply, dropped := n.routerForward(r, at, pkt, hdr, originated)
		if dropped {
			return nil, steps, false
		}
		if reply != nil {
			pkt, originated = reply, true
			continue
		}
		at, originated = next, false
	}
	return nil, steps, false
}

// routerTTLCheck applies TTL processing for a transit packet arriving at
// router r. done=true means the packet will not be forwarded as-is: either
// reply is the ICMP error the router originates, or nil for a silent drop.
func (n *Network) routerTTLCheck(r *Router, at netip.Addr, pkt []byte, hdr *packet.IPv4) (done bool, reply []byte) {
	faults := r.faultsCopy()
	switch {
	case hdr.TTL == 0:
		// Arrived already dead (zero-TTL forwarded upstream): quote TTL 0.
		if faults.Silent {
			return true, nil
		}
		return true, n.originateTimeExceeded(r, at, pkt, hdr)
	case hdr.TTL == 1:
		if faults.ZeroTTLForward {
			// The Fig. 4 misbehaviour: forward with TTL 0.
			if err := packet.PatchTTL(pkt, 0); err != nil {
				return true, nil
			}
			return false, nil
		}
		if faults.Silent {
			return true, nil
		}
		return true, n.originateTimeExceeded(r, at, pkt, hdr)
	default:
		if err := packet.PatchTTL(pkt, hdr.TTL-1); err != nil {
			return true, nil
		}
		hdr.TTL--
		return false, nil
	}
}

// routerForward looks up and applies the forwarding decision for pkt at r.
// Exactly one of (next, reply, dropped) is meaningful: a valid next means
// the packet moves to that interface; reply is an originated ICMP error;
// dropped means silence.
func (n *Network) routerForward(r *Router, at netip.Addr, pkt []byte, hdr *packet.IPv4, originated bool) (next netip.Addr, reply []byte, dropped bool) {
	faults := r.faultsCopy()
	isTransitProbe := !originated
	if faults.Unreachable && isTransitProbe {
		return netip.Addr{}, n.originateUnreachable(r, at, pkt, hdr, faults), false
	}
	if faults.ForwardOverride.IsValid() && !originated {
		return faults.ForwardOverride, nil, false
	}
	rt, found := r.lookup(hdr.Dst)
	if !found {
		if originated {
			return netip.Addr{}, nil, true // can't route our own ICMP; drop
		}
		return netip.Addr{}, n.originateUnreachable(r, at, pkt, hdr, faults), false
	}
	if faults.DropProbability > 0 && !originated && n.rng.Float64() < faults.DropProbability {
		return netip.Addr{}, nil, true
	}
	var rng *rand.Rand
	if n.RandomPerPacket {
		rng = n.rng
	}
	hop, err := r.selectHop(rt, pkt, hdr.Dst, rng)
	if err != nil {
		return netip.Addr{}, nil, true
	}
	// NAT egress rewriting (Fig. 5): packets whose source lies inside the
	// NAT prefix leaving for an outside adjacency get the public address.
	nat := r.natCopy()
	if nat.Enabled() && hdr.Src.Is4() && nat.Inside.Contains(hdr.Src) && !nat.Inside.Contains(hop.Via) {
		if err := packet.PatchSrc(pkt, nat.Public); err == nil {
			hdr.Src = nat.Public
		}
	}
	return hop.Via, nil, false
}

// originateTimeExceeded builds the serialized ICMP Time Exceeded response
// for pkt arriving on interface `at` of router r (quoting pkt as received,
// per Section 2.2: normal behaviour quotes probe TTL 1).
func (n *Network) originateTimeExceeded(r *Router, at netip.Addr, pkt []byte, hdr *packet.IPv4) []byte {
	if isICMPError(pkt) {
		return nil // never generate ICMP about ICMP errors (RFC 792)
	}
	m, err := packet.TimeExceeded(pkt)
	if err != nil {
		return nil
	}
	return n.marshalFromRouter(r, at, hdr.Src, m)
}

func (n *Network) originateUnreachable(r *Router, at netip.Addr, pkt []byte, hdr *packet.IPv4, faults Faults) []byte {
	if faults.Silent || isICMPError(pkt) {
		return nil
	}
	code := faults.UnreachableCode
	if !faults.Unreachable && code == 0 {
		code = packet.CodeNetUnreachable // no route: network unreachable
	} else if faults.Unreachable && faults.UnreachableCode == 0 {
		code = packet.CodeHostUnreachable
	}
	m, err := packet.DestUnreachable(code, pkt)
	if err != nil {
		return nil
	}
	return n.marshalFromRouter(r, at, hdr.Src, m)
}

func (n *Network) marshalFromRouter(r *Router, from, to netip.Addr, m *packet.ICMP) []byte {
	body, err := m.Marshal()
	if err != nil {
		return nil
	}
	out, err := (&packet.IPv4{
		TTL:      r.icmpTTLCopy(),
		Protocol: packet.ProtoICMP,
		ID:       r.nextIPID(),
		Src:      from,
		Dst:      to,
	}).Marshal(body)
	if err != nil {
		return nil
	}
	return out
}

// routerRespondLocal answers a probe addressed to the router itself.
func (n *Network) routerRespondLocal(r *Router, local netip.Addr, pkt []byte) []byte {
	hdr, payload, err := packet.ParseIPv4(pkt)
	if err != nil {
		return nil
	}
	if r.faultsCopy().Silent {
		return nil
	}
	switch hdr.Protocol {
	case packet.ProtoUDP:
		m, err := packet.DestUnreachable(packet.CodePortUnreachable, pkt)
		if err != nil {
			return nil
		}
		return n.marshalFromRouter(r, local, hdr.Src, m)
	case packet.ProtoICMP:
		em, err := packet.ParseICMP(payload)
		if err != nil || em.Type != packet.ICMPTypeEchoRequest {
			return nil
		}
		reply := &packet.ICMP{
			Type:    packet.ICMPTypeEchoReply,
			ID:      em.ID,
			Seq:     em.Seq,
			Payload: append([]byte(nil), em.Payload...),
		}
		return n.marshalFromRouter(r, local, hdr.Src, reply)
	case packet.ProtoTCP:
		th, _, _, err := packet.ParseTCP(payload)
		if err != nil || th == nil {
			return nil
		}
		seg, err := packet.MarshalTCP(local, hdr.Src, &packet.TCP{
			SrcPort: th.DstPort,
			DstPort: th.SrcPort,
			Ack:     th.Seq + 1,
			Flags:   packet.TCPRst | packet.TCPAck,
			Window:  65535,
		}, nil)
		if err != nil {
			return nil
		}
		out, err := (&packet.IPv4{
			TTL:      r.icmpTTLCopy(),
			Protocol: packet.ProtoTCP,
			ID:       r.nextIPID(),
			Src:      local,
			Dst:      hdr.Src,
		}).Marshal(seg)
		if err != nil {
			return nil
		}
		return out
	default:
		return nil
	}
}

// isICMPError reports whether the serialized packet is an ICMP error
// message (which must never trigger further ICMP errors).
func isICMPError(pkt []byte) bool {
	hdr, payload, err := packet.ParseIPv4(pkt)
	if err != nil || hdr.Protocol != packet.ProtoICMP || len(payload) < 1 {
		return false
	}
	t := payload[0]
	return t == packet.ICMPTypeTimeExceeded || t == packet.ICMPTypeDestUnreachable
}

func (r *Router) ownsAddr(a netip.Addr) bool {
	for _, x := range r.ifaces {
		if x == a {
			return true
		}
	}
	return false
}

func (r *Router) faultsCopy() Faults {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faults
}

func (r *Router) natCopy() NAT {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nat
}

func (r *Router) icmpTTLCopy() uint8 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.icmpTTL
}
