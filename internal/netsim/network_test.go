package netsim

import (
	"net/netip"
	"sync"
	"testing"

	"repro/internal/packet"
)

// testNet builds source -> gw -> r1 -> r2 -> r3 -> host, returning the
// network, the routers, and the host.
func testNet(t *testing.T) (*Network, []*Router, *Host) {
	t.Helper()
	n := New(1)
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	addr := func(x byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, 1, x}) }

	gw := NewRouter("gw", addr(1))
	r1 := NewRouter("r1", addr(2))
	r2 := NewRouter("r2", addr(3))
	r3 := NewRouter("r3", addr(4))
	host := NewHost("h", netip.AddrFrom4([4]byte{172, 16, 0, 1}))
	for _, r := range []*Router{gw, r1, r2, r3} {
		n.AddRouter(r)
	}
	n.AttachHost(host, addr(4))
	n.SetSource(src, addr(1))

	all := netip.PrefixFrom(netip.AddrFrom4([4]byte{}), 0)
	hostP := netip.PrefixFrom(host.Addr, 32)
	srcP := netip.PrefixFrom(src, 32)
	gw.AddRoute(Route{Prefix: hostP, Hops: []NextHop{{Via: addr(2)}}})
	gw.AddRoute(Route{Prefix: srcP, Hops: []NextHop{{Via: src}}})
	r1.AddRoute(Route{Prefix: hostP, Hops: []NextHop{{Via: addr(3)}}})
	r1.AddRoute(Route{Prefix: all, Hops: []NextHop{{Via: addr(1)}}})
	r2.AddRoute(Route{Prefix: hostP, Hops: []NextHop{{Via: addr(4)}}})
	r2.AddRoute(Route{Prefix: all, Hops: []NextHop{{Via: addr(2)}}})
	r3.AddRoute(Route{Prefix: hostP, Hops: []NextHop{{Via: host.Addr}}})
	r3.AddRoute(Route{Prefix: all, Hops: []NextHop{{Via: addr(3)}}})
	// Adjacency /32 routes so router interfaces are probeable directly.
	gw.AddRoute(Route{Prefix: netip.PrefixFrom(addr(2), 32), Hops: []NextHop{{Via: addr(2)}}})
	gw.AddRoute(Route{Prefix: netip.PrefixFrom(addr(3), 32), Hops: []NextHop{{Via: addr(2)}}})
	gw.AddRoute(Route{Prefix: netip.PrefixFrom(addr(4), 32), Hops: []NextHop{{Via: addr(2)}}})
	r1.AddRoute(Route{Prefix: netip.PrefixFrom(addr(3), 32), Hops: []NextHop{{Via: addr(3)}}})
	r1.AddRoute(Route{Prefix: netip.PrefixFrom(addr(4), 32), Hops: []NextHop{{Via: addr(3)}}})
	r2.AddRoute(Route{Prefix: netip.PrefixFrom(addr(4), 32), Hops: []NextHop{{Via: addr(4)}}})
	return n, []*Router{gw, r1, r2, r3}, host
}

func udpProbe(t *testing.T, n *Network, dst netip.Addr, ttl uint8, srcPort, dstPort uint16) []byte {
	t.Helper()
	dgram, err := packet.MarshalUDP(n.Source(), dst, &packet.UDP{SrcPort: srcPort, DstPort: dstPort}, make([]byte, 12))
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := (&packet.IPv4{TTL: ttl, Protocol: packet.ProtoUDP, Src: n.Source(), Dst: dst}).Marshal(dgram)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func parseResp(t *testing.T, resp []byte) (*packet.IPv4, *packet.ICMP) {
	t.Helper()
	h, payload, err := packet.ParseIPv4(resp)
	if err != nil {
		t.Fatalf("response header: %v", err)
	}
	if h.Protocol != packet.ProtoICMP {
		return h, nil
	}
	m, err := packet.ParseICMP(payload)
	if err != nil {
		t.Fatalf("response ICMP: %v", err)
	}
	return h, m
}

func TestTTLExpiryGeneratesTimeExceeded(t *testing.T) {
	n, routers, host := testNet(t)
	for hop := 1; hop <= 3; hop++ {
		resp, _, ok := n.Exchange(udpProbe(t, n, host.Addr, uint8(hop), 111, 222))
		if !ok {
			t.Fatalf("hop %d: no response", hop)
		}
		h, m := parseResp(t, resp)
		if h.Src != routers[hop-1].Iface(0) {
			t.Errorf("hop %d answered by %v, want %v", hop, h.Src, routers[hop-1].Iface(0))
		}
		if m == nil || m.Type != packet.ICMPTypeTimeExceeded {
			t.Fatalf("hop %d: not a Time Exceeded", hop)
		}
		inner, _, err := packet.ParseQuoted(m)
		if err != nil {
			t.Fatalf("hop %d: quote: %v", hop, err)
		}
		if inner.TTL != 1 {
			t.Errorf("hop %d: quoted probe TTL = %d, want 1", hop, inner.TTL)
		}
		if inner.Dst != host.Addr {
			t.Errorf("hop %d: quoted dst = %v", hop, inner.Dst)
		}
	}
}

func TestResponseTTLReflectsReturnPath(t *testing.T) {
	n, _, host := testNet(t)
	// Router at hop k originates with TTL 255 and the response is
	// decremented by the k-1 routers on the way back.
	for hop := 1; hop <= 3; hop++ {
		resp, _, ok := n.Exchange(udpProbe(t, n, host.Addr, uint8(hop), 111, 222))
		if !ok {
			t.Fatalf("hop %d: no response", hop)
		}
		h, _ := parseResp(t, resp)
		want := 255 - (hop - 1)
		if int(h.TTL) != want {
			t.Errorf("hop %d: response TTL %d, want %d", hop, h.TTL, want)
		}
	}
}

func TestDeliveryToHostPortUnreachable(t *testing.T) {
	n, _, host := testNet(t)
	resp, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 10, 111, 33435))
	if !ok {
		t.Fatal("no response from host")
	}
	h, m := parseResp(t, resp)
	if h.Src != host.Addr {
		t.Errorf("answered by %v, want host %v", h.Src, host.Addr)
	}
	if m.Type != packet.ICMPTypeDestUnreachable || m.Code != packet.CodePortUnreachable {
		t.Errorf("type/code = %d/%d, want 3/3", m.Type, m.Code)
	}
}

func TestHostEchoReply(t *testing.T) {
	n, _, host := testNet(t)
	body, err := (&packet.ICMP{Type: packet.ICMPTypeEchoRequest, ID: 7, Seq: 9}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := (&packet.IPv4{TTL: 20, Protocol: packet.ProtoICMP, Src: n.Source(), Dst: host.Addr}).Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, ok := n.Exchange(pkt)
	if !ok {
		t.Fatal("no echo reply")
	}
	_, m := parseResp(t, resp)
	if m.Type != packet.ICMPTypeEchoReply || m.ID != 7 || m.Seq != 9 {
		t.Errorf("echo reply = %+v", m)
	}
}

func TestHostTCPResponses(t *testing.T) {
	n, _, host := testNet(t)
	host.OpenTCPPorts = map[uint16]bool{80: true}
	for _, tc := range []struct {
		port     uint16
		wantFlag uint8
	}{
		{80, packet.TCPSyn | packet.TCPAck},
		{81, packet.TCPRst | packet.TCPAck},
	} {
		seg, err := packet.MarshalTCP(n.Source(), host.Addr, &packet.TCP{
			SrcPort: 5555, DstPort: tc.port, Seq: 100, Flags: packet.TCPSyn,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := (&packet.IPv4{TTL: 20, Protocol: packet.ProtoTCP, Src: n.Source(), Dst: host.Addr}).Marshal(seg)
		if err != nil {
			t.Fatal(err)
		}
		resp, _, ok := n.Exchange(pkt)
		if !ok {
			t.Fatalf("port %d: no response", tc.port)
		}
		h, payload, err := packet.ParseIPv4(resp)
		if err != nil || h.Protocol != packet.ProtoTCP {
			t.Fatalf("port %d: response proto %d err %v", tc.port, h.Protocol, err)
		}
		th, _, _, err := packet.ParseTCP(payload)
		if err != nil {
			t.Fatal(err)
		}
		if th.Flags != tc.wantFlag {
			t.Errorf("port %d: flags %#02x, want %#02x", tc.port, th.Flags, tc.wantFlag)
		}
		if th.Ack != 101 {
			t.Errorf("port %d: ack %d, want 101", tc.port, th.Ack)
		}
	}
}

func TestSilentRouterProducesStar(t *testing.T) {
	n, routers, host := testNet(t)
	routers[1].SetFaults(Faults{Silent: true})
	if _, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 2, 1, 2)); ok {
		t.Error("silent router answered")
	}
	// Other hops still answer.
	if _, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 3, 1, 2)); !ok {
		t.Error("hop past the silent router went quiet")
	}
}

func TestUnreachableFault(t *testing.T) {
	n, routers, host := testNet(t)
	routers[2].SetFaults(Faults{Unreachable: true})
	// Probe expiring at the faulty router: normal Time Exceeded.
	resp, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 3, 1, 2))
	if !ok {
		t.Fatal("no response")
	}
	_, m := parseResp(t, resp)
	if m.Type != packet.ICMPTypeTimeExceeded {
		t.Errorf("expiring probe drew type %d, want Time Exceeded", m.Type)
	}
	// Probe that must transit: Destination Unreachable (host code).
	resp, _, ok = n.Exchange(udpProbe(t, n, host.Addr, 4, 1, 2))
	if !ok {
		t.Fatal("no response")
	}
	h, m := parseResp(t, resp)
	if m.Type != packet.ICMPTypeDestUnreachable || m.Code != packet.CodeHostUnreachable {
		t.Errorf("transit probe drew %d/%d, want 3/1", m.Type, m.Code)
	}
	if h.Src != routers[2].Iface(0) {
		t.Errorf("!H from %v, want the faulty router %v", h.Src, routers[2].Iface(0))
	}
}

func TestZeroTTLForwarding(t *testing.T) {
	n, routers, host := testNet(t)
	routers[1].SetFaults(Faults{ZeroTTLForward: true}) // r1 at hop 2
	// Probe with TTL 2 should be forwarded dead to r2, which quotes TTL 0.
	resp, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 2, 1, 2))
	if !ok {
		t.Fatal("no response")
	}
	h, m := parseResp(t, resp)
	if h.Src != routers[2].Iface(0) {
		t.Errorf("answered by %v, want downstream router %v", h.Src, routers[2].Iface(0))
	}
	inner, _, err := packet.ParseQuoted(m)
	if err != nil {
		t.Fatal(err)
	}
	if inner.TTL != 0 {
		t.Errorf("quoted probe TTL = %d, want 0", inner.TTL)
	}
	// The quoted packet's header checksum must still verify after the
	// in-flight TTL patching.
	if packet.Checksum(m.Payload[:inner.HeaderLen()]) != 0 {
		t.Error("quoted header checksum invalid after TTL patch")
	}
}

func TestForwardOverrideLoopsUntilTTLDeath(t *testing.T) {
	n, routers, host := testNet(t)
	// r2 bounces everything back to r1: probes with TTL > 2 ping-pong and
	// die inside the loop, alternating responders.
	routers[2].SetFaults(Faults{ForwardOverride: routers[1].Iface(0)})
	var responders []netip.Addr
	for ttl := 2; ttl <= 7; ttl++ {
		resp, _, ok := n.Exchange(udpProbe(t, n, host.Addr, uint8(ttl), 1, 2))
		if !ok {
			t.Fatalf("ttl %d: no response", ttl)
		}
		h, _ := parseResp(t, resp)
		responders = append(responders, h.Src)
	}
	// From TTL 2 on: r1, r2, r1, r2, ... (alternating).
	for i := 1; i < len(responders); i++ {
		if responders[i] == responders[i-1] {
			t.Fatalf("expected alternation, got %v", responders)
		}
	}
}

func TestNATRewritesICMPSource(t *testing.T) {
	n := New(1)
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	pub := netip.AddrFrom4([4]byte{10, 0, 1, 1})
	natPub := netip.AddrFrom4([4]byte{10, 0, 1, 2})
	natPriv := netip.AddrFrom4([4]byte{192, 168, 0, 1})
	insideIf := netip.AddrFrom4([4]byte{192, 168, 0, 2})
	hostAddr := netip.AddrFrom4([4]byte{192, 168, 0, 100})
	inside := netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 168, 0, 0}), 24)

	gw := NewRouter("gw", pub)
	nat := NewRouter("nat", natPub, natPriv)
	nat.SetNAT(NAT{Public: natPub, Inside: inside})
	in := NewRouter("in", insideIf)
	host := NewHost("h", hostAddr)
	n.AddRouter(gw)
	n.AddRouter(nat)
	n.AddRouter(in)
	n.AttachHost(host, insideIf)
	n.SetSource(src, pub)

	all := netip.PrefixFrom(netip.AddrFrom4([4]byte{}), 0)
	hostP := netip.PrefixFrom(hostAddr, 32)
	gw.AddRoute(Route{Prefix: hostP, Hops: []NextHop{{Via: natPub}}})
	gw.AddRoute(Route{Prefix: netip.PrefixFrom(src, 32), Hops: []NextHop{{Via: src}}})
	nat.AddRoute(Route{Prefix: hostP, Hops: []NextHop{{Via: insideIf}}})
	nat.AddRoute(Route{Prefix: all, Hops: []NextHop{{Via: pub}}})
	in.AddRoute(Route{Prefix: hostP, Hops: []NextHop{{Via: hostAddr}}})
	in.AddRoute(Route{Prefix: all, Hops: []NextHop{{Via: natPriv}}})

	probe := udpProbe(t, n, hostAddr, 3, 1, 2) // expires at the inside router
	resp, _, ok := n.Exchange(probe)
	if !ok {
		t.Fatal("no response")
	}
	h, _ := parseResp(t, resp)
	if h.Src != natPub {
		t.Errorf("inside router's response source = %v, want rewritten %v", h.Src, natPub)
	}
	// Rewriting must keep the IP header checksum valid.
	if packet.Checksum(resp[:packet.IPv4HeaderLen]) != 0 {
		t.Error("rewritten response has invalid header checksum")
	}

	// The host's own response (port unreachable) is rewritten too.
	resp, _, ok = n.Exchange(udpProbe(t, n, hostAddr, 9, 1, 2))
	if !ok {
		t.Fatal("no host response")
	}
	h, m := parseResp(t, resp)
	if h.Src != natPub {
		t.Errorf("host response source = %v, want rewritten %v", h.Src, natPub)
	}
	if m.Type != packet.ICMPTypeDestUnreachable || m.Code != packet.CodePortUnreachable {
		t.Errorf("host response type/code %d/%d", m.Type, m.Code)
	}
}

func TestIPIDStride(t *testing.T) {
	n, routers, host := testNet(t)
	routers[0].SetIPIDStride(5)
	var ids []uint16
	for i := 0; i < 3; i++ {
		resp, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 1, 1, 2))
		if !ok {
			t.Fatal("no response")
		}
		h, _ := parseResp(t, resp)
		ids = append(ids, h.ID)
	}
	if ids[1]-ids[0] != 5 || ids[2]-ids[1] != 5 {
		t.Errorf("IP IDs %v, want stride 5", ids)
	}
}

func TestRouterAnsweredDirectly(t *testing.T) {
	n, routers, _ := testNet(t)
	target := routers[2].Iface(0) // probe the router itself
	resp, _, ok := n.Exchange(udpProbe(t, n, target, 10, 1, 33435))
	if !ok {
		t.Fatal("router did not answer a probe addressed to it")
	}
	h, m := parseResp(t, resp)
	if h.Src != target {
		t.Errorf("answered by %v", h.Src)
	}
	if m.Type != packet.ICMPTypeDestUnreachable || m.Code != packet.CodePortUnreachable {
		t.Errorf("type/code %d/%d, want 3/3", m.Type, m.Code)
	}
}

func TestNoICMPAboutICMPErrors(t *testing.T) {
	n, _, host := testNet(t)
	// Build an ICMP Time Exceeded packet destined somewhere unreachable
	// past the network, expiring mid-path: the expiry router must stay
	// silent rather than generate an error about an error.
	inner, err := (&packet.IPv4{TTL: 1, Protocol: packet.ProtoUDP, Src: n.Source(), Dst: host.Addr}).Marshal(make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	m, err := packet.TimeExceeded(inner)
	if err != nil {
		t.Fatal(err)
	}
	body, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := (&packet.IPv4{TTL: 1, Protocol: packet.ProtoICMP, Src: n.Source(), Dst: host.Addr}).Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := n.Exchange(pkt); ok {
		t.Error("router generated ICMP about an ICMP error")
	}
}

func TestDropProbability(t *testing.T) {
	n, routers, host := testNet(t)
	routers[1].SetFaults(Faults{DropProbability: 1.0})
	if _, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 9, 1, 2)); ok {
		t.Error("probe survived a drop-probability-1 router")
	}
	// Expiring at the dropper still answers (drop applies to forwarding).
	if _, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 2, 1, 2)); !ok {
		t.Error("dropper did not answer an expiring probe")
	}
}

func TestConcurrentExchanges(t *testing.T) {
	n, _, host := testNet(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ttl := uint8(1 + (i % 4))
				resp, _, ok := n.Exchange(udpProbe(t, n, host.Addr, ttl, uint16(w), uint16(i)))
				if !ok || len(resp) == 0 {
					errs <- "missing response under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	// Two routers pointing at each other with a non-expiring packet
	// (originated=false each hop decrements, so TTL death normally wins;
	// use max TTL to show the guard still bounds the walk).
	n, routers, host := testNet(t)
	routers[2].SetFaults(Faults{ForwardOverride: routers[1].Iface(0)})
	if _, _, ok := n.Exchange(udpProbe(t, n, host.Addr, 255, 1, 2)); !ok {
		// TTL 255 dies inside the loop and the last router answers;
		// either way Exchange must terminate, which reaching this line
		// proves.
		t.Log("probe lost in loop (acceptable); guard terminated the walk")
	}
}
