package netsim_test

// Microbenchmarks of the forwarding engine itself (no tracer overhead).
// BenchmarkExchangeParallel is the headline for the concurrent-engine work:
// under the old global network lock its throughput was flat in the number
// of senders; now it must scale with GOMAXPROCS.

import (
	"sync/atomic"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topo"
)

// benchProbes builds one mid-trace UDP probe (TTL 6: expires in the pod,
// exercising TTL patching, ICMP quoting, and the return path) per
// destination of a generated campaign topology.
func benchProbes(b *testing.B) (*netsim.Network, [][]byte) {
	b.Helper()
	cfg := topo.DefaultGenConfig()
	cfg.Destinations = 200
	sc := topo.Generate(cfg)
	probes := make([][]byte, len(sc.Dests))
	for i, d := range sc.Dests {
		dgram, err := packet.MarshalUDP(sc.Source, d, &packet.UDP{
			SrcPort: uint16(10000 + i), DstPort: 33435,
		}, make([]byte, 12))
		if err != nil {
			b.Fatal(err)
		}
		pkt, err := (&packet.IPv4{
			TTL: 6, Protocol: packet.ProtoUDP, Src: sc.Source, Dst: d,
		}).Marshal(dgram)
		if err != nil {
			b.Fatal(err)
		}
		probes[i] = pkt
	}
	return sc.Net, probes
}

// BenchmarkExchange is the serial baseline for BenchmarkExchangeParallel.
func BenchmarkExchange(b *testing.B) {
	net, probes := benchProbes(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Exchange(probes[i%len(probes)])
	}
}

// BenchmarkExchangeParallel drives Exchange from GOMAXPROCS goroutines over
// one shared Network, the access pattern of the paper's 32 parallel
// measurement processes.
func BenchmarkExchangeParallel(b *testing.B) {
	net, probes := benchProbes(b)
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			net.Exchange(probes[int(i)%len(probes)])
		}
	})
}
