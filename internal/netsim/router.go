// Package netsim is a deterministic packet-level IPv4 network simulator.
//
// It substitutes for the live Internet in the paper's measurement study
// (see DESIGN.md, Substitutions). Probes are real serialized IPv4 packets;
// routers parse them, hash actual header octets for per-flow load balancing,
// decrement real TTLs with incremental checksum updates, and quote the true
// on-the-wire bytes in ICMP errors — so the tracers built on top cannot
// distinguish the simulator from a cooperative real network.
//
// The simulator reproduces every router behaviour the paper's anomaly
// taxonomy depends on:
//
//   - equal-cost multipath with per-flow, per-packet, and per-destination
//     balancing policies (Section 2.1);
//   - ICMP Time Exceeded generation with correct probe-TTL quoting,
//     including the zero-TTL-forwarding misbehaviour (Fig. 4);
//   - Destination Unreachable generation when a route is withdrawn
//     (the "unreachability message" loop cause, Section 4.1.1);
//   - NAT boxes that rewrite the Source Address of ICMP messages
//     originating inside their subnetwork (Fig. 5);
//   - per-router IP ID counters and configurable initial response TTLs,
//     the two observables Paris traceroute adds (Section 2.2);
//   - transient forwarding loops and mid-trace routing changes
//     (cycle causes, Section 4.2.1).
//
// # Concurrency model
//
// Network.Exchange is safe for concurrent use, and concurrent exchanges
// forward in parallel — the engine that lets the measurement campaign's 32
// workers (Section 3) actually run side by side. The design is read-mostly:
//
//   - The Network's topology registry (interface -> router, host
//     attachments, the source) is guarded by an RWMutex. Registration
//     (AddRouter, AddIface, AttachHost, SetSource, OnSend) takes the write
//     lock; every Exchange holds only the read lock, so packets in flight
//     exclude topology registration but not each other.
//   - Per-router behavioural configuration (faults, NAT, initial ICMP TTL,
//     IP ID stride) lives in an immutable snapshot behind an atomic
//     pointer. The forwarding loop loads it once per router visit;
//     SetFaults and friends publish a fresh snapshot, so routing dynamics
//     (flaps, transient loops, mid-trace flips) can be injected while
//     probes are in flight without a lock.
//   - Forwarding tables publish an immutable lookup snapshot (entry list
//     plus /32 and prefix indexes) behind an atomic pointer, exactly like
//     the config snapshot: the per-visit lookup is lock-free. Route
//     mutation (AddRoute, SetRoutes, RewriteRoutes) serializes on a
//     per-router mutex, invalidates the snapshot, and the next lookup
//     rebuilds it once. Entries are never mutated in place, so pointers
//     into a published snapshot stay valid indefinitely.
//   - Counters (the network probe counter, per-router IP ID and
//     round-robin counters, per-host IP ID) are atomics.
//
// # Batch exchange contract
//
// ExchangeBatch(probes, out) is deterministically equivalent to calling
// Exchange once per probe in slice order:
//
//   - The batch reserves one contiguous block of the network probe counter
//     up front, so probe i derives exactly the (seed, counter) SplitMix64
//     stream — and OnSend hooks observe exactly the count — it would have
//     as the corresponding sequential Exchange. Interleaving with other
//     goroutines' exchanges permutes counter assignment across call sites
//     but never within a batch.
//   - OnSend hooks run between probes, before probe i forwards, exactly as
//     in the sequential path — but under the topology read lock, which the
//     batch holds across the whole call. Hooks may mutate router config and
//     forwarding tables (the routing-dynamics gadgets do); they must not
//     register topology (AddRouter, AddIface, AttachHost, OnSend would
//     self-deadlock).
//   - When the network has no OnSend hooks, per-router config snapshots
//     and forwarding-table lookups are memoized for the duration of the
//     batch (hooks are the one sanctioned mid-batch mutator, so without
//     them the memo is exact). Config or route changes made concurrently
//     by other goroutines then become visible at batch rather than visit
//     granularity — the same class of schedule sensitivity concurrent
//     exchanges already have.
//   - Arena ownership: the probe copy and every originated response are
//     carved from a pooled per-batch arena that is recycled probe to probe
//     and batch to batch; no arena memory ever escapes ExchangeBatch. The
//     final response is copied out with append-truncate into the caller's
//     out[i].Resp, so the caller owns (and should reuse) the result
//     buffers, and a result is valid until the caller passes the same slot
//     to another batch. Probes are read-only to the batch and may be
//     recycled by the caller once the call returns.
//
// # Shard ownership
//
// Beyond one concurrent Network, campaigns scale out horizontally by
// partitioning a topology across several fully independent Networks
// (topo.GenConfig.Shards, dispatched by ShardedTransport). The shard rule:
// a router or host belongs to exactly one shard's Network, and cross-shard
// addresses are unroutable by construction — no shard's forwarding tables
// name an interface registered in another shard, so no lock, counter, or
// cache line is ever shared between shards. Only the spine (gateway, core,
// transit routers) is replicated per shard, with identical interface
// addresses, which keeps measured routes independent of the shard count;
// the replicas are distinct Router objects with their own IP ID counters,
// so spine IP IDs advance per shard rather than globally (schedule-free
// statistics are unaffected; see the determinism contract below).
//
// # Determinism contract
//
// All randomized behaviour (random per-packet spreading, probabilistic
// drops) derives from a per-exchange SplitMix64 stream seeded with
// (network seed, probe counter); there is no shared random generator.
// Consequences:
//
//   - A fully deterministic topology (per-flow and per-destination
//     balancing only, no drop faults, no per-probe hooks) yields
//     bit-identical traces for a given probe, regardless of how many
//     exchanges run concurrently: the forwarding decision is a pure
//     function of the probe bytes. Campaign statistics are then identical
//     for 1 and for 32 workers (asserted by TestCampaignWorkerInvariance).
//   - Deterministic round-robin (RandomPerPacket = false) and every other
//     counter-driven observable (IP IDs) depend on the arrival order of
//     probes at each router, exactly as on a real router shared by
//     concurrent measurement processes.
//   - With randomness in play, a sequential run is reproducible seed-for-
//     seed: probe counter values — and hence per-exchange random streams —
//     are assigned in submission order. Concurrent runs draw the same
//     per-probe streams but interleave counter assignment by schedule,
//     which is the regime the paper's own parallel campaign operates in;
//     figure-level statistics are schedule-free in expectation.
//
// # Virtual-clock dynamics
//
// SetDynamics installs an optional virtual-clock layer (vclock.go): seeded
// per-link propagation/bandwidth/queueing delays, background cross-traffic
// load, and scheduled dynamics — route flaps, balancer weight churn, link
// brownouts — that evolve on a virtual timeline advanced only by the event
// loop, never by the wall clock. Exchanges then report virtual RTTs
// (ExchangeV, ExchangeResult.RTT). The layer extends, rather than weakens,
// the determinism contract: every dynamics draw is a pure function of
// (dynamics seed, arrival-interface address, virtual time), and a probe's
// virtual start time hashes the probe's own bytes off the current round
// base — never the probe counter — so with dynamics enabled, same-seed
// campaign statistics remain byte-identical at any shard, worker, or batch
// setting. With dynamics disabled (the default), the instant-and-static
// forwarding path is untouched byte for byte.
package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/packet"
)

// Policy selects how a router spreads traffic over equal-cost next hops.
type Policy int

const (
	// PerFlow forwards all packets of one flow to the same next hop.
	PerFlow Policy = iota
	// PerPacket spreads packets over next hops regardless of flow,
	// focusing purely on maintaining an even load.
	PerPacket
	// PerDestination selects the next hop from the destination address
	// only; from the measurement point of view this is equivalent to
	// classic single-path routing.
	PerDestination
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PerFlow:
		return "per-flow"
	case PerPacket:
		return "per-packet"
	case PerDestination:
		return "per-destination"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// NextHop names an adjacency: the remote interface address the packet is
// handed to. The remote address must belong to a Router or Host registered
// in the same Network.
type NextHop struct {
	Via netip.Addr
}

// Route is a forwarding-table entry. When several next hops are present the
// router balances across them according to Balance.
type Route struct {
	Prefix  netip.Prefix
	Hops    []NextHop
	Balance Policy
	// FlowOpts configures flow-key extraction for PerFlow balancing.
	// The zero value is the paper's observed router behaviour: hash the
	// addresses, protocol, and first four transport octets.
	FlowOpts flow.Options
}

// Faults configures deliberate misbehaviours of a router, each mapping to a
// cause in the paper's anomaly taxonomy.
type Faults struct {
	// Silent suppresses all ICMP generation: probes expiring here appear
	// as stars ('*') in traceroute output.
	Silent bool
	// ZeroTTLForward makes the router forward packets whose TTL it has
	// just decremented to zero instead of discarding them — the
	// misconfiguration behind Fig. 4's loops. The downstream router then
	// answers with a quoted probe TTL of zero.
	ZeroTTLForward bool
	// Unreachable makes the router refuse to forward any transit packet:
	// it answers probes with TTL 1 normally (Time Exceeded) but returns
	// Destination Unreachable for anything it would have to forward,
	// reproducing the "unreachability message" loop cause.
	Unreachable bool
	// UnreachableCode selects the Destination Unreachable code used when
	// Unreachable is set (CodeHostUnreachable => "!H", CodeNetUnreachable
	// => "!N"). Defaults to host-unreachable.
	UnreachableCode uint8
	// DropProbability drops forwarded packets at random with the given
	// probability, producing mid-route stars.
	DropProbability float64
	// ForwardOverride, when valid, makes the router hand every transit
	// packet to this adjacency regardless of its forwarding table. It is
	// the transient forwarding-loop gadget: pointing it back at the
	// upstream router makes packets ping-pong until their TTL expires,
	// producing the paper's "truly cyclic routes" (Section 4.2.1).
	ForwardOverride netip.Addr
}

// NAT configures source-address rewriting. A router with a valid NAT acts
// as the gateway of Fig. 5: any packet leaving Inside (source address within
// Inside, next hop outside it) has its Source Address replaced with Public.
type NAT struct {
	Public netip.Addr
	Inside netip.Prefix
}

// Enabled reports whether the NAT configuration is active.
func (n NAT) Enabled() bool { return n.Public.IsValid() }

// routerConfig is the immutable behavioural snapshot of a router: the
// read-mostly configuration the forwarding hot path consults on every
// visit. Mutators build a fresh copy and publish it atomically, so readers
// never lock and never observe a torn update.
type routerConfig struct {
	faults Faults
	nat    NAT

	// icmpTTL is the initial TTL of ICMP messages this router originates.
	// Most routers use 255 (Section 4.1.1); some stacks use 64 or 128.
	icmpTTL uint8

	// ipIDStride is the counter increment per originated packet; real
	// routers also emit non-measurement traffic, so strides >1 model a
	// busy box.
	ipIDStride uint16
}

// Router is a simulated network-layer device.
type Router struct {
	Name string

	// ifaces lists the router's interface addresses; index = interface
	// number as drawn in the paper's figures (A0, A1, ...). Grown only
	// during topology building (Network.AddIface holds the network write
	// lock, excluding packets in flight).
	ifaces []netip.Addr

	// config is the atomically-published behavioural snapshot; see
	// routerConfig.
	config atomic.Pointer[routerConfig]

	// tableMu serializes route mutators and snapshot rebuilds; the lookup
	// hot path never takes it (it loads the snapshot pointer instead).
	tableMu sync.Mutex
	// table is the mutable route list, guarded by tableMu. Entries are
	// never mutated in place — mutators append or install a fresh slice —
	// so pointers into a published snapshot stay valid forever.
	table []Route
	// snap is the atomically-published lookup snapshot, rebuilt on demand
	// after a mutation (mutators clear it; the next lookup pays the one
	// O(table) rebuild). nil means stale. Like the config snapshot, this
	// keeps the per-visit hot path free of locks and shared counters.
	snap atomic.Pointer[routerTable]

	// ipID is the router's internal counter stamped (mod 2^16) into the
	// IP ID of every packet it originates, "usually incremented for each
	// packet sent" (Section 2.2).
	ipID atomic.Uint32

	// perPacketCounter drives round-robin PerPacket balancing when the
	// network is configured for deterministic (non-random) spreading.
	perPacketCounter atomic.Uint64

	// mu serializes config writers (read-modify-write of the snapshot).
	mu sync.Mutex
}

// NewRouter creates a router with the given name and interface addresses.
// Interface 0 is conventionally the upstream (source-facing) interface.
func NewRouter(name string, ifaces ...netip.Addr) *Router {
	r := &Router{
		Name:   name,
		ifaces: append([]netip.Addr(nil), ifaces...),
	}
	r.config.Store(&routerConfig{icmpTTL: 255, ipIDStride: 1})
	return r
}

// Iface returns the address of interface i.
func (r *Router) Iface(i int) netip.Addr {
	if i < 0 || i >= len(r.ifaces) {
		panic(fmt.Sprintf("netsim: router %s has no interface %d", r.Name, i))
	}
	return r.ifaces[i]
}

// NumIfaces returns the number of interfaces.
func (r *Router) NumIfaces() int { return len(r.ifaces) }

// updateConfig publishes a new behavioural snapshot produced by applying f
// to a copy of the current one.
func (r *Router) updateConfig(f func(*routerConfig)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cfg := *r.config.Load()
	f(&cfg)
	r.config.Store(&cfg)
}

// routerTable is the immutable lookup snapshot: the route entries it was
// built from plus the two indexes the hot path consults. entries shares the
// mutable table's backing array at build time; that is safe because entries
// are never overwritten in place and the snapshot's length bounds every
// access.
type routerTable struct {
	entries []Route
	// host32 indexes /32 entries for O(1) lookup, keyed by the 4-byte
	// address (cheap to hash — probed once per router visit); campaign
	// topologies install one host route per destination along each path,
	// so core routers carry thousands of them.
	host32 map[uint32]int
	// prefixIdx lists the indices of non-/32 entries, so the LPM
	// fallback scans only real prefixes (a handful: pod subnets and the
	// default route) instead of the thousands of indexed host routes.
	prefixIdx []int
}

// AddRoute appends a forwarding-table entry. Entries are matched by longest
// prefix; ties go to the earliest entry.
func (r *Router) AddRoute(rt Route) *Router {
	r.tableMu.Lock()
	defer r.tableMu.Unlock()
	r.table = append(r.table, rt)
	r.snap.Store(nil)
	return r
}

// RewriteRoutes applies f to every forwarding-table entry, replacing each
// with its return value. Routing-change injection (mid-trace flips,
// transient forwarding loops) uses this to mutate tables atomically.
func (r *Router) RewriteRoutes(f func(Route) Route) {
	r.tableMu.Lock()
	defer r.tableMu.Unlock()
	fresh := make([]Route, 0, len(r.table))
	for _, rt := range r.table {
		fresh = append(fresh, f(rt))
	}
	r.table = fresh
	r.snap.Store(nil)
}

// SetRoutes replaces the entire forwarding table (used by routing-change
// injection between or during traces).
func (r *Router) SetRoutes(rts []Route) {
	r.tableMu.Lock()
	defer r.tableMu.Unlock()
	r.table = append([]Route(nil), rts...)
	r.snap.Store(nil)
}

// Routes returns a copy of the forwarding table.
func (r *Router) Routes() []Route {
	r.tableMu.Lock()
	defer r.tableMu.Unlock()
	return append([]Route(nil), r.table...)
}

// snapshot returns the current lookup snapshot, rebuilding it (once, under
// tableMu, with double-checked publication) when a mutation invalidated it.
func (r *Router) snapshot() *routerTable {
	if t := r.snap.Load(); t != nil {
		return t
	}
	r.tableMu.Lock()
	defer r.tableMu.Unlock()
	if t := r.snap.Load(); t != nil {
		return t
	}
	t := &routerTable{entries: r.table}
	for i := range t.entries {
		if t.entries[i].Prefix.Bits() == 32 {
			if t.host32 == nil {
				t.host32 = make(map[uint32]int, len(t.entries))
			}
			t.host32[mustA4(t.entries[i].Prefix.Addr())] = i
		} else {
			t.prefixIdx = append(t.prefixIdx, i)
		}
	}
	r.snap.Store(t)
	return t
}

// SetFaults replaces the router's fault configuration.
func (r *Router) SetFaults(f Faults) *Router {
	r.updateConfig(func(cfg *routerConfig) { cfg.faults = f })
	return r
}

// SetNAT configures source rewriting for packets leaving the inside prefix.
func (r *Router) SetNAT(n NAT) *Router {
	r.updateConfig(func(cfg *routerConfig) { cfg.nat = n })
	return r
}

// SetICMPTTL sets the initial TTL for ICMP messages this router originates.
func (r *Router) SetICMPTTL(ttl uint8) *Router {
	r.updateConfig(func(cfg *routerConfig) { cfg.icmpTTL = ttl })
	return r
}

// SetIPIDStride sets the per-packet increment of the router's IP ID counter.
func (r *Router) SetIPIDStride(stride uint16) *Router {
	if stride == 0 {
		stride = 1
	}
	r.updateConfig(func(cfg *routerConfig) { cfg.ipIDStride = stride })
	return r
}

// nextIPID advances and returns the router's IP ID counter. The counter
// accumulates in 32 bits and is truncated, which equals 16-bit modular
// addition per originated packet.
func (r *Router) nextIPID(cfg *routerConfig) uint16 {
	return uint16(r.ipID.Add(uint32(cfg.ipIDStride)))
}

// lookup performs longest-prefix-match on the forwarding table, consulting
// the /32 index first. The hot path is lock-free: one atomic snapshot load,
// one cheap-keyed map probe. It returns a pointer into the snapshot rather
// than a copy — lookup runs once per router visit, and the Route struct is
// large enough that copying it dominated profiles; the pointer stays valid
// because snapshot entries are never mutated in place.
func (r *Router) lookup(dst netip.Addr) (*Route, bool) {
	t := r.snapshot()
	if k, ok := a4(dst); ok {
		if i, hit := t.host32[k]; hit {
			return &t.entries[i], true
		}
	}
	best := -1
	bestLen := -1
	for _, i := range t.prefixIdx {
		rt := &t.entries[i]
		if rt.Prefix.Contains(dst) && rt.Prefix.Bits() > bestLen {
			best, bestLen = i, rt.Prefix.Bits()
		}
	}
	if best < 0 {
		return nil, false
	}
	return &t.entries[best], true
}

// selectHop chooses one of the route's equal-cost next hops for the packet
// with the given parsed header and transport payload. rng is nil for
// deterministic round-robin PerPacket spreading. rot is the virtual-clock
// weight-churn rotation (0 outside churn windows): it offsets the hashed
// bucket of the flow-keyed policies, remapping flows to different next
// hops without perturbing the hash itself — weight churn in real routers
// likewise remaps buckets while the flow key stays stable.
func (r *Router) selectHop(rt *Route, hdr *packet.IPv4, payload []byte, rng *prng, rot int) (NextHop, error) {
	n := len(rt.Hops)
	if n == 0 {
		return NextHop{}, fmt.Errorf("netsim: route %v on %s has no next hops", rt.Prefix, r.Name)
	}
	if n == 1 {
		return rt.Hops[0], nil
	}
	switch rt.Balance {
	case PerFlow:
		k, err := flow.FromParsed(hdr, payload, rt.FlowOpts)
		if err != nil {
			return NextHop{}, err
		}
		return rt.Hops[(k.Bucket(n)+rot)%n], nil
	case PerPacket:
		if rng != nil {
			return rt.Hops[rng.Intn(n)], nil
		}
		i := int((r.perPacketCounter.Add(1) - 1) % uint64(n))
		return rt.Hops[i], nil
	case PerDestination:
		k, err := flow.FromParsed(hdr, payload, flow.Options{Kind: flow.KeyDestination})
		if err != nil {
			return NextHop{}, err
		}
		return rt.Hops[(k.Bucket(n)+rot)%n], nil
	default:
		return NextHop{}, fmt.Errorf("netsim: unknown balance policy %v", rt.Balance)
	}
}
