package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/tracer"
)

// ShardedTransport fans probes out over several fully independent Network
// shards, implementing the tracer Transport contract over all of them at
// once. Each probe is dispatched to the shard owning its destination by one
// read of an immutable map — no lock, no atomic, no shared counter sits on
// the dispatch path, so shards never contend with each other and the only
// synchronization a probe ever sees is its own shard's read lock.
//
// The shard map and the shard slice are frozen at construction; a router or
// host belongs to exactly one shard, and addresses outside the probe's own
// shard are unroutable by construction (the probe is dispatched to its
// destination's shard and can only traverse routers registered there).
// Destinations missing from the map dispatch to shard 0, where — unless
// shard 0 happens to route them — they fail exactly like any unroutable
// address.
type ShardedTransport struct {
	shards  []*Transport
	shardOf map[netip.Addr]int
	source  netip.Addr
}

// NewShardedTransport wraps one Transport per shard network. shardOf maps
// each destination address to the index of the shard that routes it; it
// must not be mutated after the call. All shards must share the same
// measurement source address — the tracers see one source, many networks.
func NewShardedTransport(nets []*Network, shardOf map[netip.Addr]int) *ShardedTransport {
	if len(nets) == 0 {
		panic("netsim: NewShardedTransport needs at least one shard")
	}
	t := &ShardedTransport{
		shards:  make([]*Transport, len(nets)),
		shardOf: shardOf,
		source:  nets[0].Source(),
	}
	for i, n := range nets {
		if src := n.Source(); src != t.source {
			panic(fmt.Sprintf("netsim: shard %d source %v differs from shard 0 source %v", i, src, t.source))
		}
		t.shards[i] = NewTransport(n)
	}
	for a, s := range shardOf {
		if s < 0 || s >= len(nets) {
			panic(fmt.Sprintf("netsim: destination %v mapped to shard %d of %d", a, s, len(nets)))
		}
	}
	return t
}

// Exchange implements the tracer Transport contract: it reads the probe's
// destination address straight from the serialized IPv4 header and hands
// the probe to that destination's shard.
func (t *ShardedTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	return t.shards[t.shardIdx(probe)].Exchange(probe)
}

// shardIdx maps a serialized probe to the shard owning its destination.
func (t *ShardedTransport) shardIdx(probe []byte) int {
	if len(probe) >= 20 {
		if s, ok := t.shardOf[netip.AddrFrom4([4]byte(probe[16:20]))]; ok {
			return s
		}
	}
	return 0
}

// shardScratch is the pooled grouping state of a mixed-shard batch: the
// per-shard position lists and the sub-batch probe/result slices.
type shardScratch struct {
	idxs   [][]int
	probes [][]byte
	res    []tracer.ProbeResult
}

var shardScratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// ExchangeBatch implements the tracer BatchTransport contract over the
// shards: the batch is grouped by destination shard and fanned out as one
// sub-batch per shard, preserving submission order within each shard (the
// order that fixes each shard's probe-counter block). The common case — a
// TTL ladder toward a single destination, hence a single shard — dispatches
// directly with no grouping at all.
func (t *ShardedTransport) ExchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	if len(out) < len(probes) {
		panic("netsim: ExchangeBatch result slice shorter than probe slice")
	}
	if len(probes) == 0 {
		return
	}
	first := t.shardIdx(probes[0])
	single := true
	for _, p := range probes[1:] {
		if t.shardIdx(p) != first {
			single = false
			break
		}
	}
	if single {
		t.shards[first].ExchangeBatch(probes, out[:len(probes)])
		return
	}

	sc := shardScratchPool.Get().(*shardScratch)
	for len(sc.idxs) < len(t.shards) {
		sc.idxs = append(sc.idxs, nil)
	}
	idxs := sc.idxs[:len(t.shards)]
	for s := range idxs {
		idxs[s] = idxs[s][:0]
	}
	for i, p := range probes {
		s := t.shardIdx(p)
		idxs[s] = append(idxs[s], i)
	}
	for s, list := range idxs {
		if len(list) == 0 {
			continue
		}
		sc.probes = sc.probes[:0]
		for len(sc.res) < len(list) {
			sc.res = append(sc.res, tracer.ProbeResult{})
		}
		res := sc.res[:len(list)]
		for j, i := range list {
			sc.probes = append(sc.probes, probes[i])
			// Move the caller's buffer into the sub-batch slot so it
			// is recycled rather than reallocated.
			res[j] = tracer.ProbeResult{Resp: out[i].Resp[:0:cap(out[i].Resp)]}
		}
		t.shards[s].ExchangeBatch(sc.probes, res)
		for j, i := range list {
			out[i] = res[j]
			res[j] = tracer.ProbeResult{}
		}
	}
	// Drop probe references so the pool does not pin caller buffers —
	// over the full capacity, since earlier (larger) shard groups may
	// have left pointers beyond the last group's truncated length.
	clear(sc.probes[:cap(sc.probes)])
	sc.probes = sc.probes[:0]
	shardScratchPool.Put(sc)
}

// Source implements the tracer Transport contract. The source address is
// cached at construction, keeping the dispatch path free of the per-shard
// topology locks.
func (t *ShardedTransport) Source() netip.Addr { return t.source }
