package netsim

import (
	"fmt"
	"net/netip"
	"time"
)

// ShardedTransport fans probes out over several fully independent Network
// shards, implementing the tracer Transport contract over all of them at
// once. Each probe is dispatched to the shard owning its destination by one
// read of an immutable map — no lock, no atomic, no shared counter sits on
// the dispatch path, so shards never contend with each other and the only
// synchronization a probe ever sees is its own shard's read lock.
//
// The shard map and the shard slice are frozen at construction; a router or
// host belongs to exactly one shard, and addresses outside the probe's own
// shard are unroutable by construction (the probe is dispatched to its
// destination's shard and can only traverse routers registered there).
// Destinations missing from the map dispatch to shard 0, where — unless
// shard 0 happens to route them — they fail exactly like any unroutable
// address.
type ShardedTransport struct {
	shards  []*Transport
	shardOf map[netip.Addr]int
	source  netip.Addr
}

// NewShardedTransport wraps one Transport per shard network. shardOf maps
// each destination address to the index of the shard that routes it; it
// must not be mutated after the call. All shards must share the same
// measurement source address — the tracers see one source, many networks.
func NewShardedTransport(nets []*Network, shardOf map[netip.Addr]int) *ShardedTransport {
	if len(nets) == 0 {
		panic("netsim: NewShardedTransport needs at least one shard")
	}
	t := &ShardedTransport{
		shards:  make([]*Transport, len(nets)),
		shardOf: shardOf,
		source:  nets[0].Source(),
	}
	for i, n := range nets {
		if src := n.Source(); src != t.source {
			panic(fmt.Sprintf("netsim: shard %d source %v differs from shard 0 source %v", i, src, t.source))
		}
		t.shards[i] = NewTransport(n)
	}
	for a, s := range shardOf {
		if s < 0 || s >= len(nets) {
			panic(fmt.Sprintf("netsim: destination %v mapped to shard %d of %d", a, s, len(nets)))
		}
	}
	return t
}

// Exchange implements the tracer Transport contract: it reads the probe's
// destination address straight from the serialized IPv4 header and hands
// the probe to that destination's shard.
func (t *ShardedTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	idx := 0
	if len(probe) >= 20 {
		if s, ok := t.shardOf[netip.AddrFrom4([4]byte(probe[16:20]))]; ok {
			idx = s
		}
	}
	return t.shards[idx].Exchange(probe)
}

// Source implements the tracer Transport contract. The source address is
// cached at construction, keeping the dispatch path free of the per-shard
// topology locks.
func (t *ShardedTransport) Source() netip.Addr { return t.source }
