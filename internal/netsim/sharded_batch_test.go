package netsim_test

// Mixed-shard batch tests for ShardedTransport.ExchangeBatch (external test
// package: the sharded scenarios come from topo, which imports netsim).

import (
	"bytes"
	"net/netip"
	"testing"

	"repro/internal/packet"
	"repro/internal/topo"
	"repro/internal/tracer"
)

// shardedScenario generates a deterministic 2-shard topology and returns
// its transport plus one destination per shard.
func shardedScenario(t *testing.T) (tracer.BatchTransport, []netip.Addr) {
	t.Helper()
	cfg := deterministicConfig(24)
	cfg.Shards = 2
	sc := topo.Generate(cfg)
	bt, ok := sc.Transport().(tracer.BatchTransport)
	if !ok {
		t.Fatal("sharded scenario transport does not implement BatchTransport")
	}
	var d0, d1 netip.Addr
	for _, d := range sc.Dests {
		if sc.ShardOf[d] == 0 && !d0.IsValid() {
			d0 = d
		}
		if sc.ShardOf[d] == 1 && !d1.IsValid() {
			d1 = d
		}
	}
	if !d0.IsValid() || !d1.IsValid() {
		t.Fatal("generated scenario has no destination on one of the shards")
	}
	return bt, []netip.Addr{d0, d1}
}

func shardProbe(t *testing.T, src, dst netip.Addr, ttl uint8) []byte {
	t.Helper()
	dgram, err := packet.MarshalUDP(src, dst, &packet.UDP{SrcPort: 10007, DstPort: 20011}, make([]byte, 12))
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := (&packet.IPv4{TTL: ttl, Protocol: packet.ProtoUDP, Src: src, Dst: dst}).Marshal(dgram)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestShardedExchangeBatchMixedShards submits one batch interleaving probes
// toward destinations on two different shards — forcing the grouping slow
// path, which no in-repo caller exercises (a tracer ladder targets one
// destination, hence one shard) — and requires each probe's result to be
// byte-identical to a sequential Exchange on a fresh identical scenario.
func TestShardedExchangeBatchMixedShards(t *testing.T) {
	bt, dests := shardedScenario(t)
	seqTP, _ := shardedScenario(t) // fresh identical state for the baseline

	src := bt.Source()
	var probes [][]byte
	for ttl := uint8(2); ttl <= 9; ttl++ {
		// Interleave shards probe by probe.
		probes = append(probes, shardProbe(t, src, dests[ttl%2], ttl))
	}
	out := make([]tracer.ProbeResult, len(probes))
	bt.ExchangeBatch(probes, out)

	for i, p := range probes {
		resp, rtt, ok := seqTP.Exchange(p)
		if ok != out[i].OK || rtt != out[i].RTT {
			t.Errorf("probe %d (dest %v): batch (ok=%v rtt=%v) vs sequential (ok=%v rtt=%v)",
				i, dests[i%2], out[i].OK, out[i].RTT, ok, rtt)
			continue
		}
		if ok && !bytes.Equal(resp, out[i].Resp) {
			t.Errorf("probe %d (dest %v): mixed-shard batch response differs from sequential\nbatch: %x\nseq:   %x",
				i, dests[i%2], out[i].Resp, resp)
		}
	}

	// Second mixed batch through the same transport: the pooled grouping
	// scratch is recycled; results must still line up per probe.
	out2 := make([]tracer.ProbeResult, len(probes))
	bt.ExchangeBatch(probes, out2)
	for i := range out2 {
		if out2[i].OK != out[i].OK {
			t.Errorf("probe %d: second mixed batch ok=%v, first %v", i, out2[i].OK, out[i].OK)
		}
	}
}
