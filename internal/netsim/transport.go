package netsim

import (
	"net/netip"
	"sync"
	"time"

	"repro/internal/tracer"
)

// Transport adapts a Network to the tracer.Transport and
// tracer.BatchTransport interfaces: synchronous probe/response exchanges
// with a synthetic RTT proportional to the number of node traversals — or,
// when the network has a virtual-clock dynamics layer installed
// (Network.SetDynamics), the probe's virtual round-trip time.
//
// Transport is safe for concurrent use: exchanges forward in parallel
// (see the package comment's concurrency model), so one Transport can be
// shared by all of a campaign's workers. Set PerHop before handing the
// transport to concurrent tracers.
type Transport struct {
	net *Network
	// PerHop is the synthetic one-way per-node latency used to derive
	// RTTs. Zero selects a 500µs default.
	PerHop time.Duration
}

// NewTransport wraps the network for use by tracers.
func NewTransport(n *Network) *Transport {
	return &Transport{net: n, PerHop: 500 * time.Microsecond}
}

// Exchange implements the tracer Transport contract.
func (t *Transport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	resp, steps, rtt, ok := t.net.ExchangeV(probe)
	if !ok {
		return nil, 0, false
	}
	if rtt > 0 {
		return resp, rtt, true
	}
	return resp, time.Duration(steps) * t.PerHop, true
}

// exchPool recycles the []ExchangeResult bridges between the tracer-facing
// and the network-facing batch result types. Response buffers do not live
// here: they are moved into the caller's ProbeResult slots before the
// scratch is pooled, so pooled entries never alias caller memory.
var exchPool = sync.Pool{New: func() any { return new([]ExchangeResult) }}

// ExchangeBatch implements the tracer BatchTransport contract. Each
// out[i].Resp buffer is seeded into the network batch call (which refills it
// with append-truncate) and handed back, so the caller's buffers recycle
// across batches with no copying layer in between.
func (t *Transport) ExchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	if len(out) < len(probes) {
		panic("netsim: ExchangeBatch result slice shorter than probe slice")
	}
	sp := exchPool.Get().(*[]ExchangeResult)
	res := *sp
	if cap(res) < len(probes) {
		res = make([]ExchangeResult, len(probes))
	}
	res = res[:len(probes)]
	for i := range probes {
		res[i] = ExchangeResult{Resp: out[i].Resp[:0:cap(out[i].Resp)]}
	}
	t.net.ExchangeBatch(probes, res)
	for i := range probes {
		out[i].Resp = res[i].Resp
		out[i].OK = res[i].OK
		out[i].Err = nil // result slots recycle across batches (Scratch)
		switch {
		case res[i].OK && res[i].RTT > 0:
			out[i].RTT = res[i].RTT
		case res[i].OK:
			out[i].RTT = time.Duration(res[i].Steps) * t.PerHop
		default:
			out[i].RTT = 0
		}
		res[i] = ExchangeResult{}
	}
	*sp = res
	exchPool.Put(sp)
}

// Source implements the tracer Transport contract.
func (t *Transport) Source() netip.Addr { return t.net.Source() }
