package netsim

import (
	"net/netip"
	"time"
)

// Transport adapts a Network to the tracer.Transport interface: one
// synchronous probe/response exchange per call, with a synthetic RTT
// proportional to the number of node traversals.
//
// Transport is safe for concurrent use: exchanges forward in parallel
// (see the package comment's concurrency model), so one Transport can be
// shared by all of a campaign's workers. Set PerHop before handing the
// transport to concurrent tracers.
type Transport struct {
	net *Network
	// PerHop is the synthetic one-way per-node latency used to derive
	// RTTs. Zero selects a 500µs default.
	PerHop time.Duration
}

// NewTransport wraps the network for use by tracers.
func NewTransport(n *Network) *Transport {
	return &Transport{net: n, PerHop: 500 * time.Microsecond}
}

// Exchange implements the tracer Transport contract.
func (t *Transport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	resp, steps, ok := t.net.Exchange(probe)
	if !ok {
		return nil, 0, false
	}
	return resp, time.Duration(steps) * t.PerHop, true
}

// Source implements the tracer Transport contract.
func (t *Transport) Source() netip.Addr { return t.net.Source() }
