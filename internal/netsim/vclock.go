package netsim

import (
	"math"
	"net/netip"
	"time"
)

// This file is the virtual-clock dynamics layer: seeded per-link latency,
// load-dependent queueing, and scheduled dynamics (route flaps, balancer
// weight churn, link brownouts) evolving on a virtual timeline that never
// reads the wall clock. Time exists only inside an exchange's event loop
// (vclock below): every link traversal schedules an arrival event and time
// advances exclusively by popping the earliest scheduled event.
//
// # Determinism contract
//
// Everything here is a pure function of (dynamics seed, link key, virtual
// time). Link keys are the receiving interface's 4-byte address — the same
// key the topology registry uses — so link parameters are identical across
// shard replicas by construction (topo replicates the spine with identical
// interface addresses). A probe's virtual start time is derived from the
// current round base plus a hash of the probe's own bytes, never from the
// network probe counter or the per-exchange RNG: counter and RNG values are
// schedule-dependent under concurrency, and consulting either would break
// the house invariant that campaign statistics are byte-identical at any
// shard/worker/batch setting. For the same reason the dynamics never mutate
// router state — a flapped router is not reconfigured, its flap is
// re-evaluated functionally at each arrival — so concurrent probes at
// different virtual times can never race on dynamics state.
//
// Each exchange runs its own event loop rather than sharing one per batch:
// probes are independent by design (required for the schedule invariance
// above), and interleaving exchanges by virtual arrival time would reorder
// the routers' IP ID counters between the batched and sequential paths,
// breaking ExchangeBatch's byte-identity contract. The queue is still a
// real min-heap so future in-flight multiplicity (cross-traffic packets,
// duplicated probes) slots in without restructuring.

// Dynamics configures the virtual-clock layer of a Network. The zero value
// (and any value with all three intensities zero) disables it entirely:
// forwarding then takes the historical instant-and-static path, byte for
// byte. Set it before probing begins (SetDynamics), like RandomPerPacket.
type Dynamics struct {
	// Seed fixes every per-link draw and every dynamics schedule. Two
	// networks configured with the same seed replay identical delays,
	// flaps, churn, and brownouts at identical virtual times.
	Seed uint64
	// Delay scales the per-link propagation and serialization delays,
	// which are drawn once per link from seeded lognormal distributions
	// (median 500µs propagation, median 100 Mbit/s bandwidth). 1 is the
	// calibrated scale; 0 disables the delay term.
	Delay float64
	// Load is the background cross-traffic intensity in [0, 0.95]: each
	// link carries that utilization of invisible traffic, inflating its
	// queueing delay M/M/1-style (load/(1-load) of the link's mean
	// service time), modulated per 100ms bucket by a seeded lognormal
	// burst factor. 0 disables queueing.
	Load float64
	// Churn is the scheduled-dynamics rate in [0, 1]: it scales the
	// per-window probabilities of route flaps (a router transiently
	// refusing transit traffic with Destination Unreachable), balancer
	// weight churn (equal-cost bucket rotation), and link brownouts
	// (all packets arriving on a link dropped for the window). 0 disables
	// scheduled dynamics.
	Churn float64
	// RoundDuration is the virtual time one campaign round spans; probes
	// of round r start at uniformly hashed offsets within
	// [r*RoundDuration, (r+1)*RoundDuration). 0 selects 30s.
	RoundDuration time.Duration
}

// Enabled reports whether any dynamics term is active.
func (d Dynamics) Enabled() bool { return d.Delay > 0 || d.Load > 0 || d.Churn > 0 }

// Calibration constants of the dynamics models. All times are virtual
// nanoseconds.
const (
	defaultRoundDur = int64(30 * time.Second)

	// Per-link propagation delay: lognormal, median basePropNs, shape
	// sigmaProp — long-tailed like measured one-way link delays.
	basePropNs = 500e3
	sigmaProp  = 0.8

	// Per-link bandwidth: lognormal around 100 Mbit/s (0.1 bits per
	// nanosecond); serialization delay is pktBits/bandwidth.
	baseBWBitsPerNs = 0.1
	sigmaBW         = 1.0

	// Queueing: cross-traffic packets of crossPktBits drive the M/M/1
	// term; the burst factor redraws per burstBucketNs of virtual time.
	crossPktBits  = 8000.0
	burstBucketNs = int64(100 * time.Millisecond)
	sigmaBurst    = 1.0

	// Scheduled dynamics: per-(link, window) activation probabilities,
	// each scaled by Dynamics.Churn.
	flapWindowNs  = int64(10 * time.Second)
	flapProb      = 0.006
	brownWindowNs = int64(2 * time.Second)
	brownProb     = 0.004
	rotWindowNs   = int64(5 * time.Second)
	rotProb       = 0.5
)

// Hash salts decorrelating the per-purpose draw streams.
const (
	saltProp  = 0x70726f70a5a5a5a5
	saltBW    = 0x62616e64d6d6d6d6
	saltBurst = 0x6275727374575757
	saltFlap  = 0x666c6170cbcbcbcb
	saltBrown = 0x62726f776e6f7574
	saltRot   = 0x726f74617465baba
	saltStart = 0x7374617274f0f0f0
)

// dynamics is the compiled, immutable form of a Dynamics configuration,
// published behind Network.dyn exactly like a routerConfig snapshot.
type dynamics struct {
	seed     uint64
	delay    float64
	load     float64
	churn    float64
	roundDur int64
	// qFactor is the precomputed M/M/1 intensity term load/(1-load).
	qFactor float64
}

// compileDynamics clamps and precomputes a Dynamics value; nil when
// disabled.
func compileDynamics(d Dynamics) *dynamics {
	if !d.Enabled() {
		return nil
	}
	if d.Load < 0 {
		d.Load = 0
	}
	if d.Load > 0.95 {
		d.Load = 0.95
	}
	if d.Churn < 0 {
		d.Churn = 0
	}
	if d.Churn > 1 {
		d.Churn = 1
	}
	if d.Delay < 0 {
		d.Delay = 0
	}
	dy := &dynamics{
		seed:     d.Seed,
		delay:    d.Delay,
		load:     d.Load,
		churn:    d.Churn,
		roundDur: int64(d.RoundDuration),
	}
	if dy.roundDur <= 0 {
		dy.roundDur = defaultRoundDur
	}
	if dy.load > 0 {
		dy.qFactor = dy.load / (1 - dy.load)
	}
	return dy
}

// u01 maps a hash to a uniform sample in [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// stdNormal derives an approximately standard-normal sample from a hash by
// summing six chained uniforms (Irwin–Hall, variance 1/2, rescaled). The
// tails are clipped at ±3·sqrt(2), which is fine for delay modelling — the
// lognormal transform below supplies the heavy tail.
func stdNormal(h uint64) float64 {
	s := 0.0
	x := h
	for i := 0; i < 6; i++ {
		x = splitmix64(x)
		s += u01(x)
	}
	return (s - 3) * math.Sqrt2
}

// linkHash derives the per-link draw stream for one purpose (salt).
func (dy *dynamics) linkHash(salt, k uint64) uint64 {
	return splitmix64(splitmix64(dy.seed^salt) ^ k)
}

// windowHash derives the per-(link, time window) draw stream.
func (dy *dynamics) windowHash(salt, k uint64, window int64) uint64 {
	return splitmix64(dy.linkHash(salt, k) ^ uint64(window))
}

// linkParams is the time-invariant part of one link's delay model,
// memoizable per batch because it depends only on (seed, link).
type linkParams struct {
	propNs      float64 // propagation delay, already Delay-scaled
	bwBitsPerNs float64 // serialization bandwidth
}

// paramsOf draws (or recalls) the link's propagation delay and bandwidth.
func (dy *dynamics) paramsOf(k uint32, memo map[uint32]linkParams) linkParams {
	if memo != nil {
		if p, ok := memo[k]; ok {
			return p
		}
	}
	p := linkParams{
		propNs:      dy.delay * basePropNs * math.Exp(sigmaProp*stdNormal(dy.linkHash(saltProp, uint64(k)))),
		bwBitsPerNs: baseBWBitsPerNs * math.Exp(sigmaBW*stdNormal(dy.linkHash(saltBW, uint64(k)))),
	}
	if memo != nil {
		memo[k] = p
	}
	return p
}

// linkDelay is the virtual time a pktLen-byte packet spends crossing the
// link into interface k when it departs at virtual time now: propagation
// plus serialization (both Delay-scaled, time-invariant per link) plus the
// load-driven queueing term (redrawn per burst bucket). Always at least
// 1ns, so the event clock strictly advances.
func (dy *dynamics) linkDelay(k uint32, now int64, pktLen int, memo map[uint32]linkParams) int64 {
	ns := 0.0
	if dy.delay > 0 || dy.load > 0 {
		p := dy.paramsOf(k, memo)
		if dy.delay > 0 {
			ns += p.propNs + float64(pktLen*8)/p.bwBitsPerNs
		}
		if dy.load > 0 {
			burst := math.Exp(sigmaBurst * stdNormal(dy.windowHash(saltBurst, uint64(k), now/burstBucketNs)))
			ns += dy.qFactor * (crossPktBits / p.bwBitsPerNs) * burst
		}
	}
	if ns < 1 {
		ns = 1
	}
	return int64(ns)
}

// flapActive reports whether the router reached through interface k has
// transiently withdrawn its transit routes at virtual time now: it then
// answers transit probes with Destination Unreachable, the paper's
// "unreachability message" dynamic, for the duration of the flap window.
func (dy *dynamics) flapActive(k uint32, now int64) bool {
	if dy.churn <= 0 {
		return false
	}
	return u01(dy.windowHash(saltFlap, uint64(k), now/flapWindowNs)) < flapProb*dy.churn
}

// brownout reports whether the link into interface k is browned out at
// virtual time now: every packet arriving on it during the window is
// dropped, producing mid-route stars (and lost responses).
func (dy *dynamics) brownout(k uint32, now int64) bool {
	if dy.churn <= 0 {
		return false
	}
	return u01(dy.windowHash(saltBrown, uint64(k), now/brownWindowNs)) < brownProb*dy.churn
}

// weightRot is the equal-cost bucket rotation the router reached through
// interface k applies at virtual time now: load-balancer weight churn
// remaps flow buckets to different next hops window over window, without
// touching the forwarding table. 0 means no rotation this window.
func (dy *dynamics) weightRot(k uint32, now int64) int {
	if dy.churn <= 0 {
		return 0
	}
	h := dy.windowHash(saltRot, uint64(k), now/rotWindowNs)
	if u01(h) >= rotProb*dy.churn {
		return 0
	}
	return 1 + int(splitmix64(h)%15)
}

// probeStart places a probe on the virtual timeline: the round base plus a
// seeded hash of the probe's own bytes, uniform within the round duration.
// Hashing the probe bytes (not the probe counter) keeps start times — and
// with them every dynamics draw the probe observes — invariant to worker,
// shard, and batch scheduling.
func (dy *dynamics) probeStart(round int64, probe []byte) int64 {
	const prime = 1099511628211
	h := dy.seed ^ saltStart
	for _, b := range probe {
		h = (h ^ uint64(b)) * prime
	}
	return round*dy.roundDur + int64(splitmix64(h)%uint64(dy.roundDur))
}

// vevent is one scheduled arrival: a packet reaching interface key at
// virtual time at. seq breaks ties deterministically in schedule order.
type vevent struct {
	at  int64
	seq uint64
	key uint32
}

// before is the heap order: earliest virtual time first, schedule order
// breaking ties.
func (e vevent) before(o vevent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// vclock is one exchange's virtual event loop: a min-heap of scheduled
// arrivals plus the current virtual time. Time never reads the wall clock
// and advances only when step pops a scheduled event, so a simulated
// round's 30 virtual seconds cost zero real ones.
type vclock struct {
	start int64
	now   int64
	seq   uint64
	heap  []vevent
}

// reset rewinds the clock to a probe's virtual start time.
func (c *vclock) reset(start int64) {
	c.start, c.now, c.seq = start, start, 0
	c.heap = c.heap[:0]
}

// schedule enqueues an arrival at interface key, delay ns from now.
func (c *vclock) schedule(delay int64, key uint32) {
	c.heap = append(c.heap, vevent{at: c.now + delay, seq: c.seq, key: key})
	c.seq++
	// Sift up.
	for i := len(c.heap) - 1; i > 0; {
		p := (i - 1) / 2
		if !c.heap[i].before(c.heap[p]) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

// step pops the earliest scheduled event and advances the clock to it.
func (c *vclock) step() (vevent, bool) {
	if len(c.heap) == 0 {
		return vevent{}, false
	}
	ev := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	// Sift down.
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(c.heap) && c.heap[l].before(c.heap[small]) {
			small = l
		}
		if r < len(c.heap) && c.heap[r].before(c.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		c.heap[i], c.heap[small] = c.heap[small], c.heap[i]
		i = small
	}
	c.now = ev.at
	return ev, true
}

// elapsed is the virtual time this exchange has consumed so far — the
// probe's RTT once its response is delivered.
func (c *vclock) elapsed() time.Duration { return time.Duration(c.now - c.start) }

// SetDynamics installs (or, with a disabled config, removes) the network's
// virtual-clock dynamics layer. Like RandomPerPacket it is a setup-time
// switch: set it before the first exchange. With dynamics installed,
// exchanges run on the virtual event clock — per-link delays, queueing,
// flaps, churn, and brownouts all replay identically from Dynamics.Seed —
// and report virtual RTTs; without, forwarding takes the historical
// instant path byte for byte.
func (n *Network) SetDynamics(d Dynamics) {
	n.dyn.Store(compileDynamics(d))
}

// DynamicsEnabled reports whether a dynamics layer is installed.
func (n *Network) DynamicsEnabled() bool { return n.dyn.Load() != nil }

// SetVirtualRound advances the virtual clock's round base: probes injected
// afterwards start within round r's virtual time span. Campaign drivers
// call it from their RoundStart hook (topo.Generate wires this up), which
// runs between rounds with no exchange in flight; a resumed campaign
// replays RoundStart for completed rounds, so the base is restored
// automatically. A no-op signal with dynamics disabled.
func (n *Network) SetVirtualRound(r int) {
	n.vround.Store(int64(r))
}

// advanceClock carries the packet across the link into interface `to`: the
// arrival is scheduled after the link's delay and the event loop steps to
// it. It reports false when the link is browned out at arrival time and
// the packet is lost. Called only on the dynamics path (ctx.clk non-nil).
func (n *Network) advanceClock(ctx *exchCtx, to netip.Addr, pktLen int) bool {
	k, ok := a4(to)
	if !ok {
		return true // the walk drops non-IPv4 adjacencies itself
	}
	ctx.clk.schedule(ctx.dyn.linkDelay(k, ctx.clk.now, pktLen, ctx.links), k)
	ev, _ := ctx.clk.step()
	return !ctx.dyn.brownout(ev.key, ctx.clk.now)
}
