package netsim

import (
	"testing"
	"time"

	"repro/internal/tracer"
)

// testDynamics is a fully-armed dynamics configuration used across these
// tests: delay, load, and churn all active.
var testDynamics = Dynamics{Seed: 99, Delay: 1, Load: 0.3, Churn: 0.5}

func TestVClockHeapOrdering(t *testing.T) {
	var c vclock
	c.reset(100)
	c.schedule(30, 3)
	c.schedule(10, 1)
	c.schedule(20, 2)
	c.schedule(10, 4) // ties with key 1; schedule order breaks the tie
	want := []struct {
		at  int64
		key uint32
	}{{110, 1}, {110, 4}, {120, 2}, {130, 3}}
	for i, w := range want {
		ev, ok := c.step()
		if !ok {
			t.Fatalf("step %d: heap empty", i)
		}
		if ev.at != w.at || ev.key != w.key {
			t.Fatalf("step %d: got (at=%d key=%d), want (at=%d key=%d)", i, ev.at, ev.key, w.at, w.key)
		}
		if c.now != w.at {
			t.Fatalf("step %d: clock at %d, want %d", i, c.now, w.at)
		}
	}
	if _, ok := c.step(); ok {
		t.Fatal("heap should be empty")
	}
	if got := c.elapsed(); got != 30 {
		t.Fatalf("elapsed = %d, want 30", got)
	}
}

// TestDynamicsSeedDeterminism pins that two identically-built networks with
// the same dynamics seed report identical virtual RTTs probe for probe, and
// that a different dynamics seed reports different ones.
func TestDynamicsSeedDeterminism(t *testing.T) {
	rtts := func(seed uint64) []time.Duration {
		n, _, host := testNet(t)
		n.SetDynamics(Dynamics{Seed: seed, Delay: 1, Load: 0.3})
		var out []time.Duration
		for ttl := uint8(1); ttl <= 5; ttl++ {
			_, _, rtt, ok := n.ExchangeV(udpProbe(t, n, host.Addr, ttl, 111, 222))
			if !ok {
				t.Fatalf("ttl %d: no response", ttl)
			}
			out = append(out, rtt)
		}
		return out
	}
	a, b := rtts(7), rtts(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d: same seed diverged: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= 0 {
			t.Fatalf("probe %d: rtt %v not positive", i, a[i])
		}
	}
	c := rtts(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different dynamics seeds produced identical RTTs")
	}
}

// TestDynamicsBatchMatchesSequential pins the batch contract with dynamics
// enabled: ExchangeBatch must produce byte-identical responses, steps, and
// virtual RTTs to sequential Exchanges in the same order.
func TestDynamicsBatchMatchesSequential(t *testing.T) {
	build := func() (*Network, [][]byte) {
		n, _, host := testNet(t)
		n.SetDynamics(testDynamics)
		var probes [][]byte
		for round := 0; round < 4; round++ {
			for ttl := uint8(1); ttl <= 6; ttl++ {
				probes = append(probes, udpProbe(t, n, host.Addr, ttl, uint16(1000+round), 33434))
			}
		}
		return n, probes
	}

	seqNet, probes := build()
	type outcome struct {
		resp  string
		steps int
		rtt   time.Duration
		ok    bool
	}
	seq := make([]outcome, len(probes))
	for i, p := range probes {
		resp, steps, rtt, ok := seqNet.ExchangeV(p)
		seq[i] = outcome{string(resp), steps, rtt, ok}
	}

	batchNet, probes2 := build()
	out := make([]ExchangeResult, len(probes2))
	batchNet.ExchangeBatch(probes2, out)
	for i := range out {
		got := outcome{string(out[i].Resp), out[i].Steps, out[i].RTT, out[i].OK}
		if got != seq[i] {
			t.Fatalf("probe %d: batch %+v != sequential %+v", i, got, seq[i])
		}
	}
}

// TestDynamicsChurnProducesStars pins that a high enough churn rate drops
// probes via brownouts (the mid-route star mechanism): across many rounds
// some probes go unanswered while dynamics-off runs answer all of them.
func TestDynamicsChurnProducesStars(t *testing.T) {
	n, _, host := testNet(t)
	n.SetDynamics(Dynamics{Seed: 5, Churn: 1})
	stars := 0
	total := 0
	for round := 0; round < 400; round++ {
		n.SetVirtualRound(round)
		for ttl := uint8(1); ttl <= 4; ttl++ {
			total++
			if _, _, _, ok := n.ExchangeV(udpProbe(t, n, host.Addr, ttl, 111, 222)); !ok {
				stars++
			}
		}
	}
	if stars == 0 {
		t.Fatalf("no brownout drops across %d probes at churn 1", total)
	}
	if stars == total {
		t.Fatal("every probe dropped; brownouts should be windows, not a blackout")
	}
}

// TestRouteRTTLadder pins the tentpole's RTT plumbing end to end through
// the tracer: with dynamics on, every responding hop of a traced Route
// carries a positive virtual RTT, strictly increasing along the TTL ladder
// (per-link propagation is time-invariant, so deeper probes always travel
// strictly longer); with dynamics off and the synthetic per-hop latency
// zeroed, every RTT field is exactly zero.
func TestRouteRTTLadder(t *testing.T) {
	t.Run("dynamics on", func(t *testing.T) {
		n, _, host := testNet(t)
		// Delay only: load and churn off keeps per-link delays
		// time-invariant, making the ladder strictly monotone.
		n.SetDynamics(Dynamics{Seed: 3, Delay: 1})
		tp := NewTransport(n)
		rt, err := tracer.NewParisUDP(tp, tracer.Options{}).Trace(host.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if !rt.Reached() {
			t.Fatal("trace did not reach the destination")
		}
		var prev time.Duration
		for i, h := range rt.Hops {
			if h.Star() {
				t.Fatalf("hop %d: unexpected star", i)
			}
			if h.RTT <= 0 {
				t.Fatalf("hop %d: RTT %v, want > 0", i, h.RTT)
			}
			if h.RTT <= prev {
				t.Fatalf("hop %d: RTT %v not greater than previous %v", i, h.RTT, prev)
			}
			prev = h.RTT
		}
	})
	t.Run("dynamics off", func(t *testing.T) {
		n, _, host := testNet(t)
		tp := NewTransport(n)
		tp.PerHop = 0 // suppress the synthetic steps-derived RTT too
		rt, err := tracer.NewParisUDP(tp, tracer.Options{}).Trace(host.Addr)
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range rt.Hops {
			if h.RTT != 0 {
				t.Fatalf("hop %d: RTT %v, want exactly 0 with dynamics off", i, h.RTT)
			}
		}
	})
}

// TestExchangeVZeroWithoutDynamics pins that the rtt return is exactly zero
// on the historical path.
func TestExchangeVZeroWithoutDynamics(t *testing.T) {
	n, _, host := testNet(t)
	_, _, rtt, ok := n.ExchangeV(udpProbe(t, n, host.Addr, 2, 111, 222))
	if !ok {
		t.Fatal("no response")
	}
	if rtt != 0 {
		t.Fatalf("rtt = %v, want 0 without dynamics", rtt)
	}
}

// TestDynamicsRoundsSeparateTimelines pins SetVirtualRound: the same probe
// bytes in different rounds observe different virtual start times, so
// load-driven queueing varies round over round while staying deterministic
// within a round.
func TestDynamicsRoundsSeparateTimelines(t *testing.T) {
	n, _, host := testNet(t)
	n.SetDynamics(Dynamics{Seed: 11, Delay: 1, Load: 0.8})
	probe := udpProbe(t, n, host.Addr, 4, 111, 222)
	byRound := make([]time.Duration, 0, 8)
	for round := 0; round < 8; round++ {
		n.SetVirtualRound(round)
		_, _, rtt, ok := n.ExchangeV(probe)
		if !ok {
			t.Fatalf("round %d: no response", round)
		}
		// Same probe, same round: identical virtual timeline.
		_, _, rtt2, ok2 := n.ExchangeV(probe)
		if !ok2 || rtt2 != rtt {
			t.Fatalf("round %d: repeat exchange rtt %v, want %v", round, rtt2, rtt)
		}
		byRound = append(byRound, rtt)
	}
	distinct := make(map[time.Duration]bool)
	for _, r := range byRound {
		distinct[r] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("rtts identical across all rounds: %v", byRound)
	}
}
