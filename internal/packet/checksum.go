package packet

// Checksum computes the Internet checksum (RFC 1071) over b.
// If b has odd length it is implicitly zero-padded to an even length.
func Checksum(b []byte) uint16 {
	return finish(sum(b))
}

// sliceInto returns buf[:n] when buf has at least n bytes of capacity, or a
// fresh n-byte slice otherwise. The Into marshal variants use it so callers
// can recycle packet buffers across marshals without the API forcing an
// allocation per packet. Callers must overwrite every byte of the result
// (stale bytes from the recycled buffer are not cleared here).
func sliceInto(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]byte, n)
}

// sum accumulates the 16-bit one's-complement sum of b without folding.
func sum(b []byte) uint32 {
	var s uint32
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		s += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)&1 == 1 {
		s += uint32(b[len(b)-1]) << 8
	}
	return s
}

// finish folds the carries of a running sum and returns its one's complement.
func finish(s uint32) uint16 {
	for s>>16 != 0 {
		s = (s & 0xffff) + s>>16
	}
	return ^uint16(s)
}

// onesAdd returns the one's-complement 16-bit sum a + b.
func onesAdd(a, b uint16) uint16 {
	s := uint32(a) + uint32(b)
	return uint16(s&0xffff) + uint16(s>>16)
}

// onesSub returns the one's-complement 16-bit difference a - b.
func onesSub(a, b uint16) uint16 {
	return onesAdd(a, ^b)
}
