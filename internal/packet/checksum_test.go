package packet

import (
	"testing"
	"testing/quick"
)

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 worked example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to
	// ddf2 (before complement).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got, want := Checksum(b), uint16(^uint16(0xddf2)); got != want {
		t.Errorf("Checksum(%x) = %#04x, want %#04x", b, got, want)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Errorf("Checksum(nil) = %#04x, want 0xffff", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length input is implicitly zero-padded.
	odd := Checksum([]byte{0x12, 0x34, 0x56})
	even := Checksum([]byte{0x12, 0x34, 0x56, 0x00})
	if odd != even {
		t.Errorf("odd-length checksum %#04x != padded %#04x", odd, even)
	}
}

// TestChecksumVerifiesToZero: appending a message's checksum to the message
// makes the whole sum verify (fold to 0xffff, complement 0).
func TestChecksumVerifiesToZero(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		ck := Checksum(data)
		whole := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
		return Checksum(whole) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOnesAddCommutesAndWraps(t *testing.T) {
	f := func(a, b uint16) bool {
		return onesAdd(a, b) == onesAdd(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// End-around carry: 0xffff + 1 folds to 1.
	if got := onesAdd(0xffff, 0x0001); got != 0x0001 {
		t.Errorf("onesAdd(0xffff, 1) = %#04x, want 0x0001", got)
	}
}

func TestOnesSubInvertsAdd(t *testing.T) {
	f := func(a, b uint16) bool {
		s := onesAdd(a, b)
		back := onesSub(s, b)
		// One's complement has two zero representations; compare modulo
		// that ambiguity.
		return back == a || onesAdd(back, 0) == onesAdd(a, 0) ||
			(a == 0 && back == 0xffff) || (a == 0xffff && back == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumIncrementalEquivalence(t *testing.T) {
	// Changing one 16-bit word and patching via RFC 1624 must match a
	// full recompute. This is the invariant PatchTTL/PatchSrc rely on.
	f := func(data []byte, idx uint8, newWord uint16) bool {
		if len(data) < 4 {
			return true
		}
		if len(data)%2 != 0 {
			data = data[:len(data)-1]
		}
		i := int(idx) % (len(data) / 2) * 2
		old := uint16(data[i])<<8 | uint16(data[i+1])
		ck := Checksum(data)
		patched := ^onesAdd(onesAdd(^ck, ^old), newWord)
		data[i] = byte(newWord >> 8)
		data[i+1] = byte(newWord)
		return patched == Checksum(data) ||
			// full recompute may produce the alternate zero
			onesAdd(^patched, 0) == onesAdd(^Checksum(data), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}
