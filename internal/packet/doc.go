// Package packet implements the IPv4, UDP, TCP and ICMPv4 wire formats used
// by both the tracers and the simulated network.
//
// Everything is built from scratch on the standard library. Packets travel
// through the rest of the system as serialized byte slices so that routers
// (internal/netsim) operate on exactly the header octets a real device would
// hash for per-flow load balancing, and so that ICMP error quoting carries
// the true on-the-wire probe bytes back to the tracer.
//
// The package also provides the checksum-targeted payload crafting that is
// the heart of Paris traceroute's UDP probing: choosing payload bytes so the
// UDP checksum equals a caller-selected value (Section 2.2 of the paper).
//
// # Determinism and concurrency contract
//
// Serialization, parsing, and checksum arithmetic are pure functions of
// their inputs: the same header struct always serializes to the same bytes,
// and parsing those bytes recovers the same struct. There is no
// package-level state, so concurrent use needs no synchronization; the
// *Into variants write into caller-provided buffers for the alloc-free hot
// paths (netsim's forwarding loop, batched probing) and never retain the
// buffer. The parsers are exercised by fuzz tests and must never panic on
// arbitrary input — malformed packets fail with an error, which is what
// lets netsim and the live transport feed them raw bytes off the wire.
package packet
