package packet

import (
	"fmt"
)

// ICMPv4 message types used by traceroute.
const (
	ICMPTypeEchoReply       = 0
	ICMPTypeDestUnreachable = 3
	ICMPTypeEchoRequest     = 8
	ICMPTypeTimeExceeded    = 11
)

// Destination Unreachable codes (RFC 792).
const (
	CodeNetUnreachable   = 0
	CodeHostUnreachable  = 1
	CodeProtoUnreachable = 2
	CodePortUnreachable  = 3
)

// Time Exceeded codes.
const (
	CodeTTLExceeded      = 0
	CodeFragReassexceded = 1
)

// ICMPHeaderLen is the length of the fixed four-octet ICMP header plus the
// four octets of type-specific data (rest of header).
const ICMPHeaderLen = 8

// ICMP is a parsed ICMPv4 message. For Echo Request/Reply, ID and Seq hold
// the identifier and sequence number and Payload the echo data. For error
// messages (Time Exceeded, Destination Unreachable), Payload holds the
// quoted packet: the offending IP header plus at least its first eight
// payload octets (RFC 792).
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16 // Echo identifier (error messages: unused field high half)
	Seq      uint16 // Echo sequence number (error messages: unused field low half)
	Payload  []byte
}

// IsError reports whether the message quotes an offending packet.
func (m *ICMP) IsError() bool {
	return m.Type == ICMPTypeTimeExceeded || m.Type == ICMPTypeDestUnreachable
}

// Marshal serializes the ICMP message with a correct checksum.
func (m *ICMP) Marshal() ([]byte, error) {
	b := make([]byte, ICMPHeaderLen+len(m.Payload))
	b[0] = m.Type
	b[1] = m.Code
	put16(b[4:], m.ID)
	put16(b[6:], m.Seq)
	copy(b[8:], m.Payload)
	put16(b[2:], Checksum(b))
	return b, nil
}

// MarshalIPv4ICMP serializes the IPv4 header ip carrying the ICMP message m
// as its entire payload, in a single allocation (where m.Marshal followed by
// ip.Marshal would make two and copy the body twice). ip.Protocol should be
// ProtoICMP. m.Payload may alias a live packet buffer: it is copied into the
// output before this function returns. This is the response path of the
// network simulator, hit once per ICMP error or echo reply it originates.
func MarshalIPv4ICMP(ip *IPv4, m *ICMP) ([]byte, error) {
	return MarshalIPv4ICMPInto(nil, ip, m)
}

// IPv4ICMPLen returns the serialized length of MarshalIPv4ICMP's output for
// the given header and message, so callers carving the destination buffer
// out of an arena can size it exactly.
func IPv4ICMPLen(ip *IPv4, m *ICMP) int {
	return ip.HeaderLen() + ICMPHeaderLen + len(m.Payload)
}

// MarshalIPv4ICMPInto is MarshalIPv4ICMP serializing into buf when it has
// sufficient capacity (allocating otherwise). The returned packet aliases
// buf in the reuse case; the simulator's batch arena supplies buf to take
// response marshaling off the heap.
func MarshalIPv4ICMPInto(buf []byte, ip *IPv4, m *ICMP) ([]byte, error) {
	if err := ip.headerCheck(); err != nil {
		return nil, err
	}
	hlen := ip.HeaderLen()
	total := hlen + ICMPHeaderLen + len(m.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("packet: IPv4 packet too large (%d bytes)", total)
	}
	b := sliceInto(buf, total)
	body := b[hlen:]
	body[0] = m.Type
	body[1] = m.Code
	body[2], body[3] = 0, 0 // clear any stale checksum before summing
	put16(body[4:], m.ID)
	put16(body[6:], m.Seq)
	copy(body[8:], m.Payload)
	put16(body[2:], Checksum(body))
	ip.putHeader(b, total)
	return b, nil
}

// ParseICMP decodes an ICMPv4 message.
func ParseICMP(b []byte) (*ICMP, error) {
	m := new(ICMP)
	if err := ParseICMPInto(b, m); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseICMPInto decodes an ICMPv4 message into m, avoiding the heap
// allocation of ParseICMP. m is overwritten entirely; its Payload aliases b.
func ParseICMPInto(b []byte, m *ICMP) error {
	if len(b) < ICMPHeaderLen {
		return ErrTruncated
	}
	*m = ICMP{
		Type:     b[0],
		Code:     b[1],
		Checksum: get16(b[2:]),
		ID:       get16(b[4:]),
		Seq:      get16(b[6:]),
		Payload:  b[8:],
	}
	return nil
}

// VerifyICMPChecksum reports whether the serialized ICMP message msg has a
// valid checksum.
func VerifyICMPChecksum(msg []byte) bool {
	if len(msg) < ICMPHeaderLen {
		return false
	}
	return Checksum(msg) == 0
}

// EchoChecksum returns the checksum an Echo message with the given fields
// will carry on the wire. Classic traceroute varies Seq (and therefore this
// checksum — the flow identifier); Paris traceroute picks ID so that the
// checksum stays constant (see CompensatingEchoID).
func EchoChecksum(typ, code uint8, id, seq uint16, payload []byte) uint16 {
	b := make([]byte, ICMPHeaderLen+len(payload))
	b[0] = typ
	b[1] = code
	put16(b[4:], id)
	put16(b[6:], seq)
	copy(b[8:], payload)
	return Checksum(b)
}

// CompensatingEchoID returns the Echo Identifier that keeps the ICMP
// checksum equal to target when the sequence number is seq, for an Echo
// Request with the given payload. This is Paris traceroute's ICMP
// technique: Seq still varies per probe (for matching) but ID absorbs the
// variation so the checksum — which per-flow load balancers hash, since it
// sits in the first four transport octets — never changes.
func CompensatingEchoID(seq, target uint16, payload []byte) (uint16, error) {
	// checksum = ^fold(base + id + seq) where base covers type/code/payload.
	b := make([]byte, ICMPHeaderLen+len(payload))
	b[0] = ICMPTypeEchoRequest
	copy(b[8:], payload)
	base := ^finish(sum(b)) // folded sum with id=seq=0
	id := onesSub(onesSub(^target, base), seq)
	got := EchoChecksum(ICMPTypeEchoRequest, 0, id, seq, payload)
	if got != target {
		// One's-complement zero ambiguity (0x0000 vs 0xffff) can shift the
		// result by one representation; nudge via the alternate zero.
		if alt := onesAdd(id, 0xffff); EchoChecksum(ICMPTypeEchoRequest, 0, alt, seq, payload) == target {
			return alt, nil
		}
		return 0, fmt.Errorf("packet: cannot reach ICMP checksum %#04x with seq %#04x", target, seq)
	}
	return id, nil
}

// TimeExceeded builds the ICMP Time Exceeded message a router generates when
// it discards the serialized IP packet quoted. Per RFC 792 the quote is the
// offending IP header plus its first eight payload octets.
func TimeExceeded(quoted []byte) (*ICMP, error) {
	q, err := QuotePacket(quoted)
	if err != nil {
		return nil, err
	}
	return &ICMP{Type: ICMPTypeTimeExceeded, Code: CodeTTLExceeded, Payload: q}, nil
}

// DestUnreachable builds an ICMP Destination Unreachable with the given code
// quoting the offending packet.
func DestUnreachable(code uint8, quoted []byte) (*ICMP, error) {
	q, err := QuotePacket(quoted)
	if err != nil {
		return nil, err
	}
	return &ICMP{Type: ICMPTypeDestUnreachable, Code: code, Payload: q}, nil
}

// QuotePacket returns the RFC 792 quotation of a serialized IP packet: its
// IP header (with options) plus the first eight octets of its payload. The
// returned slice is a copy.
func QuotePacket(pkt []byte) ([]byte, error) {
	h, payload, err := ParseIPv4(pkt)
	if err != nil {
		return nil, fmt.Errorf("packet: cannot quote: %w", err)
	}
	n := 8
	if len(payload) < n {
		n = len(payload)
	}
	q := make([]byte, h.HeaderLen()+n)
	copy(q, pkt[:h.HeaderLen()])
	copy(q[h.HeaderLen():], payload[:n])
	return q, nil
}

// ParseQuoted parses the packet quoted inside an ICMP error message,
// returning the inner IP header and the (truncated) transport octets.
func ParseQuoted(m *ICMP) (*IPv4, []byte, error) {
	if !m.IsError() {
		return nil, nil, fmt.Errorf("packet: ICMP type %d carries no quoted packet", m.Type)
	}
	return ParseIPv4(m.Payload)
}
