package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestICMPEchoRoundTrip(t *testing.T) {
	m := &ICMP{Type: ICMPTypeEchoRequest, ID: 4321, Seq: 17, Payload: []byte("ping")}
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !VerifyICMPChecksum(b) {
		t.Error("checksum does not verify")
	}
	g, err := ParseICMP(b)
	if err != nil {
		t.Fatalf("ParseICMP: %v", err)
	}
	if g.Type != m.Type || g.ID != m.ID || g.Seq != m.Seq || !bytes.Equal(g.Payload, m.Payload) {
		t.Errorf("got %+v, want %+v", g, m)
	}
	if g.IsError() {
		t.Error("echo request classified as error message")
	}
}

func TestParseICMPTruncated(t *testing.T) {
	if _, err := ParseICMP(make([]byte, 7)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestTimeExceededQuotesHeaderPlusEight(t *testing.T) {
	inner, err := (&IPv4{TTL: 1, Protocol: ProtoUDP, ID: 99, Src: srcA, Dst: dstA}).
		Marshal(append(make([]byte, 8), []byte("should be dropped from quote")...))
	if err != nil {
		t.Fatal(err)
	}
	m, err := TimeExceeded(inner)
	if err != nil {
		t.Fatalf("TimeExceeded: %v", err)
	}
	if m.Type != ICMPTypeTimeExceeded || m.Code != CodeTTLExceeded {
		t.Errorf("type/code = %d/%d", m.Type, m.Code)
	}
	if len(m.Payload) != IPv4HeaderLen+8 {
		t.Errorf("quote length = %d, want %d", len(m.Payload), IPv4HeaderLen+8)
	}
	q, transport, err := ParseQuoted(m)
	if err != nil {
		t.Fatalf("ParseQuoted: %v", err)
	}
	if q.TTL != 1 || q.ID != 99 || q.Protocol != ProtoUDP {
		t.Errorf("quoted header %+v", q)
	}
	if len(transport) != 8 {
		t.Errorf("quoted transport = %d bytes, want 8", len(transport))
	}
}

func TestQuotePacketShorterThanEight(t *testing.T) {
	inner, err := (&IPv4{TTL: 1, Protocol: ProtoICMP, Src: srcA, Dst: dstA}).Marshal([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	q, err := QuotePacket(inner)
	if err != nil {
		t.Fatalf("QuotePacket: %v", err)
	}
	if len(q) != IPv4HeaderLen+3 {
		t.Errorf("quote length = %d, want %d", len(q), IPv4HeaderLen+3)
	}
}

func TestDestUnreachableCodes(t *testing.T) {
	inner, err := (&IPv4{TTL: 5, Protocol: ProtoUDP, Src: srcA, Dst: dstA}).Marshal(make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range []uint8{CodeNetUnreachable, CodeHostUnreachable, CodePortUnreachable} {
		m, err := DestUnreachable(code, inner)
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		if m.Type != ICMPTypeDestUnreachable || m.Code != code {
			t.Errorf("type/code = %d/%d, want %d/%d", m.Type, m.Code, ICMPTypeDestUnreachable, code)
		}
		if !m.IsError() {
			t.Error("unreachable not classified as error")
		}
	}
}

func TestParseQuotedOnNonError(t *testing.T) {
	m := &ICMP{Type: ICMPTypeEchoReply}
	if _, _, err := ParseQuoted(m); err == nil {
		t.Error("ParseQuoted accepted an echo reply")
	}
}

// TestCompensatingEchoID is the Paris ICMP property: for any sequence
// number and payload, the compensating identifier keeps the Echo checksum
// at the chosen target. The single exception is target 0xffff, which
// requires a one's-complement sum of +0 — unreachable for nonzero data
// (RFC 1071 arithmetic); there the function must report an error rather
// than return a wrong identifier.
func TestCompensatingEchoID(t *testing.T) {
	f := func(seq, target uint16, payloadLen uint8) bool {
		payload := make([]byte, int(payloadLen)%32)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		id, err := CompensatingEchoID(seq, target, payload)
		if err != nil {
			// Only the unreachable all-ones target may fail.
			return target == 0xffff
		}
		return EchoChecksum(ICMPTypeEchoRequest, 0, id, seq, payload) == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestCompensatingEchoIDHoldsChecksumAcrossSequence mirrors what the Paris
// ICMP prober does for a whole trace: Seq counts up, ID compensates, and
// the checksum — the flow-identifying octets — never moves.
func TestCompensatingEchoIDHoldsChecksumAcrossSequence(t *testing.T) {
	payload := make([]byte, 12)
	const target = 0xbeef
	for seq := uint16(1); seq <= 64; seq++ {
		id, err := CompensatingEchoID(seq, target, payload)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		m := &ICMP{Type: ICMPTypeEchoRequest, ID: id, Seq: seq, Payload: payload}
		b, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got := uint16(b[2])<<8 | uint16(b[3])
		if got != target {
			t.Fatalf("seq %d: wire checksum %#04x, want %#04x", seq, got, target)
		}
	}
}
