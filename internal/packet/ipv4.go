package packet

import (
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers for the transports this library understands.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// Common errors returned by the parsers in this package.
var (
	ErrTruncated  = errors.New("packet: truncated")
	ErrBadVersion = errors.New("packet: not an IPv4 packet")
	ErrBadLength  = errors.New("packet: inconsistent length fields")
)

// IPv4 is a parsed IPv4 header. Options are preserved verbatim.
type IPv4 struct {
	TOS        uint8
	TotalLen   uint16
	ID         uint16
	Flags      uint8  // 3 bits: reserved, DF, MF
	FragOff    uint16 // 13 bits, in 8-octet units
	TTL        uint8
	Protocol   uint8
	Checksum   uint16 // as seen on the wire; recomputed by Marshal
	Src, Dst   netip.Addr
	Options    []byte
	PayloadLen int // TotalLen minus header length, for convenience
}

// IPv4 flag bits.
const (
	FlagDF = 0x2 // don't fragment
	FlagMF = 0x1 // more fragments
)

// HeaderLen returns the header length in bytes including options.
func (h *IPv4) HeaderLen() int { return IPv4HeaderLen + len(h.Options) }

// headerCheck validates the marshal preconditions shared by Marshal and
// MarshalIPv4ICMP.
func (h *IPv4) headerCheck() error {
	if !h.Src.Is4() || !h.Dst.Is4() {
		return fmt.Errorf("packet: IPv4 marshal requires v4 addresses, got src=%v dst=%v", h.Src, h.Dst)
	}
	if len(h.Options)%4 != 0 {
		return fmt.Errorf("packet: IPv4 options length %d not a multiple of 4", len(h.Options))
	}
	return nil
}

// putHeader writes the serialized header (with checksum) into the first
// HeaderLen bytes of b, stamping total as the Total Length field.
func (h *IPv4) putHeader(b []byte, total int) {
	hlen := h.HeaderLen()
	b[0] = 4<<4 | uint8(hlen/4)
	b[1] = h.TOS
	put16(b[2:], uint16(total))
	put16(b[4:], h.ID)
	put16(b[6:], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	// Checksum at b[10:12] computed below; clear first so a recycled
	// buffer's stale checksum does not poison the sum.
	b[10], b[11] = 0, 0
	src := h.Src.As4()
	dst := h.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	copy(b[20:hlen], h.Options)
	put16(b[10:], Checksum(b[:hlen]))
}

// Marshal serializes the header followed by payload into a fresh slice,
// computing TotalLen and the header checksum. Src and Dst must be valid
// IPv4 addresses.
func (h *IPv4) Marshal(payload []byte) ([]byte, error) {
	return h.MarshalInto(nil, payload)
}

// MarshalInto is Marshal serializing into buf when it has sufficient
// capacity (allocating a fresh slice otherwise). The returned packet aliases
// buf in the reuse case; probe builders and the simulator's batch arena use
// this to keep the marshal path allocation-free.
func (h *IPv4) MarshalInto(buf, payload []byte) ([]byte, error) {
	if err := h.headerCheck(); err != nil {
		return nil, err
	}
	hlen := h.HeaderLen()
	total := hlen + len(payload)
	if total > 0xffff {
		return nil, fmt.Errorf("packet: IPv4 packet too large (%d bytes)", total)
	}
	b := sliceInto(buf, total)
	h.putHeader(b, total)
	copy(b[hlen:], payload)
	return b, nil
}

// ParseIPv4 decodes the IPv4 header at the front of b. It returns the parsed
// header and the transport payload (aliasing b, not copied).
func ParseIPv4(b []byte) (*IPv4, []byte, error) {
	h := new(IPv4)
	payload, err := ParseIPv4Into(b, h)
	if err != nil {
		return nil, nil, err
	}
	return h, payload, nil
}

// ParseIPv4Into decodes the IPv4 header at the front of b into h, avoiding
// the heap allocation of ParseIPv4. It returns the transport payload
// (aliasing b, not copied). h is overwritten entirely. This is the parser
// the simulator's forwarding loop uses once per packet version instead of
// once per hop.
func ParseIPv4Into(b []byte, h *IPv4) ([]byte, error) {
	if len(b) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	hlen := int(b[0]&0x0f) * 4
	if hlen < IPv4HeaderLen || len(b) < hlen {
		return nil, ErrTruncated
	}
	*h = IPv4{
		TOS:      b[1],
		TotalLen: get16(b[2:]),
		ID:       get16(b[4:]),
		Flags:    b[6] >> 5,
		FragOff:  get16(b[6:]) & 0x1fff,
		TTL:      b[8],
		Protocol: b[9],
		Checksum: get16(b[10:]),
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
	}
	if hlen > IPv4HeaderLen {
		h.Options = b[IPv4HeaderLen:hlen]
	}
	end := int(h.TotalLen)
	if end < hlen {
		return nil, ErrBadLength
	}
	if end > len(b) {
		// Quoted packets inside ICMP errors are legitimately truncated to
		// the header plus eight octets; accept what we have.
		end = len(b)
	}
	h.PayloadLen = end - hlen
	return b[hlen:end], nil
}

// PatchTTL rewrites the TTL of the serialized IPv4 packet pkt in place and
// incrementally updates the header checksum (RFC 1624). It is the hot path
// of the simulator's forwarding loop.
func PatchTTL(pkt []byte, ttl uint8) error {
	if len(pkt) < IPv4HeaderLen {
		return ErrTruncated
	}
	old := uint16(pkt[8]) << 8
	pkt[8] = ttl
	newv := uint16(ttl) << 8
	ck := get16(pkt[10:])
	// RFC 1624: HC' = ~(~HC + ~m + m')
	ck = ^onesAdd(onesAdd(^ck, ^old), newv)
	put16(pkt[10:], ck)
	return nil
}

// PatchSrc rewrites the source address of the serialized IPv4 packet in
// place, updating the header checksum incrementally. Used by the simulated
// NAT boxes that rewrite ICMP sources (Fig. 5 of the paper).
func PatchSrc(pkt []byte, src netip.Addr) error {
	if len(pkt) < IPv4HeaderLen {
		return ErrTruncated
	}
	if !src.Is4() {
		return fmt.Errorf("packet: PatchSrc requires an IPv4 address, got %v", src)
	}
	a := src.As4()
	ck := get16(pkt[10:])
	for i := 0; i < 4; i += 2 {
		old := get16(pkt[12+i:])
		newv := uint16(a[i])<<8 | uint16(a[i+1])
		ck = ^onesAdd(onesAdd(^ck, ^old), newv)
		pkt[12+i] = a[i]
		pkt[12+i+1] = a[i+1]
	}
	put16(pkt[10:], ck)
	return nil
}

// pseudoHeaderSum returns the unfolded checksum contribution of the
// UDP/TCP pseudo-header for the given addresses, protocol and length.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	s4 := src.As4()
	d4 := dst.As4()
	var s uint32
	s += uint32(s4[0])<<8 | uint32(s4[1])
	s += uint32(s4[2])<<8 | uint32(s4[3])
	s += uint32(d4[0])<<8 | uint32(d4[1])
	s += uint32(d4[2])<<8 | uint32(d4[3])
	s += uint32(proto)
	s += uint32(length)
	return s
}

func put16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func get16(b []byte) uint16    { return uint16(b[0])<<8 | uint16(b[1]) }
