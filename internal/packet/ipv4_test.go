package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcA = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	dstA = netip.AddrFrom4([4]byte{192, 0, 2, 7})
)

func mustMarshalIP(t *testing.T, h *IPv4, payload []byte) []byte {
	t.Helper()
	b, err := h.Marshal(payload)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return b
}

func TestIPv4RoundTrip(t *testing.T) {
	h := &IPv4{
		TOS:      0x10,
		ID:       0xbeef,
		Flags:    FlagDF,
		TTL:      17,
		Protocol: ProtoUDP,
		Src:      srcA,
		Dst:      dstA,
	}
	payload := []byte("hello, network")
	pkt := mustMarshalIP(t, h, payload)

	g, pl, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatalf("ParseIPv4: %v", err)
	}
	if g.TOS != h.TOS || g.ID != h.ID || g.Flags != h.Flags ||
		g.TTL != h.TTL || g.Protocol != h.Protocol ||
		g.Src != h.Src || g.Dst != h.Dst {
		t.Errorf("header mismatch: got %+v want %+v", g, h)
	}
	if !bytes.Equal(pl, payload) {
		t.Errorf("payload = %q, want %q", pl, payload)
	}
	if int(g.TotalLen) != len(pkt) {
		t.Errorf("TotalLen = %d, want %d", g.TotalLen, len(pkt))
	}
	// Header checksum must verify.
	if Checksum(pkt[:IPv4HeaderLen]) != 0 {
		t.Error("header checksum does not verify")
	}
}

func TestIPv4Options(t *testing.T) {
	h := &IPv4{
		TTL: 1, Protocol: ProtoICMP, Src: srcA, Dst: dstA,
		Options: []byte{0x94, 0x04, 0x00, 0x00}, // router alert
	}
	pkt := mustMarshalIP(t, h, []byte{1, 2, 3})
	g, pl, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatalf("ParseIPv4: %v", err)
	}
	if g.HeaderLen() != 24 {
		t.Errorf("HeaderLen = %d, want 24", g.HeaderLen())
	}
	if !bytes.Equal(g.Options, h.Options) {
		t.Errorf("options = %x, want %x", g.Options, h.Options)
	}
	if !bytes.Equal(pl, []byte{1, 2, 3}) {
		t.Errorf("payload = %x", pl)
	}
}

func TestIPv4MarshalErrors(t *testing.T) {
	if _, err := (&IPv4{Src: srcA}).Marshal(nil); err == nil {
		t.Error("invalid dst accepted")
	}
	if _, err := (&IPv4{Src: srcA, Dst: dstA, Options: []byte{1}}).Marshal(nil); err == nil {
		t.Error("misaligned options accepted")
	}
	big := make([]byte, 0x10000)
	if _, err := (&IPv4{Src: srcA, Dst: dstA}).Marshal(big); err == nil {
		t.Error("oversized packet accepted")
	}
}

func TestParseIPv4Errors(t *testing.T) {
	if _, _, err := ParseIPv4(nil); err != ErrTruncated {
		t.Errorf("nil: err = %v, want ErrTruncated", err)
	}
	if _, _, err := ParseIPv4(make([]byte, 19)); err != ErrTruncated {
		t.Errorf("short: err = %v, want ErrTruncated", err)
	}
	v6 := make([]byte, 40)
	v6[0] = 6 << 4
	if _, _, err := ParseIPv4(v6); err != ErrBadVersion {
		t.Errorf("v6: err = %v, want ErrBadVersion", err)
	}
	// IHL below minimum.
	bad := mustMarshalIP(t, &IPv4{TTL: 1, Protocol: 17, Src: srcA, Dst: dstA}, nil)
	bad[0] = 4<<4 | 4 // IHL = 16 bytes
	if _, _, err := ParseIPv4(bad); err != ErrTruncated {
		t.Errorf("bad IHL: err = %v, want ErrTruncated", err)
	}
}

func TestParseIPv4TruncatedQuote(t *testing.T) {
	// ICMP errors quote only the header plus eight octets; TotalLen then
	// exceeds the available bytes and the parser must clip gracefully.
	full := mustMarshalIP(t, &IPv4{TTL: 9, Protocol: ProtoUDP, Src: srcA, Dst: dstA},
		make([]byte, 64))
	quoted := full[:IPv4HeaderLen+8]
	g, pl, err := ParseIPv4(quoted)
	if err != nil {
		t.Fatalf("ParseIPv4: %v", err)
	}
	if len(pl) != 8 {
		t.Errorf("clipped payload length = %d, want 8", len(pl))
	}
	if g.TTL != 9 {
		t.Errorf("TTL = %d, want 9", g.TTL)
	}
}

func TestPatchTTLKeepsChecksumValid(t *testing.T) {
	f := func(ttl0, ttl1 uint8, id uint16) bool {
		pkt, err := (&IPv4{TTL: ttl0, ID: id, Protocol: ProtoUDP, Src: srcA, Dst: dstA}).Marshal([]byte{1, 2})
		if err != nil {
			return false
		}
		if err := PatchTTL(pkt, ttl1); err != nil {
			return false
		}
		h, _, err := ParseIPv4(pkt)
		return err == nil && h.TTL == ttl1 && Checksum(pkt[:IPv4HeaderLen]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPatchSrcKeepsChecksumValid(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		pkt, err := (&IPv4{TTL: 3, Protocol: ProtoICMP, Src: srcA, Dst: dstA}).Marshal(nil)
		if err != nil {
			return false
		}
		newSrc := netip.AddrFrom4([4]byte{a, b, c, d})
		if err := PatchSrc(pkt, newSrc); err != nil {
			return false
		}
		h, _, err := ParseIPv4(pkt)
		return err == nil && h.Src == newSrc && Checksum(pkt[:IPv4HeaderLen]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPatchErrors(t *testing.T) {
	if err := PatchTTL(make([]byte, 10), 5); err == nil {
		t.Error("PatchTTL accepted short packet")
	}
	if err := PatchSrc(make([]byte, 10), srcA); err == nil {
		t.Error("PatchSrc accepted short packet")
	}
	pkt := mustMarshalIP(t, &IPv4{TTL: 1, Protocol: 17, Src: srcA, Dst: dstA}, nil)
	if err := PatchSrc(pkt, netip.Addr{}); err == nil {
		t.Error("PatchSrc accepted invalid address")
	}
}
