package packet

import (
	"fmt"
	"net/netip"
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP control bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
)

// TCP is a parsed TCP header. Options are preserved verbatim.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16
	Options  []byte
}

// HeaderLen returns the header length in bytes including options.
func (h *TCP) HeaderLen() int { return TCPHeaderLen + len(h.Options) }

// MarshalTCP serializes a TCP segment (header + payload) with a correct
// checksum over the IPv4 pseudo-header for src/dst.
func MarshalTCP(src, dst netip.Addr, h *TCP, payload []byte) ([]byte, error) {
	if len(h.Options)%4 != 0 {
		return nil, fmt.Errorf("packet: TCP options length %d not a multiple of 4", len(h.Options))
	}
	hlen := h.HeaderLen()
	if hlen > 60 {
		return nil, fmt.Errorf("packet: TCP header too long (%d bytes)", hlen)
	}
	b := make([]byte, hlen+len(payload))
	put16(b[0:], h.SrcPort)
	put16(b[2:], h.DstPort)
	put32(b[4:], h.Seq)
	put32(b[8:], h.Ack)
	b[12] = uint8(hlen/4) << 4
	b[13] = h.Flags
	put16(b[14:], h.Window)
	put16(b[18:], h.Urgent)
	copy(b[20:hlen], h.Options)
	copy(b[hlen:], payload)
	s := pseudoHeaderSum(src, dst, ProtoTCP, len(b))
	s += sum(b[:16])
	s += sum(b[18:])
	put16(b[16:], finish(s))
	return b, nil
}

// ParseTCP decodes the TCP header at the front of b. Quoted segments inside
// ICMP errors are truncated to eight octets, which covers only ports and the
// sequence number; ParseTCP accepts that and reports how much it parsed via
// the Truncated return.
func ParseTCP(b []byte) (h *TCP, payload []byte, truncated bool, err error) {
	h = new(TCP)
	payload, truncated, err = ParseTCPInto(b, h)
	if err != nil {
		return nil, nil, false, err
	}
	return h, payload, truncated, nil
}

// ParseTCPInto is ParseTCP decoding into h, avoiding the heap allocation.
// h is overwritten entirely; payload and Options alias b.
func ParseTCPInto(b []byte, h *TCP) (payload []byte, truncated bool, err error) {
	if len(b) < 8 {
		return nil, false, ErrTruncated
	}
	*h = TCP{
		SrcPort: get16(b[0:]),
		DstPort: get16(b[2:]),
		Seq:     get32(b[4:]),
	}
	if len(b) < TCPHeaderLen {
		return nil, true, nil
	}
	h.Ack = get32(b[8:])
	hlen := int(b[12]>>4) * 4
	h.Flags = b[13]
	h.Window = get16(b[14:])
	h.Checksum = get16(b[16:])
	h.Urgent = get16(b[18:])
	if hlen < TCPHeaderLen || hlen > len(b) {
		return nil, true, nil
	}
	if hlen > TCPHeaderLen {
		h.Options = b[TCPHeaderLen:hlen]
	}
	return b[hlen:], false, nil
}

// VerifyTCPChecksum reports whether the serialized segment's checksum is
// valid for the given pseudo-header addresses.
func VerifyTCPChecksum(src, dst netip.Addr, seg []byte) bool {
	if len(seg) < TCPHeaderLen {
		return false
	}
	s := pseudoHeaderSum(src, dst, ProtoTCP, len(seg))
	s += sum(seg)
	return finish(s) == 0
}

func put32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func get32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
