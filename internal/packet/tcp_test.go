package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTCPRoundTrip(t *testing.T) {
	h := &TCP{
		SrcPort: 31337,
		DstPort: 80,
		Seq:     0xdeadbeef,
		Ack:     0x01020304,
		Flags:   TCPSyn | TCPAck,
		Window:  65535,
		Urgent:  7,
	}
	payload := []byte("GET /")
	seg, err := MarshalTCP(srcA, dstA, h, payload)
	if err != nil {
		t.Fatalf("MarshalTCP: %v", err)
	}
	if !VerifyTCPChecksum(srcA, dstA, seg) {
		t.Error("checksum does not verify")
	}
	g, pl, trunc, err := ParseTCP(seg)
	if err != nil || trunc {
		t.Fatalf("ParseTCP: err=%v trunc=%v", err, trunc)
	}
	if g.SrcPort != h.SrcPort || g.DstPort != h.DstPort || g.Seq != h.Seq ||
		g.Ack != h.Ack || g.Flags != h.Flags || g.Window != h.Window || g.Urgent != h.Urgent {
		t.Errorf("got %+v, want %+v", g, h)
	}
	if !bytes.Equal(pl, payload) {
		t.Errorf("payload = %q", pl)
	}
	// Corruption must break verification.
	seg[5] ^= 0x40
	if VerifyTCPChecksum(srcA, dstA, seg) {
		t.Error("corrupted segment still verifies")
	}
}

func TestTCPOptions(t *testing.T) {
	h := &TCP{SrcPort: 1, DstPort: 2, Flags: TCPSyn,
		Options: []byte{2, 4, 5, 0xb4, 1, 1, 1, 0}} // MSS + padding
	seg, err := MarshalTCP(srcA, dstA, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, _, trunc, err := ParseTCP(seg)
	if err != nil || trunc {
		t.Fatalf("err=%v trunc=%v", err, trunc)
	}
	if !bytes.Equal(g.Options, h.Options) {
		t.Errorf("options = %x, want %x", g.Options, h.Options)
	}
	if g.HeaderLen() != 28 {
		t.Errorf("HeaderLen = %d, want 28", g.HeaderLen())
	}
}

func TestTCPMarshalErrors(t *testing.T) {
	if _, err := MarshalTCP(srcA, dstA, &TCP{Options: []byte{1}}, nil); err == nil {
		t.Error("misaligned options accepted")
	}
	if _, err := MarshalTCP(srcA, dstA, &TCP{Options: make([]byte, 44)}, nil); err == nil {
		t.Error("oversized header accepted")
	}
}

func TestParseTCPQuotedEightOctets(t *testing.T) {
	// Inside ICMP errors only the first eight octets survive: ports and
	// sequence number — exactly the fields Paris TCP matches on.
	seg, err := MarshalTCP(srcA, dstA, &TCP{SrcPort: 30021, DstPort: 80, Seq: 42, Flags: TCPSyn}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, _, trunc, err := ParseTCP(seg[:8])
	if err != nil {
		t.Fatalf("ParseTCP: %v", err)
	}
	if !trunc {
		t.Error("eight-octet quote not marked truncated")
	}
	if h.SrcPort != 30021 || h.DstPort != 80 || h.Seq != 42 {
		t.Errorf("parsed %+v", h)
	}
}

func TestParseTCPTooShort(t *testing.T) {
	if _, _, _, err := ParseTCP(make([]byte, 7)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestTCPChecksumProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, n uint8) bool {
		payload := make([]byte, int(n)%64)
		seg, err := MarshalTCP(srcA, dstA, &TCP{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: TCPSyn,
		}, payload)
		if err != nil {
			return false
		}
		return VerifyTCPChecksum(srcA, dstA, seg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
