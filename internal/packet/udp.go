package packet

import (
	"fmt"
	"net/netip"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDP is a parsed UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// MarshalUDP serializes a UDP datagram (header + payload) with a correct
// checksum over the IPv4 pseudo-header for src/dst.
func MarshalUDP(src, dst netip.Addr, h *UDP, payload []byte) ([]byte, error) {
	return MarshalUDPInto(nil, src, dst, h, payload)
}

// MarshalUDPInto is MarshalUDP serializing into buf when it has sufficient
// capacity (allocating otherwise). The returned datagram aliases buf in the
// reuse case; the UDP probe builders recycle their datagram scratch through
// it across an entire trace.
func MarshalUDPInto(buf []byte, src, dst netip.Addr, h *UDP, payload []byte) ([]byte, error) {
	length := UDPHeaderLen + len(payload)
	if length > 0xffff {
		return nil, fmt.Errorf("packet: UDP datagram too large (%d bytes)", length)
	}
	b := sliceInto(buf, length)
	put16(b[0:], h.SrcPort)
	put16(b[2:], h.DstPort)
	put16(b[4:], uint16(length))
	copy(b[8:], payload)
	ck := udpChecksum(src, dst, b)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted as all ones if computed zero
	}
	put16(b[6:], ck)
	return b, nil
}

// ParseUDP decodes the UDP header at the front of b and returns the payload
// (aliasing b). Quoted datagrams inside ICMP errors may be truncated to the
// first eight octets; the returned payload is then empty.
func ParseUDP(b []byte) (*UDP, []byte, error) {
	h := new(UDP)
	payload, err := ParseUDPInto(b, h)
	if err != nil {
		return nil, nil, err
	}
	return h, payload, nil
}

// ParseUDPInto decodes the UDP header at the front of b into h, avoiding the
// heap allocation of ParseUDP. h is overwritten entirely; the returned
// payload aliases b.
func ParseUDPInto(b []byte, h *UDP) ([]byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	*h = UDP{
		SrcPort:  get16(b[0:]),
		DstPort:  get16(b[2:]),
		Length:   get16(b[4:]),
		Checksum: get16(b[6:]),
	}
	end := int(h.Length)
	if end < UDPHeaderLen || end > len(b) {
		end = len(b)
	}
	return b[UDPHeaderLen:end], nil
}

// udpChecksum computes the UDP checksum of the serialized datagram dgram
// (checksum field treated as zero) over the pseudo-header for src/dst.
func udpChecksum(src, dst netip.Addr, dgram []byte) uint16 {
	s := pseudoHeaderSum(src, dst, ProtoUDP, len(dgram))
	s += sum(dgram[:6])
	s += sum(dgram[8:])
	return finish(s)
}

// VerifyUDPChecksum reports whether the serialized datagram's checksum is
// valid for the given pseudo-header addresses. A wire checksum of zero means
// "no checksum" and verifies trivially.
func VerifyUDPChecksum(src, dst netip.Addr, dgram []byte) bool {
	if len(dgram) < UDPHeaderLen {
		return false
	}
	wire := get16(dgram[6:])
	if wire == 0 {
		return true
	}
	want := udpChecksum(src, dst, dgram)
	if want == 0 {
		want = 0xffff
	}
	return wire == want
}

// CraftUDPPayload returns a payload of length n (n >= 2) such that the UDP
// datagram with header h sent from src to dst has exactly the checksum
// target. This is Paris traceroute's UDP technique: the checksum becomes the
// varying probe identifier while the ports — the flow identifier — stay
// constant.
//
// target must be nonzero: a zero UDP checksum means "not computed" and would
// be rewritten to 0xffff on the wire, breaking probe matching.
func CraftUDPPayload(src, dst netip.Addr, h *UDP, target uint16, n int) ([]byte, error) {
	return CraftUDPPayloadInto(nil, src, dst, h, target, n)
}

// CraftUDPPayloadInto is CraftUDPPayload writing into buf when it has
// sufficient capacity (allocating otherwise). The returned payload aliases
// buf in the reuse case.
func CraftUDPPayloadInto(buf []byte, src, dst netip.Addr, h *UDP, target uint16, n int) ([]byte, error) {
	if target == 0 {
		return nil, fmt.Errorf("packet: cannot craft a zero UDP checksum (means no-checksum on the wire)")
	}
	if n < 2 {
		return nil, fmt.Errorf("packet: need at least 2 payload bytes to absorb the checksum, got %d", n)
	}
	length := UDPHeaderLen + n
	// Sum of pseudo-header plus header (checksum field zero) plus the n-2
	// trailing zero payload bytes; the first payload word x must satisfy
	// finish(s + x) == target, i.e. x = ^target - fold(s) in one's complement.
	var hdr [UDPHeaderLen]byte
	put16(hdr[0:], h.SrcPort)
	put16(hdr[2:], h.DstPort)
	put16(hdr[4:], uint16(length))
	s := pseudoHeaderSum(src, dst, ProtoUDP, length)
	s += sum(hdr[:6])
	folded := ^finish(s) // one's-complement fold of s
	x := onesSub(^target, folded)
	payload := sliceInto(buf, n)
	// The checksum math above assumes the n-2 trailing payload bytes are
	// zero; a recycled buf may carry stale bytes, so clear explicitly.
	clear(payload)
	payload[0] = byte(x >> 8)
	payload[1] = byte(x)
	return payload, nil
}
