package packet

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestUDPRoundTrip(t *testing.T) {
	h := &UDP{SrcPort: 12345, DstPort: 33435}
	payload := []byte("probe payload")
	dgram, err := MarshalUDP(srcA, dstA, h, payload)
	if err != nil {
		t.Fatalf("MarshalUDP: %v", err)
	}
	g, pl, err := ParseUDP(dgram)
	if err != nil {
		t.Fatalf("ParseUDP: %v", err)
	}
	if g.SrcPort != h.SrcPort || g.DstPort != h.DstPort {
		t.Errorf("ports = %d,%d want %d,%d", g.SrcPort, g.DstPort, h.SrcPort, h.DstPort)
	}
	if int(g.Length) != len(dgram) {
		t.Errorf("Length = %d, want %d", g.Length, len(dgram))
	}
	if string(pl) != string(payload) {
		t.Errorf("payload = %q", pl)
	}
	if !VerifyUDPChecksum(srcA, dstA, dgram) {
		t.Error("checksum does not verify")
	}
	// Corrupt a byte: must fail verification.
	dgram[9] ^= 0xff
	if VerifyUDPChecksum(srcA, dstA, dgram) {
		t.Error("corrupted datagram still verifies")
	}
}

func TestUDPChecksumZeroMeansNone(t *testing.T) {
	dgram, err := MarshalUDP(srcA, dstA, &UDP{SrcPort: 1, DstPort: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dgram[6], dgram[7] = 0, 0
	if !VerifyUDPChecksum(srcA, dstA, dgram) {
		t.Error("zero checksum (no-checksum) should verify trivially")
	}
}

func TestParseUDPTruncated(t *testing.T) {
	if _, _, err := ParseUDP(make([]byte, 7)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	// Quoted probes are clipped to eight octets: header only, no payload.
	dgram, _ := MarshalUDP(srcA, dstA, &UDP{SrcPort: 7, DstPort: 9}, []byte("xxxx"))
	h, pl, err := ParseUDP(dgram[:8])
	if err != nil {
		t.Fatalf("ParseUDP(8 octets): %v", err)
	}
	if h.SrcPort != 7 || h.DstPort != 9 || len(pl) != 0 {
		t.Errorf("got %+v payload %d bytes", h, len(pl))
	}
}

// TestCraftUDPPayloadExact is the core Paris traceroute property: for any
// flow and any nonzero target, the crafted payload makes the UDP checksum
// equal the target exactly, and the datagram still verifies.
func TestCraftUDPPayloadExact(t *testing.T) {
	f := func(sp, dp, target uint16, a, bb, c, d byte, extra uint8) bool {
		if target == 0 {
			target = 1
		}
		src := netip.AddrFrom4([4]byte{a, bb, c, d})
		dst := netip.AddrFrom4([4]byte{d, c, bb, a})
		h := &UDP{SrcPort: sp, DstPort: dp}
		n := 2 + int(extra)%30
		payload, err := CraftUDPPayload(src, dst, h, target, n)
		if err != nil {
			return false
		}
		dgram, err := MarshalUDP(src, dst, h, payload)
		if err != nil {
			return false
		}
		got := uint16(dgram[6])<<8 | uint16(dgram[7])
		return got == target && VerifyUDPChecksum(src, dst, dgram)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestCraftUDPPayloadErrors(t *testing.T) {
	h := &UDP{SrcPort: 1, DstPort: 2}
	if _, err := CraftUDPPayload(srcA, dstA, h, 0, 8); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := CraftUDPPayload(srcA, dstA, h, 7, 1); err == nil {
		t.Error("one-byte payload accepted")
	}
}

func TestCraftUDPPayloadDistinctTargetsDistinctPayloads(t *testing.T) {
	h := &UDP{SrcPort: 10007, DstPort: 20011}
	seen := map[uint16]bool{}
	for target := uint16(1); target <= 200; target++ {
		payload, err := CraftUDPPayload(srcA, dstA, h, target, 12)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		word := uint16(payload[0])<<8 | uint16(payload[1])
		if seen[word] {
			t.Fatalf("payload word %#04x reused at target %d", word, target)
		}
		seen[word] = true
	}
}

func BenchmarkCraftUDPPayload(b *testing.B) {
	h := &UDP{SrcPort: 10007, DstPort: 20011}
	for i := 0; i < b.N; i++ {
		if _, err := CraftUDPPayload(srcA, dstA, h, uint16(i%0xfffe)+1, 12); err != nil {
			b.Fatal(err)
		}
	}
}
