package pcap

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/atomicio"
)

// Capture is the live layer's capture sink: the transport and the mux feed
// it every injected probe and every received datagram (pre-dedup — junk,
// duplicates, and retransmits included), and Close installs the finished
// pcap file atomically. Records accumulate in memory and hit disk only at
// Close via atomicio.WriteFile (temp + fsync + rename), so there is no
// torn trailing record under any abort: whatever interruption ends the
// campaign — socket reopen, context cancellation, a trace error — the
// file on disk is either absent or a complete, readable capture of
// everything recorded up to Close. Safe for concurrent use: the mux's
// reader loop and its writer workers record without coordination.
type Capture struct {
	mu     sync.Mutex
	path   string
	buf    bytes.Buffer
	w      *Writer
	count  int
	closed bool
	err    error
}

// CreateCapture opens a capture sink that will install its pcap at path
// on Close. A valid empty capture (header only) is installed immediately:
// a bad -capture path fails before any probing, and a process killed
// before Close leaves a readable empty file rather than no file.
func CreateCapture(path string) (*Capture, error) {
	c := &Capture{path: path}
	w, err := NewWriter(&c.buf)
	if err != nil {
		return nil, err
	}
	c.w = w
	if err := atomicio.WriteFile(path, c.buf.Bytes()); err != nil {
		return nil, fmt.Errorf("pcap: capture path not writable: %w", err)
	}
	return c, nil
}

// CaptureOutbound records one injected probe. Implements live.CaptureSink.
func (c *Capture) CaptureOutbound(ts time.Time, pkt []byte) { c.record(ts, pkt) }

// CaptureInbound records one received datagram, before any demultiplexing
// or deduplication. Implements live.CaptureSink.
func (c *Capture) CaptureInbound(ts time.Time, pkt []byte) { c.record(ts, pkt) }

func (c *Capture) record(ts time.Time, pkt []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.err != nil {
		return
	}
	if err := c.w.WritePacket(ts, pkt); err != nil {
		c.err = err // in-memory buffer: only a too-large packet can fail
		return
	}
	c.count++
}

// Path returns the file the capture installs to.
func (c *Capture) Path() string { return c.path }

// Count reports how many records have been captured so far.
func (c *Capture) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Close flushes the capture to its path atomically. Idempotent; callers
// must stop the transports feeding the sink first (live's Close/trace
// completion), or late records are silently dropped.
func (c *Capture) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	c.closed = true
	if c.err != nil {
		return c.err
	}
	c.err = atomicio.WriteFile(c.path, c.buf.Bytes())
	return c.err
}
