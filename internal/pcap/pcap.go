// Package pcap reads and writes the classic pcap capture format
// (https://datatracker.ietf.org/doc/draft-ietf-opsawg-pcap/), the lingua
// franca of packet tooling: anything this package writes opens in
// tcpdump/tshark, and captures taken elsewhere replay through the tracer.
//
// The live layer's probes and responses are raw IPv4 datagrams (the
// transport injects full headers via IP_HDRINCL and receives full headers
// from the raw sockets), so captures use LINKTYPE_RAW — each record's
// bytes start at the IP version nibble, no link-layer framing. Writers
// always emit the nanosecond-resolution magic in little-endian byte order;
// readers accept all four dialects (micro/nano × little/big endian).
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

const (
	// MagicNano and MagicMicro are the file magics for nanosecond- and
	// microsecond-resolution captures, as written in the file's own byte
	// order (reading them "backwards" reveals a foreign-endian file).
	MagicNano  = 0xa1b23c4d
	MagicMicro = 0xa1b2c3d4

	// LinkTypeRaw is LINKTYPE_RAW: packet bytes begin at the IPv4/IPv6
	// header. The only link type this repo's captures use.
	LinkTypeRaw = 101

	// SnapLen is the capture length written into new files. Probes and
	// responses are single datagrams well under one MTU, so nothing is
	// ever truncated at this snap length.
	SnapLen = 65535

	fileHeaderLen   = 24
	recordHeaderLen = 16

	// maxRecordLen bounds a record's claimed capture length so corrupt or
	// adversarial headers cannot force huge allocations (fuzzed).
	maxRecordLen = 1 << 20
)

// Errors the reader distinguishes: a file that is not pcap at all versus
// one that ends mid-structure (a torn write).
var (
	ErrBadMagic  = errors.New("pcap: bad magic (not a pcap file)")
	ErrTruncated = errors.New("pcap: truncated file")
)

// Record is one captured packet: its capture timestamp and its bytes
// starting at the IP header (LINKTYPE_RAW).
type Record struct {
	TS   time.Time
	Data []byte
}

// Writer streams records to w in classic pcap format. Not safe for
// concurrent use; the Capture sink adds the locking the live taps need.
type Writer struct {
	w   io.Writer
	buf [recordHeaderLen]byte
}

// NewWriter writes the global header (nanosecond magic, version 2.4,
// LINKTYPE_RAW, little-endian) and returns a Writer for the records.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [fileHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], MagicNano)
	le.PutUint16(hdr[4:], 2) // version major
	le.PutUint16(hdr[6:], 4) // version minor
	// hdr[8:16]: thiszone and sigfigs, zero by convention.
	le.PutUint32(hdr[16:], SnapLen)
	le.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing file header: %w", err)
	}
	return &Writer{w: w}, nil
}

// WritePacket appends one record. The timestamp is split into Unix
// seconds plus nanoseconds; data is written in full (callers never exceed
// SnapLen, so incl_len == orig_len always).
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if len(data) > SnapLen {
		return fmt.Errorf("pcap: packet of %d bytes exceeds snap length %d", len(data), SnapLen)
	}
	le := binary.LittleEndian
	le.PutUint32(w.buf[0:], uint32(ts.Unix()))
	le.PutUint32(w.buf[4:], uint32(ts.Nanosecond()))
	le.PutUint32(w.buf[8:], uint32(len(data)))
	le.PutUint32(w.buf[12:], uint32(len(data)))
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	return nil
}

// Reader iterates the records of a pcap stream in capture order.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nano     bool
	snaplen  uint32
	linkType uint32
	buf      [recordHeaderLen]byte
}

// NewReader parses the global header, detecting byte order and timestamp
// resolution from the magic. It returns ErrBadMagic for non-pcap input and
// ErrTruncated for a header cut short.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		if n == 0 && err == io.EOF {
			return nil, fmt.Errorf("%w: empty input", ErrTruncated)
		}
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return nil, fmt.Errorf("%w: file header is %d bytes, need %d", ErrTruncated, n, fileHeaderLen)
		}
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	rd := &Reader{r: r}
	switch magic := binary.LittleEndian.Uint32(hdr[0:]); magic {
	case MagicNano:
		rd.order, rd.nano = binary.LittleEndian, true
	case MagicMicro:
		rd.order, rd.nano = binary.LittleEndian, false
	default:
		switch magic := binary.BigEndian.Uint32(hdr[0:]); magic {
		case MagicNano:
			rd.order, rd.nano = binary.BigEndian, true
		case MagicMicro:
			rd.order, rd.nano = binary.BigEndian, false
		default:
			return nil, fmt.Errorf("%w: 0x%08x", ErrBadMagic, magic)
		}
	}
	rd.snaplen = rd.order.Uint32(hdr[16:])
	rd.linkType = rd.order.Uint32(hdr[20:])
	return rd, nil
}

// LinkType returns the file's link type (LinkTypeRaw for this repo's own
// captures).
func (r *Reader) LinkType() uint32 { return r.linkType }

// Next returns the next record, io.EOF at a clean end of stream, or
// ErrTruncated if the stream ends inside a record. The returned Data is
// freshly allocated and owned by the caller.
func (r *Reader) Next() (Record, error) {
	if n, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if n == 0 && err == io.EOF {
			return Record{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return Record{}, fmt.Errorf("%w: record header cut at %d of %d bytes", ErrTruncated, n, recordHeaderLen)
		}
		return Record{}, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := r.buf[0:4]
	frac := r.order.Uint32(r.buf[4:])
	incl := r.order.Uint32(r.buf[8:])
	if incl > maxRecordLen {
		return Record{}, fmt.Errorf("pcap: record claims %d bytes captured (max %d): corrupt header", incl, maxRecordLen)
	}
	nsec := int64(frac)
	if r.nano {
		if frac >= 1e9 {
			return Record{}, fmt.Errorf("pcap: record timestamp has %d nanoseconds: corrupt header", frac)
		}
	} else {
		if frac >= 1e6 {
			return Record{}, fmt.Errorf("pcap: record timestamp has %d microseconds: corrupt header", frac)
		}
		nsec *= 1000
	}
	data := make([]byte, int(incl))
	if n, err := io.ReadFull(r.r, data); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return Record{}, fmt.Errorf("%w: record data cut at %d of %d bytes", ErrTruncated, n, incl)
		}
		return Record{}, fmt.Errorf("pcap: reading record data: %w", err)
	}
	return Record{
		TS:   time.Unix(int64(r.order.Uint32(sec)), nsec),
		Data: data,
	}, nil
}

// ReadAll drains a stream into a slice of records.
func ReadAll(r io.Reader) ([]Record, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// ReadFile reads every record of the pcap file at path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}
