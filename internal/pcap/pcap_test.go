package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// samplePackets are small but realistic LINKTYPE_RAW payloads: each starts
// at the IPv4 version nibble, like every record the live taps produce.
func samplePackets() [][]byte {
	return [][]byte{
		{0x45, 0x00, 0x00, 0x1c, 0x00, 0x01, 0x00, 0x00, 0x01, 0x11},
		{0x45, 0x00, 0x00, 0x38, 0x12, 0x34, 0x00, 0x00, 0x40, 0x01, 0xde, 0xad},
		{0x46},
		{},
	}
}

// writeSample builds an in-memory capture with known timestamps.
func writeSample(t *testing.T) ([]byte, []Record) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 123456789)
	var want []Record
	for i, pkt := range samplePackets() {
		ts := base.Add(time.Duration(i) * 1500 * time.Nanosecond)
		if err := w.WritePacket(ts, pkt); err != nil {
			t.Fatalf("WritePacket %d: %v", i, err)
		}
		want = append(want, Record{TS: ts, Data: append([]byte(nil), pkt...)})
	}
	return buf.Bytes(), want
}

func TestRoundTrip(t *testing.T) {
	raw, want := writeSample(t)
	got, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].TS.Equal(want[i].TS) {
			t.Errorf("record %d: ts %v, want %v (nanosecond magic must preserve full resolution)",
				i, got[i].TS, want[i].TS)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("record %d: data %x, want %x", i, got[i].Data, want[i].Data)
		}
	}
}

// TestGoldenBytes pins the exact on-disk encoding: little-endian nanosecond
// magic, version 2.4, LINKTYPE_RAW, and the 16-byte record header layout.
// If this test breaks, existing corpus captures become unreadable.
func TestGoldenBytes(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Unix(1700000000, 123456789), []byte{0x45, 0x00, 0x00, 0x04}); err != nil {
		t.Fatal(err)
	}
	golden := []byte{
		// file header
		0x4d, 0x3c, 0xb2, 0xa1, // nanosecond magic, little-endian
		0x02, 0x00, 0x04, 0x00, // version 2.4
		0x00, 0x00, 0x00, 0x00, // thiszone
		0x00, 0x00, 0x00, 0x00, // sigfigs
		0xff, 0xff, 0x00, 0x00, // snaplen 65535
		0x65, 0x00, 0x00, 0x00, // LINKTYPE_RAW = 101
		// record header
		0x00, 0xf1, 0x53, 0x65, // ts_sec 1700000000
		0x15, 0xcd, 0x5b, 0x07, // ts_nsec 123456789
		0x04, 0x00, 0x00, 0x00, // incl_len
		0x04, 0x00, 0x00, 0x00, // orig_len
		// record data
		0x45, 0x00, 0x00, 0x04,
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("encoding drifted from the pinned format\ngot:  %x\nwant: %x", buf.Bytes(), golden)
	}
}

func TestEmptyCaptureIsValid(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("header-only capture must read cleanly: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records from an empty capture", len(recs))
	}
}

func TestBadMagic(t *testing.T) {
	junk := make([]byte, fileHeaderLen)
	for i := range junk {
		junk[i] = 0xee
	}
	if _, err := NewReader(bytes.NewReader(junk)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestTruncation(t *testing.T) {
	raw, want := writeSample(t)
	cuts := []struct {
		name string
		at   int
	}{
		{"empty-input", 0},
		{"mid-file-header", 10},
		{"mid-record-header", fileHeaderLen + 5},
		{"mid-record-data", fileHeaderLen + recordHeaderLen + len(want[0].Data)/2},
		{"second-record-header", fileHeaderLen + recordHeaderLen + len(want[0].Data) + 3},
	}
	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			recs, err := ReadAll(bytes.NewReader(raw[:c.at]))
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut at %d: got %v, want ErrTruncated", c.at, err)
			}
			// Records fully present before the cut still come back: a torn
			// capture is readable up to the tear.
			if c.at >= fileHeaderLen+recordHeaderLen+len(want[0].Data)+1 && len(recs) == 0 {
				t.Fatalf("cut at %d: complete first record was not returned", c.at)
			}
		})
	}
}

// TestForeignDialects hand-builds the three dialects the writer never emits
// (big-endian nano, and microsecond resolution in both orders) and checks
// the reader normalizes all of them.
func TestForeignDialects(t *testing.T) {
	build := func(order binary.ByteOrder, magic, frac uint32) []byte {
		var buf bytes.Buffer
		hdr := make([]byte, fileHeaderLen)
		order.PutUint32(hdr[0:], magic)
		order.PutUint16(hdr[4:], 2)
		order.PutUint16(hdr[6:], 4)
		order.PutUint32(hdr[16:], SnapLen)
		order.PutUint32(hdr[20:], LinkTypeRaw)
		buf.Write(hdr)
		rec := make([]byte, recordHeaderLen)
		order.PutUint32(rec[0:], 1)    // ts_sec
		order.PutUint32(rec[4:], frac) // ts frac
		order.PutUint32(rec[8:], 2)    // incl_len
		order.PutUint32(rec[12:], 2)   // orig_len
		buf.Write(rec)
		buf.Write([]byte{0xde, 0xad})
		return buf.Bytes()
	}
	cases := []struct {
		name   string
		raw    []byte
		wantTS time.Time
	}{
		{"big-endian-nano", build(binary.BigEndian, MagicNano, 123456789), time.Unix(1, 123456789)},
		{"little-endian-micro", build(binary.LittleEndian, MagicMicro, 500), time.Unix(1, 500000)},
		{"big-endian-micro", build(binary.BigEndian, MagicMicro, 999999), time.Unix(1, 999999000)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rd, err := NewReader(bytes.NewReader(c.raw))
			if err != nil {
				t.Fatal(err)
			}
			if rd.LinkType() != LinkTypeRaw {
				t.Fatalf("link type %d, want %d", rd.LinkType(), LinkTypeRaw)
			}
			rec, err := rd.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !rec.TS.Equal(c.wantTS) {
				t.Errorf("ts %v, want %v", rec.TS, c.wantTS)
			}
			if !bytes.Equal(rec.Data, []byte{0xde, 0xad}) {
				t.Errorf("data %x", rec.Data)
			}
			if _, err := rd.Next(); err != io.EOF {
				t.Errorf("after last record: %v, want io.EOF", err)
			}
		})
	}
}

// TestCorruptHeadersRejected checks the reader refuses impossible record
// headers (out-of-range timestamp fractions, absurd capture lengths)
// instead of allocating or misparsing.
func TestCorruptHeadersRejected(t *testing.T) {
	forge := func(frac, incl uint32) []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		_ = w.WritePacket(time.Unix(1, 0), []byte{0x45})
		raw := buf.Bytes()
		binary.LittleEndian.PutUint32(raw[fileHeaderLen+4:], frac)
		binary.LittleEndian.PutUint32(raw[fileHeaderLen+8:], incl)
		return raw
	}
	if _, err := ReadAll(bytes.NewReader(forge(2_000_000_000, 1))); err == nil {
		t.Error("2e9 nanoseconds accepted")
	}
	if _, err := ReadAll(bytes.NewReader(forge(0, maxRecordLen+1))); err == nil {
		t.Error("oversized incl_len accepted")
	}
}

func TestWriterRejectsOversizedPacket(t *testing.T) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Unix(1, 0), make([]byte, SnapLen+1)); err == nil {
		t.Fatal("packet above the snap length accepted")
	}
}

func TestCaptureSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.pcap")
	c, err := CreateCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	// The empty capture is installed immediately — a process killed before
	// Close leaves a readable file, and a bad path fails before probing.
	recs, err := ReadFile(path)
	if err != nil || len(recs) != 0 {
		t.Fatalf("freshly created capture: recs=%d err=%v, want an empty valid pcap", len(recs), err)
	}

	probe := []byte{0x45, 0x00, 0x00, 0x1c, 0x00, 0x01}
	resp := []byte{0x45, 0x00, 0x00, 0x38, 0xaa, 0xbb}
	t0 := time.Unix(1700000000, 111)
	c.CaptureOutbound(t0, probe)
	c.CaptureInbound(t0.Add(3*time.Millisecond), resp)
	if c.Count() != 2 {
		t.Fatalf("Count = %d, want 2", c.Count())
	}
	// Nothing beyond the header hits disk before Close.
	if recs, _ := ReadFile(path); len(recs) != 0 {
		t.Fatalf("%d records on disk before Close", len(recs))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Records after Close are dropped, not appended to an installed file.
	c.CaptureInbound(t0.Add(time.Second), resp)
	if c.Count() != 2 {
		t.Fatalf("Count grew to %d after Close", c.Count())
	}

	recs, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if !bytes.Equal(recs[0].Data, probe) || !bytes.Equal(recs[1].Data, resp) {
		t.Fatal("record bytes do not match the captured packets")
	}
	if got := recs[1].TS.Sub(recs[0].TS); got != 3*time.Millisecond {
		t.Fatalf("timestamp delta %v, want 3ms", got)
	}
	// The atomic install leaves no temp droppings next to the capture.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("capture dir holds %d entries, want just the pcap", len(entries))
	}
}

func TestCreateCaptureBadPath(t *testing.T) {
	if _, err := CreateCapture(filepath.Join(t.TempDir(), "no", "such", "dir", "x.pcap")); err == nil {
		t.Fatal("unwritable capture path accepted")
	}
}

// FuzzReadPcap asserts the reader never panics and never over-allocates on
// arbitrary input — capture files cross trust boundaries (anyone can hand
// one to -replay).
func FuzzReadPcap(f *testing.F) {
	raw, _ := func() ([]byte, []Record) {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		_ = w.WritePacket(time.Unix(1700000000, 42), []byte{0x45, 0x00, 0x00, 0x1c})
		_ = w.WritePacket(time.Unix(1700000001, 7), []byte{0x45, 0x00})
		return buf.Bytes(), nil
	}()
	f.Add(raw)
	for _, cut := range []int{0, 3, fileHeaderLen, fileHeaderLen + 9, len(raw) - 1} {
		f.Add(raw[:cut])
	}
	junk := append([]byte(nil), raw...)
	junk[0] ^= 0xff
	f.Add(junk)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		for _, r := range recs {
			if len(r.Data) > maxRecordLen {
				t.Fatalf("record of %d bytes escaped the allocation bound", len(r.Data))
			}
		}
		if err == nil && len(data) < fileHeaderLen {
			t.Fatalf("accepted a %d-byte input as a pcap file", len(data))
		}
	})
}
