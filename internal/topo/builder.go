package topo

import (
	"fmt"
	"net/netip"

	"repro/internal/flow"
	"repro/internal/netsim"
)

// addrPool holds the allocation counters a Builder draws addresses and
// router names from. Sharded generation hands one pool to several builders
// (one per shard network) so a destination keeps the same address no matter
// how many shards the topology is partitioned into; a pool copy can also be
// used to replay an allocation sequence, which is how the per-shard spine
// replicas end up with identical interface addresses.
type addrPool struct {
	pubCounter  uint32
	privCounter uint32
	hostCounter uint32
	routerSeq   int
}

// newAddrPool returns a pool with the conventional starting points.
func newAddrPool() *addrPool {
	// Skip 10.0.0.0/24: the source and gateway live there.
	return &addrPool{pubCounter: 255}
}

// Builder assembles a network incrementally, allocating addresses from
// disjoint pools: 10/8 for public router interfaces, 192.168/16 for
// NAT-inside interfaces, 172.16/12 for destination hosts.
type Builder struct {
	Net *netsim.Network

	// Source is the measurement source address (10.0.0.1).
	Source netip.Addr
	// Gateway is the source's first-hop router.
	Gateway *netsim.Router

	pool *addrPool
}

// NewBuilder creates a network seeded for reproducibility, with the
// measurement source and its gateway router already wired.
func NewBuilder(seed int64) *Builder {
	return newPooledBuilder(seed, newAddrPool())
}

// newPooledBuilder is NewBuilder drawing addresses from a caller-supplied
// (possibly shared) pool.
func newPooledBuilder(seed int64, pool *addrPool) *Builder {
	b := &Builder{
		Net:    netsim.New(seed),
		Source: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		pool:   pool,
	}
	gwIf := netip.AddrFrom4([4]byte{10, 0, 0, 254})
	b.Gateway = netsim.NewRouter("gw", gwIf)
	b.Net.AddRouter(b.Gateway)
	b.Net.SetSource(b.Source, gwIf)
	// Return traffic to the source is delivered directly by the gateway.
	b.Gateway.AddRoute(netsim.Route{
		Prefix: netip.PrefixFrom(b.Source, 32),
		Hops:   []netsim.NextHop{{Via: b.Source}},
	})
	return b
}

// nextPub allocates the next public interface address from 10.0.1.0 up.
func (b *Builder) nextPub() netip.Addr {
	b.pool.pubCounter++
	c := b.pool.pubCounter
	if c >= 1<<24-2 {
		panic("topo: public address pool exhausted")
	}
	return netip.AddrFrom4([4]byte{10, byte(c >> 16), byte(c >> 8 & 0xff), byte(c & 0xff)})
}

// nextPriv allocates the next NAT-inside interface address from 192.168/16.
func (b *Builder) nextPriv() netip.Addr {
	b.pool.privCounter++
	c := b.pool.privCounter
	if c >= 1<<16-2 {
		panic("topo: private address pool exhausted")
	}
	return netip.AddrFrom4([4]byte{192, 168, byte(c >> 8), byte(c & 0xff)})
}

// PrivatePrefix is the pool NAT-inside interfaces and hosts draw from; NAT
// routers use it as their Inside prefix.
var PrivatePrefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 168, 0, 0}), 16)

// nextHostAddr allocates the next destination host address from 172.16/12.
func (b *Builder) nextHostAddr() netip.Addr {
	b.pool.hostCounter++
	c := b.pool.hostCounter
	if c >= 1<<20-2 {
		panic("topo: host address pool exhausted")
	}
	return netip.AddrFrom4([4]byte{172, byte(16 + c>>16), byte(c >> 8 & 0xff), byte(c & 0xff)})
}

// NewRouter creates and registers a router with no interfaces yet; Link
// grows it one adjacency at a time.
func (b *Builder) NewRouter(name string) *netsim.Router {
	b.pool.routerSeq++
	if name == "" {
		name = fmt.Sprintf("r%d", b.pool.routerSeq)
	}
	r := netsim.NewRouter(name)
	b.Net.AddRouter(r)
	return r
}

// Link creates a point-to-point adjacency between parent and child,
// allocating one public interface address on each side. The child receives a
// default route back through the parent (return-path routing), unless it
// already has one. It returns the two new interface addresses; childIf is
// the address the child will answer probes from (the "A0" of the paper's
// figures).
func (b *Builder) Link(parent, child *netsim.Router) (parentIf, childIf netip.Addr) {
	return b.link(parent, child, false)
}

// LinkPrivate is Link with addresses drawn from the NAT-inside pool.
func (b *Builder) LinkPrivate(parent, child *netsim.Router) (parentIf, childIf netip.Addr) {
	return b.link(parent, child, true)
}

func (b *Builder) link(parent, child *netsim.Router, private bool) (parentIf, childIf netip.Addr) {
	alloc := b.nextPub
	if private {
		alloc = b.nextPriv
	}
	parentIf = alloc()
	b.Net.AddIface(parent, parentIf)
	if child.NumIfaces() > 0 {
		// Converging links reuse the child's canonical address so that
		// responses carry one identity regardless of arrival direction —
		// the "both responses are generated from the same interface, E0"
		// assumption of Fig. 3.
		childIf = child.Iface(0)
	} else {
		childIf = alloc()
		b.Net.AddIface(child, childIf)
	}
	if !hasDefault(child) {
		child.AddRoute(netsim.Route{
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{}), 0),
			Hops:   []netsim.NextHop{{Via: parentIf}},
		})
	}
	return parentIf, childIf
}

func hasDefault(r *netsim.Router) bool {
	for _, rt := range r.Routes() {
		if rt.Prefix.Bits() == 0 {
			return true
		}
	}
	return false
}

// AttachHost creates a destination host on router r, allocating the host
// address (from the 172.16/12 pool, or the NAT-inside pool when private),
// an attachment interface on r, and the /32 route on r toward the host.
func (b *Builder) AttachHost(r *netsim.Router, name string, private bool) *netsim.Host {
	var addr, rIf netip.Addr
	if private {
		addr = b.nextPriv()
		rIf = b.nextPriv()
	} else {
		addr = b.nextHostAddr()
		rIf = b.nextPub()
	}
	if name == "" {
		name = fmt.Sprintf("h%d", b.pool.hostCounter)
	}
	h := netsim.NewHost(name, addr)
	b.Net.AddIface(r, rIf)
	b.Net.AttachHost(h, rIf)
	r.AddRoute(netsim.Route{
		Prefix: netip.PrefixFrom(addr, 32),
		Hops:   []netsim.NextHop{{Via: addr}},
	})
	return h
}

// InstallDestRoute installs /32 routes toward dest along a chain of routers:
// path[i] forwards to the interface of path[i+1] created by their Link; the
// caller supplies the hop interface for each step. Most callers use Chain or
// the generator instead.
func (b *Builder) InstallDestRoute(dest netip.Addr, steps []RouteStep) {
	for _, s := range steps {
		s.On.AddRoute(netsim.Route{
			Prefix:   netip.PrefixFrom(dest, 32),
			Hops:     s.Via,
			Balance:  s.Balance,
			FlowOpts: s.FlowOpts,
		})
	}
}

// RouteStep is one step of a destination route: router On forwards matching
// packets to one of Via (balanced by Balance when several).
type RouteStep struct {
	On       *netsim.Router
	Via      []netsim.NextHop
	Balance  netsim.Policy
	FlowOpts flow.Options
}

// Chain creates n new routers linked in a line starting from `from`, and
// returns them. Each gets a default route back up the chain.
func (b *Builder) Chain(from *netsim.Router, n int) []*netsim.Router {
	out := make([]*netsim.Router, 0, n)
	cur := from
	for i := 0; i < n; i++ {
		r := b.NewRouter("")
		b.Link(cur, r)
		out = append(out, r)
		cur = r
	}
	return out
}
