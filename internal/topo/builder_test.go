package topo

import (
	"net/netip"
	"testing"

	"repro/internal/flow"
	"repro/internal/netsim"
	"repro/internal/tracer"
)

func TestNewBuilderWiring(t *testing.T) {
	b := NewBuilder(1)
	if !b.Source.IsValid() || b.Gateway == nil {
		t.Fatal("builder missing source or gateway")
	}
	if b.Net.Source() != b.Source {
		t.Error("network source not registered")
	}
	// The gateway must deliver return traffic to the source.
	found := false
	for _, rt := range b.Gateway.Routes() {
		if rt.Prefix == netip.PrefixFrom(b.Source, 32) {
			found = true
		}
	}
	if !found {
		t.Error("gateway lacks the source return route")
	}
}

func TestAddressPoolsDisjoint(t *testing.T) {
	b := NewBuilder(1)
	r1 := b.NewRouter("")
	r2 := b.NewRouter("")
	pubA, pubB := b.Link(b.Gateway, r1)
	privA, privB := b.LinkPrivate(r1, r2)
	host := b.AttachHost(r2, "", false)
	for _, a := range []netip.Addr{pubA, pubB} {
		if !netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, 0, 0}), 8).Contains(a) {
			t.Errorf("public address %v outside 10/8", a)
		}
	}
	for _, a := range []netip.Addr{privA, privB} {
		if !PrivatePrefix.Contains(a) {
			t.Errorf("private address %v outside %v", a, PrivatePrefix)
		}
	}
	if !netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, 0, 0}), 12).Contains(host.Addr) {
		t.Errorf("host address %v outside 172.16/12", host.Addr)
	}
	// No collision with the reserved source block.
	if pubA == b.Source || pubB == b.Source {
		t.Error("allocator returned the source address")
	}
}

func TestLinkReusesCanonicalChildIface(t *testing.T) {
	b := NewBuilder(1)
	parent1 := b.NewRouter("")
	parent2 := b.NewRouter("")
	b.Link(b.Gateway, parent1)
	b.Link(b.Gateway, parent2)
	child := b.NewRouter("")
	_, if1 := b.Link(parent1, child)
	_, if2 := b.Link(parent2, child)
	if if1 != if2 {
		t.Errorf("converging links gave different child addresses: %v vs %v", if1, if2)
	}
	if child.NumIfaces() != 1 {
		t.Errorf("child has %d interfaces, want 1 canonical", child.NumIfaces())
	}
}

func TestLinkDefaultRouteOnlyOnce(t *testing.T) {
	b := NewBuilder(1)
	r := b.NewRouter("")
	b.Link(b.Gateway, r)
	other := b.NewRouter("")
	b.Link(b.Gateway, other)
	b.Link(other, r) // second parent: must not overwrite the default
	defaults := 0
	for _, rt := range r.Routes() {
		if rt.Prefix.Bits() == 0 {
			defaults++
		}
	}
	if defaults != 1 {
		t.Errorf("child has %d default routes, want 1", defaults)
	}
}

func TestChainLengthsAndOrder(t *testing.T) {
	b := NewBuilder(1)
	chain := b.Chain(b.Gateway, 5)
	if len(chain) != 5 {
		t.Fatalf("chain length %d", len(chain))
	}
	// Each chain router responds at the expected hop when routed.
	dest := b.AttachHost(chain[4], "d", false)
	route(b.Gateway, dest.Addr, 0, flowOptsZero(), chain[0].Iface(0))
	for i := 0; i+1 < len(chain); i++ {
		route(chain[i], dest.Addr, 0, flowOptsZero(), chain[i+1].Iface(0))
	}
	tp := netsim.NewTransport(b.Net)
	rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 10}).Trace(dest.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Hops) != 7 { // gw + 5 chain + host
		t.Fatalf("hops = %d, want 7: %v", len(rt.Hops), rt.Addresses())
	}
	for i, r := range chain {
		if rt.Hops[i+1].Addr != r.Iface(0) {
			t.Errorf("hop %d = %v, want %v", i+2, rt.Hops[i+1].Addr, r.Iface(0))
		}
	}
	if !rt.Reached() {
		t.Errorf("halt = %v", rt.Halt)
	}
}

func TestAttachHostPrivate(t *testing.T) {
	b := NewBuilder(1)
	r := b.NewRouter("")
	b.Link(b.Gateway, r)
	h := b.AttachHost(r, "priv", true)
	if !PrivatePrefix.Contains(h.Addr) {
		t.Errorf("private host at %v", h.Addr)
	}
	// The attachment route must exist on r.
	found := false
	for _, rt := range r.Routes() {
		if rt.Prefix == netip.PrefixFrom(h.Addr, 32) {
			found = true
		}
	}
	if !found {
		t.Error("attachment route missing")
	}
}

// flowOptsZero returns the zero flow options (default router behaviour).
func flowOptsZero() flow.Options { return flow.Options{} }
