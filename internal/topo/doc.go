// Package topo constructs simulated topologies: a fluent builder over
// netsim, exact presets for every figure in the paper (Figs. 1, 3, 4, 5, 6),
// and a parameterized random generator for the Section 4 measurement
// campaign.
//
// # Determinism and concurrency contract
//
// Generate is a pure function of its GenConfig: the same config yields
// byte-identical topologies — router and interface addresses, routes,
// load-balancer placement, destination lists, and ground truth — on every
// run. All randomness flows from GenConfig.Seed through dedicated
// sub-streams, so enabling one feature never perturbs the draws of another.
//
// Sharding (GenConfig.Shards) splits the destination space across replica
// networks for parallel campaigns without changing what is measured: spine
// routers are replicated with identical interface addresses and pod
// interfaces are allocated from a shared pool in pod order, so every
// (link, address) a probe can observe is the same at any shard count. The
// campaign-level invariance tests pin that statistics are byte-identical
// across shard counts.
//
// Scenario.RoundStart is the between-rounds hook: it advances the
// virtual-clock round (netsim.Network.SetVirtualRound) on every shard, then
// draws the inter-round routing dynamics — router flaps per FlapProbability
// and loop toggles per LoopProbability — from a dedicated seeded stream. It
// runs on the campaign goroutine between round barriers, never concurrently
// with probing. The virtual-clock knobs (Delay, Load, Churn, DynamicsSeed)
// install a netsim.Dynamics with one shared seed on all shards, so dynamics
// draws — keyed by (seed, link, virtual time) — agree across shardings.
//
// The one sanctioned departure from reproducibility is FlipPerProbe, whose
// draws interleave with probe schedule; byte-reproducible campaigns leave
// it zero (see the measure package's determinism contract).
package topo
