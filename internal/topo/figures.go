package topo

import (
	"net/netip"

	"repro/internal/flow"
	"repro/internal/netsim"
)

// route is a shorthand for installing a /32 destination route.
func route(r *netsim.Router, dest netip.Addr, policy netsim.Policy, opts flow.Options, vias ...netip.Addr) {
	hops := make([]netsim.NextHop, len(vias))
	for i, v := range vias {
		hops[i] = netsim.NextHop{Via: v}
	}
	r.AddRoute(netsim.Route{
		Prefix:   netip.PrefixFrom(dest, 32),
		Hops:     hops,
		Balance:  policy,
		FlowOpts: opts,
	})
}

// Figure1 is the paper's Fig. 1 topology: a load balancer L at hop 6
// splitting over two parallel two-router branches (A→C above, B→D below)
// that converge at E. Classic traceroute through it misses nodes and infers
// false links such as (A0, D0).
type Figure1 struct {
	Net  *netsim.Network
	Dest *netsim.Host
	// Canonical (responding) addresses of the named routers.
	L, A, B, C, D, E netip.Addr
}

// BuildFigure1 constructs Fig. 1 with the given balancing policy at L
// (PerFlow for the flow-identifier anomalies, PerPacket for random
// spreading as in the 0.25/0.9375 probability analysis).
func BuildFigure1(seed int64, policy netsim.Policy) *Figure1 {
	b := NewBuilder(seed)
	chain := b.Chain(b.Gateway, 4) // hops 2..5
	l := b.NewRouter("L")
	b.Link(chain[3], l) // hop 6
	a := b.NewRouter("A")
	bb := b.NewRouter("B")
	b.Link(l, a)
	b.Link(l, bb) // hop 7
	c := b.NewRouter("C")
	d := b.NewRouter("D")
	b.Link(a, c)
	b.Link(bb, d) // hop 8
	e := b.NewRouter("E")
	b.Link(c, e)
	b.Link(d, e) // hop 9: same canonical address E0
	dest := b.AttachHost(e, "dest", false)

	route(b.Gateway, dest.Addr, 0, flow.Options{}, chain[0].Iface(0))
	for i := 0; i < 3; i++ {
		route(chain[i], dest.Addr, 0, flow.Options{}, chain[i+1].Iface(0))
	}
	route(chain[3], dest.Addr, 0, flow.Options{}, l.Iface(0))
	route(l, dest.Addr, policy, flow.Options{}, a.Iface(0), bb.Iface(0))
	route(a, dest.Addr, 0, flow.Options{}, c.Iface(0))
	route(bb, dest.Addr, 0, flow.Options{}, d.Iface(0))
	route(c, dest.Addr, 0, flow.Options{}, e.Iface(0))
	route(d, dest.Addr, 0, flow.Options{}, e.Iface(0))

	return &Figure1{
		Net: b.Net, Dest: dest,
		L: l.Iface(0), A: a.Iface(0), B: bb.Iface(0),
		C: c.Iface(0), D: d.Iface(0), E: e.Iface(0),
	}
}

// Figure3 is the paper's Fig. 3: per-flow load balancing over branches of
// unequal length (A above, B→C below) converging on E, producing a loop
// (E0, E0) in classic traceroute output when consecutive probes straddle
// the branches.
type Figure3 struct {
	Net        *netsim.Network
	Dest       *netsim.Host
	L, A, B, C netip.Addr
	E          netip.Addr
}

// BuildFigure3 constructs Fig. 3 with per-flow balancing at L.
func BuildFigure3(seed int64) *Figure3 {
	return buildFig3(seed, netsim.PerFlow)
}

// BuildFigure3PerPacket constructs the same topology with a per-packet
// balancer, for the residual-cause experiments.
func BuildFigure3PerPacket(seed int64) *Figure3 {
	return buildFig3(seed, netsim.PerPacket)
}

func buildFig3(seed int64, policy netsim.Policy) *Figure3 {
	b := NewBuilder(seed)
	chain := b.Chain(b.Gateway, 4) // hops 2..5
	l := b.NewRouter("L")
	b.Link(chain[3], l) // hop 6
	a := b.NewRouter("A")
	bb := b.NewRouter("B")
	b.Link(l, a)
	b.Link(l, bb) // hop 7
	c := b.NewRouter("C")
	b.Link(bb, c) // hop 8 (long branch)
	e := b.NewRouter("E")
	b.Link(a, e) // hop 8 (short branch)
	b.Link(c, e) // hop 9 (long branch), same E0
	dest := b.AttachHost(e, "dest", false)

	route(b.Gateway, dest.Addr, 0, flow.Options{}, chain[0].Iface(0))
	for i := 0; i < 3; i++ {
		route(chain[i], dest.Addr, 0, flow.Options{}, chain[i+1].Iface(0))
	}
	route(chain[3], dest.Addr, 0, flow.Options{}, l.Iface(0))
	route(l, dest.Addr, policy, flow.Options{}, a.Iface(0), bb.Iface(0))
	route(a, dest.Addr, 0, flow.Options{}, e.Iface(0))
	route(bb, dest.Addr, 0, flow.Options{}, c.Iface(0))
	route(c, dest.Addr, 0, flow.Options{}, e.Iface(0))

	return &Figure3{
		Net: b.Net, Dest: dest,
		L: l.Iface(0), A: a.Iface(0), B: bb.Iface(0), C: c.Iface(0), E: e.Iface(0),
	}
}

// Figure4 is the paper's Fig. 4: router F forwards packets with TTL zero
// instead of discarding them, so router A answers two consecutive hops —
// the first with a quoted probe TTL of zero.
type Figure4 struct {
	Net     *netsim.Network
	Dest    *netsim.Host
	F, A, B netip.Addr
	// FHop is the hop number at which F sits (probes with this TTL are
	// zero-TTL-forwarded to A).
	FHop int
}

// BuildFigure4 constructs Fig. 4.
func BuildFigure4(seed int64) *Figure4 {
	b := NewBuilder(seed)
	chain := b.Chain(b.Gateway, 5) // hops 2..6
	f := b.NewRouter("F")
	b.Link(chain[4], f) // hop 7
	f.SetFaults(netsim.Faults{ZeroTTLForward: true})
	a := b.NewRouter("A")
	b.Link(f, a) // hop 8
	bb := b.NewRouter("B")
	b.Link(a, bb) // hop 9
	dest := b.AttachHost(bb, "dest", false)

	route(b.Gateway, dest.Addr, 0, flow.Options{}, chain[0].Iface(0))
	for i := 0; i < 4; i++ {
		route(chain[i], dest.Addr, 0, flow.Options{}, chain[i+1].Iface(0))
	}
	route(chain[4], dest.Addr, 0, flow.Options{}, f.Iface(0))
	route(f, dest.Addr, 0, flow.Options{}, a.Iface(0))
	route(a, dest.Addr, 0, flow.Options{}, bb.Iface(0))

	return &Figure4{
		Net: b.Net, Dest: dest,
		F: f.Iface(0), A: a.Iface(0), B: bb.Iface(0), FHop: 7,
	}
}

// Figure5 is the paper's Fig. 5: a NAT box N rewrites the Source Address of
// every ICMP message originating in its subnetwork, so routers B and C (and
// the destination) all appear as N0. The response TTL decreases hop over
// hop — the telltale the classifier uses.
type Figure5 struct {
	Net     *netsim.Network
	Dest    *netsim.Host
	A, N    netip.Addr
	B, C    netip.Addr // true (private) addresses, never seen by the tracer
	NATHops int        // number of consecutive hops answering as N0 (N, B, C, dest)
}

// BuildFigure5 constructs Fig. 5.
func BuildFigure5(seed int64) *Figure5 {
	b := NewBuilder(seed)
	chain := b.Chain(b.Gateway, 4) // hops 2..5
	a := b.NewRouter("A")
	b.Link(chain[3], a) // hop 6
	n := b.NewRouter("N")
	b.Link(a, n) // hop 7: N0 (public)
	bb := b.NewRouter("B")
	b.LinkPrivate(n, bb) // hop 8 (private)
	c := b.NewRouter("C")
	b.LinkPrivate(bb, c) // hop 9 (private)
	n.SetNAT(netsim.NAT{Public: n.Iface(0), Inside: PrivatePrefix})
	dest := b.AttachHost(c, "dest", true) // hop 10, private host

	route(b.Gateway, dest.Addr, 0, flow.Options{}, chain[0].Iface(0))
	for i := 0; i < 3; i++ {
		route(chain[i], dest.Addr, 0, flow.Options{}, chain[i+1].Iface(0))
	}
	route(chain[3], dest.Addr, 0, flow.Options{}, a.Iface(0))
	route(a, dest.Addr, 0, flow.Options{}, n.Iface(0))
	route(n, dest.Addr, 0, flow.Options{}, bb.Iface(0))
	route(bb, dest.Addr, 0, flow.Options{}, c.Iface(0))

	return &Figure5{
		Net: b.Net, Dest: dest,
		A: a.Iface(0), N: n.Iface(0), B: bb.Iface(0), C: c.Iface(0),
		NATHops: 4,
	}
}

// Figure6 is the paper's Fig. 6: a three-way load balancer L over branches
// A→D, B→E, C→F converging at G. Repeated classic traceroutes toward the
// destination yield per-destination graphs containing diamonds such as
// (L0, D0) and (A0, G0), while (C0, G0) has only one interface between its
// endpoints in the drawn outcome.
type Figure6 struct {
	Net              *netsim.Network
	Dest             *netsim.Host
	L, A, B, C       netip.Addr
	D, E, F, G       netip.Addr
	BranchHeads      []netip.Addr // A0, B0, C0
	BranchMids       []netip.Addr // D0, E0, F0
	ConvergencePoint netip.Addr   // G0
}

// BuildFigure6 constructs Fig. 6 with the given policy at L.
func BuildFigure6(seed int64, policy netsim.Policy) *Figure6 {
	b := NewBuilder(seed)
	chain := b.Chain(b.Gateway, 4) // hops 2..5
	l := b.NewRouter("L")
	b.Link(chain[3], l) // hop 6
	a := b.NewRouter("A")
	bb := b.NewRouter("B")
	c := b.NewRouter("C")
	b.Link(l, a)
	b.Link(l, bb)
	b.Link(l, c) // hop 7
	d := b.NewRouter("D")
	e := b.NewRouter("E")
	f := b.NewRouter("F")
	b.Link(a, d)
	b.Link(bb, e)
	b.Link(c, f) // hop 8
	g := b.NewRouter("G")
	b.Link(d, g)
	b.Link(e, g)
	b.Link(f, g) // hop 9, same G0
	dest := b.AttachHost(g, "dest", false)

	route(b.Gateway, dest.Addr, 0, flow.Options{}, chain[0].Iface(0))
	for i := 0; i < 3; i++ {
		route(chain[i], dest.Addr, 0, flow.Options{}, chain[i+1].Iface(0))
	}
	route(chain[3], dest.Addr, 0, flow.Options{}, l.Iface(0))
	route(l, dest.Addr, policy, flow.Options{}, a.Iface(0), bb.Iface(0), c.Iface(0))
	route(a, dest.Addr, 0, flow.Options{}, d.Iface(0))
	route(bb, dest.Addr, 0, flow.Options{}, e.Iface(0))
	route(c, dest.Addr, 0, flow.Options{}, f.Iface(0))
	route(d, dest.Addr, 0, flow.Options{}, g.Iface(0))
	route(e, dest.Addr, 0, flow.Options{}, g.Iface(0))
	route(f, dest.Addr, 0, flow.Options{}, g.Iface(0))

	return &Figure6{
		Net: b.Net, Dest: dest,
		L: l.Iface(0), A: a.Iface(0), B: bb.Iface(0), C: c.Iface(0),
		D: d.Iface(0), E: e.Iface(0), F: f.Iface(0), G: g.Iface(0),
		BranchHeads:      []netip.Addr{a.Iface(0), bb.Iface(0), c.Iface(0)},
		BranchMids:       []netip.Addr{d.Iface(0), e.Iface(0), f.Iface(0)},
		ConvergencePoint: g.Iface(0),
	}
}
