package topo

import (
	"net/netip"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/netsim"
	"repro/internal/tracer"
)

func traceWith(t *testing.T, tr tracer.Tracer, dest netip.Addr) *tracer.Route {
	t.Helper()
	rt, err := tr.Trace(dest)
	if err != nil {
		t.Fatalf("%s trace to %v: %v", tr.Name(), dest, err)
	}
	return rt
}

func TestFigure3ClassicLoopParisClean(t *testing.T) {
	fig := BuildFigure3(1)
	tp := netsim.NewTransport(fig.Net)

	// Classic traceroute varies the destination port per probe; across
	// many traces the hop-8 and hop-9 probes must sometimes straddle the
	// two branches, showing E twice in a row.
	classicLoops := 0
	const runs = 64
	for i := 0; i < runs; i++ {
		tr := tracer.NewClassicUDP(tp, tracer.Options{
			DstPort: uint16(33435 + i*41),
			MaxTTL:  15,
		})
		rt := traceWith(t, tr, fig.Dest.Addr)
		for _, l := range anomaly.FindLoops(rt) {
			if l.Addr == fig.E {
				classicLoops++
			}
		}
	}
	if classicLoops == 0 {
		t.Fatalf("classic traceroute never produced the Fig. 3 loop on E over %d runs", runs)
	}

	// Paris traceroute holds the flow identifier constant: no loop, for
	// any flow.
	for i := 0; i < runs; i++ {
		tr := tracer.NewParisUDP(tp, tracer.Options{
			SrcPort: uint16(10000 + i*7),
			DstPort: uint16(20000 + i*13),
			MaxTTL:  15,
		})
		rt := traceWith(t, tr, fig.Dest.Addr)
		if loops := anomaly.FindLoops(rt); len(loops) != 0 {
			t.Fatalf("paris traceroute (flow %d) produced loops %v; route %v", i, loops, rt.Addresses())
		}
		if !rt.Reached() {
			t.Fatalf("paris trace did not reach destination: halt=%v route=%v", rt.Halt, rt.Addresses())
		}
	}
}

func TestFigure4ZeroTTLLoop(t *testing.T) {
	fig := BuildFigure4(1)
	tp := netsim.NewTransport(fig.Net)
	tr := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15})
	rt := traceWith(t, tr, fig.Dest.Addr)

	loops := anomaly.FindLoops(rt)
	if len(loops) != 1 {
		t.Fatalf("want exactly one loop, got %v; route %v", loops, rt.Addresses())
	}
	l := loops[0]
	if l.Addr != fig.A {
		t.Fatalf("loop on %v, want on A=%v", l.Addr, fig.A)
	}
	// The first response of the loop must quote probe TTL 0, the second 1.
	h1, h2 := rt.Hops[l.Start], rt.Hops[l.Start+1]
	if h1.ProbeTTL != 0 || h2.ProbeTTL != 1 {
		t.Fatalf("probe TTLs = %d,%d; want 0,1", h1.ProbeTTL, h2.ProbeTTL)
	}
	if got := anomaly.ClassifyLoop(l, rt, nil); got != anomaly.CauseZeroTTL {
		t.Fatalf("classified as %v, want zero-ttl-forwarding", got)
	}
	// F itself never appears: it forwards every TTL-expiring probe.
	for _, h := range rt.Hops {
		if h.Addr == fig.F {
			t.Fatalf("faulty router F appeared in the measured route %v", rt.Addresses())
		}
	}
}

func TestFigure5NATLoop(t *testing.T) {
	fig := BuildFigure5(1)
	tp := netsim.NewTransport(fig.Net)
	tr := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15})
	rt := traceWith(t, tr, fig.Dest.Addr)

	if !rt.Reached() {
		t.Fatalf("trace did not reach destination: halt=%v route=%v", rt.Halt, rt.Addresses())
	}
	loops := anomaly.FindLoops(rt)
	if len(loops) != 1 {
		t.Fatalf("want exactly one loop, got %v; route %v", loops, rt.Addresses())
	}
	l := loops[0]
	if l.Addr != fig.N {
		t.Fatalf("loop on %v, want on N=%v", l.Addr, fig.N)
	}
	if l.Len != fig.NATHops {
		t.Fatalf("loop length %d, want %d (N, B, C, dest all as N0)", l.Len, fig.NATHops)
	}
	if !l.AtEnd {
		t.Fatal("NAT loop should sit at the end of the measured route")
	}
	// Response TTL must decrease by one per hop across the rewritten
	// router run (Fig. 5's 249, 248, 247 gradient); the final hop is the
	// destination host, which starts from its own initial TTL (64) and
	// therefore only needs to continue the strict decrease.
	for i := l.Start + 1; i < l.Start+l.Len-1; i++ {
		if rt.Hops[i].RespTTL != rt.Hops[i-1].RespTTL-1 {
			t.Fatalf("response TTLs not a unit gradient: hop %d has %d after %d",
				i, rt.Hops[i].RespTTL, rt.Hops[i-1].RespTTL)
		}
	}
	last, prev := rt.Hops[l.Start+l.Len-1], rt.Hops[l.Start+l.Len-2]
	if last.RespTTL >= prev.RespTTL {
		t.Fatalf("response TTL did not keep decreasing at the host hop: %d then %d",
			prev.RespTTL, last.RespTTL)
	}
	if got := anomaly.ClassifyLoop(l, rt, nil); got != anomaly.CauseAddressRewriting {
		t.Fatalf("classified as %v, want address-rewriting", got)
	}
}

func TestFigure6DiamondSet(t *testing.T) {
	fig := BuildFigure6(1, netsim.PerFlow)
	tp := netsim.NewTransport(fig.Net)

	classic := anomaly.NewGraph(fig.Dest.Addr)
	paris := anomaly.NewGraph(fig.Dest.Addr)
	const rounds = 96
	for i := 0; i < rounds; i++ {
		c := tracer.NewClassicUDP(tp, tracer.Options{DstPort: uint16(33435 + i*67), MaxTTL: 15})
		classic.Add(traceWith(t, c, fig.Dest.Addr))
		p := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15})
		paris.Add(traceWith(t, p, fig.Dest.Addr))
	}

	cd := classic.Diamonds()
	if len(cd) == 0 {
		t.Fatal("classic graph contains no diamonds")
	}
	// The convergence diamonds (branchHead, G) must appear: measured
	// routes mix the middles D, E, F between any head and G.
	foundHeadG := false
	foundLMid := false
	for _, d := range cd {
		if d.Tail == fig.G {
			for _, h := range fig.BranchHeads {
				if d.Head == h {
					foundHeadG = true
				}
			}
		}
		if d.Head == fig.L {
			for _, m := range fig.BranchMids {
				if d.Tail == m {
					foundLMid = true
				}
			}
		}
	}
	if !foundHeadG || !foundLMid {
		t.Fatalf("expected diamonds of forms (head,G) and (L,mid); got %+v", cd)
	}
	if pd := paris.Diamonds(); len(pd) != 0 {
		t.Fatalf("paris graph contains diamonds %v; same-flow probing must hold one path", pd)
	}
	for _, d := range cd {
		if got := anomaly.ClassifyDiamond(d, paris); got != anomaly.CausePerFlowLB {
			t.Fatalf("diamond %v classified %v, want per-flow-lb", d, got)
		}
	}
}

func TestFigure1FalseLinksAndMissingNodes(t *testing.T) {
	fig := BuildFigure1(1, netsim.PerPacket)
	tp := netsim.NewTransport(fig.Net)

	// With random per-packet balancing and one probe per hop, hop 7 and
	// hop 8 responders are independent coin flips between the branches;
	// over many traces both the A-then-D and B-then-C orders (false
	// links) must appear.
	sawFalseAD, sawFalseBC := false, false
	for i := 0; i < 200; i++ {
		tr := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 15})
		rt := traceWith(t, tr, fig.Dest.Addr)
		addrs := rt.Addresses()
		for j := 0; j+1 < len(addrs); j++ {
			if addrs[j] == fig.A && addrs[j+1] == fig.D {
				sawFalseAD = true
			}
			if addrs[j] == fig.B && addrs[j+1] == fig.C {
				sawFalseBC = true
			}
		}
	}
	if !sawFalseAD || !sawFalseBC {
		t.Fatalf("per-packet balancing never produced the false links (A,D)=%v (B,C)=%v",
			sawFalseAD, sawFalseBC)
	}

	// With per-flow balancing, Paris holds one branch: never a false link.
	figF := BuildFigure1(2, netsim.PerFlow)
	tpF := netsim.NewTransport(figF.Net)
	for i := 0; i < 64; i++ {
		tr := tracer.NewParisUDP(tpF, tracer.Options{
			SrcPort: uint16(11000 + i), MaxTTL: 15,
		})
		rt := traceWith(t, tr, figF.Dest.Addr)
		addrs := rt.Addresses()
		for j := 0; j+1 < len(addrs); j++ {
			if (addrs[j] == figF.A && addrs[j+1] == figF.D) ||
				(addrs[j] == figF.B && addrs[j+1] == figF.C) {
				t.Fatalf("paris produced false link in %v", addrs)
			}
		}
	}
}
