package topo

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"

	"repro/internal/asmap"
	"repro/internal/flow"
	"repro/internal/netsim"
	"repro/internal/tracer"
)

// GenConfig parameterizes the random Internet-like topology used for the
// Section 4 measurement campaign. Every anomaly cause in the paper's
// taxonomy has a knob; the defaults are calibrated so that a campaign at
// the paper's scale (5,000 destinations, hundreds of rounds) lands in the
// paper's regime: loops on a few percent of classic routes dominated by
// per-flow load balancing, rare deterministic causes (zero-TTL, NAT,
// unreachability) making up single-digit shares, and diamonds toward most
// destinations.
type GenConfig struct {
	Seed         int64
	Destinations int
	// Shards partitions the topology across that many fully independent
	// netsim.Network instances: the gateway/core/transit spine is
	// replicated once per shard (with identical interface addresses, so
	// measured routes do not depend on the shard count) and pods are
	// distributed round-robin by pod — not by destination — so pod-level
	// anomaly correlation survives partitioning. 0 or 1 builds the
	// classic single network. A destination's route exists only in its
	// own shard: cross-shard addresses are unroutable by construction.
	Shards int
	// DestsPerPod is the number of destinations attached to a regular
	// stub pod; pods share their access path, so anomalies on it repeat
	// across the pod's destinations. Rare-cause pods (NAT, zero-TTL,
	// flapping) are deliberately smaller so their instance counts match
	// the paper's single-digit shares.
	DestsPerPod int
	// Transits is the number of transit routers fanning out from the
	// core; each pod hangs off one of them.
	Transits int
	// CoreLen is the length of the shared core chain after the gateway.
	CoreLen int
	// MinPodChain/MaxPodChain bound the number of plain routers padding
	// each pod between gadgets.
	MinPodChain, MaxPodChain int

	// PPodDiamond is the probability a regular pod contains a
	// load-balanced diamond; PSecondDiamond adds a second one behind it.
	PPodDiamond    float64
	PSecondDiamond float64
	// PPerPacket is the probability a diamond balances per-packet
	// rather than per-flow. Per-packet diamonds are equal-length unless
	// PPerPacketUnequal also fires: they supply the diamond-count
	// residual Paris cannot remove, while contributing few loops.
	PPerPacket        float64
	PPerPacketUnequal float64
	// PUnequal is the probability a per-flow diamond's branches differ
	// in length by one (the loop gadget); PDiff2 the probability they
	// differ by two (the cycle gadget).
	PUnequal float64
	PDiff2   float64
	// DiamondWidths is the distribution of branch counts; entries are
	// sampled uniformly. Juniper permits up to sixteen equal-cost paths.
	DiamondWidths []int

	// PNATPod makes a (small) pod a NAT stub: its tail routers and
	// destinations sit behind a source-rewriting gateway (Fig. 5 loops).
	PNATPod float64
	// PZeroTTLPod inserts a zero-TTL-forwarding router (Fig. 4 loops).
	PZeroTTLPod float64
	// PFlapPod marks one pod router as flapping: each round it goes
	// unreachable with FlapProbability (unreachability loops).
	PFlapPod float64
	// PFlapDiamondPod co-locates a flapping router at the convergence of
	// an unequal diamond (unreachability cycles).
	PFlapDiamondPod float64
	FlapProbability float64
	// PLooperPod gives a pod a transient forwarding loop: each round,
	// with LoopProbability, two adjacent pod routers point at each other
	// (forwarding-loop cycles).
	PLooperPod      float64
	LoopProbability float64
	// PMessyNATPod adds NAT stubs whose inside boxes use mixed initial
	// ICMP TTLs (64/128/255): the rewritten-source loop survives but the
	// response-TTL gradient the classifier relies on breaks, so these
	// loops land in the unverifiable residual bucket — the paper's
	// "supposed per-packet" 2.5%.
	PMessyNATPod float64

	// PFlipPod gives a pod two parallel paths of different length;
	// during the campaign, each probe toward a flip pod's destination
	// flips the active path with FlipPerProbe probability, reproducing
	// routing changes in the middle of a traceroute (the rare one-round
	// signatures, and the loops "seen only by Paris"). Half the flip
	// pods differ by one hop (loop-shaped), half by two (cycle-shaped).
	PFlipPod     float64
	FlipPerProbe float64

	// NATPodDests, ZeroPodDests, FlapPodDests size the rare-cause pods.
	NATPodDests, ZeroPodDests, FlapPodDests int

	// Delay, Load, and Churn switch on netsim's virtual-clock dynamics
	// layer (netsim.Dynamics): per-link propagation/bandwidth/queueing
	// delay scale, background cross-traffic intensity in [0, 0.95], and
	// the scheduled-dynamics rate (route flaps, balancer weight churn,
	// link brownouts) in [0, 1]. All zero — the default — leaves the
	// simulator on its historical instant-and-static path, byte for byte.
	// Every shard network receives the same dynamics configuration, and
	// the generated RoundStart hook advances the virtual round on every
	// shard, so virtual time stays aligned across shardings.
	Delay, Load, Churn float64
	// DynamicsSeed fixes the dynamics layer's draws independently of the
	// topology seed; 0 derives it from Seed.
	DynamicsSeed int64
}

// DefaultGenConfig returns the calibrated configuration at a reduced scale
// suitable for tests and quick studies (500 destinations). The probability
// knobs are calibrated for the paper-scale run; at 500 destinations the
// rare causes appear in ones and twos, so their shares are noisy.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:              42,
		Destinations:      500,
		DestsPerPod:       6,
		Transits:          12,
		CoreLen:           2,
		MinPodChain:       1,
		MaxPodChain:       4,
		PPodDiamond:       0.85,
		PSecondDiamond:    0.45,
		PPerPacket:        0.48,
		PPerPacketUnequal: 0.0005,
		PUnequal:          0.360,
		PDiff2:            0.130,
		DiamondWidths:     []int{2, 2, 2, 3, 3, 4, 8, 16},
		PNATPod:           0.006,
		PMessyNATPod:      0.0015,
		PZeroTTLPod:       0.010,
		PFlapPod:          0.008,
		PFlapDiamondPod:   0.006,
		FlapProbability:   0.12,
		PLooperPod:        0.020,
		LoopProbability:   0.10,
		PFlipPod:          0.12,
		FlipPerProbe:      0.00005,
		NATPodDests:       2,
		ZeroPodDests:      2,
		FlapPodDests:      3,
	}
}

// PaperScaleConfig returns the full-scale configuration of the paper's
// study: 5,000 destinations (pair with 556 rounds for the complete
// campaign).
func PaperScaleConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Destinations = 5000
	cfg.Transits = 40
	return cfg
}

// Scenario is a generated measurement universe.
type Scenario struct {
	// Net is the single simulated network, or shard 0 of a sharded
	// scenario (which still answers probes toward its own pods only).
	Net *netsim.Network
	// Nets lists every shard network (length 1 when unsharded). The
	// shards are fully independent: no router, host, or lock is shared.
	Nets   []*netsim.Network
	Source netip.Addr
	Dests  []netip.Addr
	// ShardOf maps each destination to the index of the shard network
	// that routes it. Nil when the scenario is unsharded.
	ShardOf map[netip.Addr]int
	AS      *asmap.Table

	// RoundStart applies inter-round routing dynamics (flaps, transient
	// forwarding loops). Call it before each measurement round.
	RoundStart func(round int)

	// Truth records the gadget ground truth for validation.
	Truth Truth
}

// Transport returns a probe transport covering every destination: the plain
// network transport when unsharded, or a sharded transport dispatching each
// probe to its destination's shard without locking.
func (sc *Scenario) Transport() tracer.Transport {
	if len(sc.Nets) <= 1 {
		return netsim.NewTransport(sc.Net)
	}
	return netsim.NewShardedTransport(sc.Nets, sc.ShardOf)
}

// Truth counts the anomaly gadgets the generator placed.
type Truth struct {
	Pods                 int
	DestsBehindDiamond   int
	DestsBehindUnequal   int
	DestsBehindDiff2     int
	DestsBehindPerPacket int
	DestsBehindNAT       int
	DestsBehindZeroTTL   int
	DestsOnFlapPods      int
	DestsOnFlapDiamond   int
	DestsOnLooperPods    int
	DestsOnFlipPods      int
	Diamonds             int
	Routers              int
}

// podKind is the rare-cause pod taxonomy; regular pods carry the common
// gadgets (diamonds, loopers, flips).
type podKind int

const (
	podRegular podKind = iota
	podNAT
	podMessyNAT
	podZeroTTL
	podFlap
	podFlapDiamond
)

// routeTemplate is the per-pod recipe for installing a destination route.
type routeTemplate struct {
	steps []RouteStep
	leaf  *netsim.Router
	nat   bool
	flip  *flipState
}

// Generate builds a random scenario from cfg.
func Generate(cfg GenConfig) *Scenario {
	if cfg.Destinations <= 0 {
		panic("topo: GenConfig.Destinations must be positive")
	}
	if cfg.DestsPerPod <= 0 {
		cfg.DestsPerPod = 6
	}
	if len(cfg.DiamondWidths) == 0 {
		cfg.DiamondWidths = []int{2}
	}
	if cfg.NATPodDests <= 0 {
		cfg.NATPodDests = 2
	}
	if cfg.ZeroPodDests <= 0 {
		cfg.ZeroPodDests = 2
	}
	if cfg.FlapPodDests <= 0 {
		cfg.FlapPodDests = 3
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := newAddrPool()
	builders := make([]*Builder, shards)
	for s := range builders {
		// Shard 0 keeps the historical network seed so unsharded runs
		// reproduce bit for bit; later shards get decorrelated
		// per-exchange random streams.
		netSeed := cfg.Seed ^ 0x5eed
		if s > 0 {
			netSeed ^= int64(s) * 0x9e3779b9
		}
		builders[s] = newPooledBuilder(netSeed, pool)
	}
	b0 := builders[0]
	sc := &Scenario{Net: b0.Net, Source: b0.Source, AS: &asmap.Table{}}
	for _, b := range builders {
		sc.Nets = append(sc.Nets, b.Net)
	}
	if shards > 1 {
		sc.ShardOf = make(map[netip.Addr]int, cfg.Destinations)
	}

	// AS registry: core is tier-1, transits regional, pods stubs.
	sc.AS.RegisterAS(asmap.AS{Number: 1, Name: "core-t1", Tier: asmap.TierOne})
	sc.AS.Add(netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, 0, 0}), 12), 1)

	// Gateway/core/transit spine, replicated once per shard. Every
	// replica is built from the same pool state, so interface addresses —
	// and therefore measured routes — are identical regardless of the
	// shard count; only shard 0 advances the shared pool for real.
	type spine struct {
		core     []*netsim.Router
		transits []*netsim.Router
	}
	spines := make([]spine, shards)
	spineStart := *pool
	for s, b := range builders {
		if s > 0 {
			replay := spineStart
			b.pool = &replay
		}
		core := b.Chain(b.Gateway, cfg.CoreLen)
		transits := make([]*netsim.Router, cfg.Transits)
		for i := range transits {
			transits[i] = b.NewRouter(fmt.Sprintf("t%d", i))
			b.Link(core[len(core)-1], transits[i])
			if s == 0 {
				asn := 10 + i
				sc.AS.RegisterAS(asmap.AS{Number: asn, Name: fmt.Sprintf("transit-%d", i), Tier: asmap.TierRegional})
				sc.AS.Add(netip.PrefixFrom(transits[i].Iface(0), 32), asn)
			}
		}
		spines[s] = spine{core: core, transits: transits}
		b.pool = pool
	}

	gen := &generator{
		cfg: cfg, rng: rng, sc: sc,
		flipByDest: make(map[netip.Addr]*flipState),
	}

	destsLeft := cfg.Destinations
	for p := 0; destsLeft > 0; p++ {
		// Round-robin by pod, not by destination: a pod's gadgets stay
		// together, so pod-level anomaly correlation survives sharding.
		si := p % shards
		b := builders[si]
		core, transits := spines[si].core, spines[si].transits
		transit := transits[rng.Intn(len(transits))]

		kind := podRegular
		r := rng.Float64()
		cum := 0.0
		for _, k := range []struct {
			p    float64
			kind podKind
		}{
			{cfg.PNATPod, podNAT},
			{cfg.PMessyNATPod, podMessyNAT},
			{cfg.PZeroTTLPod, podZeroTTL},
			{cfg.PFlapPod, podFlap},
			{cfg.PFlapDiamondPod, podFlapDiamond},
		} {
			cum += k.p
			if r < cum {
				kind = k.kind
				break
			}
		}

		nDest := cfg.DestsPerPod
		switch kind {
		case podNAT, podMessyNAT:
			nDest = cfg.NATPodDests
		case podZeroTTL:
			nDest = cfg.ZeroPodDests
		case podFlap, podFlapDiamond:
			nDest = cfg.FlapPodDests
		}
		if nDest > destsLeft {
			nDest = destsLeft
		}
		destsLeft -= nDest

		asn := 1000 + p
		sc.AS.RegisterAS(asmap.AS{Number: asn, Name: fmt.Sprintf("stub-%d", p), Tier: asmap.TierStub})

		tmpl := gen.buildPod(b, transit, kind, nDest)
		sc.Truth.Pods++

		// Attach destinations and install their routes.
		for d := 0; d < nDest; d++ {
			h := b.AttachHost(tmpl.leaf, "", tmpl.nat)
			sc.Dests = append(sc.Dests, h.Addr)
			if sc.ShardOf != nil {
				sc.ShardOf[h.Addr] = si
			}
			sc.AS.Add(netip.PrefixFrom(h.Addr, 32), asn)
			if tmpl.flip != nil {
				gen.flipByDest[h.Addr] = tmpl.flip
			}
			installStep(RouteStep{On: b.Gateway, Via: via(core[0].Iface(0))}, h.Addr)
			for i := 0; i+1 < len(core); i++ {
				installStep(RouteStep{On: core[i], Via: via(core[i+1].Iface(0))}, h.Addr)
			}
			installStep(RouteStep{On: core[len(core)-1], Via: via(transit.Iface(0))}, h.Addr)
			for _, s := range tmpl.steps {
				installStep(s, h.Addr)
			}
		}
	}
	sc.Truth.Routers = pool.routerSeq

	// Virtual-clock dynamics: install the (identical) compiled layer on
	// every shard network. With all intensities zero SetDynamics stores
	// nil and the forwarding path is untouched.
	if cfg.Delay > 0 || cfg.Load > 0 || cfg.Churn > 0 {
		dseed := cfg.DynamicsSeed
		if dseed == 0 {
			dseed = cfg.Seed ^ 0x7ea1
		}
		dyn := netsim.Dynamics{
			Seed:  uint64(dseed),
			Delay: cfg.Delay,
			Load:  cfg.Load,
			Churn: cfg.Churn,
		}
		for _, net := range sc.Nets {
			net.SetDynamics(dyn)
		}
	}

	// Inter-round dynamics.
	flapRouters := gen.flapRouters
	looperPairs := gen.looperPairs
	nets := sc.Nets
	dynRng := rand.New(rand.NewSource(cfg.Seed ^ 0x0ddba11))
	sc.RoundStart = func(round int) {
		// Advance the virtual clock's round base on every shard first: a
		// harmless atomic store when dynamics are off, and the hook runs
		// between rounds with no exchange in flight, so probes of round r
		// always start within round r's virtual span.
		for _, net := range nets {
			net.SetVirtualRound(round)
		}
		for _, f := range flapRouters {
			flapped := dynRng.Float64() < cfg.FlapProbability
			f.SetFaults(netsim.Faults{Unreachable: flapped})
		}
		for _, pair := range looperPairs {
			setLooped(pair, dynRng.Float64() < cfg.LoopProbability)
		}
	}
	// Mid-trace routing changes: each probe toward a flip pod's
	// destination may flip that pod's active path, so the change lands
	// in the middle of the traceroute currently probing it — the
	// paper's "routing change ... between the time S receives the
	// response to its probe with TTL 8 and the time that it emits the
	// probe with TTL 9".
	if flips := gen.flipByDest; len(flips) > 0 && cfg.FlipPerProbe > 0 {
		// One hook (with its own rng and mutex) per shard network: a flip
		// pod's destination is routable only in its own shard, so each
		// flipState is reached by exactly one shard's hook.
		for s, net := range sc.Nets {
			flipRng := rand.New(rand.NewSource(cfg.Seed ^ 0xf11b ^ int64(s)<<20))
			mu := new(sync.Mutex)
			net.OnSend(func(count int, probe []byte) {
				if len(probe) < 20 {
					return
				}
				dst := netip.AddrFrom4([4]byte(probe[16:20]))
				fs, ok := flips[dst]
				if !ok {
					return
				}
				// One mutex covers both the rng draw and the flip: probes
				// now run concurrently, and flipState's bookkeeping (onA)
				// is not safe to mutate from two hooks at once.
				mu.Lock()
				if flipRng.Float64() < cfg.FlipPerProbe {
					fs.flip()
				}
				mu.Unlock()
			})
		}
	}
	return sc
}

func via(addrs ...netip.Addr) []netsim.NextHop {
	hops := make([]netsim.NextHop, len(addrs))
	for i, a := range addrs {
		hops[i] = netsim.NextHop{Via: a}
	}
	return hops
}

func installStep(s RouteStep, dest netip.Addr) {
	s.On.AddRoute(netsim.Route{
		Prefix:   netip.PrefixFrom(dest, 32),
		Hops:     s.Via,
		Balance:  s.Balance,
		FlowOpts: s.FlowOpts,
	})
}

// generator carries the shared state of one Generate run.
type generator struct {
	cfg GenConfig
	rng *rand.Rand
	sc  *Scenario

	flapRouters []*netsim.Router
	looperPairs [][2]*netsim.Router
	flipByDest  map[netip.Addr]*flipState
}

// buildPod assembles one pod's routers into b (the pod's shard) and returns
// its route template.
func (g *generator) buildPod(b *Builder, entry *netsim.Router, kind podKind, nDest int) routeTemplate {
	cfg, rng := g.cfg, g.rng
	var tmpl routeTemplate
	cur := entry

	addChain := func(n int) {
		for i := 0; i < n; i++ {
			r := b.NewRouter("")
			r.SetIPIDStride(uint16(1 + rng.Intn(7)))
			b.Link(cur, r)
			tmpl.steps = append(tmpl.steps, RouteStep{On: cur, Via: via(r.Iface(0))})
			cur = r
		}
	}

	// addDiamond inserts an equal-cost diamond: `width` branches of one
	// router each, except branch 0 which is longer by unequalDiff.
	// width <= 0 samples from the configured distribution.
	// Returns the convergence router.
	addDiamond := func(unequalDiff int, perPacket bool, width int) *netsim.Router {
		if width <= 0 {
			width = cfg.DiamondWidths[rng.Intn(len(cfg.DiamondWidths))]
		}
		exit := b.NewRouter("")
		exit.SetIPIDStride(uint16(1 + rng.Intn(7)))
		var heads []netip.Addr
		for w := 0; w < width; w++ {
			length := 1
			if w == 0 {
				length += unequalDiff
			}
			prev := cur
			var first netip.Addr
			for i := 0; i < length; i++ {
				r := b.NewRouter("")
				r.SetIPIDStride(uint16(1 + rng.Intn(7)))
				b.Link(prev, r)
				if i == 0 {
					first = r.Iface(0)
				} else {
					tmpl.steps = append(tmpl.steps, RouteStep{On: prev, Via: via(r.Iface(0))})
				}
				prev = r
			}
			b.Link(prev, exit)
			tmpl.steps = append(tmpl.steps, RouteStep{On: prev, Via: via(exit.Iface(0))})
			heads = append(heads, first)
		}
		policy := netsim.PerFlow
		if perPacket {
			policy = netsim.PerPacket
		}
		tmpl.steps = append(tmpl.steps, RouteStep{
			On: cur, Via: via(heads...), Balance: policy,
			FlowOpts: flow.Options{Kind: flow.KeyFirstFourOctets},
		})
		cur = exit
		g.sc.Truth.Diamonds++
		g.sc.Truth.DestsBehindDiamond += nDest
		if perPacket {
			g.sc.Truth.DestsBehindPerPacket += nDest
		}
		switch unequalDiff {
		case 1:
			g.sc.Truth.DestsBehindUnequal += nDest
		case 2:
			g.sc.Truth.DestsBehindDiff2 += nDest
		}
		return exit
	}

	// drawDiamond picks policy and branch-length shape per the config.
	// Length-mismatched diamonds use wide convergence (one long branch
	// among many short ones), which lowers the per-trace straddle
	// probability: anomalies then spread thinly across many rounds and
	// destinations, matching the paper's rare, broadly distributed loop
	// and cycle signatures.
	drawDiamond := func() *netsim.Router {
		perPacket := rng.Float64() < cfg.PPerPacket
		diff := 0
		width := 0
		if perPacket {
			if rng.Float64() < cfg.PPerPacketUnequal {
				diff = 1
			}
		} else {
			switch r := rng.Float64(); {
			case r < cfg.PDiff2:
				diff = 2
				width = 16
			case r < cfg.PDiff2+cfg.PUnequal:
				diff = 1
				width = []int{8, 16, 16, 16}[rng.Intn(4)]
			}
		}
		return addDiamond(diff, perPacket, width)
	}

	addChain(cfg.MinPodChain + rng.Intn(maxInt(1, cfg.MaxPodChain-cfg.MinPodChain+1)))

	switch kind {
	case podNAT, podMessyNAT:
		nat := b.NewRouter("")
		b.Link(cur, nat)
		tmpl.steps = append(tmpl.steps, RouteStep{On: cur, Via: via(nat.Iface(0))})
		nat.SetNAT(netsim.NAT{Public: nat.Iface(0), Inside: PrivatePrefix})
		cur = nat
		for i := 0; i < 2; i++ {
			r := b.NewRouter("")
			b.LinkPrivate(cur, r)
			if kind == podMessyNAT {
				// Mixed stacks inside: the response-TTL gradient the
				// classifier keys on does not hold, so these loops land
				// in the unverifiable residual bucket.
				ttls := []uint8{64, 255, 128}
				r.SetICMPTTL(ttls[i%len(ttls)])
			}
			tmpl.steps = append(tmpl.steps, RouteStep{On: cur, Via: via(r.Iface(0))})
			cur = r
		}
		tmpl.nat = true
		g.sc.Truth.DestsBehindNAT += nDest

	case podZeroTTL:
		z := b.NewRouter("")
		z.SetFaults(netsim.Faults{ZeroTTLForward: true})
		b.Link(cur, z)
		tmpl.steps = append(tmpl.steps, RouteStep{On: cur, Via: via(z.Iface(0))})
		cur = z
		addChain(2) // the router answering twice, plus one more
		g.sc.Truth.DestsBehindZeroTTL += nDest

	case podFlap:
		addChain(1)
		g.flapRouters = append(g.flapRouters, cur)
		addChain(1)
		g.sc.Truth.DestsOnFlapPods += nDest

	case podFlapDiamond:
		// Diff-2 shape: when the convergence router flaps, classic
		// traces can show it at hop k (Time Exceeded via the short
		// branch), a long-branch router at k+1, and the convergence
		// again at k+2 answering !H — the paper's unreachability cycle.
		exit := addDiamond(2, false, 2)
		g.flapRouters = append(g.flapRouters, exit)
		addChain(1)
		g.sc.Truth.DestsOnFlapDiamond += nDest

	case podRegular:
		if rng.Float64() < cfg.PPodDiamond {
			drawDiamond()
			if rng.Float64() < cfg.PSecondDiamond {
				addChain(1)
				drawDiamond()
			}
		}
		if rng.Float64() < cfg.PLooperPod {
			parent := cur
			addChain(1)
			g.looperPairs = append(g.looperPairs, [2]*netsim.Router{parent, cur})
			g.sc.Truth.DestsOnLooperPods += nDest
		}
		if rng.Float64() < cfg.PFlipPod {
			diff := 1 + rng.Intn(2) // loop-shaped or cycle-shaped
			tmpl.flip = buildFlip(b, &tmpl, &cur, diff)
			g.sc.Truth.DestsOnFlipPods += nDest
		}
		addChain(1)
	}

	tmpl.leaf = cur
	return tmpl
}

// flipState holds a mid-trace routing-change gadget: an entry router whose
// pod routes alternate between two parallel next hops of different lengths.
type flipState struct {
	entry      *netsim.Router
	viaA, viaB netip.Addr
	onA        bool
}

func (f *flipState) flip() {
	from, to := f.viaB, f.viaA
	if f.onA {
		from, to = f.viaA, f.viaB
	}
	f.entry.RewriteRoutes(func(rt netsim.Route) netsim.Route {
		hops := make([]netsim.NextHop, len(rt.Hops))
		copy(hops, rt.Hops)
		for i := range hops {
			if hops[i].Via == from {
				hops[i].Via = to
			}
		}
		rt.Hops = hops
		return rt
	})
	f.onA = !f.onA
}

// buildFlip constructs two parallel chains (lengths 1 and 1+diff) between
// the current router and a new convergence router; routes initially use the
// short one. Flipping mid-trace makes consecutive probes see paths whose
// lengths differ by diff — a loop (diff 1) or a cycle (diff 2) in the
// measured route.
func buildFlip(b *Builder, tmpl *routeTemplate, cur **netsim.Router, diff int) *flipState {
	entry := *cur
	exit := b.NewRouter("")
	// Short branch: one router.
	s := b.NewRouter("")
	b.Link(entry, s)
	b.Link(s, exit)
	tmpl.steps = append(tmpl.steps, RouteStep{On: s, Via: via(exit.Iface(0))})
	// Long branch: 1+diff routers.
	prev := entry
	var longHead netip.Addr
	for i := 0; i < 1+diff; i++ {
		r := b.NewRouter("")
		b.Link(prev, r)
		if i == 0 {
			longHead = r.Iface(0)
		} else {
			tmpl.steps = append(tmpl.steps, RouteStep{On: prev, Via: via(r.Iface(0))})
		}
		prev = r
	}
	b.Link(prev, exit)
	tmpl.steps = append(tmpl.steps, RouteStep{On: prev, Via: via(exit.Iface(0))})
	// Active route: short branch.
	tmpl.steps = append(tmpl.steps, RouteStep{On: entry, Via: via(s.Iface(0))})
	*cur = exit
	return &flipState{entry: entry, viaA: s.Iface(0), viaB: longHead, onA: true}
}

// setLooped installs or removes a transient forwarding loop between a pod
// router pair via the child's forwarding override: when looped, every
// transit packet at the child bounces back to the parent, which forwards it
// down again — packets ping-pong until TTL expiry.
func setLooped(pair [2]*netsim.Router, looped bool) {
	parent, child := pair[0], pair[1]
	var f netsim.Faults
	if looped {
		f.ForwardOverride = parent.Iface(0)
	}
	child.SetFaults(f)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
