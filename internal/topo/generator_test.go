package topo

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/tracer"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 80
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Dests) != len(b.Dests) {
		t.Fatalf("dest counts differ: %d vs %d", len(a.Dests), len(b.Dests))
	}
	for i := range a.Dests {
		if a.Dests[i] != b.Dests[i] {
			t.Fatalf("dest %d differs: %v vs %v", i, a.Dests[i], b.Dests[i])
		}
	}
	if a.Truth != b.Truth {
		t.Errorf("truth differs:\n%+v\n%+v", a.Truth, b.Truth)
	}
}

func TestGenerateDestCount(t *testing.T) {
	for _, n := range []int{1, 7, 50, 333} {
		cfg := DefaultGenConfig()
		cfg.Destinations = n
		sc := Generate(cfg)
		if len(sc.Dests) != n {
			t.Errorf("Destinations=%d produced %d dests", n, len(sc.Dests))
		}
	}
}

func TestGenerateAllDestsReachableByParis(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 120
	// Disable round dynamics side effects for a clean reachability check.
	cfg.PFlapPod = 0
	cfg.PFlapDiamondPod = 0
	cfg.PLooperPod = 0
	sc := Generate(cfg)
	tp := netsim.NewTransport(sc.Net)
	for i, d := range sc.Dests {
		tr := tracer.NewParisUDP(tp, tracer.Options{MinTTL: 2, MaxTTL: 39})
		rt, err := tr.Trace(d)
		if err != nil {
			t.Fatalf("dest %d (%v): %v", i, d, err)
		}
		if !rt.Reached() {
			t.Errorf("dest %d (%v) unreachable: halt=%v route=%v", i, d, rt.Halt, rt.Addresses())
		}
	}
}

func TestGenerateTruthConsistent(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 400
	sc := Generate(cfg)
	tr := sc.Truth
	if tr.Pods == 0 || tr.Routers == 0 {
		t.Fatalf("empty truth: %+v", tr)
	}
	if tr.DestsBehindDiamond > 2*len(sc.Dests) {
		t.Errorf("diamond dest count out of range: %+v", tr)
	}
	if tr.DestsBehindUnequal+tr.DestsBehindDiff2 > tr.DestsBehindDiamond {
		t.Errorf("unequal counts exceed diamond count: %+v", tr)
	}
	// The calibrated config must actually place the common gadgets at
	// this scale.
	if tr.Diamonds == 0 || tr.DestsBehindUnequal == 0 {
		t.Errorf("no diamonds generated: %+v", tr)
	}
}

func TestGenerateASMapCoversDests(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 60
	sc := Generate(cfg)
	for _, d := range sc.Dests {
		if _, ok := sc.AS.Lookup(d); !ok {
			t.Errorf("destination %v not in AS map", d)
		}
	}
}

func TestRoundStartTogglesFaults(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 200
	cfg.PFlapPod = 0.5 // lots of flap pods
	cfg.FlapProbability = 1.0
	sc := Generate(cfg)
	tp := netsim.NewTransport(sc.Net)

	sc.RoundStart(0) // everything flapped
	unreach := 0
	for _, d := range sc.Dests {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{MinTTL: 2, MaxTTL: 39}).Trace(d)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Halt == tracer.HaltUnreachable {
			unreach++
		}
	}
	if unreach == 0 {
		t.Fatal("no destination affected by flapped routers")
	}

	// With FlapProbability 1.0 the next round flaps everything again;
	// the fault state must persist through RoundStart.
	sc.RoundStart(1)
	unreach2 := 0
	for _, d := range sc.Dests {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{MinTTL: 2, MaxTTL: 39}).Trace(d)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Halt == tracer.HaltUnreachable {
			unreach2++
		}
	}
	if unreach2 == 0 {
		t.Error("flap state lost after second RoundStart")
	}
}

func TestGeneratedRouteLengthsReasonable(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 100
	sc := Generate(cfg)
	tp := netsim.NewTransport(sc.Net)
	for _, d := range sc.Dests[:20] {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 39}).Trace(d)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(rt.Hops); n < 5 || n > 30 {
			t.Errorf("route to %v has %d hops; topology out of shape", d, n)
		}
	}
}
