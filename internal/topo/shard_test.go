package topo

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/tracer"
)

func pickDest(sc *Scenario, shard int) (netip.Addr, bool) {
	for _, d := range sc.Dests {
		if sc.ShardOf[d] == shard {
			return d, true
		}
	}
	return netip.Addr{}, false
}

// TestShardedGenerationStableDests: partitioning must not move a single
// destination address — the shard count is an execution knob, not a
// topology knob.
func TestShardedGenerationStableDests(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 120
	one := Generate(cfg)
	cfg.Shards = 4
	four := Generate(cfg)

	if len(one.Dests) != len(four.Dests) {
		t.Fatalf("destination count differs: %d vs %d", len(one.Dests), len(four.Dests))
	}
	for i := range one.Dests {
		if one.Dests[i] != four.Dests[i] {
			t.Fatalf("dest %d differs: %v vs %v", i, one.Dests[i], four.Dests[i])
		}
	}
	if one.Truth != four.Truth {
		t.Fatalf("ground truth differs:\none:  %+v\nfour: %+v", one.Truth, four.Truth)
	}
	if len(four.Nets) != 4 {
		t.Fatalf("got %d shard networks, want 4", len(four.Nets))
	}
	perShard := make([]int, 4)
	for _, d := range four.Dests {
		s, ok := four.ShardOf[d]
		if !ok {
			t.Fatalf("destination %v missing from shard map", d)
		}
		perShard[s]++
	}
	for s, n := range perShard {
		if n == 0 {
			t.Fatalf("shard %d received no destinations", s)
		}
	}
}

// TestShardedSpineReplicated: every shard must present the same
// gateway/core entry addresses, so a measured route's head does not depend
// on which shard the destination landed in.
func TestShardedSpineReplicated(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 60
	cfg.Shards = 3
	sc := Generate(cfg)
	for s, n := range sc.Nets {
		if src := n.Source(); src != sc.Source {
			t.Fatalf("shard %d source %v, want %v", s, src, sc.Source)
		}
	}
	tp := sc.Transport()
	d0, ok0 := pickDest(sc, 0)
	d1, ok1 := pickDest(sc, 1)
	if !ok0 || !ok1 {
		t.Fatal("shards 0 and 1 must both hold destinations")
	}
	rt0, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 39}).Trace(d0)
	if err != nil {
		t.Fatal(err)
	}
	rt1, err := tracer.NewParisUDP(tp, tracer.Options{MaxTTL: 39}).Trace(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt0.Hops) <= cfg.CoreLen || len(rt1.Hops) <= cfg.CoreLen {
		t.Fatalf("traces too short to cover the spine: %d and %d hops", len(rt0.Hops), len(rt1.Hops))
	}
	// Gateway plus the core chain: identical interface addresses on every
	// shard replica.
	for i := 0; i < 1+cfg.CoreLen; i++ {
		if rt0.Hops[i].Addr != rt1.Hops[i].Addr {
			t.Fatalf("spine hop %d differs across shards: %v vs %v", i, rt0.Hops[i].Addr, rt1.Hops[i].Addr)
		}
	}
}

// TestCrossShardUnroutable pins the shard-ownership contract from the
// netsim package doc: a destination's address is unroutable in any shard
// but its own.
func TestCrossShardUnroutable(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Destinations = 60
	cfg.Shards = 3
	sc := Generate(cfg)
	dest, ok := pickDest(sc, 1)
	if !ok {
		t.Fatal("no destination in shard 1")
	}

	// Through the sharded transport the destination is reached...
	rt, err := tracer.NewParisUDP(sc.Transport(), tracer.Options{MaxTTL: 39}).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Reached() {
		t.Fatalf("shard-1 destination %v not reached through the sharded transport (halt %v)", dest, rt.Halt)
	}

	// ...but probing it into shard 0's network directly must fail.
	rt, err = tracer.NewParisUDP(netsim.NewTransport(sc.Nets[0]), tracer.Options{MaxTTL: 39}).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Reached() {
		t.Fatalf("shard-1 destination %v reachable inside shard 0: shard ownership violated", dest)
	}
}
