package tracer

import (
	"fmt"
	"net/netip"
	"time"
)

// ProbeResult is the outcome of one probe within a batched exchange.
type ProbeResult struct {
	// Resp is the serialized response packet (empty when OK is false).
	// The buffer is owned by the transport's caller and recycled in
	// place across batches: it is valid until the same result slot is
	// passed to the next ExchangeBatch call.
	Resp []byte
	// RTT is the round-trip time (zero when OK is false).
	RTT time.Duration
	// OK is false when no response arrived (a star).
	OK bool
	// Err, when non-nil, means this probe's exchange failed outright (OK
	// is then false and Resp empty): nothing was measured, not even a
	// star. Errors follow the package taxonomy — IsTransient reports
	// whether a retry may succeed. Transports without a failure mode
	// leave it nil.
	Err error
}

// BatchTransport is implemented by transports that can carry a whole batch
// of probes — a TTL ladder toward one destination — in one call, amortizing
// the per-exchange overhead. The semantics of the batch are exactly those of
// len(probes) sequential Exchange calls in slice order (netsim guarantees
// this byte-for-byte by reserving a contiguous probe-counter block; see the
// netsim package comment's batch contract).
type BatchTransport interface {
	Transport
	// ExchangeBatch exchanges probes[i] into out[i] for every i; out must
	// be at least as long as probes. Implementations refill out[i].Resp
	// with append-truncate, so callers reusing one result slice across
	// batches amortize the response buffers too.
	ExchangeBatch(probes [][]byte, out []ProbeResult)
}

// DefaultBatchWindow is the TTL-window submitted per batch when the trace
// has no path-length hint. Windows bound the overshoot a batched ladder
// probes past the terminal hop; campaigns feed the previous round's path
// length back as Options.PathHint, which sizes the first window to finish
// most traces in exactly one batch with zero overshoot.
const DefaultBatchWindow = 8

// Scratch holds the reusable buffers of the batched ladder: the probe
// packets, their match expectations, and the exchange results whose response
// buffers the transport refills in place. One Scratch serves one worker
// goroutine (it is not safe for concurrent use); a campaign worker carries
// its Scratch across every destination it probes, so the steady state
// allocates nothing per trace.
type Scratch struct {
	probes  [][]byte
	exps    []expect
	results []ProbeResult
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// grow ensures capacity for n probes without discarding the buffers already
// accumulated in the slots.
func (s *Scratch) grow(n int) {
	for len(s.probes) < n {
		s.probes = append(s.probes, nil)
	}
	for len(s.exps) < n {
		s.exps = append(s.exps, expect{})
	}
	for len(s.results) < n {
		s.results = append(s.results, ProbeResult{})
	}
}

// traceBatched is the windowed-ladder twin of the sequential trace loop: it
// builds a window of TTLs, submits them as one ExchangeBatch, and consumes
// the results through the same ladder bookkeeping (ladderState) as the
// sequential path, truncating at the first terminal hop or star-run
// boundary. On a topology where forwarding is a pure function of the probe
// bytes the resulting Route is identical hop for hop to the sequential
// loop's; TestTraceBatchedMatchesSequential enforces that.
func (e *engine) traceBatched(bt BatchTransport, dest netip.Addr) (*Route, error) {
	o := e.opts
	ladder := o.MaxTTL - o.MinTTL + 1
	sc := o.Scratch
	if sc == nil {
		sc = NewScratch()
	}

	rt := &Route{Dest: dest, Source: e.tp.Source(), Halt: HaltMaxTTL}
	rt.Hops = make([]Hop, 0, ladder)
	ls := ladderState{rt: rt, opts: &o}
	if o.ProbesPerHop > 1 {
		ls.backing = make([]Hop, 0, ladder*o.ProbesPerHop)
		rt.All = make([][]Hop, 0, ladder)
	}
	attempts := make([]Hop, o.ProbesPerHop)

	window := o.BatchWindow
	if window <= 0 {
		window = DefaultBatchWindow
	}
	// The first window takes the path-length hint, so a stable route is
	// probed in exactly one batch with no overshoot past the terminal hop.
	next := window
	if o.PathHint > 0 {
		next = o.PathHint
	}

	probeIdx := 0
	for ttl := o.MinTTL; ttl <= o.MaxTTL; {
		w := next
		next = window
		if rest := o.MaxTTL - ttl + 1; w > rest {
			w = rest
		}
		n := w * o.ProbesPerHop
		sc.grow(n)
		for i, t := 0, ttl; t < ttl+w; t++ {
			for a := 0; a < o.ProbesPerHop; a++ {
				probe, exp, err := e.build(dest, t, probeIdx, sc.probes[i])
				probeIdx++
				if err != nil {
					return nil, fmt.Errorf("tracer %s: building probe ttl=%d: %w", e.name, t, err)
				}
				sc.probes[i], sc.exps[i] = probe, exp
				i++
			}
		}
		res := sc.results[:n]
		bt.ExchangeBatch(sc.probes[:n], res)

		for k := 0; k < w; k++ {
			for a := 0; a < o.ProbesPerHop; a++ {
				r := &res[k*o.ProbesPerHop+a]
				if r.Err != nil {
					// The ladder consumes results in TTL order, so the
					// first failed exchange among the hops actually used
					// aborts the trace exactly where the sequential loop
					// would have; failures in truncated (unconsumed)
					// slots are discarded with the rest of the overshoot.
					return nil, fmt.Errorf("tracer %s: exchange ttl=%d: %w", e.name, ttl+k, r.Err)
				}
				h := Hop{TTL: ttl + k, ProbeTTL: -1}
				if r.OK {
					h = parseResponse(r.Resp, sc.exps[k*o.ProbesPerHop+a])
					h.TTL = ttl + k
					h.RTT = r.RTT
				}
				attempts[a] = h
			}
			if ls.step(attempts) {
				// Truncate: results past the terminal hop or the
				// star-run boundary are discarded unseen.
				return rt, nil
			}
		}
		ttl += w
	}
	return rt, nil
}
