package tracer

import (
	"net/netip"
	"reflect"
	"testing"

	"repro/internal/packet"
)

// batchCaptureTransport extends the scripted captureTransport with the
// BatchTransport contract, recording the size of every batch submitted.
type batchCaptureTransport struct {
	captureTransport
	batches []int
}

func (b *batchCaptureTransport) ExchangeBatch(probes [][]byte, out []ProbeResult) {
	b.batches = append(b.batches, len(probes))
	for i, p := range probes {
		resp, rtt, ok := b.Exchange(p)
		out[i].OK = ok
		out[i].RTT = rtt
		if ok {
			out[i].Resp = append(out[i].Resp[:0], resp...)
		} else {
			out[i].Resp = out[i].Resp[:0]
		}
	}
}

// scriptedBatchChain is scriptedChain's batching twin: Time Exceeded from
// router(i) below hop n, Port Unreachable from the destination at hop n and
// beyond.
func scriptedBatchChain(t *testing.T, n int) *batchCaptureTransport {
	tp := &batchCaptureTransport{captureTransport: captureTransport{src: tSrc}}
	tp.respond = func(i int, probe []byte) []byte {
		hdr, _, err := packet.ParseIPv4(probe)
		if err != nil {
			t.Fatal(err)
		}
		hop := int(hdr.TTL)
		if hop < n {
			return timeExceededFrom(t, router(hop), probe, 255-uint8(hop), uint16(i+1))
		}
		return portUnreachableFrom(t, tDest, probe)
	}
	return tp
}

// TestTraceBatchedMatchesSequential sweeps window sizes, hints, and probes
// per hop, requiring the batched ladder to produce a Route identical hop for
// hop (and attempt for attempt) to the sequential loop's.
func TestTraceBatchedMatchesSequential(t *testing.T) {
	const pathLen = 9
	mk := func(batch bool, window, hint, probesPerHop int) *Route {
		opts := Options{
			MaxTTL: 20, ProbesPerHop: probesPerHop,
			Batch: batch, BatchWindow: window, PathHint: hint,
		}
		var tp Transport
		if batch {
			tp = scriptedBatchChain(t, pathLen)
		} else {
			tp = scriptedChain(t, pathLen)
		}
		rt, err := NewParisUDP(tp, opts).Trace(tDest)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	for _, probes := range []int{1, 3} {
		want := mk(false, 0, 0, probes)
		if len(want.Hops) != pathLen || want.Halt != HaltDestination {
			t.Fatalf("sequential baseline: %d hops halt %v, want %d hops destination",
				len(want.Hops), want.Halt, pathLen)
		}
		for _, window := range []int{0, 1, 3, 8, 100} {
			for _, hint := range []int{0, pathLen, pathLen - 4, pathLen + 5} {
				got := mk(true, window, hint, probes)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("probes=%d window=%d hint=%d: batched route differs from sequential\ngot:  %+v\nwant: %+v",
						probes, window, hint, got, want)
				}
			}
		}
	}
}

// TestTraceBatchedScratchReuse traces twice through one Scratch and checks
// an exact PathHint finishes the whole trace in a single batch of exactly
// the ladder length — the zero-overshoot steady state campaigns run in.
func TestTraceBatchedScratchReuse(t *testing.T) {
	const pathLen = 7
	sc := NewScratch()
	tp := scriptedBatchChain(t, pathLen)
	opts := Options{MaxTTL: 30, Batch: true, PathHint: pathLen, Scratch: sc}
	first, err := NewParisUDP(tp, opts).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Hops) != pathLen {
		t.Fatalf("got %d hops, want %d", len(first.Hops), pathLen)
	}
	if !reflect.DeepEqual(tp.batches, []int{pathLen}) {
		t.Fatalf("batches = %v, want a single batch of %d (exact hint, no overshoot)", tp.batches, pathLen)
	}
	tp.batches = nil
	second, err := NewParisUDP(tp, opts).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tp.batches, []int{pathLen}) {
		t.Fatalf("second trace batches = %v, want [%d]", tp.batches, pathLen)
	}
	if !sameHops(first.Hops, second.Hops) {
		t.Error("second trace through the same Scratch changed the measured hops")
	}
}

func sameHops(a, b []Hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// IPID advances with the global probe index; everything else
		// must be stable across reuse.
		x, y := a[i], b[i]
		x.IPID, y.IPID = 0, 0
		if x != y {
			return false
		}
	}
	return true
}

// TestTraceBatchFallback sets Options.Batch against a transport that does
// not implement BatchTransport and expects the sequential loop to run,
// producing the same route.
func TestTraceBatchFallback(t *testing.T) {
	const pathLen = 6
	want, err := NewParisUDP(scriptedChain(t, pathLen), Options{MaxTTL: 20}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	tp := scriptedChain(t, pathLen) // captureTransport: no ExchangeBatch method
	got, err := NewParisUDP(tp, Options{MaxTTL: 20, Batch: true}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batch-requested trace over a non-batching transport differs from sequential\ngot:  %+v\nwant: %+v", got, want)
	}
	if len(tp.probes) != pathLen {
		t.Errorf("fallback sent %d probes, want %d", len(tp.probes), pathLen)
	}
}

// hostUnreachableFrom builds a Destination Unreachable (!H) response.
func hostUnreachableFrom(t *testing.T, from netip.Addr, probe []byte) []byte {
	t.Helper()
	m, err := packet.DestUnreachable(packet.CodeHostUnreachable, probe)
	if err != nil {
		t.Fatal(err)
	}
	body, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := packet.ParseIPv4(probe)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&packet.IPv4{TTL: 60, Protocol: packet.ProtoICMP, Src: from, Dst: hdr.Src}).Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHaltPrefersRecordedHop pins the halt-classification rule: when the
// destination's Port Unreachable is the recorded hop of the terminal TTL, a
// sibling attempt's Host Unreachable must not flip the halt to unreachable.
func TestHaltPrefersRecordedHop(t *testing.T) {
	const pathLen = 4
	tp := &captureTransport{src: tSrc}
	tp.respond = func(i int, probe []byte) []byte {
		hdr, _, err := packet.ParseIPv4(probe)
		if err != nil {
			t.Fatal(err)
		}
		hop := int(hdr.TTL)
		if hop < pathLen {
			return timeExceededFrom(t, router(hop), probe, 255-uint8(hop), uint16(i+1))
		}
		// Terminal TTL: the first attempt reaches the destination, the
		// second draws !H from a router on a stale path.
		if i%2 == 0 {
			return portUnreachableFrom(t, tDest, probe)
		}
		return hostUnreachableFrom(t, router(99), probe)
	}
	rt, err := NewParisUDP(tp, Options{MaxTTL: 20, ProbesPerHop: 2}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Halt != HaltDestination {
		t.Errorf("halt = %v, want destination (the recorded hop reached the destination)", rt.Halt)
	}
	if !rt.Reached() {
		t.Error("Reached() = false for a route whose recorded terminal hop answered")
	}

	// Converse: the recorded hop is the unreachable (first attempt a
	// star, second !H) — the halt must stay unreachable.
	tp2 := &captureTransport{src: tSrc}
	tp2.respond = func(i int, probe []byte) []byte {
		hdr, _, err := packet.ParseIPv4(probe)
		if err != nil {
			t.Fatal(err)
		}
		hop := int(hdr.TTL)
		if hop < pathLen {
			return timeExceededFrom(t, router(hop), probe, 255-uint8(hop), uint16(i+1))
		}
		if i%2 == 0 {
			return nil // star
		}
		return hostUnreachableFrom(t, router(99), probe)
	}
	rt2, err := NewParisUDP(tp2, Options{MaxTTL: 20, ProbesPerHop: 2}).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Halt != HaltUnreachable {
		t.Errorf("halt = %v, want unreachable (the recorded hop is the !H)", rt2.Halt)
	}
}
