// Package tracer implements the probing engines compared in the paper:
// classic traceroute (UDP port-varying and ICMP Echo sequence-varying, after
// Jacobson's tool and NetBSD traceroute 1.4a5), Toren-style tcptraceroute,
// and Paris traceroute in its UDP, ICMP Echo and TCP variants.
//
// All engines share one Transport (the simulated network, or a live one) and
// one response-matching pipeline; they differ only in how probe header
// fields are varied — which is precisely the paper's point. Every hop record
// carries the three Paris observables: the probe TTL quoted inside ICMP
// errors, the response TTL, and the response IP ID (Section 2.2).
//
// # Determinism and concurrency contract
//
// An engine is a pure function of (its Options, the destination, and the
// transport's behaviour): Trace holds no state across calls beyond the
// Options it was built with, so the same engine value may trace many
// destinations concurrently as long as the Transport is safe for concurrent
// use — both netsim's and the live transport are. Probe bytes are built
// deterministically from Options (source port seeding included), so against
// a transport whose responses are a pure function of the probe bytes, two
// traces of the same destination are byte-identical, hop for hop.
//
// Hop.RTT is whatever the transport reports for the exchange — netsim's
// virtual-clock RTT when dynamics are enabled, its synthetic steps-derived
// latency otherwise, a wall-clock measurement on the live transport — and
// is carried, never interpreted: engines make no timing decisions from it,
// which keeps traces schedule-independent.
//
// BatchTransport is an optional fast path: engines that detect it submit a
// whole TTL ladder in one call. The contract is strict equivalence — a
// batched trace must return byte-identical hops to the sequential trace
// (netsim pins this under its dynamics layer too), so batching is purely a
// throughput decision.
package tracer
