package tracer

import (
	"errors"
	"time"
)

// This file is the error taxonomy shared by every transport: the paper's
// campaign only works on the real Internet if the measurement layer can tell
// "try again in a moment" from "this will never work", so transports
// classify their failures into exactly those two kinds and the measure
// package's retry/quarantine policy keys on the distinction.
//
// Transient errors (a full socket buffer, an interrupted syscall, a
// simulated outage window) are wrapped with Transient; everything else —
// probe-build failures, closed sockets, cancellation — is fatal. The
// classification survives any number of %w wrappings, so callers test with
// IsTransient at whatever level they hold the error.

// ErrTransient is the sentinel every transient transport error matches:
// errors.Is(err, ErrTransient) reports whether a retry may succeed.
var ErrTransient = errors.New("transient transport error")

// transientError carries an underlying error while matching ErrTransient.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() []error { return []error{e.err, ErrTransient} }

// Transient marks err as transient: the returned error matches both err and
// ErrTransient under errors.Is. A nil err returns nil; an already-transient
// err is returned unchanged.
func Transient(err error) error {
	if err == nil || IsTransient(err) {
		return err
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked transient, through any chain of
// %w wrappings.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// FallibleTransport is implemented by transports that can distinguish "no
// response arrived" (ok=false, a star — a legitimate measurement) from "the
// exchange itself failed" (err != nil — nothing was measured). The trace
// loops prefer ExchangeErr when a transport offers it, so transport faults
// surface as trace errors carrying the taxonomy above instead of silently
// recording stars; plain Transports keep the historical ok=false semantics.
type FallibleTransport interface {
	Transport
	// ExchangeErr is Exchange with the failure channel explicit. err and
	// ok are mutually exclusive: a non-nil err means the probe was not
	// measured (resp and ok are meaningless), and the error is transient
	// iff IsTransient reports so.
	ExchangeErr(probe []byte) (resp []byte, rtt time.Duration, ok bool, err error)
}
