package tracer

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"repro/internal/packet"
)

// FieldRole describes how one probing discipline treats one header field —
// the content of the paper's Fig. 2. Roles are computed empirically: the
// engine builds a sequence of real probes and observes which fields change,
// rather than asserting a table by hand.
type FieldRole struct {
	Field string
	// Varies is true when the tool changes the field between probes of
	// one traceroute.
	Varies bool
	// LoadBalanced is true when the field feeds per-flow load balancers:
	// IP addresses, protocol, and the first four transport octets
	// (Section 2.1's empirical finding).
	LoadBalanced bool
}

// fieldProbe extracts the named fields from a serialized probe.
func probeFields(pkt []byte) (map[string]uint64, error) {
	h, payload, err := packet.ParseIPv4(pkt)
	if err != nil {
		return nil, err
	}
	f := map[string]uint64{
		"ip.tos":      uint64(h.TOS),
		"ip.id":       uint64(h.ID),
		"ip.protocol": uint64(h.Protocol),
	}
	switch h.Protocol {
	case packet.ProtoUDP:
		u, _, err := packet.ParseUDP(payload)
		if err != nil {
			return nil, err
		}
		f["udp.sport"] = uint64(u.SrcPort)
		f["udp.dport"] = uint64(u.DstPort)
		f["udp.checksum"] = uint64(u.Checksum)
	case packet.ProtoICMP:
		m, err := packet.ParseICMP(payload)
		if err != nil {
			return nil, err
		}
		f["icmp.type"] = uint64(m.Type)
		f["icmp.code"] = uint64(m.Code)
		f["icmp.checksum"] = uint64(m.Checksum)
		f["icmp.id"] = uint64(m.ID)
		f["icmp.seq"] = uint64(m.Seq)
	case packet.ProtoTCP:
		th, _, _, err := packet.ParseTCP(payload)
		if err != nil {
			return nil, err
		}
		f["tcp.sport"] = uint64(th.SrcPort)
		f["tcp.dport"] = uint64(th.DstPort)
		f["tcp.seq"] = uint64(th.Seq)
	}
	return f, nil
}

// loadBalancedFields lists the fields inside the flow identifier: the
// five-tuple-ish IP fields plus whatever sits in the first four transport
// octets (ports for UDP/TCP; type, code and checksum for ICMP).
var loadBalancedFields = map[string]bool{
	"ip.tos":        true, // some routers include TOS (Section 2.1)
	"ip.protocol":   true,
	"udp.sport":     true,
	"udp.dport":     true,
	"tcp.sport":     true,
	"tcp.dport":     true,
	"icmp.type":     true,
	"icmp.code":     true,
	"icmp.checksum": true,
}

// HeaderRoles builds n probes with the given engine constructor and reports
// each observed field's role. It is the machine-checked regeneration of the
// paper's Fig. 2.
func HeaderRoles(mk func(Transport) Tracer, n int) ([]FieldRole, error) {
	rec := &recordingTransport{src: netip.AddrFrom4([4]byte{10, 0, 0, 1})}
	tr := mk(rec)
	dest := netip.AddrFrom4([4]byte{192, 0, 2, 1})
	if _, err := tr.Trace(dest); err != nil {
		return nil, fmt.Errorf("tracer: header roles: %w", err)
	}
	if len(rec.probes) < n {
		n = len(rec.probes)
	}
	if n < 2 {
		return nil, fmt.Errorf("tracer: need at least two probes, got %d", n)
	}
	first, err := probeFields(rec.probes[0])
	if err != nil {
		return nil, err
	}
	varies := map[string]bool{}
	for i := 1; i < n; i++ {
		f, err := probeFields(rec.probes[i])
		if err != nil {
			return nil, err
		}
		for k, v := range f {
			if v != first[k] {
				varies[k] = true
			}
		}
	}
	var names []string
	for k := range first {
		names = append(names, k)
	}
	sort.Strings(names)
	roles := make([]FieldRole, 0, len(names))
	for _, k := range names {
		roles = append(roles, FieldRole{
			Field:        k,
			Varies:       varies[k],
			LoadBalanced: loadBalancedFields[k],
		})
	}
	return roles, nil
}

// ViolatesFlowConstancy reports whether any load-balanced field varies —
// the design flaw of classic traceroute that Paris traceroute fixes.
func ViolatesFlowConstancy(roles []FieldRole) bool {
	for _, r := range roles {
		if r.Varies && r.LoadBalanced {
			return true
		}
	}
	return false
}

// WriteHeaderRolesTable renders the Fig. 2 comparison for all six probing
// disciplines.
func WriteHeaderRolesTable(w io.Writer) error {
	engines := []struct {
		name string
		mk   func(Transport) Tracer
	}{
		{"classic-udp", func(tp Transport) Tracer { return NewClassicUDP(tp, Options{MaxTTL: 8, MaxConsecutiveStars: 100}) }},
		{"paris-udp", func(tp Transport) Tracer { return NewParisUDP(tp, Options{MaxTTL: 8, MaxConsecutiveStars: 100}) }},
		{"classic-icmp", func(tp Transport) Tracer { return NewClassicICMP(tp, Options{MaxTTL: 8, MaxConsecutiveStars: 100}) }},
		{"paris-icmp", func(tp Transport) Tracer { return NewParisICMP(tp, Options{MaxTTL: 8, MaxConsecutiveStars: 100}) }},
		{"tcptraceroute", func(tp Transport) Tracer { return NewTCPTraceroute(tp, Options{MaxTTL: 8, MaxConsecutiveStars: 100}) }},
		{"paris-tcp", func(tp Transport) Tracer { return NewParisTCP(tp, Options{MaxTTL: 8, MaxConsecutiveStars: 100}) }},
	}
	fmt.Fprintf(w, "%-14s %-14s %-7s %-13s %s\n", "tool", "field", "varies", "load-balanced", "verdict")
	for _, e := range engines {
		roles, err := HeaderRoles(e.mk, 8)
		if err != nil {
			return err
		}
		verdict := "flow constant (safe)"
		if ViolatesFlowConstancy(roles) {
			verdict = "FLOW IDENTIFIER VARIES (anomalies expected)"
		}
		for i, r := range roles {
			v := ""
			if i == 0 {
				v = verdict
			}
			fmt.Fprintf(w, "%-14s %-14s %-7v %-13v %s\n", e.name, r.Field, r.Varies, r.LoadBalanced, v)
		}
	}
	return nil
}

// recordingTransport captures probes and never answers.
type recordingTransport struct {
	src    netip.Addr
	probes [][]byte
}

func (r *recordingTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	r.probes = append(r.probes, append([]byte(nil), probe...))
	return nil, 0, false
}

func (r *recordingTransport) Source() netip.Addr { return r.src }
