package tracer

import (
	"bytes"
	"strings"
	"testing"
)

func rolesFor(t *testing.T, mk func(Transport) Tracer) map[string]FieldRole {
	t.Helper()
	roles, err := HeaderRoles(mk, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]FieldRole, len(roles))
	for _, r := range roles {
		m[r.Field] = r
	}
	return m
}

// TestHeaderFieldRoles regenerates the paper's Fig. 2 claims from the
// actual probe bytes each engine emits.
func TestHeaderFieldRoles(t *testing.T) {
	opts := Options{MaxTTL: 8, MaxConsecutiveStars: 100}

	classicUDP := rolesFor(t, func(tp Transport) Tracer { return NewClassicUDP(tp, opts) })
	if !classicUDP["udp.dport"].Varies {
		t.Error("classic UDP must vary the destination port (#)")
	}
	if !ViolatesFlowConstancy([]FieldRole{classicUDP["udp.dport"]}) {
		t.Error("classic UDP's varying dport must be flagged as load-balanced")
	}

	parisUDP := rolesFor(t, func(tp Transport) Tracer { return NewParisUDP(tp, opts) })
	if parisUDP["udp.sport"].Varies || parisUDP["udp.dport"].Varies {
		t.Error("paris UDP must hold both ports constant")
	}
	if !parisUDP["udp.checksum"].Varies {
		t.Error("paris UDP must vary the checksum (*)")
	}
	if parisUDP["udp.checksum"].LoadBalanced {
		t.Error("the UDP checksum is outside the first four octets; not load-balanced")
	}

	classicICMP := rolesFor(t, func(tp Transport) Tracer { return NewClassicICMP(tp, opts) })
	if !classicICMP["icmp.seq"].Varies || !classicICMP["icmp.checksum"].Varies {
		t.Error("classic ICMP must vary seq and therefore the checksum (#)")
	}

	parisICMP := rolesFor(t, func(tp Transport) Tracer { return NewParisICMP(tp, opts) })
	if !parisICMP["icmp.seq"].Varies || !parisICMP["icmp.id"].Varies {
		t.Error("paris ICMP must vary both seq and the compensating id (*)")
	}
	if parisICMP["icmp.checksum"].Varies {
		t.Error("paris ICMP must keep the checksum — the flow identifier — constant")
	}

	tcpT := rolesFor(t, func(tp Transport) Tracer { return NewTCPTraceroute(tp, opts) })
	if !tcpT["ip.id"].Varies {
		t.Error("tcptraceroute must vary the IP Identification field (+)")
	}
	if tcpT["tcp.sport"].Varies || tcpT["tcp.dport"].Varies || tcpT["tcp.seq"].Varies {
		t.Error("tcptraceroute keeps TCP fields constant")
	}

	parisTCP := rolesFor(t, func(tp Transport) Tracer { return NewParisTCP(tp, opts) })
	if !parisTCP["tcp.seq"].Varies {
		t.Error("paris TCP must vary the sequence number (*)")
	}
	if parisTCP["tcp.sport"].Varies || parisTCP["tcp.dport"].Varies {
		t.Error("paris TCP must hold ports constant")
	}

	// The headline of Fig. 2: classic tools violate flow constancy, the
	// flow-stable tools do not.
	for name, tc := range map[string]struct {
		roles    map[string]FieldRole
		violates bool
	}{
		"classic-udp":   {classicUDP, true},
		"classic-icmp":  {classicICMP, true},
		"paris-udp":     {parisUDP, false},
		"paris-icmp":    {parisICMP, false},
		"paris-tcp":     {parisTCP, false},
		"tcptraceroute": {tcpT, false},
	} {
		var all []FieldRole
		for _, r := range tc.roles {
			all = append(all, r)
		}
		if got := ViolatesFlowConstancy(all); got != tc.violates {
			t.Errorf("%s: ViolatesFlowConstancy = %v, want %v", name, got, tc.violates)
		}
	}
}

func TestWriteHeaderRolesTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeaderRolesTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"classic-udp", "paris-tcp", "FLOW IDENTIFIER VARIES", "flow constant"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
