// Package flowkey computes the quoted-flow-identifier keys that route a
// raw-socket response back to the probe it answers. It is the one shared
// definition of the attribution rule: the live transport and mux register
// in-flight probes under these keys, and the replay transport re-binds a
// captured campaign's responses with the same logic so offline replays
// attribute identically to the original run.
//
// The key is the Paris invariant the paper builds on (Section 2.1): an ICMP
// error quotes the offending probe's IP header plus at least its first
// eight transport octets, and those first transport octets are exactly
// where every discipline keeps its flow identifier and its per-probe
// identifier (UDP ports and checksum; ICMP type/code/checksum/id/seq; TCP
// ports and sequence number). A probe therefore registers under the flow
// identifier of its own bytes — inner source, destination, protocol, IP ID,
// and the first eight transport octets — and an ICMP error is matched by
// extracting the same tuple from its quoted packet. Fields routers mutate
// in flight (the quoted TTL, which the paper's Fig. 4 shows arriving as 0
// or 1, and the IP checksum that follows it) are deliberately excluded, as
// is the outer source address, which NAT boxes rewrite (Fig. 5).
//
// Terminal responses carry no quote, so they match on what the destination
// echoes back instead: Echo Replies return the request's identifier and
// sequence number, and TCP RST/SYN-ACK segments return the probe's ports
// (swapped) and its sequence number acknowledged. When several in-flight
// probes share a terminal key (tcptraceroute sends a constant sequence
// number), responses resolve to the oldest unanswered probe — the FIFO
// rule — which is the only ambiguity the quoted-header invariant cannot
// remove (pinned by the replay suite's reordered-TCP regression test).
package flowkey

import (
	"repro/internal/packet"
)

// Key identifies the probe a response answers. Kind keeps the three
// namespaces (quoted errors, echo replies, TCP segments) disjoint. The
// struct is comparable and used directly as a map key.
type Key struct {
	Kind  uint8
	Src   [4]byte // probe source (inner header for quoted errors)
	Dst   [4]byte // probe destination (zero where rewriting makes it unsafe)
	Proto uint8
	IPID  uint16  // probe IP ID as quoted; 0 in terminal namespaces
	T     [8]byte // transport octets: quoted first 8 / echo id+seq / ports+ack
}

// The three key namespaces.
const (
	KindQuoted uint8 = iota + 1
	KindEcho
	KindTCP
)

// first8 copies up to eight transport octets, zero-padding the rest (RFC
// 792 guarantees eight for quoted probes; defensive for shorter captures).
func first8(b []byte) (t [8]byte) {
	copy(t[:], b)
	return t
}

// ProbeKeys derives the keys a serialized probe registers under: always the
// quoted-error key, plus a terminal key for disciplines whose destination
// answers in-protocol. Returns ok=false for packets that are not parseable
// IPv4 probes.
func ProbeKeys(probe []byte) (quoted Key, terminal Key, hasTerminal, ok bool) {
	var h packet.IPv4
	payload, err := packet.ParseIPv4Into(probe, &h)
	if err != nil {
		return Key{}, Key{}, false, false
	}
	quoted = Key{
		Kind:  KindQuoted,
		Src:   h.Src.As4(),
		Dst:   h.Dst.As4(),
		Proto: h.Protocol,
		IPID:  h.ID,
		T:     first8(payload),
	}
	switch h.Protocol {
	case packet.ProtoICMP:
		var m packet.ICMP
		if err := packet.ParseICMPInto(payload, &m); err == nil && m.Type == packet.ICMPTypeEchoRequest {
			k := Key{Kind: KindEcho, Src: h.Src.As4(), Proto: packet.ProtoICMP}
			put16(k.T[0:], m.ID)
			put16(k.T[2:], m.Seq)
			return quoted, k, true, true
		}
	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, err := packet.ParseTCPInto(payload, &th); err == nil {
			k := Key{Kind: KindTCP, Src: h.Src.As4(), Proto: packet.ProtoTCP}
			put16(k.T[0:], th.SrcPort)
			put16(k.T[2:], th.DstPort)
			put32(k.T[4:], th.Seq+1) // RST and SYN-ACK acknowledge seq+1
			return quoted, k, true, true
		}
	}
	return quoted, Key{}, false, true
}

// RespKey classifies an inbound packet and computes the single key it
// matches under. ok=false means the packet cannot answer any probe
// (unparseable, an unrelated ICMP type, our own outbound probe looped back
// by the capture path) and must be dropped.
func RespKey(resp []byte) (Key, bool) {
	var h packet.IPv4
	payload, err := packet.ParseIPv4Into(resp, &h)
	if err != nil {
		return Key{}, false
	}
	switch h.Protocol {
	case packet.ProtoICMP:
		var m packet.ICMP
		if err := packet.ParseICMPInto(payload, &m); err != nil {
			return Key{}, false
		}
		if m.IsError() {
			var inner packet.IPv4
			quotedTransport, err := packet.ParseIPv4Into(m.Payload, &inner)
			if err != nil {
				return Key{}, false
			}
			return Key{
				Kind:  KindQuoted,
				Src:   inner.Src.As4(),
				Dst:   inner.Dst.As4(),
				Proto: inner.Protocol,
				IPID:  inner.ID,
				T:     first8(quotedTransport),
			}, true
		}
		if m.Type == packet.ICMPTypeEchoReply {
			// The reply's destination is the probe's source; the reply's
			// source may have been rewritten, so it stays out of the key.
			k := Key{Kind: KindEcho, Src: h.Dst.As4(), Proto: packet.ProtoICMP}
			put16(k.T[0:], m.ID)
			put16(k.T[2:], m.Seq)
			return k, true
		}
		return Key{}, false
	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, err := packet.ParseTCPInto(payload, &th); err != nil {
			return Key{}, false
		}
		if th.Flags&(packet.TCPRst|packet.TCPSyn) == 0 {
			return Key{}, false
		}
		// Swap the ports back into probe orientation.
		k := Key{Kind: KindTCP, Src: h.Dst.As4(), Proto: packet.ProtoTCP}
		put16(k.T[0:], th.DstPort)
		put16(k.T[2:], th.SrcPort)
		put32(k.T[4:], th.Ack)
		return k, true
	default:
		return Key{}, false
	}
}

func put16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }

func put32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
