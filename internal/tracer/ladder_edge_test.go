package tracer

import (
	"reflect"
	"testing"

	"repro/internal/packet"
)

// Edge cases of the windowed batched ladder that the differential sweeps do
// not pin: a star run whose halt lands exactly on a window boundary, a
// path hint that overshoots MaxTTL, and the sequential fallback running
// with every batch option set.

// scriptedDeadEnd answers Time Exceeded below hop silentFrom and nothing
// from there on — a path that never terminates, so only the star-run rule
// can halt the trace.
func scriptedDeadEnd(t *testing.T, silentFrom int) *batchCaptureTransport {
	tp := &batchCaptureTransport{captureTransport: captureTransport{src: tSrc}}
	tp.respond = func(i int, probe []byte) []byte {
		hdr, _, err := packet.ParseIPv4(probe)
		if err != nil {
			t.Fatal(err)
		}
		hop := int(hdr.TTL)
		if hop < silentFrom {
			return timeExceededFrom(t, router(hop), probe, 255-uint8(hop), uint16(i+1))
		}
		return nil
	}
	return tp
}

// TestTraceBatchedStarRunAtWindowBoundary makes the MaxConsecutiveStars-th
// star the final result of a window: the ladder must halt there, match the
// sequential loop hop for hop, and submit no batch beyond the boundary.
func TestTraceBatchedStarRunAtWindowBoundary(t *testing.T) {
	const (
		silentFrom = 5 // TTLs 1-4 respond; 5 and beyond never do
		window     = 4
		stars      = 4 // star run 5..8 ends exactly at window [5-8]'s edge
	)
	opts := Options{MaxTTL: 30, MaxConsecutiveStars: stars}
	want, err := NewParisUDP(scriptedDeadEnd(t, silentFrom), opts).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if want.Halt != HaltStars || len(want.Hops) != silentFrom-1+stars {
		t.Fatalf("sequential baseline: halt=%v hops=%d, want stars after hop %d",
			want.Halt, len(want.Hops), silentFrom-1+stars)
	}

	bopts := opts
	bopts.Batch = true
	bopts.BatchWindow = window
	tp := scriptedDeadEnd(t, silentFrom)
	got, err := NewParisUDP(tp, bopts).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched route differs from sequential at a boundary-aligned star run\ngot:  %+v\nwant: %+v", got, want)
	}
	if !reflect.DeepEqual(tp.batches, []int{window, window}) {
		t.Errorf("batches = %v, want [%d %d]: the star-run halt must not submit a third window", tp.batches, window, window)
	}
}

// TestTraceBatchedPathHintBeyondMaxTTL hands the first window a hint longer
// than the whole ladder: the window must clamp to MaxTTL, producing one
// batch of exactly the ladder length and the same max-ttl halt as the
// sequential loop.
func TestTraceBatchedPathHintBeyondMaxTTL(t *testing.T) {
	const maxTTL = 6
	opts := Options{MaxTTL: maxTTL}
	want, err := NewParisUDP(scriptedDeadEnd(t, 99), opts).Trace(tDest) // never terminal
	if err != nil {
		t.Fatal(err)
	}
	if want.Halt != HaltMaxTTL || len(want.Hops) != maxTTL {
		t.Fatalf("sequential baseline: halt=%v hops=%d, want max-ttl at %d", want.Halt, len(want.Hops), maxTTL)
	}

	bopts := opts
	bopts.Batch = true
	bopts.PathHint = maxTTL + 10
	tp := scriptedDeadEnd(t, 99)
	got, err := NewParisUDP(tp, bopts).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched route with an overlong hint differs from sequential\ngot:  %+v\nwant: %+v", got, want)
	}
	if !reflect.DeepEqual(tp.batches, []int{maxTTL}) {
		t.Errorf("batches = %v, want a single clamped batch of %d", tp.batches, maxTTL)
	}
}

// TestTraceBatchFallbackWithBatchOptions points every batch option —
// window, hint, scratch, multiple probes per hop — at a transport that
// implements only Transport: the sequential fallback must run, match the
// plain sequential route exactly, and send not one probe more.
func TestTraceBatchFallbackWithBatchOptions(t *testing.T) {
	const pathLen = 6
	base := Options{MaxTTL: 20, ProbesPerHop: 2}
	want, err := NewParisUDP(scriptedChain(t, pathLen), base).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}

	opts := base
	opts.Batch = true
	opts.BatchWindow = 4
	opts.PathHint = 3
	opts.Scratch = NewScratch()
	tp := scriptedChain(t, pathLen) // captureTransport: no ExchangeBatch method
	got, err := NewParisUDP(tp, opts).Trace(tDest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback trace with batch options differs from sequential\ngot:  %+v\nwant: %+v", got, want)
	}
	if wantProbes := pathLen * base.ProbesPerHop; len(tp.probes) != wantProbes {
		t.Errorf("fallback sent %d probes, want %d (no window overshoot on the sequential path)", len(tp.probes), wantProbes)
	}
}
