package live

import "time"

// CaptureSink receives a copy of every datagram the live layer puts on or
// takes off the wire — the record side of the record/replay workload
// (pcap.Capture is the standard implementation; the replay transport
// consumes what it writes).
//
// The tap is deliberately pre-dedup and pre-attribution: outbound records
// include retransmits and re-sends after a socket reopen, inbound records
// include duplicates, late arrivals for already-resolved probes, and
// unrelated host traffic that the demultiplexer will discard. Replays
// therefore see exactly the traffic the original attribution logic saw.
//
// Implementations must be safe for concurrent use: the mux's reader loop
// records inbound datagrams while worker batches record their sends. The
// transports guarantee ordering per conversation — a probe is always
// recorded before any response to it — by recording sends before the
// datagrams reach the conn.
type CaptureSink interface {
	// CaptureOutbound records one injected probe (full IPv4 header, as
	// passed to the conn — the IP_HDRINCL bytes).
	CaptureOutbound(ts time.Time, pkt []byte)
	// CaptureInbound records one received datagram exactly as the raw
	// socket delivered it, before demultiplexing or deduplication.
	CaptureInbound(ts time.Time, pkt []byte)
}
