package live

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/pcap"
	"repro/internal/tracer"
)

// Capture-under-failure suite: whatever interruption ends a campaign —
// socket death and recovery, context cancellation — the capture file on
// disk must be a complete, readable pcap of everything recorded up to that
// point, with no torn trailing record.

// readCapture closes the sink and parses the installed file fully.
func readCapture(t *testing.T, c *pcap.Capture, path string) []pcap.Record {
	t.Helper()
	if err := c.Close(); err != nil {
		t.Fatalf("capture close: %v", err)
	}
	recs, err := pcap.ReadFile(path)
	if err != nil {
		t.Fatalf("capture at %s does not parse: %v", path, err)
	}
	if len(recs) != c.Count() {
		t.Fatalf("file holds %d records, sink recorded %d", len(recs), c.Count())
	}
	return recs
}

// TestMuxCaptureSurvivesSocketRecovery kills the socket mid-campaign (the
// TestMuxSocketFailureRecovery scenario) with a capture tap armed: the mux
// redials and re-sends every stranded probe, and the capture must stay
// readable and complete — re-sends recorded like any transmission.
func TestMuxCaptureSurvivesSocketRecovery(t *testing.T) {
	const seed, workers, dests = 29, 4, 8
	sc := muxTopo(t, dests, seed)
	path := filepath.Join(t.TempDir(), "recovery.pcap")
	cap, err := pcap.CreateCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	responder := netsimResponder(sc.Net)
	fake1 := &SimConn{Respond: responder}
	fake1.ReadErr = func(call int) error {
		if call == 0 {
			return errors.New("fake: network down")
		}
		return nil
	}
	var mu sync.Mutex
	var conns []*SimConn
	m, err := NewMux(MuxConfig{
		Source: sc.Net.Source(), Conn: fake1, Capture: cap,
		Redial: func() (PacketConn, error) {
			mu.Lock()
			defer mu.Unlock()
			c := &SimConn{Respond: responder}
			conns = append(conns, c)
			return c, nil
		},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := muxTraceAll(t, m, sc, workers)
	h := m.Health()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if h.Reopens != 1 {
		t.Fatalf("reopens=%d, want 1 — scenario did not exercise recovery", h.Reopens)
	}
	want := muxBaseline(t, muxTopo(t, dests, seed))
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("dest %v: route differs after recovery", sc.Dests[i])
		}
	}

	recs := readCapture(t, cap, path)
	// Every send on both conns was recorded: the probes stranded on the
	// dead socket appear once for the original send and once for the
	// re-send on the replacement.
	mu.Lock()
	wantSends := fake1.SendCount() + conns[0].SendCount()
	mu.Unlock()
	outbound := 0
	src := sc.Net.Source().As4()
	for _, r := range recs {
		if len(r.Data) >= 20 && [4]byte{r.Data[12], r.Data[13], r.Data[14], r.Data[15]} == src {
			outbound++
		}
	}
	if outbound != wantSends {
		t.Errorf("capture holds %d outbound records, conns saw %d sends", outbound, wantSends)
	}
	if len(recs) <= outbound {
		t.Errorf("capture holds no inbound records (%d total, %d outbound)", len(recs), outbound)
	}
}

// TestCaptureSurvivesContextCancellation cancels a live transport's
// context mid-batch: the exchange fails with the context error, and the
// capture still installs a complete readable file of the traffic so far.
func TestCaptureSurvivesContextCancellation(t *testing.T) {
	sc := muxTopo(t, 2, 43)
	path := filepath.Join(t.TempDir(), "cancelled.pcap")
	cap, err := pcap.CreateCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	responder := netsimResponder(sc.Net)
	calls := 0
	// Answer the first window normally, then go silent and cancel: the
	// transport is left waiting on probes that will never resolve except
	// through the context.
	fake := &SimConn{Respond: func(probe []byte) ([]byte, bool) {
		calls++
		if calls > 8 {
			cancel()
			return nil, false
		}
		return responder(probe)
	}}
	tp, err := New(Config{Source: sc.Net.Source(), Conn: fake, Capture: cap, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	_, err = tracer.NewParisUDP(tp, tracer.Options{Batch: true}).Trace(sc.Dests[0])
	if err == nil {
		t.Fatal("trace survived a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("trace failed with %v, want a context.Canceled chain", err)
	}

	recs := readCapture(t, cap, path)
	if len(recs) == 0 {
		t.Fatal("capture lost the traffic sent before cancellation")
	}
	// The interrupted batch's probes were recorded before the send —
	// record-before-send ordering — so the capture must hold more records
	// than the answered first window alone.
	if len(recs) < 9 {
		t.Errorf("capture holds %d records, want the first window plus the interrupted batch", len(recs))
	}
}
