package live

import (
	"fmt"
	"net/netip"
	"os"
	"strings"
)

// ReadDestsFile loads a destination list for a live campaign: one IPv4
// address per line, with blank lines and `#` comments (whole-line or
// trailing) skipped. Duplicates are rejected with an error naming both
// lines — the measurement layer's statistics are per destination and
// assume one owner per address, so a silent dedup would hide a broken
// input file.
func ReadDestsFile(path string) ([]netip.Addr, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("live: dests file: %w", err)
	}
	var dests []netip.Addr
	firstLine := make(map[netip.Addr]int)
	for i, line := range strings.Split(string(data), "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		a, err := netip.ParseAddr(line)
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("live: dests file %s:%d: %q is not an IPv4 address", path, i+1, line)
		}
		if prev, dup := firstLine[a]; dup {
			return nil, fmt.Errorf("live: dests file %s:%d: duplicate destination %v (first at line %d)", path, i+1, a, prev)
		}
		firstLine[a] = i + 1
		dests = append(dests, a)
	}
	if len(dests) == 0 {
		return nil, fmt.Errorf("live: dests file %s lists no destinations", path)
	}
	return dests, nil
}
