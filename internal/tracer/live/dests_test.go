package live

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDests(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dests.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadDestsFile(t *testing.T) {
	path := writeDests(t, `# campaign targets
192.0.2.1
198.51.100.7   # a trailing comment

   203.0.113.9
`)
	got, err := ReadDestsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []netip.Addr{
		netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		netip.AddrFrom4([4]byte{198, 51, 100, 7}),
		netip.AddrFrom4([4]byte{203, 0, 113, 9}),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d destinations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dest %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadDestsFileRejectsDuplicates(t *testing.T) {
	path := writeDests(t, "192.0.2.1\n198.51.100.7\n192.0.2.1\n")
	_, err := ReadDestsFile(path)
	if err == nil {
		t.Fatal("duplicate destination accepted")
	}
	// The error names both occurrences for a fixable diagnosis.
	if msg := err.Error(); !strings.Contains(msg, ":3") || !strings.Contains(msg, "line 1") {
		t.Errorf("duplicate error %q does not name both lines", msg)
	}
}

func TestReadDestsFileRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		name, content string
	}{
		{"not-an-address", "192.0.2.1\nnonsense\n"},
		{"ipv6", "2001:db8::1\n"},
		{"empty", "# only comments\n\n"},
	} {
		path := writeDests(t, tc.content)
		if _, err := ReadDestsFile(path); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := ReadDestsFile(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Error("missing file accepted")
	}
}
