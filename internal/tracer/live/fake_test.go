package live

import (
	"errors"
	"sync"
	"time"
)

// fakeConn is the in-process PacketConn the hermetic tests drive the live
// transport with: every sent probe is answered by the responder (typically
// a second, identical netsim.Network replaying exactly the responses the
// simulator transport would have produced), and the schedule injects the
// pathologies a real network adds on top — reordering, duplication, loss,
// and late arrival. ReadBatch returns ErrTimeout the moment nothing is
// deliverable, which fast-forwards the transport's deadline wheel without
// any real sleeping. All methods are safe for concurrent use, so the
// shared mux's writer workers and reader loop can hit one fake at once
// under -race.
type fakeConn struct {
	mu sync.Mutex

	// respond produces the response for one sent probe; ok=false means the
	// network stays silent (a star at the source of truth).
	respond func(probe []byte) ([]byte, bool)
	sched   fakeSchedule

	seq    int // send ordinal, counted across the conn's lifetime
	queue  [][]byte
	held   []heldResp
	closed bool

	// sends records every probe put on the "wire", in order, for
	// attempt-count assertions.
	sends [][]byte

	// writeErr, when set, can fail a WriteBatch: it receives the call
	// ordinal (counted per WriteBatch invocation) and the datagram count,
	// and returns how many datagrams actually made it out plus the error
	// for the rest. Returning (len, nil) leaves the call untouched.
	writeErr   func(call, n int) (int, error)
	writeCalls int

	// readErr, when set, can fail a ReadBatch with a fatal socket error:
	// it receives the call ordinal (counted per ReadBatch invocation) and
	// returns nil to leave the call untouched. The mux treats any
	// non-ErrTimeout read failure as a dead socket and reopens.
	readErr   func(call int) error
	readCalls int

	// kdrops, when nonzero, is reported by KernelDrops — the fake's
	// SO_RXQ_OVFL seam for receive-pressure tests.
	kdrops uint64
}

// fakeSchedule scripts the fault injection, keyed by send ordinal (the
// running index of WriteBatch datagrams, retries included) and the probe
// bytes themselves.
type fakeSchedule struct {
	// drop discards the response to this send (the probe still reaches the
	// responder — the exchange happened, only the answer is lost).
	drop func(ord int, probe []byte) bool
	// dup delivers the response twice.
	dup func(ord int) bool
	// delay withholds the response for n ReadBatch calls; it models late
	// arrival within the probe's deadline (loss past the deadline is what
	// drop is for), so held responses are still delivered before ReadBatch
	// ever reports a timeout.
	delay func(ord int) int
	// reorder delivers newest-first instead of oldest-first.
	reorder bool
}

type heldResp struct {
	after int
	pkt   []byte
}

func (c *fakeConn) WriteBatch(dgs []Datagram) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("fake: closed")
	}
	limit, werr := len(dgs), error(nil)
	if c.writeErr != nil {
		call := c.writeCalls
		c.writeCalls++
		if s, err := c.writeErr(call, len(dgs)); err != nil {
			limit, werr = s, err
		}
	}
	for _, dg := range dgs[:limit] {
		ord := c.seq
		c.seq++
		probe := append([]byte(nil), dg.Buf...)
		c.sends = append(c.sends, probe)
		resp, ok := c.respond(probe)
		if !ok {
			continue
		}
		if c.sched.drop != nil && c.sched.drop(ord, probe) {
			continue
		}
		n := 1
		if c.sched.dup != nil && c.sched.dup(ord) {
			n = 2
		}
		d := 0
		if c.sched.delay != nil {
			d = c.sched.delay(ord)
		}
		for ; n > 0; n-- {
			if d > 0 {
				c.held = append(c.held, heldResp{after: d, pkt: resp})
			} else {
				c.queue = append(c.queue, resp)
			}
		}
	}
	return limit, werr
}

func (c *fakeConn) ReadBatch(dgs []Datagram) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("fake: closed")
	}
	if c.readErr != nil {
		call := c.readCalls
		c.readCalls++
		if err := c.readErr(call); err != nil {
			return 0, err
		}
	}
	// Advance the virtual clock: release held responses as their delay
	// elapses. A timeout is only reported once nothing is held either —
	// delayed responses are late, not lost.
	for {
		kept := c.held[:0]
		for _, h := range c.held {
			h.after--
			if h.after <= 0 {
				c.queue = append(c.queue, h.pkt)
			} else {
				kept = append(kept, h)
			}
		}
		c.held = kept
		if len(c.queue) > 0 {
			break
		}
		if len(c.held) == 0 {
			return 0, ErrTimeout
		}
	}
	filled := 0
	for filled < len(dgs) && len(c.queue) > 0 {
		var pkt []byte
		if c.sched.reorder {
			pkt = c.queue[len(c.queue)-1]
			c.queue = c.queue[:len(c.queue)-1]
		} else {
			pkt = c.queue[0]
			c.queue = c.queue[1:]
		}
		n := copy(dgs[filled].Buf, pkt)
		dgs[filled].N = n
		filled++
	}
	return filled, nil
}

func (c *fakeConn) SetReadDeadline(time.Time) error { return nil }

func (c *fakeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// KernelDrops implements DropCounter for receive-pressure tests.
func (c *fakeConn) KernelDrops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kdrops
}

// setKernelDrops bumps the fake's cumulative kernel-drop counter.
func (c *fakeConn) setKernelDrops(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.kdrops = v
}

// sendCount returns how many probes have hit the wire so far.
func (c *fakeConn) sendCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sends)
}
