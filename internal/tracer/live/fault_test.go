package live

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/tracer"
)

// Fault-injection tests for the wheel's error paths: transient syscall
// failures on send (ENOBUFS, EINTR), fatal socket errors, cancellation,
// and the jittered retransmit backoff. Everything runs over the SimConn
// (no sleeps: the fake fast-forwards the wheel) and is -race clean.

var _ tracer.FallibleTransport = (*Transport)(nil)

// TestLiveTransientSendFaultDeferred: a WriteBatch that fails with ENOBUFS
// halfway through must not cost the unsent tail any attempts — even with
// Retries: 0 the next wheel turn re-offers the tail and the measured route
// matches the clean baseline exactly.
func TestLiveTransientSendFaultDeferred(t *testing.T) {
	const seed = 7
	net1, dest1 := scenarios[1].build(seed)
	want, err := tracer.NewParisUDP(netsim.NewTransport(net1), tracer.Options{}).Trace(dest1)
	if err != nil {
		t.Fatal(err)
	}

	tp, fake, dest := newFakeTransport(t, scenarios[1].build, seed, SimSchedule{}, 0)
	fake.WriteErr = func(call, n int) (int, error) {
		if call == 0 {
			return n / 2, syscall.ENOBUFS // kernel buffers filled mid-batch
		}
		return n, nil
	}
	got, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true}).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("ENOBUFS tail changed the route\ngot:  %v\nwant: %v", got.Addresses(), want.Addresses())
	}
	if fake.writeCalls < 2 {
		t.Errorf("write calls = %d, want a deferred re-send after the fault", fake.writeCalls)
	}
}

// TestLiveTransientSendFaultExhausted: a conn that never stops returning
// EINTR gets exactly maxSendDefers free re-offers per probe, then degrades
// to the attempt-burning path and stars out — bounded work, no livelock.
func TestLiveTransientSendFaultExhausted(t *testing.T) {
	tp, fake, dest := newFakeTransport(t, scenarios[1].build, 5, SimSchedule{}, 0)
	fake.WriteErr = func(call, n int) (int, error) { return 0, syscall.EINTR }
	got, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true}).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if got.Halt != tracer.HaltStars {
		t.Fatalf("halt = %v, want stars", got.Halt)
	}
	for _, h := range got.Hops {
		if !h.Star() {
			t.Fatalf("hop %d resolved despite a send path that never works", h.TTL)
		}
	}
	// One 8-probe window: maxSendDefers deferred offers plus the final
	// attempt-burning one, all batched per wheel turn.
	if want := maxSendDefers + 1; fake.writeCalls != want {
		t.Errorf("write calls = %d, want %d", fake.writeCalls, want)
	}
	if len(fake.sends) != 0 {
		t.Errorf("%d probes reached the wire through a failing send path", len(fake.sends))
	}
}

// TestLiveFatalSendErrSurfaced: a non-transient send failure must fail the
// probe with the error — not silently star it — and the sequential engine
// sees it through ExchangeErr.
func TestLiveFatalSendErrSurfaced(t *testing.T) {
	tp, fake, dest := newFakeTransport(t, scenarios[1].build, 5, SimSchedule{}, 0)
	fake.WriteErr = func(call, n int) (int, error) { return 0, errors.New("device down") }
	_, err := tracer.NewParisUDP(tp, tracer.Options{}).Trace(dest)
	if err == nil {
		t.Fatal("trace over a dead send path returned a route")
	}
	if !strings.Contains(err.Error(), "live: send: device down") {
		t.Errorf("error %q does not carry the send failure", err)
	}
}

// TestLiveReceiveErrorSurfaced: a socket failure on the receive side fails
// the in-flight probes with the wrapped error.
func TestLiveReceiveErrorSurfaced(t *testing.T) {
	net2, dest := scenarios[1].build(5)
	fake := &SimConn{}
	fake.Respond = func(probe []byte) ([]byte, bool) {
		fake.closed = true // the socket dies after the send
		return nil, false
	}
	tp, err := New(Config{Source: net2.Source(), Conn: fake, Retries: 0})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tracer.NewParisUDP(tp, tracer.Options{}).Trace(dest)
	if err == nil {
		t.Fatal("trace over a broken receive path returned a route")
	}
	if !strings.Contains(err.Error(), "live: receive:") {
		t.Errorf("error %q does not carry the receive failure", err)
	}
}

// TestLiveContextCancel: a canceled Context fails the batch's unresolved
// probes with the context error — before any send for a pre-canceled
// context, and at the next wheel turn for a mid-flight cancellation.
func TestLiveContextCancel(t *testing.T) {
	t.Run("pre-canceled", func(t *testing.T) {
		net2, dest := scenarios[1].build(5)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		fake := &SimConn{Respond: netsimResponder(net2)}
		tp, err := New(Config{Source: net2.Source(), Conn: fake, Context: ctx})
		if err != nil {
			t.Fatal(err)
		}
		_, err = tracer.NewParisUDP(tp, tracer.Options{}).Trace(dest)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trace error = %v, want context.Canceled", err)
		}
	})
	t.Run("mid-flight", func(t *testing.T) {
		net2, dest := scenarios[1].build(5)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		fake := &SimConn{}
		fake.Respond = func(probe []byte) ([]byte, bool) {
			cancel() // arrives while the wheel still owes a response
			return nil, false
		}
		tp, err := New(Config{Source: net2.Source(), Conn: fake, Context: ctx, Retries: 5})
		if err != nil {
			t.Fatal(err)
		}
		_, err = tracer.NewParisUDP(tp, tracer.Options{}).Trace(dest)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trace error = %v, want context.Canceled", err)
		}
	})
}

// TestLiveRetryBackoffRoute: with a retransmit backoff configured, a
// drop-first-attempt schedule still converges to the clean baseline — the
// backoff state rides the same deadline wheel, so the fake fast-forwards
// it without any real sleeping.
func TestLiveRetryBackoffRoute(t *testing.T) {
	const seed = 7
	net1, dest1 := scenarios[1].build(seed)
	want, err := tracer.NewParisUDP(netsim.NewTransport(net1), tracer.Options{}).Trace(dest1)
	if err != nil {
		t.Fatal(err)
	}

	net2, dest := scenarios[1].build(seed)
	seen := make(map[string]bool)
	fake := &SimConn{
		Respond: netsimResponder(net2),
		Sched: SimSchedule{Drop: func(_ int, probe []byte) bool {
			if seen[string(probe)] {
				return false
			}
			seen[string(probe)] = true
			return true
		}},
	}
	start := time.Now()
	tp, err := New(Config{
		Source: net2.Source(), Conn: fake,
		Retries: 1, RetryBackoff: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true}).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("backoff retransmits changed the route\ngot:  %v\nwant: %v", got.Addresses(), want.Addresses())
	}
	// Every probe was dropped once, so every probe was re-sent exactly once
	// after its backoff elapsed (on the fake's virtual clock).
	if len(fake.sends) != 2*len(seen) {
		t.Errorf("sent %d probes for %d unique, want exactly one retransmit each", len(fake.sends), len(seen))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hermetic backoff test took %v; the wheel slept for real", elapsed)
	}
}

// TestRetryDelayDeterministic pins the backoff computation: reproducible
// for a given source seed, exponential in the attempt number, jittered
// within [0.5, 1.5) of the base, capped at the timeout.
func TestRetryDelayDeterministic(t *testing.T) {
	mk := func() *Transport {
		fake := &SimConn{}
		tp, err := New(Config{
			Source:       netip.AddrFrom4([4]byte{192, 0, 2, 9}),
			Conn:         fake,
			Timeout:      2 * time.Second,
			RetryBackoff: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	a, b := mk(), mk()
	var prev time.Duration
	for attempt := 1; attempt <= 8; attempt++ {
		da := a.retryDelay(attempt)
		if db := b.retryDelay(attempt); da != db {
			t.Fatalf("attempt %d: delay not reproducible (%v vs %v)", attempt, da, db)
		}
		base := 100 * time.Millisecond << (attempt - 1)
		if base <= 0 || base > 2*time.Second {
			base = 2 * time.Second
		}
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if da < lo || da >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, da, lo, hi)
		}
		if da == prev {
			t.Fatalf("attempt %d: jitter repeated exactly (%v)", attempt, da)
		}
		prev = da
	}
	// A different source draws a different jitter stream.
	fake := &SimConn{}
	c, err := New(Config{
		Source: netip.AddrFrom4([4]byte{192, 0, 2, 10}), Conn: fake,
		Timeout: 2 * time.Second, RetryBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mk().retryDelay(1) == c.retryDelay(1) {
		t.Error("jitter identical across sources; retransmits would march in lockstep")
	}
}

// TestLiveResultSlotErrReset: a result slice recycled across batches (the
// Scratch steady state) must not leak a previous batch's Err into a clean
// exchange.
func TestLiveResultSlotErrReset(t *testing.T) {
	net2, dest := scenarios[1].build(5)
	fake := &SimConn{Respond: netsimResponder(net2)}
	tp, err := New(Config{Source: net2.Source(), Conn: fake})
	if err != nil {
		t.Fatal(err)
	}
	probe := buildProbe(t, net2.Source(), dest)

	fail := true
	fake.WriteErr = func(call, n int) (int, error) {
		if fail {
			return 0, errors.New("device down")
		}
		return n, nil
	}
	out := make([]tracer.ProbeResult, 1)
	tp.ExchangeBatch([][]byte{probe}, out)
	if out[0].Err == nil || out[0].OK {
		t.Fatalf("failing batch: Err=%v OK=%v, want a send error", out[0].Err, out[0].OK)
	}

	fail = false
	tp.ExchangeBatch([][]byte{probe}, out)
	if out[0].Err != nil {
		t.Fatalf("recycled slot kept stale Err %v", out[0].Err)
	}
	if !out[0].OK {
		t.Fatal("clean exchange through a recycled slot did not resolve")
	}
}

// buildProbe crafts a minimal valid Paris-style UDP probe from src to dst
// with a mid-path TTL, enough for the simulator to answer and the match
// layer to key.
func buildProbe(t *testing.T, src, dst netip.Addr) []byte {
	t.Helper()
	uh := &packet.UDP{SrcPort: 33434, DstPort: 33435}
	dgram, err := packet.MarshalUDP(src, dst, uh, []byte("probe-01"))
	if err != nil {
		t.Fatal(err)
	}
	probe, err := (&packet.IPv4{TTL: 2, Protocol: packet.ProtoUDP, ID: 21, Src: src, Dst: dst}).Marshal(dgram)
	if err != nil {
		t.Fatal(err)
	}
	return probe
}
