// Package live carries the repository's probing engines onto the real
// network: a tracer.Transport / tracer.BatchTransport over raw IPv4
// sockets, sending whole TTL-ladder windows with one sendmmsg and reading
// responses back with recvmmsg, so the batched amortization the simulator
// path earned (PR 3) applies unchanged to live measurement.
//
// # Response-matching contract
//
// Probes go out with IP_HDRINCL: every header field the engines craft —
// TTL, IP ID, the Paris UDP checksum payload, the compensated ICMP Echo
// identifier — reaches the wire verbatim, exactly as the original
// paris-traceroute tool requires. Responses arrive on shared raw ICMP and
// TCP sockets and are demultiplexed back to their in-flight probes by the
// quoted inner header's flow identifier: an ICMP error quotes the probe's
// IP header plus its first eight transport octets (RFC 792), and those
// octets are precisely where each discipline keeps its flow and probe
// identifiers — the Paris invariant of Section 2.1 of the paper. The match
// key is (inner source, inner destination, inner protocol, inner IP ID,
// first eight quoted transport octets); the quoted TTL and checksum, which
// routers mutate in flight (zero-TTL forwarding, Fig. 4), and the outer
// source address, which NAT boxes rewrite (Fig. 5), are excluded. Terminal
// responses match on what the destination echoes back (Echo identifier and
// sequence; TCP ports and acknowledged sequence number), falling back to
// oldest-unanswered FIFO order when a discipline sends indistinguishable
// probes (tcptraceroute's constant sequence number). Everything finer — the
// per-discipline strict matching of Section 2.1 — stays in the tracer's
// shared parseResponse pipeline, identical for simulated and live routes.
//
// Timeouts, retries, and out-of-order, duplicate, or unrelated responses
// are handled by a per-batch deadline wheel: every in-flight probe carries
// its own deadline and attempt count, the receive loop polls until the
// earliest pending deadline, expired probes are re-sent (up to
// Config.Retries times) as one batch, and probes that exhaust their
// attempts resolve as stars. Duplicates resolve against an already-empty
// key queue and are dropped; unrelated traffic never matches a key at all.
//
// # Privileges and the socket seam
//
// The syscall layer sits behind the PacketConn interface (sockets.go). The
// real implementation needs root or CAP_NET_RAW, exists on Linux only, and
// is exercised by an opt-in loopback test; everything above the seam — the
// batching, demultiplexing, timeout, retry, and buffer-recycling logic —
// runs identically over an in-process fake and is pinned by differential
// tests against the simulator: ladders driven through a fake that replays
// netsim-generated responses must produce tracer.Routes equal (in every
// path observable) to the netsim transport's, including under injected
// reorder, duplicate, and drop schedules. Available reports whether raw
// sockets can be opened; New returns a descriptive error when they cannot,
// and callers are expected to fall back to the simulator or exit cleanly.
package live

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/tracer"
)

// Config parameterizes a live transport.
type Config struct {
	// Source is the local IPv4 address probes carry; LocalIPv4 guesses it.
	Source netip.Addr
	// Timeout bounds each probe attempt (the paper's tool waits 2 s).
	// Zero selects 2 s.
	Timeout time.Duration
	// Retries is how many times an unanswered probe is re-sent before it
	// resolves as a star. Zero means send once, never re-send; the
	// simulator's loss-free semantics correspond to Retries: 0.
	Retries int
	// Conn overrides the raw-socket layer — the test seam. Nil dials the
	// platform's real raw sockets (Linux only, needs root/CAP_NET_RAW).
	Conn PacketConn
	// MTU sizes receive buffers. Zero selects 1500.
	MTU int
}

// Transport implements tracer.Transport and tracer.BatchTransport over a
// PacketConn. A Transport serializes its exchanges internally (the shared
// receive sockets cannot attribute responses across interleaved batches),
// so it is safe for concurrent use but gains nothing from it; live
// campaigns should open one Transport per worker, as the paper ran one
// traceroute process per destination slice.
type Transport struct {
	src     netip.Addr
	timeout time.Duration
	retries int
	mtu     int

	mu   sync.Mutex
	conn PacketConn
	// Per-batch scratch, reused under mu across batches.
	slots []slot
	byKey map[matchKey][]int
	send  []Datagram
	recv  []Datagram
}

// slot is one in-flight probe's entry in the deadline wheel.
type slot struct {
	probe            []byte
	dst              [4]byte
	quoted, terminal matchKey
	hasTerminal      bool
	sentAt           time.Time
	deadline         time.Time
	attempts         int
	resolved         bool
}

// New opens a live transport. Construction fails with a descriptive error
// when raw sockets are unavailable (no CAP_NET_RAW, or a non-Linux
// platform) unless cfg.Conn supplies the socket layer.
func New(cfg Config) (*Transport, error) {
	if !cfg.Source.Is4() {
		return nil, fmt.Errorf("live: need an IPv4 source address, got %v", cfg.Source)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	conn := cfg.Conn
	if conn == nil {
		var err error
		conn, err = dialRaw()
		if err != nil {
			return nil, err
		}
	}
	return &Transport{
		src:     cfg.Source,
		timeout: cfg.Timeout,
		retries: cfg.Retries,
		mtu:     cfg.MTU,
		conn:    conn,
		byKey:   make(map[matchKey][]int),
	}, nil
}

// Source implements tracer.Transport.
func (t *Transport) Source() netip.Addr { return t.src }

// Close releases the underlying sockets.
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.conn.Close()
}

// Exchange implements tracer.Transport: a batch of one.
func (t *Transport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	probes := [1][]byte{probe}
	var out [1]tracer.ProbeResult
	t.ExchangeBatch(probes[:], out[:])
	if !out[0].OK {
		return nil, 0, false
	}
	return out[0].Resp, out[0].RTT, true
}

// ExchangeBatch implements tracer.BatchTransport: send the whole window in
// one sendmmsg, demultiplex responses from the shared raw sockets, and
// drive the deadline wheel until every probe has a response or has
// exhausted its attempts. out[i].Resp is refilled with append-truncate, so
// callers recycling one result slice across batches (tracer.Scratch)
// amortize the response buffers exactly as they do against the simulator.
func (t *Transport) ExchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	if len(out) < len(probes) {
		panic("live: ExchangeBatch result slice shorter than probe slice")
	}
	if len(probes) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	unresolved := t.register(probes, out)
	if unresolved == 0 {
		return
	}
	t.sendPending(time.Now(), func(s *slot) bool { return s.attempts == 0 })

	for unresolved > 0 {
		wheelDL := t.earliestDeadline()
		if err := t.conn.SetReadDeadline(wheelDL); err != nil {
			unresolved -= t.expireAll()
			continue
		}
		m, err := t.conn.ReadBatch(t.recv)
		now := time.Now()
		// Consume whatever arrived before acting on any error: a read can
		// legitimately return datagrams alongside a failure (one socket
		// delivered, the other broke) and those responses are real.
		for i := 0; i < m; i++ {
			dg := &t.recv[i]
			key, ok := respKey(dg.Buf[:dg.N])
			if !ok {
				continue // unrelated traffic
			}
			idx, ok := t.pop(key)
			if !ok {
				continue // duplicate, or someone else's conversation
			}
			s := &t.slots[idx]
			s.resolved = true
			out[idx].Resp = append(out[idx].Resp[:0], dg.Buf[:dg.N]...)
			out[idx].RTT = now.Sub(s.sentAt)
			out[idx].OK = true
			unresolved--
		}
		if errors.Is(err, ErrTimeout) {
			// The conn reports the deadline we set has passed: expire
			// everything at or before it. Trusting the conn (not the wall
			// clock) is what lets the fake fast-forward the wheel without
			// real sleeps while the real sockets still pace by time.
			unresolved -= t.expire(wheelDL, now)
			continue
		}
		if err != nil {
			// Socket failure: resolve the remainder as stars and bail.
			unresolved -= t.expireAll()
			continue
		}
	}
	clear(t.byKey)
}

// register parses every probe into its wheel slot and key-table entries,
// resets the result slots, and returns how many probes are in flight.
// Unparseable probes resolve as immediate stars.
func (t *Transport) register(probes [][]byte, out []tracer.ProbeResult) int {
	n := len(probes)
	t.growScratch(n)
	clear(t.byKey)
	unresolved := 0
	for i, p := range probes {
		out[i].OK = false
		out[i].RTT = 0
		if out[i].Resp != nil {
			out[i].Resp = out[i].Resp[:0]
		}
		s := &t.slots[i]
		*s = slot{probe: p}
		quoted, terminal, hasTerminal, ok := probeKeys(p)
		if !ok {
			s.resolved = true
			continue
		}
		s.dst = quoted.dst
		s.quoted, s.terminal, s.hasTerminal = quoted, terminal, hasTerminal
		t.byKey[quoted] = append(t.byKey[quoted], i)
		if hasTerminal {
			t.byKey[terminal] = append(t.byKey[terminal], i)
		}
		unresolved++
	}
	t.slots = t.slots[:n]
	return unresolved
}

// growScratch sizes the slot and datagram scratch for an n-probe batch,
// keeping previously grown receive buffers.
func (t *Transport) growScratch(n int) {
	if cap(t.slots) < n {
		t.slots = make([]slot, n)
	}
	t.slots = t.slots[:n]
	if len(t.recv) == 0 {
		t.recv = make([]Datagram, 32)
		for i := range t.recv {
			t.recv[i].Buf = make([]byte, t.mtu)
		}
	}
}

// sendPending gathers the unresolved slots selected by pick into one
// WriteBatch, stamping their send time, deadline, and attempt count. A send
// error resolves the selected slots as stars (the caller observes the
// shrunken unresolved count through expireAll on the next loop).
func (t *Transport) sendPending(now time.Time, pick func(*slot) bool) {
	t.send = t.send[:0]
	idxs := make([]int, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		if s.resolved || !pick(s) {
			continue
		}
		t.send = append(t.send, Datagram{Buf: s.probe, Dst: s.dst})
		idxs = append(idxs, i)
	}
	if len(t.send) == 0 {
		return
	}
	sent, _ := t.conn.WriteBatch(t.send)
	for k, i := range idxs {
		s := &t.slots[i]
		if k < sent {
			s.sentAt = now
			s.deadline = now.Add(t.timeout)
			s.attempts++
		} else {
			// Never made it onto the wire: burn the attempt with an
			// already-expired deadline so the wheel retries or stars it.
			s.deadline = now
			s.attempts++
		}
	}
}

// earliestDeadline returns the soonest deadline among in-flight probes.
func (t *Transport) earliestDeadline() time.Time {
	var dl time.Time
	for i := range t.slots {
		s := &t.slots[i]
		if s.resolved {
			continue
		}
		if dl.IsZero() || s.deadline.Before(dl) {
			dl = s.deadline
		}
	}
	return dl
}

// expire advances the wheel past dl: probes due at or before it are re-sent
// when they have attempts left and starred otherwise. Returns how many
// resolved (as stars).
func (t *Transport) expire(dl, now time.Time) int {
	starred := 0
	for i := range t.slots {
		s := &t.slots[i]
		if s.resolved || s.deadline.After(dl) {
			continue
		}
		if s.attempts > t.retries {
			s.resolved = true
			starred++
		}
	}
	t.sendPending(now, func(s *slot) bool { return !s.deadline.After(dl) })
	return starred
}

// expireAll stars every in-flight probe — the socket-failure path.
func (t *Transport) expireAll() int {
	starred := 0
	for i := range t.slots {
		s := &t.slots[i]
		if !s.resolved {
			s.resolved = true
			starred++
		}
	}
	return starred
}

// pop resolves key to the oldest unanswered probe registered under it,
// consuming the entry. Entries already resolved through their other key
// are skipped lazily.
func (t *Transport) pop(key matchKey) (int, bool) {
	q := t.byKey[key]
	for len(q) > 0 {
		idx := q[0]
		q = q[1:]
		if !t.slots[idx].resolved {
			t.byKey[key] = q
			return idx, true
		}
	}
	if q != nil {
		t.byKey[key] = q
	}
	return 0, false
}
