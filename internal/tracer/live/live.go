// Package live carries the repository's probing engines onto the real
// network: a tracer.Transport / tracer.BatchTransport over raw IPv4
// sockets, sending whole TTL-ladder windows with one sendmmsg and reading
// responses back with recvmmsg, so the batched amortization the simulator
// path earned (PR 3) applies unchanged to live measurement.
//
// # Response-matching contract
//
// Probes go out with IP_HDRINCL: every header field the engines craft —
// TTL, IP ID, the Paris UDP checksum payload, the compensated ICMP Echo
// identifier — reaches the wire verbatim, exactly as the original
// paris-traceroute tool requires. Responses arrive on shared raw ICMP and
// TCP sockets and are demultiplexed back to their in-flight probes by the
// quoted inner header's flow identifier: an ICMP error quotes the probe's
// IP header plus its first eight transport octets (RFC 792), and those
// octets are precisely where each discipline keeps its flow and probe
// identifiers — the Paris invariant of Section 2.1 of the paper. The match
// key is (inner source, inner destination, inner protocol, inner IP ID,
// first eight quoted transport octets); the quoted TTL and checksum, which
// routers mutate in flight (zero-TTL forwarding, Fig. 4), and the outer
// source address, which NAT boxes rewrite (Fig. 5), are excluded. Terminal
// responses match on what the destination echoes back (Echo identifier and
// sequence; TCP ports and acknowledged sequence number), falling back to
// oldest-unanswered FIFO order when a discipline sends indistinguishable
// probes (tcptraceroute's constant sequence number). Everything finer — the
// per-discipline strict matching of Section 2.1 — stays in the tracer's
// shared parseResponse pipeline, identical for simulated and live routes.
//
// Timeouts, retries, and out-of-order, duplicate, or unrelated responses
// are handled by a per-batch deadline wheel: every in-flight probe carries
// its own deadline and attempt count, the receive loop polls until the
// earliest pending deadline, expired probes are re-sent (up to
// Config.Retries times) as one batch, and probes that exhaust their
// attempts resolve as stars. Duplicates resolve against an already-empty
// key queue and are dropped; unrelated traffic never matches a key at all.
//
// # Privileges and the socket seam
//
// The syscall layer sits behind the PacketConn interface (sockets.go). The
// real implementation needs root or CAP_NET_RAW, exists on Linux only, and
// is exercised by an opt-in loopback test; everything above the seam — the
// batching, demultiplexing, timeout, retry, and buffer-recycling logic —
// runs identically over an in-process fake and is pinned by differential
// tests against the simulator: ladders driven through a fake that replays
// netsim-generated responses must produce tracer.Routes equal (in every
// path observable) to the netsim transport's, including under injected
// reorder, duplicate, and drop schedules. Available reports whether raw
// sockets can be opened; New returns a descriptive error when they cannot,
// and callers are expected to fall back to the simulator or exit cleanly.
package live

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"syscall"
	"time"

	"repro/internal/tracer"
)

// Config parameterizes a live transport.
type Config struct {
	// Source is the local IPv4 address probes carry; LocalIPv4 guesses it.
	Source netip.Addr
	// Timeout bounds each probe attempt (the paper's tool waits 2 s).
	// Zero selects 2 s.
	Timeout time.Duration
	// Retries is how many times an unanswered probe is re-sent before it
	// resolves as a star. Zero means send once, never re-send; the
	// simulator's loss-free semantics correspond to Retries: 0.
	Retries int
	// RetryBackoff spaces the re-sends of an unanswered probe: re-send k
	// waits RetryBackoff << (k-1) after the timeout, capped at Timeout and
	// scaled by a seeded jitter factor in [0.5, 1.5) so synchronized
	// losses do not retransmit in lockstep. Zero keeps the historical
	// immediate re-send.
	RetryBackoff time.Duration
	// Context, when non-nil, cancels in-flight exchanges: on cancellation
	// every unresolved probe of the current batch fails with the context's
	// error (surfaced through ProbeResult.Err / ExchangeErr), and further
	// batches fail the same way immediately. While a batch waits, reads
	// are paced in short quanta so cancellation is noticed mid-timeout.
	// Over a fake conn — whose timeouts fast-forward instead of sleeping —
	// the quanta turn waiting into polling, so fake-driven cancellation
	// tests should cancel promptly or keep Timeout small.
	Context context.Context
	// Conn overrides the raw-socket layer — the test seam. Nil dials the
	// platform's real raw sockets (Linux only, needs root/CAP_NET_RAW).
	Conn PacketConn
	// MTU sizes receive buffers. Zero selects 1500.
	MTU int
	// Capture, when non-nil, receives every probe this transport injects
	// and every datagram it reads back — pre-dedup, so duplicates,
	// retransmits, and unrelated junk are recorded too (pcap.Capture is
	// the standard sink). While a capture is armed the transport stamps
	// wall-clock times, making the capture's timestamps authoritative for
	// offline replay: a replayed RTT equals the original to the nanosecond.
	Capture CaptureSink
}

// Transport implements tracer.Transport and tracer.BatchTransport over a
// PacketConn. A Transport serializes its exchanges internally (the shared
// receive sockets cannot attribute responses across interleaved batches),
// so it is safe for concurrent use but gains nothing from it; live
// campaigns should open one Transport per worker, as the paper ran one
// traceroute process per destination slice.
type Transport struct {
	src     netip.Addr
	timeout time.Duration
	retries int
	backoff time.Duration
	ctx     context.Context
	mtu     int
	capture CaptureSink

	mu   sync.Mutex
	conn PacketConn
	// rng is the jitter stream for retransmit backoff: a SplitMix64
	// counter seeded from the source address, advanced once per delay
	// drawn, so a transport's backoff schedule is reproducible.
	rng uint64
	// Per-batch scratch, reused under mu across batches.
	slots []slot
	byKey map[matchKey][]int
	send  []Datagram
	recv  []Datagram
}

// slot is one in-flight probe's entry in the deadline wheel.
type slot struct {
	probe            []byte
	dst              [4]byte
	quoted, terminal matchKey
	hasTerminal      bool
	sentAt           time.Time
	deadline         time.Time
	attempts         int
	// sendDefers counts consecutive transient send failures (ENOBUFS,
	// EAGAIN, EINTR) absorbed without burning an attempt.
	sendDefers int
	// backoff marks a timed-out probe waiting out its retransmit delay:
	// its deadline is the re-send time, not a response timeout, so the
	// expire pass must not star it.
	backoff  bool
	resolved bool
	// err, when set, is a fatal per-probe failure (send error, socket
	// breakage, cancellation) the wheel surfaces through ProbeResult.Err.
	err error
}

// maxSendDefers bounds how many times a transient syscall failure may
// postpone one probe's send before the failure starts burning attempts.
const maxSendDefers = 3

// New opens a live transport. Construction fails with a descriptive error
// when raw sockets are unavailable (no CAP_NET_RAW, or a non-Linux
// platform) unless cfg.Conn supplies the socket layer.
func New(cfg Config) (*Transport, error) {
	if !cfg.Source.Is4() {
		return nil, fmt.Errorf("live: need an IPv4 source address, got %v", cfg.Source)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	conn := cfg.Conn
	if conn == nil {
		var err error
		conn, err = dialRaw()
		if err != nil {
			return nil, err
		}
	}
	a := cfg.Source.As4()
	return &Transport{
		src:     cfg.Source,
		timeout: cfg.Timeout,
		retries: cfg.Retries,
		backoff: cfg.RetryBackoff,
		ctx:     cfg.Context,
		mtu:     cfg.MTU,
		capture: cfg.Capture,
		conn:    conn,
		rng:     uint64(a[0])<<24 | uint64(a[1])<<16 | uint64(a[2])<<8 | uint64(a[3]),
		byKey:   make(map[matchKey][]int),
	}, nil
}

// Source implements tracer.Transport.
func (t *Transport) Source() netip.Addr { return t.src }

// Close releases the underlying sockets.
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.conn.Close()
}

// Exchange implements tracer.Transport: a batch of one. Per-probe faults
// degrade to stars; use ExchangeErr to observe them.
func (t *Transport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	resp, rtt, ok, _ := t.ExchangeErr(probe)
	return resp, rtt, ok
}

// ExchangeErr implements tracer.FallibleTransport: a batch of one with the
// fault surfaced, so sequential engines can distinguish a transient socket
// failure or cancellation from an honest star.
func (t *Transport) ExchangeErr(probe []byte) ([]byte, time.Duration, bool, error) {
	probes := [1][]byte{probe}
	var out [1]tracer.ProbeResult
	t.ExchangeBatch(probes[:], out[:])
	if out[0].Err != nil {
		return nil, 0, false, out[0].Err
	}
	if !out[0].OK {
		return nil, 0, false, nil
	}
	return out[0].Resp, out[0].RTT, true, nil
}

// ExchangeBatch implements tracer.BatchTransport: send the whole window in
// one sendmmsg, demultiplex responses from the shared raw sockets, and
// drive the deadline wheel until every probe has a response or has
// exhausted its attempts. out[i].Resp is refilled with append-truncate, so
// callers recycling one result slice across batches (tracer.Scratch)
// amortize the response buffers exactly as they do against the simulator.
func (t *Transport) ExchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	if len(out) < len(probes) {
		panic("live: ExchangeBatch result slice shorter than probe slice")
	}
	if len(probes) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	unresolved := t.register(probes, out)
	if unresolved == 0 {
		return
	}
	t.sendPending(t.now(), func(s *slot) bool { return s.attempts == 0 })

	for unresolved > 0 {
		if t.ctx != nil {
			if cerr := t.ctx.Err(); cerr != nil {
				unresolved -= t.failRemaining(out, cerr)
				continue
			}
		}
		wheelDL := t.earliestDeadline()
		readDL := wheelDL
		if t.ctx != nil {
			// Cap the blocking read so cancellation is noticed mid-wait;
			// expiry below compares against the capped deadline, so an
			// early wake-up expires nothing prematurely.
			if q := time.Now().Add(ctxPollQuantum); readDL.After(q) {
				readDL = q
			}
		}
		if err := t.conn.SetReadDeadline(readDL); err != nil {
			unresolved -= t.failRemaining(out, fmt.Errorf("live: set read deadline: %w", err))
			continue
		}
		m, err := t.conn.ReadBatch(t.recv)
		now := t.now()
		// The tap sees every datagram before demultiplexing: junk and
		// duplicates are part of the captured traffic, stamped with the
		// same clock reading the RTTs below use.
		if t.capture != nil {
			for i := 0; i < m; i++ {
				t.capture.CaptureInbound(now, t.recv[i].Buf[:t.recv[i].N])
			}
		}
		// Consume whatever arrived before acting on any error: a read can
		// legitimately return datagrams alongside a failure (one socket
		// delivered, the other broke) and those responses are real.
		for i := 0; i < m; i++ {
			dg := &t.recv[i]
			key, ok := respKey(dg.Buf[:dg.N])
			if !ok {
				continue // unrelated traffic
			}
			idx, ok := t.pop(key)
			if !ok {
				continue // duplicate, or someone else's conversation
			}
			s := &t.slots[idx]
			s.resolved = true
			out[idx].Resp = append(out[idx].Resp[:0], dg.Buf[:dg.N]...)
			out[idx].RTT = now.Sub(s.sentAt)
			out[idx].OK = true
			unresolved--
		}
		if errors.Is(err, ErrTimeout) {
			// The conn reports the deadline we set has passed: expire
			// everything at or before it. Trusting the conn (not the wall
			// clock) is what lets the fake fast-forward the wheel without
			// real sleeps while the real sockets still pace by time.
			unresolved -= t.expire(readDL, now, out)
			continue
		}
		if err != nil {
			// Socket failure: fail the remainder with the error and bail.
			unresolved -= t.failRemaining(out, fmt.Errorf("live: receive: %w", err))
			continue
		}
	}
	clear(t.byKey)
}

// ctxPollQuantum bounds one blocking read when a Context can cancel the
// exchange, so cancellation latency is this quantum rather than Timeout.
const ctxPollQuantum = 100 * time.Millisecond

// now is the wheel's clock. With a capture sink armed it strips the
// monotonic reading, so an RTT (the difference of two of these stamps)
// equals the difference of the corresponding capture timestamps exactly —
// the byte-identity contract replay depends on. Without a capture the
// monotonic clock stays, immune to wall-clock steps.
func (t *Transport) now() time.Time {
	if t.capture == nil {
		return time.Now()
	}
	return time.Now().Round(0)
}

// register parses every probe into its wheel slot and key-table entries,
// resets the result slots, and returns how many probes are in flight.
// Unparseable probes resolve as immediate stars.
func (t *Transport) register(probes [][]byte, out []tracer.ProbeResult) int {
	n := len(probes)
	t.growScratch(n)
	clear(t.byKey)
	unresolved := 0
	for i, p := range probes {
		out[i].OK = false
		out[i].RTT = 0
		out[i].Err = nil
		if out[i].Resp != nil {
			out[i].Resp = out[i].Resp[:0]
		}
		s := &t.slots[i]
		*s = slot{probe: p}
		quoted, terminal, hasTerminal, ok := probeKeys(p)
		if !ok {
			s.resolved = true
			continue
		}
		s.dst = quoted.Dst
		s.quoted, s.terminal, s.hasTerminal = quoted, terminal, hasTerminal
		t.byKey[quoted] = append(t.byKey[quoted], i)
		if hasTerminal {
			t.byKey[terminal] = append(t.byKey[terminal], i)
		}
		unresolved++
	}
	t.slots = t.slots[:n]
	return unresolved
}

// growScratch sizes the slot and datagram scratch for an n-probe batch,
// keeping previously grown receive buffers.
func (t *Transport) growScratch(n int) {
	if cap(t.slots) < n {
		t.slots = make([]slot, n)
	}
	t.slots = t.slots[:n]
	if len(t.recv) == 0 {
		t.recv = make([]Datagram, 32)
		for i := range t.recv {
			t.recv[i].Buf = make([]byte, t.mtu)
		}
	}
}

// sendPending gathers the unresolved slots selected by pick into one
// WriteBatch, stamping their send time, deadline, and attempt count. Send
// failures are classified: a transient syscall (full buffer, interrupted
// call) leaves the unsent tail due immediately without consuming an
// attempt, bounded by maxSendDefers; any other error fails those probes
// outright. Either way the wheel observes the outcome on its next turn.
func (t *Transport) sendPending(now time.Time, pick func(*slot) bool) {
	t.send = t.send[:0]
	idxs := make([]int, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		if s.resolved || s.err != nil || !pick(s) {
			continue
		}
		t.send = append(t.send, Datagram{Buf: s.probe, Dst: s.dst})
		idxs = append(idxs, i)
	}
	if len(t.send) == 0 {
		return
	}
	// Record before the write, not after: the conn may deliver a response
	// (and the reader capture it) the instant WriteBatch enqueues the
	// probe, and the capture must never show an answer preceding its
	// probe. The cost is that a failed send is still recorded — replay
	// classifies the unanswered occurrence as a star or folds it into the
	// eventual re-send.
	if t.capture != nil {
		for _, dg := range t.send {
			t.capture.CaptureOutbound(now, dg.Buf)
		}
	}
	sent, err := t.conn.WriteBatch(t.send)
	for k, i := range idxs {
		s := &t.slots[i]
		s.backoff = false
		switch {
		case k < sent:
			s.sentAt = now
			s.deadline = now.Add(t.timeout)
			s.attempts++
			s.sendDefers = 0
		case err != nil && transientSendErr(err) && s.sendDefers < maxSendDefers:
			// The kernel will drain its buffers (or the signal is gone):
			// re-offer the probe on the next wheel turn at no attempt cost.
			// A conn that never recovers degrades to the attempt-burning
			// path once the defers run out.
			s.sendDefers++
			s.deadline = now
		case err != nil && !transientSendErr(err):
			// Nothing will ever send this probe: fail it outright. The
			// wheel resolves it with this error on its next turn.
			s.err = fmt.Errorf("live: send: %w", err)
			s.deadline = now
		default:
			// Never made it onto the wire: burn the attempt with an
			// already-expired deadline so the wheel retries or stars it.
			s.deadline = now
			s.attempts++
		}
	}
}

// transientSendErr reports whether a WriteBatch failure is worth re-trying
// without charging the probe's attempt budget.
func transientSendErr(err error) bool {
	return errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EINTR)
}

// earliestDeadline returns the soonest deadline among in-flight probes.
func (t *Transport) earliestDeadline() time.Time {
	var dl time.Time
	for i := range t.slots {
		s := &t.slots[i]
		if s.resolved {
			continue
		}
		if dl.IsZero() || s.deadline.Before(dl) {
			dl = s.deadline
		}
	}
	return dl
}

// expire advances the wheel past dl. Probes due at or before it resolve
// with their pending fatal error if one is set, star when out of attempts,
// enter their jittered retransmit backoff when one is configured, and are
// re-sent otherwise (backoff expiries re-send too — their deadline is the
// re-send time). Returns how many resolved.
func (t *Transport) expire(dl, now time.Time, out []tracer.ProbeResult) int {
	resolved := 0
	for i := range t.slots {
		s := &t.slots[i]
		if s.resolved || s.deadline.After(dl) {
			continue
		}
		if s.err != nil {
			s.resolved = true
			out[i].Err = s.err
			resolved++
			continue
		}
		if s.backoff {
			continue // due for re-send by the pick below
		}
		if s.attempts > t.retries {
			s.resolved = true
			resolved++
			continue
		}
		if t.backoff > 0 && s.attempts > 0 {
			// Timed out with attempts left: hold the retransmit for the
			// jittered delay instead of re-sending immediately. The wheel
			// reaches this new deadline like any other and the pick below
			// then re-sends it.
			s.backoff = true
			s.deadline = now.Add(t.retryDelay(s.attempts))
		}
	}
	t.sendPending(now, func(s *slot) bool { return !s.deadline.After(dl) })
	return resolved
}

// retryDelay draws the backoff before re-send number attempts: the base
// doubles per re-send, capped at the probe timeout, scaled by a seeded
// jitter in [0.5, 1.5).
func (t *Transport) retryDelay(attempts int) time.Duration {
	d := t.backoff << (attempts - 1)
	if d <= 0 || d > t.timeout {
		d = t.timeout
	}
	t.rng += 0x9e3779b97f4a7c15
	x := t.rng
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	jitter := 0.5 + float64(x>>11)/float64(1<<53)
	return time.Duration(float64(d) * jitter)
}

// failRemaining resolves every in-flight probe with err — the socket
// failure and cancellation path. A nil err resolves them as plain stars.
func (t *Transport) failRemaining(out []tracer.ProbeResult, err error) int {
	resolved := 0
	for i := range t.slots {
		s := &t.slots[i]
		if !s.resolved {
			s.resolved = true
			out[i].Err = err
			resolved++
		}
	}
	return resolved
}

// pop resolves key to the oldest unanswered probe registered under it,
// consuming the entry. Entries already resolved through their other key
// are skipped lazily.
func (t *Transport) pop(key matchKey) (int, bool) {
	q := t.byKey[key]
	for len(q) > 0 {
		idx := q[0]
		q = q[1:]
		if !t.slots[idx].resolved {
			t.byKey[key] = q
			return idx, true
		}
	}
	if q != nil {
		t.byKey[key] = q
	}
	return 0, false
}
