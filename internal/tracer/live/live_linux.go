//go:build linux

// Package live provides a tracer.Transport over real raw sockets: probes
// are injected with IP_HDRINCL so every header field the engines craft
// (TTL, IP ID, UDP checksum payloads, compensated ICMP identifiers) goes on
// the wire verbatim, and ICMP responses are read from a raw ICMP socket.
//
// Root (or CAP_NET_RAW) is required, exactly as for the original
// paris-traceroute tool. Nothing in the repository's tests depends on this
// package touching the network; the simulator is the hermetic substrate.
package live

import (
	"fmt"
	"net/netip"
	"syscall"
	"time"

	"repro/internal/packet"
)

// Transport sends serialized IPv4 probes on a raw socket and matches ICMP
// responses by their quoted payload.
type Transport struct {
	src     netip.Addr
	sendFD  int
	recvFD  int
	timeout time.Duration
}

// New opens the raw sockets. src must be the local address probes will
// carry; timeout bounds each Exchange (the paper uses 2 s).
func New(src netip.Addr, timeout time.Duration) (*Transport, error) {
	if !src.Is4() {
		return nil, fmt.Errorf("live: need an IPv4 source, got %v", src)
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	sendFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("live: raw send socket (need root/CAP_NET_RAW): %w", err)
	}
	if err := syscall.SetsockoptInt(sendFD, syscall.IPPROTO_IP, syscall.IP_HDRINCL, 1); err != nil {
		syscall.Close(sendFD)
		return nil, fmt.Errorf("live: IP_HDRINCL: %w", err)
	}
	recvFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(sendFD)
		return nil, fmt.Errorf("live: raw receive socket: %w", err)
	}
	return &Transport{src: src, sendFD: sendFD, recvFD: recvFD, timeout: timeout}, nil
}

// Close releases both sockets.
func (t *Transport) Close() error {
	e1 := syscall.Close(t.sendFD)
	e2 := syscall.Close(t.recvFD)
	if e1 != nil {
		return e1
	}
	return e2
}

// Source implements tracer.Transport.
func (t *Transport) Source() netip.Addr { return t.src }

// Exchange implements tracer.Transport: send one probe, wait for an ICMP
// message quoting it (or addressed to us about it), up to the timeout.
func (t *Transport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	hdr, _, err := packet.ParseIPv4(probe)
	if err != nil {
		return nil, 0, false
	}
	dst := hdr.Dst.As4()
	sa := &syscall.SockaddrInet4{Addr: dst}
	start := time.Now()
	if err := syscall.Sendto(t.sendFD, probe, 0, sa); err != nil {
		return nil, 0, false
	}
	deadline := start.Add(t.timeout)
	buf := make([]byte, 1500)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, 0, false
		}
		tv := syscall.NsecToTimeval(remain.Nanoseconds())
		if err := syscall.SetsockoptTimeval(t.recvFD, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv); err != nil {
			return nil, 0, false
		}
		n, _, err := syscall.Recvfrom(t.recvFD, buf, 0)
		if err != nil {
			if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR {
				continue
			}
			return nil, 0, false
		}
		resp := append([]byte(nil), buf[:n]...)
		if t.responseMatches(resp, probe) {
			return resp, time.Since(start), true
		}
		// Unrelated ICMP traffic: keep listening until the deadline.
	}
}

// responseMatches performs a first-pass filter: the response must be ICMP
// and either quote our probe (error messages) or answer our Echo. Fine-
// grained matching happens in the tracer engines.
func (t *Transport) responseMatches(resp, probe []byte) bool {
	rh, payload, err := packet.ParseIPv4(resp)
	if err != nil || rh.Protocol != packet.ProtoICMP {
		return false
	}
	m, err := packet.ParseICMP(payload)
	if err != nil {
		return false
	}
	ph, _, err := packet.ParseIPv4(probe)
	if err != nil {
		return false
	}
	if m.IsError() {
		inner, _, err := packet.ParseQuoted(m)
		if err != nil {
			return false
		}
		return inner.Src == ph.Src && inner.Dst == ph.Dst && inner.Protocol == ph.Protocol
	}
	// Echo replies: only relevant for ICMP probing toward this probe's
	// destination.
	return ph.Protocol == packet.ProtoICMP && rh.Src == ph.Dst
}

// LocalIPv4 guesses the host's primary IPv4 address by opening a UDP
// socket toward a public address (no packets are sent).
func LocalIPv4() (netip.Addr, error) {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM, 0)
	if err != nil {
		return netip.Addr{}, err
	}
	defer syscall.Close(fd)
	if err := syscall.Connect(fd, &syscall.SockaddrInet4{
		Addr: [4]byte{192, 0, 2, 1}, Port: 53,
	}); err != nil {
		return netip.Addr{}, err
	}
	sa, err := syscall.Getsockname(fd)
	if err != nil {
		return netip.Addr{}, err
	}
	sa4, ok := sa.(*syscall.SockaddrInet4)
	if !ok {
		return netip.Addr{}, fmt.Errorf("live: unexpected sockaddr %T", sa)
	}
	return netip.AddrFrom4(sa4.Addr), nil
}
