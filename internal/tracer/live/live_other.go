//go:build !linux

// Package live provides a tracer.Transport over real raw sockets on Linux.
// On other platforms the constructor reports that raw-socket probing is
// unavailable; the simulated transport (netsim.NewTransport) remains fully
// functional everywhere.
package live

import (
	"fmt"
	"net/netip"
	"runtime"
	"time"
)

// Transport is unavailable on this platform.
type Transport struct{}

// New always fails off Linux.
func New(src netip.Addr, timeout time.Duration) (*Transport, error) {
	return nil, fmt.Errorf("live: raw-socket probing unsupported on %s", runtime.GOOS)
}

// Close implements io.Closer for symmetry.
func (t *Transport) Close() error { return nil }

// Source panics: the transport cannot be constructed on this platform.
func (t *Transport) Source() netip.Addr { panic("live: unavailable") }

// Exchange panics: the transport cannot be constructed on this platform.
func (t *Transport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	panic("live: unavailable")
}

// LocalIPv4 is unavailable off Linux.
func LocalIPv4() (netip.Addr, error) {
	return netip.Addr{}, fmt.Errorf("live: unsupported on %s", runtime.GOOS)
}
