package live

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topo"
	"repro/internal/tracer"
)

// The differential harness: the same probing engine is run once against the
// simulator transport (the baseline) and once against the live transport
// over a SimConn whose responder replays a second, identically-built
// netsim.Network — so every byte the live path receives is a genuine
// simulator response, and the two routes must agree on every path
// observable (tracer.Route.Equal: everything but RTTs and IP IDs, which
// differ per exchange by construction). The schedules then layer reorder,
// duplication, loss and delay over the replay without being allowed to
// change the measured route.

var scenarios = []struct {
	name  string
	build func(seed int64) (*netsim.Network, netip.Addr)
}{
	{"fig1", func(s int64) (*netsim.Network, netip.Addr) {
		f := topo.BuildFigure1(s, netsim.PerFlow)
		return f.Net, f.Dest.Addr
	}},
	{"fig3", func(s int64) (*netsim.Network, netip.Addr) {
		f := topo.BuildFigure3(s)
		return f.Net, f.Dest.Addr
	}},
	{"fig4-zero-ttl", func(s int64) (*netsim.Network, netip.Addr) {
		f := topo.BuildFigure4(s)
		return f.Net, f.Dest.Addr
	}},
	{"fig5-nat", func(s int64) (*netsim.Network, netip.Addr) {
		f := topo.BuildFigure5(s)
		return f.Net, f.Dest.Addr
	}},
	{"fig6", func(s int64) (*netsim.Network, netip.Addr) {
		f := topo.BuildFigure6(s, netsim.PerFlow)
		return f.Net, f.Dest.Addr
	}},
}

var methods = []struct {
	name string
	mk   func(tracer.Transport, tracer.Options) tracer.Tracer
	// indistinctTerminal marks disciplines whose terminal responses carry
	// no per-probe identifier (tcptraceroute's constant sequence number):
	// under arrival-order perturbation the FIFO rule can only credit such
	// a response to the oldest in-flight probe, so exact equality with the
	// simulator's oracle matching is unattainable by any implementation.
	indistinctTerminal bool
}{
	{"paris-udp", tracer.NewParisUDP, false},
	{"paris-icmp", tracer.NewParisICMP, false},
	{"paris-tcp", tracer.NewParisTCP, false},
	{"classic-udp", tracer.NewClassicUDP, false},
	{"classic-icmp", tracer.NewClassicICMP, false},
	{"tcptraceroute", tracer.NewTCPTraceroute, true},
}

// netsimResponder replays probes through net, exactly as the simulator
// transport would answer them.
func netsimResponder(net *netsim.Network) func([]byte) ([]byte, bool) {
	return func(probe []byte) ([]byte, bool) {
		resp, _, ok := net.Exchange(probe)
		return resp, ok
	}
}

// newFakeTransport builds a live Transport over a SimConn backed by a
// fresh copy of the scenario.
func newFakeTransport(t *testing.T, build func(int64) (*netsim.Network, netip.Addr), seed int64, sched SimSchedule, retries int) (*Transport, *SimConn, netip.Addr) {
	t.Helper()
	net, dest := build(seed)
	fake := &SimConn{Respond: netsimResponder(net), Sched: sched}
	tp, err := New(Config{Source: net.Source(), Conn: fake, Retries: retries})
	if err != nil {
		t.Fatal(err)
	}
	return tp, fake, dest
}

// TestLiveDifferentialAgainstNetsim is the package's acceptance test:
// ladders driven through the fake socket replaying netsim responses must
// produce routes identical (in every path observable) to the netsim
// transport's, for every scenario, every probing discipline, every batch
// window, and under injected reorder, duplicate, drop and delay schedules.
func TestLiveDifferentialAgainstNetsim(t *testing.T) {
	const seed = 7
	schedules := []struct {
		name    string
		sched   func() SimSchedule
		retries int
		// perturbsOrder: the schedule changes arrival order across
		// response kinds, which indistinct-terminal disciplines cannot
		// survive exactly (see methods).
		perturbsOrder bool
	}{
		{"clean", func() SimSchedule { return SimSchedule{} }, 0, false},
		{"reorder", func() SimSchedule { return SimSchedule{Reorder: true} }, 0, true},
		{"duplicate", func() SimSchedule {
			return SimSchedule{Dup: func(int) bool { return true }}
		}, 0, false},
		{"delay-half", func() SimSchedule {
			return SimSchedule{Delay: func(ord int) int {
				if ord%2 == 0 {
					return 2
				}
				return 0
			}}
		}, 0, true},
		{"drop-first-attempt+retry", func() SimSchedule {
			seen := make(map[string]bool)
			return SimSchedule{Drop: func(_ int, probe []byte) bool {
				if seen[string(probe)] {
					return false
				}
				seen[string(probe)] = true
				return true
			}}
		}, 1, false},
	}
	for _, sc := range scenarios {
		for _, m := range methods {
			net1, dest1 := sc.build(seed)
			want, err := m.mk(netsim.NewTransport(net1), tracer.Options{}).Trace(dest1)
			if err != nil {
				t.Fatalf("%s/%s baseline: %v", sc.name, m.name, err)
			}
			for _, sch := range schedules {
				if sch.perturbsOrder && m.indistinctTerminal {
					continue
				}
				for _, window := range []int{0, 1, 4} {
					tp, _, dest := newFakeTransport(t, sc.build, seed, sch.sched(), sch.retries)
					got, err := m.mk(tp, tracer.Options{Batch: true, BatchWindow: window}).Trace(dest)
					if err != nil {
						t.Fatalf("%s/%s/%s w=%d: %v", sc.name, m.name, sch.name, window, err)
					}
					if !got.Equal(want) {
						t.Errorf("%s/%s/%s w=%d: live route differs from netsim\ngot:  halt=%v hops=%v\nwant: halt=%v hops=%v",
							sc.name, m.name, sch.name, window,
							got.Halt, got.Addresses(), want.Halt, want.Addresses())
					}
				}
			}
		}
	}
}

// TestLiveSequentialExchange drives the tracer's sequential (non-batched)
// loop through Transport.Exchange and requires the same route as the
// simulator, for every discipline.
func TestLiveSequentialExchange(t *testing.T) {
	const seed = 11
	for _, m := range methods {
		net1, dest1 := scenarios[1].build(seed) // fig3
		want, err := m.mk(netsim.NewTransport(net1), tracer.Options{}).Trace(dest1)
		if err != nil {
			t.Fatal(err)
		}
		tp, _, dest := newFakeTransport(t, scenarios[1].build, seed, SimSchedule{}, 0)
		got, err := m.mk(tp, tracer.Options{}).Trace(dest)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: sequential live route differs\ngot:  %v\nwant: %v", m.name, got.Addresses(), want.Addresses())
		}
	}
}

// TestLiveSilentHopStar suppresses every response from one TTL and expects
// exactly that hop to become a star while the rest of the ladder (and the
// halt) match the unsuppressed baseline.
func TestLiveSilentHopStar(t *testing.T) {
	const seed, silentTTL = 3, 5
	net1, dest1 := scenarios[1].build(seed)
	want, err := tracer.NewParisUDP(netsim.NewTransport(net1), tracer.Options{}).Trace(dest1)
	if err != nil {
		t.Fatal(err)
	}

	net2, dest := scenarios[1].build(seed)
	inner := netsimResponder(net2)
	fake := &SimConn{Respond: func(probe []byte) ([]byte, bool) {
		var h packet.IPv4
		if _, err := packet.ParseIPv4Into(probe, &h); err == nil && int(h.TTL) == silentTTL {
			// The router still saw and dropped the probe; only the
			// answer never comes back.
			inner(probe)
			return nil, false
		}
		return inner(probe)
	}}
	tp, err := New(Config{Source: net2.Source(), Conn: fake, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true}).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hops) != len(want.Hops) || got.Halt != want.Halt {
		t.Fatalf("route shape changed: got %d hops halt %v, want %d hops halt %v",
			len(got.Hops), got.Halt, len(want.Hops), want.Halt)
	}
	for i := range got.Hops {
		if i == silentTTL-1 {
			if !got.Hops[i].Star() {
				t.Errorf("hop %d: got %v, want a star", i+1, got.Hops[i].Addr)
			}
			continue
		}
		if got.Hops[i].Addr != want.Hops[i].Addr {
			t.Errorf("hop %d: got %v, want %v", i+1, got.Hops[i].Addr, want.Hops[i].Addr)
		}
	}
}

// TestLiveRetriesExhausted drops every response: the wheel must re-send
// each probe exactly Retries times before starring it, and the ladder must
// halt on the consecutive-star rule.
func TestLiveRetriesExhausted(t *testing.T) {
	const retries = 2
	tp, fake, dest := newFakeTransport(t, scenarios[1].build, 5,
		SimSchedule{Drop: func(int, []byte) bool { return true }}, retries)
	got, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true}).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if got.Halt != tracer.HaltStars {
		t.Fatalf("halt = %v, want stars", got.Halt)
	}
	if len(got.Hops) != 8 { // default MaxConsecutiveStars
		t.Fatalf("got %d hops, want 8 (the star run)", len(got.Hops))
	}
	for _, h := range got.Hops {
		if !h.Star() {
			t.Fatalf("hop %d responded under a drop-everything schedule", h.TTL)
		}
	}
	// One window of 8 probes (default window), each sent 1 + retries times.
	if want := 8 * (1 + retries); len(fake.sends) != want {
		t.Errorf("sent %d probes, want %d (8 probes x %d attempts)", len(fake.sends), want, 1+retries)
	}
}

// TestLiveUnrelatedTrafficIgnored floods the receive path with traffic that
// must never match: our own outbound probes (as a loopback capture would
// deliver them), ICMP errors quoting someone else's flow, and unparseable
// noise. The measured route must be unaffected.
func TestLiveUnrelatedTrafficIgnored(t *testing.T) {
	const seed = 13
	net1, dest1 := scenarios[1].build(seed)
	want, err := tracer.NewParisUDP(netsim.NewTransport(net1), tracer.Options{}).Trace(dest1)
	if err != nil {
		t.Fatal(err)
	}

	net2, dest := scenarios[1].build(seed)
	inner := netsimResponder(net2)
	junkQuote := buildJunkError(t)
	fake := &SimConn{}
	fake.Respond = func(probe []byte) ([]byte, bool) {
		resp, ok := inner(probe)
		// Sandwich every genuine response between junk deliveries.
		fake.queue = append(fake.queue,
			append([]byte(nil), probe...), // our own probe, looped back
			junkQuote,
			[]byte{0xde, 0xad, 0xbe, 0xef}, // unparseable noise
		)
		return resp, ok
	}
	tp, err := New(Config{Source: net2.Source(), Conn: fake, Retries: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true}).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("junk traffic changed the route\ngot:  %v\nwant: %v", got.Addresses(), want.Addresses())
	}
}

// buildJunkError crafts a syntactically-valid ICMP Time Exceeded quoting a
// flow no probe of the test owns.
func buildJunkError(t *testing.T) []byte {
	t.Helper()
	src := netip.AddrFrom4([4]byte{203, 0, 113, 7})
	dst := netip.AddrFrom4([4]byte{203, 0, 113, 99})
	uh := &packet.UDP{SrcPort: 4242, DstPort: 2424}
	dgram, err := packet.MarshalUDP(src, dst, uh, []byte("junkjunk"))
	if err != nil {
		t.Fatal(err)
	}
	quoted, err := (&packet.IPv4{TTL: 1, Protocol: packet.ProtoUDP, ID: 999, Src: src, Dst: dst}).Marshal(dgram)
	if err != nil {
		t.Fatal(err)
	}
	m, err := packet.TimeExceeded(quoted)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := packet.MarshalIPv4ICMP(&packet.IPv4{
		TTL: 61, Protocol: packet.ProtoICMP, ID: 1,
		Src: netip.AddrFrom4([4]byte{198, 51, 100, 1}), Dst: src,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestLiveScratchReuse traces twice through one tracer.Scratch (the
// campaign steady state) and checks the second trace reuses the result
// buffers without disturbing the measured hops.
func TestLiveScratchReuse(t *testing.T) {
	const seed = 17
	sc := tracer.NewScratch()
	tp, _, dest := newFakeTransport(t, scenarios[1].build, seed, SimSchedule{}, 0)
	opts := tracer.Options{Batch: true, Scratch: sc}
	first, err := tracer.NewParisUDP(tp, opts).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tracer.NewParisUDP(tp, opts).Trace(dest)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(second) {
		t.Error("second trace through the same Scratch changed the measured route")
	}
}
