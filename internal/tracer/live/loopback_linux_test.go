//go:build linux

package live

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/tracer"
)

// TestLiveLoopback exercises the real raw-socket path end to end where the
// environment permits it (root or CAP_NET_RAW; CI runs it in a privileged
// job, everywhere else it skips cleanly): a batched Paris UDP ladder toward
// 127.0.0.1 must reach the local responder — the kernel itself — in one
// hop via an ICMP Port Unreachable quoting our probe, driven through
// sendmmsg/recvmmsg on architectures that compile them in.
func TestLiveLoopback(t *testing.T) {
	if err := Available(); err != nil {
		t.Skipf("raw sockets unavailable: %v", err)
	}
	lo := netip.AddrFrom4([4]byte{127, 0, 0, 1})
	tp, err := New(Config{Source: lo, Timeout: 2 * time.Second, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	t.Run("paris-udp", func(t *testing.T) {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true, MaxTTL: 5}).Trace(lo)
		if err != nil {
			t.Fatal(err)
		}
		if !rt.Reached() {
			t.Fatalf("loopback not reached: halt=%v hops=%v", rt.Halt, rt.Addresses())
		}
		if len(rt.Hops) != 1 || rt.Hops[0].Addr != lo {
			t.Fatalf("route = %v, want a single hop answering as %v", rt.Addresses(), lo)
		}
		if rt.Hops[0].Kind != tracer.KindPortUnreachable {
			t.Errorf("terminal kind = %v, want port-unreachable", rt.Hops[0].Kind)
		}
	})

	t.Run("paris-icmp", func(t *testing.T) {
		rt, err := tracer.NewParisICMP(tp, tracer.Options{Batch: true, MaxTTL: 5}).Trace(lo)
		if err != nil {
			t.Fatal(err)
		}
		if !rt.Reached() {
			// Some hosts suppress echo responses (icmp_echo_ignore_all);
			// the UDP subtest above is the hard assertion.
			t.Skipf("no echo reply from loopback: halt=%v", rt.Halt)
		}
		if len(rt.Hops) != 1 || rt.Hops[0].Kind != tracer.KindEchoReply {
			t.Fatalf("route = %v kind=%v, want one echo-reply hop", rt.Addresses(), rt.Hops[0].Kind)
		}
	})
}
