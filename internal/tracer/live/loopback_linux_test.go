//go:build linux

package live

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/tracer"
)

// TestLiveLoopback exercises the real raw-socket path end to end where the
// environment permits it (root or CAP_NET_RAW; CI runs it in a privileged
// job, everywhere else it skips cleanly): a batched Paris UDP ladder toward
// 127.0.0.1 must reach the local responder — the kernel itself — in one
// hop via an ICMP Port Unreachable quoting our probe, driven through
// sendmmsg/recvmmsg on architectures that compile them in.
func TestLiveLoopback(t *testing.T) {
	if err := Available(); err != nil {
		t.Skipf("raw sockets unavailable: %v", err)
	}
	lo := netip.AddrFrom4([4]byte{127, 0, 0, 1})
	tp, err := New(Config{Source: lo, Timeout: 2 * time.Second, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	t.Run("paris-udp", func(t *testing.T) {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true, MaxTTL: 5}).Trace(lo)
		if err != nil {
			t.Fatal(err)
		}
		if !rt.Reached() {
			t.Fatalf("loopback not reached: halt=%v hops=%v", rt.Halt, rt.Addresses())
		}
		if len(rt.Hops) != 1 || rt.Hops[0].Addr != lo {
			t.Fatalf("route = %v, want a single hop answering as %v", rt.Addresses(), lo)
		}
		if rt.Hops[0].Kind != tracer.KindPortUnreachable {
			t.Errorf("terminal kind = %v, want port-unreachable", rt.Hops[0].Kind)
		}
	})

	t.Run("paris-icmp", func(t *testing.T) {
		rt, err := tracer.NewParisICMP(tp, tracer.Options{Batch: true, MaxTTL: 5}).Trace(lo)
		if err != nil {
			t.Fatal(err)
		}
		if !rt.Reached() {
			// Some hosts suppress echo responses (icmp_echo_ignore_all);
			// the UDP subtest above is the hard assertion.
			t.Skipf("no echo reply from loopback: halt=%v", rt.Halt)
		}
		if len(rt.Hops) != 1 || rt.Hops[0].Kind != tracer.KindEchoReply {
			t.Fatalf("route = %v kind=%v, want one echo-reply hop", rt.Addresses(), rt.Hops[0].Kind)
		}
	})
}

// TestLiveMuxLoopback runs a real multi-worker measure.Campaign over one
// shared Mux against the loopback range: 127.0.0.1..8 are all the local
// stack on Linux, so eight workers' interleaved Paris UDP ladders — one raw
// ICMP+TCP socket pair for the whole campaign — must each resolve to a
// single port-unreachable hop answering as the probed address. This is the
// privileged end-to-end check of the attribution path the hermetic fakeConn
// tests exercise in miniature.
func TestLiveMuxLoopback(t *testing.T) {
	if err := Available(); err != nil {
		t.Skipf("raw sockets unavailable: %v", err)
	}
	const workers, rounds = 8, 2
	var dests []netip.Addr
	for i := byte(1); i <= 8; i++ {
		dests = append(dests, netip.AddrFrom4([4]byte{127, 0, 0, i}))
	}
	m, err := NewMux(MuxConfig{
		Source:  netip.AddrFrom4([4]byte{127, 0, 0, 1}),
		Timeout: 2 * time.Second, Retries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	camp, err := measure.NewCampaign(nil, measure.Config{
		Dests: dests, Rounds: rounds, Workers: workers,
		MinTTL: 1, PortSeed: 42, Batch: true,
		TransportFor: func(int) tracer.Transport { return m.Transport() },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for r := range res.Rounds {
		for _, p := range res.Rounds[r] {
			if p.Paris == nil || !p.Paris.Reached() {
				t.Fatalf("round %d dest %v: loopback not reached: %+v", r, p.Dest, p.Outcome)
			}
			if len(p.Paris.Hops) != 1 || p.Paris.Hops[0].Addr != p.Dest {
				t.Errorf("round %d dest %v: route %v, want one hop answering as the destination",
					r, p.Dest, p.Paris.Addresses())
			}
		}
	}
	h := m.Health()
	if h.InFlight != 0 {
		t.Errorf("campaign done but %d probes still in flight", h.InFlight)
	}
	if h.Destinations == 0 {
		t.Errorf("no destination collected an RTT sample: %+v", h)
	}
}
