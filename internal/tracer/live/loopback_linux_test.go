//go:build linux

package live

import (
	"net/netip"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/pcap"
	"repro/internal/tracer"
	"repro/internal/tracer/replay"
)

// TestLiveLoopback exercises the real raw-socket path end to end where the
// environment permits it (root or CAP_NET_RAW; CI runs it in a privileged
// job, everywhere else it skips cleanly): a batched Paris UDP ladder toward
// 127.0.0.1 must reach the local responder — the kernel itself — in one
// hop via an ICMP Port Unreachable quoting our probe, driven through
// sendmmsg/recvmmsg on architectures that compile them in.
func TestLiveLoopback(t *testing.T) {
	if err := Available(); err != nil {
		t.Skipf("raw sockets unavailable: %v", err)
	}
	lo := netip.AddrFrom4([4]byte{127, 0, 0, 1})
	tp, err := New(Config{Source: lo, Timeout: 2 * time.Second, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	t.Run("paris-udp", func(t *testing.T) {
		rt, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true, MaxTTL: 5}).Trace(lo)
		if err != nil {
			t.Fatal(err)
		}
		if !rt.Reached() {
			t.Fatalf("loopback not reached: halt=%v hops=%v", rt.Halt, rt.Addresses())
		}
		if len(rt.Hops) != 1 || rt.Hops[0].Addr != lo {
			t.Fatalf("route = %v, want a single hop answering as %v", rt.Addresses(), lo)
		}
		if rt.Hops[0].Kind != tracer.KindPortUnreachable {
			t.Errorf("terminal kind = %v, want port-unreachable", rt.Hops[0].Kind)
		}
	})

	t.Run("paris-icmp", func(t *testing.T) {
		rt, err := tracer.NewParisICMP(tp, tracer.Options{Batch: true, MaxTTL: 5}).Trace(lo)
		if err != nil {
			t.Fatal(err)
		}
		if !rt.Reached() {
			// Some hosts suppress echo responses (icmp_echo_ignore_all);
			// the UDP subtest above is the hard assertion.
			t.Skipf("no echo reply from loopback: halt=%v", rt.Halt)
		}
		if len(rt.Hops) != 1 || rt.Hops[0].Kind != tracer.KindEchoReply {
			t.Fatalf("route = %v kind=%v, want one echo-reply hop", rt.Addresses(), rt.Hops[0].Kind)
		}
	})
}

// TestLiveMuxLoopback runs a real multi-worker measure.Campaign over one
// shared Mux against the loopback range: 127.0.0.1..8 are all the local
// stack on Linux, so eight workers' interleaved Paris UDP ladders — one raw
// ICMP+TCP socket pair for the whole campaign — must each resolve to a
// single port-unreachable hop answering as the probed address. This is the
// privileged end-to-end check of the attribution path the hermetic SimConn
// tests exercise in miniature.
//
// The whole campaign runs with a pcap capture tap armed, and the capture is
// then replayed in-job: the offline run must reproduce every live route
// exactly (addresses, kinds, and RTTs — replay RTTs are differences of the
// same clock readings the mux charged) and consume every captured exchange.
// This closes the loop the hermetic tests can only approximate: real
// kernel-generated responses through a real raw socket pair, recorded,
// re-served, and byte-compared.
func TestLiveMuxLoopback(t *testing.T) {
	if err := Available(); err != nil {
		t.Skipf("raw sockets unavailable: %v", err)
	}
	const workers, rounds = 8, 2
	var dests []netip.Addr
	for i := byte(1); i <= 8; i++ {
		dests = append(dests, netip.AddrFrom4([4]byte{127, 0, 0, i}))
	}
	capPath := filepath.Join(t.TempDir(), "loopback.pcap")
	capSink, err := pcap.CreateCapture(capPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMux(MuxConfig{
		Source:  netip.AddrFrom4([4]byte{127, 0, 0, 1}),
		Timeout: 2 * time.Second, Retries: 1,
		Capture: capSink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// One config for both runs: the replayed campaign must be configured
	// identically to the captured one or replay fails loudly by design.
	campaignConfig := func(tpFor func(int) tracer.Transport) measure.Config {
		return measure.Config{
			Dests: dests, Rounds: rounds, Workers: workers,
			MinTTL: 1, PortSeed: 42, Batch: true,
			TransportFor: tpFor,
		}
	}
	camp, err := measure.NewCampaign(nil, campaignConfig(func(int) tracer.Transport { return m.Transport() }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for r := range res.Rounds {
		for _, p := range res.Rounds[r] {
			if p.Paris == nil || !p.Paris.Reached() {
				t.Fatalf("round %d dest %v: loopback not reached: %+v", r, p.Dest, p.Outcome)
			}
			if len(p.Paris.Hops) != 1 || p.Paris.Hops[0].Addr != p.Dest {
				t.Errorf("round %d dest %v: route %v, want one hop answering as the destination",
					r, p.Dest, p.Paris.Addresses())
			}
		}
	}
	h := m.Health()
	if h.InFlight != 0 {
		t.Errorf("campaign done but %d probes still in flight", h.InFlight)
	}
	if h.Destinations == 0 {
		t.Errorf("no destination collected an RTT sample: %+v", h)
	}

	// Close the mux (stops feeding the tap) and install the capture, then
	// re-run the identical campaign from the file alone.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := capSink.Close(); err != nil {
		t.Fatal(err)
	}
	rt, err := replay.Open(capPath, replay.Config{Retries: 1})
	if err != nil {
		t.Fatalf("replaying the loopback capture: %v", err)
	}
	rcamp, err := measure.NewCampaign(nil, campaignConfig(func(int) tracer.Transport { return rt }))
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rcamp.Run()
	if err != nil {
		t.Fatalf("replayed campaign: %v", err)
	}
	if len(rres.Rounds) != len(res.Rounds) {
		t.Fatalf("replay produced %d rounds, live run %d", len(rres.Rounds), len(res.Rounds))
	}
	for r := range res.Rounds {
		if len(rres.Rounds[r]) != len(res.Rounds[r]) {
			t.Fatalf("round %d: replay holds %d pairs, live run %d", r, len(rres.Rounds[r]), len(res.Rounds[r]))
		}
		for i, lp := range res.Rounds[r] {
			rp := rres.Rounds[r][i]
			if rp.Dest != lp.Dest {
				t.Fatalf("round %d pair %d: replay dest %v, live %v", r, i, rp.Dest, lp.Dest)
			}
			// Full-fidelity comparison: addresses, kinds, TTL observables,
			// and RTTs must all survive the trip through the pcap.
			if !reflect.DeepEqual(rp.Classic, lp.Classic) {
				t.Errorf("round %d dest %v: replayed classic route differs\nlive:   %+v\nreplay: %+v",
					r, lp.Dest, lp.Classic, rp.Classic)
			}
			if !reflect.DeepEqual(rp.Paris, lp.Paris) {
				t.Errorf("round %d dest %v: replayed Paris route differs\nlive:   %+v\nreplay: %+v",
					r, lp.Dest, lp.Paris, rp.Paris)
			}
		}
	}
	if l := rt.Leftover(); l != 0 {
		t.Errorf("%d captured exchange(s) never served — the replayed campaign under-consumed the capture", l)
	}
}
