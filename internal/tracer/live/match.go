package live

import (
	"repro/internal/packet"
)

// Response demultiplexing. A live transport shares one pair of raw receive
// sockets among every probe of a batch (and with every other ICMP/TCP
// conversation the host is having), so each inbound packet must be routed
// back to the in-flight probe it answers — or discarded as unrelated
// traffic — before the tracer's strict per-discipline matching ever sees it.
//
// The key is the Paris invariant the paper builds on (Section 2.1): an ICMP
// error quotes the offending probe's IP header plus at least its first
// eight transport octets, and those first transport octets are exactly
// where every discipline keeps its flow identifier and its per-probe
// identifier (UDP ports and checksum; ICMP type/code/checksum/id/seq; TCP
// ports and sequence number). A probe therefore registers under the flow
// identifier of its own bytes — inner source, destination, protocol, IP ID,
// and the first eight transport octets — and an ICMP error is matched by
// extracting the same tuple from its quoted packet. Fields routers mutate
// in flight (the quoted TTL, which the paper's Fig. 4 shows arriving as 0
// or 1, and the IP checksum that follows it) are deliberately excluded, as
// is the outer source address, which NAT boxes rewrite (Fig. 5).
//
// Terminal responses carry no quote, so they match on what the destination
// echoes back instead: Echo Replies return the request's identifier and
// sequence number, and TCP RST/SYN-ACK segments return the probe's ports
// (swapped) and its sequence number acknowledged. When several in-flight
// probes share a terminal key (tcptraceroute sends a constant sequence
// number), responses resolve to the oldest unanswered probe — the FIFO rule
// — which is the only ambiguity the quoted-header invariant cannot remove.

// matchKey identifies the probe a response answers. kind keeps the three
// namespaces (quoted errors, echo replies, TCP segments) disjoint.
type matchKey struct {
	kind  uint8
	src   [4]byte // probe source (inner header for quoted errors)
	dst   [4]byte // probe destination (zero where rewriting makes it unsafe)
	proto uint8
	ipid  uint16  // probe IP ID as quoted; 0 in terminal namespaces
	t     [8]byte // transport octets: quoted first 8 / echo id+seq / ports+ack
}

const (
	keyQuoted uint8 = iota + 1
	keyEcho
	keyTCP
)

// first8 copies up to eight transport octets, zero-padding the rest (RFC
// 792 guarantees eight for quoted probes; defensive for shorter captures).
func first8(b []byte) (t [8]byte) {
	copy(t[:], b)
	return t
}

// probeKeys derives the keys a serialized probe registers under: always the
// quoted-error key, plus a terminal key for disciplines whose destination
// answers in-protocol. Returns ok=false for packets that are not parseable
// IPv4 probes.
func probeKeys(probe []byte) (quoted matchKey, terminal matchKey, hasTerminal, ok bool) {
	var h packet.IPv4
	payload, err := packet.ParseIPv4Into(probe, &h)
	if err != nil {
		return matchKey{}, matchKey{}, false, false
	}
	quoted = matchKey{
		kind:  keyQuoted,
		src:   h.Src.As4(),
		dst:   h.Dst.As4(),
		proto: h.Protocol,
		ipid:  h.ID,
		t:     first8(payload),
	}
	switch h.Protocol {
	case packet.ProtoICMP:
		var m packet.ICMP
		if err := packet.ParseICMPInto(payload, &m); err == nil && m.Type == packet.ICMPTypeEchoRequest {
			k := matchKey{kind: keyEcho, src: h.Src.As4(), proto: packet.ProtoICMP}
			put16key(k.t[0:], m.ID)
			put16key(k.t[2:], m.Seq)
			return quoted, k, true, true
		}
	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, err := packet.ParseTCPInto(payload, &th); err == nil {
			k := matchKey{kind: keyTCP, src: h.Src.As4(), proto: packet.ProtoTCP}
			put16key(k.t[0:], th.SrcPort)
			put16key(k.t[2:], th.DstPort)
			put32key(k.t[4:], th.Seq+1) // RST and SYN-ACK acknowledge seq+1
			return quoted, k, true, true
		}
	}
	return quoted, matchKey{}, false, true
}

// respKey classifies an inbound packet and computes the single key it
// matches under. ok=false means the packet cannot answer any probe
// (unparseable, an unrelated ICMP type, our own outbound probe looped back
// by the capture path) and must be dropped.
func respKey(resp []byte) (matchKey, bool) {
	var h packet.IPv4
	payload, err := packet.ParseIPv4Into(resp, &h)
	if err != nil {
		return matchKey{}, false
	}
	switch h.Protocol {
	case packet.ProtoICMP:
		var m packet.ICMP
		if err := packet.ParseICMPInto(payload, &m); err != nil {
			return matchKey{}, false
		}
		if m.IsError() {
			var inner packet.IPv4
			quotedTransport, err := packet.ParseIPv4Into(m.Payload, &inner)
			if err != nil {
				return matchKey{}, false
			}
			return matchKey{
				kind:  keyQuoted,
				src:   inner.Src.As4(),
				dst:   inner.Dst.As4(),
				proto: inner.Protocol,
				ipid:  inner.ID,
				t:     first8(quotedTransport),
			}, true
		}
		if m.Type == packet.ICMPTypeEchoReply {
			// The reply's destination is the probe's source; the reply's
			// source may have been rewritten, so it stays out of the key.
			k := matchKey{kind: keyEcho, src: h.Dst.As4(), proto: packet.ProtoICMP}
			put16key(k.t[0:], m.ID)
			put16key(k.t[2:], m.Seq)
			return k, true
		}
		return matchKey{}, false
	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, err := packet.ParseTCPInto(payload, &th); err != nil {
			return matchKey{}, false
		}
		if th.Flags&(packet.TCPRst|packet.TCPSyn) == 0 {
			return matchKey{}, false
		}
		// Swap the ports back into probe orientation.
		k := matchKey{kind: keyTCP, src: h.Dst.As4(), proto: packet.ProtoTCP}
		put16key(k.t[0:], th.DstPort)
		put16key(k.t[2:], th.SrcPort)
		put32key(k.t[4:], th.Ack)
		return k, true
	default:
		return matchKey{}, false
	}
}

func put16key(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }

func put32key(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
