package live

import (
	"repro/internal/tracer/flowkey"
)

// Response demultiplexing. A live transport shares one pair of raw receive
// sockets among every probe of a batch (and with every other ICMP/TCP
// conversation the host is having), so each inbound packet must be routed
// back to the in-flight probe it answers — or discarded as unrelated
// traffic — before the tracer's strict per-discipline matching ever sees
// it. The key derivation lives in internal/tracer/flowkey (shared with the
// replay transport, which must attribute a captured campaign's responses
// with the exact same rule); this file binds it under the names the
// transport and mux use. See the flowkey package doc for the attribution
// contract — the Paris quoted-header invariant, the terminal-key
// namespaces, and the oldest-unanswered FIFO rule for shared TCP keys.

// matchKey identifies the probe a response answers.
type matchKey = flowkey.Key

// probeKeys derives the keys a serialized probe registers under: always the
// quoted-error key, plus a terminal key for disciplines whose destination
// answers in-protocol.
func probeKeys(probe []byte) (quoted matchKey, terminal matchKey, hasTerminal, ok bool) {
	return flowkey.ProbeKeys(probe)
}

// respKey classifies an inbound packet and computes the single key it
// matches under.
func respKey(resp []byte) (matchKey, bool) {
	return flowkey.RespKey(resp)
}
