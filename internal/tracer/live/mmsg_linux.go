//go:build linux && (amd64 || arm64)

package live

import (
	"syscall"
	"unsafe"
)

// The batch syscalls. The Go standard library's frozen syscall tables
// predate sendmmsg (and lack recvmmsg on some architectures), so the
// numbers live in sysnum_linux_*.go per architecture; architectures
// without an entry compile the mmsg_linux_fallback.go stubs and take the
// per-packet path in sockets_linux.go instead.

const haveMmsg = true

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// returned datagram length, padded to 8 bytes.
type mmsghdr struct {
	hdr  syscall.Msghdr
	mlen uint32
	_    [4]byte
}

// sendmmsg transmits every datagram in one syscall, returning how many the
// kernel accepted.
func sendmmsg(fd int, dgs []Datagram) (int, error) {
	vec := make([]mmsghdr, len(dgs))
	iovs := make([]syscall.Iovec, len(dgs))
	sas := make([]syscall.RawSockaddrInet4, len(dgs))
	for i := range dgs {
		iovs[i].Base = &dgs[i].Buf[0]
		iovs[i].SetLen(len(dgs[i].Buf))
		sas[i] = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: dgs[i].Dst}
		vec[i].hdr.Name = (*byte)(unsafe.Pointer(&sas[i]))
		vec[i].hdr.Namelen = uint32(syscall.SizeofSockaddrInet4)
		vec[i].hdr.Iov = &iovs[i]
		vec[i].hdr.Iovlen = 1
	}
	n, _, errno := syscall.Syscall6(sysSendmmsg,
		uintptr(fd), uintptr(unsafe.Pointer(&vec[0])), uintptr(len(vec)), 0, 0, 0)
	if errno != 0 {
		return int(n), errno
	}
	return int(n), nil
}

// recvCtrlSpace sizes one message's control buffer: room for the
// SO_RXQ_OVFL cmsg (header plus a uint32) with alignment slack.
const recvCtrlSpace = 48

// recvmmsg drains every immediately-available datagram into dgs in one
// nonblocking syscall, filling each entry's N. The second return value is
// the largest SO_RXQ_OVFL overflow counter seen in the sweep's control
// messages — the kernel attaches the cumulative per-socket drop count to
// every datagram once the option is enabled — or 0 when none arrived.
func recvmmsg(fd int, dgs []Datagram) (int, uint32, error) {
	vec := make([]mmsghdr, len(dgs))
	iovs := make([]syscall.Iovec, len(dgs))
	ctrl := make([]byte, len(dgs)*recvCtrlSpace)
	for i := range dgs {
		iovs[i].Base = &dgs[i].Buf[0]
		iovs[i].SetLen(len(dgs[i].Buf))
		vec[i].hdr.Iov = &iovs[i]
		vec[i].hdr.Iovlen = 1
		vec[i].hdr.Control = &ctrl[i*recvCtrlSpace]
		vec[i].hdr.SetControllen(recvCtrlSpace)
	}
	n, _, errno := syscall.Syscall6(sysRecvmmsg,
		uintptr(fd), uintptr(unsafe.Pointer(&vec[0])), uintptr(len(vec)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if errno != 0 {
		return int(n), 0, errno
	}
	var ovfl uint32
	for i := 0; i < int(n); i++ {
		dgs[i].N = int(vec[i].mlen)
		if clen := int(vec[i].hdr.Controllen); clen > 0 && clen <= recvCtrlSpace {
			if v, ok := parseRxqOvfl(ctrl[i*recvCtrlSpace : i*recvCtrlSpace+clen]); ok && v > ovfl {
				ovfl = v
			}
		}
	}
	return int(n), ovfl, nil
}

// parseRxqOvfl extracts the SO_RXQ_OVFL counter from one message's
// control region, if present.
func parseRxqOvfl(b []byte) (uint32, bool) {
	msgs, err := syscall.ParseSocketControlMessage(b)
	if err != nil {
		return 0, false
	}
	for _, m := range msgs {
		if m.Header.Level == syscall.SOL_SOCKET && m.Header.Type == soRXQOvfl && len(m.Data) >= 4 {
			return uint32(m.Data[0]) | uint32(m.Data[1])<<8 | uint32(m.Data[2])<<16 | uint32(m.Data[3])<<24, true
		}
	}
	return 0, false
}

// pollFD mirrors struct pollfd.
type pollFD struct {
	fd      int32
	events  int16
	revents int16
}

const pollIn = 0x1

// waitReadable blocks via ppoll until one of the two sockets (or the wake
// pipe, when wakeFD >= 0) is readable or the timeout elapses (nil: wait
// forever). Unlike select(2) this carries no FD_SETSIZE ceiling, so
// descriptors above 1024 — routine in a process that opens one Transport
// per campaign worker — work unchanged.
func waitReadable(fd1, fd2, wakeFD int, tmo *syscall.Timespec) (r1, r2, woke bool, err error) {
	pfds := [3]pollFD{
		{fd: int32(fd1), events: pollIn},
		{fd: int32(fd2), events: pollIn},
		{fd: int32(wakeFD), events: pollIn},
	}
	nfds := uintptr(3)
	if wakeFD < 0 {
		nfds = 2
	}
	n, _, errno := syscall.Syscall6(sysPpoll,
		uintptr(unsafe.Pointer(&pfds[0])), nfds,
		uintptr(unsafe.Pointer(tmo)), 0, 0, 0)
	if errno != 0 {
		return false, false, false, errno
	}
	if n == 0 {
		return false, false, false, nil
	}
	return pfds[0].revents&pollIn != 0, pfds[1].revents&pollIn != 0,
		nfds == 3 && pfds[2].revents&pollIn != 0, nil
}
