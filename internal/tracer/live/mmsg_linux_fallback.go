//go:build linux && !amd64 && !arm64

package live

import (
	"fmt"
	"syscall"
	"unsafe"
)

// Architectures without a vetted mmsghdr layout take the per-packet
// Sendto/Recvfrom path; the transport semantics are identical, only the
// syscall amortization is lost.

const haveMmsg = false

func sendmmsg(fd int, dgs []Datagram) (int, error) { return 0, syscall.ENOSYS }

// recvmmsg is unsupported here; the Recvfrom path also carries no
// SO_RXQ_OVFL control messages, so kernel drop counts stay zero.
func recvmmsg(fd int, dgs []Datagram) (int, uint32, error) { return 0, 0, syscall.ENOSYS }

// fdBits is the width of one FdSet.Bits word (64 on LP64, 32 on ILP32).
var fdBits = 8 * int(unsafe.Sizeof(syscall.FdSet{}.Bits[0]))

// waitReadable blocks via select until one of the two sockets (or the
// wake pipe, when wakeFD >= 0) is readable or the timeout elapses (nil:
// wait forever). select carries the FD_SETSIZE ceiling, so out-of-range
// descriptors are rejected with a clear error instead of indexing past
// the bit set.
func waitReadable(fd1, fd2, wakeFD int, tmo *syscall.Timespec) (r1, r2, woke bool, err error) {
	var rfds syscall.FdSet
	limit := fdBits * len(rfds.Bits)
	if fd1 >= limit || fd2 >= limit || wakeFD >= limit {
		return false, false, false, fmt.Errorf("live: descriptor beyond select's FD_SETSIZE (%d); lower the process's open-file count", limit)
	}
	set := func(fd int) {
		rfds.Bits[fd/fdBits] |= 1 << (uint(fd) % uint(fdBits))
	}
	isSet := func(fd int) bool {
		return rfds.Bits[fd/fdBits]&(1<<(uint(fd)%uint(fdBits))) != 0
	}
	set(fd1)
	set(fd2)
	maxFD := fd1
	if fd2 > maxFD {
		maxFD = fd2
	}
	if wakeFD >= 0 {
		set(wakeFD)
		if wakeFD > maxFD {
			maxFD = wakeFD
		}
	}
	var tvp *syscall.Timeval
	if tmo != nil {
		tv := syscall.NsecToTimeval(tmo.Nano())
		tvp = &tv
	}
	n, err := syscall.Select(maxFD+1, &rfds, nil, nil, tvp)
	if err != nil {
		return false, false, false, err
	}
	if n == 0 {
		return false, false, false, nil
	}
	return isSet(fd1), isSet(fd2), wakeFD >= 0 && isSet(wakeFD), nil
}
