//go:build linux && !amd64 && !arm64

package live

import (
	"fmt"
	"syscall"
	"unsafe"
)

// Architectures without a vetted mmsghdr layout take the per-packet
// Sendto/Recvfrom path; the transport semantics are identical, only the
// syscall amortization is lost.

const haveMmsg = false

func sendmmsg(fd int, dgs []Datagram) (int, error) { return 0, syscall.ENOSYS }

func recvmmsg(fd int, dgs []Datagram) (int, error) { return 0, syscall.ENOSYS }

// fdBits is the width of one FdSet.Bits word (64 on LP64, 32 on ILP32).
var fdBits = 8 * int(unsafe.Sizeof(syscall.FdSet{}.Bits[0]))

// waitReadable blocks via select until one of the two sockets is readable
// or the timeout elapses (nil: wait forever). select carries the
// FD_SETSIZE ceiling, so out-of-range descriptors are rejected with a
// clear error instead of indexing past the bit set.
func waitReadable(fd1, fd2 int, tmo *syscall.Timespec) (r1, r2 bool, err error) {
	var rfds syscall.FdSet
	limit := fdBits * len(rfds.Bits)
	if fd1 >= limit || fd2 >= limit {
		return false, false, fmt.Errorf("live: descriptor beyond select's FD_SETSIZE (%d); lower the process's open-file count", limit)
	}
	rfds.Bits[fd1/fdBits] |= 1 << (uint(fd1) % uint(fdBits))
	rfds.Bits[fd2/fdBits] |= 1 << (uint(fd2) % uint(fdBits))
	maxFD := fd1
	if fd2 > maxFD {
		maxFD = fd2
	}
	var tvp *syscall.Timeval
	if tmo != nil {
		tv := syscall.NsecToTimeval(tmo.Nano())
		tvp = &tv
	}
	n, err := syscall.Select(maxFD+1, &rfds, nil, nil, tvp)
	if err != nil {
		return false, false, err
	}
	if n == 0 {
		return false, false, nil
	}
	return rfds.Bits[fd1/fdBits]&(1<<(uint(fd1)%uint(fdBits))) != 0,
		rfds.Bits[fd2/fdBits]&(1<<(uint(fd2)%uint(fdBits))) != 0, nil
}
