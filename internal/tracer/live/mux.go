package live

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/tracer"
)

// This file is the campaign-wide demultiplexer: one raw socket pair, the
// whole fleet. A Mux owns a single PacketConn and a single receive loop;
// any number of workers call ExchangeBatch concurrently through the thin
// MuxTransport handles it hands out, and the loop attributes every inbound
// datagram across all in-flight batches by the same quoted-flow-identifier
// keys the per-batch wheel (live.go) uses — the per-batch key table is
// simply promoted to a mux-global registration table with per-batch
// ownership and race-safe unregister on completion.
//
// Three robustness layers ride on the shared loop (see docs/live.md for
// the full contracts):
//
//   - Per-destination adaptive timeouts: an RFC 6298 SRTT/RTTVAR estimator
//     per destination (rtt.go), fed by every first-transmission RTT the
//     wheel observes and never by retransmits (Karn's rule), yields each
//     probe's deadline and retransmit spacing, clamped into
//     [TimeoutFloor, Timeout].
//   - Receive-pressure degradation: kernel drop counts (SO_RXQ_OVFL via
//     the DropCounter seam) and sustained full-buffer read sweeps raise a
//     degrade shift that widens every adaptive timeout toward the cap and
//     fires OnPressure, which binaries wire to tracer.Pacer.SetRate so the
//     probe rate backs off. Every event is counted, never silent.
//   - Supervised socket recovery: a fatal receive error closes and
//     re-opens the socket pair (Redial) with bounded retries, re-sending
//     every in-flight probe on the new conn — attempts preserved, RTT
//     sampling suppressed (the old copy may still answer) — so probes are
//     retried, never lost. Redial exhaustion fails the in-flight probes
//     with the fatal error and marks the mux broken, per the transient/
//     fatal taxonomy.
//
// Lock order: a worker registers, sends, and wakes the loop under mu; the
// loop reads without mu (the conn is the only thing it touches unlocked)
// and takes mu to dispatch, expire, and reopen. Sends from both sides are
// serialized by mu itself. The fake conn's virtual clock works unchanged:
// the loop's read deadline is always the earliest wheel deadline, so an
// ErrTimeout turn always expires at least one slot and the wheel advances
// without real sleeps.

// MuxConfig parameterizes a shared demultiplexer.
type MuxConfig struct {
	// Source is the local IPv4 address probes carry; LocalIPv4 guesses it.
	Source netip.Addr
	// Timeout caps every adaptive per-probe timeout and is the timeout
	// used before a destination has any RTT sample (the paper's tool
	// waits 2 s). Zero selects 2 s.
	Timeout time.Duration
	// TimeoutFloor floors the adaptive timeout so one fast sample cannot
	// collapse a destination's deadline below reason. Zero selects 100 ms.
	TimeoutFloor time.Duration
	// Retries is how many times an unanswered probe is re-sent before it
	// resolves as a star. Zero means send once, never re-send.
	Retries int
	// Context, when non-nil, cancels in-flight exchanges: every waiting
	// worker fails its unresolved probes with the context's error.
	// Cancellation is observed by the waiting workers themselves, so it
	// is prompt regardless of the loop's read deadline.
	Context context.Context
	// Conn overrides the raw-socket layer — the test seam. Nil dials the
	// platform's real raw sockets (Linux only, needs root/CAP_NET_RAW).
	Conn PacketConn
	// Redial re-opens the socket layer after a fatal receive error. Nil
	// with a nil Conn selects dialRaw; nil with an injected Conn leaves
	// the mux unable to reopen (the first fatal error breaks it), which
	// is what hermetic tests that do not exercise recovery want.
	Redial func() (PacketConn, error)
	// MaxReopens bounds both the redial attempts within one recovery
	// incident and the consecutive incidents tolerated without a single
	// successful read in between. Zero selects 3.
	MaxReopens int
	// MTU sizes receive buffers. Zero selects 1500.
	MTU int
	// OnPressure, when set, is invoked (outside the mux lock) every time
	// the degradation level changes — up on detected receive pressure,
	// down as clean read turns accumulate — with a health snapshot.
	// Binaries use it to drive tracer.Pacer.SetRate.
	OnPressure func(tracer.MuxHealth)
	// Sleep replaces time.Sleep for redial backoff; tests inject a no-op.
	Sleep func(time.Duration)
	// Capture, when non-nil, receives every probe any worker's batch
	// injects and every datagram the receive loop reads — pre-dedup, so
	// duplicates, retransmits, reopen re-sends, and unrelated junk are
	// recorded too (pcap.Capture is the standard sink; it must be safe
	// for concurrent use). While a capture is armed the mux stamps
	// wall-clock times, making the capture's timestamps authoritative
	// for offline replay.
	Capture CaptureSink
}

// Mux is the shared demultiplexer. Create with NewMux, hand each worker a
// Transport (all handles are safe for concurrent use and may also be
// shared), observe with Health, end with Close.
type Mux struct {
	src        netip.Addr
	timeout    time.Duration
	floor      time.Duration
	retries    int
	maxReopens int
	mtu        int
	ctx        context.Context
	redial     func() (PacketConn, error)
	onPressure func(tracer.MuxHealth)
	sleepFn    func(time.Duration)
	capture    CaptureSink // immutable after NewMux; loop reads without mu

	mu   sync.Mutex
	cond *sync.Cond // registration/close wake-up for the idle loop
	conn PacketConn // nil only transiently inside reopenLocked
	// armed is the read deadline the loop is currently blocked on (zero:
	// the loop is not in a read); a worker registering an earlier
	// deadline wakes the conn through the Waker seam.
	armed  time.Time
	closed bool
	broken error // terminal failure: reopen budget exhausted

	byKey   map[matchKey][]slotRef
	batches map[*muxBatch]struct{}
	est     map[[4]byte]*rttEstimator

	degrade        int
	cleanTurns     int
	lagStreak      int
	incidentStreak int

	inFlight       int
	inFlightPeak   int
	reopens        int
	pressureEvents int
	kdrops         uint64

	send []Datagram // send scratch, guarded by mu
	recv []Datagram // receive scratch, loop-owned

	loopDone chan struct{}
}

// slotRef names one in-flight probe: batch identity plus slot index. The
// registration table maps each match key to a FIFO of these.
type slotRef struct {
	b *muxBatch
	i int
}

// muxBatch is one worker's ExchangeBatch call in flight.
type muxBatch struct {
	slots      []muxSlot
	out        []tracer.ProbeResult
	unresolved int
	done       chan struct{} // closed exactly once, under mu
}

// muxSlot is one in-flight probe's wheel entry (the mux-side slot).
type muxSlot struct {
	probe            []byte
	dst              [4]byte
	quoted, terminal matchKey
	hasTerminal      bool
	registered       bool
	sentAt           time.Time
	deadline         time.Time
	attempts         int
	sendDefers       int
	// noSample suppresses the RTT sample per Karn's rule: set on every
	// retransmission and on reopen re-sends (an answer may belong to any
	// copy of the probe).
	noSample bool
	resolved bool
	err      error
}

// errMuxClosed fails exchanges against a closed mux.
var errMuxClosed = errors.New("live: mux closed")

// Pressure- and recovery-tuning constants. The degrade shift widens
// adaptive timeouts by up to 1<<maxDegradeShift (still capped at Timeout);
// lagPressureStreak consecutive full receive sweeps count as pressure even
// without kernel drop counts; degradeDecayTurns clean read turns step the
// degradation back down one level.
const (
	maxDegradeShift   = 3
	lagPressureStreak = 4
	degradeDecayTurns = 64
	reopenBackoffBase = 100 * time.Millisecond
)

// NewMux opens a shared demultiplexer and starts its receive loop.
func NewMux(cfg MuxConfig) (*Mux, error) {
	if !cfg.Source.Is4() {
		return nil, fmt.Errorf("live: need an IPv4 source address, got %v", cfg.Source)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.TimeoutFloor <= 0 {
		cfg.TimeoutFloor = 100 * time.Millisecond
	}
	if cfg.TimeoutFloor > cfg.Timeout {
		cfg.TimeoutFloor = cfg.Timeout
	}
	if cfg.MaxReopens <= 0 {
		cfg.MaxReopens = 3
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	conn, redial := cfg.Conn, cfg.Redial
	if conn == nil {
		if redial == nil {
			redial = dialRaw
		}
		var err error
		if conn, err = redial(); err != nil {
			return nil, err
		}
	}
	if redial == nil {
		redial = func() (PacketConn, error) {
			return nil, errors.New("live: no Redial configured")
		}
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	m := &Mux{
		src:        cfg.Source,
		timeout:    cfg.Timeout,
		floor:      cfg.TimeoutFloor,
		retries:    cfg.Retries,
		maxReopens: cfg.MaxReopens,
		mtu:        cfg.MTU,
		ctx:        cfg.Context,
		redial:     redial,
		onPressure: cfg.OnPressure,
		sleepFn:    sleep,
		capture:    cfg.Capture,
		conn:       conn,
		byKey:      make(map[matchKey][]slotRef),
		batches:    make(map[*muxBatch]struct{}),
		est:        make(map[[4]byte]*rttEstimator),
		recv:       make([]Datagram, 64),
		loopDone:   make(chan struct{}),
	}
	for i := range m.recv {
		m.recv[i].Buf = make([]byte, m.mtu)
	}
	m.cond = sync.NewCond(&m.mu)
	go m.loop()
	return m, nil
}

// Source returns the configured local address.
func (m *Mux) Source() netip.Addr { return m.src }

// Close fails every in-flight probe, stops the receive loop, and releases
// the sockets. It returns after the loop goroutine has exited, so a closed
// mux leaks nothing. Safe to call more than once.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.loopDone
		return nil
	}
	m.closed = true
	m.failAllLocked(errMuxClosed)
	conn := m.conn
	m.conn = nil
	m.cond.Broadcast()
	m.mu.Unlock()
	var err error
	if conn != nil {
		// A loop blocked in the conn's read won't notice a concurrent close
		// of the descriptors it is polling; pop it out through the Waker
		// seam first, then close. The loop observes closed and exits.
		if w, ok := conn.(Waker); ok {
			w.Wake()
		}
		err = conn.Close()
	}
	<-m.loopDone
	return err
}

// Transport returns a tracer.Transport / tracer.BatchTransport /
// tracer.FallibleTransport handle over the mux. Handles are stateless and
// safe for concurrent use; a campaign may give every worker its own or
// share one, indifferently.
func (m *Mux) Transport() *MuxTransport { return &MuxTransport{m: m} }

// MuxTransport is a worker's handle on a shared Mux.
type MuxTransport struct{ m *Mux }

// Source implements tracer.Transport.
func (t *MuxTransport) Source() netip.Addr { return t.m.src }

// Exchange implements tracer.Transport: a batch of one. Per-probe faults
// degrade to stars; use ExchangeErr to observe them.
func (t *MuxTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	resp, rtt, ok, _ := t.ExchangeErr(probe)
	return resp, rtt, ok
}

// ExchangeErr implements tracer.FallibleTransport.
func (t *MuxTransport) ExchangeErr(probe []byte) ([]byte, time.Duration, bool, error) {
	probes := [1][]byte{probe}
	var out [1]tracer.ProbeResult
	t.m.exchangeBatch(probes[:], out[:])
	if out[0].Err != nil {
		return nil, 0, false, out[0].Err
	}
	if !out[0].OK {
		return nil, 0, false, nil
	}
	return out[0].Resp, out[0].RTT, true, nil
}

// ExchangeBatch implements tracer.BatchTransport. Unlike the per-worker
// Transport, concurrent calls interleave freely: the mux attributes every
// response by flow identifier across all in-flight batches.
func (t *MuxTransport) ExchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	t.m.exchangeBatch(probes, out)
}

// Health snapshots the mux's robustness counters.
func (m *Mux) Health() tracer.MuxHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthLocked()
}

func (m *Mux) healthLocked() tracer.MuxHealth {
	h := tracer.MuxHealth{
		InFlight:       m.inFlight,
		InFlightPeak:   m.inFlightPeak,
		KernelDrops:    m.kdrops,
		Reopens:        m.reopens,
		PressureEvents: m.pressureEvents,
		DegradeShift:   m.degrade,
		Destinations:   len(m.est),
	}
	var sum int64
	for dst := range m.est {
		r := int64(m.rtoLocked(dst))
		sum += r
		if h.RTOMinNs == 0 || r < h.RTOMinNs {
			h.RTOMinNs = r
		}
		if r > h.RTOMaxNs {
			h.RTOMaxNs = r
		}
	}
	if n := len(m.est); n > 0 {
		h.RTOMeanNs = sum / int64(n)
	}
	return h
}

// exchangeBatch registers the batch in the mux-global table, performs the
// initial send, and blocks until the receive loop (or cancellation)
// resolves every probe.
func (m *Mux) exchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	if len(out) < len(probes) {
		panic("live: ExchangeBatch result slice shorter than probe slice")
	}
	if len(probes) == 0 {
		return
	}
	b := &muxBatch{slots: make([]muxSlot, len(probes)), out: out, done: make(chan struct{})}

	m.mu.Lock()
	if ferr := m.fatalLocked(); ferr != nil {
		m.mu.Unlock()
		for i := range probes {
			resetResult(&out[i])
			out[i].Err = ferr
		}
		return
	}
	for i, p := range probes {
		resetResult(&out[i])
		s := &b.slots[i]
		s.probe = p
		quoted, terminal, hasTerminal, ok := probeKeys(p)
		if !ok {
			s.resolved = true // unparseable: an immediate star
			continue
		}
		s.dst = quoted.Dst
		s.quoted, s.terminal, s.hasTerminal = quoted, terminal, hasTerminal
		s.registered = true
		m.byKey[quoted] = append(m.byKey[quoted], slotRef{b, i})
		if hasTerminal {
			m.byKey[terminal] = append(m.byKey[terminal], slotRef{b, i})
		}
		b.unresolved++
	}
	if b.unresolved == 0 {
		m.mu.Unlock()
		return
	}
	m.batches[b] = struct{}{}
	m.inFlight += b.unresolved
	if m.inFlight > m.inFlightPeak {
		m.inFlightPeak = m.inFlight
	}
	refs := make([]slotRef, 0, b.unresolved)
	for i := range b.slots {
		if !b.slots[i].resolved {
			refs = append(refs, slotRef{b, i})
		}
	}
	m.sendRefsLocked(m.now(), refs, false)
	// Wake an idle loop; if it is instead blocked in a read armed at a
	// later deadline than this batch's earliest, nudge the conn.
	m.cond.Broadcast()
	var wake Waker
	if !m.armed.IsZero() {
		if dl := m.batchEarliestLocked(b); dl.Before(m.armed) {
			wake, _ = m.conn.(Waker)
		}
	}
	m.mu.Unlock()
	if wake != nil {
		wake.Wake()
	}

	if m.ctx == nil {
		<-b.done
		return
	}
	select {
	case <-b.done:
	case <-m.ctx.Done():
		m.failBatch(b, m.ctx.Err())
		<-b.done
	}
}

// now is the mux's clock. With a capture sink armed it strips the
// monotonic reading, so an RTT (the difference of two of these stamps)
// equals the difference of the corresponding capture timestamps exactly —
// the byte-identity contract replay depends on. Without a capture the
// monotonic clock stays, immune to wall-clock steps.
func (m *Mux) now() time.Time {
	if m.capture == nil {
		return time.Now()
	}
	return time.Now().Round(0)
}

// fatalLocked returns the error new exchanges must fail with, if any.
func (m *Mux) fatalLocked() error {
	if m.closed {
		return errMuxClosed
	}
	return m.broken
}

// resetResult restores a recycled ProbeResult to its pre-exchange state,
// keeping the response buffer for append-truncate reuse.
func resetResult(r *tracer.ProbeResult) {
	r.OK = false
	r.RTT = 0
	r.Err = nil
	if r.Resp != nil {
		r.Resp = r.Resp[:0]
	}
}

// loop is the mux's single receive goroutine: wait for work, read until
// the earliest wheel deadline, dispatch, expire, recover.
func (m *Mux) loop() {
	defer close(m.loopDone)
	m.mu.Lock()
	for {
		for !m.closed && m.broken == nil && len(m.batches) == 0 {
			m.cond.Wait()
		}
		if m.closed || m.broken != nil {
			m.mu.Unlock()
			return
		}
		dl := m.earliestDeadlineLocked()
		conn := m.conn
		m.armed = dl
		m.mu.Unlock()

		rerr := conn.SetReadDeadline(dl)
		var n int
		if rerr == nil {
			n, rerr = conn.ReadBatch(m.recv)
		}
		now := m.now()
		// The tap sees every datagram before demultiplexing, stamped with
		// the same clock reading the RTTs below use. Safe without mu: a
		// probe's outbound record always precedes its response's arrival
		// (sends are recorded before the conn ever sees them), and the
		// sink locks internally.
		if m.capture != nil {
			for i := 0; i < n; i++ {
				m.capture.CaptureInbound(now, m.recv[i].Buf[:m.recv[i].N])
			}
		}

		m.mu.Lock()
		m.armed = time.Time{}
		if m.closed {
			m.mu.Unlock()
			return
		}
		if n > 0 {
			m.dispatchLocked(n, now)
			m.incidentStreak = 0
		}
		switch {
		case rerr == nil:
			// Full sweeps back-to-back mean the loop is not keeping up
			// with the receive rate — pressure even without kernel counts.
			if n == len(m.recv) {
				m.lagStreak++
			} else {
				m.lagStreak = 0
			}
		case errors.Is(rerr, ErrTimeout):
			// The conn reports the deadline we set has passed: expire
			// everything due at or before it. Trusting the conn (not the
			// wall clock) is what lets the fake fast-forward the wheel.
			m.lagStreak = 0
			m.incidentStreak = 0
			m.expireLocked(dl, now)
		default:
			m.lagStreak = 0
			m.reopenLocked(fmt.Errorf("live: receive: %w", rerr))
		}
		changed := m.pressureLocked(conn)
		if changed && m.onPressure != nil {
			h := m.healthLocked()
			cb := m.onPressure
			m.mu.Unlock()
			cb(h)
			m.mu.Lock()
		}
	}
}

// dispatchLocked attributes n received datagrams to their in-flight
// probes across every registered batch.
func (m *Mux) dispatchLocked(n int, now time.Time) {
	for i := 0; i < n; i++ {
		dg := &m.recv[i]
		key, ok := respKey(dg.Buf[:dg.N])
		if !ok {
			continue // unrelated traffic
		}
		ref, ok := m.popLocked(key)
		if !ok {
			continue // duplicate, or someone else's conversation
		}
		s := &ref.b.slots[ref.i]
		out := &ref.b.out[ref.i]
		out.Resp = append(out.Resp[:0], dg.Buf[:dg.N]...)
		out.RTT = now.Sub(s.sentAt)
		out.OK = true
		if s.attempts == 1 && !s.noSample {
			// Karn's rule: only first-transmission responses feed the
			// estimator.
			e := m.est[s.dst]
			if e == nil {
				e = &rttEstimator{}
				m.est[s.dst] = e
			}
			e.observe(out.RTT)
		}
		m.resolveLocked(ref)
	}
}

// resolveLocked marks ref's slot resolved and completes its batch when it
// was the last one. The slot's result fields are the caller's business.
func (m *Mux) resolveLocked(ref slotRef) {
	s := &ref.b.slots[ref.i]
	s.resolved = true
	ref.b.unresolved--
	m.inFlight--
	if ref.b.unresolved == 0 {
		m.unregisterLocked(ref.b)
		close(ref.b.done)
	}
}

// unregisterLocked removes every key-table reference the batch owns — the
// race-safe unregister: it runs under mu, so no response being dispatched
// concurrently can resolve against a completed batch's slots.
func (m *Mux) unregisterLocked(b *muxBatch) {
	for i := range b.slots {
		s := &b.slots[i]
		if !s.registered {
			continue
		}
		m.dropRefLocked(s.quoted, b, i)
		if s.hasTerminal {
			m.dropRefLocked(s.terminal, b, i)
		}
	}
	delete(m.batches, b)
}

func (m *Mux) dropRefLocked(k matchKey, b *muxBatch, i int) {
	q := m.byKey[k]
	for j := range q {
		if q[j].b == b && q[j].i == i {
			q = append(q[:j], q[j+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(m.byKey, k)
	} else {
		m.byKey[k] = q
	}
}

// popLocked resolves key to the oldest unanswered probe registered under
// it, consuming the entry — the same FIFO rule as the per-batch wheel,
// now spanning every batch in flight.
func (m *Mux) popLocked(key matchKey) (slotRef, bool) {
	q := m.byKey[key]
	for len(q) > 0 {
		ref := q[0]
		q = q[1:]
		if !ref.b.slots[ref.i].resolved {
			m.byKey[key] = q
			return ref, true
		}
	}
	if q != nil {
		m.byKey[key] = q
	}
	return slotRef{}, false
}

// earliestDeadlineLocked returns the soonest deadline among every
// in-flight probe of every batch.
func (m *Mux) earliestDeadlineLocked() time.Time {
	var dl time.Time
	for b := range m.batches {
		for i := range b.slots {
			s := &b.slots[i]
			if s.resolved {
				continue
			}
			if dl.IsZero() || s.deadline.Before(dl) {
				dl = s.deadline
			}
		}
	}
	return dl
}

// batchEarliestLocked returns b's soonest unresolved deadline.
func (m *Mux) batchEarliestLocked(b *muxBatch) time.Time {
	var dl time.Time
	for i := range b.slots {
		s := &b.slots[i]
		if s.resolved {
			continue
		}
		if dl.IsZero() || s.deadline.Before(dl) {
			dl = s.deadline
		}
	}
	return dl
}

// expireLocked advances the wheel past dl: probes due at or before it
// resolve with their pending fatal error, star when out of attempts, and
// are re-sent otherwise with their next adaptive-backoff deadline.
func (m *Mux) expireLocked(dl, now time.Time) {
	var resend []slotRef
	for b := range m.batches {
		for i := range b.slots {
			s := &b.slots[i]
			if s.resolved || s.deadline.After(dl) {
				continue
			}
			switch {
			case s.err != nil:
				b.out[i].Err = s.err
				m.resolveLocked(slotRef{b, i})
			case s.attempts > m.retries:
				m.resolveLocked(slotRef{b, i}) // a star: OK stays false
			default:
				resend = append(resend, slotRef{b, i})
			}
		}
	}
	if len(resend) > 0 {
		m.sendRefsLocked(now, resend, false)
	}
}

// sendRefsLocked sends every referenced slot in one WriteBatch and stamps
// the outcomes, with the same transient/fatal send classification as the
// per-batch wheel. With reopen set, slots already attempted are re-sent
// without charging their attempt budget (the socket died under them, the
// probe is preserved, not penalized) and with RTT sampling suppressed.
func (m *Mux) sendRefsLocked(now time.Time, refs []slotRef, reopen bool) {
	if m.conn == nil {
		// Mid-reopen (only reachable from a registering worker during the
		// redial window): leave the slots due immediately; the recovery
		// path re-sends everything unresolved once the new conn is up.
		for _, ref := range refs {
			ref.b.slots[ref.i].deadline = now
		}
		return
	}
	m.send = m.send[:0]
	for _, ref := range refs {
		s := &ref.b.slots[ref.i]
		m.send = append(m.send, Datagram{Buf: s.probe, Dst: s.dst})
	}
	// Record before the write, not after: the conn may deliver a response
	// (and the reader loop capture it) the instant WriteBatch enqueues
	// the probe, and the capture must never show an answer preceding its
	// probe. The cost is that a send the kernel rejects is still
	// recorded; replay folds the unanswered occurrence into the eventual
	// re-send or serves it as a star.
	if m.capture != nil {
		for _, dg := range m.send {
			m.capture.CaptureOutbound(now, dg.Buf)
		}
	}
	sent, err := m.conn.WriteBatch(m.send)
	for k, ref := range refs {
		s := &ref.b.slots[ref.i]
		switch {
		case k < sent:
			s.sentAt = now
			if reopen && s.attempts > 0 {
				s.noSample = true
			} else {
				s.attempts++
				if s.attempts > 1 {
					s.noSample = true
				}
			}
			a := s.attempts
			if a < 1 {
				a = 1
			}
			s.deadline = now.Add(m.backoffRTOLocked(s.dst, a))
			s.sendDefers = 0
		case err != nil && transientSendErr(err) && s.sendDefers < maxSendDefers:
			// The kernel will drain its buffers: re-offer the probe on the
			// next wheel turn at no attempt cost.
			s.sendDefers++
			s.deadline = now
		case err != nil && !transientSendErr(err):
			// Nothing will ever send this probe: fail it outright. The
			// wheel resolves it with this error on its next turn.
			s.err = fmt.Errorf("live: send: %w", err)
			s.deadline = now
		default:
			// Never made it onto the wire: burn the attempt with an
			// already-expired deadline so the wheel retries or stars it.
			s.deadline = now
			s.attempts++
		}
	}
}

// rtoLocked is destination dst's current adaptive timeout: the RFC 6298
// RTO clamped into [floor, Timeout], widened by the degradation shift
// (re-capped), falling back to the Timeout cap before any sample exists.
func (m *Mux) rtoLocked(dst [4]byte) time.Duration {
	r := m.est[dst].rto(m.floor, m.timeout)
	if m.degrade > 0 {
		r <<= m.degrade
		if r > m.timeout {
			r = m.timeout
		}
	}
	return r
}

// backoffRTOLocked is the deadline spacing for send attempt a (1-based):
// the adaptive RTO doubled per retransmission, re-clamped at the cap.
func (m *Mux) backoffRTOLocked(dst [4]byte, a int) time.Duration {
	r := m.rtoLocked(dst) << (a - 1)
	if r <= 0 || r > m.timeout {
		r = m.timeout
	}
	return r
}

// pressureLocked runs the receive-pressure detector after one read turn
// and reports whether the degradation level changed.
func (m *Mux) pressureLocked(conn PacketConn) bool {
	event := false
	if dc, ok := conn.(DropCounter); ok {
		if d := dc.KernelDrops(); d > m.kdrops {
			m.kdrops = d
			event = true
		}
	}
	if m.lagStreak >= lagPressureStreak {
		m.lagStreak = 0
		event = true
	}
	if event {
		m.pressureEvents++
		m.cleanTurns = 0
		if m.degrade < maxDegradeShift {
			m.degrade++
			return true
		}
		return false
	}
	m.cleanTurns++
	if m.cleanTurns >= degradeDecayTurns {
		m.cleanTurns = 0
		if m.degrade > 0 {
			m.degrade--
			return true
		}
	}
	return false
}

// reopenLocked is the supervised socket-recovery path, run by the loop on
// a fatal receive error: close the broken conn, redial with bounded
// backed-off retries, and re-send every in-flight probe on the new conn.
// Exhaustion — of redials within the incident, or of consecutive
// incidents without one successful read between them — fails all
// in-flight probes with the fatal error and marks the mux broken.
func (m *Mux) reopenLocked(cause error) {
	m.incidentStreak++
	if old := m.conn; old != nil {
		m.conn = nil
		old.Close()
	}
	if m.incidentStreak > m.maxReopens {
		m.broken = fmt.Errorf("live: %d consecutive socket failures: %w", m.incidentStreak, cause)
		m.failAllLocked(m.broken)
		return
	}
	for attempt := 1; attempt <= m.maxReopens; attempt++ {
		redial := m.redial
		m.mu.Unlock()
		c, err := redial()
		m.mu.Lock()
		if m.closed {
			if err == nil {
				c.Close()
			}
			return
		}
		if err == nil {
			m.conn = c
			m.reopens++
			m.resendAllLocked(m.now())
			return
		}
		if attempt == m.maxReopens {
			m.broken = fmt.Errorf("live: socket reopen failed after %d attempts (%v): %w", attempt, err, cause)
			m.failAllLocked(m.broken)
			return
		}
		d := reopenBackoffBase << (attempt - 1)
		if d > m.timeout {
			d = m.timeout
		}
		sleep := m.sleepFn
		m.mu.Unlock()
		sleep(d)
		m.mu.Lock()
		if m.closed {
			return
		}
	}
}

// resendAllLocked re-sends every unresolved in-flight probe — the
// in-flight-preservation half of the recovery contract. Probes that had
// hit a fatal send error on the dead conn get a clean slate: the error
// belonged to the old socket.
func (m *Mux) resendAllLocked(now time.Time) {
	var refs []slotRef
	for b := range m.batches {
		for i := range b.slots {
			s := &b.slots[i]
			if s.resolved {
				continue
			}
			s.err = nil
			s.sendDefers = 0
			refs = append(refs, slotRef{b, i})
		}
	}
	if len(refs) > 0 {
		m.sendRefsLocked(now, refs, true)
	}
}

// failAllLocked resolves every in-flight probe of every batch with err and
// completes the batches.
func (m *Mux) failAllLocked(err error) {
	for b := range m.batches {
		for i := range b.slots {
			s := &b.slots[i]
			if s.resolved {
				continue
			}
			b.out[i].Err = err
			s.resolved = true
			b.unresolved--
			m.inFlight--
		}
		delete(m.batches, b)
		// References die with the map entries; the table must not outlive
		// the batches it points into.
		close(b.done)
	}
	clear(m.byKey)
}

// failBatch fails one batch's unresolved probes (the cancellation path,
// called from the waiting worker). A batch already completed by the loop
// is left untouched.
func (m *Mux) failBatch(b *muxBatch, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.batches[b]; !ok {
		return
	}
	for i := range b.slots {
		s := &b.slots[i]
		if s.resolved {
			continue
		}
		b.out[i].Err = err
		s.resolved = true
		b.unresolved--
		m.inFlight--
	}
	m.unregisterLocked(b)
	close(b.done)
}
