package live

import (
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/tracer"
)

// The mux differential harness extends the per-batch one (live_test.go) to
// the shared demultiplexer: N workers trace disjoint destination slices
// concurrently through ONE Mux over ONE SimConn, and every route must be
// identical (tracer.Route.Equal) to a sequential baseline over an
// identically-built network. The topologies are schedule-free — responses
// are pure functions of the probe bytes — so worker interleaving cannot
// legitimately change a route, and any divergence is a mux attribution
// bug. Everything runs on the fake's virtual clock: no sleeps, no
// privileges, race-detector clean.

var (
	_ tracer.Transport         = (*MuxTransport)(nil)
	_ tracer.BatchTransport    = (*MuxTransport)(nil)
	_ tracer.FallibleTransport = (*MuxTransport)(nil)
	_ DropCounter              = (*SimConn)(nil)
)

// muxTopo generates a schedule-free multi-destination topology: per-probe
// randomness (mid-trace flips, per-packet balancing) is zeroed, so every
// response is a pure function of the probe bytes and replaying probes in
// any order or multiplicity yields identical routes.
func muxTopo(t *testing.T, dests int, seed int64) *topo.Scenario {
	t.Helper()
	gc := topo.DefaultGenConfig()
	gc.Seed = seed
	gc.Destinations = dests
	gc.FlipPerProbe = 0
	gc.PPerPacket = 0
	gc.PPerPacketUnequal = 0
	return topo.Generate(gc)
}

// muxBaseline traces every destination sequentially over the plain netsim
// transport — the ground truth the mux must reproduce.
func muxBaseline(t *testing.T, sc *topo.Scenario) []*tracer.Route {
	t.Helper()
	tp := netsim.NewTransport(sc.Net)
	want := make([]*tracer.Route, len(sc.Dests))
	for i, d := range sc.Dests {
		r, err := tracer.NewParisUDP(tp, tracer.Options{}).Trace(d)
		if err != nil {
			t.Fatalf("baseline %v: %v", d, err)
		}
		want[i] = r
	}
	return want
}

// muxTraceAll traces sc's destinations through m with `workers` concurrent
// goroutines over disjoint contiguous slices, batched ladders.
func muxTraceAll(t *testing.T, m *Mux, sc *topo.Scenario, workers int) []*tracer.Route {
	t.Helper()
	got := make([]*tracer.Route, len(sc.Dests))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(sc.Dests) / workers
		hi := (w + 1) * len(sc.Dests) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tp := m.Transport()
			for i := lo; i < hi; i++ {
				r, err := tracer.NewParisUDP(tp, tracer.Options{Batch: true}).Trace(sc.Dests[i])
				if err != nil {
					errs[w] = fmt.Errorf("dest %v: %w", sc.Dests[i], err)
					return
				}
				got[i] = r
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	return got
}

// TestMuxMultiWorkerDifferential is the tentpole acceptance test: 8
// workers share one mux over one fake socket pair, under every fault
// schedule, and each of the 16 concurrently-traced routes must equal its
// sequential single-worker baseline.
func TestMuxMultiWorkerDifferential(t *testing.T) {
	const seed, workers, dests = 21, 8, 16
	schedules := []struct {
		name    string
		sched   func() SimSchedule
		retries int
	}{
		{"clean", func() SimSchedule { return SimSchedule{} }, 0},
		{"reorder", func() SimSchedule { return SimSchedule{Reorder: true} }, 0},
		{"duplicate", func() SimSchedule {
			return SimSchedule{Dup: func(int) bool { return true }}
		}, 0},
		{"delay-half", func() SimSchedule {
			return SimSchedule{Delay: func(ord int) int {
				if ord%2 == 0 {
					return 2
				}
				return 0
			}}
		}, 0},
		{"drop-first-attempt+retry", func() SimSchedule {
			seen := make(map[string]bool)
			return SimSchedule{Drop: func(_ int, probe []byte) bool {
				if seen[string(probe)] {
					return false
				}
				seen[string(probe)] = true
				return true
			}}
		}, 1},
	}
	want := muxBaseline(t, muxTopo(t, dests, seed))
	for _, sch := range schedules {
		sc := muxTopo(t, dests, seed)
		fake := &SimConn{Respond: netsimResponder(sc.Net), Sched: sch.sched()}
		m, err := NewMux(MuxConfig{Source: sc.Net.Source(), Conn: fake, Retries: sch.retries})
		if err != nil {
			t.Fatalf("%s: NewMux: %v", sch.name, err)
		}
		got := muxTraceAll(t, m, sc, workers)
		h := m.Health()
		if err := m.Close(); err != nil {
			t.Fatalf("%s: Close: %v", sch.name, err)
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Errorf("%s: dest %v: mux route differs from sequential baseline\ngot:  halt=%v hops=%v\nwant: halt=%v hops=%v",
					sch.name, sc.Dests[i], got[i].Halt, got[i].Addresses(), want[i].Halt, want[i].Addresses())
			}
		}
		if h.InFlight != 0 {
			t.Errorf("%s: %d probes still in flight after all traces completed", sch.name, h.InFlight)
		}
		if h.InFlightPeak == 0 {
			t.Errorf("%s: health never observed traffic: %+v", sch.name, h)
		}
		// Under the retry schedule every response follows a retransmit, so
		// Karn's rule correctly leaves the estimators empty; every other
		// schedule must have sampled RTTs.
		if sch.retries == 0 && h.Destinations == 0 {
			t.Errorf("%s: no destination collected an RTT sample: %+v", sch.name, h)
		}
	}
}

// TestMuxCampaignDifferential runs a full measure.Campaign with 8 workers,
// each holding its own MuxTransport over one shared mux (the -live wiring),
// against a single-worker campaign over the plain simulator transport. The
// materialized pairs must agree route for route.
func TestMuxCampaignDifferential(t *testing.T) {
	const seed, rounds, workers, dests = 23, 2, 8, 16
	sc1 := muxTopo(t, dests, seed)
	camp1, err := measure.NewCampaign(netsim.NewTransport(sc1.Net), measure.Config{
		Dests: sc1.Dests, Rounds: rounds, Workers: 1, PortSeed: 42, Batch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := camp1.Run()
	if err != nil {
		t.Fatal(err)
	}

	sc2 := muxTopo(t, dests, seed)
	fake := &SimConn{Respond: netsimResponder(sc2.Net)}
	m, err := NewMux(MuxConfig{Source: sc2.Net.Source(), Conn: fake, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	camp2, err := measure.NewCampaign(nil, measure.Config{
		Dests: sc2.Dests, Rounds: rounds, Workers: workers, PortSeed: 42, Batch: true,
		TransportFor: func(int) tracer.Transport { return m.Transport() },
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := camp2.Run()
	if err != nil {
		t.Fatal(err)
	}

	for r := range res1.Rounds {
		for i := range res1.Rounds[r] {
			p1, p2 := res1.Rounds[r][i], res2.Rounds[r][i]
			if p1.Outcome != p2.Outcome {
				t.Fatalf("round %d dest %v: outcome %v vs %v", r, p1.Dest, p1.Outcome, p2.Outcome)
			}
			if !p2.Paris.Equal(p1.Paris) || !p2.Classic.Equal(p1.Classic) {
				t.Errorf("round %d dest %v: mux campaign pair differs from baseline", r, p1.Dest)
			}
		}
	}
}

// TestMuxSocketFailureRecovery kills the socket under a multi-worker
// campaign-style trace set: the first read on the original conn fails
// fatally, the mux must redial and re-send every in-flight probe on the
// replacement, and every route must still equal the baseline — zero lost
// probes, one reopen, no errors surfaced to any worker.
func TestMuxSocketFailureRecovery(t *testing.T) {
	const seed, workers, dests = 29, 4, 8
	want := muxBaseline(t, muxTopo(t, dests, seed))
	sc := muxTopo(t, dests, seed)
	responder := netsimResponder(sc.Net)
	fake1 := &SimConn{Respond: responder}
	fake1.ReadErr = func(call int) error {
		if call == 0 {
			return errors.New("fake: network down")
		}
		return nil
	}
	var (
		mu      sync.Mutex
		redials int
		conns   []*SimConn
	)
	m, err := NewMux(MuxConfig{
		Source: sc.Net.Source(), Conn: fake1,
		Redial: func() (PacketConn, error) {
			mu.Lock()
			defer mu.Unlock()
			redials++
			c := &SimConn{Respond: responder}
			conns = append(conns, c)
			return c, nil
		},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := muxTraceAll(t, m, sc, workers)
	h := m.Health()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("dest %v: route differs after socket recovery", sc.Dests[i])
		}
	}
	if h.Reopens != 1 || redials != 1 {
		t.Errorf("reopens=%d redials=%d, want exactly 1 recovery incident", h.Reopens, redials)
	}
	if h.InFlight != 0 {
		t.Errorf("%d probes lost in flight across the reopen", h.InFlight)
	}
	// Every probe the first conn accepted was re-sent on the replacement:
	// the replacement saw at least as many sends as were stranded.
	if fake1.SendCount() == 0 || conns[0].SendCount() < fake1.SendCount() {
		t.Errorf("sends: old conn %d, new conn %d — stranded probes were not all re-sent",
			fake1.SendCount(), conns[0].SendCount())
	}
}

// TestMuxReopenExhaustion drives the recovery path out of budget: every
// read fails and every redial fails, so the in-flight probes must resolve
// with the fatal error (not hang, not star silently), the mux must mark
// itself broken, and subsequent exchanges must fail fast.
func TestMuxReopenExhaustion(t *testing.T) {
	sc := muxTopo(t, 2, 31)
	fake := &SimConn{Respond: netsimResponder(sc.Net)}
	fake.ReadErr = func(int) error { return errors.New("fake: persistent failure") }
	m, err := NewMux(MuxConfig{
		Source: sc.Net.Source(), Conn: fake,
		Redial:     func() (PacketConn, error) { return nil, errors.New("fake: redial refused") },
		MaxReopens: 2,
		Sleep:      func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := tracer.NewParisUDP(m.Transport(), tracer.Options{Batch: true}).Trace(sc.Dests[0]); err == nil {
		t.Fatal("trace over a dead socket succeeded")
	}
	// The mux is broken: the next exchange fails immediately, without
	// touching the (dead) socket layer.
	if _, _, _, err := m.Transport().ExchangeErr([]byte{0xde, 0xad}); err == nil {
		t.Fatal("exchange against a broken mux returned no error")
	}
	if h := m.Health(); h.InFlight != 0 {
		t.Fatalf("%d probes leaked in flight through the broken path", h.InFlight)
	}
}

// TestMuxLifecycleNoGoroutineLeak cycles mux start → trace → stop many
// times and requires the goroutine count to come back down: Close must
// reap the receive loop every time.
func TestMuxLifecycleNoGoroutineLeak(t *testing.T) {
	dest := netip.AddrFrom4([4]byte{198, 51, 100, 9})
	src := netip.AddrFrom4([4]byte{192, 0, 2, 1})
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		fake := &SimConn{Respond: func([]byte) ([]byte, bool) { return nil, false }}
		m, err := NewMux(MuxConfig{Source: src, Conn: fake})
		if err != nil {
			t.Fatal(err)
		}
		// A silent network stars every hop; the trace halts on the
		// consecutive-star rule, exercising register/expire/unregister.
		if _, err := tracer.NewParisUDP(m.Transport(), tracer.Options{Batch: true}).Trace(dest); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	// Close joins the loop goroutine, so the count must settle without
	// sleeping; scheduling slack is absorbed by a yield loop and a small
	// tolerance.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+2; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d across 50 mux lifecycles", before, after)
	}
}

// TestMuxPressureStateMachine drives the degradation detector directly:
// kernel-drop increases raise the shift one level per turn up to the cap,
// sustained read-lag counts as pressure without drop counts, and clean
// turns decay the shift back down — with every event counted.
func TestMuxPressureStateMachine(t *testing.T) {
	m := &Mux{timeout: 2 * time.Second, floor: 100 * time.Millisecond,
		est: make(map[[4]byte]*rttEstimator)}
	conn := &SimConn{}

	conn.SetKernelDrops(10)
	if !m.pressureLocked(conn) {
		t.Fatal("first kernel-drop increase did not change the degrade level")
	}
	if m.degrade != 1 || m.pressureEvents != 1 || m.kdrops != 10 {
		t.Fatalf("after first event: degrade=%d events=%d kdrops=%d", m.degrade, m.pressureEvents, m.kdrops)
	}
	// Drops keep climbing: one level per turn, saturating at the cap,
	// events counted past it.
	for i := 0; i < 5; i++ {
		conn.SetKernelDrops(uint64(20 + i*10))
		m.pressureLocked(conn)
	}
	if m.degrade != maxDegradeShift {
		t.Fatalf("degrade=%d, want saturated at %d", m.degrade, maxDegradeShift)
	}
	if m.pressureEvents != 6 {
		t.Fatalf("pressureEvents=%d, want every one of 6 counted", m.pressureEvents)
	}
	// The widened timeout still respects the cap.
	if got := m.rtoLocked([4]byte{10, 0, 0, 1}); got != m.timeout {
		t.Fatalf("degraded no-sample RTO = %v, want capped at %v", got, m.timeout)
	}
	// Clean turns decay one level per degradeDecayTurns.
	for i := 0; i < degradeDecayTurns; i++ {
		m.pressureLocked(conn)
	}
	if m.degrade != maxDegradeShift-1 {
		t.Fatalf("degrade=%d after %d clean turns, want %d", m.degrade, degradeDecayTurns, maxDegradeShift-1)
	}
	// Read-loop lag alone (no kernel counter movement) is also pressure.
	m.lagStreak = lagPressureStreak
	if !m.pressureLocked(conn) {
		t.Fatal("sustained read lag did not raise the degrade level")
	}
}

// TestMuxPressureCallback runs pressure end to end: the fake's kernel-drop
// counter climbs while a trace is in flight, and OnPressure must fire
// outside the lock with a consistent health snapshot.
func TestMuxPressureCallback(t *testing.T) {
	sc := muxTopo(t, 2, 37)
	fake := &SimConn{}
	inner := netsimResponder(sc.Net)
	fake.Respond = func(probe []byte) ([]byte, bool) {
		fake.KDrops += 3 // fake.mu is held by WriteBatch here
		return inner(probe)
	}
	var (
		mu        sync.Mutex
		snapshots []tracer.MuxHealth
	)
	m, err := NewMux(MuxConfig{Source: sc.Net.Source(), Conn: fake,
		OnPressure: func(h tracer.MuxHealth) {
			mu.Lock()
			snapshots = append(snapshots, h)
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracer.NewParisUDP(m.Transport(), tracer.Options{Batch: true}).Trace(sc.Dests[0]); err != nil {
		t.Fatal(err)
	}
	h := m.Health()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if h.PressureEvents == 0 || h.KernelDrops == 0 {
		t.Fatalf("kernel drops went unnoticed: %+v", h)
	}
	if h.DegradeShift < 1 || h.DegradeShift > maxDegradeShift {
		t.Fatalf("degrade shift %d outside [1, %d]", h.DegradeShift, maxDegradeShift)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snapshots) == 0 {
		t.Fatal("OnPressure never fired")
	}
	for _, s := range snapshots {
		if s.DegradeShift < 1 || s.DegradeShift > maxDegradeShift {
			t.Fatalf("callback snapshot outside bounds: %+v", s)
		}
	}
}

// TestMuxAdaptiveTimeoutClamps checks the live estimator wiring: after a
// clean trace every per-destination RTO reported by Health sits inside
// [TimeoutFloor, Timeout] (the fake's sub-millisecond RTTs clamp to the
// floor), and a schedule that loses every first transmission leaves the
// estimators empty — Karn's rule, end to end.
func TestMuxAdaptiveTimeoutClamps(t *testing.T) {
	const floor, cap = 50 * time.Millisecond, time.Second
	sc := muxTopo(t, 4, 41)
	fake := &SimConn{Respond: netsimResponder(sc.Net)}
	m, err := NewMux(MuxConfig{Source: sc.Net.Source(), Conn: fake,
		Timeout: cap, TimeoutFloor: floor})
	if err != nil {
		t.Fatal(err)
	}
	muxTraceAll(t, m, sc, 2)
	h := m.Health()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if h.Destinations == 0 {
		t.Fatal("no destination collected an RTT sample on a clean trace")
	}
	if h.RTOMinNs < int64(floor) || h.RTOMaxNs > int64(cap) {
		t.Fatalf("RTO range [%d, %d]ns escapes clamps [%d, %d]ns",
			h.RTOMinNs, h.RTOMaxNs, int64(floor), int64(cap))
	}

	// Karn: drop every first transmission, answer only retransmits. No
	// response is then attributable to a single send, so no estimator may
	// receive a sample.
	sc2 := muxTopo(t, 4, 41)
	seen := make(map[string]bool)
	fake2 := &SimConn{Respond: netsimResponder(sc2.Net),
		Sched: SimSchedule{Drop: func(_ int, probe []byte) bool {
			if seen[string(probe)] {
				return false
			}
			seen[string(probe)] = true
			return true
		}}}
	m2, err := NewMux(MuxConfig{Source: sc2.Net.Source(), Conn: fake2, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	muxTraceAll(t, m2, sc2, 2)
	h2 := m2.Health()
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	if h2.Destinations != 0 {
		t.Fatalf("%d destinations sampled RTTs from retransmitted probes (Karn violation)", h2.Destinations)
	}
}

// TestMuxRetriesExhausted mirrors the per-batch wheel's attempt accounting
// on the shared path: under a drop-everything schedule every probe is sent
// exactly 1+Retries times and stars cleanly.
func TestMuxRetriesExhausted(t *testing.T) {
	const retries = 2
	sc := muxTopo(t, 1, 43)
	fake := &SimConn{Respond: netsimResponder(sc.Net),
		Sched: SimSchedule{Drop: func(int, []byte) bool { return true }}}
	m, err := NewMux(MuxConfig{Source: sc.Net.Source(), Conn: fake, Retries: retries})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tracer.NewParisUDP(m.Transport(), tracer.Options{Batch: true}).Trace(sc.Dests[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Halt != tracer.HaltStars {
		t.Fatalf("halt = %v, want stars", got.Halt)
	}
	if want := 8 * (1 + retries); fake.SendCount() != want {
		t.Errorf("sent %d probes, want %d (8 probes x %d attempts)", fake.SendCount(), want, 1+retries)
	}
}
