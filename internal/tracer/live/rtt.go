package live

import "time"

// Per-destination adaptive timeouts, RFC 6298 style. The mux keeps one
// rttEstimator per destination address and feeds it every RTT the deadline
// wheel observes on a first-transmission response — never on a retransmit
// (Karn's rule: a response after a retransmission cannot be attributed to
// either copy, so it must not update the estimator). The retransmission
// timeout it yields is clamped into [floor, cap] before use, and a probe's
// retransmit spacing doubles from it per attempt (the RFC's exponential
// backoff), re-clamped at the cap.

// rttEstimator is one destination's SRTT/RTTVAR state. All durations are
// nanosecond-precision time.Durations; the zero value means "no samples",
// in which case rto returns the cap (the conservative pre-measurement
// timeout, exactly the old global -timeout behaviour).
type rttEstimator struct {
	srtt    time.Duration
	rttvar  time.Duration
	samples int
}

// observe folds one round-trip sample in: the first sample initializes
// SRTT = R, RTTVAR = R/2; every later sample applies the RFC 6298 EWMAs
// RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R| and SRTT = 7/8·SRTT + 1/8·R.
// Non-positive samples (a clock hiccup) count as the smallest positive
// duration so the estimator can only tighten toward the floor, never wedge
// at zero.
func (e *rttEstimator) observe(r time.Duration) {
	if r <= 0 {
		r = 1
	}
	if e.samples == 0 {
		e.srtt = r
		e.rttvar = r / 2
	} else {
		dev := e.srtt - r
		if dev < 0 {
			dev = -dev
		}
		e.rttvar = (3*e.rttvar + dev) / 4
		e.srtt = (7*e.srtt + r) / 8
	}
	e.samples++
}

// rto returns the retransmission timeout SRTT + 4·RTTVAR clamped into
// [floor, cap]. Without samples it returns the cap.
func (e *rttEstimator) rto(floor, cap time.Duration) time.Duration {
	if e == nil || e.samples == 0 {
		return cap
	}
	d := e.srtt + 4*e.rttvar
	if d < floor {
		d = floor
	}
	if d > cap {
		d = cap
	}
	return d
}
