package live

import (
	"testing"
	"time"
)

func TestRTTEstimatorFirstSample(t *testing.T) {
	var e rttEstimator
	e.observe(200 * time.Millisecond)
	if e.srtt != 200*time.Millisecond || e.rttvar != 100*time.Millisecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v, want 200ms/100ms", e.srtt, e.rttvar)
	}
	// RTO = SRTT + 4·RTTVAR = 600ms, inside the clamps.
	if got := e.rto(100*time.Millisecond, 2*time.Second); got != 600*time.Millisecond {
		t.Fatalf("rto = %v, want 600ms", got)
	}
}

func TestRTTEstimatorEWMA(t *testing.T) {
	var e rttEstimator
	e.observe(200 * time.Millisecond)
	e.observe(100 * time.Millisecond)
	// RTTVAR = 3/4·100ms + 1/4·|200−100|ms = 100ms
	// SRTT   = 7/8·200ms + 1/8·100ms = 187.5ms
	if want := 100 * time.Millisecond; e.rttvar != want {
		t.Fatalf("rttvar = %v, want %v", e.rttvar, want)
	}
	if want := 1875 * time.Millisecond / 10; e.srtt != want {
		t.Fatalf("srtt = %v, want %v", e.srtt, want)
	}
}

func TestRTTEstimatorClamps(t *testing.T) {
	floor, cap := 100*time.Millisecond, 2*time.Second

	// No samples (or a nil estimator): the conservative cap.
	var none *rttEstimator
	if got := none.rto(floor, cap); got != cap {
		t.Fatalf("nil estimator rto = %v, want cap %v", got, cap)
	}
	if got := (&rttEstimator{}).rto(floor, cap); got != cap {
		t.Fatalf("zero estimator rto = %v, want cap %v", got, cap)
	}

	// A fast path clamps up to the floor.
	var fast rttEstimator
	fast.observe(time.Millisecond)
	if got := fast.rto(floor, cap); got != floor {
		t.Fatalf("fast-path rto = %v, want floor %v", got, floor)
	}

	// A slow path clamps down to the cap.
	var slow rttEstimator
	slow.observe(10 * time.Second)
	if got := slow.rto(floor, cap); got != cap {
		t.Fatalf("slow-path rto = %v, want cap %v", got, cap)
	}

	// Non-positive samples cannot wedge the estimator at zero.
	var weird rttEstimator
	weird.observe(-5 * time.Millisecond)
	if got := weird.rto(floor, cap); got != floor {
		t.Fatalf("negative-sample rto = %v, want floor %v", got, floor)
	}
}
