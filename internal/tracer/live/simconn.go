package live

import (
	"errors"
	"sync"
	"time"
)

// SimConn is the in-process PacketConn the hermetic tests and the replay
// corpus generator drive the live transport with: every sent probe is
// answered by the responder (typically a second, identical netsim.Network
// replaying exactly the responses the simulator transport would have
// produced), and the schedule injects the pathologies a real network adds
// on top — reordering, duplication, loss, and late arrival. ReadBatch
// returns ErrTimeout the moment nothing is deliverable, which
// fast-forwards the transport's deadline wheel without any real sleeping.
// All methods are safe for concurrent use, so the shared mux's writer
// workers and reader loop can hit one SimConn at once under -race.
//
// It lives in the non-test build so `go generate`-run tools can capture
// hermetic campaigns through the real mux (see internal/tracer/replay/gen);
// production binaries never construct one.
type SimConn struct {
	mu sync.Mutex

	// Respond produces the response for one sent probe; ok=false means the
	// network stays silent (a star at the source of truth).
	Respond func(probe []byte) ([]byte, bool)
	Sched   SimSchedule

	seq    int // send ordinal, counted across the conn's lifetime
	queue  [][]byte
	held   []heldResp
	closed bool

	// sends records every probe put on the "wire", in order, for
	// attempt-count assertions.
	sends [][]byte

	// WriteErr, when set, can fail a WriteBatch: it receives the call
	// ordinal (counted per WriteBatch invocation) and the datagram count,
	// and returns how many datagrams actually made it out plus the error
	// for the rest. Returning (len, nil) leaves the call untouched.
	WriteErr   func(call, n int) (int, error)
	writeCalls int

	// ReadErr, when set, can fail a ReadBatch with a fatal socket error:
	// it receives the call ordinal (counted per ReadBatch invocation) and
	// returns nil to leave the call untouched. The mux treats any
	// non-ErrTimeout read failure as a dead socket and reopens.
	ReadErr   func(call int) error
	readCalls int

	// KDrops, when nonzero, is reported by KernelDrops — the fake's
	// SO_RXQ_OVFL seam for receive-pressure tests.
	KDrops uint64
}

// SimSchedule scripts the fault injection, keyed by send ordinal (the
// running index of WriteBatch datagrams, retries included) and the probe
// bytes themselves.
type SimSchedule struct {
	// Drop discards the response to this send (the probe still reaches the
	// responder — the exchange happened, only the answer is lost).
	Drop func(ord int, probe []byte) bool
	// Dup delivers the response twice.
	Dup func(ord int) bool
	// Delay withholds the response for n ReadBatch calls; it models late
	// arrival within the probe's deadline (loss past the deadline is what
	// Drop is for), so held responses are still delivered before ReadBatch
	// ever reports a timeout.
	Delay func(ord int) int
	// Reorder delivers newest-first instead of oldest-first.
	Reorder bool
}

type heldResp struct {
	after int
	pkt   []byte
}

func (c *SimConn) WriteBatch(dgs []Datagram) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("fake: closed")
	}
	limit, werr := len(dgs), error(nil)
	if c.WriteErr != nil {
		call := c.writeCalls
		c.writeCalls++
		if s, err := c.WriteErr(call, len(dgs)); err != nil {
			limit, werr = s, err
		}
	}
	for _, dg := range dgs[:limit] {
		ord := c.seq
		c.seq++
		probe := append([]byte(nil), dg.Buf...)
		c.sends = append(c.sends, probe)
		resp, ok := c.Respond(probe)
		if !ok {
			continue
		}
		if c.Sched.Drop != nil && c.Sched.Drop(ord, probe) {
			continue
		}
		n := 1
		if c.Sched.Dup != nil && c.Sched.Dup(ord) {
			n = 2
		}
		d := 0
		if c.Sched.Delay != nil {
			d = c.Sched.Delay(ord)
		}
		for ; n > 0; n-- {
			if d > 0 {
				c.held = append(c.held, heldResp{after: d, pkt: resp})
			} else {
				c.queue = append(c.queue, resp)
			}
		}
	}
	return limit, werr
}

func (c *SimConn) ReadBatch(dgs []Datagram) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("fake: closed")
	}
	if c.ReadErr != nil {
		call := c.readCalls
		c.readCalls++
		if err := c.ReadErr(call); err != nil {
			return 0, err
		}
	}
	// Advance the virtual clock: release held responses as their delay
	// elapses. A timeout is only reported once nothing is held either —
	// delayed responses are late, not lost.
	for {
		kept := c.held[:0]
		for _, h := range c.held {
			h.after--
			if h.after <= 0 {
				c.queue = append(c.queue, h.pkt)
			} else {
				kept = append(kept, h)
			}
		}
		c.held = kept
		if len(c.queue) > 0 {
			break
		}
		if len(c.held) == 0 {
			return 0, ErrTimeout
		}
	}
	filled := 0
	for filled < len(dgs) && len(c.queue) > 0 {
		var pkt []byte
		if c.Sched.Reorder {
			pkt = c.queue[len(c.queue)-1]
			c.queue = c.queue[:len(c.queue)-1]
		} else {
			pkt = c.queue[0]
			c.queue = c.queue[1:]
		}
		n := copy(dgs[filled].Buf, pkt)
		dgs[filled].N = n
		filled++
	}
	return filled, nil
}

func (c *SimConn) SetReadDeadline(time.Time) error { return nil }

func (c *SimConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// KernelDrops implements DropCounter for receive-pressure tests.
func (c *SimConn) KernelDrops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.KDrops
}

// SetKernelDrops bumps the fake's cumulative kernel-drop counter.
func (c *SimConn) SetKernelDrops(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.KDrops = v
}

// SendCount returns how many probes have hit the wire so far.
func (c *SimConn) SendCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sends)
}
