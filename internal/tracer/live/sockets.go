package live

import (
	"errors"
	"time"
)

// Datagram is one packet in a batched socket operation. On send, Buf holds
// the complete serialized IPv4 probe (header included — the raw socket is
// opened with IP_HDRINCL so every header field the probe builders craft goes
// on the wire verbatim) and Dst the IPv4 address it is addressed to. On
// receive, Buf is the caller-owned buffer the socket fills and N the number
// of valid bytes.
type Datagram struct {
	Buf []byte
	N   int
	Dst [4]byte
}

// ErrTimeout is returned by PacketConn.ReadBatch when the read deadline
// passes with no datagram available. The transport's deadline wheel treats
// it as the expiry signal for the probes still in flight.
var ErrTimeout = errors.New("live: receive timeout")

// PacketConn is the syscall seam under the live transport: everything the
// batching, demultiplexing, timeout and retry logic needs from the kernel,
// and nothing else. The real implementation (dialRaw, Linux only) backs it
// with raw sockets and the sendmmsg/recvmmsg batch syscalls; tests back it
// with an in-process fake that can reorder, drop, duplicate and delay
// responses, which is what lets the entire live path run hermetically.
type PacketConn interface {
	// WriteBatch sends every datagram, in order, in as few syscalls as the
	// platform allows (one sendmmsg per call on Linux). It returns the
	// number of datagrams sent; n < len(dgs) only alongside a non-nil
	// error.
	WriteBatch(dgs []Datagram) (int, error)
	// ReadBatch blocks until at least one inbound datagram is available or
	// the deadline set by SetReadDeadline passes, then fills as many
	// entries of dgs as are immediately ready (one recvmmsg sweep) and
	// returns how many. A deadline expiry returns 0, ErrTimeout. A conn
	// implementing Waker may also return 0, nil — a spurious wake-up;
	// callers must re-arm and read again rather than treat it as expiry.
	ReadBatch(dgs []Datagram) (int, error)
	// SetReadDeadline bounds subsequent ReadBatch calls. The zero time
	// means no deadline.
	SetReadDeadline(t time.Time) error
	// Close releases the underlying sockets.
	Close() error
}

// Waker is the optional wake-up seam on a PacketConn: Wake makes a
// concurrently blocked ReadBatch return early with (0, nil) instead of
// waiting out its full deadline. The shared mux uses it when a worker
// registers probes whose deadline is earlier than the one the receive
// loop is currently blocked on, so adaptive (shorter-than-cap) timeouts
// are honored promptly. Wake must be safe to call concurrently and must
// never block. Conns without the seam merely detect such deadlines late —
// correctness is unaffected, only timeout latency.
type Waker interface {
	Wake()
}

// DropCounter is the optional receive-pressure seam on a PacketConn:
// KernelDrops reports the cumulative number of inbound datagrams the
// kernel discarded because the socket receive queues were full
// (SO_RXQ_OVFL on Linux), counted over the conn's lifetime. The mux polls
// it after every read turn; any increase is a pressure event. Conns
// without the seam (or platforms without the counter) simply contribute
// no kernel-drop signal — read-loop lag detection still applies.
type DropCounter interface {
	KernelDrops() uint64
}
