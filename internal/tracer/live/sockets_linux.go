//go:build linux

package live

import (
	"fmt"
	"net/netip"
	"sync"
	"syscall"
	"time"
)

// soRXQOvfl is SO_RXQ_OVFL, absent from the frozen syscall tables: with it
// set, every received datagram carries a control message holding the
// cumulative count of datagrams the kernel dropped because this socket's
// receive queue was full — the receive-pressure signal the shared mux
// feeds its graceful-degradation policy.
const soRXQOvfl = 40

// rawConn is the real PacketConn: an IP_HDRINCL raw socket for injection
// and two shared raw receive sockets — IPPROTO_ICMP for errors and echo
// replies, IPPROTO_TCP for RST/SYN-ACK terminals. Batches go through
// sendmmsg/recvmmsg where the architecture support is compiled in
// (mmsg_linux_*.go) and degrade to per-packet syscalls otherwise. A
// self-pipe implements the Waker seam, and SO_RXQ_OVFL control messages
// (mmsg path only) implement DropCounter.
type rawConn struct {
	sendFD   int
	icmpFD   int
	tcpFD    int
	wakeRd   int
	wakeWr   int
	deadline time.Time
	// rxICMP and rxTCP hold each receive socket's last-seen cumulative
	// overflow count; only the read loop's goroutine touches them.
	rxICMP, rxTCP uint64
	// wakeMu guards the wake pipe against Wake racing Close: once closed,
	// the pipe fds may be reused by the kernel, and a late write would
	// land in an unrelated descriptor.
	wakeMu     sync.Mutex
	wakeClosed bool
}

// dialRaw opens the raw sockets. Requires root or CAP_NET_RAW.
func dialRaw() (PacketConn, error) {
	sendFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("live: raw send socket (need root or CAP_NET_RAW): %w", err)
	}
	if err := syscall.SetsockoptInt(sendFD, syscall.IPPROTO_IP, syscall.IP_HDRINCL, 1); err != nil {
		syscall.Close(sendFD)
		return nil, fmt.Errorf("live: IP_HDRINCL: %w", err)
	}
	icmpFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(sendFD)
		return nil, fmt.Errorf("live: raw ICMP receive socket: %w", err)
	}
	tcpFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_TCP)
	if err != nil {
		syscall.Close(sendFD)
		syscall.Close(icmpFD)
		return nil, fmt.Errorf("live: raw TCP receive socket: %w", err)
	}
	for _, fd := range []int{icmpFD, tcpFD} {
		if err := syscall.SetNonblock(fd, true); err != nil {
			syscall.Close(sendFD)
			syscall.Close(icmpFD)
			syscall.Close(tcpFD)
			return nil, fmt.Errorf("live: set nonblocking: %w", err)
		}
		// Best effort: kernels without SO_RXQ_OVFL just deliver no drop
		// counts, and KernelDrops stays zero.
		_ = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, soRXQOvfl, 1)
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(sendFD)
		syscall.Close(icmpFD)
		syscall.Close(tcpFD)
		return nil, fmt.Errorf("live: wake pipe: %w", err)
	}
	return &rawConn{sendFD: sendFD, icmpFD: icmpFD, tcpFD: tcpFD,
		wakeRd: pipe[0], wakeWr: pipe[1]}, nil
}

// Available reports whether this process can open the raw sockets the live
// transport needs (nil means yes). It opens and immediately closes them.
func Available() error {
	c, err := dialRaw()
	if err != nil {
		return err
	}
	return c.Close()
}

// Close implements PacketConn.
func (c *rawConn) Close() error {
	c.wakeMu.Lock()
	if !c.wakeClosed {
		c.wakeClosed = true
		syscall.Close(c.wakeRd)
		syscall.Close(c.wakeWr)
	}
	c.wakeMu.Unlock()
	e1 := syscall.Close(c.sendFD)
	e2 := syscall.Close(c.icmpFD)
	e3 := syscall.Close(c.tcpFD)
	if e1 != nil {
		return e1
	}
	if e2 != nil {
		return e2
	}
	return e3
}

// Wake implements Waker: one byte down the self-pipe pops a blocked
// ReadBatch out of its poll with a spurious (0, nil). Nonblocking, so a
// pipe already full of unconsumed wakes (the reader is about to wake
// anyway) is a no-op.
func (c *rawConn) Wake() {
	c.wakeMu.Lock()
	if !c.wakeClosed {
		var b [1]byte
		_, _ = syscall.Write(c.wakeWr, b[:])
	}
	c.wakeMu.Unlock()
}

// KernelDrops implements DropCounter: the summed SO_RXQ_OVFL counters of
// both receive sockets, as of their latest recvmmsg sweeps. Called from
// the same goroutine that reads, like the deadline.
func (c *rawConn) KernelDrops() uint64 { return c.rxICMP + c.rxTCP }

// SetReadDeadline implements PacketConn.
func (c *rawConn) SetReadDeadline(t time.Time) error {
	c.deadline = t
	return nil
}

// WriteBatch implements PacketConn: sendmmsg where supported (resuming
// after partial acceptance, so n < len(dgs) is only ever returned alongside
// an error, as the seam contract requires), a Sendto loop otherwise.
func (c *rawConn) WriteBatch(dgs []Datagram) (int, error) {
	sent := 0
	for sent < len(dgs) {
		if haveMmsg {
			n, err := sendmmsg(c.sendFD, dgs[sent:])
			if n > 0 {
				// Partial acceptance (e.g. transient ENOBUFS mid-batch):
				// resume with the unsent tail rather than reporting the
				// probes as sent-or-failed wholesale.
				sent += n
				continue
			}
			if err == syscall.EINTR {
				continue
			}
			if err != nil && err != syscall.ENOSYS {
				return sent, fmt.Errorf("live: sendmmsg: %w", err)
			}
			// ENOSYS (kernel without the syscall): per-packet below.
		}
		dg := &dgs[sent]
		sa := &syscall.SockaddrInet4{Addr: dg.Dst}
		if err := syscall.Sendto(c.sendFD, dg.Buf, 0, sa); err != nil {
			if err == syscall.EINTR {
				continue
			}
			return sent, fmt.Errorf("live: sendto %v: %w", netip.AddrFrom4(dg.Dst), err)
		}
		sent++
	}
	return sent, nil
}

// ReadBatch implements PacketConn: wait on both receive sockets until the
// deadline (ppoll on architectures with the batch syscalls compiled in,
// bounds-checked select otherwise), then drain whatever is ready with one
// recvmmsg sweep per socket.
func (c *rawConn) ReadBatch(dgs []Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	for {
		var tsp *syscall.Timespec
		if !c.deadline.IsZero() {
			remain := time.Until(c.deadline)
			if remain <= 0 {
				return 0, ErrTimeout
			}
			ts := syscall.NsecToTimespec(remain.Nanoseconds())
			tsp = &ts
		}
		icmpReady, tcpReady, woken, err := waitReadable(c.icmpFD, c.tcpFD, c.wakeRd, tsp)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return 0, fmt.Errorf("live: poll: %w", err)
		}
		if woken {
			c.drainWake()
		}
		if !icmpReady && !tcpReady {
			if woken {
				// Spurious wake-up (Waker contract): the caller re-arms
				// with a fresh deadline instead of treating this as expiry.
				return 0, nil
			}
			return 0, ErrTimeout
		}
		filled := 0
		for _, r := range []struct {
			fd    int
			ready bool
		}{{c.icmpFD, icmpReady}, {c.tcpFD, tcpReady}} {
			if filled == len(dgs) || !r.ready {
				continue
			}
			m, err := c.drain(r.fd, dgs[filled:])
			if err != nil {
				return filled, err
			}
			filled += m
		}
		if filled > 0 {
			return filled, nil
		}
		// Readiness without data (consumed elsewhere, checksum drop):
		// wait again within the same deadline.
	}
}

// drainWake empties the self-pipe so coalesced Wake calls cost one byte
// each, not one spurious loop turn each.
func (c *rawConn) drainWake() {
	var buf [64]byte
	for {
		n, err := syscall.Read(c.wakeRd, buf[:])
		if n < len(buf) || err != nil {
			return
		}
	}
}

// drain reads every immediately-available datagram from fd: one recvmmsg
// where supported, a nonblocking Recvfrom loop otherwise. The recvmmsg
// path also harvests each sweep's SO_RXQ_OVFL overflow counter into the
// per-socket drop tallies.
func (c *rawConn) drain(fd int, dgs []Datagram) (int, error) {
	if haveMmsg {
		n, ovfl, err := recvmmsg(fd, dgs)
		if ovfl > 0 {
			switch fd {
			case c.icmpFD:
				if v := uint64(ovfl); v > c.rxICMP {
					c.rxICMP = v
				}
			case c.tcpFD:
				if v := uint64(ovfl); v > c.rxTCP {
					c.rxTCP = v
				}
			}
		}
		if err == nil || n > 0 {
			return n, nil
		}
		if err == syscall.EAGAIN {
			return 0, nil
		}
	}
	filled := 0
	for filled < len(dgs) {
		n, _, err := syscall.Recvfrom(fd, dgs[filled].Buf, syscall.MSG_DONTWAIT)
		if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK {
			break
		}
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return filled, fmt.Errorf("live: recvfrom: %w", err)
		}
		dgs[filled].N = n
		filled++
	}
	return filled, nil
}

// LocalIPv4 guesses the host's primary IPv4 address by opening a UDP socket
// toward a public address (no packets are sent).
func LocalIPv4() (netip.Addr, error) {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM, 0)
	if err != nil {
		return netip.Addr{}, err
	}
	defer syscall.Close(fd)
	if err := syscall.Connect(fd, &syscall.SockaddrInet4{
		Addr: [4]byte{192, 0, 2, 1}, Port: 53,
	}); err != nil {
		return netip.Addr{}, err
	}
	sa, err := syscall.Getsockname(fd)
	if err != nil {
		return netip.Addr{}, err
	}
	sa4, ok := sa.(*syscall.SockaddrInet4)
	if !ok {
		return netip.Addr{}, fmt.Errorf("live: unexpected sockaddr %T", sa)
	}
	return netip.AddrFrom4(sa4.Addr), nil
}
