//go:build linux

package live

import (
	"fmt"
	"net/netip"
	"syscall"
	"time"
)

// rawConn is the real PacketConn: an IP_HDRINCL raw socket for injection
// and two shared raw receive sockets — IPPROTO_ICMP for errors and echo
// replies, IPPROTO_TCP for RST/SYN-ACK terminals. Batches go through
// sendmmsg/recvmmsg where the architecture support is compiled in
// (mmsg_linux_*.go) and degrade to per-packet syscalls otherwise.
type rawConn struct {
	sendFD   int
	icmpFD   int
	tcpFD    int
	deadline time.Time
}

// dialRaw opens the raw sockets. Requires root or CAP_NET_RAW.
func dialRaw() (PacketConn, error) {
	sendFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("live: raw send socket (need root or CAP_NET_RAW): %w", err)
	}
	if err := syscall.SetsockoptInt(sendFD, syscall.IPPROTO_IP, syscall.IP_HDRINCL, 1); err != nil {
		syscall.Close(sendFD)
		return nil, fmt.Errorf("live: IP_HDRINCL: %w", err)
	}
	icmpFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(sendFD)
		return nil, fmt.Errorf("live: raw ICMP receive socket: %w", err)
	}
	tcpFD, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_TCP)
	if err != nil {
		syscall.Close(sendFD)
		syscall.Close(icmpFD)
		return nil, fmt.Errorf("live: raw TCP receive socket: %w", err)
	}
	for _, fd := range []int{icmpFD, tcpFD} {
		if err := syscall.SetNonblock(fd, true); err != nil {
			syscall.Close(sendFD)
			syscall.Close(icmpFD)
			syscall.Close(tcpFD)
			return nil, fmt.Errorf("live: set nonblocking: %w", err)
		}
	}
	return &rawConn{sendFD: sendFD, icmpFD: icmpFD, tcpFD: tcpFD}, nil
}

// Available reports whether this process can open the raw sockets the live
// transport needs (nil means yes). It opens and immediately closes them.
func Available() error {
	c, err := dialRaw()
	if err != nil {
		return err
	}
	return c.Close()
}

// Close implements PacketConn.
func (c *rawConn) Close() error {
	e1 := syscall.Close(c.sendFD)
	e2 := syscall.Close(c.icmpFD)
	e3 := syscall.Close(c.tcpFD)
	if e1 != nil {
		return e1
	}
	if e2 != nil {
		return e2
	}
	return e3
}

// SetReadDeadline implements PacketConn.
func (c *rawConn) SetReadDeadline(t time.Time) error {
	c.deadline = t
	return nil
}

// WriteBatch implements PacketConn: sendmmsg where supported (resuming
// after partial acceptance, so n < len(dgs) is only ever returned alongside
// an error, as the seam contract requires), a Sendto loop otherwise.
func (c *rawConn) WriteBatch(dgs []Datagram) (int, error) {
	sent := 0
	for sent < len(dgs) {
		if haveMmsg {
			n, err := sendmmsg(c.sendFD, dgs[sent:])
			if n > 0 {
				// Partial acceptance (e.g. transient ENOBUFS mid-batch):
				// resume with the unsent tail rather than reporting the
				// probes as sent-or-failed wholesale.
				sent += n
				continue
			}
			if err == syscall.EINTR {
				continue
			}
			if err != nil && err != syscall.ENOSYS {
				return sent, fmt.Errorf("live: sendmmsg: %w", err)
			}
			// ENOSYS (kernel without the syscall): per-packet below.
		}
		dg := &dgs[sent]
		sa := &syscall.SockaddrInet4{Addr: dg.Dst}
		if err := syscall.Sendto(c.sendFD, dg.Buf, 0, sa); err != nil {
			if err == syscall.EINTR {
				continue
			}
			return sent, fmt.Errorf("live: sendto %v: %w", netip.AddrFrom4(dg.Dst), err)
		}
		sent++
	}
	return sent, nil
}

// ReadBatch implements PacketConn: wait on both receive sockets until the
// deadline (ppoll on architectures with the batch syscalls compiled in,
// bounds-checked select otherwise), then drain whatever is ready with one
// recvmmsg sweep per socket.
func (c *rawConn) ReadBatch(dgs []Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	for {
		var tsp *syscall.Timespec
		if !c.deadline.IsZero() {
			remain := time.Until(c.deadline)
			if remain <= 0 {
				return 0, ErrTimeout
			}
			ts := syscall.NsecToTimespec(remain.Nanoseconds())
			tsp = &ts
		}
		icmpReady, tcpReady, err := waitReadable(c.icmpFD, c.tcpFD, tsp)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return 0, fmt.Errorf("live: poll: %w", err)
		}
		if !icmpReady && !tcpReady {
			return 0, ErrTimeout
		}
		filled := 0
		for _, r := range []struct {
			fd    int
			ready bool
		}{{c.icmpFD, icmpReady}, {c.tcpFD, tcpReady}} {
			if filled == len(dgs) || !r.ready {
				continue
			}
			m, err := c.drain(r.fd, dgs[filled:])
			if err != nil {
				return filled, err
			}
			filled += m
		}
		if filled > 0 {
			return filled, nil
		}
		// Readiness without data (consumed elsewhere, checksum drop):
		// wait again within the same deadline.
	}
}

// drain reads every immediately-available datagram from fd: one recvmmsg
// where supported, a nonblocking Recvfrom loop otherwise.
func (c *rawConn) drain(fd int, dgs []Datagram) (int, error) {
	if haveMmsg {
		n, err := recvmmsg(fd, dgs)
		if err == nil || n > 0 {
			return n, nil
		}
		if err == syscall.EAGAIN {
			return 0, nil
		}
	}
	filled := 0
	for filled < len(dgs) {
		n, _, err := syscall.Recvfrom(fd, dgs[filled].Buf, syscall.MSG_DONTWAIT)
		if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK {
			break
		}
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return filled, fmt.Errorf("live: recvfrom: %w", err)
		}
		dgs[filled].N = n
		filled++
	}
	return filled, nil
}

// LocalIPv4 guesses the host's primary IPv4 address by opening a UDP socket
// toward a public address (no packets are sent).
func LocalIPv4() (netip.Addr, error) {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM, 0)
	if err != nil {
		return netip.Addr{}, err
	}
	defer syscall.Close(fd)
	if err := syscall.Connect(fd, &syscall.SockaddrInet4{
		Addr: [4]byte{192, 0, 2, 1}, Port: 53,
	}); err != nil {
		return netip.Addr{}, err
	}
	sa, err := syscall.Getsockname(fd)
	if err != nil {
		return netip.Addr{}, err
	}
	sa4, ok := sa.(*syscall.SockaddrInet4)
	if !ok {
		return netip.Addr{}, fmt.Errorf("live: unexpected sockaddr %T", sa)
	}
	return netip.AddrFrom4(sa4.Addr), nil
}
