//go:build !linux

package live

import (
	"fmt"
	"net/netip"
	"runtime"
)

// dialRaw fails off Linux: the raw-socket layer is Linux-only. The rest of
// the package — everything above the PacketConn seam — compiles and tests
// everywhere through Config.Conn.
func dialRaw() (PacketConn, error) {
	return nil, fmt.Errorf("live: raw-socket probing unsupported on %s", runtime.GOOS)
}

// Available reports whether this process can open raw sockets; never on
// this platform.
func Available() error {
	_, err := dialRaw()
	return err
}

// LocalIPv4 is unavailable off Linux.
func LocalIPv4() (netip.Addr, error) {
	return netip.Addr{}, fmt.Errorf("live: unsupported on %s", runtime.GOOS)
}
