//go:build linux && amd64

package live

// Syscall numbers missing from the frozen standard-library table.
const (
	sysSendmmsg uintptr = 307
	sysRecvmmsg uintptr = 299
	sysPpoll    uintptr = 271
)
