//go:build linux && arm64

package live

// Syscall numbers missing from the frozen standard-library table.
const (
	sysSendmmsg uintptr = 269
	sysRecvmmsg uintptr = 243
	sysPpoll    uintptr = 73
)
