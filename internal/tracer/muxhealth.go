package tracer

// MuxHealth is a point-in-time snapshot of a shared live demultiplexer's
// robustness counters (internal/tracer/live.Mux.Health). It lives in this
// package — not in live — so the measurement layer (internal/measure,
// internal/daemon) can carry it in Stats.Robust without importing the
// raw-socket code: binaries stamp a snapshot onto the statistics they
// serve, exactly like the daemon's supervision counters, and Merge never
// sums it.
type MuxHealth struct {
	// InFlight is the number of unresolved probes currently registered
	// across every worker's batches; InFlightPeak is the high-water mark.
	InFlight     int
	InFlightPeak int
	// KernelDrops is the receive-queue overflow count reported by the
	// socket layer (SO_RXQ_OVFL), cumulative over the mux's lifetime and
	// every reopened socket pair. Zero when the platform cannot count.
	KernelDrops uint64
	// Reopens counts socket-pair reopens after fatal receive errors.
	Reopens int
	// PressureEvents counts detected receive-pressure incidents (kernel
	// drops observed, or sustained full-buffer read sweeps).
	PressureEvents int
	// DegradeShift is the current graceful-degradation level: adaptive
	// timeouts are widened by this power of two (still capped), and the
	// pacer is signalled to back off proportionally. Zero is healthy.
	DegradeShift int
	// Destinations is how many per-destination RTT estimators are live.
	Destinations int
	// RTOMinNs, RTOMeanNs, and RTOMaxNs summarize the adaptive timeout
	// distribution across those estimators, in nanoseconds, after the
	// floor/cap clamps and the degradation widening. All zero when no
	// destination has an estimator yet.
	RTOMinNs, RTOMeanNs, RTOMaxNs int64
}
