package tracer

import (
	"net/netip"
	"sync"
	"time"
)

// This file is the global probe pacer: a token-bucket shared by every
// worker of a measurement process, wrapped around any Transport, so the
// aggregate probe rate is a first-class knob instead of an accident of
// worker count. The always-on daemon (internal/daemon) installs one over
// both the netsim and the live transports; clock and sleep seams keep the
// bucket fully testable without wall time.

// Pacer is a token-bucket rate limiter over probes. One Pacer is shared by
// all goroutines probing through the transports it wraps; Take blocks until
// the requested tokens are available. Rate <= 0 disables pacing entirely.
type Pacer struct {
	mu     sync.Mutex
	rate   float64 // tokens (probes) per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
	waits  int64 // Take calls that had to wait
	waited time.Duration
}

// NewPacer builds a pacer admitting rate probes per second with the given
// burst capacity (the bucket starts full). burst < 1 is raised to 1 — a
// bucket that can never hold a whole token would block forever. A nil now
// or sleep selects the real clock.
func NewPacer(rate float64, burst float64, now func() time.Time, sleep func(time.Duration)) *Pacer {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	p := &Pacer{rate: rate, burst: burst, now: now, sleep: sleep}
	p.tokens = burst
	p.last = now()
	return p
}

// Take blocks until n tokens are available and consumes them. Calls larger
// than the burst are still served (the bucket is allowed to go negative by
// the overshoot), so a whole TTL-ladder batch paces as one call instead of
// deadlocking against the bucket size.
func (p *Pacer) Take(n int) {
	if p == nil || p.rate <= 0 || n <= 0 {
		return
	}
	p.mu.Lock()
	p.refill()
	p.tokens -= float64(n)
	if p.tokens >= 0 {
		p.mu.Unlock()
		return
	}
	// Wait out the deficit. The deficit is debited before sleeping, so
	// concurrent Takes queue behind each other's debt instead of all
	// sleeping for the same window and bursting together.
	wait := time.Duration(-p.tokens / p.rate * float64(time.Second))
	p.waits++
	p.waited += wait
	p.mu.Unlock()
	p.sleep(wait)
}

// refill credits tokens for the time since the last refill; caller holds mu.
func (p *Pacer) refill() {
	now := p.now()
	if dt := now.Sub(p.last); dt > 0 {
		p.tokens += p.rate * dt.Seconds()
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
	}
	p.last = now
}

// SetRate retunes the admission rate in place. The bucket is settled at
// the old rate first, so already-accrued tokens are kept and the new rate
// only governs refills from now on. This is the graceful-degradation knob
// the live mux's pressure signal drives: halve the rate when the kernel
// reports receive drops, restore it when the pressure clears. A rate <= 0
// disables pacing, exactly as at construction.
func (p *Pacer) SetRate(rate float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rate > 0 {
		p.refill()
	} else {
		p.last = p.now()
	}
	p.rate = rate
}

// Rate returns the current admission rate in probes per second.
func (p *Pacer) Rate() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rate
}

// Waits reports how many Take calls blocked and for how long in total —
// the backpressure observability the daemon's stats surface serves.
func (p *Pacer) Waits() (int64, time.Duration) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waits, p.waited
}

// PacedTransport wraps a Transport with a shared Pacer: every probe takes
// one token before reaching the inner transport. It forwards the batching
// and fallible capabilities the inner transport offers, so pacing composes
// with the batched ladder and the error-policy layer unchanged.
type PacedTransport struct {
	inner Transport
	pacer *Pacer
}

// NewPacedTransport wraps tp so every probe first takes a token from p.
// Several transports may share one Pacer — that is the point: the bucket
// then caps the whole process's aggregate probe rate.
func NewPacedTransport(tp Transport, p *Pacer) *PacedTransport {
	return &PacedTransport{inner: tp, pacer: p}
}

// Exchange implements Transport.
func (t *PacedTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	t.pacer.Take(1)
	return t.inner.Exchange(probe)
}

// ExchangeErr implements FallibleTransport when the inner transport does;
// otherwise it degrades to the no-error contract like FaultTransport.
func (t *PacedTransport) ExchangeErr(probe []byte) ([]byte, time.Duration, bool, error) {
	t.pacer.Take(1)
	if ft, ok := t.inner.(FallibleTransport); ok {
		return ft.ExchangeErr(probe)
	}
	resp, rtt, ok := t.inner.Exchange(probe)
	return resp, rtt, ok, nil
}

// ExchangeBatch implements BatchTransport: the whole window takes its
// tokens in one call, pacing batches at the same aggregate rate as
// sequential probes. With a non-batching inner transport each probe falls
// back to one Exchange (tokens already taken).
func (t *PacedTransport) ExchangeBatch(probes [][]byte, out []ProbeResult) {
	if len(out) < len(probes) {
		panic("tracer: ExchangeBatch result slice shorter than probe slice")
	}
	t.pacer.Take(len(probes))
	if bt, ok := t.inner.(BatchTransport); ok {
		bt.ExchangeBatch(probes, out)
		return
	}
	for i, p := range probes {
		resp, rtt, ok := t.inner.Exchange(p)
		out[i].OK = ok
		out[i].Err = nil
		out[i].RTT = rtt
		if ok {
			out[i].Resp = append(out[i].Resp[:0], resp...)
		} else if out[i].Resp != nil {
			out[i].Resp = out[i].Resp[:0]
		}
	}
}

// Source implements Transport.
func (t *PacedTransport) Source() netip.Addr { return t.inner.Source() }
