package tracer

import (
	"net/netip"
	"testing"
	"time"
)

// fakeClock drives a Pacer without wall time: Take's sleeps advance the
// clock by exactly the requested wait, so token arithmetic is pinned.
type fakeClock struct {
	now    time.Time
	slept  []time.Duration
	asleep time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Sleep(d time.Duration) {
	c.slept = append(c.slept, d)
	c.asleep += d
	c.now = c.now.Add(d)
}

func TestPacerBurstThenBlocks(t *testing.T) {
	c := newFakeClock()
	p := NewPacer(10, 5, c.Now, c.Sleep) // 10 tokens/s, bucket of 5

	for i := 0; i < 5; i++ {
		p.Take(1)
	}
	if len(c.slept) != 0 {
		t.Fatalf("burst capacity should not wait: slept %v", c.slept)
	}
	p.Take(1) // deficit of 1 token at 10/s → 100ms
	if len(c.slept) != 1 || c.slept[0] != 100*time.Millisecond {
		t.Fatalf("slept %v, want one 100ms wait", c.slept)
	}
	waits, waited := p.Waits()
	if waits != 1 || waited != 100*time.Millisecond {
		t.Fatalf("Waits() = %d, %v", waits, waited)
	}
}

func TestPacerRefill(t *testing.T) {
	c := newFakeClock()
	p := NewPacer(10, 5, c.Now, c.Sleep)
	for i := 0; i < 5; i++ {
		p.Take(1)
	}
	c.now = c.now.Add(300 * time.Millisecond) // refills 3 tokens
	p.Take(3)
	if len(c.slept) != 0 {
		t.Fatalf("refilled tokens should not wait: slept %v", c.slept)
	}
	p.Take(1)
	if len(c.slept) != 1 {
		t.Fatalf("empty bucket should wait: slept %v", c.slept)
	}
}

func TestPacerOverBurstBatch(t *testing.T) {
	// A batch bigger than the bucket must pace as one call, never
	// deadlock: the bucket goes negative by the overshoot.
	c := newFakeClock()
	p := NewPacer(100, 4, c.Now, c.Sleep)
	p.Take(24) // deficit 20 at 100/s → 200ms
	if len(c.slept) != 1 || c.slept[0] != 200*time.Millisecond {
		t.Fatalf("slept %v, want one 200ms wait", c.slept)
	}
}

func TestPacerDisabledAndClamped(t *testing.T) {
	c := newFakeClock()
	p := NewPacer(0, 5, c.Now, c.Sleep)
	p.Take(1000)
	if len(c.slept) != 0 {
		t.Fatal("rate 0 must disable pacing")
	}
	var nilPacer *Pacer
	nilPacer.Take(5) // nil-safe no-op
	if w, _ := nilPacer.Waits(); w != 0 {
		t.Fatal("nil pacer Waits")
	}
	// burst < 1 is raised to 1 so a whole token can ever accumulate.
	p2 := NewPacer(10, 0, c.Now, c.Sleep)
	p2.Take(1)
	if len(c.slept) != 0 {
		t.Fatalf("first token should be free after burst clamp: %v", c.slept)
	}
}

// paceProbe builds a minimal 20-byte IPv4 header so netsim-style transports
// could parse a destination; the counting transport ignores it.
func paceProbe() []byte { return make([]byte, 28) }

type countingTransport struct {
	exchanges, batches int
}

func (c *countingTransport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	c.exchanges++
	return nil, 0, false
}

func (c *countingTransport) Source() netip.Addr { return netip.MustParseAddr("10.0.0.1") }

type countingBatchTransport struct {
	countingTransport
}

func (c *countingBatchTransport) ExchangeBatch(probes [][]byte, out []ProbeResult) {
	c.batches++
	for i := range probes {
		out[i] = ProbeResult{}
	}
}

func TestPacedTransportTakesPerProbe(t *testing.T) {
	c := newFakeClock()
	inner := &countingTransport{}
	pt := NewPacedTransport(inner, NewPacer(1000, 2, c.Now, c.Sleep))

	pt.Exchange(paceProbe())
	pt.Exchange(paceProbe())
	pt.Exchange(paceProbe()) // third probe exceeds the burst of 2
	if inner.exchanges != 3 {
		t.Fatalf("inner exchanges %d, want 3", inner.exchanges)
	}
	if len(c.slept) != 1 {
		t.Fatalf("slept %v, want exactly one wait", c.slept)
	}
	// ExchangeErr degrades gracefully over a non-fallible inner transport.
	if _, _, _, err := pt.ExchangeErr(paceProbe()); err != nil {
		t.Fatalf("ExchangeErr: %v", err)
	}
}

func TestPacedTransportBatchSingleTake(t *testing.T) {
	c := newFakeClock()
	inner := &countingBatchTransport{}
	pt := NewPacedTransport(inner, NewPacer(100, 4, c.Now, c.Sleep))

	probes := [][]byte{paceProbe(), paceProbe(), paceProbe(), paceProbe(), paceProbe(), paceProbe()}
	out := make([]ProbeResult, len(probes))
	pt.ExchangeBatch(probes, out)
	if inner.batches != 1 {
		t.Fatalf("inner batches %d, want 1 (pass-through)", inner.batches)
	}
	// 6 tokens against a burst of 4: one wait for the 2-token deficit.
	if len(c.slept) != 1 || c.slept[0] != 20*time.Millisecond {
		t.Fatalf("slept %v, want one 20ms wait", c.slept)
	}
}

func TestPacedTransportBatchFallback(t *testing.T) {
	c := newFakeClock()
	inner := &countingTransport{} // no batch support
	pt := NewPacedTransport(inner, NewPacer(1000, 100, c.Now, c.Sleep))
	probes := [][]byte{paceProbe(), paceProbe()}
	out := make([]ProbeResult, 2)
	pt.ExchangeBatch(probes, out)
	if inner.exchanges != 2 {
		t.Fatalf("fallback exchanges %d, want 2", inner.exchanges)
	}
	if pt.Source() != inner.Source() {
		t.Fatal("Source not forwarded")
	}
}
