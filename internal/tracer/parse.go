package tracer

import (
	"net/netip"

	"repro/internal/packet"
)

// expect describes how to recognise the response to one probe. The fields a
// discipline fills in mirror the header fields it varies — the mechanism the
// paper analyses in Section 2.1.
type expect struct {
	dest netip.Addr
	// proto is the probe's transport protocol.
	proto uint8
	// For UDP probes.
	udpSrcPort, udpDstPort uint16
	udpChecksum            uint16 // Paris: match on checksum
	matchUDPPort           bool   // classic: match on dst port
	matchUDPChecksum       bool
	// For ICMP Echo probes.
	icmpID, icmpSeq uint16
	matchICMPSeq    bool
	// For TCP probes.
	tcpSrcPort, tcpDstPort uint16
	tcpSeq                 uint32
	matchTCPSeq            bool
	matchIPID              bool
	ipID                   uint16 // tcptraceroute: match on the probe's IP ID
}

// parseResponse decodes a serialized response packet into a Hop and applies
// strict probe/response matching against exp. Parsing stays on the stack
// (the Into parser variants) — this runs once per exchange on the campaign
// hot path.
func parseResponse(resp []byte, exp expect) Hop {
	h := Hop{ProbeTTL: -1}
	var outer packet.IPv4
	payload, err := packet.ParseIPv4Into(resp, &outer)
	if err != nil {
		return h
	}
	h.Addr = outer.Src
	h.RespTTL = int(outer.TTL)
	h.IPID = outer.ID

	switch outer.Protocol {
	case packet.ProtoICMP:
		var m packet.ICMP
		if err := packet.ParseICMPInto(payload, &m); err != nil {
			h.Mismatched = true
			return h
		}
		switch m.Type {
		case packet.ICMPTypeTimeExceeded:
			h.Kind = KindTimeExceeded
		case packet.ICMPTypeDestUnreachable:
			switch m.Code {
			case packet.CodePortUnreachable:
				h.Kind = KindPortUnreachable
			case packet.CodeHostUnreachable:
				h.Kind = KindHostUnreachable
			case packet.CodeNetUnreachable:
				h.Kind = KindNetUnreachable
			default:
				h.Kind = KindOtherUnreachable
			}
		case packet.ICMPTypeEchoReply:
			h.Kind = KindEchoReply
			if exp.proto != packet.ProtoICMP || m.ID != exp.icmpID ||
				(exp.matchICMPSeq && m.Seq != exp.icmpSeq) {
				h.Mismatched = true
			}
			return h
		default:
			h.Mismatched = true
			return h
		}
		// Error message: inspect the quoted probe.
		if !m.IsError() {
			h.Mismatched = true
			return h
		}
		var inner packet.IPv4
		quoted, err := packet.ParseIPv4Into(m.Payload, &inner)
		if err != nil {
			h.Mismatched = true
			return h
		}
		h.ProbeTTL = int(inner.TTL)
		h.Mismatched = !matchQuoted(&inner, quoted, exp)
		return h

	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, err := packet.ParseTCPInto(payload, &th); err != nil {
			h.Mismatched = true
			return h
		}
		switch {
		case th.Flags&packet.TCPRst != 0:
			h.Kind = KindTCPReset
		case th.Flags&packet.TCPSyn != 0 && th.Flags&packet.TCPAck != 0:
			h.Kind = KindTCPSynAck
		default:
			h.Mismatched = true
			return h
		}
		if exp.proto != packet.ProtoTCP ||
			th.SrcPort != exp.tcpDstPort || th.DstPort != exp.tcpSrcPort ||
			(exp.matchTCPSeq && th.Ack != exp.tcpSeq+1) {
			h.Mismatched = true
		}
		return h

	default:
		h.Mismatched = true
		return h
	}
}

// matchQuoted validates the quoted probe inside an ICMP error against the
// expectation. This is where each discipline's "unique value in the probe
// header" (Section 2.1) is checked.
func matchQuoted(inner *packet.IPv4, transport []byte, exp expect) bool {
	if inner.Protocol != exp.proto {
		return false
	}
	if exp.dest.IsValid() && inner.Dst != exp.dest {
		return false
	}
	switch exp.proto {
	case packet.ProtoUDP:
		var uh packet.UDP
		if _, err := packet.ParseUDPInto(transport, &uh); err != nil {
			return false
		}
		if uh.SrcPort != exp.udpSrcPort {
			return false
		}
		if exp.matchUDPPort && uh.DstPort != exp.udpDstPort {
			return false
		}
		if exp.matchUDPChecksum && uh.Checksum != exp.udpChecksum {
			return false
		}
		if !exp.matchUDPPort && uh.DstPort != exp.udpDstPort {
			return false
		}
		return true
	case packet.ProtoICMP:
		var m packet.ICMP
		if err := packet.ParseICMPInto(transport, &m); err != nil {
			return false
		}
		if m.Type != packet.ICMPTypeEchoRequest {
			return false
		}
		if m.ID != exp.icmpID {
			return false
		}
		if exp.matchICMPSeq && m.Seq != exp.icmpSeq {
			return false
		}
		return true
	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, err := packet.ParseTCPInto(transport, &th); err != nil {
			return false
		}
		if th.SrcPort != exp.tcpSrcPort || th.DstPort != exp.tcpDstPort {
			return false
		}
		if exp.matchTCPSeq && th.Seq != exp.tcpSeq {
			return false
		}
		if exp.matchIPID && inner.ID != exp.ipID {
			return false
		}
		return true
	default:
		return false
	}
}
