package tracer

import (
	"fmt"
	"net/netip"

	"repro/internal/packet"
)

// Historical defaults from the tools the paper studies.
const (
	// ClassicBaseDstPort is classic traceroute's initial UDP Destination
	// Port (33435), incremented with each probe sent.
	ClassicBaseDstPort = 33435
	// ClassicSrcPortBase: classic traceroute sets the Source Port to the
	// process ID plus 32768.
	ClassicSrcPortBase = 32768
	// TCPTracerouteDstPort is tcptraceroute's default Destination Port,
	// emulating web traffic to traverse firewalls.
	TCPTracerouteDstPort = 80
)

// NewClassicUDP builds Jacobson-style classic traceroute with UDP probes:
// the Destination Port — inside the first four transport octets, hence part
// of the flow identifier — is incremented with every probe, so consecutive
// probes may take different paths through per-flow load balancers.
func NewClassicUDP(tp Transport, opts Options) Tracer {
	opts = opts.withDefaults()
	srcPort := opts.SrcPort
	if srcPort == 0 {
		srcPort = ClassicSrcPortBase + 1234 // emulate PID + 32768
	}
	basePort := opts.DstPort
	if basePort == 0 {
		basePort = ClassicBaseDstPort
	}
	src := tp.Source()
	payload := make([]byte, opts.PayloadLen) // all-zero, read-only, shared by every probe
	var dgramBuf []byte                      // datagram scratch recycled across probes
	return &engine{
		name: "classic-udp",
		tp:   tp,
		opts: opts,
		build: func(dest netip.Addr, ttl, probeIdx int, buf []byte) ([]byte, expect, error) {
			dstPort := basePort + uint16(probeIdx)
			uh := &packet.UDP{SrcPort: srcPort, DstPort: dstPort}
			dgram, err := packet.MarshalUDPInto(dgramBuf, src, dest, uh, payload)
			if err != nil {
				return nil, expect{}, err
			}
			dgramBuf = dgram
			pkt, err := (&packet.IPv4{
				TOS:      opts.TOS,
				TTL:      uint8(ttl),
				Protocol: packet.ProtoUDP,
				ID:       uint16(probeIdx + 1),
				Src:      src,
				Dst:      dest,
			}).MarshalInto(buf, dgram)
			if err != nil {
				return nil, expect{}, err
			}
			return pkt, expect{
				dest:         dest,
				proto:        packet.ProtoUDP,
				udpSrcPort:   srcPort,
				udpDstPort:   dstPort,
				matchUDPPort: true,
			}, nil
		},
	}
}

// NewParisUDP builds Paris traceroute with UDP probes: Source and
// Destination Ports stay constant (they are the flow identifier), and the
// probe identifier is the UDP Checksum, steered to the desired value by
// crafting the payload (Section 2.2).
//
// The (SrcPort, DstPort) pair selects the flow; varying it across traces
// enumerates different load-balanced paths.
func NewParisUDP(tp Transport, opts Options) Tracer {
	opts = opts.withDefaults()
	srcPort := opts.SrcPort
	if srcPort == 0 {
		srcPort = 10007
	}
	dstPort := opts.DstPort
	if dstPort == 0 {
		dstPort = 20011
	}
	src := tp.Source()
	var payloadBuf, dgramBuf []byte // scratch recycled across probes
	return &engine{
		name: "paris-udp",
		tp:   tp,
		opts: opts,
		build: func(dest netip.Addr, ttl, probeIdx int, buf []byte) ([]byte, expect, error) {
			// Probe identifier: checksum = probeIdx+1 (never zero).
			target := uint16(probeIdx + 1)
			if target == 0 {
				target = 1
			}
			uh := &packet.UDP{SrcPort: srcPort, DstPort: dstPort}
			payload, err := packet.CraftUDPPayloadInto(payloadBuf, src, dest, uh, target, opts.PayloadLen)
			if err != nil {
				return nil, expect{}, err
			}
			payloadBuf = payload
			dgram, err := packet.MarshalUDPInto(dgramBuf, src, dest, uh, payload)
			if err != nil {
				return nil, expect{}, err
			}
			dgramBuf = dgram
			if got := dgram[6]; uint16(got)<<8|uint16(dgram[7]) != target {
				return nil, expect{}, fmt.Errorf("tracer: crafted checksum %#04x, want %#04x", uint16(dgram[6])<<8|uint16(dgram[7]), target)
			}
			pkt, err := (&packet.IPv4{
				TOS:      opts.TOS,
				TTL:      uint8(ttl),
				Protocol: packet.ProtoUDP,
				ID:       uint16(probeIdx + 1),
				Src:      src,
				Dst:      dest,
			}).MarshalInto(buf, dgram)
			if err != nil {
				return nil, expect{}, err
			}
			return pkt, expect{
				dest:             dest,
				proto:            packet.ProtoUDP,
				udpSrcPort:       srcPort,
				udpDstPort:       dstPort,
				udpChecksum:      target,
				matchUDPChecksum: true,
			}, nil
		},
	}
}

// NewClassicICMP builds classic traceroute with ICMP Echo probes: the
// Sequence Number varies per probe, which varies the Checksum — and the
// Checksum sits in the first four transport octets, i.e. in the flow
// identifier.
func NewClassicICMP(tp Transport, opts Options) Tracer {
	opts = opts.withDefaults()
	id := opts.ICMPID
	if id == 0 {
		id = 4321 // emulate the process ID
	}
	src := tp.Source()
	return &engine{
		name: "classic-icmp",
		tp:   tp,
		opts: opts,
		build: func(dest netip.Addr, ttl, probeIdx int, buf []byte) ([]byte, expect, error) {
			seq := uint16(probeIdx + 1)
			m := &packet.ICMP{
				Type:    packet.ICMPTypeEchoRequest,
				ID:      id,
				Seq:     seq,
				Payload: make([]byte, opts.PayloadLen),
			}
			body, err := m.Marshal()
			if err != nil {
				return nil, expect{}, err
			}
			pkt, err := (&packet.IPv4{
				TOS:      opts.TOS,
				TTL:      uint8(ttl),
				Protocol: packet.ProtoICMP,
				ID:       uint16(probeIdx + 1),
				Src:      src,
				Dst:      dest,
			}).MarshalInto(buf, body)
			if err != nil {
				return nil, expect{}, err
			}
			return pkt, expect{
				dest:         dest,
				proto:        packet.ProtoICMP,
				icmpID:       id,
				icmpSeq:      seq,
				matchICMPSeq: true,
			}, nil
		},
	}
}

// NewParisICMP builds Paris traceroute with ICMP Echo probes: the Sequence
// Number still varies (for probe matching), but the Identifier is chosen to
// compensate so the Checksum — the flow-identifying octets — stays constant
// at Options.ICMPID (or a default).
func NewParisICMP(tp Transport, opts Options) Tracer {
	opts = opts.withDefaults()
	target := opts.ICMPID
	if target == 0 || target == 0xffff {
		// Zero means "use the default"; all-ones is unreachable (it
		// would need a one's-complement sum of +0, impossible for
		// nonzero data), so it falls back to the default too.
		target = 0xbeef // constant checksum: the flow identifier
	}
	src := tp.Source()
	return &engine{
		name: "paris-icmp",
		tp:   tp,
		opts: opts,
		build: func(dest netip.Addr, ttl, probeIdx int, buf []byte) ([]byte, expect, error) {
			seq := uint16(probeIdx + 1)
			payload := make([]byte, opts.PayloadLen)
			id, err := packet.CompensatingEchoID(seq, target, payload)
			if err != nil {
				return nil, expect{}, err
			}
			m := &packet.ICMP{
				Type:    packet.ICMPTypeEchoRequest,
				ID:      id,
				Seq:     seq,
				Payload: payload,
			}
			body, err := m.Marshal()
			if err != nil {
				return nil, expect{}, err
			}
			pkt, err := (&packet.IPv4{
				TOS:      opts.TOS,
				TTL:      uint8(ttl),
				Protocol: packet.ProtoICMP,
				ID:       uint16(probeIdx + 1),
				Src:      src,
				Dst:      dest,
			}).MarshalInto(buf, body)
			if err != nil {
				return nil, expect{}, err
			}
			return pkt, expect{
				dest:         dest,
				proto:        packet.ProtoICMP,
				icmpID:       id,
				icmpSeq:      seq,
				matchICMPSeq: true,
			}, nil
		},
	}
}

// NewParisTCP builds Paris traceroute with TCP probes: ports are constant
// (the flow identifier lives in the first four octets — the ports), and the
// Sequence Number, which sits in the second four octets, varies per probe.
func NewParisTCP(tp Transport, opts Options) Tracer {
	opts = opts.withDefaults()
	srcPort := opts.SrcPort
	if srcPort == 0 {
		srcPort = 30021
	}
	dstPort := opts.DstPort
	if dstPort == 0 {
		dstPort = TCPTracerouteDstPort
	}
	src := tp.Source()
	return &engine{
		name: "paris-tcp",
		tp:   tp,
		opts: opts,
		build: func(dest netip.Addr, ttl, probeIdx int, buf []byte) ([]byte, expect, error) {
			seq := uint32(probeIdx + 1)
			seg, err := packet.MarshalTCP(src, dest, &packet.TCP{
				SrcPort: srcPort,
				DstPort: dstPort,
				Seq:     seq,
				Flags:   packet.TCPSyn,
				Window:  65535,
			}, nil)
			if err != nil {
				return nil, expect{}, err
			}
			pkt, err := (&packet.IPv4{
				TOS:      opts.TOS,
				TTL:      uint8(ttl),
				Protocol: packet.ProtoTCP,
				ID:       uint16(probeIdx + 1),
				Src:      src,
				Dst:      dest,
			}).MarshalInto(buf, seg)
			if err != nil {
				return nil, expect{}, err
			}
			return pkt, expect{
				dest:        dest,
				proto:       packet.ProtoTCP,
				tcpSrcPort:  srcPort,
				tcpDstPort:  dstPort,
				tcpSeq:      seq,
				matchTCPSeq: true,
			}, nil
		},
	}
}

// NewTCPTraceroute builds Toren's tcptraceroute: Destination Port 80,
// constant TCP fields, varying the IP Identification field for matching.
// Like Paris TCP it maintains a constant flow identifier; the paper notes
// this but observes no prior work had examined the effect.
func NewTCPTraceroute(tp Transport, opts Options) Tracer {
	opts = opts.withDefaults()
	srcPort := opts.SrcPort
	if srcPort == 0 {
		srcPort = 31337
	}
	dstPort := opts.DstPort
	if dstPort == 0 {
		dstPort = TCPTracerouteDstPort
	}
	src := tp.Source()
	return &engine{
		name: "tcptraceroute",
		tp:   tp,
		opts: opts,
		build: func(dest netip.Addr, ttl, probeIdx int, buf []byte) ([]byte, expect, error) {
			ipid := uint16(probeIdx + 1)
			seg, err := packet.MarshalTCP(src, dest, &packet.TCP{
				SrcPort: srcPort,
				DstPort: dstPort,
				Seq:     0x1000,
				Flags:   packet.TCPSyn,
				Window:  65535,
			}, nil)
			if err != nil {
				return nil, expect{}, err
			}
			pkt, err := (&packet.IPv4{
				TOS:      opts.TOS,
				TTL:      uint8(ttl),
				Protocol: packet.ProtoTCP,
				ID:       ipid,
				Src:      src,
				Dst:      dest,
			}).MarshalInto(buf, seg)
			if err != nil {
				return nil, expect{}, err
			}
			return pkt, expect{
				dest:       dest,
				proto:      packet.ProtoTCP,
				tcpSrcPort: srcPort,
				tcpDstPort: dstPort,
				tcpSeq:     0x1000,
				matchIPID:  true,
				ipID:       ipid,
			}, nil
		},
	}
}
