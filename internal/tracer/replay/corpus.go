package replay

//go:generate go run ./gen

import (
	"encoding/json"
	"fmt"
	"net/netip"

	"repro/internal/measure"
	"repro/internal/tracer"
)

// Spec is the sidecar a corpus capture carries (testdata/corpus/<name>.json):
// everything needed to re-run the captured study offline. The regression
// suite replays each committed capture under its spec and pins the output
// byte-for-byte against <name>.golden.json; gen/main.go regenerates all
// three files together (see the go:generate directive above).
type Spec struct {
	Name string `json:"name"`
	// Kind selects the harness: "campaign" runs a streamed measure.Campaign
	// and the golden holds its Stats; "traces" runs one tracer per
	// destination sequentially and the golden holds the routes.
	Kind string `json:"kind"`
	// Method names the probing discipline for Kind "traces"
	// ("paris-udp", "tcptraceroute", ...); ignored for campaigns, which
	// pair Paris and classic UDP themselves.
	Method string `json:"method,omitempty"`
	// Dests lists the destinations in campaign order — first-seen capture
	// order is worker-dependent, so the spec pins it explicitly.
	Dests   []string `json:"dests"`
	Rounds  int      `json:"rounds,omitempty"`
	Workers int      `json:"workers,omitempty"`
	// PortSeed seeds the campaign's per-destination flow identifiers; it
	// must match the captured run or replay fails loudly on the first probe.
	PortSeed int64 `json:"port_seed,omitempty"`
	// Retries is the captured run's re-send budget, forwarded to Config.
	Retries int `json:"retries,omitempty"`
}

// methods maps Spec.Method to its tracer constructor.
var methods = map[string]func(tracer.Transport, tracer.Options) tracer.Tracer{
	"paris-udp":     tracer.NewParisUDP,
	"paris-icmp":    tracer.NewParisICMP,
	"paris-tcp":     tracer.NewParisTCP,
	"classic-udp":   tracer.NewClassicUDP,
	"classic-icmp":  tracer.NewClassicICMP,
	"tcptraceroute": tracer.NewTCPTraceroute,
}

// RunSpec executes a spec over the given transports — tpFor(w) is worker
// w's transport, exactly the campaign's TransportFor seam — and returns
// the canonical output bytes the corpus goldens pin: indented JSON with a
// trailing newline, the same form the CLI binaries persist. It is the one
// harness both the regression test (driving a replay Transport) and the
// corpus generator (driving the live mux it captures from) run, so a
// golden mismatch always means replay divergence, never harness drift.
func RunSpec(spec Spec, tpFor func(int) tracer.Transport) ([]byte, error) {
	dests := make([]netip.Addr, len(spec.Dests))
	for i, d := range spec.Dests {
		a, err := netip.ParseAddr(d)
		if err != nil {
			return nil, fmt.Errorf("replay: spec %q dest %q: %w", spec.Name, d, err)
		}
		dests[i] = a
	}
	switch spec.Kind {
	case "campaign":
		camp, err := measure.NewCampaign(nil, measure.Config{
			Dests: dests, Rounds: spec.Rounds, Workers: spec.Workers,
			PortSeed: spec.PortSeed, Batch: true, Stream: true,
			TransportFor: tpFor,
		})
		if err != nil {
			return nil, err
		}
		res, err := camp.Run()
		if err != nil {
			return nil, fmt.Errorf("replay: spec %q campaign: %w", spec.Name, err)
		}
		return canonicalJSON(res.Stats)
	case "traces":
		mk, ok := methods[spec.Method]
		if !ok {
			return nil, fmt.Errorf("replay: spec %q: unknown method %q", spec.Name, spec.Method)
		}
		tp := tpFor(0)
		routes := make([]*tracer.Route, len(dests))
		for i, d := range dests {
			r, err := mk(tp, tracer.Options{Batch: true}).Trace(d)
			if err != nil {
				return nil, fmt.Errorf("replay: spec %q trace %v: %w", spec.Name, d, err)
			}
			routes[i] = r
		}
		return canonicalJSON(routes)
	default:
		return nil, fmt.Errorf("replay: spec %q: unknown kind %q", spec.Name, spec.Kind)
	}
}

// canonicalJSON is the corpus golden form: indented, trailing newline.
func canonicalJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
