package replay_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tracer"
	"repro/internal/tracer/replay"
)

// TestCorpus replays every committed capture under testdata/corpus against
// its pinned golden. This is the repository's hermetic regression net for
// the whole record/replay path: no network, no privileges, no timers —
// just the pcap bytes, the flow-key attribution, and the measurement
// pipeline. A failure means replay semantics drifted from what the
// captures were taken under (or the stats/route encodings changed — in
// which case regenerate with go generate ./internal/tracer/replay and
// review the diff).
func TestCorpus(t *testing.T) {
	pcaps, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pcaps) == 0 {
		t.Fatal("no corpus captures found — run go generate ./internal/tracer/replay")
	}
	for _, path := range pcaps {
		base := strings.TrimSuffix(path, ".pcap")
		t.Run(filepath.Base(base), func(t *testing.T) {
			raw, err := os.ReadFile(base + ".json")
			if err != nil {
				t.Fatalf("corpus capture has no spec sidecar: %v", err)
			}
			var spec replay.Spec
			if err := json.Unmarshal(raw, &spec); err != nil {
				t.Fatalf("spec: %v", err)
			}
			golden, err := os.ReadFile(base + ".golden.json")
			if err != nil {
				t.Fatalf("corpus capture has no golden: %v", err)
			}

			rt, err := replay.Open(path, replay.Config{Retries: spec.Retries})
			if err != nil {
				t.Fatalf("loading capture: %v", err)
			}
			got, err := replay.RunSpec(spec, func(int) tracer.Transport { return rt })
			if err != nil {
				t.Fatalf("replaying: %v", err)
			}
			if !bytes.Equal(got, golden) {
				t.Errorf("replayed output diverges from pinned golden\ngot:\n%s\nwant:\n%s", got, golden)
			}
			if l := rt.Leftover(); l != 0 {
				t.Errorf("%d captured exchanges never served — replay under-consumed the capture", l)
			}
		})
	}
}
