// Command gen regenerates the replay corpus under testdata/corpus: for
// each recipe it captures a hermetic study through the real live mux (a
// SimConn replaying a generated netsim topology on the virtual clock),
// replays the fresh capture, verifies the replayed output is byte-identical
// to the original run, and only then writes the three files the regression
// suite consumes: <name>.pcap, <name>.json (the Spec), and
// <name>.golden.json.
//
// Run it from the replay package directory (go generate ./internal/tracer/replay).
// Regeneration changes capture timestamps, so all three files always churn
// together; the goldens stay valid because they are derived from the new
// capture, not carried over.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/pcap"
	"repro/internal/topo"
	"repro/internal/tracer"
	"repro/internal/tracer/live"
	"repro/internal/tracer/replay"
)

// recipe binds a Spec to the fault schedule its capture is taken under.
type recipe struct {
	spec  replay.Spec
	seed  int64
	dests int
	sched func() live.SimSchedule
}

var recipes = []recipe{
	{
		// The bread-and-butter case: a clean multi-worker paired campaign.
		spec: replay.Spec{
			Name: "clean-paris-udp", Kind: "campaign",
			Rounds: 2, Workers: 4, PortSeed: 42,
		},
		seed: 101, dests: 12,
		sched: func() live.SimSchedule { return live.SimSchedule{} },
	},
	{
		// Every probe's first transmission is dropped and answered only on
		// the retry: exercises retransmit folding and Karn's rule offline.
		spec: replay.Spec{
			Name: "drop-retry-paris-udp", Kind: "campaign",
			Rounds: 2, Workers: 2, PortSeed: 42, Retries: 1,
		},
		seed: 103, dests: 8,
		sched: func() live.SimSchedule {
			var mu sync.Mutex
			seen := make(map[string]bool)
			return live.SimSchedule{Drop: func(_ int, probe []byte) bool {
				mu.Lock()
				defer mu.Unlock()
				if seen[string(probe)] {
					return false
				}
				seen[string(probe)] = true
				return true
			}}
		},
	},
	{
		// Constant-sequence TCP probes under reordered arrival: pins the
		// oldest-unanswered FIFO attribution byte-for-byte.
		spec: replay.Spec{
			Name: "reorder-tcptraceroute", Kind: "traces", Method: "tcptraceroute",
		},
		seed: 107, dests: 4,
		sched: func() live.SimSchedule { return live.SimSchedule{Reorder: true} },
	},
}

func main() {
	log.SetFlags(0)
	outDir := filepath.Join("testdata", "corpus")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, r := range recipes {
		if err := generate(outDir, r); err != nil {
			log.Fatalf("%s: %v", r.spec.Name, err)
		}
		log.Printf("regenerated %s", r.spec.Name)
	}
}

// generate captures one recipe's study and installs its corpus triplet.
func generate(outDir string, r recipe) error {
	// The same schedule-free topology construction the differential tests
	// use: responses are pure functions of probe bytes, so replaying the
	// capture under any interleaving reproduces the routes.
	gc := topo.DefaultGenConfig()
	gc.Seed = r.seed
	gc.Destinations = r.dests
	gc.FlipPerProbe = 0
	gc.PPerPacket = 0
	gc.PPerPacketUnequal = 0
	sc := topo.Generate(gc)

	spec := r.spec
	for _, d := range sc.Dests {
		spec.Dests = append(spec.Dests, d.String())
	}

	pcapPath := filepath.Join(outDir, spec.Name+".pcap")
	cap, err := pcap.CreateCapture(pcapPath)
	if err != nil {
		return err
	}
	fake := &live.SimConn{
		Respond: func(probe []byte) ([]byte, bool) {
			resp, _, ok := sc.Net.Exchange(probe)
			return resp, ok
		},
		Sched: r.sched(),
	}
	m, err := live.NewMux(live.MuxConfig{
		Source: sc.Net.Source(), Conn: fake, Retries: spec.Retries, Capture: cap,
	})
	if err != nil {
		return err
	}
	original, err := replay.RunSpec(spec, func(int) tracer.Transport { return m.Transport() })
	if err != nil {
		return fmt.Errorf("captured run: %w", err)
	}
	if err := m.Close(); err != nil {
		return err
	}
	if err := cap.Close(); err != nil {
		return err
	}

	// Gate on the acceptance property before committing anything: the
	// fresh capture replayed under the spec must reproduce the original
	// output byte for byte and consume every exchange.
	rt, err := replay.Open(pcapPath, replay.Config{Retries: spec.Retries})
	if err != nil {
		return fmt.Errorf("reading back capture: %w", err)
	}
	replayed, err := replay.RunSpec(spec, func(int) tracer.Transport { return rt })
	if err != nil {
		return fmt.Errorf("replaying capture: %w", err)
	}
	if !bytes.Equal(replayed, original) {
		return fmt.Errorf("replayed output diverges from the captured run; not installing corpus files")
	}
	if l := rt.Leftover(); l != 0 {
		return fmt.Errorf("%d captured exchanges never served by the replayed run", l)
	}

	specJSON, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, spec.Name+".json"), append(specJSON, '\n'), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(outDir, spec.Name+".golden.json"), original, 0o644)
}
