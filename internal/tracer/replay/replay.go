// Package replay re-serves a captured campaign's traffic as a
// tracer.Transport: probes are answered from a pcap file instead of the
// network, so a live (or simulated) study re-runs offline — no sockets, no
// privileges, no re-probing anyone — and, when the replayed campaign is
// configured identically to the captured one, reproduces its routes and
// statistics byte for byte.
//
// # How a capture becomes a transport
//
// A capture (written by the live layer's pcap tap) is a single
// LINKTYPE_RAW stream holding both directions. Loading classifies each
// record structurally: a packet is outbound iff its source address is the
// capture's source AND it is probe-shaped — a UDP datagram, an ICMP Echo
// Request, or a TCP segment with SYN set and ACK/RST clear; every
// response shape the tracer knows (ICMP errors, Echo Replies, TCP
// RST/SYN-ACK) fails that test, so the split is exact for every capture
// the fake conn generates and for UDP campaigns on real sockets. (The one
// ambiguity: hosts whose raw sockets deliver their own outbound ICMP/TCP
// probes back — loopback captures of echo or SYN disciplines — record
// each probe twice; see docs/replay.md.)
//
// Consecutive identical outbound occurrences of one flow key fold into a
// single exchange while the transmission count stays within the captured
// campaign's retry budget (Config.Retries): that is precisely a
// retransmit, and like the live wheel, replay charges the response's RTT
// against the latest transmission (Karn's rule sees the same samples).
// One more identical occurrence than the budget allows is the next
// round's probe: the open exchange closes as a star and a new one begins
// — valid because each destination is probed by one worker, sequentially.
//
// Responses bind to the oldest unanswered exchange under the same
// quoted-flow-identifier keys the live mux uses (internal/tracer/flowkey)
// — including the oldest-unanswered FIFO rule for tcptraceroute's
// constant-sequence probes — so replay attribution is the live
// attribution. Unbindable records count as junk, exactly as the live
// demultiplexer discarded them.
//
// # The virtual clock
//
// Replay never sleeps. A captured star (an exchange with no bound
// response) is served as an immediate ok=false, and RTTs are differences
// of capture timestamps — the live layer stamps captures with the same
// clock readings its own RTTs use, so a replayed RTT equals the original
// to the nanosecond. Timeouts therefore "elapse" instantly: a full
// campaign that took minutes of wall-clock waiting replays in
// milliseconds with identical statistics.
//
// # Divergence is loud
//
// Exchange requests are matched strictly: a probe whose flow key has no
// remaining captured exchange, or whose bytes differ from the captured
// probe, fails with a fatal (non-transient) error naming the flow — the
// replayed campaign was configured differently from the captured one
// (destinations, rounds, port seed, method, retry budget), and silently
// serving wrong traffic would corrupt the study. Leftover reports
// captured exchanges the replayed run never consumed, the other half of
// the same check.
package replay

import (
	"bytes"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/tracer"
	"repro/internal/tracer/flowkey"
)

// Config parameterizes how a capture is reconstructed.
type Config struct {
	// Retries is the captured campaign's per-probe re-send budget
	// (live.Config.Retries / MuxConfig.Retries at capture time): up to
	// 1+Retries consecutive identical occurrences of one flow key fold
	// into a single exchange as retransmissions. Zero means every
	// occurrence is its own exchange.
	Retries int
	// Timeout is the captured campaign's probe timeout: a response
	// arriving more than Timeout after its probe's latest transmission is
	// junk (the live wheel had already expired the probe). Zero selects
	// 2s, the live default. Adaptive per-destination timeouts below the
	// cap are not reconstructed; a response beating Timeout but not the
	// original adaptive deadline replays as answered.
	Timeout time.Duration
}

// exchange is one reconstructed probe conversation: 1+ transmissions of
// identical probe bytes, and at most one bound response.
type exchange struct {
	probe  []byte
	lastTS time.Time // latest transmission's capture timestamp
	tx     int
	run    int    // send run of the latest transmission (in-flight horizon)
	resp   []byte // nil: a star
	rtt    time.Duration
	closed bool // superseded by a later exchange on its key (a star)
	served bool
}

// queue is one quoted key's serve FIFO.
type queue struct {
	list []*exchange
	head int
}

// Transport serves a loaded capture. It implements tracer.Transport,
// tracer.BatchTransport, and tracer.FallibleTransport, and is safe for
// concurrent use by campaign workers: flow keys embed the destination, and
// each destination's exchanges are served in capture order regardless of
// how traces interleave across workers.
type Transport struct {
	src  netip.Addr
	keep Config

	mu     sync.Mutex
	serve  map[flowkey.Key]*queue
	total  int // exchanges reconstructed
	served int
	junk   int // records bound to no exchange at load time
	dests  []netip.Addr
}

// Open loads the pcap capture at path. See FromRecords for the errors.
func Open(path string, cfg Config) (*Transport, error) {
	recs, err := pcap.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromRecords(recs, cfg)
}

// FromRecords reconstructs a capture's exchanges from its records. It
// fails on an empty capture or one whose first record is not a probe (a
// capture written by the live tap always begins with a send).
func FromRecords(recs []pcap.Record, cfg Config) (*Transport, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("replay: capture holds no records")
	}
	src, _, ok := probeShape(recs[0].Data)
	if !ok {
		return nil, fmt.Errorf("replay: capture does not begin with a probe: %s", describe(recs[0].Data))
	}
	t := &Transport{
		src:   netip.AddrFrom4(src),
		keep:  cfg,
		serve: make(map[flowkey.Key]*queue),
	}

	// bind holds each key's registration FIFO (quoted and terminal keys
	// alike) for response attribution; last tracks the most recent
	// exchange per quoted key for retransmit folding.
	bind := make(map[flowkey.Key][]*exchange)
	last := make(map[flowkey.Key]*exchange)
	seenDst := make(map[[4]byte]bool)

	// Send runs reconstruct the demultiplexer's in-flight horizon. Probe
	// records arrive in contiguous bursts (one WriteBatch each — the live
	// layer captures a batch's datagrams under its lock), and the engine
	// driving a destination sends its next batch only after every probe of
	// the previous one resolved — answered, or expired by the timeout
	// wheel. A response can therefore only answer a probe from the burst
	// in progress when it arrived; anything older the original run had
	// already resolved. Terminal-key binding (echo replies, TCP segments
	// — the keys that deliberately omit the destination address and so
	// span traces) enforces this; quoted keys identify their probe exactly
	// and need no horizon.
	run := 0
	inboundSince := true // first probe record opens run 1

	for _, rec := range recs {
		pkt := rec.Data
		if psrc, pdst, isProbe := probeShape(pkt); isProbe && psrc == t.src.As4() {
			if inboundSince {
				run++
				inboundSince = false
			}
			quoted, terminal, hasTerminal, ok := flowkey.ProbeKeys(pkt)
			if !ok {
				t.junk++
				continue
			}
			if e := last[quoted]; e != nil && !e.closed && e.resp == nil {
				if e.tx < 1+cfg.Retries && bytes.Equal(e.probe, pkt) {
					// A retransmission: same exchange, later clock, and the
					// exchange rejoins the in-flight horizon.
					e.tx++
					e.lastTS = rec.TS
					e.run = run
					continue
				}
				// The budget is spent (or the bytes changed): this is the
				// next round's probe, and the open exchange was a star.
				e.closed = true
			}
			e := &exchange{probe: append([]byte(nil), pkt...), lastTS: rec.TS, tx: 1, run: run}
			last[quoted] = e
			bind[quoted] = append(bind[quoted], e)
			if hasTerminal {
				bind[terminal] = append(bind[terminal], e)
			}
			q := t.serve[quoted]
			if q == nil {
				q = &queue{}
				t.serve[quoted] = q
			}
			q.list = append(q.list, e)
			t.total++
			if !seenDst[pdst] {
				seenDst[pdst] = true
				t.dests = append(t.dests, netip.AddrFrom4(pdst))
			}
			continue
		}
		// Inbound: attribute by the same rule the live demultiplexer uses.
		inboundSince = true
		key, ok := flowkey.RespKey(pkt)
		if !ok {
			t.junk++ // unrelated traffic, exactly as the live layer dropped it
			continue
		}
		bound := false
		fifo := bind[key]
		for i, e := range fifo {
			if e.resp != nil || e.closed {
				continue
			}
			if key.Kind != flowkey.KindQuoted && e.run != run {
				// A terminal key spans traces, but this exchange's burst had
				// fully resolved before the response arrived: the original
				// demultiplexer had already expired it (a star), so it is
				// not in flight to be credited.
				continue
			}
			rtt := rec.TS.Sub(e.lastTS)
			if rtt > cfg.Timeout {
				// The wheel had expired this probe before the response
				// arrived; the original run discarded it.
				break
			}
			e.resp = append([]byte(nil), pkt...)
			e.rtt = rtt
			bind[key] = fifo[i:] // consumed prefix never binds again
			bound = true
			break
		}
		if !bound {
			t.junk++ // duplicate, late, or someone else's conversation
		}
	}
	return t, nil
}

// Source implements tracer.Transport: the captured campaign's source
// address, inferred from the first probe.
func (t *Transport) Source() netip.Addr { return t.src }

// Destinations returns the captured probe destinations in first-seen
// order — the -replay flag's fallback when no destination list is given.
func (t *Transport) Destinations() []netip.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]netip.Addr(nil), t.dests...)
}

// Exchanges reports how many probe conversations the capture reconstructs.
func (t *Transport) Exchanges() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Leftover reports captured exchanges not yet served — nonzero after a
// replayed campaign means it probed less than the captured one did.
func (t *Transport) Leftover() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - t.served
}

// Junk reports captured records that bound to no exchange at load time:
// unrelated traffic, duplicates, and responses past the timeout — the
// traffic the live demultiplexer also discarded.
func (t *Transport) Junk() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.junk
}

// Exchange implements tracer.Transport. Mismatches degrade to stars; use
// ExchangeErr (as the campaign's fault-aware engines do) to observe them.
func (t *Transport) Exchange(probe []byte) ([]byte, time.Duration, bool) {
	resp, rtt, ok, _ := t.ExchangeErr(probe)
	return resp, rtt, ok
}

// ExchangeErr implements tracer.FallibleTransport: serve the next captured
// exchange for this probe's flow key. The error is fatal (non-transient)
// by design — a mismatch means the replayed campaign diverged from the
// captured one, and retrying cannot help.
func (t *Transport) ExchangeErr(probe []byte) ([]byte, time.Duration, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exchangeLocked(probe)
}

// ExchangeBatch implements tracer.BatchTransport with the append-truncate
// refill contract.
func (t *Transport) ExchangeBatch(probes [][]byte, out []tracer.ProbeResult) {
	if len(out) < len(probes) {
		panic("replay: ExchangeBatch result slice shorter than probe slice")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, p := range probes {
		out[i].OK = false
		out[i].RTT = 0
		out[i].Err = nil
		if out[i].Resp != nil {
			out[i].Resp = out[i].Resp[:0]
		}
		resp, rtt, ok, err := t.exchangeLocked(p)
		if err != nil {
			out[i].Err = err
			continue
		}
		if !ok {
			continue
		}
		out[i].Resp = append(out[i].Resp[:0], resp...)
		out[i].RTT = rtt
		out[i].OK = true
	}
}

func (t *Transport) exchangeLocked(probe []byte) ([]byte, time.Duration, bool, error) {
	quoted, _, _, ok := flowkey.ProbeKeys(probe)
	if !ok {
		return nil, 0, false, fmt.Errorf("replay: unparseable probe (%d bytes)", len(probe))
	}
	q := t.serve[quoted]
	if q == nil || q.head >= len(q.list) {
		return nil, 0, false, fmt.Errorf(
			"replay: probe %s not in capture (flow already exhausted or never probed): the replayed campaign diverges from the captured one",
			describe(probe))
	}
	e := q.list[q.head]
	q.head++
	if !bytes.Equal(e.probe, probe) {
		return nil, 0, false, fmt.Errorf(
			"replay: probe/capture mismatch for %s: captured %s with equal flow key but different bytes",
			describe(probe), describe(e.probe))
	}
	e.served = true
	t.served++
	if e.resp == nil {
		// A captured star: the virtual clock elapses the original timeout
		// instantly.
		return nil, 0, false, nil
	}
	return e.resp, e.rtt, true, nil
}

// probeShape reports whether pkt parses as a probe-shaped IPv4 packet — a
// UDP datagram, an ICMP Echo Request, or a bare TCP SYN — and returns its
// addresses. Every response shape the tracer handles fails this test.
func probeShape(pkt []byte) (src, dst [4]byte, ok bool) {
	var h packet.IPv4
	payload, err := packet.ParseIPv4Into(pkt, &h)
	if err != nil {
		return src, dst, false
	}
	switch h.Protocol {
	case packet.ProtoUDP:
		ok = true
	case packet.ProtoICMP:
		var m packet.ICMP
		ok = packet.ParseICMPInto(payload, &m) == nil && m.Type == packet.ICMPTypeEchoRequest
	case packet.ProtoTCP:
		var th packet.TCP
		if _, _, perr := packet.ParseTCPInto(payload, &th); perr == nil {
			ok = th.Flags&packet.TCPSyn != 0 && th.Flags&(packet.TCPAck|packet.TCPRst) == 0
		}
	}
	if !ok {
		return src, dst, false
	}
	return h.Src.As4(), h.Dst.As4(), true
}

// describe renders a packet's flow for error messages.
func describe(pkt []byte) string {
	var h packet.IPv4
	payload, err := packet.ParseIPv4Into(pkt, &h)
	if err != nil {
		return fmt.Sprintf("<unparseable %d bytes>", len(pkt))
	}
	proto := fmt.Sprintf("proto %d", h.Protocol)
	switch h.Protocol {
	case packet.ProtoUDP:
		proto = "udp"
	case packet.ProtoICMP:
		proto = "icmp"
	case packet.ProtoTCP:
		proto = "tcp"
	}
	extra := ""
	if len(payload) >= 4 && (h.Protocol == packet.ProtoUDP || h.Protocol == packet.ProtoTCP) {
		extra = fmt.Sprintf(" ports %d->%d",
			uint16(payload[0])<<8|uint16(payload[1]),
			uint16(payload[2])<<8|uint16(payload[3]))
	}
	return fmt.Sprintf("%s %v->%v ipid %d ttl %d%s", proto, h.Src, h.Dst, h.ID, h.TTL, extra)
}
